package privcluster

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// freshRelease opens an immutable handle over pts with the scalable index
// (the backend every mutable handle uses — small n would otherwise
// auto-resolve to the exact index, which is not bit-comparable) and runs
// the full seeded query battery: 1-cluster, k-cover, and a batch.
type releaseSet struct {
	one   Cluster
	cover []Cluster
	batch []BatchResult
}

func queryBattery(t *testing.T, ds *Dataset, tgt int, at uint64) releaseSet {
	t.Helper()
	ctx := context.Background()
	q := QueryOptions{Epsilon: 4, Delta: 1e-5, Seed: 9, AtEpoch: at}
	qk := QueryOptions{Epsilon: 8, Delta: 4e-5, Seed: 4, AtEpoch: at}
	one, err := ds.FindCluster(ctx, tgt, q)
	if err != nil {
		t.Fatal(err)
	}
	cover, err := ds.FindClusters(ctx, 2, tgt/2, qk)
	if err != nil {
		t.Fatal(err)
	}
	batch := ds.FindClustersBatch(ctx, []Query{
		{T: tgt, Opts: q},
		{T: tgt / 2, K: 2, Opts: qk},
	})
	for _, r := range batch {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	return releaseSet{one: one, cover: cover, batch: batch}
}

func freshRelease(t *testing.T, pts []Point, o DatasetOptions, tgt int) releaseSet {
	t.Helper()
	o.Mutable = false
	o.IndexPolicy = IndexScalable
	ds, err := Open(pts, o)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	return queryBattery(t, ds, tgt, 0)
}

func assertSameReleases(t *testing.T, tag string, got, want releaseSet) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: releases diverged:\n got %+v\nwant %+v", tag, got, want)
	}
}

// TestMutableReleaseEquivalence is the streaming tentpole at the public
// API: Open(prefix)+Append(rest) releases bit-identically to Open(all) at
// every cluster entry point — across the unsharded, sharded, and remote
// backends, before and after Merge, with old epochs still answering for
// their own point sets, and with deletes matching a fresh open of the
// survivors.
func TestMutableReleaseEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pts, _ := plantedPoints(rng, 1200, 800, 2, 0.02)
	n0 := 900
	tgt := 500

	variants := []struct {
		name string
		opts func(t *testing.T) DatasetOptions
	}{
		{"unsharded", func(t *testing.T) DatasetOptions { return DatasetOptions{} }},
		{"sharded", func(t *testing.T) DatasetOptions { return DatasetOptions{Shards: 3} }},
		{"remote", func(t *testing.T) DatasetOptions {
			addrs, ln := startLoopbackServers(t, 2)
			return DatasetOptions{RemoteShards: addrs, RemoteDial: ln.Dial}
		}},
	}

	// One local reference per point set: sharding and transport never
	// change releases, so every variant must match the same battery.
	wantPrefix := freshRelease(t, pts[:n0], DatasetOptions{}, tgt)
	wantAll := freshRelease(t, pts, DatasetOptions{}, tgt)

	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			o := v.opts(t)
			o.Mutable = true
			ds, err := Open(pts[:n0], o)
			if err != nil {
				t.Fatal(err)
			}
			defer ds.Close()
			if e := ds.Epoch(); e != 1 {
				t.Fatalf("epoch after Open = %d, want 1", e)
			}
			assertSameReleases(t, "epoch1", queryBattery(t, ds, tgt, 0), wantPrefix)

			ids, e2, err := ds.Append(context.Background(), pts[n0:])
			if err != nil {
				t.Fatal(err)
			}
			if len(ids) != len(pts)-n0 || e2 != 2 {
				t.Fatalf("append: %d ids, epoch %d", len(ids), e2)
			}
			if ds.N() != len(pts) {
				t.Fatalf("N after append = %d, want %d", ds.N(), len(pts))
			}
			// Pre-merge: the delta rows answer through the epoch view.
			assertSameReleases(t, "epoch2-premerge", queryBattery(t, ds, tgt, 0), wantAll)
			// The old epoch still answers for its own point set.
			assertSameReleases(t, "epoch1-pinned", queryBattery(t, ds, tgt, 1), wantPrefix)
			if err := ds.Merge(context.Background()); err != nil {
				t.Fatal(err)
			}
			assertSameReleases(t, "epoch2-postmerge", queryBattery(t, ds, tgt, 2), wantAll)

			// Delete a mix of seed and appended rows: releases match a
			// fresh open of the survivors in insertion order.
			del := []uint64{5, 11, uint64(n0) + 3, uint64(n0) + 40}
			e3, err := ds.Delete(context.Background(), del)
			if err != nil {
				t.Fatal(err)
			}
			if e3 != 3 {
				t.Fatalf("delete: epoch %d, want 3", e3)
			}
			gone := map[uint64]bool{}
			for _, id := range del {
				gone[id] = true
			}
			var surv []Point
			for i, p := range pts {
				if !gone[uint64(i)] {
					surv = append(surv, p)
				}
			}
			assertSameReleases(t, "epoch3-deleted", queryBattery(t, ds, tgt, 0),
				freshRelease(t, surv, DatasetOptions{}, tgt))
		})
	}
}

// TestMutableInteriorPointEquivalence is the 1-D streaming contract:
// InteriorPoint on a mutable handle releases bit-identically to a fresh
// handle over the pinned epoch's raw values — through appends, epoch
// pinning, and deletes.
func TestMutableInteriorPointEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	pts, _ := plantedPoints(rng, 600, 400, 1, 0.02)
	n0 := 450
	ctx := context.Background()
	q := QueryOptions{Epsilon: 8, Delta: 0.05, Seed: 21}

	fresh := func(rows []Point) float64 {
		t.Helper()
		ref, err := Open(rows, DatasetOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer ref.Close()
		v, err := ref.InteriorPoint(ctx, 200, q)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}

	ds, err := Open(pts[:n0], DatasetOptions{Mutable: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	got, err := ds.InteriorPoint(ctx, 200, q)
	if err != nil {
		t.Fatal(err)
	}
	if want := fresh(pts[:n0]); got != want {
		t.Fatalf("epoch1 interior point = %v, want %v", got, want)
	}

	if _, _, err := ds.Append(ctx, pts[n0:]); err != nil {
		t.Fatal(err)
	}
	got, err = ds.InteriorPoint(ctx, 200, q)
	if err != nil {
		t.Fatal(err)
	}
	if want := fresh(pts); got != want {
		t.Fatalf("epoch2 interior point = %v, want %v", got, want)
	}
	// Pinned at the pre-append epoch, the old release comes back.
	pinned := q
	pinned.AtEpoch = 1
	got, err = ds.InteriorPoint(ctx, 200, pinned)
	if err != nil {
		t.Fatal(err)
	}
	if want := fresh(pts[:n0]); got != want {
		t.Fatalf("epoch1-pinned interior point = %v, want %v", got, want)
	}

	del := []uint64{0, 7, uint64(n0) + 2}
	if _, err := ds.Delete(ctx, del); err != nil {
		t.Fatal(err)
	}
	gone := map[uint64]bool{}
	for _, id := range del {
		gone[id] = true
	}
	var surv []Point
	for i, p := range pts {
		if !gone[uint64(i)] {
			surv = append(surv, p)
		}
	}
	got, err = ds.InteriorPoint(ctx, 200, q)
	if err != nil {
		t.Fatal(err)
	}
	if want := fresh(surv); got != want {
		t.Fatalf("epoch3 interior point = %v, want %v", got, want)
	}
	// The pre-delete raw values are gone with the retired epochs.
	if _, err := ds.InteriorPoint(ctx, 200, pinned); !errors.Is(err, ErrEpochRetired) {
		t.Fatalf("pinning a deleted-away epoch: %v, want ErrEpochRetired", err)
	}
}

// TestMutableGuards covers the configuration and epoch-pinning rejections.
func TestMutableGuards(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts, _ := plantedPoints(rng, 300, 200, 2, 0.02)
	ctx := context.Background()

	if _, err := Open(pts, DatasetOptions{Mutable: true, Precision: Float32}); err == nil {
		t.Fatal("Mutable+Float32 accepted")
	}
	if _, err := Open(pts, DatasetOptions{Mutable: true, IndexPolicy: IndexExact}); err == nil {
		t.Fatal("Mutable+IndexExact accepted")
	}

	imm, err := Open(pts, DatasetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer imm.Close()
	if _, _, err := imm.Append(ctx, pts[:1]); err == nil || !strings.Contains(err.Error(), "Mutable") {
		t.Fatalf("Append on immutable handle: %v", err)
	}
	if _, err := imm.Delete(ctx, []uint64{0}); err == nil {
		t.Fatal("Delete on immutable handle succeeded")
	}
	if err := imm.Merge(ctx); err == nil {
		t.Fatal("Merge on immutable handle succeeded")
	}
	if e := imm.Epoch(); e != 0 {
		t.Fatalf("immutable Epoch() = %d, want 0", e)
	}
	if _, err := imm.FindCluster(ctx, 150, QueryOptions{AtEpoch: 1, Seed: 1}); err == nil {
		t.Fatal("AtEpoch on immutable handle accepted")
	}
	if _, err := imm.InteriorPoint(ctx, 10, QueryOptions{AtEpoch: 1, Seed: 1}); err == nil {
		t.Fatal("AtEpoch InteriorPoint on immutable handle accepted")
	}

	mut, err := Open(pts, DatasetOptions{Mutable: true})
	if err != nil {
		t.Fatal(err)
	}
	defer mut.Close()
	if _, err := mut.FindCluster(ctx, 150, QueryOptions{AtEpoch: 99, Seed: 1}); !errors.Is(err, ErrEpochRetired) {
		t.Fatalf("future epoch pin: %v, want ErrEpochRetired", err)
	}
	if _, _, err := mut.Append(ctx, nil); err == nil {
		t.Fatal("empty Append accepted")
	}
	if _, _, err := mut.Append(ctx, []Point{{1, 2, 3}}); err == nil {
		t.Fatal("wrong-dimension Append accepted")
	}
	if _, err := mut.Delete(ctx, []uint64{999999}); err == nil {
		t.Fatal("unknown-id Delete accepted")
	}
}

// TestMutableBudgetUntouched: mutation is free — the ledger moves only on
// releases, exactly as on an immutable handle.
func TestMutableBudgetUntouched(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts, _ := plantedPoints(rng, 400, 300, 2, 0.02)
	ctx := context.Background()
	ds, err := Open(pts[:300], DatasetOptions{Mutable: true, Budget: Budget{Epsilon: 100, Delta: 1e-2}})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if _, _, err := ds.Append(ctx, pts[300:]); err != nil {
		t.Fatal(err)
	}
	if err := ds.Merge(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Delete(ctx, []uint64{0}); err != nil {
		t.Fatal(err)
	}
	if got := ds.Spent(); !got.IsZero() {
		t.Fatalf("mutations spent budget: %+v", got)
	}
	if _, err := ds.FindCluster(ctx, 250, QueryOptions{Epsilon: 8, Delta: 1e-5, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if got := ds.Spent(); got.Epsilon != 8 || got.Delta != 1e-5 {
		t.Fatalf("release charged %+v, want (8, 1e-5)", got)
	}
}

// TestDatasetClosed: after Close every query and mutation fails with the
// typed ErrClosed, and Close is idempotent — on mutable and immutable
// handles alike.
func TestDatasetClosed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts, _ := plantedPoints(rng, 300, 200, 1, 0.02)
	ctx := context.Background()

	for _, mutable := range []bool{false, true} {
		ds, err := Open(pts, DatasetOptions{Mutable: mutable})
		if err != nil {
			t.Fatal(err)
		}
		if err := ds.Close(); err != nil {
			t.Fatal(err)
		}
		if err := ds.Close(); err != nil {
			t.Fatalf("second Close: %v, want nil", err)
		}
		if _, err := ds.FindCluster(ctx, 150, QueryOptions{Seed: 1}); !errors.Is(err, ErrClosed) {
			t.Fatalf("mutable=%v FindCluster after Close: %v, want ErrClosed", mutable, err)
		}
		if _, err := ds.FindClusters(ctx, 2, 100, QueryOptions{Seed: 1}); !errors.Is(err, ErrClosed) {
			t.Fatalf("mutable=%v FindClusters after Close: %v, want ErrClosed", mutable, err)
		}
		if _, err := ds.InteriorPoint(ctx, 50, QueryOptions{Seed: 1}); !errors.Is(err, ErrClosed) {
			t.Fatalf("mutable=%v InteriorPoint after Close: %v, want ErrClosed", mutable, err)
		}
		if _, _, err := ds.Append(ctx, pts[:1]); !errors.Is(err, ErrClosed) {
			t.Fatalf("mutable=%v Append after Close: %v, want ErrClosed", mutable, err)
		}
		if _, err := ds.Delete(ctx, []uint64{0}); !errors.Is(err, ErrClosed) {
			t.Fatalf("mutable=%v Delete after Close: %v, want ErrClosed", mutable, err)
		}
		if err := ds.Merge(ctx); !errors.Is(err, ErrClosed) {
			t.Fatalf("mutable=%v Merge after Close: %v, want ErrClosed", mutable, err)
		}
	}
}

// TestMutableConcurrentQueries runs a mutator against concurrent seeded
// queriers (run under -race in CI): a query pinned at an epoch must
// release the same cluster twice regardless of interleaved appends,
// deletes, and merges; losing a pin to a delete is the one legal failure.
func TestMutableConcurrentQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	pts, _ := plantedPoints(rng, 900, 600, 2, 0.02)
	extra, _ := plantedPoints(rand.New(rand.NewSource(45)), 400, 200, 2, 0.02)
	ctx := context.Background()
	ds, err := Open(pts, DatasetOptions{Mutable: true, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	stop := make(chan struct{})
	var mwg, qwg sync.WaitGroup
	mwg.Add(1)
	go func() { // mutator
		defer mwg.Done()
		var appended []uint64
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			lo := (i * 16) % len(extra)
			hi := lo + 16
			if hi > len(extra) {
				hi = len(extra)
			}
			ids, _, err := ds.Append(ctx, extra[lo:hi])
			if err != nil {
				t.Errorf("append: %v", err)
				return
			}
			appended = append(appended, ids...)
			if i%5 == 4 && len(appended) > 8 {
				if _, err := ds.Delete(ctx, appended[:4]); err != nil {
					t.Errorf("delete: %v", err)
					return
				}
				appended = appended[4:]
			}
			if i%7 == 6 {
				if err := ds.Merge(ctx); err != nil {
					t.Errorf("merge: %v", err)
					return
				}
			}
		}
	}()
	for g := 0; g < 3; g++ {
		qwg.Add(1)
		go func(g int) {
			defer qwg.Done()
			for i := 0; i < 6; i++ {
				e := ds.Epoch()
				// Seed 0 is the fresh-from-the-clock sentinel — skip it.
				q := QueryOptions{Epsilon: 4, Delta: 1e-5, Seed: int64(100*g + i + 1), AtEpoch: e}
				a, err1 := ds.FindCluster(ctx, 500, q)
				b, err2 := ds.FindCluster(ctx, 500, q)
				if errors.Is(err1, ErrEpochRetired) || errors.Is(err2, ErrEpochRetired) {
					continue // a delete raced the pin: legal, try again
				}
				if err1 != nil || err2 != nil {
					// A mechanism failure (e.g. the recconcave quality
					// promise) is a deterministic function of (epoch, seed):
					// both calls must fail identically, just as successes
					// must match bit-for-bit.
					if err1 == nil || err2 == nil || err1.Error() != err2.Error() {
						t.Errorf("querier %d epoch %d: pinned outcomes diverged: %v / %v", g, e, err1, err2)
						return
					}
					continue
				}
				if !reflect.DeepEqual(a, b) {
					t.Errorf("querier %d epoch %d: pinned releases diverged:\n%+v\n%+v", g, e, a, b)
					return
				}
			}
		}(g)
	}
	qwg.Wait()
	close(stop)
	mwg.Wait()
}

// TestMutableQueryCancellation: a context cancelled before the query
// starts consumes no budget and surfaces the cancellation, on the epoch
// path too.
func TestMutableQueryCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts, _ := plantedPoints(rng, 400, 300, 2, 0.02)
	ds, err := Open(pts, DatasetOptions{Mutable: true, Budget: Budget{Epsilon: 10, Delta: 1e-3}})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ds.FindCluster(ctx, 200, QueryOptions{Epsilon: 1, Delta: 1e-5, Seed: 3}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled query: %v, want context.Canceled", err)
	}
	if got := ds.Spent(); !got.IsZero() {
		t.Fatalf("cancelled query spent %+v", got)
	}
}
