module privcluster

go 1.24
