package privcluster

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"privcluster/internal/obs"
)

// WithTrace returns a context that traces the query run under it: the
// dataset opens a hierarchical span tree (reserve, index build, mechanism
// stages, commit; per-shard sweeps and SVT repetitions inside), the trace's
// 16-byte ID propagates to remote shard servers over the wire protocol, and
// the collected stages come back in QueryStats (QueryOptions.Stats or
// Dataset.LastStats). Tracing records only durations, counts and sizes —
// never coordinates, data values, or noise magnitudes — and never changes
// releases: the same seed gives bit-identical results traced or not.
//
// Without WithTrace (the default) tracing is off and queries skip all span
// bookkeeping; only the always-on aggregate stage histograms in the process
// metrics registry are recorded.
func WithTrace(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return obs.ContextWith(ctx, obs.NewTrace())
}

// QueryStage is one span of a traced query's stage breakdown: a name from
// the span taxonomy, its depth in the tree, its duration, and its operation
// counters (never data values).
type QueryStage struct {
	Name     string
	Depth    int
	Duration time.Duration
	Counters map[string]int64
}

// QueryStats is the per-query measurement substrate: coarse stage timings
// (always collected — they cost a few clock reads and atomic histogram
// updates, no allocations), plus the full span tree when the query context
// carried a trace (WithTrace). Retrieve it via QueryOptions.Stats or
// Dataset.LastStats. Stats never affect releases.
type QueryStats struct {
	// Query names the query kind: "cluster", "kcover", or "interior".
	Query string
	// TraceID is the hex trace ID when the query was traced, else "".
	TraceID string
	// Total is the query's wall time inside the Dataset call.
	Total time.Duration
	// Reserve is the admission stage: the budget hold (for an external
	// Admitter such as the daemon's durable ledger, this includes the
	// fsync).
	Reserve time.Duration
	// Build is the ball-index resolution stage: a cache hit costs
	// microseconds, a cold build dominates the query.
	Build time.Duration
	// ColdIndex reports whether this query built (or waited for) the index
	// rather than reusing a cached one.
	ColdIndex bool
	// Mechanism is the private mechanism stage: LStep sweep, RecConcave,
	// SVT repetitions, noise draws — everything between admission and
	// settlement.
	Mechanism time.Duration
	// Commit is the budget settlement stage.
	Commit time.Duration
	// Stages is the flattened span tree (pre-order) of a traced query; nil
	// when the query ran without WithTrace.
	Stages []QueryStage
}

// Tree renders the traced stage breakdown as indented text, one span per
// line — the human-readable form cmd/onecluster -trace prints. Untraced
// stats render the coarse stages only.
func (s QueryStats) Tree() string {
	var b strings.Builder
	if s.TraceID != "" {
		fmt.Fprintf(&b, "trace %s\n", s.TraceID)
	}
	fmt.Fprintf(&b, "query/%s %v (reserve %v, build %v, mechanism %v, commit %v, cold=%v)\n",
		s.Query, s.Total, s.Reserve, s.Build, s.Mechanism, s.Commit, s.ColdIndex)
	for _, st := range s.Stages {
		if st.Depth == 0 {
			continue // the root duplicates the summary line above
		}
		fmt.Fprintf(&b, "%s%-24s %12v", strings.Repeat("  ", st.Depth), st.Name, st.Duration)
		if len(st.Counters) > 0 {
			keys := make([]string, 0, len(st.Counters))
			for k := range st.Counters {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&b, "  %s=%d", k, st.Counters[k])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// LastStats returns the stage breakdown of the handle's most recently
// finished query (zero value before the first one). Concurrent queries
// race on "last"; use QueryOptions.Stats to capture a specific query's
// stats race-free.
func (ds *Dataset) LastStats() QueryStats {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.lastStats
}

// stageBuckets are the per-stage latency histogram bounds in seconds:
// admission and commit are fsync-scale (sub-millisecond to tens of ms),
// mechanisms run milliseconds to seconds, cold sharded builds seconds.
var stageBuckets = []float64{0.0001, 0.0005, 0.0025, 0.01, 0.05, 0.25, 1, 5}

// The always-on query-stage histograms and index-cache counters, resolved
// once into the process registry so the warm path is a few atomics with
// zero allocations.
var (
	statStageReserve = obs.Default.Histogram("privcluster_query_stage_seconds",
		"Query stage latency (reserve, build, mechanism, commit).", stageBuckets, "stage", "reserve")
	statStageBuild = obs.Default.Histogram("privcluster_query_stage_seconds",
		"Query stage latency (reserve, build, mechanism, commit).", stageBuckets, "stage", "build")
	statStageMechanism = obs.Default.Histogram("privcluster_query_stage_seconds",
		"Query stage latency (reserve, build, mechanism, commit).", stageBuckets, "stage", "mechanism")
	statStageCommit = obs.Default.Histogram("privcluster_query_stage_seconds",
		"Query stage latency (reserve, build, mechanism, commit).", stageBuckets, "stage", "commit")

	statIndexCacheHit = obs.Default.Counter("privcluster_index_cache_total",
		"Ball-index cache lookups by result.", "result", "hit")
	statIndexCacheMiss = obs.Default.Counter("privcluster_index_cache_total",
		"Ball-index cache lookups by result.", "result", "miss")
	statLStepCacheHit = obs.Default.Counter("privcluster_lstep_cache_total",
		"Per-target LStep memo lookups by result.", "result", "hit")
	statLStepCacheMiss = obs.Default.Counter("privcluster_lstep_cache_total",
		"Per-target LStep memo lookups by result.", "result", "miss")
)

// queryTimer threads the coarse stage clock (and, when tracing, the stage
// spans) through one query. It lives on the caller's stack: the untraced
// path allocates nothing.
type queryTimer struct {
	stats QueryStats
	start time.Time
	mark  time.Time
	ctx   context.Context // carries the root span while tracing
	root  *obs.Span
	cur   *obs.Span
}

// beginQuery opens the query's root span (a no-op without a trace in ctx)
// and starts the wall clock. The returned context carries the root span and
// must be the one later stages and the mechanism run under.
func beginQuery(ctx context.Context, name string) (context.Context, queryTimer) {
	qt := queryTimer{start: time.Now(), ctx: ctx}
	qt.stats.Query = name
	// Concatenate the span name only when a trace is live — the untraced
	// fast path must not allocate.
	if tr := obs.FromContext(ctx); tr != nil {
		qt.ctx, qt.root = obs.StartSpan(ctx, "query/"+name)
		qt.stats.TraceID = tr.ID().String()
	}
	return qt.ctx, qt
}

// stage opens the named stage: marks the clock and, when tracing, a child
// span. The returned context runs the stage's inner work so deeper spans
// nest under it.
func (qt *queryTimer) stage(name string) context.Context {
	qt.mark = time.Now()
	sctx, s := obs.StartSpan(qt.ctx, name)
	qt.cur = s
	return sctx
}

// endStage closes the open stage into the given histogram and duration slot.
func (qt *queryTimer) endStage(h *obs.Histogram, d *time.Duration) {
	el := time.Since(qt.mark)
	h.Observe(el.Seconds())
	*d = el
	qt.cur.End()
	qt.cur = nil
}

// finish settles the totals, closes the root span, captures the traced
// stage tree, and stores the stats on the handle (and the caller's
// QueryOptions.Stats out-pointer, if any).
func (qt *queryTimer) finish(ds *Dataset, out *QueryStats) {
	qt.cur.End() // tolerate an abandoned stage on error paths
	qt.stats.Total = time.Since(qt.start)
	qt.root.End()
	if qt.root != nil {
		infos := qt.root.Spans()
		qt.stats.Stages = make([]QueryStage, len(infos))
		for i, in := range infos {
			qt.stats.Stages[i] = QueryStage{
				Name:     in.Name,
				Depth:    in.Depth,
				Duration: time.Duration(in.DurUS) * time.Microsecond,
				Counters: in.Counters,
			}
		}
	}
	ds.mu.Lock()
	ds.lastStats = qt.stats
	ds.mu.Unlock()
	if out != nil {
		*out = qt.stats
	}
}
