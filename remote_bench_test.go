package privcluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"privcluster/internal/bench"
	"privcluster/internal/core"
	"privcluster/internal/geometry"
	"privcluster/internal/transport"
)

// BenchmarkRemoteLoopback measures the shard transport's overhead against
// in-process sharding at n = 100k: both arms run the identical cold
// preprocessing (index construction + the BuildLStep radius sweep, the
// pipeline's dominant cost) over S = 2 shards — "inproc" through the
// fused local pass, "loopback" through the full wire protocol against
// shard servers in this process (handshake ships the 100k points, every
// sweep level is one 400 KB round trip per shard). On one machine the
// delta is pure transport + the backend decomposition's duplicated
// source-cell work; across real machines the same protocol buys S-fold
// compute — see the cost model in the package documentation.
//
//	go test -bench BenchmarkRemoteLoopback -benchmem
func BenchmarkRemoteLoopback(b *testing.B) {
	const n = 100000
	grid, err := geometry.NewGrid(1<<16, 2)
	if err != nil {
		b.Fatal(err)
	}
	pts, tt, err := bench.IndexWorkload(1, n, 2, grid)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("inproc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ix, err := core.NewBallIndex(nil, pts, grid, core.IndexScalable, 0, 2)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := ix.BuildLStep(context.Background(), tt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("loopback", func(b *testing.B) {
		ln := transport.NewLoopbackNet()
		addrs := make([]string, 2)
		for i := range addrs {
			addrs[i] = fmt.Sprintf("shard-%d", i)
			l, err := ln.Listen(addrs[i])
			if err != nil {
				b.Fatal(err)
			}
			srv := transport.NewServer(transport.ServerOptions{})
			go srv.Serve(l)
			b.Cleanup(func() {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				srv.Shutdown(ctx)
			})
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ix, err := core.NewRemoteBallIndex(context.Background(), pts, grid, 0, addrs, ln.Dial)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := ix.BuildLStep(context.Background(), tt); err != nil {
				b.Fatal(err)
			}
			if c, ok := ix.(interface{ Close() error }); ok {
				c.Close()
			}
		}
	})
}
