package privcluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"privcluster/internal/bench"
	"privcluster/internal/core"
	"privcluster/internal/geometry"
	"privcluster/internal/transport"
	"privcluster/internal/vec"
)

// BenchmarkReplicatedLoopback measures what the replication layer costs on
// top of the plain shard transport at n = 50k over 2 partitions: "R=1" is
// a single-replica placement (the wrapper-free fast path — it must cost
// exactly what NewRemoteBallIndexFrame does), "R=2" adds a standby replica
// per partition (failover machinery armed, never fired), and "R=2-hedged"
// additionally re-issues every straggler after 1ms. Each iteration is the
// cold path: dial + handshake (shipping the 50k points to every dialed
// replica) + the BuildLStep radius sweep. The allocs/op gate catches the
// replication layer silently bloating the per-call path; hedging's extra
// cost is duplicated shard compute, visible in ns/op only.
//
//	go test -bench BenchmarkReplicatedLoopback -benchmem
func BenchmarkReplicatedLoopback(b *testing.B) {
	const n = 50000
	grid, err := geometry.NewGrid(1<<16, 2)
	if err != nil {
		b.Fatal(err)
	}
	pts, tt, err := bench.IndexWorkload(1, n, 2, grid)
	if err != nil {
		b.Fatal(err)
	}
	frame, err := vec.FrameFromVectors(pts)
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []struct {
		name  string
		r     int
		hedge time.Duration
	}{
		{"R=1", 1, 0},
		{"R=2", 2, 0},
		{"R=2-hedged", 2, time.Millisecond},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			ln := transport.NewLoopbackNet()
			parts := make([][]string, 2)
			for p := range parts {
				parts[p] = make([]string, cfg.r)
				for r := range parts[p] {
					addr := fmt.Sprintf("shard-%d-replica-%d", p, r)
					l, err := ln.Listen(addr)
					if err != nil {
						b.Fatal(err)
					}
					srv := transport.NewServer(transport.ServerOptions{})
					go srv.Serve(l)
					b.Cleanup(func() {
						ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
						defer cancel()
						srv.Shutdown(ctx)
					})
					parts[p][r] = addr
				}
			}
			ropts := transport.ReplicaOptions{
				Options:       transport.Options{Dial: ln.Dial},
				HedgeDelay:    cfg.hedge,
				ProbeInterval: -1, // nothing goes down; keep tickers out of the numbers
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ix, err := core.NewReplicatedBallIndexFrame(context.Background(), frame, grid, 0, parts, ropts)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := ix.BuildLStep(context.Background(), tt); err != nil {
					b.Fatal(err)
				}
				if c, ok := ix.(interface{ Close() error }); ok {
					c.Close()
				}
			}
		})
	}
}
