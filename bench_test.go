package privcluster

// The benchmark suite regenerates, in quick mode, every table and figure
// reproduced from the paper (one benchmark per artifact — see DESIGN.md's
// per-experiment index), plus micro-benchmarks of the pipeline stages.
// Run with:
//
//	go test -bench=. -benchmem
//
// For the full-size experiment tables, use cmd/experiments instead.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"privcluster/internal/bench"
	"privcluster/internal/core"
	"privcluster/internal/dp"
	"privcluster/internal/experiments"
	"privcluster/internal/geometry"
	"privcluster/internal/vec"
	"privcluster/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// A fixed seed keeps every iteration on the known-good
		// deterministic path; experiments are pure functions of the seed.
		tables := e.Run(1, true)
		if len(tables) == 0 {
			b.Fatal("experiment produced no tables")
		}
	}
}

// BenchmarkTable1 regenerates Table 1 (all four 1-cluster solutions).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkFigure1 regenerates Figure 1 (empty intersection of heavy
// intervals).
func BenchmarkFigure1(b *testing.B) { benchExperiment(b, "fig1") }

// BenchmarkFigure2 regenerates Figure 2 (interval extension capture).
func BenchmarkFigure2(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkRadiusVsN regenerates the w = O(√log n) sweep (Theorem 3.2).
func BenchmarkRadiusVsN(b *testing.B) { benchExperiment(b, "radius-w") }

// BenchmarkDeltaVsDomain regenerates the Δ-vs-|X| sweep (Lemma 3.6 vs the
// threshold-release baseline).
func BenchmarkDeltaVsDomain(b *testing.B) { benchExperiment(b, "delta-logstar") }

// BenchmarkIntPoint regenerates the Theorem 5.3 reduction experiment.
func BenchmarkIntPoint(b *testing.B) { benchExperiment(b, "intpoint") }

// BenchmarkSampleAggregate regenerates the Theorem 6.3 experiment.
func BenchmarkSampleAggregate(b *testing.B) { benchExperiment(b, "sa") }

// BenchmarkKCover regenerates the Observation 3.5 experiment.
func BenchmarkKCover(b *testing.B) { benchExperiment(b, "kcover") }

// BenchmarkAblations regenerates the three design-choice ablations.
func BenchmarkAblations(b *testing.B) { benchExperiment(b, "ablation") }

// BenchmarkEpsilonSweep regenerates the utility-vs-ε cliff (Theorem 3.2's
// 1/ε pricing).
func BenchmarkEpsilonSweep(b *testing.B) { benchExperiment(b, "eps-sweep") }

// BenchmarkKMeans regenerates the private k-means application comparison.
func BenchmarkKMeans(b *testing.B) { benchExperiment(b, "kmeans") }

// BenchmarkTMin regenerates the minimal-workable-t measurement.
func BenchmarkTMin(b *testing.B) { benchExperiment(b, "tmin") }

// BenchmarkLowerBound regenerates the §5 lower-bound landscape table.
func BenchmarkLowerBound(b *testing.B) { benchExperiment(b, "lowerbound") }

// ---- Stage micro-benchmarks --------------------------------------------

func benchSetup(b *testing.B, n, d int) ([]vec.Vector, core.Params) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	grid, err := geometry.NewGrid(1024, d)
	if err != nil {
		b.Fatal(err)
	}
	inst, err := workload.PlantedBall{N: n, ClusterSize: 3 * n / 5, Radius: 0.02}.Generate(rng, grid)
	if err != nil {
		b.Fatal(err)
	}
	prm := core.Params{
		T:       n / 2,
		Privacy: dp.Params{Epsilon: 4, Delta: 0.05},
		Beta:    0.1,
		Grid:    grid,
	}
	return inst.Points, prm
}

// BenchmarkGoodRadius times Algorithm 1 alone (n=800, d=2), excluding the
// one-off O(n² log n) distance-index construction.
func BenchmarkGoodRadius(b *testing.B) {
	pts, prm := benchSetup(b, 800, 2)
	ix, err := geometry.NewDistanceIndex(pts)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.GoodRadius(rng, ix, prm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGoodCenter times Algorithm 2 alone (n=800, d=2).
func BenchmarkGoodCenter(b *testing.B) {
	pts, prm := benchSetup(b, 800, 2)
	rng := rand.New(rand.NewSource(3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.GoodCenter(rng, pts, 0.05, prm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOneClusterPipeline times the full pipeline end to end through
// the public API (n=800, d=2).
func BenchmarkOneClusterPipeline(b *testing.B) {
	pts, _ := benchSetup(b, 800, 2)
	pub := make([]Point, len(pts))
	for i, p := range pts {
		pub[i] = Point(p)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FindCluster(pub, 400, Options{
			Epsilon: 4, Delta: 0.05, Seed: int64(i) + 1, GridSize: 1024,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- GoodCenter box-partition engine benchmarks ------------------------
//
// The box-partition loop is GoodCenter's hot path at scale: one O(n·k)
// count pass per SVT repetition. The packed-key engine bit-packs (or
// hash-combines) the per-axis cell indices into a uint64 and reuses every
// histogram and buffer across repetitions, versus the legacy 8·k-byte
// string key built per point per repetition:
//
//	go test -bench BenchmarkGoodCenter -benchmem
//
// The equivalence tests in internal/core prove both engines release
// bit-identical centers, so the delta here is pure overhead.

func benchGoodCenterAt(b *testing.B, n int, packing core.PackingPolicy) {
	b.Helper()
	grid, err := geometry.NewGrid(1<<16, 2)
	if err != nil {
		b.Fatal(err)
	}
	pts, tt, err := bench.IndexWorkload(1, n, 2, grid)
	if err != nil {
		b.Fatal(err)
	}
	prof := core.DefaultProfile()
	prof.Packing = packing
	prm := core.Params{
		T:       tt,
		Privacy: dp.Params{Epsilon: 4, Delta: 0.05},
		Beta:    0.1,
		Grid:    grid,
		Profile: prof,
	}
	rng := rand.New(rand.NewSource(3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.GoodCenter(rng, pts, 0.05, prm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGoodCenterPacked exercises the packed-key engine across the
// 2k–500k range.
func BenchmarkGoodCenterPacked(b *testing.B) {
	for _, n := range []int{2000, 20000, 100000, 500000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchGoodCenterAt(b, n, core.PackAuto)
		})
	}
}

// BenchmarkGoodCenterStringKey is the legacy string-key baseline on the
// same workloads (stops at 100k; the comparison point the packed engine is
// measured against).
func BenchmarkGoodCenterStringKey(b *testing.B) {
	for _, n := range []int{2000, 20000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchGoodCenterAt(b, n, core.PackLegacy)
		})
	}
}

// BenchmarkDistanceIndex times the O(n²) preprocessing shared by the
// pipeline (n=800, d=2).
func BenchmarkDistanceIndex(b *testing.B) {
	pts, _ := benchSetup(b, 800, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := geometry.NewDistanceIndex(pts); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- BallIndex backend benchmarks ------------------------------------
//
// The radius stage's preprocessing (index construction + BuildLStep, the
// scale ceiling of the whole pipeline) on both backends, with allocation
// reporting so the Θ(n²) vs O(n·d) memory gap is measurable:
//
//	go test -bench BenchmarkBallIndex -benchmem
//
// The exact backend stops at n=8000 (its distance matrix is ≈ 8n² bytes —
// already half a gigabyte there); the scalable backend continues through
// the 50k–500k range the exact one cannot reach.

func benchIndexRadiusStage(b *testing.B, n int, pol core.IndexPolicy) {
	b.Helper()
	grid, err := geometry.NewGrid(1<<16, 2)
	if err != nil {
		b.Fatal(err)
	}
	pts, tt, err := bench.IndexWorkload(1, n, 2, grid)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix, err := core.NewBallIndex(nil, pts, grid, pol, 0, 1)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ix.BuildLStep(context.Background(), tt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBallIndexExact(b *testing.B) {
	for _, n := range []int{2000, 4000, 8000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchIndexRadiusStage(b, n, core.IndexExact)
		})
	}
}

func BenchmarkBallIndexScalable(b *testing.B) {
	for _, n := range []int{2000, 8000, 50000, 100000, 500000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchIndexRadiusStage(b, n, core.IndexScalable)
		})
	}
}

// ---- Sharded index benchmarks ------------------------------------------
//
// BenchmarkShardedBuild times the cold preprocessing (index construction +
// the BuildLStep radius sweep — the pipeline's dominant cost) of the
// scalable backend unsharded (shards=1) versus sharded. Per-shard cell
// indexes build in parallel and the bulk count passes keep their worker
// pools, so on ≥ 4 cores the sharded build should be ≥ 1.5× faster at
// n = 500k; on a single core the comparison mostly measures sharding
// overhead. Equivalence tests (internal/geometry, shard_test.go) prove the
// outputs bit-identical, so the delta here is pure build speed:
//
//	go test -bench BenchmarkShardedBuild -benchmem

func benchShardedBuild(b *testing.B, n, shards int) {
	b.Helper()
	grid, err := geometry.NewGrid(1<<16, 2)
	if err != nil {
		b.Fatal(err)
	}
	pts, tt, err := bench.IndexWorkload(1, n, 2, grid)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix, err := core.NewBallIndex(nil, pts, grid, core.IndexScalable, 0, shards)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ix.BuildLStep(context.Background(), tt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShardedBuild(b *testing.B) {
	for _, n := range []int{100000, 500000} {
		for _, s := range []int{1, 4} {
			b.Run(fmt.Sprintf("n=%d/shards=%d", n, s), func(b *testing.B) {
				benchShardedBuild(b, n, s)
			})
		}
	}
}

// BenchmarkFindClustersBatch compares issuing four warm queries
// sequentially against running them through the batch executor on the same
// prepared handle. Releases are identical; the batch overlaps the
// per-query mechanism work across cores (equal on a single core).
func BenchmarkFindClustersBatch(b *testing.B) {
	grid, err := geometry.NewGrid(1<<16, 2)
	if err != nil {
		b.Fatal(err)
	}
	pts, tt, err := bench.IndexWorkload(1, 100000, 2, grid)
	if err != nil {
		b.Fatal(err)
	}
	pub := make([]Point, len(pts))
	for i, p := range pts {
		pub[i] = Point(p)
	}
	ts := []int{tt - 2000, tt - 1000, tt, tt + 1000}
	open := func(b *testing.B) *Dataset {
		b.Helper()
		ds, err := Open(pub, DatasetOptions{})
		if err != nil {
			b.Fatal(err)
		}
		// Prime the cached index and the per-t L sweeps outside the timer;
		// every timed iteration is then pure query work.
		for _, t := range ts {
			if _, err := ds.FindCluster(context.Background(), t, QueryOptions{Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
		return ds
	}
	b.Run("sequential", func(b *testing.B) {
		ds := open(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for k, t := range ts {
				if _, err := ds.FindCluster(context.Background(), t, QueryOptions{Seed: int64(4*i+k) + 2}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		ds := open(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			batch := make([]Query, len(ts))
			for k, t := range ts {
				batch[k] = Query{T: t, Opts: QueryOptions{Seed: int64(4*i+k) + 2}}
			}
			for _, res := range ds.FindClustersBatch(context.Background(), batch) {
				if res.Err != nil {
					b.Fatal(res.Err)
				}
			}
		}
	})
}

// BenchmarkDatasetReuse pins the handle API's amortization win at
// n = 100k: "cold" opens a fresh Dataset per query (every iteration pays
// quantization + index construction, like the one-shot free functions),
// "warm" queries one prepared handle whose cached index was built before
// the timer started. The warm numbers must show the preprocessing gone —
// a large drop in both ns/op and allocs/op:
//
//	go test -bench BenchmarkDatasetReuse -benchmem
func BenchmarkDatasetReuse(b *testing.B) {
	grid, err := geometry.NewGrid(1<<16, 2)
	if err != nil {
		b.Fatal(err)
	}
	pts, tt, err := bench.IndexWorkload(1, 100000, 2, grid)
	if err != nil {
		b.Fatal(err)
	}
	pub := make([]Point, len(pts))
	for i, p := range pts {
		pub[i] = Point(p)
	}
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ds, err := Open(pub, DatasetOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := ds.FindCluster(context.Background(), tt, QueryOptions{Seed: int64(i) + 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		ds, err := Open(pub, DatasetOptions{})
		if err != nil {
			b.Fatal(err)
		}
		// Prime the cached index outside the timer; every timed iteration
		// is then a pure query.
		if _, err := ds.FindCluster(context.Background(), tt, QueryOptions{Seed: 1}); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ds.FindCluster(context.Background(), tt, QueryOptions{Seed: int64(i) + 2}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDatasetReuseTraced is the warm-query benchmark with tracing: the
// "off" variant is the tracing-disabled fast path (what BenchmarkDatasetReuse
// warm gates — coarse stage timers only, no span bookkeeping, so its
// allocs/op must not move), the "on" variant runs every query under
// WithTrace and prices the full span tree. Recorded in the CI artifact for
// comparison, not gated: the traced path is opt-in per query.
func BenchmarkDatasetReuseTraced(b *testing.B) {
	grid, err := geometry.NewGrid(1<<16, 2)
	if err != nil {
		b.Fatal(err)
	}
	pts, tt, err := bench.IndexWorkload(1, 100000, 2, grid)
	if err != nil {
		b.Fatal(err)
	}
	pub := make([]Point, len(pts))
	for i, p := range pts {
		pub[i] = Point(p)
	}
	ds, err := Open(pub, DatasetOptions{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := ds.FindCluster(context.Background(), tt, QueryOptions{Seed: 1}); err != nil {
		b.Fatal(err)
	}
	b.Run("off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ds.FindCluster(context.Background(), tt, QueryOptions{Seed: int64(i) + 2}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ctx := WithTrace(context.Background())
			if _, err := ds.FindCluster(ctx, tt, QueryOptions{Seed: int64(i) + 2}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFrameSweep pins the flat-frame distance kernels everything above
// rests on: one strided pass over a 100k-row frame with caller-owned output
// buffers. Zero allocs/op and B/op are the contract — a regression here
// means some layer reintroduced per-row allocation into the hot sweep.
func BenchmarkFrameSweep(b *testing.B) {
	grid, err := geometry.NewGrid(1<<16, 8)
	if err != nil {
		b.Fatal(err)
	}
	pts, _, err := bench.IndexWorkload(1, 100000, 8, grid)
	if err != nil {
		b.Fatal(err)
	}
	f, err := vec.FrameFromVectors(pts)
	if err != nil {
		b.Fatal(err)
	}
	q := f.Row(0).Clone()
	out := make([]float64, f.N())
	b.Run("distsq", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.DistSqInto(q, out)
		}
	})
	b.Run("count", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if f.CountWithin(q, 0.25) == 0 {
				b.Fatal("empty ball")
			}
		}
	})
}

// BenchmarkFindClusterScalable times the full pipeline through the public
// API at a size the exact backend cannot represent at all.
func BenchmarkFindClusterScalable(b *testing.B) {
	grid, err := geometry.NewGrid(1<<16, 2)
	if err != nil {
		b.Fatal(err)
	}
	pts, tt, err := bench.IndexWorkload(1, 50000, 2, grid)
	if err != nil {
		b.Fatal(err)
	}
	pub := make([]Point, len(pts))
	for i, p := range pts {
		pub[i] = Point(p)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FindCluster(pub, tt, Options{Seed: int64(i) + 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendMerge is the steady-state streaming cycle on a warm
// mutable handle: every iteration appends a 64-row batch and answers one
// seeded query pinned at the fresh epoch (a full snapshot build plus the
// L-sweep — the real serving cost of an advancing epoch, since per-epoch
// caches cannot help a brand-new epoch); every 8th iteration deletes the
// oldest surviving batch and merges the append deltas into the shard
// bases. What the gate watches: allocs/op regressions here mean the
// epoch-view or delta-merge path started copying or rebuilding more than
// the mutation batch warrants.
func BenchmarkAppendMerge(b *testing.B) {
	grid, err := geometry.NewGrid(1<<16, 2)
	if err != nil {
		b.Fatal(err)
	}
	pts, tt, err := bench.IndexWorkload(1, 20000, 2, grid)
	if err != nil {
		b.Fatal(err)
	}
	pub := make([]Point, len(pts))
	for i, p := range pts {
		pub[i] = Point(p)
	}
	ds, err := Open(pub, DatasetOptions{Mutable: true})
	if err != nil {
		b.Fatal(err)
	}
	defer ds.Close()
	ctx := context.Background()
	// Prime the handle outside the timer: first epoch pinned, first sweep
	// done — iterations then measure the advancing-epoch cycle alone.
	if _, err := ds.FindCluster(ctx, tt, QueryOptions{Seed: 1}); err != nil {
		b.Fatal(err)
	}
	var batches [][]uint64
	batch := make([]Point, 64)
	next := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range batch {
			batch[j] = pub[next%len(pub)]
			next++
		}
		ids, _, err := ds.Append(ctx, batch)
		if err != nil {
			b.Fatal(err)
		}
		batches = append(batches, ids)
		if _, err := ds.FindCluster(ctx, tt, QueryOptions{Seed: int64(i) + 2}); err != nil {
			b.Fatal(err)
		}
		if i%8 == 7 {
			if _, err := ds.Delete(ctx, batches[0]); err != nil {
				b.Fatal(err)
			}
			batches = batches[1:]
			if err := ds.Merge(ctx); err != nil {
				b.Fatal(err)
			}
		}
	}
}
