package privcluster

import (
	"context"
	"errors"
	"fmt"
	"math"
)

// Budget is an (ε, δ) differential-privacy budget. On a Dataset handle it
// is the total the handle will ever spend: every query deducts its cost
// (FindCluster and FindClusters cost their QueryOptions (ε, δ); an
// InteriorPoint query costs (2ε, 2δ), the Theorem 5.3 composition of its
// two stages) and a query whose cost no longer fits is refused with
// ErrBudgetExhausted before any mechanism runs.
//
// The zero value means "no budget": the handle accounts spending (see
// Dataset.Spent) but never refuses a query — the mode the one-shot free
// functions use.
type Budget struct {
	Epsilon float64
	Delta   float64
}

// IsZero reports whether b is the zero value (the "no budget" sentinel).
func (b Budget) IsZero() bool { return b == Budget{} }

// validate checks b as a total budget: ε ≥ 0 and finite, δ ∈ [0, 1).
func (b Budget) validate() error {
	if b.Epsilon < 0 || math.IsNaN(b.Epsilon) || math.IsInf(b.Epsilon, 0) {
		return fmt.Errorf("privcluster: budget epsilon must be ≥ 0 and finite, got %v", b.Epsilon)
	}
	if b.Delta < 0 || b.Delta >= 1 || math.IsNaN(b.Delta) {
		return fmt.Errorf("privcluster: budget delta must be in [0, 1), got %v", b.Delta)
	}
	return nil
}

func (b Budget) String() string {
	return fmt.Sprintf("(ε=%g, δ=%g)", b.Epsilon, b.Delta)
}

// remainingAfter returns the unspent part of b once spent is deducted
// (coordinates clipped at zero) — the one subtraction Dataset.Remaining
// and BudgetError.Remaining share.
func (b Budget) remainingAfter(spent Budget) Budget {
	return Budget{
		Epsilon: math.Max(0, b.Epsilon-spent.Epsilon),
		Delta:   math.Max(0, b.Delta-spent.Delta),
	}
}

// allows reports whether charging cost on top of spent still fits within
// the total budget b — the one admission rule every accounting path
// (sequential queries and the batch executor alike) must share. A small
// relative-plus-absolute slack tolerates float accumulation error, so a
// budget sized for exactly k queries admits all k.
func (b Budget) allows(spent, cost Budget) bool {
	const slack = 1e-9
	return spent.Epsilon+cost.Epsilon <= b.Epsilon*(1+slack)+slack &&
		spent.Delta+cost.Delta <= b.Delta*(1+slack)+slack
}

// ErrBudgetExhausted is the sentinel a Dataset query wraps when its cost no
// longer fits in the handle's remaining budget. The concrete error is a
// *BudgetError carrying the totals; errors.Is(err, ErrBudgetExhausted)
// matches it. A refused query runs no mechanism and consumes nothing.
var ErrBudgetExhausted = errors.New("privcluster: privacy budget exhausted")

// BudgetError is the typed form of a budget refusal: the handle's total
// budget, what had been spent when the query arrived, and the cost the
// query asked for. It wraps ErrBudgetExhausted.
type BudgetError struct {
	// Total is the budget the Dataset was opened with.
	Total Budget
	// Spent is the amount consumed by earlier queries on the handle.
	Spent Budget
	// Requested is the cost of the refused query.
	Requested Budget
}

// Remaining returns the unspent budget (coordinates clipped at zero).
func (e *BudgetError) Remaining() Budget {
	return e.Total.remainingAfter(e.Spent)
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf(
		"%v: query cost %v exceeds remaining %v (spent %v of %v)",
		ErrBudgetExhausted, e.Requested, e.Remaining(), e.Spent, e.Total)
}

// Unwrap makes errors.Is(err, ErrBudgetExhausted) hold for BudgetError.
func (e *BudgetError) Unwrap() error { return ErrBudgetExhausted }

// Admitter is the budget admission seam: it decides whether a query's
// (ε, δ) cost may be spent, before any mechanism runs. The default — a
// nil DatasetOptions.Admitter — is the in-handle accountant below, which
// enforces the handle's own total Budget exactly as Open has always
// done. A non-nil Admitter replaces that gate, letting an external
// authority own the accounting: cmd/privclusterd plugs a durable
// per-principal ledger (internal/ledger) in here, carrying the principal
// in ctx, so budgets survive restarts and span handles and processes.
//
// Admission is two-phase. Reserve places a hold for the cost and is
// called before the expensive per-query work; a refusal must leave no
// state behind and should be a *BudgetError (or at least wrap
// ErrBudgetExhausted) so callers can match it. The returned Reservation
// is settled exactly once: Commit once the mechanism has run (success or
// failure — noise may have been drawn either way), Release only when the
// mechanism provably never ran (the handle releases when index
// construction fails after admission). Implementations must be safe for
// concurrent use.
type Admitter interface {
	Reserve(ctx context.Context, cost Budget) (Reservation, error)
}

// Reservation is one admitted hold, settled exactly once.
type Reservation interface {
	// Commit finalizes the charge.
	Commit() error
	// Release returns the hold (legitimate only if no mechanism ran).
	Release() error
}

// handleAdmitter is the default Admitter: the handle's own Budget and
// spent counter, checked and charged atomically under the handle mutex —
// the former Budget.allows admission path, now behind the seam. Reserve
// charges immediately (the handle keeps its historical "no refund after
// the mechanism starts" semantics, so Commit has nothing left to do) and
// Release refunds, preserving the old behavior that a query aborted
// before its mechanism — e.g. by a failed index build — never charges.
type handleAdmitter struct{ ds *Dataset }

func (a handleAdmitter) Reserve(_ context.Context, cost Budget) (Reservation, error) {
	ds := a.ds
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if b := ds.opts.Budget; !b.IsZero() && !b.allows(ds.spent, cost) {
		return nil, &BudgetError{Total: b, Spent: ds.spent, Requested: cost}
	}
	ds.spent.Epsilon += cost.Epsilon
	ds.spent.Delta += cost.Delta
	return handleReservation{ds: ds, cost: cost}, nil
}

// handleReservation is the default admitter's hold. The charge already
// landed at Reserve time; Release undoes it.
type handleReservation struct {
	ds   *Dataset
	cost Budget
}

func (r handleReservation) Commit() error { return nil }

func (r handleReservation) Release() error {
	ds := r.ds
	ds.mu.Lock()
	defer ds.mu.Unlock()
	ds.spent.Epsilon = math.Max(0, ds.spent.Epsilon-r.cost.Epsilon)
	ds.spent.Delta = math.Max(0, ds.spent.Delta-r.cost.Delta)
	return nil
}

// mirrorReservation wraps an external Admitter's hold so the handle's
// own spent counter (Dataset.Spent — pure observability when an external
// authority owns admission) tracks the same reserve/release motions.
type mirrorReservation struct {
	ds   *Dataset
	r    Reservation
	cost Budget
}

func (m mirrorReservation) Commit() error { return m.r.Commit() }

func (m mirrorReservation) Release() error {
	ds := m.ds
	ds.mu.Lock()
	ds.spent.Epsilon = math.Max(0, ds.spent.Epsilon-m.cost.Epsilon)
	ds.spent.Delta = math.Max(0, ds.spent.Delta-m.cost.Delta)
	ds.mu.Unlock()
	return m.r.Release()
}
