package privcluster

import (
	"context"
	"math/rand"
	"testing"

	"privcluster/internal/core"
	"privcluster/internal/geometry"
)

// TestShardedReleaseEquivalence pins the tentpole guarantee at the public
// API: under a fixed seed, the sharded scalable index (every S and both
// assignment orders of the underlying policy) releases bit-identical
// clusters to the unsharded one. Counts decompose into exact per-shard
// partial sums, so the DP mechanisms consume identical values and draw
// identical noise.
func TestShardedReleaseEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts, _ := plantedPoints(rng, 6000, 4000, 2, 0.02) // > ExactIndexMaxN: scalable backend
	base := Options{Epsilon: 2, Delta: 1e-5, Seed: 9, Shards: 1}

	ref, err := FindCluster(pts, 3000, base)
	if err != nil {
		t.Fatal(err)
	}
	refK, err := FindClusters(pts, 2, 2500, Options{Epsilon: 6, Delta: 3e-5, Seed: 4, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []int{2, 4, 8} {
		o := base
		o.Shards = s
		got, err := FindCluster(pts, 3000, o)
		if err != nil {
			t.Fatalf("S=%d: %v", s, err)
		}
		if got.Radius != ref.Radius || got.RawRadius != ref.RawRadius ||
			got.Center[0] != ref.Center[0] || got.Center[1] != ref.Center[1] {
			t.Errorf("S=%d FindCluster differs from unsharded: %+v vs %+v", s, got, ref)
		}
		gotK, err := FindClusters(pts, 2, 2500, Options{Epsilon: 6, Delta: 3e-5, Seed: 4, Shards: s})
		if err != nil {
			t.Fatalf("S=%d FindClusters: %v", s, err)
		}
		if len(gotK) != len(refK) {
			t.Fatalf("S=%d FindClusters: %d vs %d clusters", s, len(gotK), len(refK))
		}
		for i := range refK {
			if gotK[i].Radius != refK[i].Radius || gotK[i].Center[0] != refK[i].Center[0] {
				t.Errorf("S=%d cluster %d differs: %+v vs %+v", s, i, gotK[i], refK[i])
			}
		}
	}

	if _, err := FindCluster(pts, 3000, Options{Shards: -1, Epsilon: 2, Delta: 1e-5}); err == nil {
		t.Error("negative Shards accepted")
	}
}

// TestShardedReleaseEquivalence100k is the scale acceptance test: on the
// 100k scalable path, handles sharded at S ∈ {2, 4, 8} release bit-identical
// clusters to the unsharded handle under the same seed.
func TestShardedReleaseEquivalence100k(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-point sharded equivalence skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(1))
	pts, _ := plantedPoints(rng, 100000, 60000, 2, 0.03)
	q := QueryOptions{Seed: 42}

	ref, err := Open(pts, DatasetOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.FindCluster(context.Background(), 50000, q)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []int{2, 4, 8} {
		ds, err := Open(pts, DatasetOptions{Shards: s})
		if err != nil {
			t.Fatal(err)
		}
		got, err := ds.FindCluster(context.Background(), 50000, q)
		if err != nil {
			t.Fatalf("S=%d: %v", s, err)
		}
		if got.Radius != want.Radius || got.RawRadius != want.RawRadius ||
			got.Center[0] != want.Center[0] || got.Center[1] != want.Center[1] {
			t.Errorf("S=%d release differs at n=100k: %+v vs %+v", s, got, want)
		}
	}
}

// TestDatasetIndexCacheKey is the satellite regression test: the index
// cache keys by everything that affects the built index (policy, shards,
// workers), so a changed shard count builds a fresh index rather than
// serving a stale one, while a repeated key still hits the cache.
func TestDatasetIndexCacheKey(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	pts, _ := plantedPoints(rng, 6000, 4000, 2, 0.02)
	ds, err := Open(pts, DatasetOptions{IndexPolicy: IndexScalable})
	if err != nil {
		t.Fatal(err)
	}
	shardsOf := func(key indexKey) int {
		t.Helper()
		ix, _, err := ds.index(key)
		if err != nil {
			t.Fatal(err)
		}
		ci, ok := ix.(*cachedIndex)
		if !ok {
			t.Fatalf("index cache returned %T", ix)
		}
		sh, ok := ci.BallIndex.(*geometry.ShardedIndex)
		if !ok {
			return 1 // unsharded CellIndex
		}
		return sh.Shards()
	}

	k2 := indexKey{pol: core.IndexScalable, shards: 2}
	k4 := indexKey{pol: core.IndexScalable, shards: 4}
	if got := shardsOf(k2); got != 2 {
		t.Errorf("key{shards: 2} built a %d-shard index", got)
	}
	if got := shardsOf(k4); got != 4 {
		t.Errorf("key{shards: 4} served a %d-shard index — stale cache hit", got)
	}
	if builds := ds.builds.Load(); builds != 2 {
		t.Errorf("two distinct keys built the index %d times, want 2", builds)
	}
	if got := shardsOf(k2); got != 2 {
		t.Errorf("repeated key{shards: 2} returned a %d-shard index", got)
	}
	if builds := ds.builds.Load(); builds != 2 {
		t.Errorf("repeated key rebuilt: %d builds, want 2", builds)
	}

	// A worker-count change is part of the key too (the pool budget is
	// baked into the built index).
	kw := indexKey{pol: core.IndexScalable, shards: 2, workers: 3}
	if got := shardsOf(kw); got != 2 {
		t.Errorf("worker-keyed index has %d shards", got)
	}
	if builds := ds.builds.Load(); builds != 3 {
		t.Errorf("changed workers did not build a fresh index: %d builds, want 3", builds)
	}

	// FIFO eviction keeps the cache bounded without breaking correctness.
	for s := 5; s < 5+defaultIndexCacheSize+1; s++ {
		if got := shardsOf(indexKey{pol: core.IndexScalable, shards: s}); got != s {
			t.Fatalf("key{shards: %d} returned a %d-shard index", s, got)
		}
	}
	ds.mu.Lock()
	cached := len(ds.indexes)
	ds.mu.Unlock()
	if cached > defaultIndexCacheSize {
		t.Errorf("index cache holds %d entries, bound is %d", cached, defaultIndexCacheSize)
	}
}

// TestDatasetEffectiveKeyShards: the handle resolves automatic shard
// counts through core.ResolveShards — below the auto cutover the key says
// one shard; an explicit request is clamped to n; the exact backend never
// shards.
func TestDatasetEffectiveKeyShards(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	big, _ := plantedPoints(rng, 6000, 4000, 2, 0.02)
	small, _ := plantedPoints(rng, 100, 60, 2, 0.02)

	ds, err := Open(big, DatasetOptions{}) // auto policy → scalable at n=6000
	if err != nil {
		t.Fatal(err)
	}
	if key := ds.effectiveKey(); key.pol != core.IndexScalable || key.shards != 1 {
		t.Errorf("auto shards below the cutover: key = %+v, want scalable/1", key)
	}
	ds, err = Open(big, DatasetOptions{Shards: 16})
	if err != nil {
		t.Fatal(err)
	}
	if key := ds.effectiveKey(); key.shards != 16 {
		t.Errorf("explicit shards: key = %+v, want 16", key)
	}
	ds, err = Open(small, DatasetOptions{Shards: 8}) // n=100 ≤ ExactIndexMaxN → exact
	if err != nil {
		t.Fatal(err)
	}
	if key := ds.effectiveKey(); key.pol != core.IndexExact || key.shards != 1 {
		t.Errorf("exact backend sharded: key = %+v", key)
	}
}
