package privcluster

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"

	"privcluster/internal/core"
	"privcluster/internal/dp"
	"privcluster/internal/geometry"
	"privcluster/internal/transport"
	"privcluster/internal/vec"
)

// Precision selects the in-memory storage width of a Dataset's prepared
// points (see DatasetOptions.Precision).
type Precision int

const (
	// Float64 (the default) stores the quantized points as float64 — the
	// paper-faithful mode every bit-for-bit equivalence guarantee in this
	// package refers to.
	Float64 Precision = iota
	// Float32 stores the quantized points as float32, halving the resident
	// point memory. Distance arithmetic still runs in float64 (each stored
	// coordinate is up-converted exactly), but the storage rounding makes
	// this a distinct release mode: outputs are NOT bit-comparable to a
	// Float64 handle, only to another Float32 handle with the same seed.
	// Fine grids (|X| ≳ 2²⁴) exceed float32's 24-bit mantissa and will
	// alias adjacent grid values; keep the default precision there.
	Float32
)

// DatasetOptions configures Open: everything about the data and its
// preparation that is fixed for the lifetime of the handle. Per-query knobs
// (the (ε, δ) cost, β, the seed) live in QueryOptions instead. The zero
// value gives the unit-cube domain, |X| = 2¹⁶, the automatic index backend
// and no budget (queries are accounted but never refused).
type DatasetOptions struct {
	// GridSize is |X|: the number of grid values per axis of the finite
	// domain X^d (default 2¹⁶). Points are snapped onto the grid once, at
	// Open.
	GridSize int64
	// Min and Max describe the data domain [Min, Max]^d (Remark 3.3).
	// Inputs are affinely mapped onto the unit cube at Open and query
	// outputs mapped back. Both zero means the unit cube itself.
	Min, Max float64
	// IndexPolicy selects the ball-index backend (default IndexAuto). The
	// handle builds the index lazily on the first query and caches it —
	// the amortization the handle exists for.
	IndexPolicy IndexPolicy
	// Workers bounds the worker pools of the parallel passes (see
	// Options.Workers). 0 means GOMAXPROCS.
	Workers int
	// Shards splits the scalable ball index into per-shard cell indexes
	// built in parallel and queried as exact partial sums (see
	// Options.Shards). 0 means automatic: GOMAXPROCS shards at
	// n ≥ 100,000, unsharded below. Sharding never changes releases.
	Shards int
	// BoxPacking selects GoodCenter's box-key engine (default PackingAuto).
	BoxPacking BoxPacking
	// Precision selects the storage width of the prepared points (default
	// Float64). Float32 halves the handle's resident point memory at the
	// cost of bit-compatibility with Float64 handles — see Precision.
	Precision Precision
	// Paper switches every internal constant to the paper's proof values.
	Paper bool
	// Placement maps shard partitions onto shard servers — one replica
	// address set per partition, with failover, optional hedged reads,
	// and background health probing on multi-replica partitions (see
	// Placement). When set, the ball index is built with one shard per
	// partition, each served over the wire protocol (cmd/shardserver
	// hosts the replicas; cmd/shardctl generates and validates placement
	// files). Remote execution presumes the scalable backend, so
	// IndexPolicy and Shards are ignored; releases stay bit-identical to
	// local execution under the same seed regardless of which replica
	// answers — see the "Remote shards" and "Replication and failover"
	// sections of the package documentation. The partition structure
	// identifies the cached index, so it must be stable for the handle's
	// lifetime; Close releases the connections. Mutually exclusive with
	// the deprecated RemoteShards.
	Placement *Placement
	// RemoteShards lists shard-server addresses: one single-replica
	// partition per address.
	//
	// Deprecated: RemoteShards is the pre-replication flat form; it is
	// exactly equivalent to a Placement whose every partition holds one
	// replica, which is how it is implemented (releases and cache
	// identity included). New code should set Placement.
	RemoteShards []string
	// RemoteDial overrides how shard-server connections are established
	// (nil = TCP) for the deprecated RemoteShards path. It exists for
	// in-process loopback transports in tests and demos; the dial
	// function itself is transport mechanics and is not part of the
	// index cache identity.
	//
	// Deprecated: set Placement.Dial instead.
	RemoteDial func(ctx context.Context, addr string) (net.Conn, error)
	// IndexCacheSize bounds how many built ball indexes the handle keeps
	// (FIFO-evicted; 0 means the default of 4). The effective key is
	// nearly always constant per handle, so the bound only matters when
	// resolution drifts (see indexKey).
	IndexCacheSize int
	// Mutable opens a streaming handle: Append and Delete advance the
	// dataset through numbered epochs, and every query runs on an
	// immutable snapshot of one epoch (the current one, or the epoch
	// pinned by QueryOptions.AtEpoch) that answers bit-identically to a
	// fresh Open on exactly that epoch's point set. Mutability presumes
	// the scalable backend — IndexExact is rejected (IndexAuto resolves
	// scalable) — and Float64 storage (Float32 is rejected). Mutation
	// spends no budget; releases spend exactly as on an immutable handle.
	// See the package documentation's "Streaming ingestion" section.
	Mutable bool
	// Budget is the total (ε, δ) the handle may spend across all queries.
	// The zero value means "no budget": spending is tracked (Spent) but
	// never refused — the semantics of the one-shot free functions. Budget
	// accounting is per-handle: opening two handles over the same people's
	// data gives each its own budget, and the real-world guarantee is their
	// composition (the sum). When that caveat is not acceptable, hand the
	// accounting to an external authority via Admitter instead.
	Budget Budget
	// Admitter, when non-nil, replaces the handle's own Budget admission:
	// every query's (ε, δ) cost is reserved through it before any
	// mechanism runs, committed once the mechanism has run, and released
	// only if the query aborted before its mechanism (see Admitter). It is
	// how one admission authority — e.g. cmd/privclusterd's durable
	// per-principal ledger — spans many handles and processes; the
	// per-query principal travels in the query context, not on the handle.
	// Mutually exclusive with Budget (the handle would not know which gate
	// is authoritative). Spent still tracks reserved-minus-released costs
	// for observability; Remaining reports "no budget" since the admitter
	// owns the answer.
	Admitter Admitter
}

func (o DatasetOptions) withDefaults() DatasetOptions {
	if o.GridSize == 0 {
		o.GridSize = 1 << 16
	}
	return o
}

// validate rejects malformed handle configuration up front, so no query
// ever fails late on an Open-time mistake.
func (o DatasetOptions) validate() error {
	if (o.Min != 0 || o.Max != 0) && o.Max <= o.Min {
		return fmt.Errorf("privcluster: domain bounds Max=%v ≤ Min=%v", o.Max, o.Min)
	}
	if math.IsNaN(o.Min) || math.IsInf(o.Min, 0) || math.IsNaN(o.Max) || math.IsInf(o.Max, 0) {
		return fmt.Errorf("privcluster: domain bounds must be finite, got [%v, %v]", o.Min, o.Max)
	}
	if _, err := o.IndexPolicy.core(); err != nil {
		return err
	}
	if o.BoxPacking < PackingAuto || o.BoxPacking > PackingLegacy {
		return fmt.Errorf("privcluster: unknown box packing %d", o.BoxPacking)
	}
	if o.Precision != Float64 && o.Precision != Float32 {
		return fmt.Errorf("privcluster: unknown precision %d", o.Precision)
	}
	if o.Shards < 0 {
		return fmt.Errorf("privcluster: shards must be ≥ 0 (0 = automatic), got %d", o.Shards)
	}
	for i, a := range o.RemoteShards {
		if a == "" {
			return fmt.Errorf("privcluster: remote shard address %d is empty", i)
		}
	}
	if o.Placement != nil {
		if len(o.RemoteShards) > 0 {
			return fmt.Errorf("privcluster: Placement and RemoteShards are mutually exclusive (RemoteShards is the deprecated single-replica form)")
		}
		if o.RemoteDial != nil {
			return fmt.Errorf("privcluster: Placement and RemoteDial are mutually exclusive (set Placement.Dial)")
		}
		if err := o.Placement.validate(); err != nil {
			return err
		}
	}
	if o.IndexCacheSize < 0 {
		return fmt.Errorf("privcluster: index cache size must be ≥ 0 (0 = default %d), got %d",
			defaultIndexCacheSize, o.IndexCacheSize)
	}
	if o.Mutable {
		if o.Precision == Float32 {
			return fmt.Errorf("privcluster: Mutable requires Float64 precision (snapshots promise bit-identity with fresh Float64 opens)")
		}
		if o.IndexPolicy == IndexExact {
			return fmt.Errorf("privcluster: Mutable requires the scalable index (IndexExact has no incremental form)")
		}
		if p := o.placement(); p != nil && !p.singleReplica() {
			// A mutable session is connection-scoped and non-idempotent:
			// replaying an append on a sibling could apply it twice, and a
			// sibling dialed later would miss every earlier epoch. Refuse
			// up front rather than fail on the first mutation.
			return fmt.Errorf("privcluster: Mutable requires single-replica partitions (epoch sessions are connection-scoped and cannot fail over)")
		}
	}
	if o.Admitter != nil && !o.Budget.IsZero() {
		return fmt.Errorf("privcluster: Budget and Admitter are mutually exclusive — the Admitter owns admission")
	}
	return o.Budget.validate()
}

// placement normalizes the two remote-configuration forms into one: the
// structured Placement when set, the deprecated RemoteShards/RemoteDial
// pair as a trivial single-replica Placement (the equivalence that makes
// the deprecated path a thin wrapper — same dialing code, same cache
// identity, bit-identical releases), nil for local execution.
func (o DatasetOptions) placement() *Placement {
	if o.Placement != nil {
		return o.Placement
	}
	if len(o.RemoteShards) == 0 {
		return nil
	}
	parts := make([][]string, len(o.RemoteShards))
	for i, a := range o.RemoteShards {
		parts[i] = []string{a}
	}
	return &Placement{Partitions: parts, Dial: o.RemoteDial}
}

// span returns the domain width Max−Min, defaulting to the unit interval.
func (o DatasetOptions) span() float64 {
	if o.Min == 0 && o.Max == 0 {
		return 1
	}
	return o.Max - o.Min
}

func (o DatasetOptions) toUnit(x float64) float64   { return (x - o.Min) / o.span() }
func (o DatasetOptions) fromUnit(x float64) float64 { return o.Min + x*o.span() }

func (o DatasetOptions) profile() core.Profile {
	p := core.DefaultProfile()
	if o.Paper {
		p = core.PaperProfile()
	}
	p.Workers = o.Workers
	p.Shards = o.Shards
	p.Packing = core.PackingPolicy(o.BoxPacking)
	return p
}

// QueryOptions configures one query on a Dataset handle. The zero value
// gives ε = 1, δ = 10⁻⁶, β = 0.1 and a time-seeded generator (fresh noise
// per query — the only safe default for a privacy library).
type QueryOptions struct {
	// Epsilon, Delta are the differential-privacy cost of this query; the
	// handle deducts them from its Budget (twice each for InteriorPoint —
	// see Budget).
	Epsilon float64
	Delta   float64
	// Beta is the failure-probability target of the utility guarantees.
	Beta float64
	// Seed makes the query reproducible; 0 is the "fresh seed from the
	// clock" sentinel unless ZeroSeed is set (same semantics as
	// Options.Seed).
	Seed     int64
	ZeroSeed bool
	// AtEpoch pins the query to a past epoch of a Mutable handle: the
	// release is computed on exactly that epoch's point set, regardless of
	// appends, deletes, or merges that landed since. 0 means the current
	// epoch. Deletes retire older epochs — pinning one fails with
	// ErrEpochRetired unless its snapshot is still cached. On an immutable
	// handle any nonzero value is an error.
	AtEpoch uint64
	// Stats, when non-nil, receives the query's stage breakdown (see
	// QueryStats) once the query finishes — the race-free alternative to
	// Dataset.LastStats. Purely observational: it never changes releases,
	// budget accounting, or errors.
	Stats *QueryStats
}

func (q QueryOptions) withDefaults() QueryOptions {
	if q.Epsilon == 0 {
		q.Epsilon = 1
	}
	if q.Delta == 0 {
		q.Delta = 1e-6
	}
	if q.Beta == 0 {
		q.Beta = 0.1
	}
	return q
}

// validate rejects out-of-range privacy/utility parameters before any
// budget is consulted or any mechanism runs. It expects defaults to have
// been applied (the zero values stand for the defaults, not for "invalid").
func (q QueryOptions) validate() error {
	if q.Epsilon <= 0 || math.IsNaN(q.Epsilon) || math.IsInf(q.Epsilon, 0) {
		return fmt.Errorf("privcluster: epsilon must be positive and finite, got %v", q.Epsilon)
	}
	if q.Delta <= 0 || q.Delta >= 1 || math.IsNaN(q.Delta) {
		return fmt.Errorf("privcluster: delta must be in (0, 1), got %v", q.Delta)
	}
	if q.Beta <= 0 || q.Beta >= 1 || math.IsNaN(q.Beta) {
		return fmt.Errorf("privcluster: beta must be in (0, 1), got %v", q.Beta)
	}
	return nil
}

func (q QueryOptions) rng() *rand.Rand {
	return seededRNG(q.Seed, q.ZeroSeed)
}

// indexEntry is one lazily built, cached ball index. The once/err pair
// makes concurrent first queries build it exactly once and share the
// outcome.
type indexEntry struct {
	once sync.Once
	ix   geometry.BallIndex
	err  error
}

// indexKey identifies one cached ball index by every input that affects
// what core.NewBallIndex / core.NewRemoteBallIndex builds: the resolved
// policy, the resolved shard count, the worker budget baked into the
// index's pools, and — for remote execution — the shard-server address
// list. Keying by the full tuple (rather than the policy alone)
// guarantees a configuration whose resolution drifts between queries —
// e.g. the automatic shard count following a runtime.GOMAXPROCS change —
// builds a matching index instead of serving a stale one; the remote
// component keeps a remote configuration from ever colliding with a local
// one of the same shard count.
type indexKey struct {
	pol     core.IndexPolicy
	shards  int
	workers int
	// remote is the placement's structural cache key ("" = local): the
	// partition/replica address structure with every address
	// length-prefixed, so no two distinct placements — including
	// addresses containing separator characters, or ["a,b"] vs
	// ["a","b"] — can ever share a cached index (see Placement.cacheKey).
	// The dial function and the failover knobs are deliberately not part
	// of the key (they are transport mechanics — see Placement).
	remote string
}

// defaultIndexCacheSize bounds the per-handle index cache when
// DatasetOptions.IndexCacheSize is zero; the cache is FIFO-evicted. A
// handle's effective key is nearly always constant, so the bound only
// matters when resolution drifts (see indexKey); evicting an entry never
// invalidates in-flight queries, which keep their reference.
const defaultIndexCacheSize = 4

// maxCachedLSteps bounds the per-handle L(·, S) cache: one entry per
// distinct query target t, FIFO-evicted. A serving process typically
// queries a handful of t values, so a small bound captures the win while
// keeping the worst case (the exact backend's O(n²)-breakpoint steps)
// bounded.
const maxCachedLSteps = 8

// cachedIndex decorates the handle's ball index with a memo of the
// BuildLStep sweep — the dominant per-query preprocessing cost, and a pure
// deterministic function of (points, t). Repeated queries at the same t
// skip the whole sweep, which is where the handle's warm-query amortization
// comes from (see BenchmarkDatasetReuse). Caching a deterministic
// preprocessing artifact changes neither the release distribution nor the
// seeded bit-for-bit equivalence with the free functions.
type cachedIndex struct {
	geometry.BallIndex

	mu     sync.Mutex
	lsteps map[int]*geometry.LStep
	order  []int // FIFO of cached targets for eviction
}

func newCachedIndex(ix geometry.BallIndex) *cachedIndex {
	return &cachedIndex{BallIndex: ix, lsteps: make(map[int]*geometry.LStep)}
}

func (c *cachedIndex) BuildLStep(ctx context.Context, t int) (*geometry.LStep, error) {
	c.mu.Lock()
	ls, ok := c.lsteps[t]
	c.mu.Unlock()
	if ok {
		statLStepCacheHit.Inc()
		return ls, nil
	}
	statLStepCacheMiss.Inc()
	// Build outside the lock: concurrent first queries at the same t may
	// both sweep, but the results are identical and the second recording is
	// a no-op — queries never serialize behind a multi-second sweep.
	ls, err := c.BallIndex.BuildLStep(ctx, t)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if _, dup := c.lsteps[t]; !dup {
		c.lsteps[t] = ls
		c.order = append(c.order, t)
		if len(c.order) > maxCachedLSteps {
			delete(c.lsteps, c.order[0])
			c.order = c.order[1:]
		}
	}
	c.mu.Unlock()
	return ls, nil
}

// Dataset is a prepared, reusable handle over one point set: Open validates
// the configuration, rescales the domain and quantizes the points exactly
// once; the first query builds the ball index (the dominant preprocessing
// cost at n ≥ 10⁵) and caches it so subsequent queries skip straight to the
// private mechanisms; and every query's (ε, δ) cost is deducted from the
// handle's Budget under a mutex, so a serving process can enforce a total
// privacy budget across many queries on the same data.
//
// A Dataset is safe for concurrent use. Queries take a context.Context:
// cancellation is threaded through the long-running inner loops (the cell
// index's bulk-count worker pools, GoodCenter's SVT repetition loop, the
// RecConcave recursion, KCover's rounds), so deadlines abort an in-flight
// query promptly without leaking goroutines. A context that is already
// cancelled when the query arrives consumes no budget; cancelling an
// in-flight query does not refund its charge (noise may already have been
// drawn).
type Dataset struct {
	opts DatasetOptions
	// place is the normalized remote configuration (nil = local): the
	// structured Placement, or the trivial one the deprecated
	// RemoteShards wrapper constructs (see DatasetOptions.placement).
	place *Placement
	grid  geometry.Grid
	dim   int
	// frame holds the unit-domain, grid-quantized points in one flat
	// allocation (float64, or float32 under DatasetOptions.Precision); every
	// index build and feasibility check sweeps it in place.
	frame *vec.Frame
	// values holds the original (unit-mapped, unquantized) coordinates of a
	// 1-D dataset — what InteriorPoint operates on, per Algorithm 3 (which
	// runs on the raw values, not their grid snaps). Kept sorted: the
	// algorithm's first step is a sort, so order cannot affect the release,
	// and pre-sorting turns the per-query sorts into near-linear passes.
	values []float64
	pol    core.IndexPolicy

	// mut is the handle's mutable index (nil unless opts.Mutable): appends
	// and deletes advance it in numbered epochs; queries pin one epoch's
	// snapshot. Built eagerly at Open — a streaming handle must accept
	// mutations before its first query.
	mut geometry.MutableBallIndex
	// mutMu serializes mutations and guards the 1-D raw-value mirror
	// below. It is separate from mu so budget accounting and index cache
	// lookups never wait behind a remote append round trip.
	mutMu sync.Mutex
	// rawVals/rowIDs mirror the mutable index's row order for 1-D handles:
	// the unit-mapped, unquantized values InteriorPoint runs on, with the
	// assigned ids alongside so deletes compact the mirror identically.
	rawVals []float64
	rowIDs  []uint64
	// valsAt records the mirror length at each live epoch (reset by
	// deletes, which retire older epochs); valsAtOrder FIFO-bounds it.
	valsAt      map[uint64]int
	valsAtOrder []uint64
	// valsCache holds sorted copies of the mirror per pinned epoch.
	valsCache      map[uint64][]float64
	valsCacheOrder []uint64

	mu       sync.Mutex
	closed   bool
	spent    Budget
	indexes  map[indexKey]*indexEntry
	keyOrder []indexKey // FIFO of cached keys for eviction
	// epochs caches one built snapshot per pinned epoch of a mutable
	// handle (single-flight, FIFO-evicted like indexes).
	epochs     map[geometry.Epoch]*indexEntry
	epochOrder []geometry.Epoch
	// builds counts index constructions (diagnostics; the concurrency test
	// pins it at one).
	builds atomic.Int32
	// lastStats is the stage breakdown of the most recently finished query
	// (see LastStats / QueryStats). Guarded by mu.
	lastStats QueryStats
	// scratch pools per-query working buffers (rotation matrices, histogram
	// maps, member lists) so warm queries re-lend instead of reallocating.
	// Scratch reuse never changes releases — only where intermediates live.
	scratch sync.Pool
}

// Open prepares a reusable Dataset handle: it validates the options and the
// points, maps them into the unit cube (Remark 3.3) and snaps them onto the
// |X|-per-axis grid. No index is built and no budget is spent — both happen
// on the first query.
func Open(points []Point, o DatasetOptions) (*Dataset, error) {
	o = o.withDefaults()
	if len(points) == 0 {
		return nil, ErrNoPoints
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	pol, err := o.IndexPolicy.core()
	if err != nil {
		return nil, err
	}
	d := len(points[0])
	grid, err := geometry.NewGrid(o.GridSize, d)
	if err != nil {
		return nil, err
	}
	frame := vec.NewFrame(len(points), d)
	if o.Precision == Float32 {
		frame = vec.NewFrame32(len(points), d)
	}
	var values []float64
	if d == 1 {
		values = make([]float64, len(points))
	}
	u := make(vec.Vector, d)
	for i, p := range points {
		if len(p) != d {
			return nil, fmt.Errorf("privcluster: point %d has dimension %d, want %d", i, len(p), d)
		}
		for j, x := range p {
			u[j] = o.toUnit(x)
		}
		if d == 1 {
			values[i] = u[0]
		}
		grid.QuantizeInto(u, u)
		frame.SetRow(i, u)
	}
	ds := &Dataset{
		opts:    o,
		place:   o.placement(),
		grid:    grid,
		dim:     d,
		frame:   frame,
		pol:     pol,
		indexes: make(map[indexKey]*indexEntry),
	}
	if o.Mutable {
		// A mutable handle keeps the 1-D mirror in insertion order (sorted
		// copies are cut per pinned epoch) and builds its index eagerly:
		// mutations must land before the first query.
		if d == 1 {
			ds.rawVals = values
			ds.rowIDs = make([]uint64, len(points))
			for i := range ds.rowIDs {
				ds.rowIDs[i] = uint64(i)
			}
		}
		var mut geometry.MutableBallIndex
		var err error
		if ds.place != nil {
			// validate() already pinned the placement to single-replica
			// partitions (epoch sessions cannot fail over), so the flat
			// per-partition address list feeds the plain mutable path.
			mut, err = core.NewRemoteMutableBallIndexFrame(context.Background(), frame, grid,
				o.Workers, ds.place.flatten(), ds.place.Dial)
		} else {
			mut, err = core.NewMutableBallIndexFrame(context.Background(), frame, grid, o.Workers, o.Shards)
		}
		if err != nil {
			return nil, err
		}
		ds.mut = mut
		ds.valsAt = map[uint64]int{uint64(mut.Epoch()): len(points)}
		ds.valsAtOrder = []uint64{uint64(mut.Epoch())}
		ds.valsCache = make(map[uint64][]float64)
		ds.epochs = make(map[geometry.Epoch]*indexEntry)
		return ds, nil
	}
	sort.Float64s(values) // no-op for nil; see the Dataset.values doc
	ds.values = values
	return ds, nil
}

// N returns the number of points in the handle — for a mutable handle,
// the count at the current epoch.
func (ds *Dataset) N() int {
	if ds.mut != nil {
		return ds.mut.Rows()
	}
	return ds.frame.N()
}

// checkOpen refuses work on a closed handle with the typed ErrClosed.
func (ds *Dataset) checkOpen() error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.closed {
		return ErrClosed
	}
	return nil
}

// Dim returns the dimension of the handle's points.
func (ds *Dataset) Dim() int { return ds.dim }

// Remaining returns the unspent budget and whether the handle enforces one;
// handles opened without a Budget return (Budget{}, false) and never refuse
// a query.
func (ds *Dataset) Remaining() (Budget, bool) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.opts.Budget.IsZero() {
		return Budget{}, false
	}
	return ds.opts.Budget.remainingAfter(ds.spent), true
}

// Spent returns the budget consumed by the handle's queries so far (also
// tracked on handles without a Budget).
func (ds *Dataset) Spent() Budget {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.spent
}

// reserve admits cost through the handle's admission authority — the
// in-handle Budget accountant by default, DatasetOptions.Admitter when
// set — refusing (with a *BudgetError wrapping ErrBudgetExhausted by the
// default authority, and recording nothing) a query that no longer fits.
// Admission runs before the expensive per-query work; the caller settles
// the returned hold exactly once — Commit after the mechanism has run
// (success or failure: noise may have been drawn either way), Release
// only if the query aborted before its mechanism could run. External
// admissions are mirrored into ds.spent so Spent stays meaningful.
func (ds *Dataset) reserve(ctx context.Context, cost Budget) (Reservation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if a := ds.opts.Admitter; a != nil {
		r, err := a.Reserve(ctx, cost)
		if err != nil {
			return nil, err
		}
		ds.mu.Lock()
		ds.spent.Epsilon += cost.Epsilon
		ds.spent.Delta += cost.Delta
		ds.mu.Unlock()
		return mirrorReservation{ds: ds, r: r, cost: cost}, nil
	}
	return handleAdmitter{ds: ds}.Reserve(ctx, cost)
}

// effectiveKey resolves the handle's configuration to what would actually
// be built right now — IndexAuto to its backend, automatic shards to the
// concrete count — so the cache is keyed by the built artifact (an
// explicit policy and an Auto that resolves to it share one index) and a
// resolution drift can never serve a stale index.
func (ds *Dataset) effectiveKey() indexKey {
	n := ds.frame.N()
	if ds.place != nil {
		// Remote execution presumes the scalable sharded backend: one
		// shard per partition (geometry clamps to at most n, mirrored
		// here so the key matches what is built).
		shards := len(ds.place.Partitions)
		if shards > n {
			shards = n
		}
		return indexKey{
			pol:     core.IndexScalable,
			shards:  shards,
			workers: core.ResolveWorkers(ds.opts.Workers),
			remote:  ds.place.cacheKey(),
		}
	}
	pol := core.ResolveIndexPolicy(ds.pol, n)
	shards := 1
	if pol == core.IndexScalable {
		shards = core.ResolveShards(ds.opts.Shards, n)
	}
	return indexKey{pol: pol, shards: shards, workers: core.ResolveWorkers(ds.opts.Workers)}
}

// index returns the cached ball index for the key, building it exactly
// once per key even under concurrent first queries; cold reports whether
// this call ran the build (rather than reusing a cached index). Index
// construction draws no randomness, so a cached index releases
// bit-identical seeded results to a per-call build. The build gets no
// query context: the index is shared by every later query on the handle,
// so one caller's deadline must not poison it (cancellation still aborts
// the per-query BuildLStep sweep, the dominant cost).
func (ds *Dataset) index(key indexKey) (ix geometry.BallIndex, cold bool, err error) {
	ds.mu.Lock()
	e, ok := ds.indexes[key]
	if !ok {
		e = &indexEntry{}
		ds.indexes[key] = e
		ds.keyOrder = append(ds.keyOrder, key)
		if max := ds.indexCacheSize(); len(ds.keyOrder) > max {
			// The evicted entry is not Closed here: in-flight queries may
			// still hold it. Remote handles keep their options stable, so
			// eviction churn does not arise in practice; Dataset.Close
			// releases whatever is cached at the end.
			delete(ds.indexes, ds.keyOrder[0])
			ds.keyOrder = ds.keyOrder[1:]
		}
	}
	ds.mu.Unlock()
	if ok {
		statIndexCacheHit.Inc()
	} else {
		statIndexCacheMiss.Inc()
	}
	e.once.Do(func() {
		cold = true
		ds.builds.Add(1)
		// key.shards is already resolved, so the build matches the key even
		// if GOMAXPROCS changed since effectiveKey ran (ResolveShards is
		// idempotent on resolved values).
		var ix geometry.BallIndex
		var err error
		if key.remote != "" {
			p := ds.place
			ix, err = core.NewReplicatedBallIndexFrame(context.Background(), ds.frame, ds.grid,
				key.workers, p.Partitions, transport.ReplicaOptions{
					Options: transport.Options{
						Dial:        p.Dial,
						DialTimeout: p.DialTimeout,
						Retries:     p.Retries,
					},
					HedgeDelay:    p.HedgeDelay,
					ProbeInterval: p.ProbeInterval,
				})
		} else {
			ix, err = core.NewBallIndexFrame(context.Background(), ds.frame, ds.grid, key.pol, key.workers, key.shards)
		}
		if err != nil {
			e.err = err
			return
		}
		e.ix = newCachedIndex(ix)
	})
	return e.ix, cold, e.err
}

// indexCacheSize resolves the configured cache bound (0 = default).
func (ds *Dataset) indexCacheSize() int {
	if ds.opts.IndexCacheSize > 0 {
		return ds.opts.IndexCacheSize
	}
	return defaultIndexCacheSize
}

// Close releases the resources held by the handle's cached indexes — the
// shard-server connections of a remote handle, the mutable index's merge
// goroutines and sessions; local immutable indexes hold none, making Close
// optional for them. Close is idempotent; after the first call every
// query and mutation fails with ErrClosed. Queries in flight when Close is
// called may fail.
func (ds *Dataset) Close() error {
	ds.mu.Lock()
	if ds.closed {
		ds.mu.Unlock()
		return nil
	}
	ds.closed = true
	entries := make([]*indexEntry, 0, len(ds.indexes))
	for _, e := range ds.indexes {
		entries = append(entries, e)
	}
	ds.indexes = make(map[indexKey]*indexEntry)
	ds.keyOrder = nil
	// Epoch snapshots are views into the mutable index — closing it below
	// releases their backing; the cache entries just drop.
	ds.epochs = nil
	ds.epochOrder = nil
	ds.mu.Unlock()
	var first error
	if ds.mut != nil {
		first = ds.mut.Close()
	}
	for _, e := range entries {
		e.once.Do(func() {}) // settle concurrent builders
		ci, ok := e.ix.(*cachedIndex)
		if !ok {
			continue
		}
		if c, ok := ci.BallIndex.(interface{ Close() error }); ok {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// params assembles the core configuration for one cluster query.
func (ds *Dataset) params(ctx context.Context, t int, q QueryOptions) core.Params {
	return core.Params{
		T:       t,
		Privacy: dp.Params{Epsilon: q.Epsilon, Delta: q.Delta},
		Beta:    q.Beta,
		Grid:    ds.grid,
		Profile: ds.opts.profile(),
		Index:   ds.pol,
		Ctx:     ctx,
	}
}

// prepareQuery is the shared front door of the cluster queries: defaults,
// parameter validation, the prompt pre-cancellation check (before any
// budget is consulted), the t range check, and the feasibility pre-flight
// at the per-round budget — all against the frame the query will actually
// run on (the handle's own for immutable queries, the pinned epoch's
// snapshot for mutable ones). It spends nothing.
func (ds *Dataset) prepareQuery(ctx context.Context, f *vec.Frame, t, rounds int, q QueryOptions) (QueryOptions, core.Params, error) {
	q = q.withDefaults()
	if err := q.validate(); err != nil {
		return q, core.Params{}, err
	}
	if err := ctx.Err(); err != nil {
		return q, core.Params{}, err
	}
	if t < 1 || t > f.N() {
		return q, core.Params{}, fmt.Errorf("privcluster: t=%d out of [1, n=%d]", t, f.N())
	}
	prm := ds.params(ctx, t, q)
	plaus := func(p core.Params) bool { return core.ZeroClusterPlausibleFrame(f, p) }
	if err := checkFeasible(plaus, prm, rounds, q, ds.opts.GridSize); err != nil {
		return q, core.Params{}, err
	}
	return q, prm, nil
}

// queryIndex resolves the ball index and frame one cluster query runs on.
// Immutable handles defer the (cached, lazily built) index until after
// validation, so ix may come back nil with a nil error — the caller builds
// it via ds.index(ds.effectiveKey()) once the query is known to be valid.
// Mutable handles must pin a snapshot up front (its frame feeds
// validation); pinning spends nothing.
func (ds *Dataset) queryIndex(q QueryOptions) (ix geometry.BallIndex, f *vec.Frame, err error) {
	if ds.mut == nil {
		if q.AtEpoch != 0 {
			return nil, nil, fmt.Errorf("privcluster: AtEpoch=%d on an immutable dataset (open with DatasetOptions.Mutable)", q.AtEpoch)
		}
		return nil, ds.frame, nil
	}
	ix, err = ds.pinEpoch(q.AtEpoch)
	if err != nil {
		return nil, nil, err
	}
	return ix, ix.Frame(), nil
}

// acquireScratch lends the handle's pooled per-query working buffers into
// prm. The returned release must be deferred; until it runs the scratch is
// exclusively owned by this query (sync.Pool guarantees no sharing).
func (ds *Dataset) acquireScratch(prm *core.Params) (release func()) {
	sc, _ := ds.scratch.Get().(*core.QueryScratch)
	if sc == nil {
		sc = core.NewQueryScratch()
	}
	prm.Scratch = sc
	return func() { ds.scratch.Put(sc) }
}

// FindCluster is the 1-cluster query (Theorem 3.2) on the prepared handle:
// identical semantics and — under the same seed — bit-identical releases to
// the free FindCluster, with the index amortized across the handle's
// queries and the (ε, δ) cost deducted from its Budget.
func (ds *Dataset) FindCluster(ctx context.Context, t int, q QueryOptions) (Cluster, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ds.checkOpen(); err != nil {
		return Cluster{}, err
	}
	ctx, qt := beginQuery(ctx, "cluster")
	ix, f, err := ds.queryIndex(q)
	if err != nil {
		return Cluster{}, err
	}
	q, prm, err := ds.prepareQuery(ctx, f, t, 1, q)
	if err != nil {
		return Cluster{}, err
	}
	// Admission before compute: the hold is placed before the (possibly
	// expensive) index build, released if the build fails — the mechanism
	// never ran — and committed once the mechanism has (even on error:
	// noise may have been drawn).
	rctx := qt.stage("reserve")
	rsv, err := ds.reserve(rctx, Budget{Epsilon: q.Epsilon, Delta: q.Delta})
	qt.endStage(statStageReserve, &qt.stats.Reserve)
	if err != nil {
		return Cluster{}, err
	}
	qt.stage("build")
	if ix == nil {
		var cold bool
		if ix, cold, err = ds.index(ds.effectiveKey()); err != nil {
			_ = rsv.Release()
			qt.finish(ds, q.Stats)
			return Cluster{}, err
		}
		qt.stats.ColdIndex = cold
	}
	qt.endStage(statStageBuild, &qt.stats.Build)
	release := ds.acquireScratch(&prm)
	defer release()
	prm.Ctx = qt.stage("mechanism")
	res, err := core.OneClusterIndexed(q.rng(), ix, prm)
	qt.endStage(statStageMechanism, &qt.stats.Mechanism)
	qt.stage("commit")
	cerr := rsv.Commit()
	qt.endStage(statStageCommit, &qt.stats.Commit)
	if err == nil {
		err = cerr
	}
	qt.finish(ds, q.Stats)
	if err != nil {
		return Cluster{}, err
	}
	center := make(Point, len(res.Ball.Center))
	for j, x := range res.Ball.Center {
		center[j] = ds.opts.fromUnit(x)
	}
	return Cluster{
		Center:     center,
		Radius:     res.Ball.Radius * ds.opts.span(),
		RawRadius:  res.RawRadius * ds.opts.span(),
		ZeroRadius: res.ZeroCluster,
	}, nil
}

// FindClusters is the k-ball covering query (Observation 3.5): one (ε, δ)
// charge, split internally across the k rounds. Round 1 runs on the cached
// index; later rounds cover the not-yet-covered remainder.
func (ds *Dataset) FindClusters(ctx context.Context, k, t int, q QueryOptions) ([]Cluster, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if k < 1 {
		return nil, fmt.Errorf("privcluster: FindClusters needs k ≥ 1, got %d", k)
	}
	if err := ds.checkOpen(); err != nil {
		return nil, err
	}
	ctx, qt := beginQuery(ctx, "kcover")
	ix, f, err := ds.queryIndex(q)
	if err != nil {
		return nil, err
	}
	q, prm, err := ds.prepareQuery(ctx, f, t, k, q)
	if err != nil {
		return nil, err
	}
	rctx := qt.stage("reserve")
	rsv, err := ds.reserve(rctx, Budget{Epsilon: q.Epsilon, Delta: q.Delta})
	qt.endStage(statStageReserve, &qt.stats.Reserve)
	if err != nil {
		return nil, err
	}
	qt.stage("build")
	if ix == nil {
		var cold bool
		if ix, cold, err = ds.index(ds.effectiveKey()); err != nil {
			_ = rsv.Release()
			qt.finish(ds, q.Stats)
			return nil, err
		}
		qt.stats.ColdIndex = cold
	}
	qt.endStage(statStageBuild, &qt.stats.Build)
	release := ds.acquireScratch(&prm)
	defer release()
	prm.Ctx = qt.stage("mechanism")
	balls, err := core.KCoverIndexed(q.rng(), ix, k, prm)
	qt.endStage(statStageMechanism, &qt.stats.Mechanism)
	qt.stage("commit")
	cerr := rsv.Commit()
	qt.endStage(statStageCommit, &qt.stats.Commit)
	if err == nil {
		err = cerr
	}
	qt.finish(ds, q.Stats)
	if err != nil {
		return nil, err
	}
	out := make([]Cluster, len(balls))
	for i, b := range balls {
		center := make(Point, len(b.Center))
		for j, x := range b.Center {
			center[j] = ds.opts.fromUnit(x)
		}
		out[i] = Cluster{Center: center, Radius: b.Radius * ds.opts.span()}
	}
	return out, nil
}

// InteriorPoint is the Algorithm 3 query on a 1-dimensional handle: a value
// between the dataset's min and max (Theorem 5.3), in the handle's original
// domain units. Its budget cost is (2ε, 2δ) — the reduction composes the
// inner 1-cluster stage with the final RecConcave selection, each at
// (ε, δ). Like the free function, it runs on the raw (unquantized) values;
// the handle's grid only discretizes the inner cluster search.
func (ds *Dataset) InteriorPoint(ctx context.Context, innerN int, q QueryOptions) (float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ds.checkOpen(); err != nil {
		return 0, err
	}
	if ds.dim != 1 {
		return 0, fmt.Errorf("privcluster: InteriorPoint needs a 1-dimensional dataset, got dimension %d", ds.dim)
	}
	q = q.withDefaults()
	if err := q.validate(); err != nil {
		return 0, err
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	values := ds.values
	if ds.mut != nil {
		var err error
		if values, err = ds.epochValues(q.AtEpoch); err != nil {
			return 0, err
		}
	} else if q.AtEpoch != 0 {
		return 0, fmt.Errorf("privcluster: AtEpoch=%d on an immutable dataset (open with DatasetOptions.Mutable)", q.AtEpoch)
	}
	m := len(values)
	if innerN <= 0 || innerN >= m {
		return 0, fmt.Errorf("privcluster: InteriorPoint needs 0 < innerN < n, got innerN=%d, n=%d", innerN, m)
	}
	if innerN < 2 {
		// The inner 1-cluster stage targets t = innerN/2 ≥ 1; reject the
		// degenerate case here, before any budget is consulted.
		return 0, fmt.Errorf("privcluster: InteriorPoint needs innerN ≥ 2 (inner cluster target innerN/2), got %d", innerN)
	}
	cprm := ds.params(ctx, innerN/2, q)
	// Feasibility pre-flight on exactly the middle sub-database the inner
	// 1-cluster stage will see — the same check FindCluster gets, run
	// before any budget is charged. values is kept (or cut) sorted, so the
	// middle extraction is a slice, not a fresh sort.
	middle := core.IntPointMiddleSorted(values, innerN)
	plaus := func(p core.Params) bool { return core.ZeroClusterPlausible(middle, p) }
	if err := checkFeasible(plaus, cprm, 1, q, ds.opts.GridSize); err != nil {
		return 0, err
	}
	ctx, qt := beginQuery(ctx, "interior")
	rctx := qt.stage("reserve")
	rsv, err := ds.reserve(rctx, Budget{Epsilon: 2 * q.Epsilon, Delta: 2 * q.Delta})
	qt.endStage(statStageReserve, &qt.stats.Reserve)
	if err != nil {
		return 0, err
	}
	release := ds.acquireScratch(&cprm)
	defer release()
	cprm.Ctx = qt.stage("mechanism")
	res, err := core.IntPoint(q.rng(), values, core.IntPointParams{
		InnerN:  innerN,
		Cluster: cprm,
		Privacy: dp.Params{Epsilon: q.Epsilon, Delta: q.Delta},
		Beta:    q.Beta,
	})
	qt.endStage(statStageMechanism, &qt.stats.Mechanism)
	qt.stage("commit")
	cerr := rsv.Commit()
	qt.endStage(statStageCommit, &qt.stats.Commit)
	if err == nil {
		err = cerr
	}
	qt.finish(ds, q.Stats)
	if err != nil {
		return 0, err
	}
	return ds.opts.fromUnit(res.Point), nil
}

// checkFeasible pre-flights the t/ε regime at the per-round budget (rounds
// > 1 for FindClusters, whose KCover splits (ε, δ) across rounds — each
// round must be feasible on its share, not on the total). Below the floor
// the RecConcave promise Γ and the stability release thresholds — all
// scaling as (1/ε)·log(1/δ) — are unreachable, and the run would fail
// after spending its budget with an opaque promise violation (the flaky
// t ≈ Γ regime). The one escape is a duplicate-dominated dataset, whose
// radius-zero path bypasses the search: plausible reports whether the
// caller's data could fire it at the per-round budget (the handle queries
// pass core.ZeroClusterPlausibleFrame over the prepared frame; callers
// holding loose vectors pass a core.ZeroClusterPlausible closure).
func checkFeasible(plausible func(core.Params) bool, prm core.Params, rounds int, q QueryOptions, gridSize int64) error {
	if rounds < 1 {
		rounds = 1
	}
	check := prm
	check.Privacy = check.Privacy.Split(rounds)
	if floor := check.MinFeasibleT(); float64(prm.T) < floor && !plausible(check) {
		f := int(math.Ceil(floor))
		budget := fmt.Sprintf("ε=%g, δ=%g", q.Epsilon, q.Delta)
		if rounds > 1 {
			budget = fmt.Sprintf("per-round ε=%g, δ=%g (budget split across %d rounds)",
				q.Epsilon/float64(rounds), q.Delta/float64(rounds), rounds)
		}
		return fmt.Errorf(
			"%w: t=%d is below the feasible floor ≈%d for %s, β=%g, |X|=%d — raise t to ≥ %d, raise ε, or relax δ/β",
			ErrInfeasible, prm.T, f, budget, q.Beta, gridSize, f)
	}
	return nil
}
