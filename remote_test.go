package privcluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"privcluster/internal/core"
	"privcluster/internal/transport"
)

// startLoopbackServers brings up `count` shard servers on an in-process
// loopback net and returns their addresses plus the DatasetOptions fields
// that route queries through them.
func startLoopbackServers(t *testing.T, count int) ([]string, *transport.LoopbackNet) {
	t.Helper()
	ln := transport.NewLoopbackNet()
	addrs := make([]string, count)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("shard-%d", i)
		l, err := ln.Listen(addrs[i])
		if err != nil {
			t.Fatal(err)
		}
		srv := transport.NewServer(transport.ServerOptions{})
		go srv.Serve(l)
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		})
	}
	return addrs, ln
}

// TestRemoteReleaseEquivalence pins the transport tentpole at the public
// API: with S ∈ {2, 4} shards served over the loopback wire protocol,
// seeded releases from Dataset.FindCluster and Dataset.FindClusters are
// bit-identical to both the local sharded and the unsharded backends —
// the DP mechanisms consume identical counts and draw identical noise, so
// the privacy analysis is untouched by where the shards run.
func TestRemoteReleaseEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	pts, _ := plantedPoints(rng, 6000, 4000, 2, 0.02) // > ExactIndexMaxN: scalable backend
	ctx := context.Background()
	q := QueryOptions{Epsilon: 2, Delta: 1e-5, Seed: 9}
	qk := QueryOptions{Epsilon: 6, Delta: 3e-5, Seed: 4}

	release := func(o DatasetOptions) (Cluster, []Cluster) {
		t.Helper()
		ds, err := Open(pts, o)
		if err != nil {
			t.Fatal(err)
		}
		defer ds.Close()
		c, err := ds.FindCluster(ctx, 3000, q)
		if err != nil {
			t.Fatal(err)
		}
		cs, err := ds.FindClusters(ctx, 2, 2500, qk)
		if err != nil {
			t.Fatal(err)
		}
		return c, cs
	}

	ref, refK := release(DatasetOptions{Shards: 1})
	for _, s := range []int{2, 4} {
		local, localK := release(DatasetOptions{Shards: s})
		addrs, ln := startLoopbackServers(t, s)
		remote, remoteK := release(DatasetOptions{RemoteShards: addrs, RemoteDial: ln.Dial})
		for name, got := range map[string]Cluster{"local sharded": local, "remote": remote} {
			if got.Radius != ref.Radius || got.RawRadius != ref.RawRadius ||
				got.Center[0] != ref.Center[0] || got.Center[1] != ref.Center[1] {
				t.Errorf("S=%d %s FindCluster differs from unsharded: %+v vs %+v", s, name, got, ref)
			}
		}
		for name, got := range map[string][]Cluster{"local sharded": localK, "remote": remoteK} {
			if len(got) != len(refK) {
				t.Fatalf("S=%d %s FindClusters: %d vs %d clusters", s, name, len(got), len(refK))
			}
			for i := range refK {
				if got[i].Radius != refK[i].Radius || got[i].Center[0] != refK[i].Center[0] {
					t.Errorf("S=%d %s cluster %d differs: %+v vs %+v", s, name, i, got[i], refK[i])
				}
			}
		}
	}
}

// TestRemoteIndexCacheKey: the regression the cache refactor guards — a
// remote configuration must never share a cache slot with a local one of
// the same policy/shards/workers shape, and distinct address lists are
// distinct identities.
func TestRemoteIndexCacheKey(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	pts, _ := plantedPoints(rng, 5000, 3000, 2, 0.02)

	local, err := Open(pts, DatasetOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	remote, err := Open(pts, DatasetOptions{RemoteShards: []string{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	remote2, err := Open(pts, DatasetOptions{RemoteShards: []string{"a", "c"}})
	if err != nil {
		t.Fatal(err)
	}
	lk, rk, rk2 := local.effectiveKey(), remote.effectiveKey(), remote2.effectiveKey()
	if lk == rk {
		t.Fatalf("local and remote cache keys collide: %+v", lk)
	}
	if rk == rk2 {
		t.Fatalf("distinct address lists share a cache key: %+v", rk)
	}
	if rk.pol != core.IndexScalable || rk.shards != 2 {
		t.Errorf("remote key = %+v, want scalable/2", rk)
	}
	if lk.remote != "" {
		t.Errorf("local key carries a remote component: %+v", lk)
	}

	// More addresses than points clamps the key like the build.
	few := pts[:3]
	small, err := Open(few, DatasetOptions{RemoteShards: []string{"a", "b", "c", "d", "e"}})
	if err != nil {
		t.Fatal(err)
	}
	if k := small.effectiveKey(); k.shards != 3 {
		t.Errorf("remote shards not clamped to n: %+v", k)
	}

	// Remote addresses must be well-formed up front.
	if _, err := Open(pts, DatasetOptions{RemoteShards: []string{"a", ""}}); err == nil {
		t.Error("empty remote shard address accepted")
	}
}

// TestDatasetIndexCacheSize: the configurable bound is honored (a size-1
// cache re-builds on alternating keys; the default keeps both), and
// malformed sizes are rejected at Open.
func TestDatasetIndexCacheSize(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pts, _ := plantedPoints(rng, 5000, 3000, 2, 0.02)

	build := func(ds *Dataset, shards int) {
		t.Helper()
		if _, _, err := ds.index(indexKey{pol: core.IndexScalable, shards: shards, workers: 1}); err != nil {
			t.Fatal(err)
		}
	}

	ds, err := Open(pts, DatasetOptions{IndexCacheSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	build(ds, 1)
	build(ds, 2) // evicts shards=1
	build(ds, 1) // must rebuild
	if builds := ds.builds.Load(); builds != 3 {
		t.Errorf("size-1 cache: %d builds, want 3", builds)
	}
	ds.mu.Lock()
	cached := len(ds.indexes)
	ds.mu.Unlock()
	if cached != 1 {
		t.Errorf("size-1 cache holds %d entries", cached)
	}

	ds, err = Open(pts, DatasetOptions{}) // default size 4
	if err != nil {
		t.Fatal(err)
	}
	build(ds, 1)
	build(ds, 2)
	build(ds, 1)
	if builds := ds.builds.Load(); builds != 2 {
		t.Errorf("default cache: %d builds, want 2", builds)
	}

	if _, err := Open(pts, DatasetOptions{IndexCacheSize: -1}); err == nil {
		t.Error("negative IndexCacheSize accepted")
	}
}

// TestRemoteDatasetClose: Close releases the remote connections and the
// handle reports no error; a handle over dead servers surfaces a typed
// transport error from its first query instead of hanging.
func TestRemoteDatasetClose(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	pts, _ := plantedPoints(rng, 5000, 3000, 2, 0.02)
	addrs, ln := startLoopbackServers(t, 2)
	ds, err := Open(pts, DatasetOptions{RemoteShards: addrs, RemoteDial: ln.Dial})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.FindCluster(context.Background(), 3000, QueryOptions{Epsilon: 2, Delta: 1e-5, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Dead servers: the first query fails with a transport error.
	deadNet := transport.NewLoopbackNet()
	ds2, err := Open(pts, DatasetOptions{RemoteShards: []string{"gone"}, RemoteDial: deadNet.Dial})
	if err != nil {
		t.Fatal(err)
	}
	defer ds2.Close()
	_, err = ds2.FindCluster(context.Background(), 3000, QueryOptions{Epsilon: 2, Delta: 1e-5})
	var te *transport.Error
	if !errors.As(err, &te) {
		t.Fatalf("query against dead servers: err = %v, want *transport.Error", err)
	}
}
