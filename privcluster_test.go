package privcluster

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func plantedPoints(rng *rand.Rand, n, clusterSize int, d int, radius float64) ([]Point, Point) {
	center := make(Point, d)
	for j := range center {
		center[j] = 0.3 + 0.4*rng.Float64()
	}
	pts := make([]Point, 0, n)
	for i := 0; i < clusterSize; i++ {
		p := make(Point, d)
		for j := range p {
			p[j] = center[j] + (rng.Float64()*2-1)*radius/math.Sqrt(float64(d))
		}
		pts = append(pts, p)
	}
	for i := clusterSize; i < n; i++ {
		p := make(Point, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts = append(pts, p)
	}
	return pts, center
}

func TestFindClusterPublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts, center := plantedPoints(rng, 800, 500, 2, 0.02)
	c, err := FindCluster(pts, 400, Options{Epsilon: 4, Delta: 0.05, Seed: 7, GridSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Count(pts); got < 400 {
		t.Errorf("cluster ball holds %d < 400 points", got)
	}
	cv := make(Point, 2)
	copy(cv, center)
	if !c.Contains(cv) {
		t.Errorf("planted center %v outside found ball (c=%v r=%v)", center, c.Center, c.Radius)
	}
	if c.RawRadius <= 0 || c.Radius < c.RawRadius {
		t.Errorf("radius bookkeeping wrong: raw=%v out=%v", c.RawRadius, c.Radius)
	}
}

func TestFindClusterDefaultsApplied(t *testing.T) {
	// Zero options must not panic or loop: tiny ε with tiny data will
	// likely error, which is acceptable — just exercise the defaults path.
	rng := rand.New(rand.NewSource(2))
	pts, _ := plantedPoints(rng, 60, 40, 2, 0.01)
	_, err := FindCluster(pts, 30, Options{})
	_ = err // any outcome is fine; no panic is the assertion
}

func TestFindClusterErrors(t *testing.T) {
	if _, err := FindCluster(nil, 5, Options{}); err != ErrNoPoints {
		t.Errorf("empty input error = %v", err)
	}
	pts := []Point{{0.5, 0.5}, {0.5}}
	if _, err := FindCluster(pts, 1, Options{Seed: 1}); err == nil {
		t.Error("ragged dimensions accepted")
	}
	if _, err := FindCluster([]Point{{0.5, 0.5}}, 5, Options{Seed: 1}); err == nil {
		t.Error("t > n accepted")
	}
}

// TestFindClusterInfeasibleRegimeRejected covers the pre-flight feasibility
// check: the flaky t ≈ Γ regime (e.g. t = 100 at the default ε = 1,
// δ = 10⁻⁶) must be rejected up front with an actionable typed error
// instead of failing after the budget is spent, while the long-standing
// workable regime passes the check untouched.
func TestFindClusterInfeasibleRegimeRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts, _ := plantedPoints(rng, 600, 400, 2, 0.02)

	_, err := FindCluster(pts, 100, Options{Seed: 1})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("defaults with t=100: err = %v, want ErrInfeasible", err)
	}
	for _, want := range []string{"raise t", "ε=1", "δ=1e-06"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}

	// The same t at a generous budget is not pre-flight-rejected.
	if _, err := FindCluster(pts, 400, Options{Epsilon: 4, Delta: 0.05, Seed: 7, GridSize: 1024}); err != nil {
		t.Errorf("workable regime rejected: %v", err)
	}
}

// TestFindClusterDuplicatesBelowFloorStillSucceed: a duplicate-dominated
// dataset succeeds through the radius-zero path at any t, so the
// pre-flight must not reject it — with the default profile or the paper
// constants (which are exempt from the floor entirely).
func TestFindClusterDuplicatesBelowFloorStillSucceed(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	pts := make([]Point, 5000)
	for i := range pts {
		if i < 4500 {
			pts[i] = Point{0.5, 0.5}
		} else {
			pts[i] = Point{rng.Float64(), rng.Float64()}
		}
	}
	c, err := FindCluster(pts, 500, Options{Seed: 1}) // defaults: t=500 ≪ floor
	if err != nil {
		t.Fatalf("duplicate cluster rejected: %v", err)
	}
	if !c.ZeroRadius {
		t.Errorf("expected the radius-zero path, got raw radius %v", c.RawRadius)
	}

	// Paper constants are exempt from the floor: the pre-flight must let
	// them through (the run may still fail downstream in the center stage's
	// huge paper thresholds — that categorical behavior is documented).
	if _, err := FindCluster(pts, 500, Options{Seed: 1, Paper: true}); errors.Is(err, ErrInfeasible) {
		t.Errorf("paper profile pre-flight-rejected: %v", err)
	}
}

// TestFindClustersSplitBudgetPreflight: KCover runs each round at (ε/k,
// δ/k), so feasibility must be judged on the per-round share — a t that
// passes at the full budget but not at ε/k is rejected up front instead of
// silently burning all k rounds.
func TestFindClustersSplitBudgetPreflight(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts, _ := plantedPoints(rng, 6000, 4000, 2, 0.02)
	// t=2500 clears the full-budget floor (≈2000 at ε=1, δ=1e-6) but not
	// the per-round floor at ε=0.25.
	_, err := FindClusters(pts, 4, 2500, Options{Seed: 3})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("k=4 split-budget regime: err = %v, want ErrInfeasible", err)
	}
	if !strings.Contains(err.Error(), "per-round") || !strings.Contains(err.Error(), "4 rounds") {
		t.Errorf("error %q does not explain the per-round budget", err)
	}
}

// The new tuning knobs must not change seeded results (Workers) and must be
// validated (BoxPacking).
func TestFindClusterWorkersAndPacking(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts, _ := plantedPoints(rng, 800, 500, 2, 0.02)
	base := Options{Epsilon: 4, Delta: 0.05, Seed: 7, GridSize: 1024}
	ref, err := FindCluster(pts, 400, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range []Options{
		{Epsilon: 4, Delta: 0.05, Seed: 7, GridSize: 1024, Workers: 1},
		{Epsilon: 4, Delta: 0.05, Seed: 7, GridSize: 1024, Workers: 4},
		{Epsilon: 4, Delta: 0.05, Seed: 7, GridSize: 1024, BoxPacking: PackingHashed},
		{Epsilon: 4, Delta: 0.05, Seed: 7, GridSize: 1024, BoxPacking: PackingLegacy, Workers: 3},
	} {
		c, err := FindCluster(pts, 400, o)
		if err != nil {
			t.Fatalf("%+v: %v", o, err)
		}
		if c.Radius != ref.Radius || c.Center[0] != ref.Center[0] || c.Center[1] != ref.Center[1] {
			t.Errorf("options %+v changed the seeded result", o)
		}
	}
	if _, err := FindCluster(pts, 400, Options{Seed: 1, BoxPacking: BoxPacking(9)}); err == nil {
		t.Error("unknown BoxPacking accepted")
	}
}

func TestFindClusterDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts, _ := plantedPoints(rng, 600, 400, 2, 0.02)
	o := Options{Epsilon: 4, Delta: 0.05, Seed: 99, GridSize: 1024}
	a, errA := FindCluster(pts, 300, o)
	b, errB := FindCluster(pts, 300, o)
	if (errA == nil) != (errB == nil) {
		t.Fatalf("divergent errors: %v vs %v", errA, errB)
	}
	if errA == nil {
		if a.Radius != b.Radius || a.Center[0] != b.Center[0] {
			t.Error("same seed produced different clusters")
		}
	}
}

func TestFindClustersCoversBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var pts []Point
	centers := []Point{{0.2, 0.2}, {0.8, 0.8}}
	for _, c := range centers {
		sub, _ := plantedPoints(rng, 300, 300, 2, 0.02)
		for _, p := range sub {
			pts = append(pts, Point{c[0] + (p[0]-0.5)*0.1, c[1] + (p[1]-0.5)*0.1})
		}
	}
	clusters, err := FindClusters(pts, 2, 200, Options{Epsilon: 12, Delta: 0.06, Seed: 5, GridSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) == 0 {
		t.Fatal("no clusters found")
	}
	covered := 0
	for _, p := range pts {
		for _, c := range clusters {
			if c.Contains(p) {
				covered++
				break
			}
		}
	}
	if covered < len(pts)/3 {
		t.Errorf("clusters cover only %d/%d points", covered, len(pts))
	}
}

func TestInteriorPointPublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := make([]float64, 2400)
	for i := range vals {
		switch {
		case i < 400:
			vals[i] = 0.1 * rng.Float64()
		case i >= 2000:
			vals[i] = 0.9 + 0.1*rng.Float64()
		default:
			vals[i] = 0.5 + (rng.Float64()*2-1)*0.01
		}
	}
	got, err := InteriorPoint(vals, 1600, Options{Epsilon: 4, Delta: 0.05, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if got < 0 || got > 1 {
		t.Errorf("interior point %v outside data range", got)
	}
	if _, err := InteriorPoint(nil, 1, Options{}); err != ErrNoPoints {
		t.Errorf("empty input error = %v", err)
	}
}

func TestAggregatePublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	rows := make([]float64, 40000)
	for i := range rows {
		rows[i] = 0.4 + rng.NormFloat64()*0.02
	}
	mean2D := func(rs []float64) Point {
		var s float64
		for _, r := range rs {
			s += r
		}
		m := s / float64(len(rs))
		return Point{m, m}
	}
	z, err := Aggregate(rows, mean2D, 2, 5, 0.8,
		Options{Epsilon: 4, Delta: 0.05, Seed: 13, GridSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(z[0]-0.4) > 0.3 || math.Abs(z[1]-0.4) > 0.3 {
		t.Errorf("aggregate %v too far from the stable point (0.4, 0.4)", z)
	}
}
