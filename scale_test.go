package privcluster

import (
	"math/rand"
	"os"
	"regexp"
	"testing"
	"time"
)

// TestFindClusterScalable100k is the scale acceptance test for the cell
// index backend: FindCluster on 100,000 points (d = 2, default Options —
// i.e. ε = 1, |X| = 2¹⁶, auto index policy) must complete and locate the
// planted cluster. The Θ(n²) distance matrix would need ≈ 80 GB here, so
// completing at all demonstrates the scalable path; the benchmarks in
// bench_test.go quantify the speed and memory of both backends.
func TestFindClusterScalable100k(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n, tt = 100000, 50000
	pts, _ := plantedPoints(rng, n, 60000, 2, 0.03)
	c, err := FindCluster(pts, tt, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Count(pts); got < tt {
		t.Errorf("cluster ball holds %d < %d points", got, tt)
	}
	if c.RawRadius <= 0 || c.RawRadius > 0.3 {
		t.Errorf("raw radius %v far from the planted scale", c.RawRadius)
	}
}

// Both explicit backends solve the same small instance through the public
// API.
func TestFindClusterIndexPolicies(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts, _ := plantedPoints(rng, 800, 500, 2, 0.02)
	for _, pol := range []IndexPolicy{IndexAuto, IndexExact, IndexScalable} {
		c, err := FindCluster(pts, 400, Options{
			Epsilon: 4, Delta: 0.05, Seed: 7, GridSize: 1024, IndexPolicy: pol,
		})
		if err != nil {
			t.Fatalf("policy %d: %v", pol, err)
		}
		if got := c.Count(pts); got < 400 {
			t.Errorf("policy %d: ball holds %d < 400 points", pol, got)
		}
	}
	if _, err := FindCluster(pts, 400, Options{Seed: 1, IndexPolicy: IndexPolicy(42)}); err == nil {
		t.Error("unknown index policy accepted")
	}
}

// Seed 0 stays the documented "fresh noise per call" sentinel (the only
// safe default for a DP library), while ZeroSeed makes the literal zero
// seed expressible and reproducible — previously impossible.
func TestSeedSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts, _ := plantedPoints(rng, 600, 400, 2, 0.02)
	o := Options{Epsilon: 4, Delta: 0.05, GridSize: 1024, ZeroSeed: true} // literal seed 0
	a, errA := FindCluster(pts, 300, o)
	b, errB := FindCluster(pts, 300, o)
	if (errA == nil) != (errB == nil) {
		t.Fatalf("ZeroSeed not deterministic: %v vs %v", errA, errB)
	}
	if errA == nil && (a.Radius != b.Radius || a.Center[0] != b.Center[0]) {
		t.Error("ZeroSeed produced different clusters across calls")
	}

	// Without ZeroSeed, Seed 0 draws a fresh stream per call; two
	// generators drawn in sequence must not produce identical prefixes.
	// Retry with a sleep so a coarse platform clock (two UnixNano calls in
	// one tick) cannot fail the test spuriously.
	same := true
	for attempt := 0; attempt < 5 && same; attempt++ {
		r1, r2 := Options{}.rng(), Options{}.rng()
		same = true
		for i := 0; i < 8; i++ {
			if r1.Int63() != r2.Int63() {
				same = false
			}
		}
		if same {
			time.Sleep(time.Millisecond)
		}
	}
	if same {
		t.Error("default (sentinel) generators produced identical streams")
	}

	// A literal zero seed and a fixed nonzero seed agree with themselves.
	z1, z2 := Options{ZeroSeed: true}.rng(), Options{ZeroSeed: true}.rng()
	for i := 0; i < 8; i++ {
		if z1.Int63() != z2.Int63() {
			t.Fatal("ZeroSeed generators diverged")
		}
	}
}

// The module definition is part of the build contract: tier-1
// (`go build ./... && go test ./...`) only works from a clean checkout
// because go.mod pins the module path every internal import uses. Guard it
// against regressing (it was missing entirely once).
func TestGoModConsistent(t *testing.T) {
	data, err := os.ReadFile("go.mod")
	if err != nil {
		t.Fatalf("go.mod unreadable: %v", err)
	}
	if !regexp.MustCompile(`(?m)^module privcluster$`).Match(data) {
		t.Errorf("go.mod does not declare `module privcluster`:\n%s", data)
	}
	if !regexp.MustCompile(`(?m)^go \d+\.\d+`).Match(data) {
		t.Errorf("go.mod does not pin a Go version:\n%s", data)
	}
}
