// Private k-means (the §1.1 clustering motivation): cluster three planted
// populations with differential privacy, using the 1-cluster algorithm as
// the seeding engine (Observation 3.5) and NoisyAVG Lloyd refinement.
//
//	go run ./examples/kmeans
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"privcluster"
)

func main() {
	rng := rand.New(rand.NewSource(8))

	truth := []privcluster.Point{{0.2, 0.3}, {0.5, 0.75}, {0.8, 0.25}}
	var points []privcluster.Point
	for _, c := range truth {
		for i := 0; i < 380; i++ {
			points = append(points, privcluster.Point{
				c[0] + rng.NormFloat64()*0.015,
				c[1] + rng.NormFloat64()*0.015,
			})
		}
	}
	for i := 0; i < 60; i++ { // background
		points = append(points, privcluster.Point{rng.Float64(), rng.Float64()})
	}

	res, err := privcluster.KMeans(points, 3, privcluster.KMeansOptions{
		Options: privcluster.Options{Epsilon: 30, Delta: 0.06, Seed: 2, GridSize: 1024},
		T:       280, Rounds: 3, MoveRadius: 0.12,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("private k-means (ε=30, δ=0.06): %d centers, cost %.5f\n\n", len(res.Centers), res.Cost)
	for i, z := range res.Centers {
		best := math.Inf(1)
		for _, c := range truth {
			if d := math.Hypot(z[0]-c[0], z[1]-c[1]); d < best {
				best = d
			}
		}
		fmt.Printf("  center %d: (%.3f, %.3f) — %.4f from its planted population\n", i+1, z[0], z[1], best)
	}
}
