// Outlier screening (the §1.1 motivation): locate a ball holding ~90% of
// the data privately, treat everything outside as outliers, and show how
// screening slashes the noise a downstream private mean needs.
//
// The global-sensitivity mean over the whole unit square must add noise
// proportional to the domain diameter; after privately restricting to the
// found ball, the sensitivity — and hence the noise — shrinks by the ratio
// of the diameters (the paper's "dramatic improvement in accuracy").
//
//	go run ./examples/outliers
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"privcluster"
)

func main() {
	const (
		n         = 2000
		outlierFr = 0.1
		radius    = 0.03
		epsilon   = 2.0
	)
	rng := rand.New(rand.NewSource(11))

	// 90% inliers in a tight ball, 10% scattered outliers.
	trueCenter := privcluster.Point{0.62, 0.38}
	points := make([]privcluster.Point, 0, n)
	inliers := int(float64(n) * (1 - outlierFr))
	for i := 0; i < inliers; i++ {
		points = append(points, privcluster.Point{
			trueCenter[0] + (rng.Float64()*2-1)*radius,
			trueCenter[1] + (rng.Float64()*2-1)*radius,
		})
	}
	for i := inliers; i < n; i++ {
		points = append(points, privcluster.Point{rng.Float64(), rng.Float64()})
	}

	// Step 1: private outlier screen — a ball holding ≈ 85% of the data.
	// (Half the ε budget goes here, half to the mean below.)
	ball, err := privcluster.FindCluster(points, int(0.85*n), privcluster.Options{
		Epsilon: epsilon / 2, Delta: 0.05, Seed: 3, GridSize: 1 << 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	var screened []privcluster.Point
	for _, p := range points {
		if ball.Contains(p) {
			screened = append(screened, p)
		}
	}

	// Step 2: private means. Global sensitivity of a mean over a region of
	// diameter D is D/n per coordinate, so the Laplace noise scale is
	// D/(n·ε) — directly proportional to the region diameter.
	noisyMean := func(pts []privcluster.Point, diameter float64) privcluster.Point {
		out := privcluster.Point{0, 0}
		for _, p := range pts {
			out[0] += p[0]
			out[1] += p[1]
		}
		scale := diameter / (float64(len(pts)) * (epsilon / 2) / 2) // ε/2 split over 2 coords
		for c := range out {
			out[c] = out[c]/float64(len(pts)) + laplace(rng, scale)
		}
		return out
	}
	errTo := func(p privcluster.Point) float64 {
		return math.Hypot(p[0]-trueCenter[0], p[1]-trueCenter[1])
	}

	rawDiam := math.Sqrt2 // unit square
	screenedDiam := 2 * ball.Radius

	fmt.Println("private outlier screening (§1.1)")
	fmt.Printf("  screen ball: radius %.4f holding %d/%d points\n", ball.Radius, len(screened), n)
	fmt.Printf("  unscreened private mean (noise ∝ %.3f): error %.4f\n", rawDiam, errTo(noisyMean(points, rawDiam)))
	fmt.Printf("  screened private mean   (noise ∝ %.3f): error %.4f\n", screenedDiam, errTo(noisyMean(screened, screenedDiam)))
	fmt.Printf("  noise-scale reduction: %.1f×\n", rawDiam/screenedDiam)
}

func laplace(rng *rand.Rand, scale float64) float64 {
	u := rng.Float64() - 0.5
	if u < 0 {
		return scale * math.Log(1+2*u)
	}
	return -scale * math.Log(1-2*u)
}
