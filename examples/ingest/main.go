// Ingest: streaming ingestion over the wire — live appends, epoch
// pinning, merges, and deletes against real shard servers, every release
// checked bit-identical to a fresh handle on the same point set.
//
// A mutable Dataset advances an epoch on every Append or Delete; a query
// pins one epoch and answers on exactly that point set, whatever the
// mutator does meanwhile. This program starts real shard servers (the
// same code cmd/shardserver runs) on loopback TCP, opens one mutable
// handle over a prefix of the data through them, and then streams the
// rest in while querying: after every step it re-opens a fresh immutable
// handle on the same rows and verifies the seeded releases agree bit for
// bit — including the pinned old epoch after the data has moved on, after
// a Merge (a cost knob, never a semantic one), and after a Delete. Any
// mismatch exits nonzero, so CI running it is an equivalence proof of the
// streaming snapshot model, not a demo that merely prints.
//
// Run it with:
//
//	go run ./examples/ingest
//	go run ./examples/ingest -n 6000 -shards 2   # small, CI-sized
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"reflect"
	"time"

	"privcluster"
	"privcluster/internal/transport"
)

func main() {
	n := flag.Int("n", 50000, "total number of points (the stream's end state)")
	shards := flag.Int("shards", 2, "shard servers to start")
	flag.Parse()

	rng := rand.New(rand.NewSource(1))
	points := make([]privcluster.Point, 0, *n)
	for i := 0; i < 3**n/5; i++ {
		points = append(points, privcluster.Point{
			0.4 + 0.03*(rng.Float64()*2-1),
			0.6 + 0.03*(rng.Float64()*2-1),
		})
	}
	for len(points) < *n {
		points = append(points, privcluster.Point{rng.Float64(), rng.Float64()})
	}
	n0 := *n / 2    // the handle opens on this prefix
	t := *n / 4     // cluster target, feasible at every epoch
	batch := *n / 8 // appended per step
	ctx := context.Background()
	q := privcluster.QueryOptions{Epsilon: 2, Delta: 1e-5, Seed: 7}

	// Shard servers on loopback TCP — in production these are
	// cmd/shardserver daemons on other machines. The same servers speak
	// both the frozen and the mutable sessions.
	addrs := make([]string, *shards)
	servers := make([]*transport.Server, *shards)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		servers[i] = transport.NewServer(transport.ServerOptions{})
		go servers[i].Serve(l)
	}
	fmt.Printf("started %d shard servers on %v\n", *shards, addrs)

	// fresh answers the same seeded query on a brand-new immutable handle —
	// the ground truth every epoch's release must match bit for bit. The
	// scalable index is pinned explicitly: it is the backend every mutable
	// handle uses, and small -n would otherwise auto-resolve to the exact
	// index, which is a different (non-comparable) release.
	fresh := func(rows []privcluster.Point, at privcluster.QueryOptions) privcluster.Cluster {
		ds, err := privcluster.Open(rows, privcluster.DatasetOptions{IndexPolicy: privcluster.IndexScalable})
		if err != nil {
			log.Fatal(err)
		}
		defer ds.Close()
		at.AtEpoch = 0
		c, err := ds.FindCluster(ctx, t, at)
		if err != nil {
			log.Fatal(err)
		}
		return c
	}
	check := func(tag string, got privcluster.Cluster, rows []privcluster.Point) {
		want := fresh(rows, q)
		if !reflect.DeepEqual(got, want) {
			log.Fatalf("MISMATCH at %s: streaming release differs from a fresh open of the same rows:\nstream: %+v\nfresh:  %+v", tag, got, want)
		}
		fmt.Printf("%-22s center %.4v  radius %.4g  == fresh open (bit-identical)\n", tag, got.Center, got.Radius)
	}

	// Mutable handles require single-replica partitions: epoch sessions
	// are connection-scoped and cannot fail over mid-stream.
	parts := make([][]string, len(addrs))
	for i, a := range addrs {
		parts[i] = []string{a}
	}
	ds, err := privcluster.Open(points[:n0], privcluster.DatasetOptions{
		Mutable:   true,
		Placement: &privcluster.Placement{Partitions: parts},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ds.Close()

	query := func(at uint64) privcluster.Cluster {
		qq := q
		qq.AtEpoch = at
		c, err := ds.FindCluster(ctx, t, qq)
		if err != nil {
			log.Fatal(err)
		}
		return c
	}

	start := time.Now()
	check("epoch 1 (open)", query(0), points[:n0])

	// Stream the rest in, querying as the data grows. Appends spend no
	// privacy budget — only releases do.
	var ids []uint64
	hi := n0
	for hi < len(points) {
		lo := hi
		hi += batch
		if hi > len(points) {
			hi = len(points)
		}
		newIDs, epoch, err := ds.Append(ctx, points[lo:hi])
		if err != nil {
			log.Fatal(err)
		}
		ids = append(ids, newIDs...)
		check(fmt.Sprintf("epoch %d (n=%d)", epoch, hi), query(0), points[:hi])
	}

	// The first epoch still answers for its own point set: the appends
	// above never touched it.
	check("epoch 1 (pinned)", query(1), points[:n0])

	// Merge folds the append deltas into the shard bases — serving cost
	// only; the releases must not move.
	if err := ds.Merge(ctx); err != nil {
		log.Fatal(err)
	}
	check("post-merge", query(0), points)
	check("epoch 1 post-merge", query(1), points[:n0])

	// Delete a few appended rows; the release matches a fresh open of the
	// survivors.
	del := ids[:3]
	if _, err := ds.Delete(ctx, del); err != nil {
		log.Fatal(err)
	}
	gone := map[uint64]bool{}
	for _, id := range del {
		gone[id] = true
	}
	surv := make([]privcluster.Point, 0, len(points)-len(del))
	for i, p := range points {
		if !gone[uint64(i)] {
			surv = append(surv, p)
		}
	}
	check("post-delete", query(0), surv)

	fmt.Printf("streamed %d -> %d points over %d epochs in %v; every epoch matched a fresh open\n",
		n0, ds.N(), ds.Epoch(), time.Since(start).Round(time.Millisecond))

	ds.Close()
	for _, srv := range servers {
		sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		if err := srv.Shutdown(sctx); err != nil {
			cancel()
			log.Fatalf("server shutdown: %v", err)
		}
		cancel()
	}
	fmt.Println("shard servers drained and stopped")
}
