// Daemon: durable multi-tenant budgets that survive a restart.
//
// The Dataset handle's own Budget dies with the process: restart the
// server and every principal's spending is forgotten. This program runs
// the real serving daemon (the same internal/daemon server behind
// cmd/privclusterd) twice over one ledger directory and proves the
// property that makes it safe to serve differential privacy for real:
//
//  1. generation 1 grants a principal (ε=9, δ=0.11) — exactly two
//     (ε=4, δ=0.05) queries — serves both, and refuses the third with a
//     typed HTTP 429 carrying the full accounting;
//
//  2. generation 2, restarted over the same ledger, refuses immediately:
//     the refusal was journaled and fsynced, so a restart (or crash)
//     mints no fresh budget.
//
// The program self-checks every step and exits non-zero on any
// violation. Progress goes through the module's structured logger
// (internal/obs), the same key=value lines the daemons emit, so the
// output greps like production logs.
//
// Run it with:
//
//	go run ./examples/daemon
//	go run ./examples/daemon -n 6000   # small, CI-sized
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"privcluster/internal/daemon"
	"privcluster/internal/obs"
)

var logger = obs.NewLogger(os.Stderr, 0, 0)

// fatal logs the failure at Error and exits non-zero — the program is a
// self-checking example, so any violated expectation must fail CI.
func fatal(msg string, args ...any) {
	logger.Error(msg, args...)
	os.Exit(1)
}

func main() {
	nFlag := flag.Int("n", 100000, "number of points (cluster and target scale with it)")
	flag.Parse()
	n := *nFlag
	t := n / 2

	dir, err := os.MkdirTemp("", "privclusterd-example")
	if err != nil {
		fatal("mkdir", "err", err)
	}
	defer os.RemoveAll(dir)

	// The data: a planted cluster the query regime (grid 1024, ε=4,
	// δ=0.05) can locate.
	rng := rand.New(rand.NewSource(1))
	csvPath := filepath.Join(dir, "points.csv")
	var csv bytes.Buffer
	for i := 0; i < 3*n/5; i++ {
		fmt.Fprintf(&csv, "%g,%g\n", 0.4+0.03*(rng.Float64()*2-1), 0.6+0.03*(rng.Float64()*2-1))
	}
	for i := 3 * n / 5; i < n; i++ {
		fmt.Fprintf(&csv, "%g,%g\n", rng.Float64(), rng.Float64())
	}
	if err := os.WriteFile(csvPath, csv.Bytes(), 0o644); err != nil {
		fatal("write csv", "err", err)
	}

	cfg := daemon.Config{
		Listen:    "127.0.0.1:0",
		LedgerDir: filepath.Join(dir, "ledger"),
		Datasets:  []daemon.DatasetConfig{{Name: "points", CSV: csvPath, Grid: 1024}},
		Principals: []daemon.PrincipalConfig{
			{Name: "alice", APIKey: "alice-key", Epsilon: 9, Delta: 0.11},
		},
	}

	logger.Info("generation 1 serving", "points", n, "principal", "alice", "grant_epsilon", 9.0, "grant_delta", 0.11)
	addr := startGeneration(cfg)
	for i := 1; i <= 2; i++ {
		status, body, traceID := query(addr, t)
		if status != http.StatusOK {
			fatal("query not admitted", "query", i, "status", status, "body", string(body))
		}
		center, radius := release(body)
		logger.Info("query admitted", "query", i, "center", center, "radius", radius, "trace_id", traceID)
	}
	status, body, _ := query(addr, t)
	if status != http.StatusTooManyRequests {
		fatal("third query not refused", "status", status, "body", string(body))
	}
	logRefusal("query refused", body)
	stopGeneration()

	logger.Info("generation 2 restarting over the same ledger directory")
	addr = startGeneration(cfg)
	start := time.Now()
	status, body, _ = query(addr, t)
	if status != http.StatusTooManyRequests {
		fatal("restarted daemon re-admitted an exhausted principal", "status", status, "body", string(body))
	}
	logger.Info("first query refused immediately — the restart minted no budget",
		"elapsed", time.Since(start).Round(time.Millisecond).String())
	logRefusal("refusal accounting", body)
	stopGeneration()
	logger.Info("durable-budget check passed")
}

// The current server generation; startGeneration/stopGeneration cycle it
// the way a process restart would, releasing the ledger lock in between.
var current *daemon.Server

func startGeneration(cfg daemon.Config) (addr string) {
	srv, err := daemon.New(cfg)
	if err != nil {
		fatal("daemon.New", "err", err)
	}
	if err := srv.Start(); err != nil {
		fatal("daemon.Start", "err", err)
	}
	current = srv
	return srv.Addr()
}

func stopGeneration() {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	current.Shutdown(ctx)
	if err := current.Close(); err != nil {
		fatal("daemon.Close", "err", err)
	}
}

// query issues alice's standard (ε=4, δ=0.05) 1-cluster query and
// reports the trace ID the server assigned it.
func query(addr string, t int) (int, []byte, string) {
	body := fmt.Sprintf(`{"dataset":"points","t":%d,"epsilon":4,"delta":0.05,"seed":7}`, t)
	req, err := http.NewRequest("POST", "http://"+addr+"/v1/query/cluster", bytes.NewReader([]byte(body)))
	if err != nil {
		fatal("build request", "err", err)
	}
	req.Header.Set("X-API-Key", "alice-key")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fatal("query round trip", "err", err)
	}
	defer resp.Body.Close()
	var b bytes.Buffer
	b.ReadFrom(resp.Body)
	return resp.StatusCode, b.Bytes(), resp.Header.Get("X-Trace-Id")
}

// release parses an admitted query's released ball for logging.
func release(body []byte) (center string, radius float64) {
	var c struct {
		Center []float64 `json:"center"`
		Radius float64   `json:"radius"`
	}
	if err := json.Unmarshal(body, &c); err != nil || len(c.Center) != 2 {
		fatal("malformed release", "body", string(body), "err", err)
	}
	return fmt.Sprintf("(%.3f, %.3f)", c.Center[0], c.Center[1]), c.Radius
}

// logRefusal checks the refusal is a typed budget_exhausted envelope and
// logs its accounting.
func logRefusal(msg string, body []byte) {
	var env struct {
		Error struct {
			Code   string `json:"code"`
			Budget struct {
				Spent     [2]float64 `json:"spent"`
				Remaining [2]float64 `json:"remaining"`
			} `json:"budget"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Code != "budget_exhausted" {
		fatal("refusal is not typed budget_exhausted", "body", string(body))
	}
	logger.Info(msg, "code", env.Error.Code,
		"spent_epsilon", env.Error.Budget.Spent[0], "spent_delta", env.Error.Budget.Spent[1],
		"remaining_epsilon", env.Error.Budget.Remaining[0], "remaining_delta", env.Error.Budget.Remaining[1])
}
