// Daemon: durable multi-tenant budgets that survive a restart.
//
// The Dataset handle's own Budget dies with the process: restart the
// server and every principal's spending is forgotten. This program runs
// the real serving daemon (the same internal/daemon server behind
// cmd/privclusterd) twice over one ledger directory and proves the
// property that makes it safe to serve differential privacy for real:
//
//  1. generation 1 grants a principal (ε=9, δ=0.11) — exactly two
//     (ε=4, δ=0.05) queries — serves both, and refuses the third with a
//     typed HTTP 429 carrying the full accounting;
//
//  2. generation 2, restarted over the same ledger, refuses immediately:
//     the refusal was journaled and fsynced, so a restart (or crash)
//     mints no fresh budget.
//
// The program self-checks every step and exits non-zero on any
// violation.
//
// Run it with:
//
//	go run ./examples/daemon
//	go run ./examples/daemon -n 6000   # small, CI-sized
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"privcluster/internal/daemon"
)

func main() {
	nFlag := flag.Int("n", 100000, "number of points (cluster and target scale with it)")
	flag.Parse()
	n := *nFlag
	t := n / 2

	dir, err := os.MkdirTemp("", "privclusterd-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// The data: a planted cluster the query regime (grid 1024, ε=4,
	// δ=0.05) can locate.
	rng := rand.New(rand.NewSource(1))
	csvPath := filepath.Join(dir, "points.csv")
	var csv bytes.Buffer
	for i := 0; i < 3*n/5; i++ {
		fmt.Fprintf(&csv, "%g,%g\n", 0.4+0.03*(rng.Float64()*2-1), 0.6+0.03*(rng.Float64()*2-1))
	}
	for i := 3 * n / 5; i < n; i++ {
		fmt.Fprintf(&csv, "%g,%g\n", rng.Float64(), rng.Float64())
	}
	if err := os.WriteFile(csvPath, csv.Bytes(), 0o644); err != nil {
		log.Fatal(err)
	}

	cfg := daemon.Config{
		Listen:    "127.0.0.1:0",
		LedgerDir: filepath.Join(dir, "ledger"),
		Datasets:  []daemon.DatasetConfig{{Name: "points", CSV: csvPath, Grid: 1024}},
		Principals: []daemon.PrincipalConfig{
			{Name: "alice", APIKey: "alice-key", Epsilon: 9, Delta: 0.11},
		},
	}

	fmt.Printf("generation 1: serving %d points, alice granted (ε=9, δ=0.11)\n", n)
	addr := startGeneration(cfg)
	for i := 1; i <= 2; i++ {
		status, body := query(addr, t)
		if status != http.StatusOK {
			log.Fatalf("query %d: HTTP %d: %s", i, status, body)
		}
		fmt.Printf("query %d: admitted — %s\n", i, releaseSummary(body))
	}
	status, body := query(addr, t)
	if status != http.StatusTooManyRequests {
		log.Fatalf("query 3: HTTP %d, want 429: %s", status, body)
	}
	fmt.Printf("query 3: refused — %s\n", refusalSummary(body))
	stopGeneration()

	fmt.Println("\ngeneration 2: restarted over the same ledger directory")
	addr = startGeneration(cfg)
	start := time.Now()
	status, body = query(addr, t)
	if status != http.StatusTooManyRequests {
		log.Fatalf("restarted daemon re-admitted an exhausted principal: HTTP %d: %s", status, body)
	}
	fmt.Printf("first query: refused immediately (%v) — the restart minted no budget\n",
		time.Since(start).Round(time.Millisecond))
	fmt.Printf("refusal: %s\n", refusalSummary(body))
	stopGeneration()
	fmt.Println("\ndurable-budget check passed")
}

// The current server generation; startGeneration/stopGeneration cycle it
// the way a process restart would, releasing the ledger lock in between.
var current *daemon.Server

func startGeneration(cfg daemon.Config) (addr string) {
	srv, err := daemon.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	current = srv
	return srv.Addr()
}

func stopGeneration() {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	current.Shutdown(ctx)
	if err := current.Close(); err != nil {
		log.Fatal(err)
	}
}

// query issues alice's standard (ε=4, δ=0.05) 1-cluster query.
func query(addr string, t int) (int, []byte) {
	body := fmt.Sprintf(`{"dataset":"points","t":%d,"epsilon":4,"delta":0.05,"seed":7}`, t)
	req, err := http.NewRequest("POST", "http://"+addr+"/v1/query/cluster", bytes.NewReader([]byte(body)))
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("X-API-Key", "alice-key")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var b bytes.Buffer
	b.ReadFrom(resp.Body)
	return resp.StatusCode, b.Bytes()
}

func releaseSummary(body []byte) string {
	var c struct {
		Center []float64 `json:"center"`
		Radius float64   `json:"radius"`
	}
	if err := json.Unmarshal(body, &c); err != nil || len(c.Center) != 2 {
		log.Fatalf("malformed release %s: %v", body, err)
	}
	return fmt.Sprintf("center (%.3f, %.3f), radius %.4f", c.Center[0], c.Center[1], c.Radius)
}

func refusalSummary(body []byte) string {
	var env struct {
		Error struct {
			Code   string `json:"code"`
			Budget struct {
				Spent     [2]float64 `json:"spent"`
				Remaining [2]float64 `json:"remaining"`
			} `json:"budget"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Code != "budget_exhausted" {
		log.Fatalf("refusal is not typed budget_exhausted: %s", body)
	}
	return fmt.Sprintf("code %s, spent (ε=%g, δ=%g), remaining (ε=%g, δ=%g)",
		env.Error.Code, env.Error.Budget.Spent[0], env.Error.Budget.Spent[1],
		env.Error.Budget.Remaining[0], env.Error.Budget.Remaining[1])
}
