// Sample and aggregate (§6): compile an "off the shelf" non-private
// estimator into a differentially private one, and watch it stay robust
// where naive private averaging fails.
//
// The non-private analysis f is a trimmed 2-D location estimate computed on
// small blocks. Because f is stable — most random blocks produce nearly the
// same answer — Algorithm SA can release a private point close to f's
// answer, even though f itself was written with no privacy in mind.
//
//	go run ./examples/sampleaggregate
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"

	"privcluster"
)

func main() {
	const (
		n       = 45000
		m       = 9 // block size = stability parameter
		epsilon = 4.0
	)
	rng := rand.New(rand.NewSource(21))

	// Rows: 2-D readings, 88% around (0.31, 0.57), 12% corrupted.
	type reading struct{ x, y float64 }
	rows := make([]reading, n)
	for i := range rows {
		if rng.Float64() < 0.88 {
			rows[i] = reading{0.31 + rng.NormFloat64()*0.02, 0.57 + rng.NormFloat64()*0.02}
		} else {
			rows[i] = reading{rng.Float64(), rng.Float64()}
		}
	}

	// The non-private analysis: coordinate-wise median of a block — an
	// ordinary robust estimator, written with no privacy in mind.
	blockMedian := func(block []reading) privcluster.Point {
		xs := make([]float64, len(block))
		ys := make([]float64, len(block))
		for i, r := range block {
			xs[i], ys[i] = r.x, r.y
		}
		sort.Float64s(xs)
		sort.Float64s(ys)
		return privcluster.Point{xs[len(xs)/2], ys[len(ys)/2]}
	}

	private, err := privcluster.Aggregate(rows, blockMedian, 2, m, 0.6, privcluster.Options{
		Epsilon: epsilon, Delta: 0.05, Seed: 4, GridSize: 1 << 12,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Reference: f on the full data (the value SA is standing in for).
	full := blockMedian(rows)
	dist := math.Hypot(private[0]-full[0], private[1]-full[1])

	fmt.Println("sample & aggregate (Algorithm SA, §6)")
	fmt.Printf("  non-private f(all rows):   (%.4f, %.4f)\n", full[0], full[1])
	fmt.Printf("  private SA estimate:       (%.4f, %.4f)\n", private[0], private[1])
	fmt.Printf("  distance:                  %.4f\n", dist)
	fmt.Printf("  blocks used: %d of size %d (n/9m), aggregator: private 1-cluster\n", n/(9*m), m)
}
