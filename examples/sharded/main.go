// Sharded: the sharded ball-index backend and the batched query executor.
//
// The scalable cell index answers ball counts that are sums over data
// partitions, so it shards: S per-shard indexes build in parallel and every
// query is an exact sum of per-shard counts — releases are bit-identical to
// the unsharded index under the same seed, which this program checks rather
// than claims. It then runs a batch of queries concurrently on the warm
// sharded handle under one budget — the serving pattern FindClustersBatch
// packages.
//
// Run it with:
//
//	go run ./examples/sharded
//	go run ./examples/sharded -n 6000 -shards 4   # small, CI-sized
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"time"

	"privcluster"
)

func main() {
	n := flag.Int("n", 50000, "number of points")
	shards := flag.Int("shards", runtime.GOMAXPROCS(0), "shard count for the sharded handle")
	flag.Parse()

	rng := rand.New(rand.NewSource(1))
	points := make([]privcluster.Point, 0, *n)
	for i := 0; i < 3**n/5; i++ {
		points = append(points, privcluster.Point{
			0.4 + 0.03*(rng.Float64()*2-1),
			0.6 + 0.03*(rng.Float64()*2-1),
		})
	}
	for len(points) < *n {
		points = append(points, privcluster.Point{rng.Float64(), rng.Float64()})
	}
	t := *n / 2
	ctx := context.Background()

	// One query on an unsharded handle, the same seeded query on a sharded
	// one: the releases must agree bit for bit.
	run := func(s int) (privcluster.Cluster, time.Duration) {
		ds, err := privcluster.Open(points, privcluster.DatasetOptions{Shards: s})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		c, err := ds.FindCluster(ctx, t, privcluster.QueryOptions{Epsilon: 2, Delta: 1e-5, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		return c, time.Since(start)
	}
	ref, refTime := run(1)
	got, gotTime := run(*shards)
	fmt.Printf("n=%d, t=%d on %d core(s)\n", *n, t, runtime.GOMAXPROCS(0))
	fmt.Printf("unsharded cold query: %v\n", refTime.Round(time.Millisecond))
	fmt.Printf("%d-shard  cold query: %v\n", *shards, gotTime.Round(time.Millisecond))
	if got.Radius != ref.Radius || got.Center[0] != ref.Center[0] || got.Center[1] != ref.Center[1] {
		log.Fatalf("sharded release differs from unsharded:\n  %+v\nvs\n  %+v", got, ref)
	}
	fmt.Printf("releases bit-identical: center (%.3f, %.3f), radius %.4f\n\n",
		ref.Center[0], ref.Center[1], ref.Radius)

	// A batch of independent queries on one warm sharded handle under one
	// budget: concurrent execution, per-query accounting.
	ds, err := privcluster.Open(points, privcluster.DatasetOptions{
		Shards: *shards,
		Budget: privcluster.Budget{Epsilon: 8, Delta: 4e-5},
	})
	if err != nil {
		log.Fatal(err)
	}
	batch := []privcluster.Query{
		{T: t, Opts: privcluster.QueryOptions{Epsilon: 2, Delta: 1e-5, Seed: 1}},
		{T: t - *n/10, Opts: privcluster.QueryOptions{Epsilon: 2, Delta: 1e-5, Seed: 2}},
		{T: t + *n/10, Opts: privcluster.QueryOptions{Epsilon: 2, Delta: 1e-5, Seed: 3}},
		{T: t, K: 2, Opts: privcluster.QueryOptions{Epsilon: 2, Delta: 1e-5, Seed: 4}},
	}
	start := time.Now()
	results := ds.FindClustersBatch(ctx, batch)
	fmt.Printf("batch of %d queries in %v under budget (ε=8, δ=4e-5):\n",
		len(batch), time.Since(start).Round(time.Millisecond))
	for i, res := range results {
		if res.Err != nil {
			fmt.Printf("  query %d: failed: %v\n", i+1, res.Err)
			continue
		}
		for _, c := range res.Clusters {
			fmt.Printf("  query %d: center (%.3f, %.3f), radius %.4f, holds %d points\n",
				i+1, c.Center[0], c.Center[1], c.Radius, c.Count(points))
		}
	}
	spent := ds.Spent()
	fmt.Printf("budget spent: %v\n", spent)
}
