// Replicated: shard failover under fire — the same seeded query answered
// by local cores, by a replicated placement, and by the same placement
// with one replica hard-killed midway through the query, all checked
// bit-identical.
//
// Every replica of a shard partition serves the same points, and the ball
// index's bulk counts are pure reads — so which replica answers is
// invisible to releases, and a replica death costs a failover hop, never
// correctness. This program makes that concrete: it starts shard servers
// on loopback TCP (the same code cmd/shardserver runs) in two partitions
// of two replicas, runs a seeded query, then re-opens the handle and runs
// the query again while a goroutine hard-kills a primary replica
// mid-sweep. All three releases must agree bit for bit — the program
// exits nonzero if they do not, so CI running it is an equivalence proof
// of the failover path, not a demo that merely prints.
//
// Run it with:
//
//	go run ./examples/replicated
//	go run ./examples/replicated -n 6000   # small, CI-sized
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"time"

	"privcluster"
	"privcluster/internal/transport"
)

func main() {
	n := flag.Int("n", 50000, "number of points")
	flag.Parse()

	rng := rand.New(rand.NewSource(1))
	points := make([]privcluster.Point, 0, *n)
	for i := 0; i < 3**n/5; i++ {
		points = append(points, privcluster.Point{
			0.4 + 0.03*(rng.Float64()*2-1),
			0.6 + 0.03*(rng.Float64()*2-1),
		})
	}
	for len(points) < *n {
		points = append(points, privcluster.Point{rng.Float64(), rng.Float64()})
	}
	t := *n / 2
	ctx := context.Background()
	q := privcluster.QueryOptions{Epsilon: 2, Delta: 1e-5, Seed: 7}

	// Four shard servers on loopback TCP: two partitions, two replicas
	// each. In production these are cmd/shardserver daemons on other
	// machines and the placement comes from a cmd/shardctl file.
	const replicas, partitions = 2, 2
	addrs := make([]string, partitions*replicas)
	servers := make([]*transport.Server, len(addrs))
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		servers[i] = transport.NewServer(transport.ServerOptions{})
		go servers[i].Serve(l)
	}
	place := &privcluster.Placement{Partitions: [][]string{
		{addrs[0], addrs[1]},
		{addrs[2], addrs[3]},
	}}
	fmt.Printf("started %d shard servers: partition 0 = %v, partition 1 = %v\n",
		len(addrs), place.Partitions[0], place.Partitions[1])

	run := func(o privcluster.DatasetOptions, during func()) (privcluster.Cluster, time.Duration) {
		ds, err := privcluster.Open(points, o)
		if err != nil {
			log.Fatal(err)
		}
		defer ds.Close()
		if during != nil {
			go during()
		}
		start := time.Now()
		c, err := ds.FindCluster(ctx, t, q)
		if err != nil {
			log.Fatal(err)
		}
		return c, time.Since(start)
	}

	local, dLocal := run(privcluster.DatasetOptions{Shards: partitions}, nil)
	healthy, dHealthy := run(privcluster.DatasetOptions{Placement: place}, nil)

	// Run the query again with partition 0's primary replica hard-killed
	// shortly after the sweep starts: connections drop mid-response and
	// later dials are refused, so the index must fail over to the sibling.
	victim := servers[0]
	killed, dKilled := run(privcluster.DatasetOptions{Placement: place}, func() {
		time.Sleep(dHealthy / 4)
		victim.Close()
		fmt.Printf("killed replica %s mid-query\n", addrs[0])
	})

	fmt.Printf("local    (%d in-process shards):      center %.4v  radius %.4g  [%v]\n",
		partitions, local.Center, local.Radius, dLocal)
	fmt.Printf("replicated (%d×%d shard servers):      center %.4v  radius %.4g  [%v]\n",
		partitions, replicas, healthy.Center, healthy.Radius, dHealthy)
	fmt.Printf("replica killed mid-query (failover): center %.4v  radius %.4g  [%v]\n",
		killed.Center, killed.Radius, dKilled)

	for _, c := range []struct {
		name string
		got  privcluster.Cluster
	}{{"replicated", healthy}, {"failover", killed}} {
		if c.got.Radius != local.Radius || c.got.RawRadius != local.RawRadius ||
			c.got.Center[0] != local.Center[0] || c.got.Center[1] != local.Center[1] {
			log.Fatalf("MISMATCH: %s release differs from local:\nlocal: %+v\n%s: %+v",
				c.name, local, c.name, c.got)
		}
	}
	fmt.Println("all three releases are bit-identical: replica failover moved connections, not the privacy analysis")

	for i, srv := range servers {
		if srv == victim {
			continue // already hard-killed
		}
		sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		if err := srv.Shutdown(sctx); err != nil {
			cancel()
			log.Fatalf("server %d shutdown: %v", i, err)
		}
		cancel()
	}
	fmt.Println("surviving shard servers drained and stopped")
}
