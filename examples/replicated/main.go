// Replicated: shard failover under fire — the same seeded query answered
// by local cores, by a replicated placement, and by the same placement
// with one replica hard-killed midway through the query, all checked
// bit-identical.
//
// Every replica of a shard partition serves the same points, and the ball
// index's bulk counts are pure reads — so which replica answers is
// invisible to releases, and a replica death costs a failover hop, never
// correctness. This program makes that concrete: it starts shard servers
// on loopback TCP (the same code cmd/shardserver runs) in two partitions
// of two replicas, runs a seeded query, then re-opens the handle and runs
// the query again while a goroutine hard-kills a primary replica
// mid-sweep. All three releases must agree bit for bit — the program
// exits nonzero if they do not, so CI running it is an equivalence proof
// of the failover path, not a demo that merely prints.
//
// The failover run is traced (privcluster.WithTrace): the released ball is
// identical, and the span tree's failover counters show the recovery the
// release hides. Progress goes through the module's structured logger
// (internal/obs), the same key=value lines the daemons emit.
//
// Run it with:
//
//	go run ./examples/replicated
//	go run ./examples/replicated -n 6000   # small, CI-sized
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"time"

	"privcluster"
	"privcluster/internal/obs"
	"privcluster/internal/transport"
)

var logger = obs.NewLogger(os.Stderr, 0, 0)

// fatal logs the failure at Error and exits non-zero — the program is a
// self-checking example, so any violated expectation must fail CI.
func fatal(msg string, args ...any) {
	logger.Error(msg, args...)
	os.Exit(1)
}

func main() {
	n := flag.Int("n", 50000, "number of points")
	flag.Parse()

	rng := rand.New(rand.NewSource(1))
	points := make([]privcluster.Point, 0, *n)
	for i := 0; i < 3**n/5; i++ {
		points = append(points, privcluster.Point{
			0.4 + 0.03*(rng.Float64()*2-1),
			0.6 + 0.03*(rng.Float64()*2-1),
		})
	}
	for len(points) < *n {
		points = append(points, privcluster.Point{rng.Float64(), rng.Float64()})
	}
	t := *n / 2
	ctx := context.Background()
	q := privcluster.QueryOptions{Epsilon: 2, Delta: 1e-5, Seed: 7}

	// Four shard servers on loopback TCP: two partitions, two replicas
	// each. In production these are cmd/shardserver daemons on other
	// machines and the placement comes from a cmd/shardctl file.
	const replicas, partitions = 2, 2
	addrs := make([]string, partitions*replicas)
	servers := make([]*transport.Server, len(addrs))
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal("listen", "err", err)
		}
		addrs[i] = l.Addr().String()
		servers[i] = transport.NewServer(transport.ServerOptions{Log: logger})
		go servers[i].Serve(l)
	}
	place := &privcluster.Placement{Partitions: [][]string{
		{addrs[0], addrs[1]},
		{addrs[2], addrs[3]},
	}}
	logger.Info("shard servers started",
		"count", len(addrs), "partition0", place.Partitions[0], "partition1", place.Partitions[1])

	run := func(qctx context.Context, o privcluster.DatasetOptions, qo privcluster.QueryOptions, during func()) (privcluster.Cluster, time.Duration) {
		ds, err := privcluster.Open(points, o)
		if err != nil {
			fatal("open dataset", "err", err)
		}
		defer ds.Close()
		if during != nil {
			go during()
		}
		start := time.Now()
		c, err := ds.FindCluster(qctx, t, qo)
		if err != nil {
			fatal("query", "err", err)
		}
		return c, time.Since(start)
	}

	local, dLocal := run(ctx, privcluster.DatasetOptions{Shards: partitions}, q, nil)
	healthy, dHealthy := run(ctx, privcluster.DatasetOptions{Placement: place}, q, nil)

	// Run the query again with partition 0's primary replica hard-killed
	// shortly after the sweep starts: connections drop mid-response and
	// later dials are refused, so the index must fail over to the sibling.
	// This run is traced — the span counters record the failover the
	// bit-identical release hides.
	victim := servers[0]
	var stats privcluster.QueryStats
	tq := q
	tq.Stats = &stats
	killed, dKilled := run(privcluster.WithTrace(ctx), privcluster.DatasetOptions{Placement: place}, tq, func() {
		time.Sleep(dHealthy / 4)
		victim.Close()
		logger.Info("killed replica mid-query", "addr", addrs[0])
	})

	report := func(name string, c privcluster.Cluster, d time.Duration) {
		logger.Info("release", "mode", name,
			"center", fmt.Sprintf("%.4v", c.Center), "radius", fmt.Sprintf("%.4g", c.Radius),
			"elapsed", d.Round(time.Millisecond).String())
	}
	report("local", local, dLocal)
	report("replicated", healthy, dHealthy)
	report("failover", killed, dKilled)

	var failovers, hedges int64
	for _, st := range stats.Stages {
		failovers += st.Counters["failovers"]
		hedges += st.Counters["hedges_fired"]
	}
	logger.Info("failover run traced", "trace_id", stats.TraceID,
		"spans", len(stats.Stages), "failovers", failovers, "hedges_fired", hedges)

	for _, c := range []struct {
		name string
		got  privcluster.Cluster
	}{{"replicated", healthy}, {"failover", killed}} {
		if c.got.Radius != local.Radius || c.got.RawRadius != local.RawRadius ||
			c.got.Center[0] != local.Center[0] || c.got.Center[1] != local.Center[1] {
			fatal("release differs from local", "mode", c.name,
				"local", fmt.Sprintf("%+v", local), "got", fmt.Sprintf("%+v", c.got))
		}
	}
	logger.Info("all three releases are bit-identical: replica failover moved connections, not the privacy analysis")

	for i, srv := range servers {
		if srv == victim {
			continue // already hard-killed
		}
		sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		if err := srv.Shutdown(sctx); err != nil {
			cancel()
			fatal("server shutdown", "server", i, "err", err)
		}
		cancel()
	}
	logger.Info("surviving shard servers drained and stopped")
}
