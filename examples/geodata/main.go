// Geodata exploration (the §1.1 "map search" motivation): a city's
// check-in-like point masses are covered privately with k balls
// (Observation 3.5's iterated 1-cluster), revealing where a population
// concentrates without revealing anyone's location.
//
//	go run ./examples/geodata
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"privcluster"
)

func main() {
	rng := rand.New(rand.NewSource(5))

	// Three synthetic "neighbourhoods" with different densities plus
	// city-wide background traffic, on the unit map square.
	type hub struct {
		x, y, r float64
		count   int
	}
	hubs := []hub{
		{0.25, 0.70, 0.03, 450},
		{0.70, 0.65, 0.02, 350},
		{0.55, 0.20, 0.04, 300},
	}
	var points []privcluster.Point
	for _, h := range hubs {
		for i := 0; i < h.count; i++ {
			points = append(points, privcluster.Point{
				h.x + (rng.Float64()*2-1)*h.r,
				h.y + (rng.Float64()*2-1)*h.r,
			})
		}
	}
	for i := 0; i < 150; i++ {
		points = append(points, privcluster.Point{rng.Float64(), rng.Float64()})
	}

	clusters, err := privcluster.FindClusters(points, 3, 220, privcluster.Options{
		Epsilon: 18, Delta: 0.06, Seed: 9, GridSize: 1 << 10,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("found %d hotspots from %d points (total budget ε=18 split over 3 rounds)\n\n", len(clusters), len(points))
	for i, c := range clusters {
		fmt.Printf("hotspot %d: center (%.3f, %.3f), radius %.3f, %d visits\n",
			i+1, c.Center[0], c.Center[1], c.Radius, c.Count(points))
	}

	// Crude terminal map: hubs (h), released hotspot centers (#).
	fmt.Println("\nmap (h = true hub, # = released center):")
	const W, H = 48, 16
	grid := make([][]byte, H)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(".", W))
	}
	put := func(x, y float64, ch byte) {
		col := int(x * (W - 1))
		row := int((1 - y) * (H - 1))
		if row >= 0 && row < H && col >= 0 && col < W {
			grid[row][col] = ch
		}
	}
	for _, h := range hubs {
		put(h.x, h.y, 'h')
	}
	for _, c := range clusters {
		put(c.Center[0], c.Center[1], '#')
	}
	for _, row := range grid {
		fmt.Println(string(row))
	}
}
