// Serving: amortized index reuse, budget accounting, and deadlines on one
// Dataset handle.
//
// A serving process answers many 1-cluster queries on the same data. The
// one-shot free functions re-quantize the points and rebuild the ball
// index on every call — the dominant cost at n ≥ 10⁵. This program opens
// one handle over n = 100,000 points and demonstrates the three serving
// features the handle adds:
//
//  1. amortization — the first query pays index construction and the
//     L(·, S) sweep; repeated queries at the same t are orders of
//     magnitude faster;
//
//  2. budget accounting — the handle is opened with a total (ε, δ) budget;
//     every query deducts its cost, and the query that no longer fits is
//     refused with ErrBudgetExhausted before any noise is drawn;
//
//  3. deadlines — queries take a context, and cancellation aborts the
//     long-running inner loops promptly.
//
// Run it with:
//
//	go run ./examples/serving
//	go run ./examples/serving -n 6000   # small, CI-sized
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"privcluster"
)

func main() {
	nFlag := flag.Int("n", 100000, "number of points (cluster and target scale with it)")
	flag.Parse()
	var (
		n           = *nFlag
		clusterSize = 3 * n / 5
		t           = n / 2
	)
	rng := rand.New(rand.NewSource(1))
	points := make([]privcluster.Point, 0, n)
	for i := 0; i < clusterSize; i++ {
		points = append(points, privcluster.Point{
			0.4 + 0.03*(rng.Float64()*2-1),
			0.6 + 0.03*(rng.Float64()*2-1),
		})
	}
	for i := clusterSize; i < n; i++ {
		points = append(points, privcluster.Point{rng.Float64(), rng.Float64()})
	}

	// One handle, a total budget of (ε=3, δ=3e-6): enough for three ε=1
	// queries, after which the handle refuses.
	ds, err := privcluster.Open(points, privcluster.DatasetOptions{
		Budget: privcluster.Budget{Epsilon: 3, Delta: 3e-6},
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	fmt.Printf("serving %d points under budget (ε=3, δ=3e-6)\n\n", ds.N())
	for i := 1; i <= 4; i++ {
		start := time.Now()
		c, err := ds.FindCluster(ctx, t, privcluster.QueryOptions{Seed: int64(i)})
		elapsed := time.Since(start).Round(time.Millisecond)
		switch {
		case errors.Is(err, privcluster.ErrBudgetExhausted):
			// The typed error carries the accounting.
			var be *privcluster.BudgetError
			errors.As(err, &be)
			fmt.Printf("query %d: refused after %v — spent %v of %v, query cost %v\n",
				i, elapsed, be.Spent, be.Total, be.Requested)
		case err != nil:
			log.Fatal(err)
		default:
			rem, _ := ds.Remaining()
			fmt.Printf("query %d: center (%.3f, %.3f), radius %.4f, holds %d points — %v, remaining budget %v\n",
				i, c.Center[0], c.Center[1], c.Radius, c.Count(points), elapsed, rem)
		}
	}

	// A deadline shorter than the cold pipeline aborts promptly (and, on a
	// fresh handle, consumes no budget if it fires before the charge).
	fresh, err := privcluster.Open(points, privcluster.DatasetOptions{})
	if err != nil {
		log.Fatal(err)
	}
	dctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = fresh.FindCluster(dctx, t, privcluster.QueryOptions{Seed: 1})
	fmt.Printf("\ndeadline demo: err=%v after %v (spent %v)\n",
		err, time.Since(start).Round(time.Millisecond), fresh.Spent())
}
