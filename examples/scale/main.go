// Command scale demonstrates the scalable ball-index backend: it plants a
// cluster among 200,000 points — a size at which the exact Θ(n²) distance
// matrix would need ≈ 320 GB — and locates it with FindCluster under the
// automatic index policy, printing the time and the recovered ball.
//
// Run with:
//
//	go run ./examples/scale
//	go run ./examples/scale -n 6000   # small, CI-sized
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"privcluster"
)

func main() {
	nFlag := flag.Int("n", 200000, "number of points (cluster and target scale with it)")
	flag.Parse()
	var (
		n       = *nFlag
		cluster = 3 * n / 5
		t       = n / 2
	)
	rng := rand.New(rand.NewSource(1))
	points := make([]privcluster.Point, 0, n)
	for i := 0; i < cluster; i++ {
		points = append(points, privcluster.Point{
			0.42 + rng.Float64()*0.03,
			0.61 + rng.Float64()*0.03,
		})
	}
	for i := cluster; i < n; i++ {
		points = append(points, privcluster.Point{rng.Float64(), rng.Float64()})
	}

	fmt.Printf("locating a %d-point cluster among n=%d points (ε=1, δ=1e-6)\n", t, n)
	start := time.Now()
	c, err := privcluster.FindCluster(points, t, privcluster.Options{
		Seed: 7,
		// IndexAuto (the default) already selects the scalable backend at
		// this size; spelled out here for documentation value. The same
		// holds for BoxPacking: PackingAuto already bit-packs GoodCenter's
		// box keys.
		IndexPolicy: privcluster.IndexScalable,
		BoxPacking:  privcluster.PackingPacked,
		// Workers caps the parallel count passes (index and box partition);
		// 0 means GOMAXPROCS. Parallelism never changes the seeded result.
		Workers: 0,
	})
	if err != nil {
		log.Fatal("failed: ", err)
	}
	fmt.Printf("found in %v (no Θ(n²) distance matrix — that would be ≈ %.0f GB)\n",
		time.Since(start).Round(time.Millisecond), float64(n)*float64(n)*8/1e9)
	fmt.Printf("center   (%.4f, %.4f)\n", c.Center[0], c.Center[1])
	fmt.Printf("radius   %.4f (GoodRadius raw estimate %.4f)\n", c.Radius, c.RawRadius)
	fmt.Printf("captures %d points (target t=%d)\n", c.Count(points), t)
}
