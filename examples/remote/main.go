// Remote: the shard transport — the same seeded query answered by local
// cores and by shard servers behind the wire protocol, checked
// bit-identical.
//
// The scalable ball index answers every query as an exact sum of
// per-shard partial counts, so a shard does not have to live in this
// process: this program starts real shard servers (the same code
// cmd/shardserver runs) on loopback TCP, opens one Dataset handle that
// computes locally and one that computes through the servers, and runs
// the same seeded query on both. The releases must agree bit for bit —
// the program exits nonzero if they do not, so CI running it is an
// equivalence proof, not a demo that merely prints.
//
// Run it with:
//
//	go run ./examples/remote
//	go run ./examples/remote -n 6000 -shards 2   # small, CI-sized
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"time"

	"privcluster"
	"privcluster/internal/transport"
)

func main() {
	n := flag.Int("n", 50000, "number of points")
	shards := flag.Int("shards", 2, "shard servers to start")
	flag.Parse()

	rng := rand.New(rand.NewSource(1))
	points := make([]privcluster.Point, 0, *n)
	for i := 0; i < 3**n/5; i++ {
		points = append(points, privcluster.Point{
			0.4 + 0.03*(rng.Float64()*2-1),
			0.6 + 0.03*(rng.Float64()*2-1),
		})
	}
	for len(points) < *n {
		points = append(points, privcluster.Point{rng.Float64(), rng.Float64()})
	}
	t := *n / 2
	ctx := context.Background()
	q := privcluster.QueryOptions{Epsilon: 2, Delta: 1e-5, Seed: 7}

	// Shard servers on loopback TCP — in production these are
	// cmd/shardserver daemons on other machines.
	addrs := make([]string, *shards)
	servers := make([]*transport.Server, *shards)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		servers[i] = transport.NewServer(transport.ServerOptions{})
		go servers[i].Serve(l)
	}
	fmt.Printf("started %d shard servers on %v\n", *shards, addrs)

	run := func(o privcluster.DatasetOptions) (privcluster.Cluster, time.Duration) {
		ds, err := privcluster.Open(points, o)
		if err != nil {
			log.Fatal(err)
		}
		defer ds.Close()
		start := time.Now()
		c, err := ds.FindCluster(ctx, t, q)
		if err != nil {
			log.Fatal(err)
		}
		return c, time.Since(start)
	}

	// One single-replica partition per server — the structured spelling of
	// the old flat RemoteShards list (see examples/replicated for replica
	// sets and failover).
	parts := make([][]string, len(addrs))
	for i, a := range addrs {
		parts[i] = []string{a}
	}
	local, dLocal := run(privcluster.DatasetOptions{Shards: *shards})
	remote, dRemote := run(privcluster.DatasetOptions{Placement: &privcluster.Placement{Partitions: parts}})

	fmt.Printf("local  (%d in-process shards): center %.4v  radius %.4g  [%v]\n",
		*shards, local.Center, local.Radius, dLocal)
	fmt.Printf("remote (%d shard servers):     center %.4v  radius %.4g  [%v]\n",
		*shards, remote.Center, remote.Radius, dRemote)

	if local.Radius != remote.Radius || local.RawRadius != remote.RawRadius ||
		local.Center[0] != remote.Center[0] || local.Center[1] != remote.Center[1] {
		log.Fatalf("MISMATCH: remote release differs from local:\nlocal:  %+v\nremote: %+v", local, remote)
	}
	fmt.Println("releases are bit-identical: the wire moved partial counts, not the privacy analysis")

	for _, srv := range servers {
		sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		if err := srv.Shutdown(sctx); err != nil {
			cancel()
			log.Fatalf("server shutdown: %v", err)
		}
		cancel()
	}
	fmt.Println("shard servers drained and stopped")
}
