// Quickstart: privately locate a planted cluster in R^4.
//
// The program plants 600 of 1000 points inside a small ball, opens a
// Dataset handle over them, runs the differentially private 1-cluster
// query (ε = 2, δ = 0.05), and reports how well the released ball matches
// the planted one. The handle API shown here is the serving-oriented entry
// point; for one-shot use, privcluster.FindCluster(points, t, opts) does
// the same in a single call.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"

	"privcluster"
)

func main() {
	const (
		n           = 1000
		clusterSize = 600
		d           = 4
		radius      = 0.03
		t           = 500
	)
	rng := rand.New(rand.NewSource(2016)) // the PODS year, for luck

	// Plant a cluster at a random center.
	center := make(privcluster.Point, d)
	for j := range center {
		center[j] = 0.3 + 0.4*rng.Float64()
	}
	points := make([]privcluster.Point, 0, n)
	for i := 0; i < clusterSize; i++ {
		p := make(privcluster.Point, d)
		for j := range p {
			p[j] = center[j] + (rng.Float64()*2-1)*radius/math.Sqrt(d)
		}
		points = append(points, p)
	}
	for i := clusterSize; i < n; i++ {
		p := make(privcluster.Point, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		points = append(points, p)
	}

	// Open validates and quantizes once; queries reuse the prepared state.
	ds, err := privcluster.Open(points, privcluster.DatasetOptions{GridSize: 1 << 12})
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := ds.FindCluster(context.Background(), t, privcluster.QueryOptions{
		Epsilon: 2, Delta: 0.05, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	var centerDist float64
	for j := range center {
		diff := cluster.Center[j] - center[j]
		centerDist += diff * diff
	}
	centerDist = math.Sqrt(centerDist)

	fmt.Println("private 1-cluster (ε=2, δ=0.05)")
	fmt.Printf("  planted:  center %v, radius %v, %d points\n", fmt.Sprintf("%.3f", center), radius, clusterSize)
	fmt.Printf("  released: radius %.4f (radius-stage estimate %.4f)\n", cluster.Radius, cluster.RawRadius)
	fmt.Printf("  released ball holds %d of %d points (target t=%d)\n", cluster.Count(points), n, t)
	fmt.Printf("  released center is %.4f from the planted center\n", centerDist)
	fmt.Printf("  privacy spent so far: %v\n", ds.Spent())
}
