package privcluster

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"net"
	"sync"
	"testing"
)

// recordingAdmitter is a test admission authority: it enforces an
// optional budget of its own and records every reserve/commit/release so
// tests can assert the two-phase protocol is followed exactly.
type recordingAdmitter struct {
	mu       sync.Mutex
	limit    Budget // zero = admit everything
	spent    Budget
	reserves []Budget
	commits  int
	releases int
}

func (a *recordingAdmitter) Reserve(ctx context.Context, cost Budget) (Reservation, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.limit.IsZero() && !a.limit.allows(a.spent, cost) {
		return nil, &BudgetError{Total: a.limit, Spent: a.spent, Requested: cost}
	}
	a.spent.Epsilon += cost.Epsilon
	a.spent.Delta += cost.Delta
	a.reserves = append(a.reserves, cost)
	return &recordingReservation{a: a, cost: cost}, nil
}

type recordingReservation struct {
	a    *recordingAdmitter
	cost Budget
}

func (r *recordingReservation) Commit() error {
	r.a.mu.Lock()
	defer r.a.mu.Unlock()
	r.a.commits++
	return nil
}

func (r *recordingReservation) Release() error {
	r.a.mu.Lock()
	defer r.a.mu.Unlock()
	r.a.releases++
	r.a.spent.Epsilon = math.Max(0, r.a.spent.Epsilon-r.cost.Epsilon)
	r.a.spent.Delta = math.Max(0, r.a.spent.Delta-r.cost.Delta)
	return nil
}

// TestAdmitterReleasesIdentical pins the seam's no-op guarantee: an
// external admitter changes who accounts, never what is released. Under
// a fixed seed, a handle with a permissive admitter answers bit for bit
// what a plain handle (and the free function) answers.
func TestAdmitterReleasesIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts, _ := plantedPoints(rng, 800, 500, 2, 0.02)
	o := Options{Epsilon: 4, Delta: 0.05, Seed: 7, GridSize: 1024}

	ref, err := FindCluster(pts, 400, o)
	if err != nil {
		t.Fatal(err)
	}
	do := o.datasetOptions()
	do.Admitter = &recordingAdmitter{}
	ds, err := Open(pts, do)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ds.FindCluster(context.Background(), 400, o.queryOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got.Radius != ref.Radius || got.RawRadius != ref.RawRadius ||
		got.Center[0] != ref.Center[0] || got.Center[1] != ref.Center[1] {
		t.Errorf("admitted handle release differs from the free function: %+v vs %+v", got, ref)
	}
}

// TestAdmitterProtocol verifies the two-phase contract end to end: one
// reserve per query with the exact (ε, δ) cost — doubled for
// InteriorPoint per Theorem 5.3 — one commit per completed mechanism, no
// stray releases, and the handle's Spent mirror tracking the admitted
// total.
func TestAdmitterProtocol(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts, _ := plantedPoints(rng, 800, 500, 2, 0.02)
	o := Options{Epsilon: 4, Delta: 0.05, Seed: 7, GridSize: 1024}
	adm := &recordingAdmitter{}
	do := o.datasetOptions()
	do.Admitter = adm
	ds, err := Open(pts, do)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.FindCluster(context.Background(), 400, o.queryOptions()); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.FindClusters(context.Background(), 2, 300, o.queryOptions()); err != nil {
		t.Fatal(err)
	}
	if len(adm.reserves) != 2 || adm.commits != 2 || adm.releases != 0 {
		t.Fatalf("after two queries: reserves=%v commits=%d releases=%d", adm.reserves, adm.commits, adm.releases)
	}
	for i, cost := range adm.reserves {
		if cost != (Budget{Epsilon: 4, Delta: 0.05}) {
			t.Errorf("reserve %d cost = %v, want (4, 0.05)", i, cost)
		}
	}
	if got := ds.Spent(); got != (Budget{Epsilon: 8, Delta: 0.1}) {
		t.Errorf("Spent mirror = %v, want (8, 0.1)", got)
	}
	if _, enforced := ds.Remaining(); enforced {
		t.Error("Remaining claims an in-handle budget on an admitter-gated handle")
	}

	// InteriorPoint reserves the composed (2ε, 2δ) in one hold.
	vals := make([]Point, 2400)
	vrng := rand.New(rand.NewSource(5))
	for i := range vals {
		vals[i] = Point{0.4 + 0.2*vrng.Float64()}
	}
	io := Options{Epsilon: 4, Delta: 0.05, Seed: 11}
	adm1 := &recordingAdmitter{}
	do1 := io.datasetOptions()
	do1.Admitter = adm1
	ds1, err := Open(vals, do1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds1.InteriorPoint(context.Background(), 1600, io.queryOptions()); err != nil {
		t.Fatal(err)
	}
	if len(adm1.reserves) != 1 || adm1.reserves[0] != (Budget{Epsilon: 8, Delta: 0.1}) {
		t.Errorf("InteriorPoint reserves = %v, want one (8, 0.1) hold", adm1.reserves)
	}
	if adm1.commits != 1 {
		t.Errorf("InteriorPoint commits = %d, want 1", adm1.commits)
	}
}

// TestAdmitterRefusal: a refusal from the external admitter surfaces to
// the caller unchanged (errors.Is-able as ErrBudgetExhausted, typed as
// *BudgetError) and runs no mechanism — the commit/release counters and
// the Spent mirror stay untouched.
func TestAdmitterRefusal(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts, _ := plantedPoints(rng, 800, 500, 2, 0.02)
	o := Options{Epsilon: 4, Delta: 0.05, Seed: 7, GridSize: 1024}
	adm := &recordingAdmitter{limit: Budget{Epsilon: 4, Delta: 0.05}}
	do := o.datasetOptions()
	do.Admitter = adm
	ds, err := Open(pts, do)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.FindCluster(context.Background(), 400, o.queryOptions()); err != nil {
		t.Fatal(err)
	}
	_, err = ds.FindCluster(context.Background(), 400, o.queryOptions())
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("second query err = %v, want ErrBudgetExhausted", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("refusal is not a *BudgetError: %v", err)
	}
	if be.Requested != (Budget{Epsilon: 4, Delta: 0.05}) {
		t.Errorf("refusal Requested = %v", be.Requested)
	}
	if adm.commits != 1 || adm.releases != 0 {
		t.Errorf("refused query settled something: commits=%d releases=%d", adm.commits, adm.releases)
	}
	if got := ds.Spent(); got != (Budget{Epsilon: 4, Delta: 0.05}) {
		t.Errorf("refused query moved the Spent mirror: %v", got)
	}
}

// TestAdmitterReleaseOnBuildFailure: admission precedes the index build,
// so a failed build must hand the hold back — the mechanism provably
// never ran. A remote handle whose dialer always fails is the one
// reliable way to make the build itself fail after validation.
func TestAdmitterReleaseOnBuildFailure(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts, _ := plantedPoints(rng, 800, 500, 2, 0.02)
	o := Options{Epsilon: 4, Delta: 0.05, Seed: 7, GridSize: 1024}
	adm := &recordingAdmitter{}
	do := o.datasetOptions()
	do.Admitter = adm
	do.RemoteShards = []string{"unreachable:0"}
	do.RemoteDial = func(ctx context.Context, addr string) (net.Conn, error) {
		return nil, errors.New("dial refused by test")
	}
	ds, err := Open(pts, do)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.FindCluster(context.Background(), 400, o.queryOptions()); err == nil {
		t.Fatal("query succeeded through an undialable remote index")
	}
	if len(adm.reserves) != 1 || adm.releases != 1 || adm.commits != 0 {
		t.Fatalf("build failure settled wrong: reserves=%d commits=%d releases=%d",
			len(adm.reserves), adm.commits, adm.releases)
	}
	if got := ds.Spent(); !got.IsZero() {
		t.Errorf("failed build left Spent mirror at %v", got)
	}
}

// TestAdmitterExclusiveWithBudget: setting both gates is an Open-time
// error — exactly one authority may own admission.
func TestAdmitterExclusiveWithBudget(t *testing.T) {
	pts := []Point{{0.1, 0.1}, {0.2, 0.2}, {0.3, 0.3}}
	_, err := Open(pts, DatasetOptions{
		Budget:   Budget{Epsilon: 1, Delta: 1e-6},
		Admitter: &recordingAdmitter{},
	})
	if err == nil {
		t.Fatal("Open accepted Budget and Admitter together")
	}
}

// TestAdmitterBatch: the batch executor funnels every query through the
// same admission seam — one reserve per admitted query.
func TestAdmitterBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts, _ := plantedPoints(rng, 800, 500, 2, 0.02)
	o := Options{Epsilon: 4, Delta: 0.05, GridSize: 1024}
	adm := &recordingAdmitter{}
	do := o.datasetOptions()
	do.Admitter = adm
	ds, err := Open(pts, do)
	if err != nil {
		t.Fatal(err)
	}
	reqs := []Query{
		{T: 400, Opts: QueryOptions{Epsilon: 4, Delta: 0.05, Seed: 1}},
		{K: 2, T: 300, Opts: QueryOptions{Epsilon: 4, Delta: 0.05, Seed: 2}},
	}
	res := ds.FindClustersBatch(context.Background(), reqs)
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("batch query %d: %v", i, r.Err)
		}
	}
	if len(adm.reserves) != 2 || adm.commits != 2 {
		t.Errorf("batch of 2: reserves=%d commits=%d", len(adm.reserves), adm.commits)
	}
}
