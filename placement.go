package privcluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"time"
)

// Placement describes how a dataset's shard partitions map onto shard
// servers: one replica address set per partition, plus the connection and
// failover knobs. It replaces the flat DatasetOptions.RemoteShards +
// RemoteDial pair (which remain as deprecated wrappers constructing a
// trivial single-replica Placement).
//
// Every replica of a partition must serve the same data — each is dialed
// with the identical shard config, so its bulk-count answers are
// bit-identical to its siblings' and failover or hedging cannot perturb
// releases (see the "Replication and failover" section of the package
// documentation). Single-replica partitions behave exactly like the old
// RemoteShards path: a plain connection with the client's transparent
// reconnect, no replication machinery.
//
// Only Partitions is part of the handle's index-cache identity; Dial and
// the knobs are transport mechanics (changing them on a fresh handle is
// fine, but they must be fixed for one handle's lifetime, like every
// other DatasetOptions field).
type Placement struct {
	// Partitions lists the replica address sets: partition p of the
	// sharded index is served by Partitions[p], trying its replicas in
	// order (first address = preferred replica).
	Partitions [][]string
	// Dial overrides how server connections are established (nil = TCP),
	// for loopback transports in tests and demos.
	Dial func(ctx context.Context, addr string) (net.Conn, error)
	// Retries is the per-connection transport retry budget of each
	// replica's client (reconnect + re-send on a broken connection; see
	// the transport options). 0 means the default of 1; negative means 0.
	// Replica failover is on top of — not instead of — these retries.
	Retries int
	// HedgeDelay opts into hedged reads on multi-replica partitions: a
	// bulk call unanswered after this delay is re-issued to the next
	// replica and the first answer wins. 0 disables hedging. Hedging
	// trades duplicate shard compute for tail latency and never changes
	// releases (the loser's identical answer is discarded, not summed).
	HedgeDelay time.Duration
	// ProbeInterval is how often replicas marked down are re-probed in
	// the background (0 = the 2s default; negative disables probing).
	ProbeInterval time.Duration
	// DialTimeout caps connection establishment plus handshake when the
	// calling context has no earlier deadline (0 = the 10s default).
	DialTimeout time.Duration
}

// validate rejects placements that cannot describe a deployment.
func (p *Placement) validate() error {
	if len(p.Partitions) == 0 {
		return fmt.Errorf("privcluster: placement with no partitions")
	}
	for pi, reps := range p.Partitions {
		if len(reps) == 0 {
			return fmt.Errorf("privcluster: placement partition %d has no replicas", pi)
		}
		seen := make(map[string]bool, len(reps))
		for ri, a := range reps {
			if a == "" {
				return fmt.Errorf("privcluster: placement partition %d replica %d is empty", pi, ri)
			}
			if seen[a] {
				return fmt.Errorf("privcluster: placement partition %d lists replica %q twice", pi, a)
			}
			seen[a] = true
		}
	}
	return nil
}

// singleReplica reports whether every partition has exactly one replica —
// the shape mutable (epoch-session) handles require, and the shape the
// deprecated RemoteShards wrapper produces.
func (p *Placement) singleReplica() bool {
	for _, reps := range p.Partitions {
		if len(reps) != 1 {
			return false
		}
	}
	return true
}

// flatten returns the one address per partition of a single-replica
// placement.
func (p *Placement) flatten() []string {
	addrs := make([]string, len(p.Partitions))
	for i, reps := range p.Partitions {
		addrs[i] = reps[0]
	}
	return addrs
}

// cacheKey encodes the partition structure into the index-cache identity.
// Every address travels length-prefixed, so no two distinct placements can
// collide — unlike a separator join, where an address containing the
// separator (or ["a,b"] vs ["a","b"]) is ambiguous. The knobs and Dial
// are deliberately excluded: they change how bytes move, never what index
// is built.
func (p *Placement) cacheKey() string {
	var b strings.Builder
	b.WriteByte('p')
	b.WriteString(strconv.Itoa(len(p.Partitions)))
	for _, reps := range p.Partitions {
		b.WriteByte('[')
		b.WriteString(strconv.Itoa(len(reps)))
		for _, a := range reps {
			b.WriteByte('|')
			b.WriteString(strconv.Itoa(len(a)))
			b.WriteByte(':')
			b.WriteString(a)
		}
	}
	return b.String()
}

// placementJSON is the JSON schema of a placement file — the durations as
// integer milliseconds, so configs stay toolable without Go duration
// syntax:
//
//	{
//	  "partitions": [["host-a:9001", "host-b:9001"], ["host-c:9001"]],
//	  "retries": 1,
//	  "hedge_delay_ms": 20,
//	  "probe_interval_ms": 2000,
//	  "dial_timeout_ms": 10000
//	}
//
// Omitted knobs take their in-process defaults; a negative
// probe_interval_ms disables probing. Dial overrides cannot travel in a
// file.
type placementJSON struct {
	Partitions      [][]string `json:"partitions"`
	Retries         int        `json:"retries,omitempty"`
	HedgeDelayMS    int64      `json:"hedge_delay_ms,omitempty"`
	ProbeIntervalMS int64      `json:"probe_interval_ms,omitempty"`
	DialTimeoutMS   int64      `json:"dial_timeout_ms,omitempty"`
}

// ParsePlacement decodes and validates the JSON placement schema (see
// LoadPlacement). Unknown fields are rejected — a typo in an operational
// config must fail loudly, not silently default.
func ParsePlacement(data []byte) (*Placement, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var pj placementJSON
	if err := dec.Decode(&pj); err != nil {
		return nil, fmt.Errorf("privcluster: parsing placement: %w", err)
	}
	p := &Placement{
		Partitions:    pj.Partitions,
		Retries:       pj.Retries,
		HedgeDelay:    time.Duration(pj.HedgeDelayMS) * time.Millisecond,
		ProbeInterval: time.Duration(pj.ProbeIntervalMS) * time.Millisecond,
		DialTimeout:   time.Duration(pj.DialTimeoutMS) * time.Millisecond,
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// LoadPlacement reads a JSON placement file (the format cmd/shardctl
// generates and validates; see ParsePlacement for the schema).
func LoadPlacement(path string) (*Placement, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("privcluster: reading placement: %w", err)
	}
	return ParsePlacement(data)
}

// EncodeJSON renders the placement in the file schema LoadPlacement reads
// (Dial, which cannot travel in a file, is dropped). cmd/shardctl uses it
// to generate placement files.
func (p *Placement) EncodeJSON() ([]byte, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	out, err := json.MarshalIndent(placementJSON{
		Partitions:      p.Partitions,
		Retries:         p.Retries,
		HedgeDelayMS:    int64(p.HedgeDelay / time.Millisecond),
		ProbeIntervalMS: int64(p.ProbeInterval / time.Millisecond),
		DialTimeoutMS:   int64(p.DialTimeout / time.Millisecond),
	}, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
