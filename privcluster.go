package privcluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"privcluster/internal/agg"
	"privcluster/internal/core"
	"privcluster/internal/dp"
	"privcluster/internal/geometry"
	"privcluster/internal/vec"
)

// Point is a point in the d-dimensional unit cube.
type Point = []float64

// IndexPolicy selects the ball-index backend the algorithms preprocess the
// dataset with.
type IndexPolicy int

const (
	// IndexAuto (the default) uses the exact index for small inputs and
	// switches to the scalable one when the Θ(n²) distance matrix would be
	// expensive (above a few thousand points).
	IndexAuto IndexPolicy = iota
	// IndexExact forces the Θ(n²)-memory exact distance index: exact ball
	// counts and score function, viable for n in the low thousands.
	IndexExact
	// IndexScalable forces the O(n·d)-memory grid-bucketed cell index:
	// ball counts resolved by per-cell candidate pruning, with the score
	// function approximated on a geometric radius ladder. Privacy is
	// unaffected; the returned radius can be a small constant factor wider
	// than with IndexExact.
	IndexScalable
)

// BoxPacking selects how GoodCenter's box-partition loop — the per-point
// count pass that runs once per SVT repetition — encodes box keys. The
// choice never affects which box a point lands in, the privacy analysis,
// or (thanks to a canonical box enumeration) the seeded output — exactly
// for the exact encodings, and up to a ≈ 2⁻⁶⁴-probability key collision
// for PackingHashed; it only trades allocation profile.
type BoxPacking int

const (
	// PackingAuto (the default) bit-packs the per-axis cell indices into
	// one uint64 when they fit and hash-combines them beyond.
	PackingAuto BoxPacking = iota
	// PackingPacked requests bit-packed keys (hash fallback when k·bits
	// exceeds 64, exactly as PackingAuto would).
	PackingPacked
	// PackingHashed forces hash-combined uint64 keys.
	PackingHashed
	// PackingLegacy keeps the original 8·k-byte string keys — the
	// allocation-heavy reference backend, retained for equivalence testing
	// and benchmarking.
	PackingLegacy
)

// Options configures the private algorithms. The zero value gives ε = 1,
// δ = 10⁻⁶, β = 0.1, |X| = 2¹⁶, the automatic index backend and a
// time-seeded generator (fresh noise per call — the only safe default for
// a privacy library).
type Options struct {
	// Epsilon, Delta are the total differential-privacy budget of one call.
	Epsilon float64
	Delta   float64
	// Beta is the failure-probability target of the utility guarantees.
	Beta float64
	// GridSize is |X|: the number of grid values per axis of the finite
	// domain X^d. Inputs are snapped onto the grid (Definition 1.2 requires
	// a finite domain; Section 5 proves infinite domains are impossible).
	GridSize int64
	// Seed makes the run reproducible. 0 is the documented sentinel for
	// "draw a fresh seed from the clock on every call"; to use the literal
	// seed 0, set ZeroSeed. Reproducible noise is for experiments only —
	// never for deployments.
	Seed int64
	// ZeroSeed treats Seed == 0 as a literal, reproducible seed instead of
	// the draw-from-clock sentinel. Nonzero seeds are unaffected.
	ZeroSeed bool
	// IndexPolicy selects the dataset index backend (default IndexAuto).
	IndexPolicy IndexPolicy
	// Paper switches every internal constant to the paper's proof values
	// (see internal/core.PaperProfile). With them, meaningful output needs
	// astronomically large datasets; the default profile keeps the same
	// formulas at practical scale.
	Paper bool
	// Min and Max describe the data domain [Min, Max]^d (Remark 3.3's
	// general grid with axis length L = Max−Min). Inputs are affinely
	// mapped onto the unit cube and outputs mapped back, so released radii
	// are in the original units. Both zero means the unit cube itself.
	Min, Max float64
	// Workers bounds the worker pools of the parallel passes (the scalable
	// index's bulk counts and GoodCenter's box-partition loop). 0 means
	// GOMAXPROCS. Parallelism never changes results — only aggregates of
	// the deterministic count passes reach the private mechanisms.
	Workers int
	// Shards splits the scalable ball index into per-shard cell indexes
	// built in parallel and queried by summing exact per-shard counts
	// (space-filling-curve partition; see geometry.ShardedIndex). 0 means
	// automatic: GOMAXPROCS shards at n ≥ 100,000, unsharded below.
	// Negative values are rejected. Like Workers, sharding never changes
	// results: counts decompose into exact partial sums over the data
	// partitions, so releases are bit-identical to the unsharded index
	// under the same seed and the sensitivity-2 privacy argument is
	// untouched.
	Shards int
	// BoxPacking selects GoodCenter's box-key engine (default PackingAuto).
	BoxPacking BoxPacking
}

func (o Options) withDefaults() Options {
	if o.Epsilon == 0 {
		o.Epsilon = 1
	}
	if o.Delta == 0 {
		o.Delta = 1e-6
	}
	if o.Beta == 0 {
		o.Beta = 0.1
	}
	if o.GridSize == 0 {
		o.GridSize = 1 << 16
	}
	return o
}

// seededRNG implements the shared seed semantics of Options and
// QueryOptions: 0 draws from the clock unless zeroSeed makes it literal.
func seededRNG(seed int64, zeroSeed bool) *rand.Rand {
	if seed == 0 && !zeroSeed {
		seed = time.Now().UnixNano()
	}
	return rand.New(rand.NewSource(seed))
}

func (o Options) rng() *rand.Rand { return seededRNG(o.Seed, o.ZeroSeed) }

// core maps the public index policy onto the core one, rejecting unknown
// values.
func (p IndexPolicy) core() (core.IndexPolicy, error) {
	switch p {
	case IndexAuto:
		return core.IndexAuto, nil
	case IndexExact:
		return core.IndexExact, nil
	case IndexScalable:
		return core.IndexScalable, nil
	default:
		return 0, fmt.Errorf("privcluster: unknown index policy %d", p)
	}
}

func (o Options) profile() core.Profile {
	p := core.DefaultProfile()
	if o.Paper {
		p = core.PaperProfile()
	}
	p.Workers = o.Workers
	p.Packing = core.PackingPolicy(o.BoxPacking)
	return p
}

// datasetOptions splits Options into its handle half: everything that is a
// property of the prepared data rather than of one query.
func (o Options) datasetOptions() DatasetOptions {
	return DatasetOptions{
		GridSize:    o.GridSize,
		Min:         o.Min,
		Max:         o.Max,
		IndexPolicy: o.IndexPolicy,
		Workers:     o.Workers,
		Shards:      o.Shards,
		BoxPacking:  o.BoxPacking,
		Paper:       o.Paper,
		// No Budget: the one-shot free functions never refuse a query.
	}
}

// queryOptions splits Options into its per-query half.
func (o Options) queryOptions() QueryOptions {
	return QueryOptions{
		Epsilon:  o.Epsilon,
		Delta:    o.Delta,
		Beta:     o.Beta,
		Seed:     o.Seed,
		ZeroSeed: o.ZeroSeed,
	}
}

// Cluster is a released ball.
type Cluster struct {
	Center Point
	Radius float64
	// RawRadius is the GoodRadius stage's estimate (≤ 4·r_opt w.h.p.);
	// Radius is the final covering radius, O(RawRadius·√log n).
	RawRadius float64
	// ZeroRadius marks the degenerate case of ≥ t identical points.
	ZeroRadius bool
}

// Contains reports whether p lies in the cluster's ball.
func (c Cluster) Contains(p Point) bool {
	return geometry.Ball{Center: vec.Vector(c.Center), Radius: c.Radius}.Contains(vec.Vector(p))
}

// Count returns how many of the given points lie in the cluster's ball. For
// a uniform-dimension slice it runs as one flat sweep over a frame view of
// the points (the same CountWithin kernel the indexes use; Contains and the
// kernel compare DistSq ≤ Radius² identically, so the count is unchanged).
func (c Cluster) Count(points []Point) int {
	if f, err := vec.FrameFromVectors(vecsOf(points)); err == nil && f.Dim() == len(c.Center) {
		return f.CountWithin(vec.Vector(c.Center), c.Radius)
	}
	n := 0
	for _, p := range points {
		if c.Contains(p) {
			n++
		}
	}
	return n
}

// vecsOf reinterprets a []Point as []vec.Vector without copying coordinates.
func vecsOf(points []Point) []vec.Vector {
	vs := make([]vec.Vector, len(points))
	for i, p := range points {
		vs[i] = vec.Vector(p)
	}
	return vs
}

// ErrNoPoints is returned for empty inputs.
var ErrNoPoints = errors.New("privcluster: no input points")

// ErrInfeasible is returned by the pre-flight feasibility check: the target
// t sits below the floor at which the pipeline's private-selection release
// thresholds are reachable at all for the given (ε, δ, β, |X|), so the run
// would fail (flakily, after spending its budget). The wrapping error says
// which of t/ε/β to raise. The floor itself is a pure function of the
// parameters; the only data the check consults is the input's duplicate
// structure — a dataset with ≈ t duplicated points succeeds through the
// radius-zero path at any t and is never rejected. (Like every error this
// library releases, that one branch makes the outcome data-dependent; see
// the privacy disclaimer in the package documentation.)
var ErrInfeasible = errors.New("privcluster: t is infeasibly small for the privacy regime")

// FindCluster solves the 1-cluster problem (Theorem 3.2): it privately
// locates a ball that, with probability ≥ 1−β, contains at least t − Δ of
// the input points and whose radius is within O(√log n) of the smallest
// ball containing t points. Points are snapped onto the |X|-per-axis grid.
//
// It is a thin wrapper over the Dataset handle — Open followed by one
// query on a budget-less handle — so every call re-prepares the points and
// rebuilds the index. A serving process issuing repeated queries on the
// same data should Open a handle once instead.
func FindCluster(points []Point, t int, o Options) (Cluster, error) {
	ds, err := Open(points, o.datasetOptions())
	if err != nil {
		return Cluster{}, err
	}
	return ds.FindCluster(context.Background(), t, o.queryOptions())
}

// FindClusters iterates FindCluster k times (Observation 3.5), each round
// on the not-yet-covered points, splitting the privacy budget across
// rounds. It returns the balls found (possibly fewer than k). Like
// FindCluster, it is a single-use-handle wrapper over Dataset.FindClusters.
func FindClusters(points []Point, k, t int, o Options) ([]Cluster, error) {
	ds, err := Open(points, o.datasetOptions())
	if err != nil {
		return nil, err
	}
	return ds.FindClusters(context.Background(), k, t, o.queryOptions())
}

// InteriorPoint privately returns a value between min(values) and
// max(values) (Algorithm 3 / Theorem 5.3) — the primitive whose Ω(log*|X|)
// lower bound transfers to the 1-cluster problem. Values must lie in [0,1].
// innerN is the size of the middle sub-database handed to the 1-cluster
// stage; the (len(values)−innerN)/2 extreme values on each side provide the
// selection quality margin.
//
// It is a single-use-handle wrapper over Dataset.InteriorPoint, and — like
// the other handle queries — pre-flights the inner stage's feasibility,
// returning ErrInfeasible instead of a late promise failure when
// innerN/2 sits below the floor for the privacy regime.
func InteriorPoint(values []float64, innerN int, o Options) (float64, error) {
	if len(values) == 0 {
		return 0, ErrNoPoints
	}
	pts := make([]Point, len(values))
	for i, v := range values {
		pts[i] = Point{v}
	}
	do := o.datasetOptions()
	// The documented contract is values in [0, 1]; the legacy function
	// never honored Min/Max, so the wrapper pins the unit domain.
	do.Min, do.Max = 0, 0
	ds, err := Open(pts, do)
	if err != nil {
		return 0, err
	}
	return ds.InteriorPoint(context.Background(), innerN, o.queryOptions())
}

// Aggregate compiles the non-private analysis f into a private one via
// sample-and-aggregate (Algorithm SA, Theorem 6.3). f is evaluated on
// len(rows)/(9m) random blocks of m rows each; the evaluations (points in
// [0,1]^dim) are aggregated by the private 1-cluster algorithm. If f is
// (m, r, alpha)-stable on the rows (Definition 6.1), the returned point is,
// with probability ≥ 1−β, an (m, O(r·√log n), alpha/8)-stable point — a
// private stand-in for f(rows).
//
// Aggregate cannot ride a Dataset handle: the aggregated points are the f
// evaluations, which exist only mid-run (and are drawn with the same rng
// stream the aggregation continues with). It shares the handle's
// validation path instead — parameters are checked up front, and the
// 1-cluster stage's feasibility is pre-flighted on the evaluations (via
// the same check as FindCluster) right before the budget-spending
// aggregation, returning ErrInfeasible instead of a late promise failure.
func Aggregate[R any](rows []R, f func([]R) Point, dim, m int, alpha float64, o Options) (Point, error) {
	o = o.withDefaults()
	q := o.queryOptions().withDefaults()
	if err := q.validate(); err != nil {
		return nil, err
	}
	pol, err := o.IndexPolicy.core()
	if err != nil {
		return nil, err
	}
	grid, err := geometry.NewGrid(o.GridSize, dim)
	if err != nil {
		return nil, err
	}
	cprm := core.Params{
		Privacy: dp.Params{Epsilon: o.Epsilon, Delta: o.Delta},
		Beta:    o.Beta,
		Grid:    grid,
		Profile: o.profile(),
		Index:   pol,
	}
	prm := agg.Params{
		M:       m,
		Alpha:   alpha,
		Cluster: cprm,
		Preflight: func(evals []vec.Vector, t int) error {
			check := cprm
			check.T = t
			plaus := func(p core.Params) bool { return core.ZeroClusterPlausible(evals, p) }
			return checkFeasible(plaus, check, 1, q, o.GridSize)
		},
	}
	res, err := agg.Run(o.rng(), rows, func(rs []R) vec.Vector { return vec.Vector(f(rs)) }, prm)
	if err != nil {
		return nil, err
	}
	return Point(res.Point), nil
}
