package privcluster

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestDatasetMatchesFreeFunctions pins the tentpole equivalence guarantee:
// under a fixed seed, a query on a prepared handle releases exactly what
// the legacy free function releases — including on a warm handle whose
// cached index is being reused, and under a non-unit domain.
func TestDatasetMatchesFreeFunctions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts, _ := plantedPoints(rng, 800, 500, 2, 0.02)
	o := Options{Epsilon: 4, Delta: 0.05, Seed: 7, GridSize: 1024}

	ref, err := FindCluster(pts, 400, o)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Open(pts, o.datasetOptions())
	if err != nil {
		t.Fatal(err)
	}
	for pass, label := range []string{"cold", "warm (cached index)"} {
		got, err := ds.FindCluster(context.Background(), 400, o.queryOptions())
		if err != nil {
			t.Fatalf("%s query: %v", label, err)
		}
		if got.Radius != ref.Radius || got.RawRadius != ref.RawRadius ||
			got.Center[0] != ref.Center[0] || got.Center[1] != ref.Center[1] {
			t.Errorf("%s handle query differs from the free function: %+v vs %+v (pass %d)", label, got, ref, pass)
		}
	}
	if builds := ds.builds.Load(); builds != 1 {
		t.Errorf("two warm queries built the index %d times, want 1", builds)
	}

	// FindClusters through the same handle and seed.
	ko := Options{Epsilon: 12, Delta: 0.06, Seed: 5, GridSize: 1024}
	refK, err := FindClusters(pts, 2, 300, ko)
	if err != nil {
		t.Fatal(err)
	}
	gotK, err := ds.FindClusters(context.Background(), 2, 300, ko.queryOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(refK) != len(gotK) {
		t.Fatalf("FindClusters: %d vs %d clusters", len(gotK), len(refK))
	}
	for i := range refK {
		if refK[i].Radius != gotK[i].Radius || refK[i].Center[0] != gotK[i].Center[0] {
			t.Errorf("cluster %d differs: %+v vs %+v", i, gotK[i], refK[i])
		}
	}

	// InteriorPoint on a 1-D handle.
	vals := make([]float64, 2400)
	vrng := rand.New(rand.NewSource(5))
	for i := range vals {
		vals[i] = 0.4 + 0.2*vrng.Float64()
	}
	io := Options{Epsilon: 4, Delta: 0.05, Seed: 11}
	refIP, err := InteriorPoint(vals, 1600, io)
	if err != nil {
		t.Fatal(err)
	}
	vpts := make([]Point, len(vals))
	for i, v := range vals {
		vpts[i] = Point{v}
	}
	ds1, err := Open(vpts, io.datasetOptions())
	if err != nil {
		t.Fatal(err)
	}
	gotIP, err := ds1.InteriorPoint(context.Background(), 1600, io.queryOptions())
	if err != nil {
		t.Fatal(err)
	}
	if gotIP != refIP {
		t.Errorf("InteriorPoint differs: %x vs %x", gotIP, refIP)
	}
}

// TestDatasetFloat32Precision covers the opt-in float32 storage mode: it is
// a distinct release mode (documented as never bit-comparable to Float64),
// so the contract to pin is internal determinism — the same seed on two
// independently opened Float32 handles releases the identical cluster, warm
// and cold — plus validation of unknown precision values.
func TestDatasetFloat32Precision(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts, _ := plantedPoints(rng, 800, 500, 2, 0.02)
	o := Options{Epsilon: 4, Delta: 0.05, Seed: 7, GridSize: 1024}
	do := o.datasetOptions()
	do.Precision = Float32

	ds1, err := Open(pts, do)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ds1.FindCluster(context.Background(), 400, o.queryOptions())
	if err != nil {
		t.Fatal(err)
	}
	if ref.Radius <= 0 && !ref.ZeroRadius {
		t.Fatalf("degenerate release: %+v", ref)
	}
	// Warm repeat on the same handle, then a cold repeat on a fresh handle:
	// all three must agree bit for bit.
	warm, err := ds1.FindCluster(context.Background(), 400, o.queryOptions())
	if err != nil {
		t.Fatal(err)
	}
	ds2, err := Open(pts, do)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := ds2.FindCluster(context.Background(), 400, o.queryOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		label string
		got   Cluster
	}{{"warm", warm}, {"fresh handle", cold}} {
		if tc.got.Radius != ref.Radius || tc.got.RawRadius != ref.RawRadius ||
			tc.got.Center[0] != ref.Center[0] || tc.got.Center[1] != ref.Center[1] {
			t.Errorf("%s float32 release differs: %+v vs %+v", tc.label, tc.got, ref)
		}
	}

	bad := do
	bad.Precision = Precision(42)
	if _, err := Open(pts, bad); err == nil {
		t.Error("unknown precision accepted")
	}
}

// TestDatasetDomainMapping: a handle over a non-unit domain releases in
// original units, identically to the free function.
func TestDatasetDomainMapping(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	unit, _ := plantedPoints(rng, 800, 500, 2, 0.02)
	pts := make([]Point, len(unit))
	for i, p := range unit {
		pts[i] = Point{-10 + 20*p[0], -10 + 20*p[1]}
	}
	o := Options{Epsilon: 4, Delta: 0.05, Seed: 7, GridSize: 1024, Min: -10, Max: 10}
	ref, err := FindCluster(pts, 400, o)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Open(pts, o.datasetOptions())
	if err != nil {
		t.Fatal(err)
	}
	got, err := ds.FindCluster(context.Background(), 400, o.queryOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got.Radius != ref.Radius || got.Center[0] != ref.Center[0] || got.Center[1] != ref.Center[1] {
		t.Errorf("domain-mapped handle query differs: %+v vs %+v", got, ref)
	}
	if got.Center[0] < -10 || got.Center[0] > 10 {
		t.Errorf("center %v not in original units", got.Center)
	}
}

// TestDatasetBudgetAccounting: queries deduct their cost, Remaining tracks
// it, and the query that no longer fits is refused with the typed
// ErrBudgetExhausted carrying spent/remaining amounts — without running
// any mechanism.
func TestDatasetBudgetAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts, _ := plantedPoints(rng, 800, 500, 2, 0.02)
	do := Options{GridSize: 1024}.datasetOptions()
	do.Budget = Budget{Epsilon: 8, Delta: 0.1}
	ds, err := Open(pts, do)
	if err != nil {
		t.Fatal(err)
	}
	q := QueryOptions{Epsilon: 4, Delta: 0.05, Seed: 7}

	if rem, ok := ds.Remaining(); !ok || rem != (Budget{Epsilon: 8, Delta: 0.1}) {
		t.Fatalf("fresh handle Remaining = %v, %v", rem, ok)
	}
	for i := 0; i < 2; i++ {
		if _, err := ds.FindCluster(context.Background(), 400, q); err != nil {
			t.Fatalf("query %d within budget failed: %v", i, err)
		}
	}
	if rem, _ := ds.Remaining(); rem.Epsilon > 1e-9 || rem.Delta > 1e-9 {
		t.Errorf("after exhausting queries Remaining = %v, want ≈ zero", rem)
	}

	_, err = ds.FindCluster(context.Background(), 400, q)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("over-budget query: err = %v, want ErrBudgetExhausted", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("over-budget error is not a *BudgetError: %v", err)
	}
	if be.Total != do.Budget || be.Spent != (Budget{Epsilon: 8, Delta: 0.1}) || be.Requested != (Budget{Epsilon: 4, Delta: 0.05}) {
		t.Errorf("BudgetError fields: total=%v spent=%v requested=%v", be.Total, be.Spent, be.Requested)
	}
	if got := ds.Spent(); got != (Budget{Epsilon: 8, Delta: 0.1}) {
		t.Errorf("refused query changed Spent to %v", got)
	}

	// A budget-less handle tracks spending but never refuses.
	free, err := Open(pts, Options{GridSize: 1024}.datasetOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := free.Remaining(); ok {
		t.Error("budget-less handle claims to enforce a budget")
	}
	if _, err := free.FindCluster(context.Background(), 400, q); err != nil {
		t.Fatal(err)
	}
	if got := free.Spent(); got != (Budget{Epsilon: 4, Delta: 0.05}) {
		t.Errorf("budget-less handle Spent = %v", got)
	}
}

// TestDatasetInteriorPointCost: an InteriorPoint query costs (2ε, 2δ) —
// the Theorem 5.3 composition of its two stages.
func TestDatasetInteriorPointCost(t *testing.T) {
	vals := make([]Point, 3000)
	rng := rand.New(rand.NewSource(4))
	for i := range vals {
		if i < 2400 {
			vals[i] = Point{0.5} // duplicate-dominated: radius-zero path at any t
		} else {
			vals[i] = Point{rng.Float64()}
		}
	}
	do := DatasetOptions{Budget: Budget{Epsilon: 2, Delta: 2e-6}}
	ds, err := Open(vals, do)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.InteriorPoint(context.Background(), 2000, QueryOptions{Seed: 1}); err != nil {
		t.Fatalf("InteriorPoint within budget: %v", err)
	}
	if got := ds.Spent(); got != (Budget{Epsilon: 2, Delta: 2e-6}) {
		t.Errorf("InteriorPoint cost %v, want the (2ε, 2δ) composition", got)
	}
	if _, err := ds.InteriorPoint(context.Background(), 2000, QueryOptions{Seed: 2}); !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("second InteriorPoint past the budget: err = %v, want ErrBudgetExhausted", err)
	}

	// Degenerate innerN values are parameter errors: rejected before any
	// budget is consulted, never charged.
	fresh, err := Open(vals, do)
	if err != nil {
		t.Fatal(err)
	}
	for _, badInner := range []int{0, 1, len(vals)} {
		if _, err := fresh.InteriorPoint(context.Background(), badInner, QueryOptions{Seed: 1}); err == nil {
			t.Errorf("innerN=%d accepted", badInner)
		}
	}
	if got := fresh.Spent(); !got.IsZero() {
		t.Errorf("invalid innerN queries consumed %v of budget", got)
	}
}

// TestDatasetConcurrentQueries is the race-detector test of the tentpole's
// concurrency contract: N goroutines hammer one handle; the budget is never
// over-spent (exactly the affordable number of queries get through) and the
// index is built exactly once.
func TestDatasetConcurrentQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts, _ := plantedPoints(rng, 6000, 4000, 2, 0.02) // > ExactIndexMaxN: scalable backend
	const (
		goroutines = 8
		affordable = 3
	)
	do := Options{}.datasetOptions()
	do.Budget = Budget{Epsilon: 2 * affordable, Delta: 1e-5 * affordable}
	ds, err := Open(pts, do)
	if err != nil {
		t.Fatal(err)
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		refused int
		ran     int
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			_, err := ds.FindCluster(context.Background(), 3000, QueryOptions{Epsilon: 2, Delta: 1e-5, Seed: seed})
			mu.Lock()
			defer mu.Unlock()
			if errors.Is(err, ErrBudgetExhausted) {
				refused++
			} else {
				// Whether or not the mechanism succeeded downstream, the
				// charge went through — what the accounting must bound.
				ran++
			}
		}(int64(g + 1))
	}
	wg.Wait()
	if ran != affordable || refused != goroutines-affordable {
		t.Errorf("ran %d queries (want %d), refused %d (want %d)", ran, affordable, refused, goroutines-affordable)
	}
	if got := ds.Spent(); math.Abs(got.Epsilon-2*affordable) > 1e-9 || math.Abs(got.Delta-1e-5*affordable) > 1e-12 {
		t.Errorf("concurrent spend = %v, want the full budget (ε=%d, δ=%g)", got, 2*affordable, 1e-5*affordable)
	}
	if builds := ds.builds.Load(); builds != 1 {
		t.Errorf("index built %d times under concurrency, want exactly 1", builds)
	}
}

// TestDatasetPreCancelledContext: a context that is already cancelled when
// the query arrives returns promptly and consumes no budget.
func TestDatasetPreCancelledContext(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts, _ := plantedPoints(rng, 800, 500, 2, 0.02)
	do := Options{GridSize: 1024}.datasetOptions()
	do.Budget = Budget{Epsilon: 4, Delta: 0.05}
	ds, err := Open(pts, do)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := ds.FindCluster(ctx, 400, QueryOptions{Epsilon: 4, Delta: 0.05, Seed: 7}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled query: err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("pre-cancelled query took %v, want prompt return", elapsed)
	}
	if got := ds.Spent(); !got.IsZero() {
		t.Errorf("pre-cancelled query consumed %v of budget", got)
	}
	if _, err := ds.FindClusters(ctx, 2, 400, QueryOptions{Epsilon: 4, Delta: 0.05}); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled FindClusters: err = %v", err)
	}
	if got := ds.Spent(); !got.IsZero() {
		t.Errorf("pre-cancelled queries consumed %v of budget", got)
	}
}

// TestDatasetCancelInFlight: cancelling a context mid-query aborts an
// n = 100k query promptly — no panic, no stuck worker pools — instead of
// running the multi-second pipeline to completion.
func TestDatasetCancelInFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-point cancellation test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(7))
	pts, _ := plantedPoints(rng, 100000, 60000, 2, 0.03)
	ds, err := Open(pts, DatasetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := ds.FindCluster(ctx, 50000, QueryOptions{Seed: 42})
		done <- err
	}()
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled in-flight query: err = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled query did not return within 30s")
	}
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Errorf("cancellation took %v end to end", elapsed)
	}
	// The worker pools must drain: poll until the goroutine count returns
	// to (near) baseline.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > baseline+2 {
		t.Errorf("goroutines leaked after cancellation: %d vs baseline %d", got, baseline)
	}
}

// TestOptionValidationEarly is the satellite regression suite: negative or
// out-of-range ε, δ, β and non-positive t are rejected with clear errors at
// Open/query time — on the handle and through the legacy free functions —
// instead of flowing through withDefaults unchecked.
func TestOptionValidationEarly(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts, _ := plantedPoints(rng, 100, 60, 2, 0.02)

	t.Run("open", func(t *testing.T) {
		for _, tc := range []struct {
			name string
			o    DatasetOptions
			want string
		}{
			{"negative budget epsilon", DatasetOptions{Budget: Budget{Epsilon: -1}}, "budget epsilon"},
			{"budget delta ≥ 1", DatasetOptions{Budget: Budget{Epsilon: 1, Delta: 1}}, "budget delta"},
			{"negative budget delta", DatasetOptions{Budget: Budget{Epsilon: 1, Delta: -0.1}}, "budget delta"},
			{"inverted domain", DatasetOptions{Min: 2, Max: 1}, "domain bounds"},
			{"unknown index policy", DatasetOptions{IndexPolicy: IndexPolicy(42)}, "index policy"},
			{"unknown box packing", DatasetOptions{BoxPacking: BoxPacking(9)}, "box packing"},
		} {
			_, err := Open(pts, tc.o)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
			}
		}
	})

	t.Run("query", func(t *testing.T) {
		ds, err := Open(pts, DatasetOptions{GridSize: 1024})
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		for _, tc := range []struct {
			name string
			q    QueryOptions
			want string
		}{
			{"negative epsilon", QueryOptions{Epsilon: -3}, "epsilon"},
			{"negative delta", QueryOptions{Delta: -1e-6}, "delta"},
			{"delta ≥ 1", QueryOptions{Delta: 1.5}, "delta"},
			{"negative beta", QueryOptions{Beta: -0.5}, "beta"},
			{"beta ≥ 1", QueryOptions{Beta: 1.5}, "beta"},
		} {
			if _, err := ds.FindCluster(ctx, 50, tc.q); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
			}
		}
		for _, badT := range []int{0, -5, len(pts) + 1} {
			if _, err := ds.FindCluster(ctx, badT, QueryOptions{}); err == nil || !strings.Contains(err.Error(), "out of [1, n=") {
				t.Errorf("t=%d: err = %v, want range error", badT, err)
			}
		}
		if _, err := ds.FindClusters(ctx, 0, 50, QueryOptions{}); err == nil || !strings.Contains(err.Error(), "k ≥ 1") {
			t.Errorf("k=0: err = %v", err)
		}
	})

	t.Run("free functions", func(t *testing.T) {
		if _, err := FindCluster(pts, 50, Options{Epsilon: -1}); err == nil || !strings.Contains(err.Error(), "epsilon") {
			t.Errorf("FindCluster negative ε: %v", err)
		}
		if _, err := FindCluster(pts, 0, Options{Epsilon: 4, Delta: 0.05}); err == nil {
			t.Error("FindCluster t=0 accepted")
		}
		if _, err := FindClusters(pts, 2, 50, Options{Beta: 7}); err == nil || !strings.Contains(err.Error(), "beta") {
			t.Errorf("FindClusters β=7: %v", err)
		}
		vals := []float64{0.1, 0.2, 0.3, 0.4}
		if _, err := InteriorPoint(vals, 2, Options{Delta: -0.5}); err == nil || !strings.Contains(err.Error(), "delta") {
			t.Errorf("InteriorPoint negative δ: %v", err)
		}
		if _, err := Aggregate([]float64{1, 2}, func([]float64) Point { return Point{0} }, 1, 1, 0.5,
			Options{Epsilon: -2}); err == nil || !strings.Contains(err.Error(), "epsilon") {
			t.Errorf("Aggregate negative ε: %v", err)
		}
	})
}

// TestInteriorPointInfeasiblePreflight: the satellite routing InteriorPoint
// through the shared feasibility pre-flight — an inner target innerN/2 deep
// in the flaky t ≈ Γ regime is rejected with ErrInfeasible up front instead
// of failing with a late promise violation.
func TestInteriorPointInfeasiblePreflight(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	vals := make([]float64, 2400)
	for i := range vals {
		vals[i] = rng.Float64() // continuous: no radius-zero escape
	}
	// innerN/2 = 400 ≪ the ≈ 2000 floor at the ε = 1, δ = 1e-6 defaults.
	_, err := InteriorPoint(vals, 800, Options{Seed: 1})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("defaults with innerN=800: err = %v, want ErrInfeasible", err)
	}
	// The same innerN at a generous budget passes the pre-flight.
	if _, err := InteriorPoint(vals, 1600, Options{Epsilon: 4, Delta: 0.05, Seed: 11}); errors.Is(err, ErrInfeasible) {
		t.Errorf("workable regime rejected: %v", err)
	}
}

// TestAggregateInfeasiblePreflight: same satellite for Aggregate — the
// evaluations-stage feasibility check fires before the budget-spending
// aggregation.
func TestAggregateInfeasiblePreflight(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	rows := make([]float64, 18000)
	for i := range rows {
		rows[i] = rng.Float64()
	}
	spread := func(rs []float64) Point { // continuous evaluations: no escape
		var s float64
		for _, r := range rs {
			s += r
		}
		return Point{s / float64(len(rs))}
	}
	// k = 18000/(9·5) = 400, t = 0.9·400/2 = 180 ≪ the ≈ 2000 floor.
	_, err := Aggregate(rows, spread, 1, 5, 0.9, Options{Seed: 1})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("defaults: err = %v, want ErrInfeasible", err)
	}
}
