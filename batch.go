package privcluster

import (
	"context"
	"runtime"
	"sync"
)

// Query is one independent query in a batch (see Dataset.FindClustersBatch):
// the 1-cluster query at target T (K ≤ 1), or the K-ball covering query
// (K > 1), at the (ε, δ) cost, β and seed of Opts.
type Query struct {
	T    int
	K    int
	Opts QueryOptions
}

// BatchResult is the outcome of one batch query: the released clusters
// (exactly one for K ≤ 1) or the error the equivalent sequential call would
// have returned — including a *BudgetError refusal when the query's cost no
// longer fit the handle's budget.
type BatchResult struct {
	Clusters []Cluster
	Err      error
}

// FindClustersBatch runs independent queries concurrently against the
// handle's shared cached index, under the handle's single budget — the
// amortization examples/serving performs by hand, packaged: the first
// query to need the (possibly sharded) index builds it once, and every
// other query blocks on that build and then runs purely on cached state.
// The number of in-flight queries is bounded by the handle's Workers
// option (GOMAXPROCS when 0). Note the bound is per query, not per
// goroutine: each in-flight query still runs its own internal worker
// pools, so cold batches (distinct uncached t values) briefly
// oversubscribe cores; warm queries are cheap enough that it does not
// matter. Callers who care should set Workers explicitly.
//
// Results are returned in input order. Each query is validated, charged
// and seeded exactly as the equivalent sequential call, so a batch whose
// queries carry their own seeds releases bit-identical clusters to issuing
// them one at a time. The only scheduling-dependent outcome is budget
// admission order: when the remaining budget cannot cover the whole batch,
// which queries are refused with ErrBudgetExhausted depends on timing —
// callers needing deterministic admission should issue queries
// sequentially. ctx applies to every query; a nil ctx means Background.
func (ds *Dataset) FindClustersBatch(ctx context.Context, queries []Query) []BatchResult {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]BatchResult, len(queries))
	if len(queries) == 0 {
		return out
	}
	workers := ds.opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				q := queries[i]
				if q.K > 1 {
					cs, err := ds.FindClusters(ctx, q.K, q.T, q.Opts)
					out[i] = BatchResult{Clusters: cs, Err: err}
					continue
				}
				c, err := ds.FindCluster(ctx, q.T, q.Opts)
				if err != nil {
					out[i] = BatchResult{Err: err}
					continue
				}
				out[i] = BatchResult{Clusters: []Cluster{c}}
			}
		}()
	}
	for i := range queries {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}
