// Package baselines implements the comparison algorithms of Table 1 and the
// non-private references of Section 3's "known facts":
//
//   - NonprivateInterval1D: the exact smallest interval with t points (d=1);
//   - geometry.DistanceIndex.TwoApprox supplies known fact 3 (the trivial
//     2-approximation) and is re-exported here for discoverability;
//   - ExpMech1Cluster: the exponential-mechanism solution (Table 1 row 2),
//     exact radius up to the grid but poly(|X^d|) running time;
//   - PrivateAggregation: an NRS'07-style aggregator (Table 1 row 1) —
//     per-coordinate private median plus a private radius search — which
//     requires a majority cluster (t ≥ 0.51n) and pays a √d factor in the
//     radius (see DESIGN.md, Substitutions item 3);
//   - TreeHistogram1D: query release for threshold functions via the
//     classic dyadic-tree mechanism (Table 1 row 3; Substitutions item 2),
//     whose cluster-size loss grows polylogarithmically with |X| — the
//     contrast to the paper's 2^{O(log*|X|)}.
package baselines

import (
	"fmt"
	"sort"

	"privcluster/internal/geometry"
	"privcluster/internal/vec"
)

// Interval1D is a closed interval returned by the 1-D solvers.
type Interval1D struct {
	Center float64
	Radius float64
}

// Contains reports whether x lies in the interval.
func (iv Interval1D) Contains(x float64) bool {
	return x >= iv.Center-iv.Radius && x <= iv.Center+iv.Radius
}

// Count returns the number of values inside the interval.
func (iv Interval1D) Count(values []float64) int {
	n := 0
	for _, v := range values {
		if iv.Contains(v) {
			n++
		}
	}
	return n
}

// NonprivateInterval1D returns the exact smallest interval containing at
// least t of the values — the d=1 ground truth r_opt every experiment
// normalizes against.
func NonprivateInterval1D(values []float64, t int) (Interval1D, error) {
	n := len(values)
	if t < 1 || t > n {
		return Interval1D{}, fmt.Errorf("baselines: t=%d out of [1, %d]", t, n)
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	best := Interval1D{Center: (s[0] + s[t-1]) / 2, Radius: (s[t-1] - s[0]) / 2}
	for i := 1; i+t-1 < n; i++ {
		if r := (s[i+t-1] - s[i]) / 2; r < best.Radius {
			best = Interval1D{Center: (s[i] + s[i+t-1]) / 2, Radius: r}
		}
	}
	return best, nil
}

// TwoApproxBall returns the input-centered ball of "known fact 3": radius at
// most 2·r_opt, covering ≥ t points. A convenience wrapper over
// geometry.DistanceIndex for callers that have raw points.
func TwoApproxBall(points []vec.Vector, t int) (geometry.Ball, error) {
	ix, err := geometry.NewDistanceIndex(points)
	if err != nil {
		return geometry.Ball{}, err
	}
	c, r, err := ix.TwoApprox(t)
	if err != nil {
		return geometry.Ball{}, err
	}
	return geometry.Ball{Center: ix.Frame().Row(c), Radius: r}, nil
}
