package baselines

import (
	"fmt"
	"math"
	"math/rand"

	"privcluster/internal/dp"
	"privcluster/internal/geometry"
	"privcluster/internal/noise"
	"privcluster/internal/vec"
)

// ExpMechParams configures the exponential-mechanism 1-cluster baseline.
type ExpMechParams struct {
	T       int
	Epsilon float64
	Beta    float64
	Grid    geometry.Grid
	// MaxCenters aborts when |X|^d exceeds it — the baseline's running time
	// is poly(|X^d|), which is exactly the drawback Table 1 records.
	// Defaults to 1<<22.
	MaxCenters int64
}

// ExpMech1Cluster solves the 1-cluster problem with the McSherry–Talwar
// exponential mechanism (Table 1 row 2): a private binary search over the
// radius grid finds (roughly) the smallest radius at which some grid-center
// ball holds t points, then the exponential mechanism picks a center with
// near-maximal count at that radius. The cluster-size loss is
// O(d·log(|X|)/ε) and the radius is near-optimal, but the center enumeration
// costs |X|^d — the baseline is only runnable for tiny domains.
//
// Budget: ε/2 on the binary search (split across its ~log(M) noisy
// comparisons) and ε/2 on the selection; pure (ε, 0)-DP overall.
func ExpMech1Cluster(rng *rand.Rand, points []vec.Vector, prm ExpMechParams) (geometry.Ball, error) {
	n := len(points)
	if prm.T < 1 || prm.T > n {
		return geometry.Ball{}, fmt.Errorf("baselines: t=%d out of [1, %d]", prm.T, n)
	}
	if prm.Epsilon <= 0 {
		return geometry.Ball{}, fmt.Errorf("baselines: epsilon must be positive")
	}
	if prm.Beta <= 0 || prm.Beta >= 1 {
		return geometry.Ball{}, fmt.Errorf("baselines: beta out of (0,1)")
	}
	if prm.MaxCenters == 0 {
		prm.MaxCenters = 1 << 22
	}
	d := prm.Grid.Dim
	total := float64(1)
	for i := 0; i < d; i++ {
		total *= float64(prm.Grid.Size)
		if total > float64(prm.MaxCenters) {
			return geometry.Ball{}, fmt.Errorf("baselines: |X|^d = %v exceeds the %d-center budget (the poly(|X|^d) cost of Table 1 row 2)", total, prm.MaxCenters)
		}
	}
	centers := enumerateGrid(prm.Grid)

	// Phase 1: noisy binary search over the radius grid for the smallest
	// radius whose best center covers ≥ t − slack points. max-count has
	// sensitivity 1.
	m := prm.Grid.RadiusGridSize()
	levels := int(math.Ceil(math.Log2(float64(m)))) + 1
	epsCmp := prm.Epsilon / 2 / float64(levels)
	slack := (2 / epsCmp) * math.Log(2*float64(levels)/prm.Beta)

	maxCount := func(r float64) int {
		best := 0
		for _, c := range centers {
			if got := geometry.CountInBall(points, c, r); got > best {
				best = got
			}
		}
		return best
	}
	lo, hi := int64(0), m-1
	for lo < hi {
		mid := (lo + hi) / 2
		noisy := float64(maxCount(prm.Grid.RadiusFromIndex(mid))) + noise.Laplace(rng, 1/epsCmp)
		if noisy >= float64(prm.T)-slack {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	r := prm.Grid.RadiusFromIndex(lo)

	// Phase 2: exponential mechanism over centers with quality B_r(c).
	scores := make([]float64, len(centers))
	for i, c := range centers {
		scores[i] = float64(geometry.CountInBall(points, c, r))
	}
	idx, err := dp.ExponentialMechanism(rng, scores, 1, prm.Epsilon/2)
	if err != nil {
		return geometry.Ball{}, err
	}
	return geometry.Ball{Center: centers[idx], Radius: r}, nil
}

// enumerateGrid lists every grid point of X^d.
func enumerateGrid(g geometry.Grid) []vec.Vector {
	d := g.Dim
	step := g.Step()
	size := int(g.Size)
	total := 1
	for i := 0; i < d; i++ {
		total *= size
	}
	out := make([]vec.Vector, 0, total)
	idx := make([]int, d)
	for {
		p := make(vec.Vector, d)
		for i, k := range idx {
			p[i] = float64(k) * step
		}
		out = append(out, p)
		i := 0
		for ; i < d; i++ {
			idx[i]++
			if idx[i] < size {
				break
			}
			idx[i] = 0
		}
		if i == d {
			return out
		}
	}
}
