package baselines

import (
	"cmp"
	"fmt"
	"math"
	"math/rand"
	"slices"

	"privcluster/internal/noise"
)

// TreeHistParams configures the 1-D threshold-query-release baseline.
type TreeHistParams struct {
	T       int
	Epsilon float64
	Beta    float64
	// GridSize is |X|; values in [0,1] are mapped onto ⌈log₂|X|⌉+1 dyadic
	// levels.
	GridSize int64
}

// TreeHistogram1D solves the d = 1 cluster problem through query release
// for threshold functions (Table 1 row 3), implemented with the classic
// dyadic-decomposition ("binary tree") mechanism: each value contributes to
// one node per level, the per-level budget is ε/levels, so every node count
// is released with Lap(levels/ε) noise; afterwards any interval count — and
// hence a smallest interval holding ≈ t points — is answerable from the
// released counts alone (pure post-processing).
//
// The released interval has radius ≤ 4·r_opt (an interval of length L is
// covered by one dyadic node of length ≤ 2L, or by two adjacent nodes of
// that length when it straddles a boundary) and cluster-size loss
// Θ((log|X|)^{1.5}/ε) — polylogarithmic in |X|, versus the paper's
// 2^{O(log*|X|)}. Experiment E5 plots exactly this contrast.
//
// The scan inspects only dyadic nodes containing data; a node the data
// never touches cannot be part of the smallest heavy interval (its noisy
// count would have to beat the release margin on noise alone; see DESIGN.md,
// Substitutions item 2).
func TreeHistogram1D(rng *rand.Rand, values []float64, prm TreeHistParams) (Interval1D, error) {
	n := len(values)
	if prm.T < 1 || prm.T > n {
		return Interval1D{}, fmt.Errorf("baselines: t=%d out of [1, %d]", prm.T, n)
	}
	if prm.Epsilon <= 0 {
		return Interval1D{}, fmt.Errorf("baselines: epsilon must be positive")
	}
	if prm.GridSize < 2 {
		return Interval1D{}, fmt.Errorf("baselines: |X| must be ≥ 2")
	}
	for i, v := range values {
		if v < 0 || v > 1 {
			return Interval1D{}, fmt.Errorf("baselines: value %d = %v outside [0,1]", i, v)
		}
	}
	levels := int(math.Ceil(math.Log2(float64(prm.GridSize)))) + 1
	lam := float64(levels) / prm.Epsilon // per-node Laplace scale

	// Lazily materialize the noisy counts of data-supported nodes, from the
	// finest level (0: |X| leaves) to the root.
	type nodeKey struct {
		level int
		idx   int64
	}
	counts := make(map[nodeKey]int)
	for lv := 0; lv < levels; lv++ {
		cells := int64(1) << uint(levels-1-lv)
		for _, v := range values {
			idx := int64(v * float64(cells))
			if idx >= cells {
				idx = cells - 1
			}
			counts[nodeKey{lv, idx}]++
		}
	}
	// Noise is drawn in sorted node order: drawing while ranging over the
	// map would tie the draws to Go's randomized iteration order and make
	// seeded runs irreproducible.
	nodes := make([]nodeKey, 0, len(counts))
	for nd := range counts {
		nodes = append(nodes, nd)
	}
	slices.SortFunc(nodes, func(a, b nodeKey) int {
		if c := cmp.Compare(a.level, b.level); c != 0 {
			return c
		}
		return cmp.Compare(a.idx, b.idx)
	})
	noisyCounts := make(map[nodeKey]float64, len(counts))
	for _, nd := range nodes {
		noisyCounts[nd] = float64(counts[nd]) + noise.Laplace(rng, lam)
	}

	// Release margin: per-node noise tail with a union bound over the
	// inspected nodes.
	margin := lam * math.Log(2*float64(len(counts)+1)/prm.Beta)

	// Scan bottom-up and return the smallest structure whose noisy count
	// clears t − margin: first single nodes at this level, then adjacent
	// non-sibling pairs (siblings merge into their parent one level up).
	for lv := 0; lv < levels; lv++ {
		cells := int64(1) << uint(levels-1-lv)
		width := 1 / float64(cells)

		// Both scans walk the sorted node list: the pair scan returns the
		// first qualifying pair, so walking the map directly would make
		// the released interval depend on Go's randomized iteration order.
		bestIdx, bestVal := int64(-1), math.Inf(-1)
		for _, nd := range nodes {
			if v := noisyCounts[nd]; nd.level == lv && v > bestVal {
				bestVal, bestIdx = v, nd.idx
			}
		}
		if bestIdx >= 0 && bestVal >= float64(prm.T)-margin {
			return Interval1D{Center: (float64(bestIdx) + 0.5) * width, Radius: width / 2}, nil
		}
		for _, nd := range nodes {
			if nd.level != lv || nd.idx%2 == 0 {
				continue
			}
			if w, ok := noisyCounts[nodeKey{lv, nd.idx + 1}]; ok {
				// Two nodes are summed, so the noise doubles.
				if noisyCounts[nd]+w >= float64(prm.T)-2*margin {
					return Interval1D{Center: (float64(nd.idx) + 1) * width, Radius: width}, nil
				}
			}
		}
	}
	return Interval1D{}, fmt.Errorf("baselines: no interval reached t−%.1f (t=%d too small for the noise level?)", margin, prm.T)
}

// TreeHistLossBound returns the Θ((log|X|)^{1.5}/ε) cluster-size loss the
// mechanism's release threshold implies — the quantity E5 plots against the
// paper's 2^{O(log*|X|)}. An accepted node's true count is within one
// release margin plus one noise tail of t, hence the factor 2.
func TreeHistLossBound(gridSize int64, epsilon, beta float64, n int) float64 {
	levels := math.Ceil(math.Log2(float64(gridSize))) + 1
	return 2 * levels / epsilon * math.Log(2*levels*float64(n)/beta)
}
