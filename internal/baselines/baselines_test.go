package baselines

import (
	"math"
	"math/rand"
	"testing"

	"privcluster/internal/geometry"
	"privcluster/internal/vec"
	"privcluster/internal/workload"
)

func grid(t *testing.T, size int64, dim int) geometry.Grid {
	t.Helper()
	g, err := geometry.NewGrid(size, dim)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNonprivateInterval1DExact(t *testing.T) {
	vals := []float64{0.1, 0.12, 0.13, 0.5, 0.9}
	iv, err := NonprivateInterval1D(vals, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(iv.Radius-0.015) > 1e-12 {
		t.Errorf("radius = %v, want 0.015", iv.Radius)
	}
	if iv.Count(vals) < 3 {
		t.Errorf("interval covers %d < 3", iv.Count(vals))
	}
	if _, err := NonprivateInterval1D(vals, 0); err == nil {
		t.Error("t=0 accepted")
	}
	if _, err := NonprivateInterval1D(vals, 6); err == nil {
		t.Error("t>n accepted")
	}
}

func TestIntervalContains(t *testing.T) {
	iv := Interval1D{Center: 0.5, Radius: 0.1}
	if !iv.Contains(0.4) || !iv.Contains(0.6) || iv.Contains(0.39) {
		t.Error("Contains boundary wrong")
	}
}

func TestTwoApproxBall(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := grid(t, 4096, 2)
	inst, err := workload.PlantedBall{N: 300, ClusterSize: 150, Radius: 0.03}.Generate(rng, g)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TwoApproxBall(inst.Points, 120)
	if err != nil {
		t.Fatal(err)
	}
	if b.Count(inst.Points) < 120 {
		t.Errorf("2-approx ball covers %d < 120", b.Count(inst.Points))
	}
	if b.Radius > 4*inst.TrueRadius {
		t.Errorf("2-approx radius %v ≫ planted %v", b.Radius, inst.TrueRadius)
	}
	if _, err := TwoApproxBall(nil, 1); err == nil {
		t.Error("empty points accepted")
	}
}

func TestExpMech1ClusterSmallDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := grid(t, 32, 2)
	inst, err := workload.PlantedBall{N: 400, ClusterSize: 200, Radius: 0.05}.Generate(rng, g)
	if err != nil {
		t.Fatal(err)
	}
	prm := ExpMechParams{T: 150, Epsilon: 2, Beta: 0.1, Grid: g}
	good := 0
	const trials = 5
	for i := 0; i < trials; i++ {
		ball, err := ExpMech1Cluster(rng, inst.Points, prm)
		if err != nil {
			t.Fatal(err)
		}
		if ball.Count(inst.Points) >= prm.T/2 && ball.Radius < 0.5 {
			good++
		} else {
			t.Logf("trial %d: r=%v count=%d", i, ball.Radius, ball.Count(inst.Points))
		}
	}
	if good < trials-1 {
		t.Errorf("exp-mech baseline succeeded %d/%d", good, trials)
	}
}

func TestExpMech1ClusterRefusesBigDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := grid(t, 1<<16, 3) // (2^16)^3 centers: way past any budget
	pts := []vec.Vector{g.Quantize(vec.Of(0.5, 0.5, 0.5))}
	_, err := ExpMech1Cluster(rng, pts, ExpMechParams{T: 1, Epsilon: 1, Beta: 0.1, Grid: g})
	if err == nil {
		t.Error("poly(|X|^d) blow-up not detected")
	}
}

func TestExpMechValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := grid(t, 32, 1)
	pts := []vec.Vector{g.Quantize(vec.Of(0.5))}
	if _, err := ExpMech1Cluster(rng, pts, ExpMechParams{T: 0, Epsilon: 1, Beta: 0.1, Grid: g}); err == nil {
		t.Error("t=0 accepted")
	}
	if _, err := ExpMech1Cluster(rng, pts, ExpMechParams{T: 1, Epsilon: 0, Beta: 0.1, Grid: g}); err == nil {
		t.Error("epsilon=0 accepted")
	}
	if _, err := ExpMech1Cluster(rng, pts, ExpMechParams{T: 1, Epsilon: 1, Beta: 1, Grid: g}); err == nil {
		t.Error("beta=1 accepted")
	}
}

func TestPrivateAggregationMajorityCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := grid(t, 256, 2)
	inst, err := workload.PlantedBall{N: 800, ClusterSize: 700, Radius: 0.04}.Generate(rng, g)
	if err != nil {
		t.Fatal(err)
	}
	prm := PrivAggParams{T: 600, Epsilon: 4, Beta: 0.1, Grid: g}
	good := 0
	const trials = 5
	for i := 0; i < trials; i++ {
		ball, err := PrivateAggregation(rng, inst.Points, prm)
		if err != nil {
			t.Fatal(err)
		}
		if ball.Count(inst.Points) >= prm.T/2 {
			good++
		} else {
			t.Logf("trial %d: center=%v r=%v count=%d", i, ball.Center, ball.Radius, ball.Count(inst.Points))
		}
	}
	if good < trials-1 {
		t.Errorf("private aggregation succeeded %d/%d", good, trials)
	}
}

func TestPrivateAggregationRejectsMinority(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := grid(t, 256, 2)
	pts := make([]vec.Vector, 100)
	for i := range pts {
		pts[i] = g.Quantize(vec.Of(rng.Float64(), rng.Float64()))
	}
	_, err := PrivateAggregation(rng, pts, PrivAggParams{T: 30, Epsilon: 1, Beta: 0.1, Grid: g})
	if err == nil {
		t.Error("minority cluster accepted — Table 1 row 1's t ≥ 0.51n restriction lost")
	}
}

func TestTreeHistogram1DFindsCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// 600 values packed near 0.37, 200 uniform.
	vals := make([]float64, 800)
	for i := range vals {
		if i < 600 {
			vals[i] = 0.37 + rng.Float64()*0.004
		} else {
			vals[i] = rng.Float64()
		}
	}
	prm := TreeHistParams{T: 500, Epsilon: 2, Beta: 0.1, GridSize: 1 << 16}
	good := 0
	const trials = 5
	for i := 0; i < trials; i++ {
		iv, err := TreeHistogram1D(rng, vals, prm)
		if err != nil {
			t.Fatal(err)
		}
		if iv.Count(vals) >= 400 && iv.Radius < 0.05 {
			good++
		} else {
			t.Logf("trial %d: center=%v r=%v count=%d", i, iv.Center, iv.Radius, iv.Count(vals))
		}
	}
	if good < trials-1 {
		t.Errorf("tree mechanism succeeded %d/%d", good, trials)
	}
}

func TestTreeHistogram1DValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	if _, err := TreeHistogram1D(rng, []float64{0.5}, TreeHistParams{T: 0, Epsilon: 1, Beta: 0.1, GridSize: 16}); err == nil {
		t.Error("t=0 accepted")
	}
	if _, err := TreeHistogram1D(rng, []float64{0.5}, TreeHistParams{T: 1, Epsilon: 0, Beta: 0.1, GridSize: 16}); err == nil {
		t.Error("epsilon=0 accepted")
	}
	if _, err := TreeHistogram1D(rng, []float64{0.5}, TreeHistParams{T: 1, Epsilon: 1, Beta: 0.1, GridSize: 1}); err == nil {
		t.Error("|X|=1 accepted")
	}
	if _, err := TreeHistogram1D(rng, []float64{1.5}, TreeHistParams{T: 1, Epsilon: 1, Beta: 0.1, GridSize: 16}); err == nil {
		t.Error("out-of-range value accepted")
	}
}

func TestTreeHistLossGrowsWithDomain(t *testing.T) {
	small := TreeHistLossBound(1<<8, 1, 0.1, 1000)
	big := TreeHistLossBound(1<<48, 1, 0.1, 1000)
	if big <= small {
		t.Errorf("tree loss bound not growing with |X|: %v vs %v", small, big)
	}
	// The growth should be super-linear in log|X| ((log|X|)^1.5 shape).
	if big/small < math.Pow(48.0/8.0, 1.0) {
		t.Errorf("tree loss grew too slowly: %v → %v", small, big)
	}
}
