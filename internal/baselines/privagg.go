package baselines

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"privcluster/internal/dp"
	"privcluster/internal/geometry"
	"privcluster/internal/noise"
	"privcluster/internal/vec"
)

// PrivAggParams configures the private-aggregation baseline.
type PrivAggParams struct {
	T       int
	Epsilon float64
	Beta    float64
	Grid    geometry.Grid
}

// PrivateAggregation is the Table 1 row 1 baseline in the spirit of Nissim,
// Raskhodnikova and Smith '07 (see DESIGN.md, Substitutions item 3): the
// center is the coordinate-wise private median (exponential mechanism over
// grid values with the rank quality), and the radius is a private binary
// search for the smallest ball around that center holding ≈ t points.
//
// The construction reproduces all three documented downsides of the row:
// it requires a *majority* cluster (t ≥ 0.51·n — the coordinate-wise median
// is only inside the cluster's bounding box when the cluster is a majority,
// and the function returns an error otherwise), its radius error compounds
// over coordinates into an Θ(√d) factor, and each coordinate pays a
// log|X|/ε rank error.
//
// Budget: ε/2 split over the d median selections, ε/2 over the radius
// search; pure (ε, 0)-DP.
func PrivateAggregation(rng *rand.Rand, points []vec.Vector, prm PrivAggParams) (geometry.Ball, error) {
	n := len(points)
	if prm.T < 1 || prm.T > n {
		return geometry.Ball{}, fmt.Errorf("baselines: t=%d out of [1, %d]", prm.T, n)
	}
	if float64(prm.T) < 0.51*float64(n) {
		return geometry.Ball{}, fmt.Errorf("baselines: private aggregation requires a majority cluster: t=%d < 0.51·n=%v", prm.T, 0.51*float64(n))
	}
	if prm.Epsilon <= 0 || prm.Beta <= 0 || prm.Beta >= 1 {
		return geometry.Ball{}, fmt.Errorf("baselines: invalid epsilon/beta")
	}
	d := prm.Grid.Dim
	epsMedian := prm.Epsilon / 2 / float64(d)

	center := make(vec.Vector, d)
	coord := make([]float64, n)
	for axis := 0; axis < d; axis++ {
		for i, p := range points {
			coord[i] = p[axis]
		}
		sort.Float64s(coord)
		v, err := privateMedian(rng, coord, prm.Grid, epsMedian)
		if err != nil {
			return geometry.Ball{}, err
		}
		center[axis] = v
	}

	// Private radius search: smallest grid radius whose ball around center
	// holds ≥ t − slack points.
	m := prm.Grid.RadiusGridSize()
	levels := int(math.Ceil(math.Log2(float64(m)))) + 1
	epsCmp := prm.Epsilon / 2 / float64(levels)
	slack := (2 / epsCmp) * math.Log(2*float64(levels)/prm.Beta)
	lo, hi := int64(0), m-1
	for lo < hi {
		mid := (lo + hi) / 2
		noisy := float64(geometry.CountInBall(points, center, prm.Grid.RadiusFromIndex(mid))) +
			noise.Laplace(rng, 1/epsCmp)
		if noisy >= float64(prm.T)-slack {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return geometry.Ball{Center: center, Radius: prm.Grid.RadiusFromIndex(lo)}, nil
}

// privateMedian selects a grid value via the exponential mechanism with the
// (sensitivity-1) rank quality q(v) = −|#{x < v} − #{x > v}|.
func privateMedian(rng *rand.Rand, sorted []float64, g geometry.Grid, eps float64) (float64, error) {
	size := int(g.Size)
	step := g.Step()
	n := len(sorted)
	scores := make([]float64, size)
	for k := 0; k < size; k++ {
		v := float64(k) * step
		below := sort.SearchFloat64s(sorted, v)
		above := n - sort.Search(n, func(i int) bool { return sorted[i] > v })
		scores[k] = -math.Abs(float64(below - above))
	}
	idx, err := dp.ExponentialMechanism(rng, scores, 1, eps)
	if err != nil {
		return 0, err
	}
	return float64(idx) * step, nil
}
