package workload

import (
	"math/rand"
	"testing"

	"privcluster/internal/geometry"
	"privcluster/internal/vec"
)

func grid(t *testing.T, size int64, dim int) geometry.Grid {
	t.Helper()
	g, err := geometry.NewGrid(size, dim)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPlantedBallShapeAndGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := grid(t, 4096, 3)
	inst, err := PlantedBall{N: 500, ClusterSize: 200, Radius: 0.05}.Generate(rng, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Points) != 500 {
		t.Fatalf("n = %d", len(inst.Points))
	}
	for i, p := range inst.Points {
		if p.Dim() != 3 {
			t.Fatalf("point %d dim %d", i, p.Dim())
		}
		if !g.OnGrid(p) {
			t.Fatalf("point %d off grid: %v", i, p)
		}
	}
	// The planted ball (with grid-snap slack) must hold ≥ ClusterSize points.
	slack := 2 * g.Step()
	got := geometry.CountInBall(inst.Points, inst.TrueCenter, inst.TrueRadius+slack)
	if got < 200 {
		t.Errorf("planted ball holds %d < 200 points", got)
	}
}

func TestPlantedBallValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := grid(t, 64, 2)
	if _, err := (PlantedBall{N: 10, ClusterSize: 20, Radius: 0.1}).Generate(rng, g); err == nil {
		t.Error("cluster > n accepted")
	}
	if _, err := (PlantedBall{N: 10, ClusterSize: 5, Radius: 0.9}).Generate(rng, g); err == nil {
		t.Error("radius > 0.5 accepted")
	}
	if _, err := (PlantedBall{N: 10, ClusterSize: 5, Radius: 0.1, Center: vec.Of(0.5)}).Generate(rng, g); err == nil {
		t.Error("wrong-dim center accepted")
	}
}

func TestPlantedBallFixedCenter(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := grid(t, 4096, 2)
	c := vec.Of(0.3, 0.7)
	inst, err := PlantedBall{N: 100, ClusterSize: 100, Radius: 0.02, Center: c}.Generate(rng, g)
	if err != nil {
		t.Fatal(err)
	}
	if !inst.TrueCenter.Equal(c) {
		t.Errorf("TrueCenter = %v", inst.TrueCenter)
	}
	for _, p := range inst.Points {
		if p.Dist(c) > 0.02+2*g.Step() {
			t.Fatalf("cluster point %v outside planted ball", p)
		}
	}
}

func TestMultiClusterStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := grid(t, 4096, 2)
	mi, err := MultiCluster{N: 600, K: 3, Radius: 0.03, Spread: 0.3, NoiseFr: 0.1}.Generate(rng, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(mi.Points) != 600 || len(mi.Centers) != 3 {
		t.Fatalf("points %d centers %d", len(mi.Points), len(mi.Centers))
	}
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			if d := mi.Centers[i].Dist(mi.Centers[j]); d < 0.3 {
				t.Errorf("centers %d,%d only %v apart", i, j, d)
			}
		}
	}
	// Each cluster region should hold roughly (600·0.9)/3 = 180 points.
	for i, c := range mi.Centers {
		if got := geometry.CountInBall(mi.Points, c, 0.03+2*g.Step()); got < 150 {
			t.Errorf("cluster %d holds only %d points", i, got)
		}
	}
}

func TestMultiClusterValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := grid(t, 64, 2)
	if _, err := (MultiCluster{N: 2, K: 5}).Generate(rng, g); err == nil {
		t.Error("N < K accepted")
	}
	if _, err := (MultiCluster{N: 10, K: 2, NoiseFr: 1.5}).Generate(rng, g); err == nil {
		t.Error("noise fraction ≥ 1 accepted")
	}
	if _, err := (MultiCluster{N: 100, K: 30, Radius: 0.01, Spread: 5}).Generate(rng, g); err == nil {
		t.Error("impossible spread accepted")
	}
}

func TestOutliersScenario(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := grid(t, 4096, 2)
	inst, err := Outliers{N: 1000, OutlierFr: 0.1, Radius: 0.04}.Generate(rng, g)
	if err != nil {
		t.Fatal(err)
	}
	got := geometry.CountInBall(inst.Points, inst.TrueCenter, inst.TrueRadius+2*g.Step())
	if got < 900 {
		t.Errorf("inlier ball holds %d < 900", got)
	}
	if _, err := (Outliers{N: 10, OutlierFr: 1}).Generate(rng, g); err == nil {
		t.Error("outlier fraction 1 accepted")
	}
}

func TestGaussianBlob(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := grid(t, 4096, 2)
	pts := GaussianBlob(rng, g, 200, vec.Of(0.5, 0.5), 0.01)
	if len(pts) != 200 {
		t.Fatalf("n = %d", len(pts))
	}
	inside := geometry.CountInBall(pts, vec.Of(0.5, 0.5), 0.05)
	if inside < 190 {
		t.Errorf("only %d/200 within 5σ", inside)
	}
}

func TestAdversarialSensitivityShape(t *testing.T) {
	g := grid(t, 1024, 2)
	pts, err := AdversarialSensitivity(g, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 11 {
		t.Fatalf("n = %d, want t+1 = 11", len(pts))
	}
	zeros, mids, ones := 0, 0, 0
	for _, p := range pts {
		switch p[0] {
		case 0:
			zeros++
		case 1:
			ones++
		default:
			mids++
		}
	}
	if zeros != 5 || ones != 5 || mids != 1 {
		t.Errorf("composition %d/%d/%d", zeros, mids, ones)
	}
	if _, err := AdversarialSensitivity(g, 1); err == nil {
		t.Error("t=1 accepted")
	}
}

func TestSortedValues(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	vals, err := SortedValues(rng, 1000, 100, 0.5, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1000 {
		t.Fatalf("m = %d", len(vals))
	}
	middle := 0
	for _, v := range vals {
		if v >= 0.45 && v <= 0.55 {
			middle++
		}
	}
	if middle < 800 {
		t.Errorf("middle mass %d < 800", middle)
	}
	if _, err := SortedValues(rng, 10, 5, 0.5, 0.1); err == nil {
		t.Error("m ≤ 2·pad accepted")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	g := grid(t, 1024, 2)
	gen := func() Instance {
		rng := rand.New(rand.NewSource(99))
		inst, _ := PlantedBall{N: 50, ClusterSize: 30, Radius: 0.05}.Generate(rng, g)
		return inst
	}
	a, b := gen(), gen()
	for i := range a.Points {
		if !a.Points[i].Equal(b.Points[i]) {
			t.Fatal("same seed produced different datasets")
		}
	}
}
