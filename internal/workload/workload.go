// Package workload generates the synthetic datasets every experiment in
// EXPERIMENTS.md runs on: planted-ball instances (the 1-cluster problem's
// canonical input), multi-cluster mixtures (k-cover and the map-search
// motivation of §1.1), outlier scenarios (§1.1's outlier-removal
// motivation), the adversarial sensitivity instance of §3.1, and sorted
// 1-D instances for the interior-point reduction of §5.
//
// All generators are deterministic given the *rand.Rand and snap their
// output onto the provided grid so datasets are valid 1-cluster inputs.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"privcluster/internal/geometry"
	"privcluster/internal/vec"
)

// PlantedBall describes a dataset with one planted cluster: ClusterSize
// points uniform in a ball of radius Radius around a (random or fixed)
// center, and N−ClusterSize background points uniform in the unit cube.
type PlantedBall struct {
	N           int
	ClusterSize int
	Radius      float64
	// Center is the planted center; nil draws one uniformly from the cube's
	// middle region (so the planted ball fits inside the cube).
	Center vec.Vector
}

// Instance is a generated dataset along with its ground truth.
type Instance struct {
	Points []vec.Vector
	// TrueCenter/TrueRadius describe the planted ball (ground truth for
	// radius-ratio measurements; r_opt for t ≤ ClusterSize is ≤ TrueRadius).
	TrueCenter vec.Vector
	TrueRadius float64
}

// Generate draws the instance on the given grid.
func (p PlantedBall) Generate(rng *rand.Rand, grid geometry.Grid) (Instance, error) {
	if p.ClusterSize > p.N || p.ClusterSize < 0 {
		return Instance{}, fmt.Errorf("workload: cluster size %d out of [0, %d]", p.ClusterSize, p.N)
	}
	if p.Radius < 0 || p.Radius > 0.5 {
		return Instance{}, fmt.Errorf("workload: planted radius %v out of [0, 0.5]", p.Radius)
	}
	d := grid.Dim
	center := p.Center
	if center == nil {
		center = make(vec.Vector, d)
		for j := range center {
			center[j] = 0.25 + 0.5*rng.Float64()
		}
	}
	if center.Dim() != d {
		return Instance{}, fmt.Errorf("workload: center dimension %d, want %d", center.Dim(), d)
	}
	pts := make([]vec.Vector, 0, p.N)
	for i := 0; i < p.ClusterSize; i++ {
		pts = append(pts, grid.Quantize(uniformInBall(rng, center, p.Radius)))
	}
	for i := p.ClusterSize; i < p.N; i++ {
		pts = append(pts, grid.Quantize(uniformInCube(rng, d)))
	}
	shuffle(rng, pts)
	return Instance{Points: pts, TrueCenter: center, TrueRadius: p.Radius}, nil
}

// MultiCluster draws k planted balls of equal size (N/k points each, any
// remainder going to uniform background noise).
type MultiCluster struct {
	N       int
	K       int
	Radius  float64
	Spread  float64 // minimum pairwise center distance; 0 = best effort
	NoiseFr float64 // fraction of N that is uniform background
}

// MultiInstance is a generated multi-cluster dataset with its ground truth.
type MultiInstance struct {
	Points  []vec.Vector
	Centers []vec.Vector
	Radius  float64
}

// Generate draws the multi-cluster instance.
func (m MultiCluster) Generate(rng *rand.Rand, grid geometry.Grid) (MultiInstance, error) {
	if m.K < 1 || m.N < m.K {
		return MultiInstance{}, fmt.Errorf("workload: invalid multi-cluster N=%d K=%d", m.N, m.K)
	}
	if m.NoiseFr < 0 || m.NoiseFr >= 1 {
		return MultiInstance{}, fmt.Errorf("workload: noise fraction %v out of [0,1)", m.NoiseFr)
	}
	d := grid.Dim
	centers := make([]vec.Vector, 0, m.K)
	for attempt := 0; len(centers) < m.K; attempt++ {
		if attempt > 1000*m.K {
			return MultiInstance{}, fmt.Errorf("workload: could not place %d centers with spread %v", m.K, m.Spread)
		}
		c := make(vec.Vector, d)
		for j := range c {
			c[j] = 0.15 + 0.7*rng.Float64()
		}
		ok := true
		for _, prev := range centers {
			if c.Dist(prev) < m.Spread {
				ok = false
				break
			}
		}
		if ok {
			centers = append(centers, c)
		}
	}
	noise := int(float64(m.N) * m.NoiseFr)
	perCluster := (m.N - noise) / m.K
	pts := make([]vec.Vector, 0, m.N)
	for _, c := range centers {
		for i := 0; i < perCluster; i++ {
			pts = append(pts, grid.Quantize(uniformInBall(rng, c, m.Radius)))
		}
	}
	for len(pts) < m.N {
		pts = append(pts, grid.Quantize(uniformInCube(rng, d)))
	}
	shuffle(rng, pts)
	return MultiInstance{Points: pts, Centers: centers, Radius: m.Radius}, nil
}

// Outliers draws the §1.1 outlier scenario: (1−OutlierFr)·N points in a
// tight ball, the rest scattered uniformly.
type Outliers struct {
	N         int
	OutlierFr float64
	Radius    float64
}

// Generate draws the outlier instance.
func (o Outliers) Generate(rng *rand.Rand, grid geometry.Grid) (Instance, error) {
	if o.OutlierFr < 0 || o.OutlierFr >= 1 {
		return Instance{}, fmt.Errorf("workload: outlier fraction %v out of [0,1)", o.OutlierFr)
	}
	inliers := int(float64(o.N) * (1 - o.OutlierFr))
	return PlantedBall{N: o.N, ClusterSize: inliers, Radius: o.Radius}.Generate(rng, grid)
}

// GaussianBlob draws N points from an isotropic Gaussian with the given
// standard deviation, clamped to the cube (used by the sample-and-aggregate
// experiments where f's sampling distribution matters).
func GaussianBlob(rng *rand.Rand, grid geometry.Grid, n int, center vec.Vector, sigma float64) []vec.Vector {
	pts := make([]vec.Vector, n)
	for i := range pts {
		p := make(vec.Vector, grid.Dim)
		for j := range p {
			p[j] = center[j] + rng.NormFloat64()*sigma
		}
		pts[i] = grid.Quantize(p)
	}
	return pts
}

// AdversarialSensitivity returns the §3.1 instance demonstrating that the
// uncapped max-ball-count has sensitivity Ω(t): t/2 copies of the origin,
// t/2 copies of 2·e₁, and a single point at e₁ (scaled into the unit cube).
// The scale maps the construction's coordinates 0, 1, 2 to 0, 0.5, 1.
func AdversarialSensitivity(grid geometry.Grid, t int) ([]vec.Vector, error) {
	if grid.Dim < 1 || t < 2 {
		return nil, fmt.Errorf("workload: adversarial instance needs dim ≥ 1 and t ≥ 2")
	}
	d := grid.Dim
	mk := func(x float64) vec.Vector {
		v := make(vec.Vector, d)
		v[0] = x
		return grid.Quantize(v)
	}
	var pts []vec.Vector
	for i := 0; i < t/2; i++ {
		pts = append(pts, mk(0))
	}
	for i := 0; i < t/2; i++ {
		pts = append(pts, mk(1))
	}
	pts = append(pts, mk(0.5))
	return pts, nil
}

// SortedValues draws m sorted 1-D values for the interior-point reduction:
// a tight middle mass with Spread, padded by Pad extreme values on each
// side.
func SortedValues(rng *rand.Rand, m, pad int, center, spread float64) ([]float64, error) {
	if m <= 2*pad {
		return nil, fmt.Errorf("workload: m=%d too small for pad=%d", m, pad)
	}
	vals := make([]float64, 0, m)
	for i := 0; i < pad; i++ {
		vals = append(vals, math.Max(0, center-spread*10-rng.Float64()*0.1))
	}
	for i := 0; i < m-2*pad; i++ {
		vals = append(vals, clamp01(center+(rng.Float64()*2-1)*spread))
	}
	for i := 0; i < pad; i++ {
		vals = append(vals, math.Min(1, center+spread*10+rng.Float64()*0.1))
	}
	return vals, nil
}

func uniformInBall(rng *rand.Rand, center vec.Vector, radius float64) vec.Vector {
	d := center.Dim()
	// Rejection sampling from the bounding cube; fine for the small d used
	// in experiments (acceptance drops with d, so fall back to a scaled
	// Gaussian direction for d > 12).
	if d <= 12 {
		for {
			p := make(vec.Vector, d)
			var norm2 float64
			for j := range p {
				x := (rng.Float64()*2 - 1) * radius
				p[j] = x
				norm2 += x * x
			}
			if norm2 <= radius*radius {
				for j := range p {
					p[j] = clamp01(center[j] + p[j])
				}
				return p
			}
		}
	}
	dir := make(vec.Vector, d)
	var norm float64
	for j := range dir {
		dir[j] = rng.NormFloat64()
		norm += dir[j] * dir[j]
	}
	norm = math.Sqrt(norm)
	u := math.Pow(rng.Float64(), 1/float64(d)) * radius
	out := make(vec.Vector, d)
	for j := range out {
		out[j] = clamp01(center[j] + dir[j]/norm*u)
	}
	return out
}

func uniformInCube(rng *rand.Rand, d int) vec.Vector {
	p := make(vec.Vector, d)
	for j := range p {
		p[j] = rng.Float64()
	}
	return p
}

func clamp01(x float64) float64 { return math.Max(0, math.Min(1, x)) }

func shuffle(rng *rand.Rand, pts []vec.Vector) {
	rng.Shuffle(len(pts), func(i, j int) { pts[i], pts[j] = pts[j], pts[i] })
}
