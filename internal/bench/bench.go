// Package bench provides the small experiment-harness substrate shared by
// cmd/experiments and the root benchmark suite: aligned-text tables,
// number formatting, timing, and the measurement helpers (effective radius,
// coverage, radius ratios) every experiment in EXPERIMENTS.md reports.
package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"privcluster/internal/geometry"
	"privcluster/internal/vec"
	"privcluster/internal/workload"
)

// Table accumulates rows and renders them as an aligned text table with a
// title and optional note — the format EXPERIMENTS.md embeds verbatim.
type Table struct {
	Title   string
	Note    string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with F for floats, plain
// Sprint otherwise. It panics on arity mismatch (a harness bug).
func (t *Table) AddRow(cells ...any) {
	if len(cells) != len(t.Headers) {
		panic(fmt.Sprintf("bench: row arity %d, table has %d columns", len(cells), len(t.Headers)))
	}
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = F(v)
		case time.Duration:
			row[i] = v.Round(time.Millisecond).String()
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render returns the aligned text form.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "| %-*s ", widths[i], c)
		}
		b.WriteString("|\n")
	}
	line(t.Headers)
	for i, w := range widths {
		b.WriteString("|")
		b.WriteString(strings.Repeat("-", w+2))
		if i == len(widths)-1 {
			b.WriteString("|\n")
		}
	}
	for _, r := range t.Rows {
		line(r)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	return b.String()
}

// F formats a float compactly: integers without decimals, small values with
// three significant digits.
func F(x float64) string {
	a := x
	if a < 0 {
		a = -a
	}
	if a >= 1e6 || (a < 1e-3 && a > 0) {
		return fmt.Sprintf("%.2e", x)
	}
	if x == float64(int64(x)) {
		return fmt.Sprintf("%d", int64(x))
	}
	if a >= 100 {
		return fmt.Sprintf("%.1f", x)
	}
	return fmt.Sprintf("%.3f", x)
}

// Time measures one execution of f.
func Time(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// EffectiveRadius returns the smallest radius around center that covers at
// least want of the points — the honest post-hoc measure of how tight a
// released ball really is (the released radius is a worst-case formula).
func EffectiveRadius(points []vec.Vector, center vec.Vector, want int) float64 {
	if want < 1 || len(points) == 0 {
		return 0
	}
	if want > len(points) {
		want = len(points)
	}
	ds := make([]float64, len(points))
	for i, p := range points {
		ds[i] = p.Dist(center)
	}
	sort.Float64s(ds)
	return ds[want-1]
}

// Coverage returns the fraction of points inside any of the balls.
func Coverage(points []vec.Vector, balls []geometry.Ball) float64 {
	if len(points) == 0 {
		return 0
	}
	covered := 0
	for _, p := range points {
		for _, b := range balls {
			if b.Contains(p) {
				covered++
				break
			}
		}
	}
	return float64(covered) / float64(len(points))
}

// Median returns the median of xs (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}

// IndexWorkload is the canonical dataset the BallIndex benchmarks (root
// bench_test.go) run both backends on: a planted ball holding 60% of the
// points at radius 0.02 with uniform background, t = n/2 — the same shape
// the stage micro-benchmarks use, reproducible from the seed alone.
func IndexWorkload(seed int64, n, d int, grid geometry.Grid) ([]vec.Vector, int, error) {
	rng := rand.New(rand.NewSource(seed))
	inst, err := workload.PlantedBall{N: n, ClusterSize: 3 * n / 5, Radius: 0.02}.Generate(rng, grid)
	if err != nil {
		return nil, 0, err
	}
	return inst.Points, n / 2, nil
}

// Mean returns the mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
