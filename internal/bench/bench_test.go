package bench

import (
	"strings"
	"testing"
	"time"

	"privcluster/internal/geometry"
	"privcluster/internal/vec"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "a", "bb")
	tb.AddRow(1, 2.5)
	tb.AddRow("x", time.Second)
	tb.Note = "hello"
	out := tb.Render()
	for _, want := range []string{"== demo ==", "| a ", "| bb", "2.500", "1s", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableArityPanics(t *testing.T) {
	tb := NewTable("demo", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch did not panic")
		}
	}()
	tb.AddRow(1)
}

func TestF(t *testing.T) {
	cases := map[float64]string{
		3:       "3",
		2.5:     "2.500",
		123.456: "123.5",
		1e7:     "1.00e+07",
		0.0001:  "1.00e-04",
	}
	for in, want := range cases {
		if got := F(in); got != want {
			t.Errorf("F(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestTime(t *testing.T) {
	d := Time(func() { time.Sleep(5 * time.Millisecond) })
	if d < 4*time.Millisecond {
		t.Errorf("Time = %v", d)
	}
}

func TestEffectiveRadius(t *testing.T) {
	pts := []vec.Vector{vec.Of(0), vec.Of(1), vec.Of(2), vec.Of(10)}
	c := vec.Of(0)
	if got := EffectiveRadius(pts, c, 3); got != 2 {
		t.Errorf("EffectiveRadius(3) = %v, want 2", got)
	}
	if got := EffectiveRadius(pts, c, 100); got != 10 {
		t.Errorf("EffectiveRadius(clamped) = %v, want 10", got)
	}
	if got := EffectiveRadius(pts, c, 0); got != 0 {
		t.Errorf("EffectiveRadius(0) = %v", got)
	}
	if got := EffectiveRadius(nil, c, 1); got != 0 {
		t.Errorf("EffectiveRadius(empty) = %v", got)
	}
}

func TestIndexWorkload(t *testing.T) {
	grid, err := geometry.NewGrid(1024, 2)
	if err != nil {
		t.Fatal(err)
	}
	pts, tt, err := IndexWorkload(1, 200, 2, grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 200 || tt != 100 {
		t.Fatalf("IndexWorkload = %d points, t=%d", len(pts), tt)
	}
	again, _, err := IndexWorkload(1, 200, 2, grid)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if !pts[i].Equal(again[i]) {
			t.Fatal("IndexWorkload not reproducible from its seed")
		}
	}
}

func TestCoverage(t *testing.T) {
	pts := []vec.Vector{vec.Of(0, 0), vec.Of(1, 1), vec.Of(5, 5)}
	balls := []geometry.Ball{{Center: vec.Of(0, 0), Radius: 1.5}}
	if got := Coverage(pts, balls); got < 0.66 || got > 0.67 {
		t.Errorf("Coverage = %v, want 2/3", got)
	}
	if Coverage(nil, balls) != 0 {
		t.Error("Coverage(empty) != 0")
	}
}

func TestMedianMean(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("Median odd = %v", got)
	}
	if got := Median([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Median even = %v", got)
	}
	if Median(nil) != 0 {
		t.Error("Median(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
}
