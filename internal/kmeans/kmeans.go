// Package kmeans builds the application the paper motivates in §1.1 and §6:
// differentially private k-means clustering, with the private 1-cluster
// algorithm as the initialization engine.
//
// The construction:
//
//  1. Seeding — Observation 3.5's k-ball covering: iterate the 1-cluster
//     algorithm k times (budget share ε_seed), taking each released ball's
//     center as an initial k-means center. Unlike random or noisy-grid
//     seeding, this finds minority modes.
//  2. Lloyd refinement — for a fixed number of rounds, assign points to the
//     nearest center (a per-point computation that needs no noise: the
//     assignment is never released) and move each center to the NoisyAVG
//     (Algorithm 5) of its cluster, with the predicate ball of radius
//     MoveRadius around the previous center bounding the sensitivity. Each
//     round spends an even share of ε_lloyd across the k averages.
//
// Composition (Theorem 2.1) over the seeding and all Lloyd averages gives
// the total (ε, δ) guarantee, which Params.Validate checks explicitly with
// a dp.Accountant.
package kmeans

import (
	"fmt"
	"math"
	"math/rand"

	"privcluster/internal/core"
	"privcluster/internal/dp"
	"privcluster/internal/geometry"
	"privcluster/internal/vec"
)

// Params configures a private k-means run.
type Params struct {
	// K is the number of centers.
	K int
	// T is the per-cluster target size handed to the 1-cluster seeder
	// (defaults to n/(2k)).
	T int
	// Privacy is the total (ε, δ) budget of the whole run.
	Privacy dp.Params
	// SeedFraction is the share of ε spent on 1-cluster seeding (default
	// 0.5; the rest is split across Lloyd rounds).
	SeedFraction float64
	// Rounds is the number of Lloyd iterations (default 4).
	Rounds int
	// MoveRadius bounds how far a center may move per round — the NoisyAVG
	// predicate radius (default 0.25). Smaller values mean less noise but
	// slower convergence.
	MoveRadius float64
	// Beta, Grid as in core.Params.
	Beta float64
	Grid geometry.Grid
	// Profile for the seeding stage (zero value = core.DefaultProfile).
	Profile core.Profile
	// Index selects the seeding stage's ball-index backend (zero value
	// core.IndexAuto).
	Index core.IndexPolicy
}

func (p *Params) setDefaults(n int) {
	if p.SeedFraction == 0 {
		p.SeedFraction = 0.5
	}
	if p.Rounds == 0 {
		p.Rounds = 4
	}
	if p.MoveRadius == 0 {
		p.MoveRadius = 0.25
	}
	if p.T == 0 && p.K > 0 {
		p.T = n / (2 * p.K)
	}
	if p.Beta == 0 {
		p.Beta = 0.1
	}
}

// Validate checks the configuration for a dataset of n points, including
// that the internal budget plan stays within Privacy (via dp.Accountant).
func (p *Params) Validate(n int) error {
	if p.K < 1 {
		return fmt.Errorf("kmeans: k must be ≥ 1, got %d", p.K)
	}
	if p.SeedFraction <= 0 || p.SeedFraction >= 1 {
		return fmt.Errorf("kmeans: seed fraction %v out of (0,1)", p.SeedFraction)
	}
	if p.Rounds < 0 {
		return fmt.Errorf("kmeans: negative rounds")
	}
	if p.MoveRadius <= 0 {
		return fmt.Errorf("kmeans: move radius must be positive")
	}
	if err := p.Privacy.Validate(); err != nil {
		return err
	}
	if p.Privacy.Delta <= 0 {
		return fmt.Errorf("kmeans: delta must be positive")
	}
	if p.T < 1 || p.T > n {
		return fmt.Errorf("kmeans: t=%d out of [1, %d]", p.T, n)
	}
	// Budget plan: seeding + rounds·k averages must fit.
	acct, err := dp.NewAccountant(p.Privacy)
	if err != nil {
		return err
	}
	seed, lloyd := p.budgets()
	if err := acct.Spend(seed); err != nil {
		return fmt.Errorf("kmeans: seeding budget: %w", err)
	}
	for r := 0; r < p.Rounds; r++ {
		for c := 0; c < p.K; c++ {
			if err := acct.Spend(lloyd); err != nil {
				return fmt.Errorf("kmeans: lloyd budget: %w", err)
			}
		}
	}
	return nil
}

// budgets returns the seeding budget and the per-average Lloyd budget.
func (p *Params) budgets() (seed, perAvg dp.Params) {
	seed = dp.Params{
		Epsilon: p.Privacy.Epsilon * p.SeedFraction,
		Delta:   p.Privacy.Delta * p.SeedFraction,
	}
	rest := dp.Params{
		Epsilon: p.Privacy.Epsilon - seed.Epsilon,
		Delta:   p.Privacy.Delta - seed.Delta,
	}
	total := p.Rounds * p.K
	if total == 0 {
		return seed, rest
	}
	return seed, rest.Split(total)
}

// Result of a private k-means run.
type Result struct {
	Centers []vec.Vector
	// SeedBalls are the 1-cluster balls the centers started from.
	SeedBalls []geometry.Ball
	// Cost is the *non-private* k-means cost (mean squared distance to the
	// nearest center) — a diagnostic for experiments; do not release it
	// alongside Centers without spending additional budget.
	Cost float64
}

// Run executes private k-means on the points (which must lie in the grid's
// unit cube).
func Run(rng *rand.Rand, points []vec.Vector, prm Params) (Result, error) {
	n := len(points)
	prm.setDefaults(n)
	if err := prm.Validate(n); err != nil {
		return Result{}, err
	}
	// One flat frame backs every per-round distance pass (assignment, the
	// NoisyAVG selections, the final cost) — the Lloyd loops sweep it via
	// the shared kernels instead of pointer-chasing n row slices.
	frame, err := vec.FrameFromVectors(points)
	if err != nil {
		return Result{}, fmt.Errorf("kmeans: %w", err)
	}
	seedBudget, avgBudget := prm.budgets()

	// Stage 1: seed centers with the k-ball covering.
	seedPrm := core.Params{
		T:       prm.T,
		Privacy: seedBudget,
		Beta:    prm.Beta,
		Grid:    prm.Grid,
		Profile: prm.Profile,
		Index:   prm.Index,
	}
	balls, err := core.KCover(rng, points, prm.K, seedPrm)
	if err != nil {
		return Result{}, fmt.Errorf("kmeans: seeding: %w", err)
	}
	if len(balls) == 0 {
		return Result{}, fmt.Errorf("kmeans: seeding found no clusters")
	}
	centers := make([]vec.Vector, len(balls))
	for i, b := range balls {
		centers[i] = b.Center.Clone()
	}

	// Stage 2: Lloyd rounds with NoisyAVG center updates. The assignment is
	// the frame's nearest-center kernel (strict <, ties to the lowest
	// index — the same rule the per-point loop applied), and the averages
	// run straight off the frame's rows.
	for round := 0; round < prm.Rounds; round++ {
		assignments := assign(frame, centers)
		for c := range centers {
			res, err := dp.NoisyAverageRows(rng, frame, assignments[c], centers[c], prm.MoveRadius, avgBudget)
			if err != nil {
				return Result{}, err
			}
			if res.Aborted {
				// Too few points near this center: keep it in place. The ⊥
				// outcome is itself differentially private.
				continue
			}
			centers[c] = res.Average.Clamp(0, 1)
		}
	}
	return Result{Centers: centers, SeedBalls: balls, Cost: costFrame(frame, centers)}, nil
}

// assign splits the frame's rows by nearest center, returning per-center row
// ids in row order.
func assign(f *vec.Frame, centers []vec.Vector) [][]int {
	out := make([][]int, len(centers))
	for i := 0; i < f.N(); i++ {
		best, _ := f.Nearest(i, centers)
		out[best] = append(out[best], i)
	}
	return out
}

// Cost returns the k-means objective: mean squared distance to the nearest
// center. (Non-private; for evaluation.)
func Cost(points []vec.Vector, centers []vec.Vector) float64 {
	if len(points) == 0 || len(centers) == 0 {
		return 0
	}
	f, err := vec.FrameFromVectors(points)
	if err != nil {
		// Ragged input: fall back to the per-point loop, which panics on the
		// first mismatched pair exactly as it always did.
		var sum float64
		for _, p := range points {
			best := math.Inf(1)
			for _, c := range centers {
				if d := p.DistSq(c); d < best {
					best = d
				}
			}
			sum += best
		}
		return sum / float64(len(points))
	}
	return costFrame(f, centers)
}

// costFrame is Cost on a prebuilt frame.
func costFrame(f *vec.Frame, centers []vec.Vector) float64 {
	if f == nil || f.N() == 0 || len(centers) == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < f.N(); i++ {
		_, best := f.Nearest(i, centers)
		sum += best
	}
	return sum / float64(f.N())
}

// LloydNonprivate runs plain k-means from the given initial centers — the
// non-private reference the experiments compare against.
func LloydNonprivate(points []vec.Vector, initial []vec.Vector, rounds int) []vec.Vector {
	centers := make([]vec.Vector, len(initial))
	for i, c := range initial {
		centers[i] = c.Clone()
	}
	f, err := vec.FrameFromVectors(points)
	if err != nil {
		return centers
	}
	d := f.Dim()
	for r := 0; r < rounds; r++ {
		groups := assign(f, centers)
		for c, g := range groups {
			if len(g) == 0 {
				continue
			}
			mean := make(vec.Vector, d)
			for _, id := range g {
				row := f.Row(id)
				for j := range mean {
					mean[j] += row[j]
				}
			}
			for j := range mean {
				mean[j] /= float64(len(g))
			}
			centers[c] = mean
		}
	}
	return centers
}
