package kmeans

import (
	"math/rand"
	"testing"

	"privcluster/internal/core"
	"privcluster/internal/dp"
	"privcluster/internal/geometry"
	"privcluster/internal/vec"
	"privcluster/internal/workload"
)

func testGrid(t *testing.T) geometry.Grid {
	t.Helper()
	g, err := geometry.NewGrid(1024, 2)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func blobs(t *testing.T, rng *rand.Rand, k int, g geometry.Grid) workload.MultiInstance {
	t.Helper()
	mi, err := workload.MultiCluster{N: 350 * k, K: k, Radius: 0.02, Spread: 0.35, NoiseFr: 0.05}.Generate(rng, g)
	if err != nil {
		t.Fatal(err)
	}
	return mi
}

func TestValidate(t *testing.T) {
	g := testGrid(t)
	base := Params{
		K: 2, T: 100, Privacy: dp.Params{Epsilon: 10, Delta: 0.05},
		SeedFraction: 0.5, Rounds: 2, MoveRadius: 0.2, Beta: 0.1, Grid: g,
	}
	if err := base.Validate(1000); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Params)
	}{
		{"k=0", func(p *Params) { p.K = 0 }},
		{"seed fraction 1", func(p *Params) { p.SeedFraction = 1 }},
		{"negative rounds", func(p *Params) { p.Rounds = -1 }},
		{"zero move radius", func(p *Params) { p.MoveRadius = 0 }},
		{"zero delta", func(p *Params) { p.Privacy.Delta = 0 }},
		{"t>n", func(p *Params) { p.T = 5000 }},
	}
	for _, c := range cases {
		p := base
		c.mut(&p)
		if err := p.Validate(1000); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestBudgetPlanWithinTotal(t *testing.T) {
	g := testGrid(t)
	p := Params{
		K: 3, T: 50, Privacy: dp.Params{Epsilon: 6, Delta: 0.03},
		SeedFraction: 0.4, Rounds: 5, MoveRadius: 0.2, Beta: 0.1, Grid: g,
	}
	if err := p.Validate(1000); err != nil {
		t.Fatalf("budget plan rejected: %v", err)
	}
	seed, per := p.budgets()
	total := seed.Epsilon + per.Epsilon*float64(p.Rounds*p.K)
	if total > p.Privacy.Epsilon+1e-9 {
		t.Errorf("epsilon plan %v exceeds budget %v", total, p.Privacy.Epsilon)
	}
	totalD := seed.Delta + per.Delta*float64(p.Rounds*p.K)
	if totalD > p.Privacy.Delta+1e-12 {
		t.Errorf("delta plan %v exceeds budget %v", totalD, p.Privacy.Delta)
	}
}

func TestRunRecoversBlobCenters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := testGrid(t)
	mi := blobs(t, rng, 3, g)
	prm := Params{
		K: 3, T: 250, Privacy: dp.Params{Epsilon: 30, Delta: 0.06},
		Rounds: 3, MoveRadius: 0.15, Beta: 0.1, Grid: g,
	}
	res, err := Run(rng, mi.Points, prm)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) == 0 {
		t.Fatal("no centers")
	}
	// Every planted blob center should be close to some returned center.
	hit := 0
	for _, c := range mi.Centers {
		for _, z := range res.Centers {
			if c.Dist(z) < 0.1 {
				hit++
				break
			}
		}
	}
	if hit < 2 {
		t.Errorf("only %d/3 blob centers recovered; centers=%v", hit, res.Centers)
	}
	// The private cost should be within a modest factor of non-private
	// Lloyd from the same seeds.
	ref := LloydNonprivate(mi.Points, res.Centers, 5)
	if res.Cost > 10*Cost(mi.Points, ref)+0.01 {
		t.Errorf("private cost %v ≫ reference %v", res.Cost, Cost(mi.Points, ref))
	}
}

func TestRunInvalidParams(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := testGrid(t)
	pts := []vec.Vector{g.Quantize(vec.Of(0.5, 0.5))}
	_, err := Run(rng, pts, Params{K: 0, Grid: g, Privacy: dp.Params{Epsilon: 1, Delta: 0.01}})
	if err == nil {
		t.Error("k=0 accepted")
	}
}

func TestCostAndAssign(t *testing.T) {
	pts := []vec.Vector{vec.Of(0, 0), vec.Of(0.1, 0), vec.Of(1, 1)}
	centers := []vec.Vector{vec.Of(0, 0), vec.Of(1, 1)}
	f, err := vec.FrameFromVectors(pts)
	if err != nil {
		t.Fatal(err)
	}
	groups := assign(f, centers)
	if len(groups[0]) != 2 || len(groups[1]) != 1 {
		t.Fatalf("assign = %d/%d", len(groups[0]), len(groups[1]))
	}
	// Cost = (0 + 0.01 + 0)/3.
	if got := Cost(pts, centers); got < 0.0033 || got > 0.0034 {
		t.Errorf("Cost = %v", got)
	}
	if Cost(nil, centers) != 0 || Cost(pts, nil) != 0 {
		t.Error("degenerate cost not 0")
	}
}

func TestLloydNonprivateConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := testGrid(t)
	mi := blobs(t, rng, 2, g)
	// Start from poor initial centers; Lloyd should improve the cost.
	initial := []vec.Vector{vec.Of(0.1, 0.9), vec.Of(0.9, 0.1)}
	before := Cost(mi.Points, initial)
	after := Cost(mi.Points, LloydNonprivate(mi.Points, initial, 10))
	if after > before {
		t.Errorf("Lloyd worsened the cost: %v → %v", before, after)
	}
	// LloydNonprivate must not mutate its input centers.
	if !initial[0].Equal(vec.Of(0.1, 0.9)) {
		t.Error("LloydNonprivate mutated the initial centers")
	}
}

func TestNoisyAverageAbortKeepsCenter(t *testing.T) {
	// A center far from all data must survive Lloyd rounds unchanged
	// (NoisyAVG aborts on its empty neighbourhood).
	rng := rand.New(rand.NewSource(4))
	g := testGrid(t)
	var pts []vec.Vector
	for i := 0; i < 700; i++ {
		pts = append(pts, g.Quantize(vec.Of(0.2+0.02*rng.Float64(), 0.2+0.02*rng.Float64())))
	}
	prm := Params{
		K: 1, T: 300, Privacy: dp.Params{Epsilon: 10, Delta: 0.05},
		Rounds: 2, MoveRadius: 0.05, Beta: 0.1, Grid: g,
	}
	prm.Profile = core.DefaultProfile()
	res, err := Run(rng, pts, prm)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Centers[0].Dist(vec.Of(0.21, 0.21)); got > 0.15 {
		t.Errorf("center %v drifted %v from the blob", res.Centers[0], got)
	}
}
