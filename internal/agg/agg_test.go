package agg

import (
	"math"
	"math/rand"
	"testing"

	"privcluster/internal/core"
	"privcluster/internal/dp"
	"privcluster/internal/geometry"
	"privcluster/internal/vec"
)

func clusterParams(t *testing.T, dim int) core.Params {
	t.Helper()
	g, err := geometry.NewGrid(4096, dim)
	if err != nil {
		t.Fatal(err)
	}
	return core.Params{
		Privacy: dp.Params{Epsilon: 4, Delta: 0.05},
		Beta:    0.1,
		Grid:    g,
	}
}

// meanAnalysis is a stable f: the mean of 1-D rows, lifted to d dims.
func meanAnalysis(dim int) Analysis[float64] {
	return func(rows []float64) vec.Vector {
		var s float64
		for _, r := range rows {
			s += r
		}
		m := s / float64(len(rows))
		out := make(vec.Vector, dim)
		for i := range out {
			out[i] = m
		}
		return out
	}
}

func TestRunRecoversStablePoint(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Rows concentrated near 0.5: the mean of any size-m subsample is within
	// ~0.01 of 0.5, i.e. f is (m, 0.01, ≈1)-stable at c = (0.5, 0.5).
	rows := make([]float64, 40000)
	for i := range rows {
		rows[i] = 0.5 + rng.NormFloat64()*0.02
	}
	prm := Params{M: 5, Alpha: 0.8, Cluster: clusterParams(t, 2)}

	res, err := Run(rng, rows, meanAnalysis(2), prm)
	if err != nil {
		t.Fatal(err)
	}
	want := vec.Of(0.5, 0.5)
	if res.Point.Dist(want) > res.Radius {
		t.Errorf("released point %v not within its own radius %v of %v", res.Point, res.Radius, want)
	}
	if res.Point.Dist(want) > 0.25 {
		t.Errorf("released point %v too far from the stable point", res.Point)
	}
	if res.K != 40000/(9*5) {
		t.Errorf("K = %d", res.K)
	}
	if res.T != int(0.8*float64(res.K)/2) {
		t.Errorf("T = %d", res.T)
	}
	// The aggregator ball must capture ≥ T evaluations.
	ball := geometry.Ball{Center: res.Point, Radius: res.Radius}
	if got := ball.Count(res.Evaluations); got < res.T {
		t.Errorf("aggregator ball holds %d < %d evaluations", got, res.T)
	}
}

func TestRunRobustToUnstableMinority(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// 70% of rows near 0.3, 30% adversarial spread: per-block means still
	// concentrate near 0.3 when m is small... use m=1 so each evaluation is
	// a single row: f is (1, 0.05, 0.7)-stable at 0.3.
	rows := make([]float64, 30000)
	for i := range rows {
		if i < 21000 {
			rows[i] = 0.3 + rng.NormFloat64()*0.01
		} else {
			rows[i] = rng.Float64()
		}
	}
	prm := Params{M: 1, Alpha: 0.6, Cluster: clusterParams(t, 2)}
	res, err := Run(rng, rows, meanAnalysis(2), prm)
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Point.Dist(vec.Of(0.3, 0.3)); d > 0.25 {
		t.Errorf("released point %v too far (%v) from the 70%% mode", res.Point, d)
	}
}

func TestRunValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rows := make([]float64, 100)
	cl := clusterParams(t, 1)
	if _, err := Run(rng, rows, meanAnalysis(1), Params{M: 0, Alpha: 0.5, Cluster: cl}); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := Run(rng, rows, meanAnalysis(1), Params{M: 5, Alpha: 0, Cluster: cl}); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := Run(rng, rows, meanAnalysis(1), Params{M: 50, Alpha: 0.5, Cluster: cl}); err == nil {
		t.Error("n < 18m accepted")
	}
	// Dimension mismatch between f and grid.
	big := make([]float64, 40000)
	if _, err := Run(rng, big, meanAnalysis(3), Params{M: 5, Alpha: 0.8, Cluster: clusterParams(t, 2)}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestAmplifiedPrivacyFormula(t *testing.T) {
	got := AmplifiedPrivacy(dp.Params{Epsilon: 0.9, Delta: 1e-6})
	wantEps := 0.6
	if math.Abs(got.Epsilon-wantEps) > 1e-12 {
		t.Errorf("eps = %v, want %v", got.Epsilon, wantEps)
	}
	wantDelta := math.Exp(0.6) * 4.0 / 9.0 * 1e-6
	if math.Abs(got.Delta-wantDelta) > 1e-18 {
		t.Errorf("delta = %v, want %v", got.Delta, wantDelta)
	}
	// Amplification must shrink epsilon.
	if got.Epsilon >= 0.9 {
		t.Error("subsampling did not amplify privacy")
	}
}
