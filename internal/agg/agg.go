// Package agg implements the sample-and-aggregate framework of Section 6
// (Algorithm SA, Theorem 6.3): compiling an arbitrary — possibly
// non-private — analysis f mapping databases to points in X^d into a
// differentially private analysis, using the 1-cluster algorithm as the
// aggregator.
//
// The construction: subsample n/9 rows i.i.d. from the input, split them
// into k = n/(9m) blocks of size m, evaluate f on each block, and run the
// private 1-cluster algorithm on the k resulting points with target
// t = αk/2. If f is (m, r, α)-stable on the input (Definition 6.1 — a
// random size-m subsample lands within r of some point c with probability
// ≥ α), the released point is (m, w·r, α/8)-stable, where w is the
// 1-cluster approximation factor. Privacy follows from the secrecy of the
// subsample (Lemma 6.4) composed with the aggregator's own guarantee.
package agg

import (
	"fmt"
	"math"
	"math/rand"

	"privcluster/internal/core"
	"privcluster/internal/dp"
	"privcluster/internal/vec"
)

// Analysis is the non-private function f being compiled: it maps a database
// (a slice of rows) to a point in the unit cube of prm.Grid's dimension.
type Analysis[R any] func(rows []R) vec.Vector

// Params configures Algorithm SA.
type Params struct {
	// M is the desired stability parameter m: the block size on which f is
	// evaluated.
	M int
	// Alpha is the desired stability probability α ∈ (0, 1].
	Alpha float64
	// Cluster configures the 1-cluster aggregator M (its T is overridden
	// with αk/2 per Algorithm 4 Step 3; its Privacy is the (ε, δ) of the
	// aggregator, which the subsampling lemma then amplifies).
	Cluster core.Params
	// Preflight, when non-nil, is invoked with the quantized evaluations
	// and the cluster target t = αk/2 just before the budget-spending
	// aggregation; a non-nil return aborts the run with that error. The
	// public API uses it to route Aggregate through the same feasibility
	// pre-flight as FindCluster. It runs after the f evaluations (which
	// consume rng) and must not draw from the rng itself, so a passing
	// check leaves the seeded release stream untouched.
	Preflight func(evals []vec.Vector, t int) error
}

// Result is the outcome of one SA run.
type Result struct {
	// Point is the private estimate z.
	Point vec.Vector
	// Radius is the aggregator ball's radius around z (the w·r of
	// Theorem 6.3 for whatever r the evaluations actually concentrated at).
	Radius float64
	// K is the number of blocks, T the cluster target αk/2 that was used.
	K, T int
	// Evaluations are the k points y_i = f(D_i) (diagnostic; these are
	// intermediate values the privacy analysis already accounts for — do
	// not release them alongside Point in a real deployment).
	Evaluations []vec.Vector
}

// AmplifiedPrivacy returns the (ε̃, δ̃) guarantee of the whole construction
// for a database of size n per Lemma 6.4 (subsampling n/9 of n rows, i.e.
// sampling rate 1/9 relative to the full database) composed over the single
// aggregator invocation: ε̃ = 6·ε·(n/9)/n = (2/3)·ε and
// δ̃ = exp(ε̃)·4·(n/9)/n·δ.
func AmplifiedPrivacy(aggregator dp.Params) dp.Params {
	eps := 6.0 * aggregator.Epsilon / 9.0
	return dp.Params{
		Epsilon: eps,
		Delta:   math.Exp(eps) * 4.0 / 9.0 * aggregator.Delta,
	}
}

// Run executes Algorithm SA on the given rows.
func Run[R any](rng *rand.Rand, rows []R, f Analysis[R], prm Params) (Result, error) {
	n := len(rows)
	if prm.M < 1 {
		return Result{}, fmt.Errorf("agg: stability parameter m must be ≥ 1, got %d", prm.M)
	}
	if prm.Alpha <= 0 || prm.Alpha > 1 {
		return Result{}, fmt.Errorf("agg: alpha %v out of (0, 1]", prm.Alpha)
	}
	k := n / (9 * prm.M)
	if k < 2 {
		return Result{}, fmt.Errorf("agg: n=%d too small for m=%d (need n ≥ 18m)", n, prm.M)
	}
	t := int(prm.Alpha * float64(k) / 2)
	if t < 1 {
		return Result{}, fmt.Errorf("agg: αk/2 = %v < 1; increase n or alpha", prm.Alpha*float64(k)/2)
	}

	// Step 1: D = n/9 i.i.d. samples from S, split into k blocks of size m.
	// Step 2: evaluate f on each block.
	d := prm.Cluster.Grid.Dim
	evals := make([]vec.Vector, k)
	block := make([]R, prm.M)
	for i := 0; i < k; i++ {
		for j := range block {
			block[j] = rows[rng.Intn(n)]
		}
		y := f(block)
		if y.Dim() != d {
			return Result{}, fmt.Errorf("agg: analysis returned dimension %d, grid says %d", y.Dim(), d)
		}
		evals[i] = prm.Cluster.Grid.Quantize(y)
	}

	if prm.Preflight != nil {
		if err := prm.Preflight(evals, t); err != nil {
			return Result{}, err
		}
	}

	// Step 3: aggregate with the 1-cluster algorithm at t = αk/2.
	cprm := prm.Cluster
	cprm.T = t
	res, err := core.OneCluster(rng, evals, cprm)
	if err != nil {
		return Result{}, fmt.Errorf("agg: aggregation failed: %w", err)
	}
	return Result{
		Point:       res.Ball.Center,
		Radius:      res.Ball.Radius,
		K:           k,
		T:           t,
		Evaluations: evals,
	}, nil
}
