package ledger

import (
	"errors"
	"fmt"
	"os"
	"syscall"
)

// acquireLock opens (creating if necessary) path and takes an exclusive,
// non-blocking flock on it. flock — not an O_EXCL sentinel file — because
// the kernel releases it when the holding process dies for any reason, so
// a crashed daemon can never wedge the ledger directory behind a stale
// lock.
func acquireLock(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		if errors.Is(err, syscall.EWOULDBLOCK) {
			return nil, fmt.Errorf("%w (%s)", ErrLocked, path)
		}
		return nil, fmt.Errorf("ledger: flock %s: %w", path, err)
	}
	return f, nil
}

// releaseLock drops the flock and closes the file. Closing alone would
// release the lock too; the explicit unlock keeps the intent readable.
func releaseLock(f *os.File) error {
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_UN); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
