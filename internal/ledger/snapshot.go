package ledger

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"sort"
)

// Snapshot file format (big endian throughout):
//
//	[4]byte magic "PLGS"
//	uint16  version (1)
//	uint64  last folded sequence number
//	uint32  account count
//	  per account: uint16 name length, name bytes,
//	               float64 granted ε, granted δ, spent ε, spent δ
//	uint32  outstanding hold count
//	  per hold: uint64 id, uint16 name length, name bytes, float64 ε, δ
//	uint32  CRC-32 (IEEE) of everything above
//
// The snapshot is written to a temp file, fsynced, and renamed into
// place, so it is either absent or complete; a CRC or grammar failure is
// real corruption, not a crash artifact, and Open refuses to guess.
// Holds ARE persisted in snapshots: a compaction must not silently
// commit or drop in-flight reservations, it only moves them from the
// journal into the snapshot.

var snapshotMagic = [4]byte{'P', 'L', 'G', 'S'}

const snapshotVersion = 1

func (l *Ledger) snapshotPath() string { return filepath.Join(l.dir, "snapshot") }

// compactLocked writes the materialized state as a fresh snapshot and
// truncates the journal. Crash-safe at every step: the rename is atomic,
// the snapshot's sequence number makes replaying a not-yet-truncated
// journal idempotent, and until the rename lands the old snapshot +
// full journal still reproduce the exact same state.
func (l *Ledger) compactLocked() error {
	data := l.encodeSnapshotLocked()
	tmp := l.snapshotPath() + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, l.snapshotPath()); err != nil {
		return err
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}
	if err := l.journal.Truncate(0); err != nil {
		return err
	}
	if _, err := l.journal.Seek(0, 0); err != nil {
		return err
	}
	if !l.opts.NoSync {
		if err := l.journal.Sync(); err != nil {
			return err
		}
	}
	l.recsSinceSnap = 0
	return nil
}

// encodeSnapshotLocked serializes the current state (sorted, so
// snapshots of equal states are byte-identical).
func (l *Ledger) encodeSnapshotLocked() []byte {
	b := make([]byte, 0, 64+64*len(l.accounts)+48*len(l.holds))
	b = append(b, snapshotMagic[:]...)
	b = binary.BigEndian.AppendUint16(b, snapshotVersion)
	b = binary.BigEndian.AppendUint64(b, l.seq)

	names := make([]string, 0, len(l.accounts))
	for name := range l.accounts {
		names = append(names, name)
	}
	sort.Strings(names)
	b = binary.BigEndian.AppendUint32(b, uint32(len(names)))
	for _, name := range names {
		acct := l.accounts[name]
		b = binary.BigEndian.AppendUint16(b, uint16(len(name)))
		b = append(b, name...)
		for _, v := range [4]float64{acct.granted.Epsilon, acct.granted.Delta, acct.spent.Epsilon, acct.spent.Delta} {
			b = binary.BigEndian.AppendUint64(b, math.Float64bits(v))
		}
	}

	ids := make([]uint64, 0, len(l.holds))
	for id := range l.holds {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	b = binary.BigEndian.AppendUint32(b, uint32(len(ids)))
	for _, id := range ids {
		h := l.holds[id]
		b = binary.BigEndian.AppendUint64(b, id)
		b = binary.BigEndian.AppendUint16(b, uint16(len(h.principal)))
		b = append(b, h.principal...)
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(h.cost.Epsilon))
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(h.cost.Delta))
	}
	return binary.BigEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

// loadSnapshot loads the snapshot file if present, seeding seq,
// accounts, and outstanding holds. Reserved totals are recomputed from
// the holds rather than stored — one source of truth.
func (l *Ledger) loadSnapshot() error {
	data, err := os.ReadFile(l.snapshotPath())
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	if len(data) < 4+2+8+4+4+4 {
		return fmt.Errorf("%w: %d bytes", errCorrupt, len(data))
	}
	payload, sum := data[:len(data)-4], binary.BigEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(payload) != sum {
		return fmt.Errorf("%w: checksum mismatch", errCorrupt)
	}
	r := snapReader{b: payload}
	var magic [4]byte
	copy(magic[:], r.take(4))
	if magic != snapshotMagic {
		return fmt.Errorf("%w: bad magic", errCorrupt)
	}
	if v := r.u16(); v != snapshotVersion {
		return fmt.Errorf("ledger: snapshot version %d not supported", v)
	}
	l.seq = r.u64()
	for i, n := 0, int(r.u32()); i < n; i++ {
		name := r.str()
		acct := l.ensureAccountLocked(name)
		acct.granted.Epsilon = r.f64()
		acct.granted.Delta = r.f64()
		acct.spent.Epsilon = r.f64()
		acct.spent.Delta = r.f64()
	}
	for i, n := 0, int(r.u32()); i < n; i++ {
		id := r.u64()
		h := hold{principal: r.str()}
		h.cost.Epsilon = r.f64()
		h.cost.Delta = r.f64()
		if r.err == nil {
			l.holds[id] = h
			acct := l.ensureAccountLocked(h.principal)
			acct.reserved = acct.reserved.Add(h.cost)
		}
	}
	if r.err != nil || r.off != len(payload) {
		return fmt.Errorf("%w: truncated or oversized payload", errCorrupt)
	}
	return nil
}

// snapReader decodes a snapshot payload with sticky errors (the rbuf
// idiom of internal/transport).
type snapReader struct {
	b   []byte
	off int
	err error
}

func (r *snapReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.err = errCorrupt
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

func (r *snapReader) u16() uint16 {
	s := r.take(2)
	if s == nil {
		return 0
	}
	return binary.BigEndian.Uint16(s)
}

func (r *snapReader) u32() uint32 {
	s := r.take(4)
	if s == nil {
		return 0
	}
	return binary.BigEndian.Uint32(s)
}

func (r *snapReader) u64() uint64 {
	s := r.take(8)
	if s == nil {
		return 0
	}
	return binary.BigEndian.Uint64(s)
}

func (r *snapReader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *snapReader) str() string {
	n := int(r.u16())
	return string(r.take(n))
}

// syncDir fsyncs a directory so a just-renamed file survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
