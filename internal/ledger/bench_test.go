package ledger

import (
	"fmt"
	"testing"
)

// BenchmarkLedgerCommit measures the steady-state serving cost of one
// admitted query's accounting: Reserve + Commit, i.e. two journaled,
// checksummed records, including the amortized automatic compaction.
// The nosync variant isolates the CPU + page-cache cost (deterministic
// — this is the variant the CI bench gate pins); sync adds the two
// fsyncs a durable deployment pays, which is hardware-bound and
// reported for human eyes only.
func BenchmarkLedgerCommit(b *testing.B) {
	for _, mode := range []struct {
		name   string
		noSync bool
	}{{"nosync", true}, {"sync", false}} {
		b.Run(mode.name, func(b *testing.B) {
			dir := b.TempDir()
			l, err := Open(dir, Options{NoSync: mode.noSync})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			if err := l.Grant("bench", Cost{Epsilon: float64(b.N) + 1, Delta: 0}); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := l.Reserve("bench", Cost{Epsilon: 1, Delta: 0})
				if err != nil {
					b.Fatal(err)
				}
				if err := r.Commit(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLedgerReplay measures Open over a journal of committed
// spends — the restart cost of a busy daemon between compactions.
func BenchmarkLedgerReplay(b *testing.B) {
	for _, records := range []int{1024} {
		b.Run(fmt.Sprintf("records=%d", records), func(b *testing.B) {
			dir := b.TempDir()
			l, err := Open(dir, Options{NoSync: true, SnapshotEvery: -1})
			if err != nil {
				b.Fatal(err)
			}
			if err := l.Grant("bench", Cost{Epsilon: float64(records), Delta: 0}); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < records/2; i++ {
				r, err := l.Reserve("bench", Cost{Epsilon: 1, Delta: 0})
				if err != nil {
					b.Fatal(err)
				}
				if err := r.Commit(); err != nil {
					b.Fatal(err)
				}
			}
			if err := l.Close(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rl, err := Open(dir, Options{NoSync: true, SnapshotEvery: -1})
				if err != nil {
					b.Fatal(err)
				}
				if err := rl.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
