package ledger

import (
	"os"
	"path/filepath"
	"testing"
)

// TestCrashTruncateAndReplay is the crash-safety harness: it records a
// scripted journal, then simulates a crash at EVERY byte offset of the
// file — truncating the journal to the first b bytes and opening a fresh
// ledger on the remains — and asserts the replayed state against an
// independent model of the complete-record prefix. The invariant under
// test is exact accounting of committed spends:
//
//   - never under-counted: every spend whose commit record landed fully
//     is present in the replayed balance, and every reserve that landed
//     fully is conservatively finalized as spent (its caller may have
//     drawn noise before the crash);
//   - never over-counted: a spend whose reserve record is torn does not
//     exist — its Reserve call never returned, so no mechanism ran.
//
// Byte-offset granularity matters: a torn record can split inside the
// length prefix, the checksum, or the body, and each must be recognized
// as a tail, not misparsed as data.
func TestCrashTruncateAndReplay(t *testing.T) {
	// Script a journal exercising every op type, with NoSync (the test
	// copies bytes itself; durability is not what is being simulated).
	src := t.TempDir()
	l := open(t, src, Options{SnapshotEvery: -1, NoSync: true})
	script := func() {
		mustGrant(t, l, "alice", Cost{Epsilon: 10, Delta: 1e-4})
		r1 := mustReserve(t, l, "alice", Cost{Epsilon: 2, Delta: 1e-6})
		mustSettle(t, r1.Commit)
		r2 := mustReserve(t, l, "alice", Cost{Epsilon: 3, Delta: 2e-6})
		mustSettle(t, r2.Release)
		mustGrant(t, l, "bob", Cost{Epsilon: 5, Delta: 0})
		r3 := mustReserve(t, l, "bob", Cost{Epsilon: 4, Delta: 0})
		mustSettle(t, r3.Commit)
		_ = mustReserve(t, l, "alice", Cost{Epsilon: 1, Delta: 5e-7}) // left dangling
	}
	script()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	journal, err := os.ReadFile(filepath.Join(src, "journal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(journal) < 8*8 {
		t.Fatalf("scripted journal is implausibly small: %d bytes", len(journal))
	}

	for b := 0; b <= len(journal); b++ {
		dir := filepath.Join(t.TempDir(), "crash")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "journal"), journal[:b], 0o644); err != nil {
			t.Fatal(err)
		}
		want := expectedState(t, journal[:b])
		rl, err := Open(dir, Options{SnapshotEvery: -1, NoSync: true})
		if err != nil {
			t.Fatalf("offset %d: Open: %v", b, err)
		}
		if rl.Outstanding() != 0 {
			t.Fatalf("offset %d: %d holds survived recovery", b, rl.Outstanding())
		}
		for principal, exp := range want {
			bal, ok := rl.Balance(principal)
			if !ok {
				t.Fatalf("offset %d: principal %q lost", b, principal)
			}
			if !costEq(bal.Spent, exp.spent) {
				t.Fatalf("offset %d: %q spent = %v, want %v (granted %v)",
					b, principal, bal.Spent, exp.spent, bal.Granted)
			}
			if !costEq(bal.Granted, exp.granted) {
				t.Fatalf("offset %d: %q granted = %v, want %v", b, principal, bal.Granted, exp.granted)
			}
			if !bal.Reserved.IsZero() {
				t.Fatalf("offset %d: %q reserved = %v after recovery", b, principal, bal.Reserved)
			}
		}
		for _, p := range rl.Principals() {
			if _, ok := want[p]; !ok {
				t.Fatalf("offset %d: phantom principal %q from a torn record", b, p)
			}
		}
		// Recovery must leave a journal the ledger can keep appending to.
		if err := rl.Grant("probe", Cost{Epsilon: 1}); err != nil {
			t.Fatalf("offset %d: append after recovery: %v", b, err)
		}
		if err := rl.Close(); err != nil {
			t.Fatalf("offset %d: close: %v", b, err)
		}
	}
}

// expectedState is the independent accounting model: it parses only the
// complete records of a journal prefix and applies the recovery
// semantics (dangling reserves become spends) without going through the
// Ledger's own replay code paths beyond the shared frame grammar.
type principalState struct {
	granted Cost
	spent   Cost
}

func expectedState(t *testing.T, prefix []byte) map[string]*principalState {
	t.Helper()
	state := make(map[string]*principalState)
	ensure := func(p string) *principalState {
		if state[p] == nil {
			state[p] = &principalState{}
		}
		return state[p]
	}
	dangling := make(map[uint64]hold)
	off := 0
	for {
		rec, n, ok := nextRecord(prefix[off:])
		if !ok {
			break
		}
		off += n
		switch rec.op {
		case opGrant:
			s := ensure(rec.principal)
			s.granted = s.granted.Add(rec.cost)
		case opReserve:
			dangling[rec.seq] = hold{principal: rec.principal, cost: rec.cost}
		case opCommit:
			if h, ok := dangling[rec.resID]; ok {
				s := ensure(h.principal)
				s.spent = s.spent.Add(h.cost)
				delete(dangling, rec.resID)
			}
		case opRelease:
			delete(dangling, rec.resID)
		}
	}
	// Recovery finalizes whatever is still held.
	for _, h := range dangling {
		s := ensure(h.principal)
		s.spent = s.spent.Add(h.cost)
	}
	return state
}

// TestCrashDuringCompaction: a crash window between snapshot rename and
// journal truncation leaves both the full journal and the snapshot; the
// sequence numbers must make replay idempotent (no double-count).
func TestCrashDuringCompaction(t *testing.T) {
	dir := t.TempDir()
	l := open(t, dir, Options{SnapshotEvery: -1, NoSync: true})
	mustGrant(t, l, "p", Cost{Epsilon: 10, Delta: 0})
	r := mustReserve(t, l, "p", Cost{Epsilon: 4, Delta: 0})
	mustSettle(t, r.Commit)
	// Snapshot the state but resurrect the pre-truncation journal — the
	// exact on-disk layout of a crash after rename, before truncate.
	journal, err := os.ReadFile(filepath.Join(dir, "journal"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "journal"), journal, 0o644); err != nil {
		t.Fatal(err)
	}
	l2 := open(t, dir, Options{NoSync: true})
	bal, _ := l2.Balance("p")
	if !costEq(bal.Spent, Cost{Epsilon: 4, Delta: 0}) || !costEq(bal.Granted, Cost{Epsilon: 10, Delta: 0}) {
		t.Fatalf("replaying a pre-compaction journal over its snapshot double-counted: %+v", bal)
	}
}

func mustGrant(t *testing.T, l *Ledger, p string, c Cost) {
	t.Helper()
	if err := l.Grant(p, c); err != nil {
		t.Fatal(err)
	}
}

func mustReserve(t *testing.T, l *Ledger, p string, c Cost) *Reservation {
	t.Helper()
	r, err := l.Reserve(p, c)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func mustSettle(t *testing.T, settle func() error) {
	t.Helper()
	if err := settle(); err != nil {
		t.Fatal(err)
	}
}
