package ledger

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
)

// Journal record framing — the same length-prefixed, checksummed
// discipline as internal/transport's wire frames, adapted for a file:
//
//	uint32  body length (big endian)
//	uint32  CRC-32 (IEEE) of the body
//	[]byte  body (length bytes)
//
// body:
//
//	uint8   op (opGrant | opReserve | opCommit | opRelease)
//	uint64  seq — monotonic sequence number; a reserve's seq is its hold id
//	grant/reserve: uint16 principal length, principal bytes,
//	               float64 ε bits, float64 δ bits (big-endian IEEE)
//	commit/release: uint64 hold id
//
// A record is only acted on once fully written and fsynced, so replay
// may treat any trailing partial or checksum-failing record as a torn
// tail from a crash and truncate it: the call that was writing it never
// returned, so no caller observed the state it encoded.
const (
	opGrant   = 1
	opReserve = 2
	opCommit  = 3
	opRelease = 4
)

// maxRecordBody bounds a record body so replay of a corrupt length
// prefix cannot allocate unboundedly: op + seq + principal-length +
// principal + two float64s, with room to spare.
const maxRecordBody = 1 + 8 + 2 + maxPrincipalLen + 16 + 64

// record is one decoded journal record.
type record struct {
	op        uint8
	seq       uint64
	principal string // grant, reserve
	cost      Cost   // grant, reserve
	resID     uint64 // commit, release
}

// encode appends the record's framed bytes to b.
func (rec *record) encode(b []byte) []byte {
	start := len(b)
	b = append(b, 0, 0, 0, 0, 0, 0, 0, 0) // length + crc placeholders
	body := len(b)
	b = append(b, rec.op)
	b = binary.BigEndian.AppendUint64(b, rec.seq)
	switch rec.op {
	case opGrant, opReserve:
		b = binary.BigEndian.AppendUint16(b, uint16(len(rec.principal)))
		b = append(b, rec.principal...)
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(rec.cost.Epsilon))
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(rec.cost.Delta))
	case opCommit, opRelease:
		b = binary.BigEndian.AppendUint64(b, rec.resID)
	}
	binary.BigEndian.PutUint32(b[start:], uint32(len(b)-body))
	binary.BigEndian.PutUint32(b[start+4:], crc32.ChecksumIEEE(b[body:]))
	return b
}

// decodeBody parses a record body (already length- and CRC-verified).
func decodeBody(body []byte) (record, error) {
	var rec record
	if len(body) < 9 {
		return rec, fmt.Errorf("record body of %d bytes is too short", len(body))
	}
	rec.op = body[0]
	rec.seq = binary.BigEndian.Uint64(body[1:9])
	rest := body[9:]
	switch rec.op {
	case opGrant, opReserve:
		if len(rest) < 2 {
			return rec, fmt.Errorf("truncated principal length")
		}
		n := int(binary.BigEndian.Uint16(rest))
		rest = rest[2:]
		if n > maxPrincipalLen || len(rest) != n+16 {
			return rec, fmt.Errorf("bad grant/reserve body")
		}
		rec.principal = string(rest[:n])
		rec.cost.Epsilon = math.Float64frombits(binary.BigEndian.Uint64(rest[n:]))
		rec.cost.Delta = math.Float64frombits(binary.BigEndian.Uint64(rest[n+8:]))
	case opCommit, opRelease:
		if len(rest) != 8 {
			return rec, fmt.Errorf("bad commit/release body")
		}
		rec.resID = binary.BigEndian.Uint64(rest)
	default:
		return rec, fmt.Errorf("unknown op %d", rec.op)
	}
	return rec, nil
}

func (l *Ledger) journalPath() string { return filepath.Join(l.dir, "journal") }

// appendLocked assigns the record the next sequence number, writes its
// frame to the journal and fsyncs. Only after the sync succeeds may the
// caller apply the record — a failed append leaves at most a torn tail
// that the next Open truncates, and the call reports the failure instead
// of claiming durability it does not have.
func (l *Ledger) appendLocked(rec *record) error {
	rec.seq = l.seq + 1
	frame := rec.encode(make([]byte, 0, 64))
	if _, err := l.journal.Write(frame); err != nil {
		return fmt.Errorf("ledger: journal append: %w", err)
	}
	if !l.opts.NoSync {
		if err := l.journal.Sync(); err != nil {
			return fmt.Errorf("ledger: journal sync: %w", err)
		}
	}
	l.recsSinceSnap++
	return nil
}

// openAndReplayJournal opens (creating if absent) the journal, replays
// every complete record with seq beyond the snapshot's, and truncates a
// torn tail. Records at or below the snapshot's sequence are skipped:
// they were already folded into the snapshot, and a crash between
// snapshot rename and journal truncation legitimately leaves them
// behind.
func (l *Ledger) openAndReplayJournal() error {
	f, err := os.OpenFile(l.journalPath(), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return err
	}
	snapSeq := l.seq
	off := 0
	for {
		rec, n, ok := nextRecord(data[off:])
		if !ok {
			break
		}
		off += n
		if rec.seq <= snapSeq {
			continue
		}
		l.applyLocked(&rec)
		l.recsSinceSnap++
	}
	if off < len(data) {
		// Torn tail from a crash mid-append: drop it (see the framing
		// comment for why that is safe) and keep appending from here.
		if err := f.Truncate(int64(off)); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	if _, err := f.Seek(int64(off), io.SeekStart); err != nil {
		f.Close()
		return err
	}
	l.journal = f
	return nil
}

// nextRecord parses one framed record from the head of data, returning
// ok=false on a partial, checksum-failing, or malformed head — the torn
// tail, from the replay loop's point of view.
func nextRecord(data []byte) (rec record, n int, ok bool) {
	if len(data) < 8 {
		return rec, 0, false
	}
	bodyLen := int(binary.BigEndian.Uint32(data))
	if bodyLen < 9 || bodyLen > maxRecordBody || len(data) < 8+bodyLen {
		return rec, 0, false
	}
	body := data[8 : 8+bodyLen]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(data[4:]) {
		return rec, 0, false
	}
	rec, err := decodeBody(body)
	if err != nil {
		return rec, 0, false
	}
	return rec, 8 + bodyLen, true
}
