// Package ledger is a durable, crash-safe, multi-tenant (ε, δ) privacy
// budget ledger with zero external dependencies. It is the accounting
// substrate cmd/privclusterd serves from: per-principal budgets that
// survive process restarts and are enforced across Dataset handles and
// across processes — the composition resource the privacy guarantee of
// the whole system actually rests on.
//
// # Model
//
// A ledger lives in one directory and tracks, per principal (an opaque
// string — the daemon maps API keys onto principals):
//
//   - granted: the total (ε, δ) the principal may ever spend (grants are
//     additive, append-only — budget is only ever extended, never clawed
//     back, because spent privacy cannot be un-spent);
//   - spent: the (ε, δ) of finalized charges;
//   - reserved: the (ε, δ) of in-flight holds.
//
// Spending is two-phase. Reserve places a durable hold — it returns only
// after the hold's journal record is fsynced — and refuses (with a typed
// *InsufficientError) any hold that would push spent+reserved past
// granted. The caller runs the query, then settles the hold: Commit
// finalizes the charge, Release returns it (legitimate only when the
// mechanism provably never ran — e.g. index construction failed before
// any noise was drawn). A process that crashes between Reserve and
// settlement leaves a dangling hold; the next Open finds it and commits
// it (conservatively: the dead process may have drawn noise after the
// hold landed). The invariant is one-sided on purpose — replayed state
// can over-count an unsettled hold as spent, but can never under-count a
// committed spend, and a retry after a crash spends fresh budget instead
// of reusing the old hold. That is what makes double-spending impossible
// across crashes.
//
// # Durability
//
// State is an append-only journal of checksummed, length-prefixed
// records (the framing discipline of internal/transport's wire protocol),
// fsynced before any mutating call returns. Replay tolerates a torn tail:
// a crash mid-append leaves at most one partial record at the end of the
// file, which replay truncates — safe, because the call that wrote it
// never returned success, so no caller acted on it. Every
// snapshotEvery records the ledger compacts: the materialized state is
// written to a snapshot file (atomic tmp+rename), and the journal is
// truncated. Records carry monotonic sequence numbers and the snapshot
// records the last one it folded in, so a crash anywhere in the
// compaction sequence replays to exactly the same state.
//
// # Single writer
//
// Open takes an exclusive flock on the directory's lock file and fails
// with ErrLocked while another process holds it. Combined with the
// in-process mutex this makes admission serializable: two daemons
// pointed at one ledger directory cannot jointly over-spend a principal,
// because the second daemon never gets the ledger open. The lock is
// released by Close or by process death (flock semantics), so a crashed
// daemon never wedges the directory.
package ledger

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Cost is an (ε, δ) amount — a grant, a hold, or a charge.
type Cost struct {
	Epsilon float64
	Delta   float64
}

// IsZero reports whether c is the zero amount.
func (c Cost) IsZero() bool { return c == Cost{} }

// Add returns c + o.
func (c Cost) Add(o Cost) Cost {
	return Cost{Epsilon: c.Epsilon + o.Epsilon, Delta: c.Delta + o.Delta}
}

// Sub returns c − o with coordinates clipped at zero (float residue from
// exact add/subtract cycles must not leak out as negative budget).
func (c Cost) Sub(o Cost) Cost {
	return Cost{
		Epsilon: math.Max(0, c.Epsilon-o.Epsilon),
		Delta:   math.Max(0, c.Delta-o.Delta),
	}
}

func (c Cost) String() string { return fmt.Sprintf("(ε=%g, δ=%g)", c.Epsilon, c.Delta) }

// validate rejects amounts that can corrupt accounting: negative, NaN or
// infinite coordinates, or δ outside [0, 1).
func (c Cost) validate() error {
	if c.Epsilon < 0 || math.IsNaN(c.Epsilon) || math.IsInf(c.Epsilon, 0) {
		return fmt.Errorf("ledger: epsilon must be ≥ 0 and finite, got %v", c.Epsilon)
	}
	if c.Delta < 0 || c.Delta >= 1 || math.IsNaN(c.Delta) {
		return fmt.Errorf("ledger: delta must be in [0, 1), got %v", c.Delta)
	}
	return nil
}

// fits reports whether held+cost still fits within total — the one
// admission rule. The relative-plus-absolute slack mirrors
// privcluster.Budget.allows: a budget sized for exactly k queries admits
// all k despite float accumulation.
func fits(total, held, cost Cost) bool {
	const slack = 1e-9
	return held.Epsilon+cost.Epsilon <= total.Epsilon*(1+slack)+slack &&
		held.Delta+cost.Delta <= total.Delta*(1+slack)+slack
}

// Balance is one principal's materialized account state.
type Balance struct {
	// Granted is the total (ε, δ) ever granted to the principal.
	Granted Cost
	// Spent is the sum of committed charges (including dangling holds
	// conservatively finalized by crash recovery).
	Spent Cost
	// Reserved is the sum of outstanding (unsettled) holds.
	Reserved Cost
}

// Remaining returns what a new reservation may still claim:
// granted − spent − reserved, clipped at zero.
func (b Balance) Remaining() Cost { return b.Granted.Sub(b.Spent).Sub(b.Reserved) }

// Errors.
var (
	// ErrInsufficient is the sentinel a refused reservation wraps; the
	// concrete error is a *InsufficientError carrying the balance.
	ErrInsufficient = errors.New("ledger: insufficient budget")
	// ErrLocked means another process holds the ledger directory.
	ErrLocked = errors.New("ledger: directory is locked by another process")
	// ErrClosed is returned by every operation after Close.
	ErrClosed = errors.New("ledger: closed")
	// ErrUnknownReservation is returned by Commit/Release of a hold the
	// ledger does not know (already settled, or never reserved).
	ErrUnknownReservation = errors.New("ledger: unknown reservation")
	// errCorrupt marks an unreadable snapshot — unlike a torn journal
	// tail this is real corruption and Open refuses to guess.
	errCorrupt = errors.New("ledger: corrupt snapshot")
)

// InsufficientError is the typed form of a refused reservation: the
// principal, its balance at refusal time, and the requested cost. It
// wraps ErrInsufficient.
type InsufficientError struct {
	Principal string
	Balance   Balance
	Requested Cost
}

func (e *InsufficientError) Error() string {
	return fmt.Sprintf("%v: principal %q requested %v, remaining %v (granted %v, spent %v, reserved %v)",
		ErrInsufficient, e.Principal, e.Requested, e.Balance.Remaining(),
		e.Balance.Granted, e.Balance.Spent, e.Balance.Reserved)
}

// Unwrap makes errors.Is(err, ErrInsufficient) hold.
func (e *InsufficientError) Unwrap() error { return ErrInsufficient }

// Options configures Open.
type Options struct {
	// SnapshotEvery is the number of journal records between automatic
	// compactions (snapshot + journal truncation). 0 means the default of
	// 1024; negative disables automatic compaction (tests).
	SnapshotEvery int
	// NoSync skips the fsync after each journal append. Only for tests
	// and benchmarks that measure the non-fsync cost — a real deployment
	// must never set it, since an un-synced record can vanish in a crash
	// after Reserve has already returned success.
	NoSync bool
}

const defaultSnapshotEvery = 1024

// account is one principal's live state. reserved is derived (the sum
// over outstanding holds) but kept materialized for O(1) admission.
type account struct {
	granted  Cost
	spent    Cost
	reserved Cost
}

// hold is one outstanding reservation.
type hold struct {
	principal string
	cost      Cost
}

// Ledger is the open, exclusively locked ledger. All methods are safe
// for concurrent use; admission and journal appends are serialized under
// one mutex so racing reservations can never jointly over-spend.
type Ledger struct {
	dir  string
	opts Options

	mu            sync.Mutex
	closed        bool
	lock          *os.File
	journal       *os.File
	seq           uint64 // last sequence number written (or folded into the snapshot)
	recsSinceSnap int
	accounts      map[string]*account
	holds         map[uint64]hold
}

// Open opens (creating if necessary) the ledger in dir, takes the
// exclusive process lock, loads the snapshot, replays the journal —
// truncating a torn tail, skipping records the snapshot already folded
// in — and finalizes any dangling holds left by a crashed process as
// committed spends (see the package comment for why that direction is
// the safe one).
func Open(dir string, opts Options) (*Ledger, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	lock, err := acquireLock(filepath.Join(dir, "LOCK"))
	if err != nil {
		return nil, err
	}
	l := &Ledger{
		dir:      dir,
		opts:     opts,
		lock:     lock,
		accounts: make(map[string]*account),
		holds:    make(map[uint64]hold),
	}
	if err := l.loadSnapshot(); err != nil {
		releaseLock(lock)
		return nil, err
	}
	if err := l.openAndReplayJournal(); err != nil {
		releaseLock(lock)
		return nil, err
	}
	// Dangling holds can only belong to a dead process: we hold the
	// exclusive lock, so no live process can be mid-query. Finalize them
	// as spends, durably — each conversion is an ordinary commit record,
	// so a crash during recovery just re-runs recovery.
	if err := l.settleDanglingLocked(); err != nil {
		l.journal.Close()
		releaseLock(lock)
		return nil, err
	}
	return l, nil
}

// settleDanglingLocked commits every outstanding hold (crash recovery;
// called from Open before the ledger is shared, hence no locking).
func (l *Ledger) settleDanglingLocked() error {
	if len(l.holds) == 0 {
		return nil
	}
	ids := make([]uint64, 0, len(l.holds))
	for id := range l.holds {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		rec := record{op: opCommit, resID: id}
		if err := l.appendLocked(&rec); err != nil {
			return err
		}
		l.applyLocked(&rec)
	}
	return nil
}

// Close releases the journal handle and the process lock. The ledger
// state is already durable; Close loses nothing.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var first error
	if err := l.journal.Close(); err != nil {
		first = err
	}
	if err := releaseLock(l.lock); err != nil && first == nil {
		first = err
	}
	return first
}

// Grant extends principal's total budget by c, durably. Grants are
// additive and never revoked — privacy already spent cannot be restored,
// so the only safe direction for a live ledger is up.
func (l *Ledger) Grant(principal string, c Cost) error {
	if err := validPrincipal(principal); err != nil {
		return err
	}
	if err := c.validate(); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	rec := record{op: opGrant, principal: principal, cost: c}
	if err := l.appendLocked(&rec); err != nil {
		return err
	}
	l.applyLocked(&rec)
	return l.maybeCompactLocked()
}

// Reservation is one durable hold placed by Reserve, to be settled
// exactly once with Commit or Release.
type Reservation struct {
	l         *Ledger
	id        uint64
	principal string
	cost      Cost
}

// ID is the hold's stable identifier (the sequence number of its journal
// record) — what diagnostics and tests key on.
func (r *Reservation) ID() uint64 { return r.id }

// Principal returns the account the hold is against.
func (r *Reservation) Principal() string { return r.principal }

// Cost returns the held amount.
func (r *Reservation) Cost() Cost { return r.cost }

// Reserve places a durable hold of c against principal, refusing with a
// *InsufficientError (wrapping ErrInsufficient) when spent+reserved+c no
// longer fits the principal's grant. A principal that was never granted
// anything has a zero budget and refuses every non-zero hold. Reserve
// returns only after the hold's record is fsynced: once the caller sees
// success, no crash can make the hold vanish.
func (l *Ledger) Reserve(principal string, c Cost) (*Reservation, error) {
	if err := validPrincipal(principal); err != nil {
		return nil, err
	}
	if err := c.validate(); err != nil {
		return nil, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	acct := l.accounts[principal]
	var bal Balance
	if acct != nil {
		bal = Balance{Granted: acct.granted, Spent: acct.spent, Reserved: acct.reserved}
	}
	if !fits(bal.Granted, bal.Spent.Add(bal.Reserved), c) {
		return nil, &InsufficientError{Principal: principal, Balance: bal, Requested: c}
	}
	rec := record{op: opReserve, principal: principal, cost: c}
	if err := l.appendLocked(&rec); err != nil {
		return nil, err
	}
	l.applyLocked(&rec)
	if err := l.maybeCompactLocked(); err != nil {
		return nil, err
	}
	return &Reservation{l: l, id: rec.seq, principal: principal, cost: c}, nil
}

// Commit finalizes the hold as a spend, durably.
func (r *Reservation) Commit() error { return r.l.settle(r.id, opCommit) }

// Release returns the hold to the principal's available budget, durably.
// Only legitimate when the mechanism the hold was for provably never ran.
func (r *Reservation) Release() error { return r.l.settle(r.id, opRelease) }

// settle writes and applies the commit/release record for hold id.
func (l *Ledger) settle(id uint64, op uint8) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if _, ok := l.holds[id]; !ok {
		return fmt.Errorf("%w: id %d", ErrUnknownReservation, id)
	}
	rec := record{op: op, resID: id}
	if err := l.appendLocked(&rec); err != nil {
		return err
	}
	l.applyLocked(&rec)
	return l.maybeCompactLocked()
}

// Balance returns principal's account state; a principal the ledger has
// never seen reports a zero balance with ok=false.
func (l *Ledger) Balance(principal string) (bal Balance, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	acct := l.accounts[principal]
	if acct == nil {
		return Balance{}, false
	}
	return Balance{Granted: acct.granted, Spent: acct.spent, Reserved: acct.reserved}, true
}

// Principals returns every account name, sorted.
func (l *Ledger) Principals() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.accounts))
	for p := range l.accounts {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Outstanding returns the number of unsettled holds (diagnostics).
func (l *Ledger) Outstanding() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.holds)
}

// Compact forces a snapshot + journal truncation now.
func (l *Ledger) Compact() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.compactLocked()
}

// maybeCompactLocked runs the automatic compaction policy.
func (l *Ledger) maybeCompactLocked() error {
	every := l.opts.SnapshotEvery
	if every == 0 {
		every = defaultSnapshotEvery
	}
	if every < 0 || l.recsSinceSnap < every {
		return nil
	}
	return l.compactLocked()
}

// applyLocked folds one decoded record into the materialized state.
// Shared verbatim by the live mutation paths and journal replay, so the
// replayed state is the live state by construction.
func (l *Ledger) applyLocked(rec *record) {
	if rec.seq > l.seq {
		l.seq = rec.seq
	}
	switch rec.op {
	case opGrant:
		acct := l.ensureAccountLocked(rec.principal)
		acct.granted = acct.granted.Add(rec.cost)
	case opReserve:
		acct := l.ensureAccountLocked(rec.principal)
		acct.reserved = acct.reserved.Add(rec.cost)
		l.holds[rec.seq] = hold{principal: rec.principal, cost: rec.cost}
	case opCommit:
		if h, ok := l.holds[rec.resID]; ok {
			acct := l.ensureAccountLocked(h.principal)
			acct.reserved = acct.reserved.Sub(h.cost)
			acct.spent = acct.spent.Add(h.cost)
			delete(l.holds, rec.resID)
		}
	case opRelease:
		if h, ok := l.holds[rec.resID]; ok {
			acct := l.ensureAccountLocked(h.principal)
			acct.reserved = acct.reserved.Sub(h.cost)
			delete(l.holds, rec.resID)
		}
	}
}

func (l *Ledger) ensureAccountLocked(principal string) *account {
	acct := l.accounts[principal]
	if acct == nil {
		acct = &account{}
		l.accounts[principal] = acct
	}
	return acct
}

// maxPrincipalLen bounds principal names so a journal record's size is
// bounded (the replay reader rejects larger claimed records as corrupt).
const maxPrincipalLen = 256

func validPrincipal(p string) error {
	if p == "" {
		return errors.New("ledger: empty principal")
	}
	if len(p) > maxPrincipalLen {
		return fmt.Errorf("ledger: principal longer than %d bytes", maxPrincipalLen)
	}
	return nil
}
