package ledger

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func open(t *testing.T, dir string, opts Options) *Ledger {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func costEq(a, b Cost) bool {
	return math.Abs(a.Epsilon-b.Epsilon) < 1e-12 && math.Abs(a.Delta-b.Delta) < 1e-12
}

// TestReserveCommitRelease: the two-phase lifecycle moves amounts between
// reserved and spent exactly, and settling a hold twice is refused.
func TestReserveCommitRelease(t *testing.T) {
	l := open(t, t.TempDir(), Options{})
	if err := l.Grant("alice", Cost{Epsilon: 10, Delta: 1e-4}); err != nil {
		t.Fatal(err)
	}

	r1, err := l.Reserve("alice", Cost{Epsilon: 3, Delta: 2e-5})
	if err != nil {
		t.Fatal(err)
	}
	bal, ok := l.Balance("alice")
	if !ok || !costEq(bal.Reserved, Cost{Epsilon: 3, Delta: 2e-5}) || !bal.Spent.IsZero() {
		t.Fatalf("after reserve: %+v", bal)
	}
	if err := r1.Commit(); err != nil {
		t.Fatal(err)
	}
	bal, _ = l.Balance("alice")
	if !costEq(bal.Spent, Cost{Epsilon: 3, Delta: 2e-5}) || !bal.Reserved.IsZero() {
		t.Fatalf("after commit: %+v", bal)
	}
	if err := r1.Commit(); !errors.Is(err, ErrUnknownReservation) {
		t.Fatalf("double commit: %v, want ErrUnknownReservation", err)
	}

	r2, err := l.Reserve("alice", Cost{Epsilon: 5, Delta: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.Release(); err != nil {
		t.Fatal(err)
	}
	bal, _ = l.Balance("alice")
	if !bal.Reserved.IsZero() || !costEq(bal.Spent, Cost{Epsilon: 3, Delta: 2e-5}) {
		t.Fatalf("after release: %+v", bal)
	}
	if err := r2.Release(); !errors.Is(err, ErrUnknownReservation) {
		t.Fatalf("double release: %v, want ErrUnknownReservation", err)
	}
	if !costEq(bal.Remaining(), Cost{Epsilon: 7, Delta: 8e-5}) {
		t.Fatalf("Remaining = %v", bal.Remaining())
	}
}

// TestAdmissionRefusal: reservations past the grant are refused with the
// typed *InsufficientError, outstanding holds count against admission,
// an unknown principal has a zero budget, and a grant sized for exactly
// k queries admits all k (the float-slack rule).
func TestAdmissionRefusal(t *testing.T) {
	l := open(t, t.TempDir(), Options{})
	if err := l.Grant("p", Cost{Epsilon: 2, Delta: 2e-6}); err != nil {
		t.Fatal(err)
	}

	hold, err := l.Reserve("p", Cost{Epsilon: 1.5, Delta: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	// The outstanding hold leaves only 0.5: a 1.0 reservation must fail
	// even though spent is still zero.
	_, err = l.Reserve("p", Cost{Epsilon: 1, Delta: 1e-6})
	var ie *InsufficientError
	if !errors.As(err, &ie) || !errors.Is(err, ErrInsufficient) {
		t.Fatalf("over-reserve: %v, want *InsufficientError", err)
	}
	if ie.Principal != "p" || !costEq(ie.Requested, Cost{Epsilon: 1, Delta: 1e-6}) {
		t.Fatalf("error fields: %+v", ie)
	}
	if err := hold.Release(); err != nil {
		t.Fatal(err)
	}

	if _, err := l.Reserve("nobody", Cost{Epsilon: 0.1, Delta: 0}); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("unknown principal reserve: %v, want ErrInsufficient", err)
	}

	// Exactly-k admission: 10 queries of ε=0.2, δ=2e-7 against the grant.
	for i := 0; i < 10; i++ {
		r, err := l.Reserve("p", Cost{Epsilon: 0.2, Delta: 2e-7})
		if err != nil {
			t.Fatalf("query %d refused: %v", i, err)
		}
		if err := r.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Reserve("p", Cost{Epsilon: 0.2, Delta: 2e-7}); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("11th query: %v, want ErrInsufficient", err)
	}
}

// TestPersistenceAcrossReopen: committed spends and grants survive
// close + reopen bit-exactly, and a budget refusal therefore persists.
func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	l := open(t, dir, Options{})
	if err := l.Grant("alice", Cost{Epsilon: 1, Delta: 1e-6}); err != nil {
		t.Fatal(err)
	}
	r, err := l.Reserve("alice", Cost{Epsilon: 1, Delta: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := open(t, dir, Options{})
	bal, ok := l2.Balance("alice")
	if !ok || bal.Granted != (Cost{Epsilon: 1, Delta: 1e-6}) || bal.Spent != (Cost{Epsilon: 1, Delta: 1e-6}) {
		t.Fatalf("reopened balance: %+v", bal)
	}
	if _, err := l2.Reserve("alice", Cost{Epsilon: 0.5, Delta: 0}); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("refusal did not persist: %v", err)
	}
}

// TestDanglingHoldCommittedOnOpen: a hold left unsettled (simulating a
// crash between Reserve and Commit) is finalized as a spend by the next
// Open — the conservative direction that makes double-spending
// impossible — and the conversion itself is durable.
func TestDanglingHoldCommittedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l := open(t, dir, Options{})
	if err := l.Grant("p", Cost{Epsilon: 4, Delta: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Reserve("p", Cost{Epsilon: 3, Delta: 0}); err != nil {
		t.Fatal(err)
	}
	// Close without settling: the hold dangles exactly as after a crash.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := open(t, dir, Options{})
	bal, _ := l2.Balance("p")
	if !costEq(bal.Spent, Cost{Epsilon: 3, Delta: 0}) || !bal.Reserved.IsZero() {
		t.Fatalf("dangling hold not committed: %+v", bal)
	}
	if l2.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", l2.Outstanding())
	}
	// The finalization was journaled: a third open sees the same state.
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3 := open(t, dir, Options{})
	if bal, _ := l3.Balance("p"); !costEq(bal.Spent, Cost{Epsilon: 3, Delta: 0}) {
		t.Fatalf("finalization not durable: %+v", bal)
	}
}

// TestSingleWriterLock: a second Open of a live ledger directory fails
// with ErrLocked — the mechanism that keeps two daemons from jointly
// over-spending — and the lock is released by Close.
func TestSingleWriterLock(t *testing.T) {
	dir := t.TempDir()
	l := open(t, dir, Options{})
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrLocked) {
		t.Fatalf("second open: %v, want ErrLocked", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open after close: %v", err)
	}
	l2.Close()
}

// TestCompaction: automatic snapshots truncate the journal without
// changing materialized state, outstanding holds survive compaction,
// and reopen from snapshot+journal reproduces the exact balances.
func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	l := open(t, dir, Options{SnapshotEvery: 8})
	if err := l.Grant("a", Cost{Epsilon: 1000, Delta: 1e-3}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		r, err := l.Reserve("a", Cost{Epsilon: 1, Delta: 1e-8})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// A hold outstanding across a forced compaction must survive it.
	holdRes, err := l.Reserve("a", Cost{Epsilon: 2, Delta: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(filepath.Join(dir, "journal"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != 0 {
		t.Fatalf("journal not truncated after Compact: %d bytes", st.Size())
	}
	bal, _ := l.Balance("a")
	if !costEq(bal.Spent, Cost{Epsilon: 20, Delta: 20e-8}) || !costEq(bal.Reserved, Cost{Epsilon: 2, Delta: 0}) {
		t.Fatalf("post-compact balance: %+v", bal)
	}
	if err := holdRes.Release(); err != nil {
		t.Fatalf("releasing a hold that crossed a compaction: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := open(t, dir, Options{})
	bal2, _ := l2.Balance("a")
	if !costEq(bal2.Spent, bal.Spent) || !bal2.Reserved.IsZero() || bal2.Granted != bal.Granted {
		t.Fatalf("reopen after compaction: %+v, want spent %v", bal2, bal.Spent)
	}
}

// TestConcurrentReservesNeverOverspend: racing reservations across
// goroutines admit exactly as many as the grant affords — run under
// -race in CI.
func TestConcurrentReservesNeverOverspend(t *testing.T) {
	l := open(t, t.TempDir(), Options{NoSync: true})
	const affordable = 16
	if err := l.Grant("p", Cost{Epsilon: affordable, Delta: affordable * 1e-7}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	admitted := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				r, err := l.Reserve("p", Cost{Epsilon: 1, Delta: 1e-7})
				if err != nil {
					if !errors.Is(err, ErrInsufficient) {
						t.Errorf("unexpected reserve error: %v", err)
					}
					continue
				}
				mu.Lock()
				admitted++
				mu.Unlock()
				if err := r.Commit(); err != nil {
					t.Errorf("commit: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	if admitted != affordable {
		t.Fatalf("admitted %d reservations, want exactly %d", admitted, affordable)
	}
	bal, _ := l.Balance("p")
	if bal.Spent.Epsilon > affordable*(1+1e-9)+1e-9 {
		t.Fatalf("over-spent: %+v", bal)
	}
}

// TestValidation: malformed principals and costs are rejected before any
// journal write, and operations on a closed ledger fail with ErrClosed.
func TestValidation(t *testing.T) {
	l := open(t, t.TempDir(), Options{})
	if err := l.Grant("", Cost{Epsilon: 1}); err == nil {
		t.Error("empty principal accepted")
	}
	long := make([]byte, maxPrincipalLen+1)
	for i := range long {
		long[i] = 'x'
	}
	if err := l.Grant(string(long), Cost{Epsilon: 1}); err == nil {
		t.Error("oversized principal accepted")
	}
	for _, c := range []Cost{
		{Epsilon: -1}, {Epsilon: math.NaN()}, {Epsilon: math.Inf(1)},
		{Epsilon: 1, Delta: -0.5}, {Epsilon: 1, Delta: 1},
	} {
		if err := l.Grant("p", c); err == nil {
			t.Errorf("invalid cost %v accepted by Grant", c)
		}
		if _, err := l.Reserve("p", c); err == nil {
			t.Errorf("invalid cost %v accepted by Reserve", c)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Grant("p", Cost{Epsilon: 1}); !errors.Is(err, ErrClosed) {
		t.Errorf("Grant after Close: %v", err)
	}
	if _, err := l.Reserve("p", Cost{Epsilon: 1}); !errors.Is(err, ErrClosed) {
		t.Errorf("Reserve after Close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestCorruptSnapshotRefused: a snapshot whose checksum fails is real
// corruption — Open reports it rather than silently starting from an
// empty (budget-resetting!) state.
func TestCorruptSnapshotRefused(t *testing.T) {
	dir := t.TempDir()
	l := open(t, dir, Options{})
	if err := l.Grant("p", Cost{Epsilon: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "snapshot")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}

// TestManyPrincipals: accounting is independent per principal and
// Principals lists them sorted.
func TestManyPrincipals(t *testing.T) {
	l := open(t, t.TempDir(), Options{})
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("p%d", i)
		if err := l.Grant(name, Cost{Epsilon: float64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	r, err := l.Reserve("p3", Cost{Epsilon: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Reserve("p0", Cost{Epsilon: 2}); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("p0 over-reserve: %v", err)
	}
	if bal, _ := l.Balance("p1"); !bal.Spent.IsZero() {
		t.Fatalf("p3's spend leaked into p1: %+v", bal)
	}
	got := l.Principals()
	want := []string{"p0", "p1", "p2", "p3", "p4"}
	if len(got) != len(want) {
		t.Fatalf("Principals = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Principals = %v, want %v", got, want)
		}
	}
}
