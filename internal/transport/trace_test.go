package transport

import (
	"bytes"
	"context"
	"net"
	"strings"
	"testing"

	"privcluster/internal/geometry"
	"privcluster/internal/obs"
)

// dialTestShard opens one whole-dataset shard session against a fresh
// loopback server and returns the client, the server, and a cleanup.
func dialTestShard(t *testing.T, sopts ServerOptions) (*RemoteShard, *Server) {
	t.Helper()
	pts := testPoints(t, 77, 80, 2)
	ln := NewLoopbackNet()
	l, err := ln.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(sopts)
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	members := make([]int32, len(pts))
	for i := range members {
		members[i] = int32(i)
	}
	rs, err := DialShard(context.Background(), "srv", geometry.ShardConfig{
		Points: frameOf(t, pts), Members: members, Cell: testCellOptions(2),
	}, Options{Dial: func(ctx context.Context, addr string) (net.Conn, error) {
		return ln.Dial(ctx, addr)
	}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rs.Close() })
	return rs, srv
}

// TestTracePropagation: a query run under a client trace reaches the
// server carrying the same 16-byte ID — the server's retained span tree is
// found under the client's ID, holds a span per request type issued, and
// the structured log announces the ID once per connection.
func TestTracePropagation(t *testing.T) {
	var logBuf bytes.Buffer
	rs, srv := dialTestShard(t, ServerOptions{
		Log: obs.NewLogger(&logBuf, 0, 0),
	})

	tr := obs.NewTrace()
	ctx := obs.ContextWith(context.Background(), tr)
	if _, err := rs.PartialCounts(ctx, geometry.EpochFrozen, 0, 0.01, 5, false); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.DupCounts(ctx, geometry.EpochFrozen); err != nil {
		t.Fatal(err)
	}

	st := srv.Trace(tr.ID())
	if st == nil {
		t.Fatalf("server retained no trace under the client ID %s", tr.ID())
	}
	if st.ID() != tr.ID() {
		t.Fatalf("server trace ID = %s, want the client's %s", st.ID(), tr.ID())
	}
	names := make(map[string]bool)
	for _, s := range st.Spans() {
		names[s.Name] = true
	}
	if !names["rpc/partials"] || !names["rpc/dupcounts"] {
		t.Fatalf("server spans = %v, want rpc/partials and rpc/dupcounts", names)
	}

	logged := logBuf.String()
	if !strings.Contains(logged, tr.ID().String()) {
		t.Fatalf("server log does not mention the trace ID %s:\n%s", tr.ID(), logged)
	}
	if n := strings.Count(logged, tr.ID().String()); n != 1 {
		t.Fatalf("trace announced %d times on one connection, want once:\n%s", n, logged)
	}

	// An untraced call on the same v3 session must not attach to the trace.
	before := len(st.Spans())
	if _, err := rs.DupCounts(context.Background(), geometry.EpochFrozen); err != nil {
		t.Fatal(err)
	}
	if after := len(st.Spans()); after != before {
		t.Fatalf("untraced request grew the trace: %d -> %d spans", before, after)
	}
}

// TestV2Interop: a client pinned to protocol version 2 negotiates a v2
// session against the v3 server and gets bit-identical counts to a v3
// session — the trace field is a pure framing addition, invisible to
// results — and a traced context on a v2 session is silently dropped
// rather than wired.
func TestV2Interop(t *testing.T) {
	rsV3, _ := dialTestShard(t, ServerOptions{})
	v3counts, err := rsV3.PartialCounts(context.Background(), geometry.EpochFrozen, 0, 0.01, 5, false)
	if err != nil {
		t.Fatal(err)
	}

	helloVersion = 2
	defer func() { helloVersion = ProtocolVersion }()
	rsV2, srv2 := dialTestShard(t, ServerOptions{})
	rsV2.mu.Lock()
	v := rsV2.version
	rsV2.mu.Unlock()
	if v != 2 {
		t.Fatalf("pinned client negotiated version %d, want 2", v)
	}

	tr := obs.NewTrace()
	ctx := obs.ContextWith(context.Background(), tr)
	v2counts, err := rsV2.PartialCounts(ctx, geometry.EpochFrozen, 0, 0.01, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(v2counts) != len(v3counts) {
		t.Fatalf("v2 session returned %d counts, v3 %d", len(v2counts), len(v3counts))
	}
	for i := range v2counts {
		if v2counts[i] != v3counts[i] {
			t.Fatalf("count[%d] = %d on v2, %d on v3", i, v2counts[i], v3counts[i])
		}
	}
	if st := srv2.Trace(tr.ID()); st != nil {
		t.Fatalf("a v2 session must not carry the trace, but the server retained %s", st.ID())
	}
}
