package transport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"privcluster/internal/geometry"
	"privcluster/internal/vec"
)

// startReplicaServers brings up count servers on one loopback net and
// returns their addresses, the servers (so tests can kill them), and the
// raw dial func.
func startReplicaServers(t *testing.T, count int) ([]string, []*Server, DialFunc) {
	t.Helper()
	ln := NewLoopbackNet()
	addrs := make([]string, count)
	servers := make([]*Server, count)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("replica-%d", i)
		l, err := ln.Listen(addrs[i])
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = NewServer(ServerOptions{})
		go servers[i].Serve(l)
		srv := servers[i]
		t.Cleanup(func() { srv.Close() })
	}
	return addrs, servers, ln.Dial
}

// replicatedIndex builds a backend-mode ShardedIndex over the placement
// through the real wire protocol.
func replicatedIndex(t *testing.T, pts []vec.Vector, parts [][]string, ropts ReplicaOptions) *geometry.ShardedIndex {
	t.Helper()
	d := pts[0].Dim()
	ix, err := geometry.NewShardedIndexBackends(context.Background(), frameOf(t, pts), geometry.ShardedIndexOptions{
		Shards: len(parts), Policy: geometry.ShardMorton, Cell: testCellOptions(d),
	}, ReplicatedShardDialer(parts, ropts))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	return ix
}

// partition slices addrs into p partitions of r replicas each.
func partition(addrs []string, p, r int) [][]string {
	parts := make([][]string, p)
	for i := range parts {
		parts[i] = addrs[i*r : (i+1)*r]
	}
	return parts
}

// TestReplicatedDialerEquivalence is the transport-layer tentpole pin: a
// ShardedIndex over the replicated dialer — R replicas per partition, with
// and without hedging — answers every query bit-identically to a local
// CellIndex. Which replica serves a call is invisible to releases.
func TestReplicatedDialerEquivalence(t *testing.T) {
	pts := testPoints(t, 41, 500, 2)
	ref, err := geometry.NewCellIndex(pts, testCellOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	tt := len(pts) / 3
	refStep, err := ref.BuildLStep(context.Background(), tt)
	if err != nil {
		t.Fatal(err)
	}
	const nparts = 2
	for _, r := range []int{1, 2, 3} {
		for _, hedge := range []time.Duration{0, time.Nanosecond} {
			addrs, _, dial := startReplicaServers(t, nparts*r)
			ix := replicatedIndex(t, pts, partition(addrs, nparts, r), ReplicaOptions{
				Options:    Options{Dial: dial},
				HedgeDelay: hedge,
				// No prober: nothing goes down in this test, and CI runs
				// enough cases that idle tickers would just add noise.
				ProbeInterval: -1,
			})
			step, err := ix.BuildLStep(context.Background(), tt)
			if err != nil {
				t.Fatalf("R=%d hedge=%v: BuildLStep: %v", r, hedge, err)
			}
			assertStepEqual(t, step, refStep)
			gi, gr, err1 := ix.TwoApprox(tt)
			wi, wr, err2 := ref.TwoApprox(tt)
			if gi != wi || gr != wr || (err1 == nil) != (err2 == nil) {
				t.Fatalf("R=%d hedge=%v: TwoApprox = (%d, %v, %v), want (%d, %v, %v)",
					r, hedge, gi, gr, err1, wi, wr, err2)
			}
		}
	}
}

func assertStepEqual(t *testing.T, got, want *geometry.LStep) {
	t.Helper()
	if len(got.Breaks) != len(want.Breaks) {
		t.Fatalf("LStep has %d breaks, want %d", len(got.Breaks), len(want.Breaks))
	}
	for k := range got.Breaks {
		if got.Breaks[k] != want.Breaks[k] || got.Vals[k] != want.Vals[k] {
			t.Fatalf("LStep[%d] = (%v, %v), want (%v, %v)",
				k, got.Breaks[k], got.Vals[k], want.Breaks[k], want.Vals[k])
		}
	}
}

// chokeConn passes bytes through until the shared read budget runs dry,
// then kills the connection — a server death from the client's viewpoint.
type chokeConn struct {
	net.Conn
	budget *atomic.Int64
	dead   *atomic.Bool
}

func (c *chokeConn) Read(p []byte) (int, error) {
	if c.dead.Load() {
		c.Conn.Close()
		return 0, io.ErrClosedPipe
	}
	n, err := c.Conn.Read(p)
	if c.budget.Add(-int64(n)) < 0 {
		c.dead.Store(true)
		c.Conn.Close()
		if err == nil {
			err = io.ErrClosedPipe
		}
	}
	return n, err
}

// TestReplicatedKillMidSweep kills one replica partway through the
// LStep sweep — its connection dies after a byte budget and later dials to
// it are refused, so the client's own transport retry cannot resurrect it
// — and requires the sweep to fail over to the sibling replica with a
// bit-identical step function. Run under -race in CI; t.Cleanup closes the
// index, so leaked replica goroutines would trip the detector or hang
// shutdown.
func TestReplicatedKillMidSweep(t *testing.T) {
	pts := testPoints(t, 43, 500, 2)
	ref, err := geometry.NewCellIndex(pts, testCellOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	tt := len(pts) / 3
	refStep, err := ref.BuildLStep(context.Background(), tt)
	if err != nil {
		t.Fatal(err)
	}
	// Budgets chosen to kill the victim at different stages: during its
	// very first handshake (the build must then come up on the sibling),
	// right after the build's DupCounts pass, and partway into the sweep's
	// PartialCounts responses (each carries 4·n ≈ 2000 payload bytes).
	for _, budget := range []int64{10, 3000, 9000} {
		addrs, _, dial := startReplicaServers(t, 4)
		victim := addrs[0] // primary replica of partition 0
		var remaining atomic.Int64
		remaining.Store(budget)
		var dead atomic.Bool
		killingDial := func(ctx context.Context, addr string) (net.Conn, error) {
			if addr != victim {
				return dial(ctx, addr)
			}
			if dead.Load() {
				return nil, fmt.Errorf("connect %s: connection refused", addr)
			}
			c, err := dial(ctx, addr)
			if err != nil {
				return nil, err
			}
			return &chokeConn{Conn: c, budget: &remaining, dead: &dead}, nil
		}
		ix := replicatedIndex(t, pts, partition(addrs, 2, 2), ReplicaOptions{
			Options:       Options{Dial: killingDial},
			ProbeInterval: -1,
		})
		step, err := ix.BuildLStep(context.Background(), tt)
		if err != nil {
			t.Fatalf("budget=%d: BuildLStep through replica death: %v", budget, err)
		}
		assertStepEqual(t, step, refStep)
		if !dead.Load() {
			t.Fatalf("budget=%d: victim outlived the sweep — the kill never happened", budget)
		}
	}
}

// TestReplicatedAllReplicasDead: when every replica of a partition has
// died, a query surfaces one typed *transport.Error promptly instead of
// hanging or minting partial sums.
func TestReplicatedAllReplicasDead(t *testing.T) {
	pts := testPoints(t, 47, 300, 2)
	addrs, servers, dial := startReplicaServers(t, 2)
	ix := replicatedIndex(t, pts, [][]string{addrs}, ReplicaOptions{
		Options:       Options{Dial: dial},
		ProbeInterval: -1,
	})
	// Warm query while both replicas live.
	if _, err := ix.BuildLStep(context.Background(), len(pts)/3); err != nil {
		t.Fatal(err)
	}
	for _, srv := range servers {
		srv.Close()
	}
	start := time.Now()
	_, err := ix.BuildLStep(context.Background(), len(pts)/3)
	if err == nil {
		t.Fatal("BuildLStep succeeded with every replica dead")
	}
	var te *Error
	if !errors.As(err, &te) {
		t.Fatalf("all-dead error is %T (%v), want *transport.Error", err, err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("all-dead error took %v to surface", elapsed)
	}
}

// TestReplicatedDialerSingleReplica: a one-replica partition is served by
// a plain RemoteShard — no wrapper, no prober — so the pre-placement
// deployments keep exactly their old behavior (including the client's own
// transparent reconnect).
func TestReplicatedDialerSingleReplica(t *testing.T) {
	pts := testPoints(t, 53, 200, 2)
	addrs, _, dial := startReplicaServers(t, 2)
	d := pts[0].Dim()
	cellOpts := testCellOptions(d)
	dialer := ReplicatedShardDialer(partition(addrs, 2, 1), ReplicaOptions{Options: Options{Dial: dial}})
	var got geometry.ShardBackend
	ix, err := geometry.NewShardedIndexBackends(context.Background(), frameOf(t, pts), geometry.ShardedIndexOptions{
		Shards: 2, Policy: geometry.ShardMorton, Cell: cellOpts,
	}, func(ctx context.Context, shard int, cfg geometry.ShardConfig) (geometry.ShardBackend, error) {
		be, err := dialer(ctx, shard, cfg)
		if shard == 0 && err == nil {
			got = be
		}
		return be, err
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if _, ok := got.(*RemoteShard); !ok {
		t.Fatalf("single-replica partition served by %T, want *RemoteShard", got)
	}

	// An empty replica set is refused with a typed dial error.
	_, err = ReplicatedShardDialer([][]string{{}}, ReplicaOptions{Options: Options{Dial: dial}})(
		context.Background(), 0, geometry.ShardConfig{})
	var te *Error
	if !errors.As(err, &te) || te.Kind != KindDial {
		t.Fatalf("empty replica set: err = %v, want *Error{Kind: KindDial}", err)
	}
}
