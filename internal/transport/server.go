package transport

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"privcluster/internal/geometry"
	"privcluster/internal/obs"
	"privcluster/internal/vec"
)

// ServerOptions configures a shard server.
type ServerOptions struct {
	// Points preloads the server's copy of the global point set (the
	// shardserver -csv path). Handshakes may then omit the points and
	// only ship member ids; the server verifies the handshake's count and
	// dimension against the preloaded data. Handshakes that do carry
	// points always use the shipped ones.
	Points *vec.Frame
	// Workers bounds the worker pools of the hosted shards' count passes
	// (0 = GOMAXPROCS). Worker count never affects results — only how
	// fast this server produces them.
	Workers int
	// Logf, when set, receives connection-level diagnostics. The server
	// is silent without it.
	Logf func(format string, args ...any)
	// Log, when set, receives structured trace-correlation lines: one per
	// new client trace ID seen on a connection (version-3 sessions), so an
	// operator can grep a shard server's output for the trace ID a client
	// printed. Lines carry IDs, addresses and counts — never data.
	Log *obs.Logger
}

// Server hosts shards behind the wire protocol. Each connection carries
// one shard session: the OPEN handshake builds a geometry.LocalShard (or,
// for mutable sessions, a geometry.MutableLocalShard) for the requested
// member set, and subsequent requests are answered from it. One server
// process therefore hosts as many shards as clients open against it — a
// ShardedIndex with S remote shards may point all S backends at one
// address or spread them over a fleet.
//
// Shutdown is graceful: the listeners close first (no new sessions), idle
// connections are torn down, in-flight requests run to completion until
// the shutdown context expires, then everything remaining is cut.
type Server struct {
	opts ServerOptions

	ctx  context.Context // server lifetime: cancelled by Close/forced Shutdown
	stop context.CancelFunc

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[*serverConn]struct{}
	wg        sync.WaitGroup
	shutdown  bool

	sumOnce sync.Once
	sum     uint64 // checksum of the preloaded points (see PointsChecksum)

	// traces retains the server-side span trees of recently traced sessions
	// (keyed by the client's propagated trace ID) for diagnostics.
	traces *obs.TraceRing
}

// pointsChecksum memoizes the preloaded data's checksum — O(n·d) once,
// not per handshake.
func (s *Server) pointsChecksum() uint64 {
	s.sumOnce.Do(func() { s.sum = PointsChecksum(s.opts.Points) })
	return s.sum
}

// NewServer returns a server ready to Serve listeners.
func NewServer(opts ServerOptions) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		opts:      opts,
		ctx:       ctx,
		stop:      cancel,
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[*serverConn]struct{}),
		traces:    obs.NewTraceRing(64),
	}
}

// Trace returns the retained server-side trace for a propagated client
// trace ID, or nil when it has aged out of the ring (or never arrived).
func (s *Server) Trace(id obs.TraceID) *obs.Trace { return s.traces.Get(id) }

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// Serve accepts connections on l until the listener fails or the server
// shuts down; it always returns a non-nil error (ErrClosed after
// Shutdown/Close). Serve may be called on several listeners concurrently.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		l.Close()
		return ErrClosed
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			down := s.shutdown
			s.mu.Unlock()
			if down {
				return ErrClosed
			}
			return err
		}
		sc := &serverConn{srv: s, conn: conn}
		s.mu.Lock()
		if s.shutdown {
			s.mu.Unlock()
			conn.Close()
			return ErrClosed
		}
		s.conns[sc] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go sc.serve()
	}
}

// Shutdown stops the server gracefully: close listeners, drop idle
// connections, let in-flight requests finish. When ctx expires first, the
// remaining connections are force-closed and ctx.Err() is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.shutdown = true
	for l := range s.listeners {
		l.Close()
	}
	for sc := range s.conns {
		if !sc.busy.Load() {
			sc.conn.Close()
		}
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.stop() // cancel in-flight shard computations
		s.mu.Lock()
		for sc := range s.conns {
			sc.conn.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// Close shuts the server down immediately: listeners and connections
// close, in-flight computations are cancelled.
func (s *Server) Close() error {
	s.mu.Lock()
	s.shutdown = true
	s.stop()
	for l := range s.listeners {
		l.Close()
	}
	for sc := range s.conns {
		sc.conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// serverConn is one connection: handshake state plus the shard session it
// opened — exactly one of shard (immutable) or mshard (mutable) after a
// successful OPEN. A mutable session's state lives and dies with the
// connection: there is no session resumption, which is also why the client
// never auto-reconnects a mutable backend.
type serverConn struct {
	srv  *Server
	conn net.Conn
	busy atomic.Bool // a request is being served (graceful-shutdown hint)

	shard   *geometry.LocalShard
	mshard  *geometry.MutableLocalShard
	n       int    // global point count of the session (at open, for mutable)
	version uint16 // negotiated protocol version (0 until HELLO)

	// trace mirrors the client's current query trace (version-3 sessions):
	// one server-side span tree per propagated trace ID, announced in the
	// structured log on first sight and retained in the server's ring.
	trace *obs.Trace
}

func (sc *serverConn) serve() {
	defer func() {
		sc.conn.Close()
		if sc.mshard != nil {
			sc.mshard.Close()
		}
		sc.srv.mu.Lock()
		delete(sc.srv.conns, sc)
		sc.srv.mu.Unlock()
		sc.srv.wg.Done()
	}()
	br := bufio.NewReaderSize(sc.conn, 1<<16)
	bw := bufio.NewWriterSize(sc.conn, 1<<16)

	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			return // peer went away (or shutdown closed us)
		}
		sc.busy.Store(true)
		respType, resp, herr := sc.handle(typ, payload)
		if herr != nil {
			sc.srv.logf("transport: %v: %v", sc.conn.RemoteAddr(), herr)
			werr := writeFrame(bw, msgError, encodeError(herr))
			sc.busy.Store(false)
			if werr != nil || herr.fatal {
				return
			}
			continue
		}
		werr := writeFrame(bw, respType, resp)
		sc.busy.Store(false)
		if werr != nil {
			return
		}
	}
}

// wireError is a server-side failure on its way into a msgError frame.
type wireError struct {
	code  uint16
	msg   string
	fatal bool // close the connection after reporting
}

func (e *wireError) Error() string { return e.msg }

func encodeError(e *wireError) []byte {
	w := &wbuf{}
	w.u16(e.code)
	w.str(e.msg)
	return w.b
}

// msgName names a request type for span and log labels.
func msgName(typ byte) string {
	switch typ {
	case msgPartials:
		return "partials"
	case msgCountBatch:
		return "countbatch"
	case msgDupCounts:
		return "dupcounts"
	case msgAppend:
		return "append"
	case msgDelete:
		return "delete"
	case msgEpochGet:
		return "epoch"
	case msgMerge:
		return "merge"
	default:
		return fmt.Sprintf("msg%d", typ)
	}
}

// handle dispatches one request frame. On version-3 sessions the post-OPEN
// payload opens with the trace field; a propagated trace ID opens (or
// continues) the connection's server-side trace and the request runs under
// a span named for its type, so the server's view of a traced query lands
// in its log and trace ring under the client's ID. The trace never reaches
// the shard computation's results — only the context it runs under.
func (sc *serverConn) handle(typ byte, payload []byte) (byte, []byte, *wireError) {
	ctx := sc.srv.ctx
	var span *obs.Span
	if sc.version >= 3 && typ != msgHello && typ != msgOpen {
		if len(payload) < 1 {
			return 0, nil, &wireError{code: codeBadRequest, fatal: true, msg: "missing trace field"}
		}
		switch payload[0] {
		case 0:
			payload = payload[1:]
		case 1:
			if len(payload) < 17 {
				return 0, nil, &wireError{code: codeBadRequest, fatal: true, msg: "truncated trace field"}
			}
			var id obs.TraceID
			copy(id[:], payload[1:17])
			payload = payload[17:]
			if sc.trace.ID() != id {
				sc.trace = obs.NewTraceWith(id)
				sc.srv.traces.Add(sc.trace)
				sc.srv.opts.Log.Info("traced session",
					"trace", id.String(), "remote", sc.conn.RemoteAddr().String())
			}
			ctx = obs.ContextWith(ctx, sc.trace)
			ctx, span = obs.StartSpan(ctx, "rpc/"+msgName(typ))
		default:
			return 0, nil, &wireError{code: codeBadRequest, fatal: true, msg: "malformed trace field"}
		}
	}
	respType, resp, herr := sc.dispatch(ctx, typ, payload)
	span.End()
	return respType, resp, herr
}

func (sc *serverConn) dispatch(ctx context.Context, typ byte, payload []byte) (byte, []byte, *wireError) {
	switch typ {
	case msgHello:
		return sc.handleHello(payload)
	case msgOpen:
		return sc.handleOpen(payload)
	case msgPartials:
		return sc.handlePartials(ctx, payload)
	case msgCountBatch:
		return sc.handleCountBatch(ctx, payload)
	case msgDupCounts:
		return sc.handleDupCounts(ctx, payload)
	case msgAppend:
		return sc.handleAppend(ctx, payload)
	case msgDelete:
		return sc.handleDelete(ctx, payload)
	case msgEpochGet:
		return sc.handleEpochGet(ctx, payload)
	case msgMerge:
		return sc.handleMerge(ctx, payload)
	default:
		return 0, nil, &wireError{code: codeBadRequest, fatal: true,
			msg: fmt.Sprintf("unknown message type %d", typ)}
	}
}

func (sc *serverConn) handleHello(payload []byte) (byte, []byte, *wireError) {
	r := &rbuf{b: payload}
	magic := r.take(4)
	version := r.u16()
	if r.err != nil || [4]byte(magic) != wireMagic {
		return 0, nil, &wireError{code: codeBadRequest, fatal: true, msg: "not a shard-protocol hello"}
	}
	if version < minProtocolVersion {
		return 0, nil, &wireError{code: codeVersion, fatal: true,
			msg: fmt.Sprintf("server speaks protocol versions %d–%d, client sent %d", minProtocolVersion, ProtocolVersion, version)}
	}
	// Answer the highest version both sides speak: an old v2 client gets a
	// v2 session (no trace fields anywhere), a v3 client gets v3.
	v := version
	if v > ProtocolVersion {
		v = ProtocolVersion
	}
	sc.version = v
	w := &wbuf{}
	w.u16(v)
	return msgHelloOK, w.b, nil
}

func (sc *serverConn) handleOpen(payload []byte) (byte, []byte, *wireError) {
	r := &rbuf{b: payload}
	var cell geometry.CellIndexOptions
	cell.MinRadius = r.f64()
	cell.MaxRadius = r.f64()
	cell.LevelsPerOctave = int(r.u32())
	cell.CellsPerRadius = int(r.u32())
	cell.Workers = sc.srv.opts.Workers
	mutable := r.u8() == 1
	hasPoints := r.u8() == 1
	n := int(r.u32())
	dim := int(r.u16())
	if r.err != nil || n <= 0 || dim <= 0 {
		return 0, nil, &wireError{code: codeBadRequest, fatal: true, msg: "malformed open frame"}
	}
	var points *vec.Frame
	if hasPoints {
		points = r.frame(n, dim)
	} else {
		points = sc.srv.opts.Points
		if points == nil || points.N() == 0 {
			return 0, nil, &wireError{code: codeBadRequest, fatal: true,
				msg: "handshake omits points but the server has none preloaded"}
		}
		if points.N() != n || points.Dim() != dim {
			return 0, nil, &wireError{code: codeBadRequest, fatal: true,
				msg: fmt.Sprintf("preloaded data is %d points of dimension %d, handshake wants %d of %d",
					points.N(), points.Dim(), n, dim)}
		}
		sum := r.u64()
		if r.err != nil {
			return 0, nil, &wireError{code: codeBadRequest, fatal: true, msg: "malformed open frame"}
		}
		if have := sc.srv.pointsChecksum(); sum != have {
			return 0, nil, &wireError{code: codeBadRequest, fatal: true,
				msg: fmt.Sprintf("preloaded data checksum %016x does not match the client's %016x — "+
					"the server prepared different coordinates (check -csv, -grid and the domain bounds)", have, sum)}
		}
	}
	m := int(r.u32())
	if r.err != nil || m <= 0 || m > n {
		return 0, nil, &wireError{code: codeBadRequest, fatal: true, msg: "malformed open frame"}
	}
	members := make([]int32, m)
	for i := range members {
		members[i] = r.i32()
	}
	if r.err != nil || r.off != len(payload) {
		return 0, nil, &wireError{code: codeBadRequest, fatal: true, msg: "malformed open frame"}
	}
	cfg := geometry.ShardConfig{Points: points, Members: members, Cell: cell}
	if mutable {
		mshard, err := geometry.NewMutableLocalShard(cfg)
		if err != nil {
			return 0, nil, &wireError{code: codeBadRequest, fatal: true, msg: err.Error()}
		}
		sc.mshard = mshard
	} else {
		shard, err := geometry.NewLocalShard(cfg)
		if err != nil {
			return 0, nil, &wireError{code: codeBadRequest, fatal: true, msg: err.Error()}
		}
		sc.shard = shard
	}
	sc.n = n
	w := &wbuf{}
	w.u32(uint32(m))
	w.u32(uint32(n))
	return msgOpenOK, w.b, nil
}

// backend returns the session's query backend (immutable or mutable), or
// nil before a successful OPEN. The epoch discipline is enforced by the
// geometry layer: an immutable shard rejects any non-zero epoch, a mutable
// one rejects the frozen epoch, so a client speaking the wrong epoch
// grammar gets a typed remote error either way.
func (sc *serverConn) backend() geometry.ShardBackend {
	if sc.mshard != nil {
		return sc.mshard
	}
	if sc.shard != nil {
		return sc.shard
	}
	return nil
}

func (sc *serverConn) handlePartials(ctx context.Context, payload []byte) (byte, []byte, *wireError) {
	be := sc.backend()
	if be == nil {
		return 0, nil, &wireError{code: codeBadRequest, fatal: true, msg: "request before open"}
	}
	r := &rbuf{b: payload}
	epoch := r.u64()
	j := int(r.i32())
	radius := r.f64()
	limit := r.i32()
	exact := r.u8() == 1
	if r.err != nil || r.off != len(payload) {
		return 0, nil, &wireError{code: codeBadRequest, fatal: true, msg: "malformed partials frame"}
	}
	counts, err := be.PartialCounts(ctx, epoch, j, radius, limit, exact)
	if err != nil {
		return 0, nil, sc.computeError(err)
	}
	return msgCounts, encodeCounts(counts), nil
}

func (sc *serverConn) handleCountBatch(ctx context.Context, payload []byte) (byte, []byte, *wireError) {
	be := sc.backend()
	if be == nil {
		return 0, nil, &wireError{code: codeBadRequest, fatal: true, msg: "request before open"}
	}
	r := &rbuf{b: payload}
	epoch := r.u64()
	radius := r.f64()
	k := int(r.u32())
	if r.err != nil || k < 0 {
		return 0, nil, &wireError{code: codeBadRequest, fatal: true, msg: "malformed countbatch frame"}
	}
	dim := 0
	if k > 0 {
		rest := len(payload) - r.off
		if rest%(8*k) != 0 {
			return 0, nil, &wireError{code: codeBadRequest, fatal: true, msg: "malformed countbatch frame"}
		}
		dim = rest / (8 * k)
	}
	centers := r.vectors(k, dim)
	if r.err != nil || r.off != len(payload) {
		return 0, nil, &wireError{code: codeBadRequest, fatal: true, msg: "malformed countbatch frame"}
	}
	counts, err := be.CountBatch(ctx, epoch, centers, radius)
	if err != nil {
		return 0, nil, sc.computeError(err)
	}
	return msgCounts, encodeCounts(counts), nil
}

func (sc *serverConn) handleDupCounts(ctx context.Context, payload []byte) (byte, []byte, *wireError) {
	be := sc.backend()
	if be == nil {
		return 0, nil, &wireError{code: codeBadRequest, fatal: true, msg: "request before open"}
	}
	r := &rbuf{b: payload}
	epoch := r.u64()
	if r.err != nil || r.off != len(payload) {
		return 0, nil, &wireError{code: codeBadRequest, fatal: true, msg: "malformed dupcounts frame"}
	}
	counts, err := be.DupCounts(ctx, epoch)
	if err != nil {
		return 0, nil, sc.computeError(err)
	}
	return msgCounts, encodeCounts(counts), nil
}

// mutableSession gates the mutation handlers: mutating an immutable
// session is an out-of-contract request, fatal to the connection.
func (sc *serverConn) mutableSession() *wireError {
	if sc.shard == nil && sc.mshard == nil {
		return &wireError{code: codeBadRequest, fatal: true, msg: "request before open"}
	}
	if sc.mshard == nil {
		return &wireError{code: codeBadRequest, fatal: true, msg: "mutation on an immutable session"}
	}
	return nil
}

func (sc *serverConn) handleAppend(ctx context.Context, payload []byte) (byte, []byte, *wireError) {
	if werr := sc.mutableSession(); werr != nil {
		return 0, nil, werr
	}
	r := &rbuf{b: payload}
	k := int(r.u32())
	dim := int(r.u16())
	if r.err != nil || k <= 0 || dim <= 0 {
		return 0, nil, &wireError{code: codeBadRequest, fatal: true, msg: "malformed append frame"}
	}
	rows := r.frame(k, dim)
	ids := make([]uint64, k)
	for i := range ids {
		ids[i] = r.u64()
	}
	mcount := int(r.u32())
	if r.err != nil || mcount < 0 || mcount > k {
		return 0, nil, &wireError{code: codeBadRequest, fatal: true, msg: "malformed append frame"}
	}
	memberLocal := make([]int32, mcount)
	for i := range memberLocal {
		memberLocal[i] = r.i32()
	}
	if r.err != nil || r.off != len(payload) {
		return 0, nil, &wireError{code: codeBadRequest, fatal: true, msg: "malformed append frame"}
	}
	epoch, err := sc.mshard.Append(ctx, rows, memberLocal, ids)
	if err != nil {
		return 0, nil, sc.computeError(err)
	}
	return msgEpoch, encodeEpoch(epoch, sc.mshard.NPoints()), nil
}

func (sc *serverConn) handleDelete(ctx context.Context, payload []byte) (byte, []byte, *wireError) {
	if werr := sc.mutableSession(); werr != nil {
		return 0, nil, werr
	}
	r := &rbuf{b: payload}
	k := int(r.u32())
	if r.err != nil || k <= 0 || 8*k > len(payload)-r.off {
		return 0, nil, &wireError{code: codeBadRequest, fatal: true, msg: "malformed delete frame"}
	}
	ids := make([]uint64, k)
	for i := range ids {
		ids[i] = r.u64()
	}
	if r.err != nil || r.off != len(payload) {
		return 0, nil, &wireError{code: codeBadRequest, fatal: true, msg: "malformed delete frame"}
	}
	epoch, err := sc.mshard.Delete(ctx, ids)
	if err != nil {
		return 0, nil, sc.computeError(err)
	}
	return msgEpoch, encodeEpoch(epoch, sc.mshard.NPoints()), nil
}

func (sc *serverConn) handleEpochGet(ctx context.Context, payload []byte) (byte, []byte, *wireError) {
	if werr := sc.mutableSession(); werr != nil {
		return 0, nil, werr
	}
	if len(payload) != 0 {
		return 0, nil, &wireError{code: codeBadRequest, fatal: true, msg: "malformed epoch frame"}
	}
	epoch, err := sc.mshard.CurrentEpoch(ctx)
	if err != nil {
		return 0, nil, sc.computeError(err)
	}
	return msgEpoch, encodeEpoch(epoch, sc.mshard.NPoints()), nil
}

// handleMerge folds the session shard's append deltas under the server
// context, so a shutdown cancels an in-flight merge rather than waiting
// out an index rebuild.
func (sc *serverConn) handleMerge(ctx context.Context, payload []byte) (byte, []byte, *wireError) {
	if werr := sc.mutableSession(); werr != nil {
		return 0, nil, werr
	}
	if len(payload) != 0 {
		return 0, nil, &wireError{code: codeBadRequest, fatal: true, msg: "malformed merge frame"}
	}
	if err := sc.mshard.Merge(ctx); err != nil {
		return 0, nil, sc.computeError(err)
	}
	epoch, err := sc.mshard.CurrentEpoch(ctx)
	if err != nil {
		return 0, nil, sc.computeError(err)
	}
	return msgEpoch, encodeEpoch(epoch, sc.mshard.NPoints()), nil
}

// computeError maps a shard-side failure to a wire error. A cancelled
// server context means shutdown: report it as such and close.
func (sc *serverConn) computeError(err error) *wireError {
	if errors.Is(err, context.Canceled) {
		return &wireError{code: codeShuttingDown, fatal: true, msg: "server shutting down"}
	}
	return &wireError{code: codeInternal, msg: err.Error()}
}
