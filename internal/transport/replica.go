package transport

import (
	"context"
	"fmt"
	"time"

	"privcluster/internal/geometry"
)

// ReplicaOptions configures the replicated dialer: the per-connection
// client options plus the failover knobs geometry.ReplicatedShard takes.
type ReplicaOptions struct {
	// Options configures each replica's RemoteShard connection (dial
	// override, dial timeout, per-connection transport retries,
	// OmitPoints). Mutable must be false: mutable sessions are
	// connection-scoped and non-idempotent, so they cannot be replicated —
	// the placement layer refuses multi-replica mutable partitions
	// upstream.
	Options
	// HedgeDelay enables hedged reads (see
	// geometry.ReplicatedShardOptions.HedgeDelay). 0 disables.
	HedgeDelay time.Duration
	// ProbeInterval is the down-replica re-probe cadence (0 = default,
	// negative disables; see geometry.ReplicatedShardOptions).
	ProbeInterval time.Duration
}

// ReplicatedShardDialer adapts a placement — one replica address set per
// shard partition — to the geometry.ShardDialer seam: partition s is
// served by the replica set parts[s]. Every replica of a partition is
// dialed with the same ShardConfig, so its answers are bit-identical to
// its siblings' and failover/hedging cannot perturb releases.
//
// A single-replica partition is served by a plain RemoteShard — exactly
// the pre-placement behavior, including the client's transparent
// reconnect-and-retry — with no replication wrapper, no prober, and no
// extra goroutines. Multi-replica partitions wrap their RemoteShards in a
// geometry.ReplicatedShard whose liveness probe is a raw dial (connection
// established = alive; no handshake, so a probe costs one round trip and
// no point-set shipping).
func ReplicatedShardDialer(parts [][]string, opts ReplicaOptions) geometry.ShardDialer {
	conn := opts.Options.withDefaults()
	return func(ctx context.Context, shard int, cfg geometry.ShardConfig) (geometry.ShardBackend, error) {
		addrs := parts[shard%len(parts)]
		if len(addrs) == 0 {
			return nil, &Error{Op: "dial", Addr: fmt.Sprintf("partition %d", shard), Kind: KindDial,
				Err: fmt.Errorf("empty replica set")}
		}
		if len(addrs) == 1 {
			return DialShard(ctx, addrs[0], cfg, conn)
		}
		dialers := make([]geometry.ReplicaDialer, len(addrs))
		for i, addr := range addrs {
			dialers[i] = func(ctx context.Context) (geometry.ShardBackend, error) {
				return DialShard(ctx, addr, cfg, conn)
			}
		}
		return geometry.NewReplicatedShard(ctx, dialers, geometry.ReplicatedShardOptions{
			HedgeDelay:    opts.HedgeDelay,
			ProbeInterval: opts.ProbeInterval,
			Probe: func(ctx context.Context, replica int) error {
				c, err := conn.Dial(ctx, addrs[replica])
				if err != nil {
					return err
				}
				return c.Close()
			},
		})
	}
}
