package transport

import (
	"bufio"
	"context"
	"errors"
	"math/rand"
	"net"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"privcluster/internal/geometry"
	"privcluster/internal/vec"
)

// frameOf packs test vectors into a flat frame, failing the test on ragged
// input.
func frameOf(t *testing.T, pts []vec.Vector) *vec.Frame {
	t.Helper()
	f, err := vec.FrameFromVectors(pts)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// testPoints builds the planted-cluster-plus-duplicates workload the
// geometry equivalence tests use: dense cluster, exact duplicate block,
// uniform background, all grid-quantized.
func testPoints(t *testing.T, seed int64, n, d int) []vec.Vector {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	grid, err := geometry.NewGrid(1<<12, d)
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]vec.Vector, 0, n)
	center := make(vec.Vector, d)
	for a := range center {
		center[a] = 0.3 + 0.4*rng.Float64()
	}
	for i := 0; i < n/2; i++ {
		p := make(vec.Vector, d)
		for a := range p {
			p[a] = center[a] + 0.02*(rng.Float64()*2-1)
		}
		pts = append(pts, grid.Quantize(p))
	}
	dup := grid.Quantize(center.Clone())
	for i := 0; i < n/10; i++ {
		pts = append(pts, dup)
	}
	for len(pts) < n {
		p := make(vec.Vector, d)
		for a := range p {
			p[a] = rng.Float64()
		}
		pts = append(pts, grid.Quantize(p))
	}
	return pts
}

func testCellOptions(d int) geometry.CellIndexOptions {
	grid, _ := geometry.NewGrid(1<<12, d)
	return geometry.CellIndexOptions{MinRadius: grid.RadiusUnit(), MaxRadius: grid.MaxDistance()}
}

// startServers brings up `count` shard servers on a fresh loopback net and
// returns their addresses plus the client options dialing through it.
// Cleanup shuts every server down.
func startServers(t *testing.T, count int, sopts ServerOptions) ([]string, Options) {
	t.Helper()
	ln := NewLoopbackNet()
	addrs := make([]string, count)
	for i := range addrs {
		addrs[i] = "shard-" + strings.Repeat("i", i+1)
		l, err := ln.Listen(addrs[i])
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer(sopts)
		go srv.Serve(l)
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		})
	}
	return addrs, Options{Dial: ln.Dial}
}

// remoteIndex builds a backend-mode ShardedIndex whose shards are served
// over the loopback wire protocol.
func remoteIndex(t *testing.T, pts []vec.Vector, shards int, addrs []string, copts Options) *geometry.ShardedIndex {
	t.Helper()
	d := pts[0].Dim()
	ix, err := geometry.NewShardedIndexBackends(context.Background(), frameOf(t, pts), geometry.ShardedIndexOptions{
		Shards: shards, Policy: geometry.ShardMorton, Cell: testCellOptions(d),
	}, ShardDialer(addrs, copts))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	return ix
}

// TestRemoteShardedIndexMatchesCellIndex is the transport equivalence
// guarantee: a ShardedIndex whose shards live behind the wire protocol
// answers every BallIndex query bit-identically to a CellIndex over the
// same points — the protocol moves the ShardBackend calls faithfully, so
// the geometry-layer equivalence survives serialization.
func TestRemoteShardedIndexMatchesCellIndex(t *testing.T) {
	for _, d := range []int{1, 2} {
		pts := testPoints(t, int64(d), 600, d)
		opts := testCellOptions(d)
		ref, err := geometry.NewCellIndex(pts, opts)
		if err != nil {
			t.Fatal(err)
		}
		tt := len(pts) / 3
		refStep, err := ref.BuildLStep(context.Background(), tt)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range []int{2, 4} {
			addrs, copts := startServers(t, s, ServerOptions{})
			sh := remoteIndex(t, pts, s, addrs, copts)
			if sh.Shards() != s {
				t.Fatalf("d=%d s=%d: built %d backends", d, s, sh.Shards())
			}
			for _, r := range []float64{-1, 0, opts.MinRadius / 2, 0.01, 0.05, 0.3, 2} {
				for _, i := range []int{0, len(pts) / 2, len(pts) - 1} {
					if got, want := sh.CountWithin(i, r), ref.CountWithin(i, r); got != want {
						t.Fatalf("d=%d s=%d: CountWithin(%d, %v) = %d, want %d", d, s, i, r, got, want)
					}
				}
				if got, want := sh.MaxCountWithin(r), ref.MaxCountWithin(r); got != want {
					t.Fatalf("d=%d s=%d: MaxCountWithin(%v) = %d, want %d", d, s, r, got, want)
				}
				gl, err1 := sh.LValue(r, tt)
				wl, err2 := ref.LValue(r, tt)
				if (err1 == nil) != (err2 == nil) || gl != wl {
					t.Fatalf("d=%d s=%d: LValue(%v) = %v (%v), want %v (%v)", d, s, r, gl, err1, wl, err2)
				}
			}
			for _, tq := range []int{1, 2, tt, len(pts)} {
				gi, gr, err1 := sh.TwoApprox(tq)
				wi, wr, err2 := ref.TwoApprox(tq)
				if gi != wi || gr != wr || (err1 == nil) != (err2 == nil) {
					t.Fatalf("d=%d s=%d: TwoApprox(%d) = (%d, %v, %v), want (%d, %v, %v)",
						d, s, tq, gi, gr, err1, wi, wr, err2)
				}
				g, err1 := sh.RadiusForCount(len(pts)/2, tq)
				w, err2 := ref.RadiusForCount(len(pts)/2, tq)
				if g != w || (err1 == nil) != (err2 == nil) {
					t.Fatalf("d=%d s=%d: RadiusForCount(%d) = %v, want %v", d, s, tq, g, w)
				}
			}
			if sh.N() != ref.N() || sh.Frame().N() != ref.Frame().N() {
				t.Fatalf("d=%d s=%d: N/Points diverged", d, s)
			}
			step, err := sh.BuildLStep(context.Background(), tt)
			if err != nil {
				t.Fatalf("d=%d s=%d: BuildLStep: %v", d, s, err)
			}
			if len(step.Breaks) != len(refStep.Breaks) {
				t.Fatalf("d=%d s=%d: %d breaks, want %d", d, s, len(step.Breaks), len(refStep.Breaks))
			}
			for k := range step.Breaks {
				if step.Breaks[k] != refStep.Breaks[k] || step.Vals[k] != refStep.Vals[k] {
					t.Fatalf("d=%d s=%d: step[%d] = (%v, %v), want (%v, %v)",
						d, s, k, step.Breaks[k], step.Vals[k], refStep.Breaks[k], refStep.Vals[k])
				}
			}
		}
	}
}

// TestPreloadedPoints covers the shardserver -csv path: the server holds
// the data, handshakes omit the payload, and answers still match the
// points-shipping path bit for bit. A count mismatch is refused.
func TestPreloadedPoints(t *testing.T) {
	pts := testPoints(t, 21, 400, 2)
	ref, err := geometry.NewCellIndex(pts, testCellOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	addrs, copts := startServers(t, 2, ServerOptions{Points: frameOf(t, pts)})
	copts.OmitPoints = true
	sh := remoteIndex(t, pts, 2, addrs, copts)
	for _, r := range []float64{0, 0.05, 0.3} {
		if got, want := sh.MaxCountWithin(r), ref.MaxCountWithin(r); got != want {
			t.Fatalf("MaxCountWithin(%v) = %d, want %d", r, got, want)
		}
	}

	// A client opening a different dataset against the preloaded server
	// must be refused with a remote (application) error.
	short := pts[:len(pts)-1]
	_, err = geometry.NewShardedIndexBackends(context.Background(), frameOf(t, short), geometry.ShardedIndexOptions{
		Shards: 2, Cell: testCellOptions(2),
	}, ShardDialer(addrs, copts))
	var te *Error
	if !errors.As(err, &te) || te.Kind != KindRemote {
		t.Fatalf("mismatched preload: err = %v, want KindRemote", err)
	}
}

// scriptedShard serves one connection with a correct handshake and then
// `reqs` zero-count responses, after which it slams the connection and the
// listener — a deterministic stand-in for a shard server dying mid-use.
func scriptedShard(t *testing.T, l net.Listener, reqs int) {
	t.Helper()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		defer l.Close()
		br := bufio.NewReader(conn)
		bw := bufio.NewWriter(conn)
		// HELLO.
		if typ, _, err := readFrame(br); err != nil || typ != msgHello {
			return
		}
		w := &wbuf{}
		w.u16(ProtocolVersion)
		if err := writeFrame(bw, msgHelloOK, w.b); err != nil {
			return
		}
		// OPEN: parse just enough to echo the right counts.
		typ, payload, err := readFrame(br)
		if err != nil || typ != msgOpen {
			return
		}
		r := &rbuf{b: payload}
		r.f64()
		r.f64()
		r.u32()
		r.u32()
		r.u8() // mutable flag
		hasPoints := r.u8() == 1
		n := int(r.u32())
		dim := int(r.u16())
		if hasPoints {
			r.take(8 * n * dim)
		}
		m := int(r.u32())
		w = &wbuf{}
		w.u32(uint32(m))
		w.u32(uint32(n))
		if err := writeFrame(bw, msgOpenOK, w.b); err != nil {
			return
		}
		// Serve `reqs` requests with zero counts, then die.
		zeros := encodeCounts(make([]int32, n))
		for i := 0; i < reqs; i++ {
			typ, payload, err := readFrame(br)
			if err != nil {
				return
			}
			resp := zeros
			if typ == msgCountBatch {
				rr := &rbuf{b: payload}
				rr.f64()
				resp = encodeCounts(make([]int32, int(rr.u32())))
			}
			if err := writeFrame(bw, msgCounts, resp); err != nil {
				return
			}
		}
	}()
}

// TestServerDeathMidSweep: one shard's server dies partway through the
// LStep sweep. BuildLStep must return a typed transport error — no hang,
// and never a partially summed step function.
func TestServerDeathMidSweep(t *testing.T) {
	pts := testPoints(t, 5, 300, 2)
	ln := NewLoopbackNet()

	// Shard 0: a real server for the whole test.
	l0, err := ln.Listen("alive")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ServerOptions{})
	go srv.Serve(l0)
	defer srv.Close()

	// Shard 1: handshake + DupCounts + one PARTIALS, then gone.
	l1, err := ln.Listen("doomed")
	if err != nil {
		t.Fatal(err)
	}
	scriptedShard(t, l1, 2)

	ix, err := geometry.NewShardedIndexBackends(context.Background(), frameOf(t, pts), geometry.ShardedIndexOptions{
		Shards: 2, Cell: testCellOptions(2),
	}, ShardDialer([]string{"alive", "doomed"}, Options{Dial: ln.Dial}))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	done := make(chan error, 1)
	go func() {
		_, err := ix.BuildLStep(context.Background(), len(pts)/3)
		done <- err
	}()
	select {
	case err := <-done:
		var te *Error
		if !errors.As(err, &te) {
			t.Fatalf("BuildLStep after server death: err = %v, want *transport.Error", err)
		}
		if te.Kind != KindDial && te.Kind != KindIO {
			t.Fatalf("err kind = %v, want dial or io", te.Kind)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("BuildLStep hung after server death")
	}
}

// TestRetryReconnects: a connection broken between calls is transparently
// re-dialed and re-handshaken within the retry budget.
func TestRetryReconnects(t *testing.T) {
	pts := testPoints(t, 6, 200, 2)
	ln := NewLoopbackNet()
	l, err := ln.Listen("flaky")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ServerOptions{})
	go srv.Serve(l)
	defer srv.Close()

	cell := testCellOptions(2) // a single shard needs no ladder pinning
	members := make([]int32, len(pts))
	for i := range members {
		members[i] = int32(i)
	}
	var dials atomic.Int32
	countingDial := func(ctx context.Context, addr string) (net.Conn, error) {
		dials.Add(1)
		return ln.Dial(ctx, addr)
	}
	rs, err := DialShard(context.Background(), "flaky", geometry.ShardConfig{
		Points: frameOf(t, pts), Members: members, Cell: cell,
	}, Options{Dial: countingDial})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	want, err := rs.DupCounts(context.Background(), geometry.EpochFrozen)
	if err != nil {
		t.Fatal(err)
	}

	// Sever the live connection behind the client's back; the next call
	// must fail over to a fresh dial + handshake and still answer.
	rs.mu.Lock()
	rs.conn.Close()
	rs.mu.Unlock()
	got, err := rs.DupCounts(context.Background(), geometry.EpochFrozen)
	if err != nil {
		t.Fatalf("call after severed conn: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dup[%d] = %d after reconnect, want %d", i, got[i], want[i])
		}
	}
	if dials.Load() != 2 {
		t.Errorf("dialed %d times, want 2", dials.Load())
	}
}

// TestCancellationTearsDownInFlight: cancelling the context of an
// in-flight remote call forces the blocking I/O to fail immediately —
// wrapped so errors.Is sees context.Canceled — and leaks no goroutines.
func TestCancellationTearsDownInFlight(t *testing.T) {
	pts := testPoints(t, 7, 200, 2)
	ln := NewLoopbackNet()
	l, err := ln.Listen("tarpit")
	if err != nil {
		t.Fatal(err)
	}
	// A server that answers the handshake and then never responds.
	release := make(chan struct{})
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		bw := bufio.NewWriter(conn)
		if typ, _, err := readFrame(br); err != nil || typ != msgHello {
			return
		}
		w := &wbuf{}
		w.u16(ProtocolVersion)
		writeFrame(bw, msgHelloOK, w.b)
		typ, payload, err := readFrame(br)
		if err != nil || typ != msgOpen {
			return
		}
		r := &rbuf{b: payload}
		r.f64()
		r.f64()
		r.u32()
		r.u32()
		r.u8() // mutable flag
		hasPoints := r.u8() == 1
		n := int(r.u32())
		dim := int(r.u16())
		if hasPoints {
			r.take(8 * n * dim)
		}
		m := int(r.u32())
		w = &wbuf{}
		w.u32(uint32(m))
		w.u32(uint32(n))
		writeFrame(bw, msgOpenOK, w.b)
		readFrame(br) // the doomed request…
		<-release     // …that never gets an answer
	}()
	defer close(release)

	members := make([]int32, len(pts))
	for i := range members {
		members[i] = int32(i)
	}
	before := runtime.NumGoroutine()
	rs, err := DialShard(context.Background(), "tarpit", geometry.ShardConfig{
		Points: frameOf(t, pts), Members: members, Cell: testCellOptions(2),
	}, Options{Dial: ln.Dial})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = rs.DupCounts(ctx, geometry.EpochFrozen)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled call: err = %v, want context.Canceled in the chain", err)
	}
	var te *Error
	if !errors.As(err, &te) || te.Kind != KindCanceled {
		t.Fatalf("cancelled call: err = %v, want KindCanceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	// The client must not have left the call's plumbing running.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Errorf("goroutines: %d before, %d after cancellation", before, g)
	}
}

// TestVersionMismatch: a server that speaks a different protocol version
// refuses the handshake with a typed, non-retried error.
func TestVersionMismatch(t *testing.T) {
	pts := testPoints(t, 8, 50, 2)
	ln := NewLoopbackNet()
	l, err := ln.Listen("old")
	if err != nil {
		t.Fatal(err)
	}
	var dials atomic.Int32
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				br := bufio.NewReader(conn)
				bw := bufio.NewWriter(conn)
				if typ, _, err := readFrame(br); err != nil || typ != msgHello {
					return
				}
				e := &wireError{code: codeVersion, msg: "server speaks protocol version 99"}
				writeFrame(bw, msgError, encodeError(e))
			}(conn)
		}
	}()
	defer l.Close()

	members := []int32{0, 1}
	_, err = DialShard(context.Background(), "old", geometry.ShardConfig{
		Points: frameOf(t, pts), Members: members, Cell: testCellOptions(2),
	}, Options{Dial: func(ctx context.Context, addr string) (net.Conn, error) {
		dials.Add(1)
		return ln.Dial(ctx, addr)
	}})
	if !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("err = %v, want ErrVersionMismatch", err)
	}
	var te *Error
	if !errors.As(err, &te) || te.Kind != KindVersion {
		t.Fatalf("err = %v, want KindVersion", err)
	}
	if dials.Load() != 1 {
		t.Errorf("version mismatch was retried: %d dials", dials.Load())
	}

	// Server side of the same contract: a client hello below the version
	// floor gets the version error frame back, while a future version is
	// negotiated down to the server's highest.
	srvL, err := ln.Listen("current")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ServerOptions{})
	go srv.Serve(srvL)
	defer srv.Close()
	conn, err := ln.Dial(context.Background(), "current")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	w := &wbuf{}
	w.b = append(w.b, wireMagic[:]...)
	w.u16(minProtocolVersion - 1)
	if err := writeFrame(bw, msgHello, w.b); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readFrame(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	if typ != msgError {
		t.Fatalf("server answered type %d to a pre-floor version, want error frame", typ)
	}
	r := &rbuf{b: payload}
	if code := r.u16(); code != codeVersion {
		t.Fatalf("error code = %d, want %d", code, codeVersion)
	}

	conn2, err := ln.Dial(context.Background(), "current")
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	bw2 := bufio.NewWriter(conn2)
	w = &wbuf{}
	w.b = append(w.b, wireMagic[:]...)
	w.u16(ProtocolVersion + 7)
	if err := writeFrame(bw2, msgHello, w.b); err != nil {
		t.Fatal(err)
	}
	typ, payload, err = readFrame(bufio.NewReader(conn2))
	if err != nil {
		t.Fatal(err)
	}
	if typ != msgHelloOK {
		t.Fatalf("server answered type %d to a future version, want hello-ok", typ)
	}
	r = &rbuf{b: payload}
	if v := r.u16(); v != ProtocolVersion {
		t.Fatalf("server negotiated version %d with a future client, want %d", v, ProtocolVersion)
	}
}

// TestGracefulShutdown: Shutdown with idle connections returns promptly
// and later calls on the client fail over to a dial error.
func TestGracefulShutdown(t *testing.T) {
	pts := testPoints(t, 9, 100, 2)
	ln := NewLoopbackNet()
	l, err := ln.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ServerOptions{})
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()

	members := make([]int32, len(pts))
	for i := range members {
		members[i] = int32(i)
	}
	rs, err := DialShard(context.Background(), "srv", geometry.ShardConfig{
		Points: frameOf(t, pts), Members: members, Cell: testCellOptions(2),
	}, Options{Dial: ln.Dial, Retries: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if _, err := rs.DupCounts(context.Background(), geometry.EpochFrozen); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown of an idle server: %v", err)
	}
	if err := <-serveDone; !errors.Is(err, ErrClosed) {
		t.Fatalf("Serve returned %v, want ErrClosed", err)
	}
	if _, err := rs.DupCounts(context.Background(), geometry.EpochFrozen); err == nil {
		t.Fatal("call succeeded against a shut-down server")
	}
}

// TestHostileOpenFrame: a frame whose header claims far more points than
// its payload carries must be refused with an error frame — not crash or
// OOM the server via a header-sized allocation (the regression the
// rbuf.vectors payload bound guards).
func TestHostileOpenFrame(t *testing.T) {
	ln := NewLoopbackNet()
	l, err := ln.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ServerOptions{})
	go srv.Serve(l)
	defer srv.Close()

	send := func(build func(w *wbuf)) (byte, []byte) {
		t.Helper()
		conn, err := ln.Dial(context.Background(), "srv")
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		bw := bufio.NewWriter(conn)
		br := bufio.NewReader(conn)
		hello := &wbuf{}
		hello.b = append(hello.b, wireMagic[:]...)
		hello.u16(ProtocolVersion)
		if err := writeFrame(bw, msgHello, hello.b); err != nil {
			t.Fatal(err)
		}
		if typ, _, err := readFrame(br); err != nil || typ != msgHelloOK {
			t.Fatalf("hello: type %d, err %v", typ, err)
		}
		w := &wbuf{}
		build(w)
		if err := writeFrame(bw, msgOpen, w.b); err != nil {
			t.Fatal(err)
		}
		typ, payload, err := readFrame(br)
		if err != nil {
			t.Fatal(err)
		}
		return typ, payload
	}

	// OPEN claiming 4 billion points of dimension 65535 in a 30-byte
	// payload.
	typ, _ := send(func(w *wbuf) {
		w.f64(0.001)
		w.f64(1.5)
		w.u32(2)
		w.u32(4)
		w.u8(0)           // mutable
		w.u8(1)           // hasPoints
		w.u32(0xFFFFFFF0) // n
		w.u16(0xFFFF)     // dim
		w.u32(0xFFFFFFF0) // members — never reached
	})
	if typ != msgError {
		t.Fatalf("inflated OPEN answered with type %d, want error frame", typ)
	}

	// The server must still be alive and serving after the bad frame.
	pts := testPoints(t, 41, 50, 2)
	members := make([]int32, len(pts))
	for i := range members {
		members[i] = int32(i)
	}
	rs, err := DialShard(context.Background(), "srv", geometry.ShardConfig{
		Points: frameOf(t, pts), Members: members, Cell: testCellOptions(2),
	}, Options{Dial: ln.Dial})
	if err != nil {
		t.Fatalf("server unusable after hostile frame: %v", err)
	}
	rs.Close()
}

// TestWireFraming covers the frame grammar edges: oversized payloads are
// refused before allocation, truncated payloads surface as decode errors.
func TestWireFraming(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	go func() {
		var hdr [5]byte
		hdr[0] = 0xFF // declares a ~4 GiB payload
		c1.Write(hdr[:])
	}()
	if _, _, err := readFrame(bufio.NewReader(c2)); err == nil {
		t.Error("oversized frame accepted")
	}

	r := &rbuf{b: []byte{0, 0}}
	r.u32()
	if r.err == nil {
		t.Error("truncated u32 read succeeded")
	}
	if got := r.u32(); got != 0 || r.err == nil {
		t.Error("sticky decode error did not stick")
	}

	if _, err := decodeCounts(encodeCounts([]int32{1, 2, 3}), 3); err != nil {
		t.Errorf("counts round trip: %v", err)
	}
	if _, err := decodeCounts(encodeCounts([]int32{1, 2, 3}), 4); err == nil {
		t.Error("short counts response accepted")
	}
}

// TestLoopbackNet covers the loopback namespace semantics.
func TestLoopbackNet(t *testing.T) {
	ln := NewLoopbackNet()
	if _, err := ln.Dial(context.Background(), "nobody"); err == nil {
		t.Error("dial to unknown loopback address succeeded")
	}
	l, err := ln.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ln.Listen("a"); err == nil {
		t.Error("double listen succeeded")
	}
	l.Close()
	if _, err := ln.Dial(context.Background(), "a"); err == nil {
		t.Error("dial to closed loopback listener succeeded")
	}
	if _, err := ln.Listen("a"); err != nil {
		t.Errorf("re-listen after close: %v", err)
	}
}
