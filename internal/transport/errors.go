package transport

import (
	"errors"
	"fmt"
)

// Kind classifies a transport failure — what went wrong, independent of
// which call it broke.
type Kind int

const (
	// KindDial: a connection could not be established (or re-established
	// for a retry) — dial failure, or a handshake that never completed.
	KindDial Kind = iota + 1
	// KindIO: an established connection broke mid-call (peer died, reset,
	// deadline hit on a healthy ctx). The client closes the poisoned
	// connection and, within its retry budget, reconnects.
	KindIO
	// KindProtocol: the peer sent a frame outside the protocol grammar —
	// wrong magic, unexpected message type, truncated or oversized
	// payload. Never retried: the peer is not speaking this protocol.
	KindProtocol
	// KindVersion: version negotiation failed (the error wraps
	// ErrVersionMismatch). Never retried.
	KindVersion
	// KindRemote: the server answered with an application error (bad
	// request, shard-side failure). The transport is healthy; retrying
	// would re-run the same failing request, so the client does not.
	KindRemote
	// KindCanceled: the caller's context was cancelled or its deadline
	// expired; the error wraps ctx.Err(), so errors.Is against
	// context.Canceled / context.DeadlineExceeded still works.
	KindCanceled
	// KindClosed: the client was used after Close.
	KindClosed
)

func (k Kind) String() string {
	switch k {
	case KindDial:
		return "dial"
	case KindIO:
		return "io"
	case KindProtocol:
		return "protocol"
	case KindVersion:
		return "version"
	case KindRemote:
		return "remote"
	case KindCanceled:
		return "canceled"
	case KindClosed:
		return "closed"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Error is the typed failure every transport operation returns: which
// shard address, which operation, what kind of failure, and the
// underlying cause (unwrappable). geometry.ShardedIndex propagates it
// unchanged, so a caller of BuildLStep on a remote-backed index can
// errors.As it back out and read the Kind.
type Error struct {
	Op   string // "dial", "handshake", "partials", "countbatch", "dupcounts"
	Addr string
	Kind Kind
	Err  error
}

func (e *Error) Error() string {
	return fmt.Sprintf("transport: %s %s [%s]: %v", e.Op, e.Addr, e.Kind, e.Err)
}

func (e *Error) Unwrap() error { return e.Err }

// ErrVersionMismatch is wrapped by KindVersion errors: the peer does not
// speak ProtocolVersion.
var ErrVersionMismatch = errors.New("transport: protocol version mismatch")

// ErrClosed is wrapped by KindClosed errors and returned by servers and
// listeners used after Close/Shutdown.
var ErrClosed = errors.New("transport: use after close")
