package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"privcluster/internal/geometry"
	"privcluster/internal/obs"
	"privcluster/internal/vec"
)

// helloVersion is the version the client offers in its HELLO — normally
// the package's ProtocolVersion; tests pin it lower to exercise the
// negotiated-down grammar against a newer server.
var helloVersion = ProtocolVersion

// DialFunc opens a raw connection to a shard server. The default is TCP
// via net.Dialer; tests and single-process deployments substitute
// (*LoopbackNet).Dial.
type DialFunc func(ctx context.Context, addr string) (net.Conn, error)

// Options configures a RemoteShard client.
type Options struct {
	// Dial opens connections (nil = TCP).
	Dial DialFunc
	// DialTimeout caps connection establishment plus handshake when the
	// caller's context has no earlier deadline (default 10s).
	DialTimeout time.Duration
	// Retries is how many times a call is re-attempted after a transport
	// failure (dial or broken connection) before the error is returned.
	// Application errors and cancellations are never retried. Default 1;
	// negative means 0.
	Retries int
	// OmitPoints elides the global point set from the OPEN handshake: the
	// server must have been started with preloaded points (shardserver
	// -csv), and it verifies their count and dimension against the
	// handshake before serving. The member-id assignment still travels,
	// so the partition policy stays client-controlled.
	OmitPoints bool
	// Mutable opens an epoch/mutation session: the server builds a
	// MutableLocalShard and the client implements
	// geometry.MutableShardBackend. Mutable sessions never reconnect — the
	// session's epochs live in the server connection, and a silent
	// re-handshake would resurrect an empty-delta shard that answers
	// wrongly — so a broken connection fails the backend permanently (the
	// coordinator marks its index broken). It also makes the non-idempotent
	// mutations unrepeatable, which is exactly right.
	Mutable bool
}

func (o Options) withDefaults() Options {
	if o.Dial == nil {
		var d net.Dialer
		o.Dial = func(ctx context.Context, addr string) (net.Conn, error) {
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 10 * time.Second
	}
	switch {
	case o.Retries == 0:
		o.Retries = 1
	case o.Retries < 0:
		o.Retries = 0
	}
	return o
}

// RemoteShard is the client side of one shard: it implements
// geometry.ShardBackend by speaking the wire protocol to a shard server.
// Each bulk query is one batched round trip. On an immutable session a
// broken connection is closed, re-dialed and re-handshaken transparently
// within the retry budget (every request is a pure read of immutable
// shard state, so retries are safe); failures surface as *Error with a
// Kind. A mutable session (Options.Mutable) is never reconnected and
// never retried: its epochs live in the server connection, and a silent
// re-handshake would resurrect an empty-delta shard.
//
// Context handling: a deadline on the call's ctx is installed as the
// connection deadline for the round trip, and cancellation fires a
// context.AfterFunc that forces the in-flight read/write to fail
// immediately — a cancelled BuildLStep sweep tears down its network call
// instead of waiting for the server.
//
// A RemoteShard serializes its calls under a mutex (the contract
// geometry.ShardedIndex relies on — it never issues concurrent calls to
// one backend, but a second caller degrades to waiting, not corruption).
type RemoteShard struct {
	addr string
	cfg  geometry.ShardConfig
	opts Options
	dim  int

	mu         sync.Mutex
	conn       net.Conn
	br         *bufio.Reader
	bw         *bufio.Writer
	closed     bool
	handshaken bool   // a session was established at least once
	version    uint16 // the session's negotiated protocol version
}

// DialShard connects to addr and performs the handshake, returning a
// ready backend for the shard cfg describes. The config's cell options
// must already be pinned to the shared global ladder
// (geometry.NewShardedIndexBackends does this for every dialer).
func DialShard(ctx context.Context, addr string, cfg geometry.ShardConfig, opts Options) (*RemoteShard, error) {
	if cfg.Points == nil || cfg.Points.N() == 0 || len(cfg.Members) == 0 {
		n := 0
		if cfg.Points != nil {
			n = cfg.Points.N()
		}
		return nil, &Error{Op: "dial", Addr: addr, Kind: KindDial,
			Err: fmt.Errorf("empty shard config (points=%d, members=%d)", n, len(cfg.Members))}
	}
	c := &RemoteShard{addr: addr, cfg: cfg, opts: opts.withDefaults(), dim: cfg.Points.Dim()}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.ensureConnLocked(ctx); err != nil {
		return nil, err
	}
	return c, nil
}

// ShardDialer adapts a server address list to the geometry.ShardDialer
// seam: shard s is served by addrs[s]. The address list length must equal
// the shard count (geometry clamps shards to min(requested, n), so
// callers pass Shards: len(addrs) and at most n addresses are used).
func ShardDialer(addrs []string, opts Options) geometry.ShardDialer {
	return func(ctx context.Context, shard int, cfg geometry.ShardConfig) (geometry.ShardBackend, error) {
		return DialShard(ctx, addrs[shard%len(addrs)], cfg, opts)
	}
}

// MutableShardDialer is ShardDialer's epoch-session counterpart: it forces
// Options.Mutable and satisfies geometry.MutableShardDialer, so
// geometry.NewMutableShardedIndexBackends can coordinate streaming
// ingestion over remote shard servers.
func MutableShardDialer(addrs []string, opts Options) geometry.MutableShardDialer {
	opts.Mutable = true
	return func(ctx context.Context, shard int, cfg geometry.ShardConfig) (geometry.MutableShardBackend, error) {
		return DialShard(ctx, addrs[shard%len(addrs)], cfg, opts)
	}
}

var _ geometry.MutableShardBackend = (*RemoteShard)(nil)

// NPoints returns the number of points the shard holds.
func (c *RemoteShard) NPoints() int { return len(c.cfg.Members) }

// Close tears down the connection; subsequent calls fail with KindClosed.
func (c *RemoteShard) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return c.resetConnLocked()
}

// Addr returns the shard server address (diagnostic).
func (c *RemoteShard) Addr() string { return c.addr }

// countsWant returns the strict slot count expected of a bulk response at
// the given epoch: the frozen snapshot's row count is the config's, while
// a pinned epoch's is known only shard-side (the geometry coordinator
// validates it against the pinned view).
func (c *RemoteShard) countsWant(epoch geometry.Epoch) int {
	if epoch == geometry.EpochFrozen {
		return c.cfg.Points.N()
	}
	return -1
}

// PartialCounts runs one capped bulk-count pass on the server: a single
// round trip whose response carries the shard's contribution around every
// global point of the pinned epoch.
func (c *RemoteShard) PartialCounts(ctx context.Context, epoch geometry.Epoch, j int, r float64, limit int32, exactBoundary bool) ([]int32, error) {
	w := &wbuf{b: make([]byte, 0, 25)}
	w.b = binary.BigEndian.AppendUint64(w.b, epoch)
	w.i32(int32(j))
	w.f64(r)
	w.i32(limit)
	if exactBoundary {
		w.u8(1)
	} else {
		w.u8(0)
	}
	payload, err := c.call(ctx, "partials", msgPartials, w.b, msgCounts)
	if err != nil {
		return nil, err
	}
	counts, err := decodeCounts(payload, c.countsWant(epoch))
	if err != nil {
		return nil, &Error{Op: "partials", Addr: c.addr, Kind: KindProtocol, Err: err}
	}
	return counts, nil
}

// CountBatch returns the exact number of epoch-pinned shard points within
// r of each center — one round trip for the whole batch.
func (c *RemoteShard) CountBatch(ctx context.Context, epoch geometry.Epoch, centers []vec.Vector, r float64) ([]int32, error) {
	w := &wbuf{b: make([]byte, 0, 20+8*len(centers)*c.dim)}
	w.b = binary.BigEndian.AppendUint64(w.b, epoch)
	w.f64(r)
	w.u32(uint32(len(centers)))
	for i, p := range centers {
		if p.Dim() != c.dim {
			return nil, &Error{Op: "countbatch", Addr: c.addr, Kind: KindRemote,
				Err: fmt.Errorf("center %d has dimension %d, want %d", i, p.Dim(), c.dim)}
		}
	}
	w.vectors(centers)
	payload, err := c.call(ctx, "countbatch", msgCountBatch, w.b, msgCounts)
	if err != nil {
		return nil, err
	}
	counts, err := decodeCounts(payload, len(centers))
	if err != nil {
		return nil, &Error{Op: "countbatch", Addr: c.addr, Kind: KindProtocol, Err: err}
	}
	return counts, nil
}

// DupCounts fetches the shard's duplicate-table contribution at the
// pinned epoch.
func (c *RemoteShard) DupCounts(ctx context.Context, epoch geometry.Epoch) ([]int32, error) {
	w := &wbuf{b: make([]byte, 0, 8)}
	w.b = binary.BigEndian.AppendUint64(w.b, epoch)
	payload, err := c.call(ctx, "dupcounts", msgDupCounts, w.b, msgCounts)
	if err != nil {
		return nil, err
	}
	counts, err := decodeCounts(payload, c.countsWant(epoch))
	if err != nil {
		return nil, &Error{Op: "dupcounts", Addr: c.addr, Kind: KindProtocol, Err: err}
	}
	return counts, nil
}

// errNotMutable rejects mutation calls on an immutable session client-side
// (the server would also refuse, fatally).
func (c *RemoteShard) errNotMutable(op string) error {
	return &Error{Op: op, Addr: c.addr, Kind: KindRemote,
		Err: errors.New("mutation on an immutable shard session (dial with Options.Mutable)")}
}

// epochResponse decodes the msgEpoch payload of a mutation round trip.
func (c *RemoteShard) epochResponse(op string, payload []byte) (geometry.Epoch, error) {
	epoch, _, err := decodeEpoch(payload)
	if err != nil {
		return 0, &Error{Op: op, Addr: c.addr, Kind: KindProtocol, Err: err}
	}
	return epoch, nil
}

// Append lands one epoch-advancing append batch on the shard session (see
// geometry.MutableShardBackend). Never retried: a mutation is not
// idempotent, so any transport failure poisons the session instead.
func (c *RemoteShard) Append(ctx context.Context, rows *vec.Frame, memberLocal []int32, ids []uint64) (geometry.Epoch, error) {
	if !c.opts.Mutable {
		return 0, c.errNotMutable("append")
	}
	if rows == nil || rows.N() == 0 || len(ids) != rows.N() {
		return 0, &Error{Op: "append", Addr: c.addr, Kind: KindRemote,
			Err: fmt.Errorf("append of %d rows with %d ids", rowCount(rows), len(ids))}
	}
	if rows.Dim() != c.dim {
		return 0, &Error{Op: "append", Addr: c.addr, Kind: KindRemote,
			Err: fmt.Errorf("append of dimension %d, want %d", rows.Dim(), c.dim)}
	}
	w := &wbuf{b: make([]byte, 0, 10+8*rows.N()*(c.dim+1)+4+4*len(memberLocal))}
	w.u32(uint32(rows.N()))
	w.u16(uint16(c.dim))
	w.frame(rows)
	for _, id := range ids {
		w.b = binary.BigEndian.AppendUint64(w.b, id)
	}
	w.u32(uint32(len(memberLocal)))
	for _, li := range memberLocal {
		w.i32(li)
	}
	payload, err := c.call(ctx, "append", msgAppend, w.b, msgEpoch)
	if err != nil {
		return 0, err
	}
	return c.epochResponse("append", payload)
}

// Delete lands one epoch-advancing delete batch on the shard session.
// Never retried, like Append.
func (c *RemoteShard) Delete(ctx context.Context, ids []uint64) (geometry.Epoch, error) {
	if !c.opts.Mutable {
		return 0, c.errNotMutable("delete")
	}
	if len(ids) == 0 {
		return 0, &Error{Op: "delete", Addr: c.addr, Kind: KindRemote,
			Err: errors.New("delete of no rows")}
	}
	w := &wbuf{b: make([]byte, 0, 4+8*len(ids))}
	w.u32(uint32(len(ids)))
	for _, id := range ids {
		w.b = binary.BigEndian.AppendUint64(w.b, id)
	}
	payload, err := c.call(ctx, "delete", msgDelete, w.b, msgEpoch)
	if err != nil {
		return 0, err
	}
	return c.epochResponse("delete", payload)
}

// CurrentEpoch asks the session for its epoch.
func (c *RemoteShard) CurrentEpoch(ctx context.Context) (geometry.Epoch, error) {
	if !c.opts.Mutable {
		return 0, c.errNotMutable("epoch")
	}
	payload, err := c.call(ctx, "epoch", msgEpochGet, nil, msgEpoch)
	if err != nil {
		return 0, err
	}
	return c.epochResponse("epoch", payload)
}

// Merge folds the session shard's append deltas into its base, server
// side.
func (c *RemoteShard) Merge(ctx context.Context) error {
	if !c.opts.Mutable {
		return c.errNotMutable("merge")
	}
	payload, err := c.call(ctx, "merge", msgMerge, nil, msgEpoch)
	if err != nil {
		return err
	}
	_, err = c.epochResponse("merge", payload)
	return err
}

// rowCount is a nil-safe frame row count for error messages.
func rowCount(f *vec.Frame) int {
	if f == nil {
		return 0
	}
	return f.N()
}

// call performs one request/response round trip with reconnect-and-retry.
// Mutable sessions get zero retries: re-sending a mutation could apply it
// twice, and re-sending a query after a reconnect would run it against a
// freshly recreated session that lost every epoch.
func (c *RemoteShard) call(ctx context.Context, op string, reqType byte, req []byte, wantResp byte) ([]byte, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, &Error{Op: op, Addr: c.addr, Kind: KindClosed, Err: ErrClosed}
	}
	retries := c.opts.Retries
	if c.opts.Mutable {
		retries = 0
	}
	var last error
	for attempt := 0; attempt <= retries; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, &Error{Op: op, Addr: c.addr, Kind: KindCanceled, Err: err}
		}
		if err := c.ensureConnLocked(ctx); err != nil {
			var te *Error
			if errors.As(err, &te) && (te.Kind == KindVersion || te.Kind == KindCanceled) {
				return nil, err // re-dialing cannot change either outcome
			}
			last = err
			continue
		}
		// Version-3 sessions prefix every request with the trace field; the
		// prefix is rebuilt per attempt because a reconnect can renegotiate
		// the session version.
		sendReq := req
		if c.version >= 3 {
			var pfx [17]byte
			n := 1
			if id := obs.FromContext(ctx).ID(); !id.IsZero() {
				pfx[0] = 1
				copy(pfx[1:], id[:])
				n = 17
			}
			sendReq = append(pfx[:n:n], req...)
		}
		payload, err := c.roundTripLocked(ctx, op, reqType, sendReq, wantResp)
		if err == nil {
			return payload, nil
		}
		var te *Error
		if errors.As(err, &te) && te.Kind == KindRemote {
			// The error frame was read in full — the stream is clean and
			// the transport healthy; retrying re-runs the same failure.
			return nil, err
		}
		// Any other failure may have left a frame half-read: drop the
		// connection so the next attempt re-dials and re-handshakes.
		c.resetConnLocked()
		if errors.As(err, &te) && te.Kind == KindCanceled {
			return nil, err // the caller gave up; nothing to retry
		}
		last = err
		if cerr := ctx.Err(); cerr != nil {
			return nil, &Error{Op: op, Addr: c.addr, Kind: KindCanceled, Err: cerr}
		}
	}
	return nil, last
}

// roundTripLocked writes one request frame and reads its response on the
// live connection, propagating the ctx deadline onto the connection and
// arming an AfterFunc so cancellation interrupts the blocking I/O.
func (c *RemoteShard) roundTripLocked(ctx context.Context, op string, reqType byte, req []byte, wantResp byte) ([]byte, error) {
	conn := c.conn
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	} else {
		conn.SetDeadline(time.Time{})
	}
	stop := context.AfterFunc(ctx, func() {
		// A deadline in the past fails the in-flight Read/Write now.
		conn.SetDeadline(time.Unix(1, 0))
	})
	defer stop()

	if err := writeFrame(c.bw, reqType, req); err != nil {
		return nil, c.ioError(ctx, op, err)
	}
	typ, payload, err := readFrame(c.br)
	if err != nil {
		return nil, c.ioError(ctx, op, err)
	}
	conn.SetDeadline(time.Time{})
	switch typ {
	case wantResp:
		return payload, nil
	case msgError:
		return nil, c.remoteError(op, payload)
	default:
		return nil, &Error{Op: op, Addr: c.addr, Kind: KindProtocol,
			Err: fmt.Errorf("unexpected message type %d, want %d", typ, wantResp)}
	}
}

// ioError classifies a read/write failure: the caller's cancellation
// wins over the I/O symptom it caused.
func (c *RemoteShard) ioError(ctx context.Context, op string, err error) error {
	if cerr := ctx.Err(); cerr != nil {
		return &Error{Op: op, Addr: c.addr, Kind: KindCanceled, Err: cerr}
	}
	return &Error{Op: op, Addr: c.addr, Kind: KindIO, Err: err}
}

// remoteError decodes a msgError frame into a typed error.
func (c *RemoteShard) remoteError(op string, payload []byte) error {
	r := &rbuf{b: payload}
	code := r.u16()
	msg := r.str()
	if r.err != nil {
		return &Error{Op: op, Addr: c.addr, Kind: KindProtocol, Err: r.err}
	}
	if code == codeVersion {
		return &Error{Op: op, Addr: c.addr, Kind: KindVersion,
			Err: fmt.Errorf("%w: %s", ErrVersionMismatch, msg)}
	}
	return &Error{Op: op, Addr: c.addr, Kind: KindRemote, Err: errors.New(msg)}
}

// ensureConnLocked dials and handshakes if no live connection exists. A
// mutable session refuses to reconnect once its first connection is gone:
// the session state (epochs, deltas) died with it, and a fresh handshake
// would silently recreate an empty-delta shard that answers wrongly.
func (c *RemoteShard) ensureConnLocked(ctx context.Context) error {
	if c.conn != nil {
		return nil
	}
	if c.opts.Mutable && c.handshaken {
		return &Error{Op: "dial", Addr: c.addr, Kind: KindIO,
			Err: errors.New("mutable shard session lost (connection broken; epochs are not resumable)")}
	}
	dctx := ctx
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		dctx, cancel = context.WithTimeout(ctx, c.opts.DialTimeout)
		defer cancel()
	}
	conn, err := c.opts.Dial(dctx, c.addr)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return &Error{Op: "dial", Addr: c.addr, Kind: KindCanceled, Err: cerr}
		}
		return &Error{Op: "dial", Addr: c.addr, Kind: KindDial, Err: err}
	}
	c.conn = conn
	c.br = bufio.NewReaderSize(conn, 1<<16)
	c.bw = bufio.NewWriterSize(conn, 1<<16)
	if err := c.handshakeLocked(dctx); err != nil {
		c.resetConnLocked()
		return err
	}
	c.handshaken = true
	return nil
}

// handshakeLocked runs HELLO/HELLO_OK then OPEN/OPEN_OK on the fresh
// connection. The OPEN frame ships the pinned cell options, the member
// ids, and — unless OmitPoints — the full global point set; a server with
// preloaded points verifies count and dimension instead.
func (c *RemoteShard) handshakeLocked(ctx context.Context) error {
	conn := c.conn
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	}
	stop := context.AfterFunc(ctx, func() { conn.SetDeadline(time.Unix(1, 0)) })
	defer stop()

	hello := &wbuf{}
	hello.b = append(hello.b, wireMagic[:]...)
	hello.u16(helloVersion)
	if err := writeFrame(c.bw, msgHello, hello.b); err != nil {
		return c.handshakeError(ctx, err)
	}
	typ, payload, err := readFrame(c.br)
	if err != nil {
		return c.handshakeError(ctx, err)
	}
	if typ == msgError {
		return c.remoteError("handshake", payload)
	}
	if typ != msgHelloOK {
		return &Error{Op: "handshake", Addr: c.addr, Kind: KindProtocol,
			Err: fmt.Errorf("unexpected message type %d", typ)}
	}
	r := &rbuf{b: payload}
	// The server answers min(offered, its own); anything above our offer or
	// below the floor is a peer we cannot talk to.
	v := r.u16()
	if r.err != nil || v < minProtocolVersion || v > helloVersion {
		return &Error{Op: "handshake", Addr: c.addr, Kind: KindVersion,
			Err: fmt.Errorf("%w: server answered version %d, want %d–%d", ErrVersionMismatch, v, minProtocolVersion, helloVersion)}
	}
	c.version = v

	open := &wbuf{b: make([]byte, 0, 64+8*c.cfg.Points.N()*c.dim+4*len(c.cfg.Members))}
	open.f64(c.cfg.Cell.MinRadius)
	open.f64(c.cfg.Cell.MaxRadius)
	open.u32(uint32(c.cfg.Cell.LevelsPerOctave))
	open.u32(uint32(c.cfg.Cell.CellsPerRadius))
	if c.opts.Mutable {
		open.u8(1)
	} else {
		open.u8(0)
	}
	if c.opts.OmitPoints {
		open.u8(0)
	} else {
		open.u8(1)
	}
	open.u32(uint32(c.cfg.Points.N()))
	open.u16(uint16(c.dim))
	if c.opts.OmitPoints {
		// The server must hold bit-identical coordinates, not merely the
		// right count — ship a checksum in place of the payload.
		open.b = binary.BigEndian.AppendUint64(open.b, PointsChecksum(c.cfg.Points))
	} else {
		open.frame(c.cfg.Points)
	}
	open.u32(uint32(len(c.cfg.Members)))
	for _, m := range c.cfg.Members {
		open.u32(uint32(m))
	}
	if err := writeFrame(c.bw, msgOpen, open.b); err != nil {
		return c.handshakeError(ctx, err)
	}
	typ, payload, err = readFrame(c.br)
	if err != nil {
		return c.handshakeError(ctx, err)
	}
	if typ == msgError {
		return c.remoteError("handshake", payload)
	}
	if typ != msgOpenOK {
		return &Error{Op: "handshake", Addr: c.addr, Kind: KindProtocol,
			Err: fmt.Errorf("unexpected message type %d", typ)}
	}
	r = &rbuf{b: payload}
	m, n := int(r.u32()), int(r.u32())
	if r.err != nil {
		return &Error{Op: "handshake", Addr: c.addr, Kind: KindProtocol, Err: r.err}
	}
	if m != len(c.cfg.Members) || n != c.cfg.Points.N() {
		return &Error{Op: "handshake", Addr: c.addr, Kind: KindProtocol,
			Err: fmt.Errorf("server echoed shard %d/%d, want %d/%d", m, n, len(c.cfg.Members), c.cfg.Points.N())}
	}
	conn.SetDeadline(time.Time{})
	return nil
}

func (c *RemoteShard) handshakeError(ctx context.Context, err error) error {
	if cerr := ctx.Err(); cerr != nil {
		return &Error{Op: "handshake", Addr: c.addr, Kind: KindCanceled, Err: cerr}
	}
	return &Error{Op: "handshake", Addr: c.addr, Kind: KindDial, Err: err}
}

// resetConnLocked closes and forgets the connection.
func (c *RemoteShard) resetConnLocked() error {
	var err error
	if c.conn != nil {
		err = c.conn.Close()
		c.conn, c.br, c.bw = nil, nil, nil
	}
	return err
}
