package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"privcluster/internal/geometry"
	"privcluster/internal/vec"
)

// DialFunc opens a raw connection to a shard server. The default is TCP
// via net.Dialer; tests and single-process deployments substitute
// (*LoopbackNet).Dial.
type DialFunc func(ctx context.Context, addr string) (net.Conn, error)

// Options configures a RemoteShard client.
type Options struct {
	// Dial opens connections (nil = TCP).
	Dial DialFunc
	// DialTimeout caps connection establishment plus handshake when the
	// caller's context has no earlier deadline (default 10s).
	DialTimeout time.Duration
	// Retries is how many times a call is re-attempted after a transport
	// failure (dial or broken connection) before the error is returned.
	// Application errors and cancellations are never retried. Default 1;
	// negative means 0.
	Retries int
	// OmitPoints elides the global point set from the OPEN handshake: the
	// server must have been started with preloaded points (shardserver
	// -csv), and it verifies their count and dimension against the
	// handshake before serving. The member-id assignment still travels,
	// so the partition policy stays client-controlled.
	OmitPoints bool
}

func (o Options) withDefaults() Options {
	if o.Dial == nil {
		var d net.Dialer
		o.Dial = func(ctx context.Context, addr string) (net.Conn, error) {
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 10 * time.Second
	}
	switch {
	case o.Retries == 0:
		o.Retries = 1
	case o.Retries < 0:
		o.Retries = 0
	}
	return o
}

// RemoteShard is the client side of one shard: it implements
// geometry.ShardBackend by speaking the wire protocol to a shard server.
// Each bulk query is one batched round trip. A broken connection is
// closed, re-dialed and re-handshaken transparently within the retry
// budget (every request is a pure read of immutable shard state, so
// retries are safe); failures surface as *Error with a Kind.
//
// Context handling: a deadline on the call's ctx is installed as the
// connection deadline for the round trip, and cancellation fires a
// context.AfterFunc that forces the in-flight read/write to fail
// immediately — a cancelled BuildLStep sweep tears down its network call
// instead of waiting for the server.
//
// A RemoteShard serializes its calls under a mutex (the contract
// geometry.ShardedIndex relies on — it never issues concurrent calls to
// one backend, but a second caller degrades to waiting, not corruption).
type RemoteShard struct {
	addr string
	cfg  geometry.ShardConfig
	opts Options
	dim  int

	mu     sync.Mutex
	conn   net.Conn
	br     *bufio.Reader
	bw     *bufio.Writer
	closed bool
}

// DialShard connects to addr and performs the handshake, returning a
// ready backend for the shard cfg describes. The config's cell options
// must already be pinned to the shared global ladder
// (geometry.NewShardedIndexBackends does this for every dialer).
func DialShard(ctx context.Context, addr string, cfg geometry.ShardConfig, opts Options) (*RemoteShard, error) {
	if cfg.Points == nil || cfg.Points.N() == 0 || len(cfg.Members) == 0 {
		n := 0
		if cfg.Points != nil {
			n = cfg.Points.N()
		}
		return nil, &Error{Op: "dial", Addr: addr, Kind: KindDial,
			Err: fmt.Errorf("empty shard config (points=%d, members=%d)", n, len(cfg.Members))}
	}
	c := &RemoteShard{addr: addr, cfg: cfg, opts: opts.withDefaults(), dim: cfg.Points.Dim()}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.ensureConnLocked(ctx); err != nil {
		return nil, err
	}
	return c, nil
}

// ShardDialer adapts a server address list to the geometry.ShardDialer
// seam: shard s is served by addrs[s]. The address list length must equal
// the shard count (geometry clamps shards to min(requested, n), so
// callers pass Shards: len(addrs) and at most n addresses are used).
func ShardDialer(addrs []string, opts Options) geometry.ShardDialer {
	return func(ctx context.Context, shard int, cfg geometry.ShardConfig) (geometry.ShardBackend, error) {
		return DialShard(ctx, addrs[shard%len(addrs)], cfg, opts)
	}
}

// NPoints returns the number of points the shard holds.
func (c *RemoteShard) NPoints() int { return len(c.cfg.Members) }

// Close tears down the connection; subsequent calls fail with KindClosed.
func (c *RemoteShard) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return c.resetConnLocked()
}

// Addr returns the shard server address (diagnostic).
func (c *RemoteShard) Addr() string { return c.addr }

// PartialCounts runs one capped bulk-count pass on the server: a single
// round trip whose response carries the shard's contribution around every
// global point.
func (c *RemoteShard) PartialCounts(ctx context.Context, j int, r float64, limit int32, exactBoundary bool) ([]int32, error) {
	w := &wbuf{b: make([]byte, 0, 17)}
	w.i32(int32(j))
	w.f64(r)
	w.i32(limit)
	if exactBoundary {
		w.u8(1)
	} else {
		w.u8(0)
	}
	payload, err := c.call(ctx, "partials", msgPartials, w.b)
	if err != nil {
		return nil, err
	}
	counts, err := decodeCounts(payload, c.cfg.Points.N())
	if err != nil {
		return nil, &Error{Op: "partials", Addr: c.addr, Kind: KindProtocol, Err: err}
	}
	return counts, nil
}

// CountBatch returns the exact number of shard points within r of each
// center — one round trip for the whole batch.
func (c *RemoteShard) CountBatch(ctx context.Context, centers []vec.Vector, r float64) ([]int32, error) {
	w := &wbuf{b: make([]byte, 0, 12+8*len(centers)*c.dim)}
	w.f64(r)
	w.u32(uint32(len(centers)))
	for i, p := range centers {
		if p.Dim() != c.dim {
			return nil, &Error{Op: "countbatch", Addr: c.addr, Kind: KindRemote,
				Err: fmt.Errorf("center %d has dimension %d, want %d", i, p.Dim(), c.dim)}
		}
	}
	w.vectors(centers)
	payload, err := c.call(ctx, "countbatch", msgCountBatch, w.b)
	if err != nil {
		return nil, err
	}
	counts, err := decodeCounts(payload, len(centers))
	if err != nil {
		return nil, &Error{Op: "countbatch", Addr: c.addr, Kind: KindProtocol, Err: err}
	}
	return counts, nil
}

// DupCounts fetches the shard's duplicate-table contribution.
func (c *RemoteShard) DupCounts(ctx context.Context) ([]int32, error) {
	payload, err := c.call(ctx, "dupcounts", msgDupCounts, nil)
	if err != nil {
		return nil, err
	}
	counts, err := decodeCounts(payload, c.cfg.Points.N())
	if err != nil {
		return nil, &Error{Op: "dupcounts", Addr: c.addr, Kind: KindProtocol, Err: err}
	}
	return counts, nil
}

// call performs one request/response round trip with reconnect-and-retry.
func (c *RemoteShard) call(ctx context.Context, op string, reqType byte, req []byte) ([]byte, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, &Error{Op: op, Addr: c.addr, Kind: KindClosed, Err: ErrClosed}
	}
	var last error
	for attempt := 0; attempt <= c.opts.Retries; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, &Error{Op: op, Addr: c.addr, Kind: KindCanceled, Err: err}
		}
		if err := c.ensureConnLocked(ctx); err != nil {
			var te *Error
			if errors.As(err, &te) && (te.Kind == KindVersion || te.Kind == KindCanceled) {
				return nil, err // re-dialing cannot change either outcome
			}
			last = err
			continue
		}
		payload, err := c.roundTripLocked(ctx, op, reqType, req)
		if err == nil {
			return payload, nil
		}
		var te *Error
		if errors.As(err, &te) && te.Kind == KindRemote {
			// The error frame was read in full — the stream is clean and
			// the transport healthy; retrying re-runs the same failure.
			return nil, err
		}
		// Any other failure may have left a frame half-read: drop the
		// connection so the next attempt re-dials and re-handshakes.
		c.resetConnLocked()
		if errors.As(err, &te) && te.Kind == KindCanceled {
			return nil, err // the caller gave up; nothing to retry
		}
		last = err
		if cerr := ctx.Err(); cerr != nil {
			return nil, &Error{Op: op, Addr: c.addr, Kind: KindCanceled, Err: cerr}
		}
	}
	return nil, last
}

// roundTripLocked writes one request frame and reads its response on the
// live connection, propagating the ctx deadline onto the connection and
// arming an AfterFunc so cancellation interrupts the blocking I/O.
func (c *RemoteShard) roundTripLocked(ctx context.Context, op string, reqType byte, req []byte) ([]byte, error) {
	conn := c.conn
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	} else {
		conn.SetDeadline(time.Time{})
	}
	stop := context.AfterFunc(ctx, func() {
		// A deadline in the past fails the in-flight Read/Write now.
		conn.SetDeadline(time.Unix(1, 0))
	})
	defer stop()

	if err := writeFrame(c.bw, reqType, req); err != nil {
		return nil, c.ioError(ctx, op, err)
	}
	typ, payload, err := readFrame(c.br)
	if err != nil {
		return nil, c.ioError(ctx, op, err)
	}
	conn.SetDeadline(time.Time{})
	switch typ {
	case msgCounts:
		return payload, nil
	case msgError:
		return nil, c.remoteError(op, payload)
	default:
		return nil, &Error{Op: op, Addr: c.addr, Kind: KindProtocol,
			Err: fmt.Errorf("unexpected message type %d", typ)}
	}
}

// ioError classifies a read/write failure: the caller's cancellation
// wins over the I/O symptom it caused.
func (c *RemoteShard) ioError(ctx context.Context, op string, err error) error {
	if cerr := ctx.Err(); cerr != nil {
		return &Error{Op: op, Addr: c.addr, Kind: KindCanceled, Err: cerr}
	}
	return &Error{Op: op, Addr: c.addr, Kind: KindIO, Err: err}
}

// remoteError decodes a msgError frame into a typed error.
func (c *RemoteShard) remoteError(op string, payload []byte) error {
	r := &rbuf{b: payload}
	code := r.u16()
	msg := r.str()
	if r.err != nil {
		return &Error{Op: op, Addr: c.addr, Kind: KindProtocol, Err: r.err}
	}
	if code == codeVersion {
		return &Error{Op: op, Addr: c.addr, Kind: KindVersion,
			Err: fmt.Errorf("%w: %s", ErrVersionMismatch, msg)}
	}
	return &Error{Op: op, Addr: c.addr, Kind: KindRemote, Err: errors.New(msg)}
}

// ensureConnLocked dials and handshakes if no live connection exists.
func (c *RemoteShard) ensureConnLocked(ctx context.Context) error {
	if c.conn != nil {
		return nil
	}
	dctx := ctx
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		dctx, cancel = context.WithTimeout(ctx, c.opts.DialTimeout)
		defer cancel()
	}
	conn, err := c.opts.Dial(dctx, c.addr)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return &Error{Op: "dial", Addr: c.addr, Kind: KindCanceled, Err: cerr}
		}
		return &Error{Op: "dial", Addr: c.addr, Kind: KindDial, Err: err}
	}
	c.conn = conn
	c.br = bufio.NewReaderSize(conn, 1<<16)
	c.bw = bufio.NewWriterSize(conn, 1<<16)
	if err := c.handshakeLocked(dctx); err != nil {
		c.resetConnLocked()
		return err
	}
	return nil
}

// handshakeLocked runs HELLO/HELLO_OK then OPEN/OPEN_OK on the fresh
// connection. The OPEN frame ships the pinned cell options, the member
// ids, and — unless OmitPoints — the full global point set; a server with
// preloaded points verifies count and dimension instead.
func (c *RemoteShard) handshakeLocked(ctx context.Context) error {
	conn := c.conn
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	}
	stop := context.AfterFunc(ctx, func() { conn.SetDeadline(time.Unix(1, 0)) })
	defer stop()

	hello := &wbuf{}
	hello.b = append(hello.b, wireMagic[:]...)
	hello.u16(ProtocolVersion)
	if err := writeFrame(c.bw, msgHello, hello.b); err != nil {
		return c.handshakeError(ctx, err)
	}
	typ, payload, err := readFrame(c.br)
	if err != nil {
		return c.handshakeError(ctx, err)
	}
	if typ == msgError {
		return c.remoteError("handshake", payload)
	}
	if typ != msgHelloOK {
		return &Error{Op: "handshake", Addr: c.addr, Kind: KindProtocol,
			Err: fmt.Errorf("unexpected message type %d", typ)}
	}
	r := &rbuf{b: payload}
	if v := r.u16(); r.err != nil || v != ProtocolVersion {
		return &Error{Op: "handshake", Addr: c.addr, Kind: KindVersion,
			Err: fmt.Errorf("%w: server answered version %d, want %d", ErrVersionMismatch, v, ProtocolVersion)}
	}

	open := &wbuf{b: make([]byte, 0, 64+8*c.cfg.Points.N()*c.dim+4*len(c.cfg.Members))}
	open.f64(c.cfg.Cell.MinRadius)
	open.f64(c.cfg.Cell.MaxRadius)
	open.u32(uint32(c.cfg.Cell.LevelsPerOctave))
	open.u32(uint32(c.cfg.Cell.CellsPerRadius))
	if c.opts.OmitPoints {
		open.u8(0)
	} else {
		open.u8(1)
	}
	open.u32(uint32(c.cfg.Points.N()))
	open.u16(uint16(c.dim))
	if c.opts.OmitPoints {
		// The server must hold bit-identical coordinates, not merely the
		// right count — ship a checksum in place of the payload.
		open.b = binary.BigEndian.AppendUint64(open.b, PointsChecksum(c.cfg.Points))
	} else {
		open.frame(c.cfg.Points)
	}
	open.u32(uint32(len(c.cfg.Members)))
	for _, m := range c.cfg.Members {
		open.u32(uint32(m))
	}
	if err := writeFrame(c.bw, msgOpen, open.b); err != nil {
		return c.handshakeError(ctx, err)
	}
	typ, payload, err = readFrame(c.br)
	if err != nil {
		return c.handshakeError(ctx, err)
	}
	if typ == msgError {
		return c.remoteError("handshake", payload)
	}
	if typ != msgOpenOK {
		return &Error{Op: "handshake", Addr: c.addr, Kind: KindProtocol,
			Err: fmt.Errorf("unexpected message type %d", typ)}
	}
	r = &rbuf{b: payload}
	m, n := int(r.u32()), int(r.u32())
	if r.err != nil {
		return &Error{Op: "handshake", Addr: c.addr, Kind: KindProtocol, Err: r.err}
	}
	if m != len(c.cfg.Members) || n != c.cfg.Points.N() {
		return &Error{Op: "handshake", Addr: c.addr, Kind: KindProtocol,
			Err: fmt.Errorf("server echoed shard %d/%d, want %d/%d", m, n, len(c.cfg.Members), c.cfg.Points.N())}
	}
	conn.SetDeadline(time.Time{})
	return nil
}

func (c *RemoteShard) handshakeError(ctx context.Context, err error) error {
	if cerr := ctx.Err(); cerr != nil {
		return &Error{Op: "handshake", Addr: c.addr, Kind: KindCanceled, Err: cerr}
	}
	return &Error{Op: "handshake", Addr: c.addr, Kind: KindDial, Err: err}
}

// resetConnLocked closes and forgets the connection.
func (c *RemoteShard) resetConnLocked() error {
	var err error
	if c.conn != nil {
		err = c.conn.Close()
		c.conn, c.br, c.bw = nil, nil, nil
	}
	return err
}
