package transport

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"privcluster/internal/geometry"
	"privcluster/internal/vec"
)

// assertSnapshotMatches compares a pinned snapshot against a fresh
// CellIndex over the same rows on a representative query battery: counts,
// max counts, L-values, the 2-approximation, and the full step function —
// the wire-level restatement of the epoch contract: a pinned snapshot is
// bit-identical to Open on that epoch's point set.
func assertSnapshotMatches(t *testing.T, tag string, got geometry.BallIndex, ref *geometry.CellIndex, minR float64) {
	t.Helper()
	n := ref.N()
	if got.N() != n {
		t.Fatalf("%s: N = %d, want %d", tag, got.N(), n)
	}
	tt := n / 3
	if tt < 1 {
		tt = 1
	}
	for _, r := range []float64{-1, 0, minR / 2, 0.01, 0.05, 0.3, 2} {
		for _, i := range []int{0, n / 2, n - 1} {
			if g, w := got.CountWithin(i, r), ref.CountWithin(i, r); g != w {
				t.Fatalf("%s: CountWithin(%d, %v) = %d, want %d", tag, i, r, g, w)
			}
		}
		if g, w := got.MaxCountWithin(r), ref.MaxCountWithin(r); g != w {
			t.Fatalf("%s: MaxCountWithin(%v) = %d, want %d", tag, r, g, w)
		}
		gl, err1 := got.LValue(r, tt)
		wl, err2 := ref.LValue(r, tt)
		if (err1 == nil) != (err2 == nil) || gl != wl {
			t.Fatalf("%s: LValue(%v) = %v (%v), want %v (%v)", tag, r, gl, err1, wl, err2)
		}
	}
	gi, gr, err1 := got.TwoApprox(tt)
	wi, wr, err2 := ref.TwoApprox(tt)
	if gi != wi || gr != wr || (err1 == nil) != (err2 == nil) {
		t.Fatalf("%s: TwoApprox(%d) = (%d, %v, %v), want (%d, %v, %v)", tag, tt, gi, gr, err1, wi, wr, err2)
	}
	step, err := got.BuildLStep(context.Background(), tt)
	if err != nil {
		t.Fatalf("%s: BuildLStep: %v", tag, err)
	}
	refStep, err := ref.BuildLStep(context.Background(), tt)
	if err != nil {
		t.Fatalf("%s: ref BuildLStep: %v", tag, err)
	}
	if len(step.Breaks) != len(refStep.Breaks) {
		t.Fatalf("%s: %d breaks, want %d", tag, len(step.Breaks), len(refStep.Breaks))
	}
	for k := range step.Breaks {
		if step.Breaks[k] != refStep.Breaks[k] || step.Vals[k] != refStep.Vals[k] {
			t.Fatalf("%s: step[%d] = (%v, %v), want (%v, %v)",
				tag, k, step.Breaks[k], step.Vals[k], refStep.Breaks[k], refStep.Vals[k])
		}
	}
}

// TestMutableRemoteMatchesFresh: a MutableShardedIndex over remote epoch
// sessions answers every snapshot bit-identically to a fresh CellIndex on
// exactly that epoch's point set — through appends, merges, and deletes.
func TestMutableRemoteMatchesFresh(t *testing.T) {
	ctx := context.Background()
	pts := testPoints(t, 11, 400, 2)
	opts := testCellOptions(2)
	n0 := 300
	addrs, copts := startServers(t, 2, ServerOptions{})

	m, err := geometry.NewMutableShardedIndexBackends(ctx, frameOf(t, pts[:n0]), geometry.ShardedIndexOptions{
		Shards: 2, Policy: geometry.ShardMorton, Cell: opts,
	}, MutableShardDialer(addrs, copts))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	freshAt := func(rows []vec.Vector) *geometry.CellIndex {
		ref, err := geometry.NewCellIndex(rows, opts)
		if err != nil {
			t.Fatal(err)
		}
		return ref
	}

	snap := func(e geometry.Epoch) geometry.BallIndex {
		ix, err := m.Snapshot(ctx, e)
		if err != nil {
			t.Fatalf("Snapshot(%d): %v", e, err)
		}
		return ix
	}

	e1 := m.Epoch()
	assertSnapshotMatches(t, "epoch1", snap(e1), freshAt(pts[:n0]), opts.MinRadius)

	// Two append batches, checked at each resulting epoch.
	cut := n0 + 60
	ids1, e2, err := m.Append(ctx, frameOf(t, pts[n0:cut]))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids1) != cut-n0 || e2 != e1+1 {
		t.Fatalf("append 1: %d ids, epoch %d", len(ids1), e2)
	}
	assertSnapshotMatches(t, "epoch2", snap(e2), freshAt(pts[:cut]), opts.MinRadius)

	_, e3, err := m.Append(ctx, frameOf(t, pts[cut:]))
	if err != nil {
		t.Fatal(err)
	}
	assertSnapshotMatches(t, "epoch3", snap(e3), freshAt(pts), opts.MinRadius)
	// The older pin still answers for its own epoch.
	assertSnapshotMatches(t, "epoch2-after-3", snap(e2), freshAt(pts[:cut]), opts.MinRadius)

	// Merge folds the deltas into the base without changing any answer.
	if err := m.Merge(ctx); err != nil {
		t.Fatal(err)
	}
	assertSnapshotMatches(t, "epoch3-merged", snap(e3), freshAt(pts), opts.MinRadius)

	// Delete a mix of base and appended rows; survivors keep input order.
	del := []uint64{3, 7, uint64(n0) + 5, uint64(cut) + 1}
	gone := make(map[uint64]bool, len(del))
	for _, id := range del {
		gone[id] = true
	}
	e4, err := m.Delete(ctx, del)
	if err != nil {
		t.Fatal(err)
	}
	if e4 != e3+1 {
		t.Fatalf("delete advanced to %d, want %d", e4, e3+1)
	}
	var surv []vec.Vector
	for i, p := range pts {
		if !gone[uint64(i)] {
			surv = append(surv, p)
		}
	}
	assertSnapshotMatches(t, "epoch4-deleted", snap(e4), freshAt(surv), opts.MinRadius)
}

// TestMutableSessionGuards: mutation calls on an immutable session are
// refused client-side, a frozen-epoch query on a mutable session is
// refused by the server, and a broken mutable session is never silently
// reconnected.
func TestMutableSessionGuards(t *testing.T) {
	pts := testPoints(t, 5, 120, 2)
	members := make([]int32, len(pts))
	for i := range members {
		members[i] = int32(i)
	}
	cfg := geometry.ShardConfig{Points: frameOf(t, pts), Members: members, Cell: testCellOptions(2)}

	addrs, copts := startServers(t, 1, ServerOptions{})

	// Immutable session: mutations are refused before touching the wire.
	rs, err := DialShard(context.Background(), addrs[0], cfg, copts)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if _, err := rs.Append(context.Background(), frameOf(t, pts[:1]), nil, []uint64{999}); err == nil ||
		!strings.Contains(err.Error(), "immutable") {
		t.Fatalf("Append on immutable session: %v, want immutable-session error", err)
	}
	if _, err := rs.Delete(context.Background(), []uint64{0}); err == nil {
		t.Fatal("Delete on immutable session succeeded")
	}
	if _, err := rs.CurrentEpoch(context.Background()); err == nil {
		t.Fatal("CurrentEpoch on immutable session succeeded")
	}
	if err := rs.Merge(context.Background()); err == nil {
		t.Fatal("Merge on immutable session succeeded")
	}

	// Mutable session: epoch 0 queries are a protocol misuse the server
	// rejects without dropping the session.
	mcopts := copts
	mcopts.Mutable = true
	ms, err := DialShard(context.Background(), addrs[0], cfg, mcopts)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	if _, err := ms.DupCounts(context.Background(), geometry.EpochFrozen); err == nil {
		t.Fatal("frozen-epoch DupCounts on mutable session succeeded")
	}
	e, err := ms.CurrentEpoch(context.Background())
	if err != nil || e != 1 {
		t.Fatalf("CurrentEpoch after bad request = %d, %v; want 1", e, err)
	}
}

// TestMutableSessionNotResumed: once a mutable session's connection dies,
// every further call fails — the client must not re-dial and silently
// recreate an empty-delta session.
func TestMutableSessionNotResumed(t *testing.T) {
	pts := testPoints(t, 9, 100, 2)
	members := make([]int32, len(pts))
	for i := range members {
		members[i] = int32(i)
	}
	cfg := geometry.ShardConfig{Points: frameOf(t, pts), Members: members, Cell: testCellOptions(2)}

	ln := NewLoopbackNet()
	l, err := ln.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ServerOptions{})
	go srv.Serve(l)

	opts := Options{Dial: ln.Dial, Mutable: true, Retries: 3}
	rs, err := DialShard(context.Background(), "srv", cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if _, err := rs.CurrentEpoch(context.Background()); err != nil {
		t.Fatal(err)
	}

	srv.Close() // slams every connection

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := rs.CurrentEpoch(ctx); err == nil {
		t.Fatal("call on a dead mutable session succeeded")
	}
	// The second call must hit the session-lost guard, not a re-dial.
	var te *Error
	_, err = rs.CurrentEpoch(ctx)
	if !errors.As(err, &te) || te.Kind != KindIO || !strings.Contains(err.Error(), "session lost") {
		t.Fatalf("after session death: %v, want io session-lost error", err)
	}
}
