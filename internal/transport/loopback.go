package transport

import (
	"context"
	"fmt"
	"net"
	"sync"
)

// LoopbackNet is an in-process, socketless transport: Listen registers a
// named endpoint, Dial pairs with a pending Accept through net.Pipe. The
// full wire protocol — framing, handshake, deadlines, cancellation — runs
// unchanged over it, so equivalence and failure-mode tests are
// deterministic and need no real sockets, ports or firewall dispensation.
// One LoopbackNet is one namespace; addresses are arbitrary strings.
type LoopbackNet struct {
	mu        sync.Mutex
	listeners map[string]*loopbackListener
}

// NewLoopbackNet returns an empty loopback namespace.
func NewLoopbackNet() *LoopbackNet {
	return &LoopbackNet{listeners: make(map[string]*loopbackListener)}
}

// Listen registers addr and returns its listener. An address can be
// listened on once at a time.
func (ln *LoopbackNet) Listen(addr string) (net.Listener, error) {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	if _, ok := ln.listeners[addr]; ok {
		return nil, fmt.Errorf("transport: loopback address %q already in use", addr)
	}
	l := &loopbackListener{
		net:  ln,
		addr: loopbackAddr(addr),
		ch:   make(chan net.Conn),
		done: make(chan struct{}),
	}
	ln.listeners[addr] = l
	return l, nil
}

// Dial connects to a listening loopback address; it is a DialFunc.
func (ln *LoopbackNet) Dial(ctx context.Context, addr string) (net.Conn, error) {
	ln.mu.Lock()
	l := ln.listeners[addr]
	ln.mu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("transport: loopback address %q refused (no listener)", addr)
	}
	client, server := net.Pipe()
	select {
	case l.ch <- server:
		return client, nil
	case <-l.done:
		client.Close()
		server.Close()
		return nil, fmt.Errorf("transport: loopback address %q refused (listener closed)", addr)
	case <-ctx.Done():
		client.Close()
		server.Close()
		return nil, ctx.Err()
	}
}

type loopbackListener struct {
	net  *LoopbackNet
	addr loopbackAddr
	ch   chan net.Conn
	done chan struct{}
	once sync.Once
}

func (l *loopbackListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (l *loopbackListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.net.mu.Lock()
		if l.net.listeners[string(l.addr)] == l {
			delete(l.net.listeners, string(l.addr))
		}
		l.net.mu.Unlock()
	})
	return nil
}

func (l *loopbackListener) Addr() net.Addr { return l.addr }

type loopbackAddr string

func (a loopbackAddr) Network() string { return "loopback" }
func (a loopbackAddr) String() string  { return string(a) }
