// Package transport moves the geometry.ShardBackend queries of a sharded
// ball index across process and machine boundaries: a versioned,
// length-prefixed binary wire protocol over net.Conn, a Server that hosts
// shards behind it, a RemoteShard client that implements
// geometry.ShardBackend, and a socketless loopback net for deterministic
// in-process testing.
//
// # Protocol
//
// Every message is one frame:
//
//	uint32  payload length (big endian)
//	uint8   message type
//	[]byte  payload (length bytes)
//
// A connection speaks a strict request/response sequence. It opens with a
// handshake — HELLO (magic "PCSH" + protocol version) answered by
// HELLO_OK, then OPEN (the shard's geometry.ShardConfig: pinned cell
// options, a mutability flag, the global point set or a preloaded-data
// reference, and the shard's member ids) answered by OPEN_OK — after which
// the client issues one request frame at a time (PARTIALS, COUNT_BATCH,
// DUP_COUNTS, and on mutable sessions APPEND, DELETE, EPOCH_GET, MERGE)
// and reads one response frame (COUNTS, EPOCH, or ERROR). Queries are
// batched by construction: a single PARTIALS round trip carries the capped
// counts for every global point, so the per-sweep network cost is one
// round trip per (ladder level × shard), never per point.
//
// Epochs: every query frame opens with the uint64 epoch it must be
// answered from — 0 (geometry.EpochFrozen) on immutable sessions, a
// concrete pinned epoch on mutable ones. Mutations (APPEND/DELETE) advance
// the session's epoch by exactly one and answer with an EPOCH frame; the
// coordinator drives all shards of one index in lockstep, so a pinned
// query hits the same snapshot on every replica.
//
// Versioning: the version is negotiated in the handshake. The client's
// HELLO carries the highest version it speaks; the server answers with
// min(client, server) provided both sides speak at least version 2, so a
// v3 client interoperates with a v2 server (and vice versa) by settling on
// the common grammar. A server that cannot meet the client answers with a
// typed ERROR frame (code version-mismatch) and the client surfaces
// ErrVersionMismatch; unknown message types on an established connection
// are protocol errors that close it. The version covers the whole frame
// grammar — any change to payload layouts bumps it.
//
// Tracing (version 3): on a session negotiated at version 3 or above,
// every post-OPEN request payload opens with a one-byte trace flag — 0
// (untraced; nothing follows) or 1 followed by the 16-byte trace ID of the
// client's query trace. The server tags its logs and per-request spans
// with the propagated ID, so one traced query correlates across the
// client and every shard server it fanned out to. The field never
// influences answers: a v3 session with flag 0 on every frame computes
// byte-identical responses to a v2 session, and trace IDs carry no data
// derived from the points.
//
// All integers are big endian; float64 coordinates travel as their IEEE
// bit patterns, so the points a server indexes are bit-identical to the
// client's and the equivalence contract of geometry.ShardedIndex survives
// the wire.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"privcluster/internal/vec"
)

// ProtocolVersion is the highest wire protocol version this package
// speaks. Version 2 added mutable sessions: the OPEN mutability flag, the
// leading epoch on every query frame, and the APPEND/DELETE/EPOCH_GET/
// MERGE request types with their EPOCH response. Version 3 added the
// optional trace-ID prefix on post-OPEN request payloads (see the package
// comment); sessions negotiate down to version 2 against older peers.
const ProtocolVersion uint16 = 3

// minProtocolVersion is the oldest version either side still accepts in
// negotiation: the version-2 grammar is the floor (version 1 predates the
// epoch discipline the geometry layer now requires).
const minProtocolVersion uint16 = 2

// wireMagic opens every HELLO frame: a connection that does not start
// with it is not speaking this protocol at all.
var wireMagic = [4]byte{'P', 'C', 'S', 'H'}

// maxFramePayload bounds a frame's declared payload length so a corrupt
// or hostile peer cannot make the reader allocate unboundedly. 1 GiB
// covers ~16M points of dimension 8 in one OPEN frame.
const maxFramePayload = 1 << 30

// Message types.
const (
	msgHello      = 1  // client → server: magic + version
	msgHelloOK    = 2  // server → client: accepted version
	msgOpen       = 3  // client → server: shard config
	msgOpenOK     = 4  // server → client: member/global count echo
	msgPartials   = 5  // client → server: one capped bulk-count pass
	msgCounts     = 6  // server → client: []int32 results
	msgCountBatch = 7  // client → server: exact counts around ad-hoc centers
	msgDupCounts  = 8  // client → server: duplicate-table contribution
	msgError      = 9  // server → client: typed failure
	msgAppend     = 10 // client → server: one epoch-advancing append batch
	msgDelete     = 11 // client → server: one epoch-advancing delete batch
	msgEpochGet   = 12 // client → server: current epoch query
	msgMerge      = 13 // client → server: fold append deltas into the base
	msgEpoch      = 14 // server → client: epoch + member-row count
)

// Server-side error codes carried by msgError frames.
const (
	codeVersion      = 1 // protocol version not supported
	codeBadRequest   = 2 // malformed or out-of-contract request
	codeInternal     = 3 // shard-side failure while serving the request
	codeShuttingDown = 4 // server is draining; reconnect elsewhere
)

// writeFrame writes one frame and flushes it.
func writeFrame(w interface {
	io.Writer
	Flush() error
}, typ byte, payload []byte) error {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	return w.Flush()
}

// readFrame reads one frame, bounding the payload size.
func readFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > maxFramePayload {
		return 0, nil, fmt.Errorf("frame payload of %d bytes exceeds the %d limit", n, maxFramePayload)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[4], payload, nil
}

// wbuf builds a payload.
type wbuf struct{ b []byte }

func (w *wbuf) u8(v uint8)   { w.b = append(w.b, v) }
func (w *wbuf) u16(v uint16) { w.b = binary.BigEndian.AppendUint16(w.b, v) }
func (w *wbuf) u32(v uint32) { w.b = binary.BigEndian.AppendUint32(w.b, v) }
func (w *wbuf) i32(v int32)  { w.u32(uint32(v)) }
func (w *wbuf) f64(v float64) {
	w.b = binary.BigEndian.AppendUint64(w.b, math.Float64bits(v))
}
func (w *wbuf) str(s string) {
	w.u32(uint32(len(s)))
	w.b = append(w.b, s...)
}
func (w *wbuf) vectors(vs []vec.Vector) {
	for _, v := range vs {
		for _, x := range v {
			w.f64(x)
		}
	}
}

// frame encodes a Frame's coordinates straight from its flat backing slice —
// one pass, no per-row indirection — producing exactly the bytes vectors()
// would for the same values (big-endian float64 bit patterns in row-major
// order). Float32 frames are upconverted coordinate-wise (exact), so the
// wire format is precision-independent and ProtocolVersion is unaffected.
func (w *wbuf) frame(f *vec.Frame) {
	if data := f.Data(); data != nil {
		need := 8 * len(data)
		if cap(w.b)-len(w.b) < need {
			grown := make([]byte, len(w.b), len(w.b)+need)
			copy(grown, w.b)
			w.b = grown
		}
		for _, x := range data {
			w.b = binary.BigEndian.AppendUint64(w.b, math.Float64bits(x))
		}
		return
	}
	for _, x := range f.Data32() {
		w.b = binary.BigEndian.AppendUint64(w.b, math.Float64bits(float64(x)))
	}
}

// errTruncated marks a payload shorter than its grammar requires.
var errTruncated = errors.New("truncated payload")

// rbuf decodes a payload with sticky errors: after the first failure every
// read returns zero values, and the caller checks err once at the end.
type rbuf struct {
	b   []byte
	off int
	err error
}

func (r *rbuf) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.b) || r.off+n < r.off {
		r.err = errTruncated
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

func (r *rbuf) u8() uint8 {
	s := r.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

func (r *rbuf) u16() uint16 {
	s := r.take(2)
	if s == nil {
		return 0
	}
	return binary.BigEndian.Uint16(s)
}

func (r *rbuf) u32() uint32 {
	s := r.take(4)
	if s == nil {
		return 0
	}
	return binary.BigEndian.Uint32(s)
}

func (r *rbuf) i32() int32 { return int32(r.u32()) }

func (r *rbuf) u64() uint64 {
	s := r.take(8)
	if s == nil {
		return 0
	}
	return binary.BigEndian.Uint64(s)
}

func (r *rbuf) f64() float64 {
	s := r.take(8)
	if s == nil {
		return 0
	}
	return math.Float64frombits(binary.BigEndian.Uint64(s))
}

func (r *rbuf) str() string {
	n := int(r.u32())
	if n > len(r.b)-r.off {
		r.err = errTruncated
		return ""
	}
	return string(r.take(n))
}

// flat decodes k·d float64 coordinates into one flat allocation. The
// allocation is bounded by the bytes actually present: header-claimed counts
// a malformed or hostile frame inflates past its payload fail as truncated
// here, before any make() can OOM or panic the server (the maxFramePayload
// cap alone bounds the payload, not what a frame claims to contain).
func (r *rbuf) flat(k, d int) []float64 {
	if r.err != nil {
		return nil
	}
	if k < 0 || d < 0 || (k > 0 && d == 0) {
		r.err = errTruncated
		return nil
	}
	if need := 8 * k * d; need < 0 || need > len(r.b)-r.off {
		r.err = errTruncated
		return nil
	}
	flat := make([]float64, k*d)
	for i := range flat {
		flat[i] = r.f64()
	}
	if r.err != nil {
		return nil
	}
	return flat
}

// vectors decodes k vectors of dimension d as header views over one flat
// allocation (ad-hoc center batches).
func (r *rbuf) vectors(k, d int) []vec.Vector {
	flat := r.flat(k, d)
	if flat == nil {
		return nil
	}
	out := make([]vec.Vector, k)
	for i := range out {
		out[i] = vec.Vector(flat[i*d : (i+1)*d])
	}
	return out
}

// frame decodes k rows of dimension d straight into a Frame wrapping the
// flat allocation — the decode-side counterpart of wbuf.frame.
func (r *rbuf) frame(k, d int) *vec.Frame {
	flat := r.flat(k, d)
	if flat == nil {
		return nil
	}
	f, err := vec.FrameFromData(flat, d)
	if err != nil {
		r.err = err
		return nil
	}
	return f
}

// counts decodes a msgCounts payload. want >= 0 enforces the expected
// slot count; want < 0 accepts any self-consistent length — the
// pinned-epoch bulk responses, whose row count only the epoch's snapshot
// knows (the geometry layer validates it against the pinned view).
func decodeCounts(payload []byte, want int) ([]int32, error) {
	r := &rbuf{b: payload}
	k := int(r.u32())
	if want >= 0 && k != want {
		return nil, fmt.Errorf("counts response carries %d slots, want %d", k, want)
	}
	if k < 0 || 4*k > len(payload)-r.off {
		return nil, errTruncated
	}
	out := make([]int32, k)
	for i := range out {
		out[i] = r.i32()
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(payload) {
		return nil, fmt.Errorf("counts response has %d trailing bytes", len(payload)-r.off)
	}
	return out, nil
}

// encodeCounts builds a msgCounts payload.
func encodeCounts(counts []int32) []byte {
	w := &wbuf{b: make([]byte, 0, 4+4*len(counts))}
	w.u32(uint32(len(counts)))
	for _, c := range counts {
		w.i32(c)
	}
	return w.b
}

// encodeEpoch builds a msgEpoch payload: the session's epoch plus its
// member-row count (a cheap consistency echo for diagnostics).
func encodeEpoch(epoch uint64, rows int) []byte {
	w := &wbuf{b: make([]byte, 0, 12)}
	w.b = binary.BigEndian.AppendUint64(w.b, epoch)
	w.u32(uint32(rows))
	return w.b
}

// decodeEpoch decodes a msgEpoch payload.
func decodeEpoch(payload []byte) (epoch uint64, rows int, err error) {
	r := &rbuf{b: payload}
	epoch = r.u64()
	rows = int(r.u32())
	if r.err != nil {
		return 0, 0, r.err
	}
	if r.off != len(payload) {
		return 0, 0, fmt.Errorf("epoch response has %d trailing bytes", len(payload)-r.off)
	}
	return epoch, rows, nil
}

// PointsChecksum is FNV-1a over the big-endian bit patterns of every
// coordinate in order. An OPEN handshake that omits the point payload
// carries it instead, and the server verifies it against the preloaded
// data: count and dimension alone cannot catch a shardserver -csv that
// prepared different coordinates (wrong grid size, wrong domain bounds)
// than the client did — a silent way to lose the bit-identical
// equivalence contract.
// The hash runs over the frame's flat backing slice in one pass; for
// float64 frames the bytes are identical to hashing the rows vector by
// vector, so existing baselines and preloaded servers keep verifying.
func PointsChecksum(points *vec.Frame) uint64 {
	h := uint64(14695981039346656037)
	var buf [8]byte
	mix := func(x float64) {
		binary.BigEndian.PutUint64(buf[:], math.Float64bits(x))
		for _, c := range buf {
			h ^= uint64(c)
			h *= 1099511628211
		}
	}
	if data := points.Data(); data != nil {
		for _, x := range data {
			mix(x)
		}
	} else {
		for _, x := range points.Data32() {
			mix(float64(x))
		}
	}
	return h
}
