// Package jl implements the geometric random projections GoodCenter relies
// on: the Johnson–Lindenstrauss transform (Lemma 4.10 of the paper) used to
// reduce R^d to R^k with k = O(log n) while preserving pairwise distances up
// to a constant, and random orthonormal bases (Lemma 4.9) used to rotate R^d
// so that a bounded-diameter set projects into short intervals on every
// axis.
package jl

import (
	"fmt"
	"math"
	"math/rand"

	"privcluster/internal/vec"
)

// Transform is a linear map f(x) = (1/√k)·A·x with A a k×d matrix of i.i.d.
// standard Gaussians (Lemma 4.10). When k ≥ d the transform is replaced by
// the identity: distances are then preserved exactly and nothing is gained
// by projecting up.
type Transform struct {
	a        *vec.Matrix // nil when identity
	inDim    int
	outDim   int
	identity bool
}

// NewTransform draws a JL transform from R^d to R^k. If k ≥ d it returns the
// identity embedding (OutDim == d).
func NewTransform(rng *rand.Rand, d, k int) (*Transform, error) {
	if d <= 0 || k <= 0 {
		return nil, fmt.Errorf("jl: dimensions must be positive, got d=%d k=%d", d, k)
	}
	if k >= d {
		return &Transform{inDim: d, outDim: d, identity: true}, nil
	}
	a := vec.NewMatrix(k, d)
	scale := 1 / math.Sqrt(float64(k))
	for i := 0; i < k; i++ {
		for j := 0; j < d; j++ {
			a.Set(i, j, rng.NormFloat64()*scale)
		}
	}
	return &Transform{a: a, inDim: d, outDim: k}, nil
}

// InDim returns the input dimension d.
func (t *Transform) InDim() int { return t.inDim }

// OutDim returns the output dimension (k, or d for the identity case).
func (t *Transform) OutDim() int { return t.outDim }

// Identity reports whether the transform is the identity embedding.
func (t *Transform) Identity() bool { return t.identity }

// Apply maps one point.
func (t *Transform) Apply(x vec.Vector) vec.Vector {
	if x.Dim() != t.inDim {
		panic(fmt.Sprintf("jl: Apply dimension %d, want %d", x.Dim(), t.inDim))
	}
	if t.identity {
		return x.Clone()
	}
	return t.a.MulVec(x)
}

// ApplyAll maps a set of points. All outputs share one flat backing array
// (two allocations total instead of one per point — GoodCenter projects
// every input point, so the difference is n allocations per call).
func (t *Transform) ApplyAll(xs []vec.Vector) []vec.Vector {
	out := make([]vec.Vector, len(xs))
	buf := make([]float64, len(xs)*t.outDim)
	for i, x := range xs {
		if x.Dim() != t.inDim {
			panic(fmt.Sprintf("jl: ApplyAll dimension %d, want %d", x.Dim(), t.inDim))
		}
		dst := vec.Vector(buf[i*t.outDim : (i+1)*t.outDim])
		if t.identity {
			copy(dst, x)
		} else {
			t.a.MulVecInto(dst, x)
		}
		out[i] = dst
	}
	return out
}

// ApplyFrame maps every row of a frame, returning the projections as a
// frame. The identity transform on a float64 frame returns f itself — a
// no-copy alias, safe because frames are read-only once shared — so the
// common k ≥ d case costs zero allocations. Otherwise the projections are
// written into one fresh float64 frame.
func (t *Transform) ApplyFrame(f *vec.Frame) *vec.Frame {
	if f.Dim() != t.inDim {
		panic(fmt.Sprintf("jl: ApplyFrame dimension %d, want %d", f.Dim(), t.inDim))
	}
	if t.identity && f.Precision() == vec.Float64 {
		return f
	}
	out := vec.NewFrame(f.N(), t.outDim)
	var scratch vec.Vector // only allocated for float32 inputs
	for i := 0; i < f.N(); i++ {
		x := f.RowView(i, scratch)
		scratch = x
		dst := out.Row(i)
		if t.identity {
			copy(dst, x)
		} else {
			t.a.MulVecInto(dst, x)
		}
	}
	return out
}

// TargetDim returns the projection dimension that makes the distortion bound
// of Lemma 4.10 hold for n points with parameter η and failure probability
// β: the smallest k with 2n²·exp(−η²k/8) ≤ β, i.e. k = ⌈(8/η²)·ln(2n²/β)⌉.
// GoodCenter uses η = 1/2 (distances preserved within a factor 1±1/2 on
// squared norms), for which this is Θ(log(n/β)) — the source of the
// O(√log n) factor in the final radius.
func TargetDim(n int, eta, beta float64) int {
	if n < 2 {
		n = 2
	}
	if eta <= 0 || eta > 1 || beta <= 0 || beta >= 1 {
		panic("jl: TargetDim parameters out of range")
	}
	k := 8 / (eta * eta) * math.Log(2*float64(n)*float64(n)/beta)
	return int(math.Ceil(k))
}

// RandomBasis returns a uniformly random orthonormal basis of R^d as a d×d
// matrix whose rows are the basis vectors (Gaussian matrix followed by
// Gram–Schmidt). Used by GoodCenter Step 8.
func RandomBasis(rng *rand.Rand, d int) (*vec.Matrix, error) {
	if d <= 0 {
		return nil, fmt.Errorf("jl: basis dimension must be positive, got %d", d)
	}
	for attempt := 0; attempt < 4; attempt++ {
		m := vec.NewMatrix(d, d)
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
		}
		if err := m.GramSchmidt(); err == nil {
			return m, nil
		}
	}
	// A Gaussian matrix is singular with probability 0; four failures in a
	// row indicate a broken RNG.
	return nil, fmt.Errorf("jl: could not draw a non-singular Gaussian matrix for d=%d", d)
}

// ProjectionBound returns the per-axis half-width of Lemma 4.9: for m points
// of diameter diam in R^d and a random basis, with probability ≥ 1−β every
// pairwise difference projects onto every basis vector with magnitude at
// most 2·sqrt(ln(d·m/β)/d)·diam.
func ProjectionBound(d, m int, beta, diam float64) float64 {
	if d <= 0 || m <= 0 || beta <= 0 || beta >= 1 {
		panic("jl: ProjectionBound parameters out of range")
	}
	return 2 * math.Sqrt(math.Log(float64(d)*float64(m)/beta)/float64(d)) * diam
}
