package jl

import (
	"math"
	"math/rand"
	"testing"

	"privcluster/internal/vec"
)

func randomPoints(rng *rand.Rand, n, d int, scale float64) []vec.Vector {
	pts := make([]vec.Vector, n)
	for i := range pts {
		p := make(vec.Vector, d)
		for j := range p {
			p[j] = rng.NormFloat64() * scale
		}
		pts[i] = p
	}
	return pts
}

func TestNewTransformValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewTransform(rng, 0, 5); err == nil {
		t.Error("d=0 accepted")
	}
	if _, err := NewTransform(rng, 5, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestIdentityWhenKGeD(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr, err := NewTransform(rng, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Identity() || tr.OutDim() != 4 {
		t.Fatalf("expected identity with OutDim 4, got identity=%v OutDim=%d", tr.Identity(), tr.OutDim())
	}
	x := vec.Of(1, 2, 3, 4)
	y := tr.Apply(x)
	if !y.Equal(x) {
		t.Errorf("identity Apply = %v", y)
	}
	y[0] = 99
	if x[0] != 1 {
		t.Error("identity Apply aliases input")
	}
}

func TestApplyPanicsOnWrongDim(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr, _ := NewTransform(rng, 8, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("Apply with wrong dim did not panic")
		}
	}()
	tr.Apply(vec.Of(1, 2))
}

func TestDistancePreservation(t *testing.T) {
	// Lemma 4.10 with η = 1/2: squared distances preserved within (1±1/2)
	// with probability ≥ 1−β over the draw of A.
	rng := rand.New(rand.NewSource(4))
	n, d := 40, 200
	beta := 0.1
	eta := 0.5
	k := TargetDim(n, eta, beta)
	pts := randomPoints(rng, n, d, 1)

	failures := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		tr, err := NewTransform(rng, d, k)
		if err != nil {
			t.Fatal(err)
		}
		proj := tr.ApplyAll(pts)
		ok := true
		for i := 0; i < n && ok; i++ {
			for j := i + 1; j < n && ok; j++ {
				orig := pts[i].DistSq(pts[j])
				got := proj[i].DistSq(proj[j])
				if got < (1-eta)*orig || got > (1+eta)*orig {
					ok = false
				}
			}
		}
		if !ok {
			failures++
		}
	}
	if frac := float64(failures) / trials; frac > beta {
		t.Errorf("distortion failure rate %v exceeds beta %v", frac, beta)
	}
}

func TestTargetDimFormulaAndPanics(t *testing.T) {
	k := TargetDim(1000, 0.5, 0.1)
	want := int(math.Ceil(8 / 0.25 * math.Log(2*1e6/0.1)))
	if k != want {
		t.Errorf("TargetDim = %d, want %d", k, want)
	}
	if TargetDim(0, 0.5, 0.1) != TargetDim(2, 0.5, 0.1) {
		t.Error("small n not clamped")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("TargetDim(eta=0) did not panic")
		}
	}()
	TargetDim(10, 0, 0.1)
}

func TestRandomBasisOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, d := range []int{1, 2, 5, 16} {
		b, err := RandomBasis(rng, d)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if got := b.Row(i).Dot(b.Row(j)); math.Abs(got-want) > 1e-9 {
					t.Fatalf("d=%d ⟨%d,%d⟩=%v", d, i, j, got)
				}
			}
		}
	}
	if _, err := RandomBasis(rng, 0); err == nil {
		t.Error("d=0 accepted")
	}
}

func TestProjectionBoundEmpirical(t *testing.T) {
	// Lemma 4.9: projections of pairwise differences onto random basis
	// vectors are short. Verify the stated bound holds empirically.
	rng := rand.New(rand.NewSource(6))
	d, m := 64, 20
	beta := 0.1
	pts := randomPoints(rng, m, d, 1)
	diam := 0.0
	for i := range pts {
		for j := range pts {
			if dd := pts[i].Dist(pts[j]); dd > diam {
				diam = dd
			}
		}
	}
	bound := ProjectionBound(d, m, beta, diam)

	failures := 0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		basis, err := RandomBasis(rng, d)
		if err != nil {
			t.Fatal(err)
		}
		ok := true
		for i := 0; i < m && ok; i++ {
			for j := i + 1; j < m && ok; j++ {
				diff := pts[i].Sub(pts[j])
				for ax := 0; ax < d; ax++ {
					if math.Abs(diff.Dot(basis.Row(ax))) > bound {
						ok = false
						break
					}
				}
			}
		}
		if !ok {
			failures++
		}
	}
	if frac := float64(failures) / trials; frac > beta {
		t.Errorf("projection bound failure rate %v exceeds %v", frac, beta)
	}
}

func TestProjectionBoundPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ProjectionBound(d=0) did not panic")
		}
	}()
	ProjectionBound(0, 1, 0.1, 1)
}

func TestApplyAllLength(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr, _ := NewTransform(rng, 10, 3)
	pts := randomPoints(rng, 5, 10, 1)
	out := tr.ApplyAll(pts)
	if len(out) != 5 {
		t.Fatalf("ApplyAll returned %d points", len(out))
	}
	for _, p := range out {
		if p.Dim() != 3 {
			t.Fatalf("projected dim = %d", p.Dim())
		}
	}
}
