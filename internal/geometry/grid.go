// Package geometry provides the discrete domain and ball-counting machinery
// of the 1-cluster problem: the quantized grid X^d (Definition 1.2 and
// Remark 3.3), the BallIndex abstraction with its two backends — the exact
// Θ(n²) DistanceIndex and the O(n·d) cell-hash CellIndex — and the
// capped-average score L(r, S) of Section 3.1, the sensitivity-2 surrogate
// for "the largest number of points in a ball of radius r", materialized as
// a step function over the radius grid so RecConcave can search it
// efficiently (Remark 4.4).
package geometry

import (
	"fmt"
	"math"

	"privcluster/internal/vec"
)

// Grid describes the discretized domain X^d: the d-dimensional unit cube
// quantized with step 1/(|X|−1), exactly as the paper fixes after
// Remark 3.3. Size is |X| (the number of grid values per axis).
type Grid struct {
	Size int64
	Dim  int
}

// NewGrid validates and returns a grid.
func NewGrid(size int64, dim int) (Grid, error) {
	if size < 2 {
		return Grid{}, fmt.Errorf("geometry: grid needs |X| ≥ 2, got %d", size)
	}
	if dim < 1 {
		return Grid{}, fmt.Errorf("geometry: dimension must be ≥ 1, got %d", dim)
	}
	return Grid{Size: size, Dim: dim}, nil
}

// Step returns the grid step 1/(|X|−1).
func (g Grid) Step() float64 { return 1 / float64(g.Size-1) }

// Quantize snaps v onto the grid: each coordinate is clamped to [0, 1] and
// rounded to the nearest multiple of Step.
func (g Grid) Quantize(v vec.Vector) vec.Vector {
	out := make(vec.Vector, len(v))
	g.QuantizeInto(out, v)
	return out
}

// QuantizeInto writes Quantize(v) into dst without allocating; dst may alias
// v. It is the allocation-free path Dataset.Open uses to quantize straight
// into a frame's rows.
func (g Grid) QuantizeInto(dst, v vec.Vector) {
	if v.Dim() != g.Dim {
		panic(fmt.Sprintf("geometry: Quantize dimension %d, want %d", v.Dim(), g.Dim))
	}
	if dst.Dim() != g.Dim {
		panic(fmt.Sprintf("geometry: QuantizeInto destination dimension %d, want %d", dst.Dim(), g.Dim))
	}
	s := g.Step()
	for i, x := range v {
		x = math.Max(0, math.Min(1, x))
		dst[i] = math.Round(x/s) * s
	}
}

// OnGrid reports whether v lies (numerically) on the grid.
func (g Grid) OnGrid(v vec.Vector) bool {
	if v.Dim() != g.Dim {
		return false
	}
	s := g.Step()
	for _, x := range v {
		if x < -1e-12 || x > 1+1e-12 {
			return false
		}
		k := math.Round(x / s)
		if math.Abs(x-k*s) > 1e-9*math.Max(1, math.Abs(x)) {
			return false
		}
	}
	return true
}

// MaxDistance returns the diameter of the domain, √d (the unit cube's
// diagonal).
func (g Grid) MaxDistance() float64 { return math.Sqrt(float64(g.Dim)) }

// RadiusUnit returns the resolution of the radius grid GoodRadius searches:
// half the grid step, matching Algorithm 1's solution set
// {0, 1/(2|X|), 2/(2|X|), …, ⌈√d⌉} up to the Step/2 normalization.
func (g Grid) RadiusUnit() float64 { return g.Step() / 2 }

// RadiusGridSize returns the number of candidate radii: indices 0..M with
// M·RadiusUnit ≥ ⌈√d⌉ ≥ the domain diameter.
func (g Grid) RadiusGridSize() int64 {
	maxR := math.Ceil(g.MaxDistance())
	return int64(math.Ceil(maxR/g.RadiusUnit())) + 1
}

// RadiusFromIndex maps a radius-grid index to a radius in [0, ⌈√d⌉].
func (g Grid) RadiusFromIndex(k int64) float64 {
	return float64(k) * g.RadiusUnit()
}

// IndexFromRadius maps a radius to the smallest grid index whose radius is
// ≥ r (so the grid radius never under-covers), clamped to the grid.
func (g Grid) IndexFromRadius(r float64) int64 {
	if r <= 0 {
		return 0
	}
	m := g.RadiusGridSize() - 1
	kf := math.Ceil(r / g.RadiusUnit())
	if kf >= float64(m) {
		return m
	}
	return int64(kf)
}

// CountInBall returns |{x ∈ points : ‖x − c‖₂ ≤ r}|.
func CountInBall(points []vec.Vector, c vec.Vector, r float64) int {
	n := 0
	rsq := r * r
	for _, p := range points {
		if p.DistSq(c) <= rsq {
			n++
		}
	}
	return n
}

// Ball is a closed Euclidean ball.
type Ball struct {
	Center vec.Vector
	Radius float64
}

// Contains reports whether p lies in the ball.
func (b Ball) Contains(p vec.Vector) bool {
	return p.DistSq(b.Center) <= b.Radius*b.Radius
}

// Count returns the number of the given points inside the ball.
func (b Ball) Count(points []vec.Vector) int {
	return CountInBall(points, b.Center, b.Radius)
}

// Filter splits points into those inside and outside the ball.
func (b Ball) Filter(points []vec.Vector) (inside, outside []vec.Vector) {
	for _, p := range points {
		if b.Contains(p) {
			inside = append(inside, p)
		} else {
			outside = append(outside, p)
		}
	}
	return inside, outside
}
