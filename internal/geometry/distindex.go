package geometry

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"privcluster/internal/vec"
)

// DistanceIndex precomputes, for every input point, the sorted list of
// distances to all input points (including the zero distance to itself).
// It supports O(log n) ball-count queries around input points, the trivial
// 2-approximation to the smallest enclosing ball ("known fact 3" of
// Section 3), and the construction of the L(r, S) step function GoodRadius
// searches.
//
// Memory is Θ(n²) float64s; callers should keep n in the low thousands,
// which covers every experiment in EXPERIMENTS.md.
type DistanceIndex struct {
	points []vec.Vector
	sorted [][]float64 // sorted[i] = ascending distances from point i
}

// NewDistanceIndex builds the index. It returns an error for an empty input
// or mismatched dimensions.
func NewDistanceIndex(points []vec.Vector) (*DistanceIndex, error) {
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("geometry: distance index over empty point set")
	}
	d := points[0].Dim()
	for i, p := range points {
		if p.Dim() != d {
			return nil, fmt.Errorf("geometry: point %d has dimension %d, want %d", i, p.Dim(), d)
		}
	}
	idx := &DistanceIndex{points: points, sorted: make([][]float64, n)}
	// Row construction is embarrassingly parallel and dominates the
	// pipeline's preprocessing cost (Θ(n²·d) distances + Θ(n²·log n) sort),
	// so fan it out across the cores.
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	rows := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range rows {
				row := make([]float64, n)
				for j := 0; j < n; j++ {
					row[j] = points[i].Dist(points[j])
				}
				sort.Float64s(row)
				idx.sorted[i] = row
			}
		}()
	}
	for i := 0; i < n; i++ {
		rows <- i
	}
	close(rows)
	wg.Wait()
	return idx, nil
}

// N returns the number of indexed points.
func (ix *DistanceIndex) N() int { return len(ix.points) }

// Points returns the indexed points (not a copy).
func (ix *DistanceIndex) Points() []vec.Vector { return ix.points }

// CountWithin returns B_r(x_i): the number of input points within distance r
// of point i (always ≥ 1, the point itself).
func (ix *DistanceIndex) CountWithin(i int, r float64) int {
	row := ix.sorted[i]
	return sort.Search(len(row), func(k int) bool { return row[k] > r })
}

// RadiusForCount returns the smallest distance r such that the ball of
// radius r around point i contains at least t input points, i.e. the t-th
// smallest distance from point i. It returns an error when t is outside
// [1, n] — like the rest of the package, it never panics on bad library
// input.
func (ix *DistanceIndex) RadiusForCount(i, t int) (float64, error) {
	if t < 1 || t > len(ix.sorted[i]) {
		return 0, fmt.Errorf("geometry: RadiusForCount t=%d out of [1,%d]", t, len(ix.sorted[i]))
	}
	return ix.sorted[i][t-1], nil
}

// radiusForCount is RadiusForCount without the range check, for hot loops
// that have already validated t against [1, n] once.
func (ix *DistanceIndex) radiusForCount(i, t int) float64 { return ix.sorted[i][t-1] }

// TwoApprox returns the best ball centered at an input point containing at
// least t input points: its radius is at most 2·r_opt ("known fact 3" of
// Section 3 — a ball of radius 2·r_opt around any point of the optimal ball
// covers the whole optimal ball). It returns the center index and radius.
// t is validated once here, before the hot loop.
func (ix *DistanceIndex) TwoApprox(t int) (center int, radius float64, err error) {
	n := ix.N()
	if t < 1 || t > n {
		return 0, 0, fmt.Errorf("geometry: TwoApprox t=%d out of [1,%d]", t, n)
	}
	best, bestR := 0, ix.radiusForCount(0, t)
	for i := 1; i < n; i++ {
		if r := ix.radiusForCount(i, t); r < bestR {
			best, bestR = i, r
		}
	}
	return best, bestR, nil
}

// MaxCountWithin returns max_i B_r(x_i), the largest input-centered ball
// count at radius r (sensitivity Ω(t) in general — the motivation for the
// capped average L; see Section 3.1).
func (ix *DistanceIndex) MaxCountWithin(r float64) int {
	best := 0
	for i := range ix.sorted {
		if c := ix.CountWithin(i, r); c > best {
			best = c
		}
	}
	return best
}
