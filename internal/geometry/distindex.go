package geometry

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"privcluster/internal/vec"
)

// DistanceIndex precomputes, for every input point, the sorted list of
// distances to all input points (including the zero distance to itself).
// It supports O(log n) ball-count queries around input points, the trivial
// 2-approximation to the smallest enclosing ball ("known fact 3" of
// Section 3), and the construction of the L(r, S) step function GoodRadius
// searches.
//
// Memory is Θ(n²) float64s in one flat backing allocation (sorted[i] is a
// subslice of it); callers should keep n in the low thousands, which covers
// every experiment in EXPERIMENTS.md.
type DistanceIndex struct {
	frame   *vec.Frame
	sorted  [][]float64 // sorted[i] = ascending distances from point i; rows of backing
	backing []float64   // one n×n allocation holding every row
}

// NewDistanceIndex builds the index over a slice of vectors — a convenience
// wrapper that copies the points into a flat Frame first.
func NewDistanceIndex(points []vec.Vector) (*DistanceIndex, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("geometry: distance index over empty point set")
	}
	f, err := vec.FrameFromVectors(points)
	if err != nil {
		return nil, fmt.Errorf("geometry: %w", err)
	}
	return NewDistanceIndexFrame(f)
}

// NewDistanceIndexFrame builds the index directly over a Frame without
// copying the coordinates. The index aliases the frame: the caller must not
// mutate rows afterwards.
func NewDistanceIndexFrame(f *vec.Frame) (*DistanceIndex, error) {
	if f == nil || f.N() == 0 {
		return nil, fmt.Errorf("geometry: distance index over empty point set")
	}
	n := f.N()
	idx := &DistanceIndex{
		frame:   f,
		sorted:  make([][]float64, n),
		backing: make([]float64, n*n),
	}
	for i := range idx.sorted {
		idx.sorted[i] = idx.backing[i*n : (i+1)*n : (i+1)*n]
	}
	// Row construction is embarrassingly parallel and dominates the
	// pipeline's preprocessing cost (Θ(n²·d) distances + Θ(n²·log n) sort),
	// so fan it out across the cores. Each worker writes disjoint rows of
	// the shared backing.
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	rows := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := make(vec.Vector, f.Dim())
			for i := range rows {
				row := idx.sorted[i]
				f.DistSqInto(f.RowView(i, scratch), row)
				for j, s := range row {
					row[j] = math.Sqrt(s)
				}
				sort.Float64s(row)
			}
		}()
	}
	for i := 0; i < n; i++ {
		rows <- i
	}
	close(rows)
	wg.Wait()
	return idx, nil
}

// N returns the number of indexed points.
func (ix *DistanceIndex) N() int { return ix.frame.N() }

// Frame returns the indexed point store (not a copy).
func (ix *DistanceIndex) Frame() *vec.Frame { return ix.frame }

// CountWithin returns B_r(x_i): the number of input points within distance r
// of point i (always ≥ 1, the point itself).
func (ix *DistanceIndex) CountWithin(i int, r float64) int {
	row := ix.sorted[i]
	return sort.Search(len(row), func(k int) bool { return row[k] > r })
}

// RadiusForCount returns the smallest distance r such that the ball of
// radius r around point i contains at least t input points, i.e. the t-th
// smallest distance from point i. It returns an error when t is outside
// [1, n] — like the rest of the package, it never panics on bad library
// input.
func (ix *DistanceIndex) RadiusForCount(i, t int) (float64, error) {
	if t < 1 || t > len(ix.sorted[i]) {
		return 0, fmt.Errorf("geometry: RadiusForCount t=%d out of [1,%d]", t, len(ix.sorted[i]))
	}
	return ix.sorted[i][t-1], nil
}

// radiusForCount is RadiusForCount without the range check, for hot loops
// that have already validated t against [1, n] once.
func (ix *DistanceIndex) radiusForCount(i, t int) float64 { return ix.sorted[i][t-1] }

// TwoApprox returns the best ball centered at an input point containing at
// least t input points: its radius is at most 2·r_opt ("known fact 3" of
// Section 3 — a ball of radius 2·r_opt around any point of the optimal ball
// covers the whole optimal ball). It returns the center index and radius.
// t is validated once here, before the hot loop.
func (ix *DistanceIndex) TwoApprox(t int) (center int, radius float64, err error) {
	n := ix.N()
	if t < 1 || t > n {
		return 0, 0, fmt.Errorf("geometry: TwoApprox t=%d out of [1,%d]", t, n)
	}
	best, bestR := 0, ix.radiusForCount(0, t)
	for i := 1; i < n; i++ {
		if r := ix.radiusForCount(i, t); r < bestR {
			best, bestR = i, r
		}
	}
	return best, bestR, nil
}

// MaxCountWithin returns max_i B_r(x_i), the largest input-centered ball
// count at radius r (sensitivity Ω(t) in general — the motivation for the
// capped average L; see Section 3.1).
func (ix *DistanceIndex) MaxCountWithin(r float64) int {
	best := 0
	for i := range ix.sorted {
		if c := ix.CountWithin(i, r); c > best {
			best = c
		}
	}
	return best
}
