package geometry

import (
	"context"

	"privcluster/internal/vec"
)

// BallIndex is the ball-counting abstraction the 1-cluster pipeline runs
// on. It answers the queries of Section 3 — B_r(x_i) counts around input
// points, the t-th smallest distance from a point, the trivial
// 2-approximation of "known fact 3", and the capped-average step function
// L(r, S) of Section 3.1 that Algorithm GoodRadius searches.
//
// Three implementations exist:
//
//   - DistanceIndex materializes all n² pairwise distances. Every answer is
//     exact, but memory is Θ(n²) float64s, so it is only viable for n in the
//     low thousands.
//   - CellIndex buckets the points into a cell hash (one hash per radius
//     scale, built lazily) and answers queries by per-cell candidate
//     pruning: cells entirely inside or outside the query ball are resolved
//     from their counts alone, and only boundary cells are inspected
//     point-by-point. Point queries (CountWithin, RadiusForCount,
//     MaxCountWithin) are exact; TwoApprox, BuildLStep and LValue are
//     approximate — see the CellIndex documentation for the bounds. Memory
//     is O(n·d).
//   - ShardedIndex partitions the points into S shards holding per-shard
//     CellIndexes (built in parallel) and answers every query by summing
//     exact per-shard partial counts — bit-identical to a CellIndex over
//     the same points, with a multi-core build and the seam a distributed
//     backend plugs into.
//
// Implementations must be safe for concurrent readers.
type BallIndex interface {
	// N returns the number of indexed points.
	N() int
	// Frame returns the indexed point store (not a copy): the flat strided
	// frame every sweep runs over. Callers must treat it as read-only.
	Frame() *vec.Frame
	// CountWithin returns B_r(x_i): the number of input points within
	// distance r of point i (≥ 1 for r ≥ 0, the point itself).
	CountWithin(i int, r float64) int
	// RadiusForCount returns the smallest r such that the ball of radius r
	// around point i contains at least t input points — the t-th smallest
	// distance from point i. It returns an error when t is outside [1, n].
	RadiusForCount(i, t int) (float64, error)
	// TwoApprox returns the best input-centered ball containing at least t
	// input points ("known fact 3" of Section 3: its radius is at most
	// 2·r_opt for exact implementations; approximate implementations
	// document their extra slack).
	TwoApprox(t int) (center int, radius float64, err error)
	// MaxCountWithin returns max_i B_r(x_i), the largest input-centered
	// ball count at radius r.
	MaxCountWithin(r float64) int
	// BuildLStep materializes the capped-average score L(·, S) of
	// Section 3.1 as a step function of the radius. It is the dominant
	// per-query preprocessing cost at scale, so it honors ctx: a cancelled
	// context aborts the sweep promptly and returns ctx.Err(). A nil ctx
	// means "never cancel".
	BuildLStep(ctx context.Context, t int) (*LStep, error)
	// LValue computes L(r, S) directly at a single radius.
	LValue(r float64, t int) (float64, error)
}

// The three backends must keep satisfying the interface.
var (
	_ BallIndex = (*DistanceIndex)(nil)
	_ BallIndex = (*CellIndex)(nil)
	_ BallIndex = (*ShardedIndex)(nil)
)
