package geometry_test

// Equivalence tests between the two BallIndex backends: the exact Θ(n²)
// DistanceIndex is the ground truth, and the scalable CellIndex must agree
// exactly on its exact queries (CountWithin, RadiusForCount,
// MaxCountWithin) and stay within its documented sandwich/ladder bounds on
// the approximate ones (TwoApprox, LValue, BuildLStep), both on small
// random sets and on the clustered workloads the pipeline actually serves.

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"privcluster/internal/geometry"
	"privcluster/internal/vec"
	"privcluster/internal/workload"
)

// testOpts pins the CellIndex knobs so the documented error bounds are
// computable in the assertions below.
func testOpts(grid geometry.Grid) geometry.CellIndexOptions {
	return geometry.CellIndexOptions{
		MinRadius:       grid.RadiusUnit(),
		MaxRadius:       grid.MaxDistance(),
		LevelsPerOctave: 2,
		CellsPerRadius:  4,
	}
}

// bounds of testOpts: ladder ratio ρ and the center-rule slack h(r).
const testRho = 1.4142135623730951 // 2^(1/2)

func testH(r float64, d int) float64 {
	return math.Sqrt(float64(d)) / (2 * 4) * testRho * r
}

func clusteredInstance(t *testing.T, rng *rand.Rand, n, d int) ([]vec.Vector, geometry.Grid) {
	t.Helper()
	grid, err := geometry.NewGrid(1024, d)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := workload.PlantedBall{N: n, ClusterSize: 3 * n / 5, Radius: 0.05}.Generate(rng, grid)
	if err != nil {
		t.Fatal(err)
	}
	return inst.Points, grid
}

func bothIndexes(t *testing.T, pts []vec.Vector, grid geometry.Grid) (*geometry.DistanceIndex, *geometry.CellIndex) {
	t.Helper()
	exact, err := geometry.NewDistanceIndex(pts)
	if err != nil {
		t.Fatal(err)
	}
	cell, err := geometry.NewCellIndex(pts, testOpts(grid))
	if err != nil {
		t.Fatal(err)
	}
	return exact, cell
}

func TestCellIndexValidation(t *testing.T) {
	if _, err := geometry.NewCellIndex(nil, geometry.CellIndexOptions{}); err == nil {
		t.Error("empty index accepted")
	}
	if _, err := geometry.NewCellIndex([]vec.Vector{vec.Of(1), vec.Of(1, 2)}, geometry.CellIndexOptions{}); err == nil {
		t.Error("ragged dims accepted")
	}
	pts := []vec.Vector{vec.Of(0.5, 0.5)}
	ix, err := geometry.NewCellIndex(pts, geometry.CellIndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.RadiusForCount(0, 2); err == nil {
		t.Error("RadiusForCount t > n accepted")
	}
	if _, _, err := ix.TwoApprox(0); err == nil {
		t.Error("TwoApprox t = 0 accepted")
	}
	if _, err := ix.LValue(0.1, 2); err == nil {
		t.Error("LValue t > n accepted")
	}
	if _, err := ix.BuildLStep(context.Background(), 0); err == nil {
		t.Error("BuildLStep t = 0 accepted")
	}
}

// The exact queries must agree bit-for-bit with the distance index on small
// inputs across dimensions (both the packed-block and the occupied-cell
// scan paths are exercised by the radius spread).
func TestCellIndexExactQueriesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, d := range []int{1, 2, 3, 5} {
		pts, grid := clusteredInstance(t, rng, 150+rng.Intn(100), d)
		exact, cell := bothIndexes(t, pts, grid)
		n := len(pts)
		radii := []float64{-1, 0, grid.RadiusUnit() / 2, 0.01, 0.05, 0.11, 0.4, math.Sqrt(float64(d)), 1e6}
		for trial := 0; trial < 40; trial++ {
			i := rng.Intn(n)
			for _, r := range radii {
				if got, want := cell.CountWithin(i, r), exact.CountWithin(i, r); got != want {
					t.Fatalf("d=%d: CountWithin(%d, %v) = %d, want %d", d, i, r, got, want)
				}
			}
			tt := 1 + rng.Intn(n)
			got, err := cell.RadiusForCount(i, tt)
			if err != nil {
				t.Fatal(err)
			}
			want, err := exact.RadiusForCount(i, tt)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("d=%d: RadiusForCount(%d, %d) = %v, want %v", d, i, tt, got, want)
			}
		}
		for _, r := range radii {
			if got, want := cell.MaxCountWithin(r), exact.MaxCountWithin(r); got != want {
				t.Fatalf("d=%d: MaxCountWithin(%v) = %d, want %d", d, r, got, want)
			}
		}
	}
}

// TwoApprox on the cell index: the ball must really hold ≥ t points, and
// the radius may exceed the exact TwoApprox radius only by the documented
// ladder factor ρ (or the resolution floor).
func TestCellIndexTwoApproxBound(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, d := range []int{1, 2, 3} {
		pts, grid := clusteredInstance(t, rng, 300, d)
		exact, cell := bothIndexes(t, pts, grid)
		for _, tt := range []int{1, 2, 30, 180, 300} {
			c, r, err := cell.TwoApprox(tt)
			if err != nil {
				t.Fatal(err)
			}
			if got := exact.CountWithin(c, r); got < tt {
				t.Fatalf("d=%d t=%d: TwoApprox ball holds %d points", d, tt, got)
			}
			_, rExact, err := exact.TwoApprox(tt)
			if err != nil {
				t.Fatal(err)
			}
			bound := math.Max(grid.RadiusUnit(), testRho*rExact) * (1 + 1e-12)
			if r > bound {
				t.Fatalf("d=%d t=%d: TwoApprox radius %v > bound %v (exact %v)", d, tt, r, bound, rExact)
			}
		}
	}
}

// LValue: sandwiched between the exact L at r−h and r+h.
func TestCellIndexLValueSandwich(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, d := range []int{1, 2, 3} {
		pts, grid := clusteredInstance(t, rng, 250, d)
		exact, cell := bothIndexes(t, pts, grid)
		n := len(pts)
		for trial := 0; trial < 25; trial++ {
			tt := 1 + rng.Intn(n)
			r := math.Pow(10, -3+3.5*rng.Float64()) // log-uniform in [1e-3, ~3]
			got, err := cell.LValue(r, tt)
			if err != nil {
				t.Fatal(err)
			}
			h := testH(r, d)
			lo, err := exact.LValue(r-h, tt)
			if err != nil {
				t.Fatal(err)
			}
			hi, err := exact.LValue(r+h, tt)
			if err != nil {
				t.Fatal(err)
			}
			if got < lo-1e-9 || got > hi+1e-9 {
				t.Fatalf("d=%d t=%d: LValue(%v) = %v outside sandwich [%v, %v]", d, tt, r, got, lo, hi)
			}
		}
		// Below the resolution floor the answer is the exact radius-0 value
		// (grid-quantized inputs have no distances in (0, 2·RadiusUnit)).
		tt := 2 + rng.Intn(n-2)
		got, _ := cell.LValue(grid.RadiusUnit()/2, tt)
		want, _ := exact.LValue(grid.RadiusUnit()/2, tt)
		if got != want {
			t.Fatalf("d=%d: sub-resolution LValue = %v, want %v", d, got, want)
		}
	}
}

// BuildLStep on the cell index: starts at the exact L(0), stays monotone,
// saturates at t, and every recorded value respects the sandwich bound at
// its breakpoint radius.
func TestCellIndexBuildLStepBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	pts, grid := clusteredInstance(t, rng, 400, 2)
	exact, cell := bothIndexes(t, pts, grid)
	for _, tt := range []int{2, 40, 240, 400} {
		ls, err := cell.BuildLStep(context.Background(), tt)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := exact.LValue(0, tt)
		if got := ls.Eval(0); got != want {
			t.Fatalf("t=%d: L(0) = %v, want exact %v", tt, got, want)
		}
		for i := 1; i < len(ls.Vals); i++ {
			if ls.Vals[i] < ls.Vals[i-1] {
				t.Fatalf("t=%d: L not monotone at break %d", tt, i)
			}
		}
		if last := ls.Vals[len(ls.Vals)-1]; last != float64(tt) {
			t.Fatalf("t=%d: L(∞) = %v, want saturation at t", tt, last)
		}
		for i, r := range ls.Breaks {
			if r == 0 {
				continue
			}
			h := testH(r, 2)
			lo, _ := exact.LValue(r-h, tt)
			hi, _ := exact.LValue(r+h, tt)
			// Monotone clipping can only raise a value toward earlier
			// (smaller-radius) estimates, which are themselves bounded by
			// their own sandwiches below this one's upper end.
			if ls.Vals[i] < lo-1e-9 || ls.Vals[i] > hi+1e-9 {
				t.Fatalf("t=%d: L̂(%v) = %v outside sandwich [%v, %v]", tt, r, ls.Vals[i], lo, hi)
			}
		}
	}
}

// Duplicate-heavy input: the radius-0 fast paths must fire exactly.
func TestCellIndexDuplicates(t *testing.T) {
	grid, _ := geometry.NewGrid(1024, 2)
	pts := make([]vec.Vector, 30)
	for i := range pts {
		pts[i] = vec.Of(0.5, 0.5)
	}
	pts[29] = vec.Of(0.9, 0.9)
	ix, err := geometry.NewCellIndex(pts, testOpts(grid))
	if err != nil {
		t.Fatal(err)
	}
	c, r, err := ix.TwoApprox(20)
	if err != nil {
		t.Fatal(err)
	}
	if r != 0 || !pts[c].Equal(vec.Of(0.5, 0.5)) {
		t.Fatalf("TwoApprox on duplicates = (%d, %v), want a radius-0 duplicate ball", c, r)
	}
	ls, err := ix.BuildLStep(context.Background(), 20)
	if err != nil {
		t.Fatal(err)
	}
	if got := ls.Eval(0); got != 20 {
		t.Errorf("L(0) = %v, want 20 (capped)", got)
	}
	if len(ls.Breaks) != 1 {
		t.Errorf("expected a single saturated piece, got %d", len(ls.Breaks))
	}
	if got := ix.CountWithin(0, 0); got != 29 {
		t.Errorf("CountWithin(0, 0) = %d, want 29 duplicates", got)
	}
}
