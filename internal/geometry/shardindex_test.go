package geometry

import (
	"context"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"privcluster/internal/vec"
)

// frameOf packs test vectors into a flat frame, failing the test on ragged
// input.
func frameOf(t *testing.T, pts []vec.Vector) *vec.Frame {
	t.Helper()
	f, err := vec.FrameFromVectors(pts)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// shardTestPoints builds a planted-cluster-plus-background workload with a
// block of duplicates, quantized onto a grid — the shapes (dense cluster,
// uniform background, exact duplicate classes) that exercise every branch
// of the count passes.
func shardTestPoints(t *testing.T, seed int64, n, d int) []vec.Vector {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	grid, err := NewGrid(1<<12, d)
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]vec.Vector, 0, n)
	center := make(vec.Vector, d)
	for a := range center {
		center[a] = 0.3 + 0.4*rng.Float64()
	}
	for i := 0; i < n/2; i++ { // dense planted cluster
		p := make(vec.Vector, d)
		for a := range p {
			p[a] = center[a] + 0.02*(rng.Float64()*2-1)
		}
		pts = append(pts, grid.Quantize(p))
	}
	dup := grid.Quantize(center.Clone())
	for i := 0; i < n/10; i++ { // exact duplicates (radius-0 structure)
		pts = append(pts, dup)
	}
	for len(pts) < n { // uniform background
		p := make(vec.Vector, d)
		for a := range p {
			p[a] = rng.Float64()
		}
		pts = append(pts, grid.Quantize(p))
	}
	return pts
}

func shardTestOptions(d int) CellIndexOptions {
	grid, _ := NewGrid(1<<12, d)
	return CellIndexOptions{MinRadius: grid.RadiusUnit(), MaxRadius: grid.MaxDistance()}
}

// TestShardedIndexMatchesCellIndex is the tentpole equivalence guarantee at
// the geometry layer: for every shard count and policy, a ShardedIndex
// answers every BallIndex query bit-identically to a CellIndex over the
// same points — exact queries and the approximate L estimators alike, so
// the DP pipeline above consumes identical values (and hence identical
// noise streams) regardless of sharding.
func TestShardedIndexMatchesCellIndex(t *testing.T) {
	for _, d := range []int{1, 2, 3} {
		pts := shardTestPoints(t, int64(d), 900, d)
		opts := shardTestOptions(d)
		ref, err := NewCellIndex(pts, opts)
		if err != nil {
			t.Fatal(err)
		}
		tt := len(pts) / 3
		refStep, err := ref.BuildLStep(context.Background(), tt)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range []int{1, 2, 4, 8} {
			for _, pol := range []ShardPolicy{ShardRoundRobin, ShardMorton} {
				sh, err := NewShardedIndex(context.Background(), pts, ShardedIndexOptions{
					Shards: s, Policy: pol, Cell: opts,
				})
				if err != nil {
					t.Fatalf("d=%d s=%d pol=%d: %v", d, s, pol, err)
				}
				if sh.Shards() != s {
					t.Fatalf("d=%d s=%d: built %d shards", d, s, sh.Shards())
				}
				if sh.lad != ref.lad {
					t.Fatalf("d=%d s=%d pol=%d: ladder diverged: %+v vs %+v", d, s, pol, sh.lad, ref.lad)
				}
				for _, shard := range sh.shards {
					if shard.ix.lad != ref.lad {
						t.Fatalf("d=%d s=%d pol=%d: shard ladder diverged: %+v vs %+v",
							d, s, pol, shard.ix.lad, ref.lad)
					}
				}
				for i := range pts {
					if sh.dupCount[i] != ref.dupCount[i] {
						t.Fatalf("d=%d s=%d pol=%d: dupCount[%d] = %d, want %d",
							d, s, pol, i, sh.dupCount[i], ref.dupCount[i])
					}
				}
				for _, r := range []float64{-1, 0, opts.MinRadius / 2, 0.01, 0.05, 0.3, 2} {
					for _, i := range []int{0, len(pts) / 2, len(pts) - 1} {
						if got, want := sh.CountWithin(i, r), ref.CountWithin(i, r); got != want {
							t.Fatalf("d=%d s=%d pol=%d: CountWithin(%d, %v) = %d, want %d",
								d, s, pol, i, r, got, want)
						}
					}
					if got, want := sh.MaxCountWithin(r), ref.MaxCountWithin(r); got != want {
						t.Fatalf("d=%d s=%d pol=%d: MaxCountWithin(%v) = %d, want %d", d, s, pol, r, got, want)
					}
					gl, err1 := sh.LValue(r, tt)
					wl, err2 := ref.LValue(r, tt)
					if (err1 == nil) != (err2 == nil) || gl != wl {
						t.Fatalf("d=%d s=%d pol=%d: LValue(%v) = %v (%v), want %v (%v)",
							d, s, pol, r, gl, err1, wl, err2)
					}
				}
				for _, tq := range []int{1, 2, tt, len(pts)} {
					gi, gr, err1 := sh.TwoApprox(tq)
					wi, wr, err2 := ref.TwoApprox(tq)
					if gi != wi || gr != wr || (err1 == nil) != (err2 == nil) {
						t.Fatalf("d=%d s=%d pol=%d: TwoApprox(%d) = (%d, %v, %v), want (%d, %v, %v)",
							d, s, pol, tq, gi, gr, err1, wi, wr, err2)
					}
					grr, err1 := sh.RadiusForCount(0, tq)
					wrr, err2 := ref.RadiusForCount(0, tq)
					if grr != wrr || (err1 == nil) != (err2 == nil) {
						t.Fatalf("d=%d s=%d pol=%d: RadiusForCount(0, %d) = %v, want %v",
							d, s, pol, tq, grr, wrr)
					}
				}
				step, err := sh.BuildLStep(context.Background(), tt)
				if err != nil {
					t.Fatal(err)
				}
				if len(step.Breaks) != len(refStep.Breaks) {
					t.Fatalf("d=%d s=%d pol=%d: LStep has %d breaks, want %d",
						d, s, pol, len(step.Breaks), len(refStep.Breaks))
				}
				for k := range step.Breaks {
					if step.Breaks[k] != refStep.Breaks[k] || step.Vals[k] != refStep.Vals[k] {
						t.Fatalf("d=%d s=%d pol=%d: LStep[%d] = (%v, %v), want (%v, %v)",
							d, s, pol, k, step.Breaks[k], step.Vals[k], refStep.Breaks[k], refStep.Vals[k])
					}
				}
			}
		}
	}
}

// TestShardedIndexEdgeCases covers the shard-count boundaries: S above n
// clamps so no shard is empty, S below 1 means 1, a single point works, a
// duplicate-only dataset resolves through the radius-0 paths, and invalid
// inputs fail like the CellIndex.
func TestShardedIndexEdgeCases(t *testing.T) {
	opts := shardTestOptions(2)

	t.Run("shards exceed n", func(t *testing.T) {
		pts := shardTestPoints(t, 1, 5, 2)
		for _, pol := range []ShardPolicy{ShardRoundRobin, ShardMorton} {
			sh, err := NewShardedIndex(context.Background(), pts, ShardedIndexOptions{
				Shards: 64, Policy: pol, Cell: opts,
			})
			if err != nil {
				t.Fatal(err)
			}
			if sh.Shards() != len(pts) {
				t.Errorf("pol %d: S=64 over n=5 built %d shards, want %d", pol, sh.Shards(), len(pts))
			}
			for _, shard := range sh.shards {
				if shard.ix.N() == 0 {
					t.Errorf("pol %d: empty shard built", pol)
				}
			}
			ref, err := NewCellIndex(pts, opts)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := sh.CountWithin(0, 0.5), ref.CountWithin(0, 0.5); got != want {
				t.Errorf("pol %d: CountWithin = %d, want %d", pol, got, want)
			}
		}
	})

	t.Run("zero and negative shards mean one", func(t *testing.T) {
		pts := shardTestPoints(t, 2, 50, 2)
		for _, s := range []int{0, -3} {
			sh, err := NewShardedIndex(context.Background(), pts, ShardedIndexOptions{Shards: s, Cell: opts})
			if err != nil {
				t.Fatal(err)
			}
			if sh.Shards() != 1 {
				t.Errorf("Shards=%d built %d shards, want 1", s, sh.Shards())
			}
		}
	})

	t.Run("single point", func(t *testing.T) {
		sh, err := NewShardedIndex(context.Background(), []vec.Vector{vec.Of(0.5, 0.5)},
			ShardedIndexOptions{Shards: 4, Cell: opts})
		if err != nil {
			t.Fatal(err)
		}
		if got := sh.CountWithin(0, 0.1); got != 1 {
			t.Errorf("CountWithin on singleton = %d", got)
		}
		if i, r, err := sh.TwoApprox(1); err != nil || i != 0 || r != 0 {
			t.Errorf("TwoApprox(1) = (%d, %v, %v)", i, r, err)
		}
	})

	t.Run("all duplicates", func(t *testing.T) {
		pts := make([]vec.Vector, 40)
		for i := range pts {
			pts[i] = vec.Of(0.25, 0.75)
		}
		sh, err := NewShardedIndex(context.Background(), pts, ShardedIndexOptions{Shards: 8, Cell: opts})
		if err != nil {
			t.Fatal(err)
		}
		if i, r, err := sh.TwoApprox(40); err != nil || r != 0 {
			t.Errorf("TwoApprox over duplicates = (%d, %v, %v), want radius 0", i, r, err)
		}
		if v, err := sh.LValue(0, 40); err != nil || v != 40 {
			t.Errorf("LValue(0) over duplicates = %v (%v), want 40", v, err)
		}
	})

	t.Run("invalid input", func(t *testing.T) {
		if _, err := NewShardedIndex(context.Background(), nil, ShardedIndexOptions{Shards: 2, Cell: opts}); err == nil {
			t.Error("empty input accepted")
		}
		bad := []vec.Vector{vec.Of(0.1, 0.2), vec.Of(0.3)}
		if _, err := NewShardedIndex(context.Background(), bad, ShardedIndexOptions{Shards: 2, Cell: opts}); err == nil {
			t.Error("mismatched dimensions accepted")
		}
		sh, err := NewShardedIndex(context.Background(), shardTestPoints(t, 3, 20, 2),
			ShardedIndexOptions{Shards: 2, Cell: opts})
		if err != nil {
			t.Fatal(err)
		}
		for _, bad := range []int{0, -1, 21} {
			if _, err := sh.BuildLStep(context.Background(), bad); err == nil {
				t.Errorf("BuildLStep(t=%d) accepted", bad)
			}
			if _, _, err := sh.TwoApprox(bad); err == nil {
				t.Errorf("TwoApprox(t=%d) accepted", bad)
			}
			if _, err := sh.LValue(0.1, bad); err == nil {
				t.Errorf("LValue(t=%d) accepted", bad)
			}
			if _, err := sh.RadiusForCount(0, bad); err == nil {
				t.Errorf("RadiusForCount(t=%d) accepted", bad)
			}
		}
	})
}

// TestShardedIndexCancellation: a context cancelled before or during the
// build (or a BuildLStep sweep) aborts with ctx.Err() and leaves no leaked
// goroutines — the worker pools and shard builders always drain. Run under
// -race in CI.
func TestShardedIndexCancellation(t *testing.T) {
	pts := shardTestPoints(t, 4, 4000, 2)
	opts := shardTestOptions(2)
	baseline := runtime.NumGoroutine()

	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewShardedIndex(pre, pts, ShardedIndexOptions{Shards: 4, Cell: opts}); err != context.Canceled {
		t.Errorf("pre-cancelled build: err = %v, want context.Canceled", err)
	}

	sh, err := NewShardedIndex(context.Background(), pts, ShardedIndexOptions{Shards: 4, Cell: opts})
	if err != nil {
		t.Fatal(err)
	}
	mid, cancel2 := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := sh.BuildLStep(mid, len(pts)/2)
		done <- err
	}()
	time.Sleep(time.Millisecond)
	cancel2()
	select {
	case err := <-done:
		if err != nil && err != context.Canceled {
			t.Errorf("cancelled BuildLStep: err = %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled BuildLStep did not return")
	}

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > baseline+2 {
		t.Errorf("goroutines leaked: %d vs baseline %d", got, baseline)
	}
}

// TestAssignShardsBalanced: both policies partition all n ids into shards
// whose sizes differ by at most one, with every id appearing exactly once.
func TestAssignShardsBalanced(t *testing.T) {
	pts := shardTestPoints(t, 5, 103, 2)
	for _, pol := range []ShardPolicy{ShardRoundRobin, ShardMorton} {
		for _, s := range []int{1, 2, 7, 103} {
			parts := assignShards(frameOf(t, pts), s, pol)
			seen := make([]bool, len(pts))
			minSz, maxSz := len(pts), 0
			for _, ids := range parts {
				if len(ids) < minSz {
					minSz = len(ids)
				}
				if len(ids) > maxSz {
					maxSz = len(ids)
				}
				for _, id := range ids {
					if seen[id] {
						t.Fatalf("pol %d s=%d: id %d assigned twice", pol, s, id)
					}
					seen[id] = true
				}
			}
			for id, ok := range seen {
				if !ok {
					t.Fatalf("pol %d s=%d: id %d unassigned", pol, s, id)
				}
			}
			if maxSz-minSz > 1 {
				t.Errorf("pol %d s=%d: shard sizes range [%d, %d]", pol, s, minSz, maxSz)
			}
		}
	}
}
