package geometry

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// localDialer is the in-process ShardDialer: the generic backend summation
// path with zero transport, so its equivalence failures can only come from
// the decomposition itself.
func localDialer(_ context.Context, _ int, cfg ShardConfig) (ShardBackend, error) {
	return NewLocalShard(cfg)
}

// TestShardedIndexBackendsMatchesCellIndex pins the transport tentpole at
// the geometry layer: a backend-mode ShardedIndex (shards reached only
// through the ShardBackend interface, global duplicate table assembled
// from per-backend contributions, bulk counts summed from per-backend
// partial vectors) answers every BallIndex query bit-identically to a
// CellIndex over the same points. With this in place, a remote transport
// only has to move the ShardBackend calls faithfully to inherit the whole
// equivalence contract.
func TestShardedIndexBackendsMatchesCellIndex(t *testing.T) {
	for _, d := range []int{1, 2, 3} {
		pts := shardTestPoints(t, int64(d), 700, d)
		opts := shardTestOptions(d)
		ref, err := NewCellIndex(pts, opts)
		if err != nil {
			t.Fatal(err)
		}
		tt := len(pts) / 3
		refStep, err := ref.BuildLStep(context.Background(), tt)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range []int{1, 2, 4} {
			for _, pol := range []ShardPolicy{ShardRoundRobin, ShardMorton} {
				sh, err := NewShardedIndexBackends(context.Background(), frameOf(t, pts), ShardedIndexOptions{
					Shards: s, Policy: pol, Cell: opts,
				}, localDialer)
				if err != nil {
					t.Fatalf("d=%d s=%d pol=%d: %v", d, s, pol, err)
				}
				if sh.Shards() != s {
					t.Fatalf("d=%d s=%d: built %d backends", d, s, sh.Shards())
				}
				if sh.lad != ref.lad {
					t.Fatalf("d=%d s=%d pol=%d: ladder diverged: %+v vs %+v", d, s, pol, sh.lad, ref.lad)
				}
				if sh.N() != ref.N() {
					t.Fatalf("d=%d s=%d: N = %d, want %d", d, s, sh.N(), ref.N())
				}
				for i := range pts {
					if sh.dupCount[i] != ref.dupCount[i] {
						t.Fatalf("d=%d s=%d pol=%d: dupCount[%d] = %d, want %d",
							d, s, pol, i, sh.dupCount[i], ref.dupCount[i])
					}
				}
				for _, r := range []float64{-1, 0, opts.MinRadius / 2, 0.01, 0.05, 0.3, 2} {
					for _, i := range []int{0, len(pts) / 2, len(pts) - 1} {
						if got, want := sh.CountWithin(i, r), ref.CountWithin(i, r); got != want {
							t.Fatalf("d=%d s=%d pol=%d: CountWithin(%d, %v) = %d, want %d",
								d, s, pol, i, r, got, want)
						}
					}
					if got, want := sh.MaxCountWithin(r), ref.MaxCountWithin(r); got != want {
						t.Fatalf("d=%d s=%d pol=%d: MaxCountWithin(%v) = %d, want %d", d, s, pol, r, got, want)
					}
					gl, err1 := sh.LValue(r, tt)
					wl, err2 := ref.LValue(r, tt)
					if (err1 == nil) != (err2 == nil) || gl != wl {
						t.Fatalf("d=%d s=%d pol=%d: LValue(%v) = %v (%v), want %v (%v)",
							d, s, pol, r, gl, err1, wl, err2)
					}
				}
				for _, tq := range []int{1, 2, tt, len(pts)} {
					gi, gr, err1 := sh.TwoApprox(tq)
					wi, wr, err2 := ref.TwoApprox(tq)
					if gi != wi || gr != wr || (err1 == nil) != (err2 == nil) {
						t.Fatalf("d=%d s=%d pol=%d: TwoApprox(%d) = (%d, %v, %v), want (%d, %v, %v)",
							d, s, pol, tq, gi, gr, err1, wi, wr, err2)
					}
					g, err1 := sh.RadiusForCount(len(pts)/2, tq)
					w, err2 := ref.RadiusForCount(len(pts)/2, tq)
					if g != w || (err1 == nil) != (err2 == nil) {
						t.Fatalf("d=%d s=%d pol=%d: RadiusForCount(%d) = %v, want %v", d, s, pol, tq, g, w)
					}
				}
				step, err := sh.BuildLStep(context.Background(), tt)
				if err != nil {
					t.Fatalf("d=%d s=%d pol=%d: BuildLStep: %v", d, s, pol, err)
				}
				if len(step.Breaks) != len(refStep.Breaks) {
					t.Fatalf("d=%d s=%d pol=%d: %d breaks, want %d",
						d, s, pol, len(step.Breaks), len(refStep.Breaks))
				}
				for k := range step.Breaks {
					if step.Breaks[k] != refStep.Breaks[k] || step.Vals[k] != refStep.Vals[k] {
						t.Fatalf("d=%d s=%d pol=%d: step[%d] = (%v, %v), want (%v, %v)",
							d, s, pol, k, step.Breaks[k], step.Vals[k], refStep.Breaks[k], refStep.Vals[k])
					}
				}
				if err := sh.Close(); err != nil {
					t.Fatalf("d=%d s=%d pol=%d: Close: %v", d, s, pol, err)
				}
			}
		}
	}
}

// failingBackend wraps a LocalShard and fails PartialCounts after a set
// number of calls — the minimal stand-in for a shard server dying mid-use.
type failingBackend struct {
	*LocalShard
	calls, failAfter int
	err              error
}

func (f *failingBackend) PartialCounts(ctx context.Context, epoch Epoch, j int, r float64, limit int32, exactBoundary bool) ([]int32, error) {
	f.calls++
	if f.calls > f.failAfter {
		return nil, f.err
	}
	return f.LocalShard.PartialCounts(ctx, epoch, j, r, limit, exactBoundary)
}

// TestShardedIndexBackendFailure: a backend failing mid-LStep-sweep must
// surface its error from BuildLStep — never a hang, never a partial sum —
// and the errorless point queries must report the documented -1.
func TestShardedIndexBackendFailure(t *testing.T) {
	pts := shardTestPoints(t, 3, 400, 2)
	opts := shardTestOptions(2)
	wantErr := errors.New("shard 1 went away")
	var fb *failingBackend
	sh, err := NewShardedIndexBackends(context.Background(), frameOf(t, pts), ShardedIndexOptions{
		Shards: 2, Cell: opts,
	}, func(ctx context.Context, shard int, cfg ShardConfig) (ShardBackend, error) {
		ls, err := NewLocalShard(cfg)
		if err != nil {
			return nil, err
		}
		if shard == 1 {
			fb = &failingBackend{LocalShard: ls, failAfter: 2, err: wantErr}
			return fb, nil
		}
		return ls, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	_, err = sh.BuildLStep(context.Background(), len(pts)/3)
	if !errors.Is(err, wantErr) {
		t.Fatalf("BuildLStep after backend death: err = %v, want %v", err, wantErr)
	}
	if got := sh.MaxCountWithin(0.1); got != -1 {
		t.Errorf("MaxCountWithin after backend death = %d, want -1", got)
	}
	if _, _, err := sh.TwoApprox(len(pts) / 3); !errors.Is(err, wantErr) {
		t.Errorf("TwoApprox after backend death: err = %v, want %v", err, wantErr)
	}
}

// TestShardedIndexBackendsCancellation: cancelling the caller's context
// mid-sweep aborts the fan-out promptly with the context error and drains
// every worker (the test is run under -race in CI, so a leaked writer
// would also trip the detector).
func TestShardedIndexBackendsCancellation(t *testing.T) {
	pts := shardTestPoints(t, 5, 2000, 2)
	opts := shardTestOptions(2)
	sh, err := NewShardedIndexBackends(context.Background(), frameOf(t, pts), ShardedIndexOptions{
		Shards: 4, Cell: opts,
	}, localDialer)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()

	// Pre-cancelled: fails before any work.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sh.BuildLStep(ctx, len(pts)/3); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled BuildLStep: err = %v, want context.Canceled", err)
	}

	// Mid-flight: cancel from a backend hook once the sweep is underway.
	ctx, cancel = context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int32
	hooked := make([]ShardBackend, len(sh.backends))
	for i, be := range sh.backends {
		hooked[i] = &cancelOnCall{ShardBackend: be, n: &calls, after: 3, cancel: cancel}
	}
	orig := sh.backends
	sh.backends = hooked
	_, err = sh.BuildLStep(ctx, len(pts)/3)
	sh.backends = orig
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-flight cancel: err = %v, want context.Canceled", err)
	}
}

// cancelOnCall triggers cancel once the shared call counter reaches
// `after` (atomic: calls within one sweep level run concurrently across
// backends).
type cancelOnCall struct {
	ShardBackend
	n      *atomic.Int32
	after  int32
	cancel context.CancelFunc
}

func (c *cancelOnCall) PartialCounts(ctx context.Context, epoch Epoch, j int, r float64, limit int32, exactBoundary bool) ([]int32, error) {
	if c.n.Add(1) >= c.after {
		c.cancel()
	}
	return c.ShardBackend.PartialCounts(ctx, epoch, j, r, limit, exactBoundary)
}

// TestLocalShardConfigValidation covers the malformed-config rejections a
// remote handshake relies on.
func TestLocalShardConfigValidation(t *testing.T) {
	pts := shardTestPoints(t, 7, 50, 2)
	opts := shardTestOptions(2)
	cases := []struct {
		name string
		cfg  ShardConfig
	}{
		{"no points", ShardConfig{Members: []int32{0}, Cell: opts}},
		{"no members", ShardConfig{Points: frameOf(t, pts), Cell: opts}},
		{"member out of range", ShardConfig{Points: frameOf(t, pts), Members: []int32{int32(len(pts))}, Cell: opts}},
		{"negative member", ShardConfig{Points: frameOf(t, pts), Members: []int32{-1}, Cell: opts}},
		// A ragged "mixed dims" config is no longer representable: the frame
		// type guarantees uniform dimension by construction.
	}
	for _, tc := range cases {
		if _, err := NewLocalShard(tc.cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestShardedIndexBackendsDialFailure: a dial error aborts the build and
// closes the backends that did come up.
func TestShardedIndexBackendsDialFailure(t *testing.T) {
	pts := shardTestPoints(t, 9, 100, 2)
	opts := shardTestOptions(2)
	closed := 0
	_, err := NewShardedIndexBackends(context.Background(), frameOf(t, pts), ShardedIndexOptions{
		Shards: 3, Cell: opts,
	}, func(ctx context.Context, shard int, cfg ShardConfig) (ShardBackend, error) {
		if shard == 1 {
			return nil, fmt.Errorf("no route to shard %d", shard)
		}
		ls, err := NewLocalShard(cfg)
		if err != nil {
			return nil, err
		}
		return &closeCounter{ShardBackend: ls, closed: &closed}, nil
	})
	if err == nil {
		t.Fatal("dial failure not surfaced")
	}
	if closed != 2 {
		t.Errorf("closed %d backends, want 2", closed)
	}
}

type closeCounter struct {
	ShardBackend
	closed *int
}

func (c *closeCounter) Close() error {
	*c.closed++
	return c.ShardBackend.Close()
}
