package geometry

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"privcluster/internal/obs"
	"privcluster/internal/vec"
)

// Replica routing event counters: how often calls failed over to a
// sibling, how the hedged-read race resolved, and how many down replicas
// the background prober brought back. Cheap atomics, resolved once.
var (
	statReplicaFailover = obs.Default.Counter("privcluster_replica_events_total",
		"Replica routing events (failover retries, hedge outcomes, probe recoveries).", "event", "failover")
	statReplicaHedgeFired = obs.Default.Counter("privcluster_replica_events_total",
		"Replica routing events (failover retries, hedge outcomes, probe recoveries).", "event", "hedge_fired")
	statReplicaHedgeWon = obs.Default.Counter("privcluster_replica_events_total",
		"Replica routing events (failover retries, hedge outcomes, probe recoveries).", "event", "hedge_won")
	statReplicaHedgeLost = obs.Default.Counter("privcluster_replica_events_total",
		"Replica routing events (failover retries, hedge outcomes, probe recoveries).", "event", "hedge_lost")
	statReplicaProbeRecovered = obs.Default.Counter("privcluster_replica_events_total",
		"Replica routing events (failover retries, hedge outcomes, probe recoveries).", "event", "probe_recovered")
)

// ReplicaDialer establishes the connection to one replica of a shard
// partition. Every replica of a partition must serve the identical
// ShardConfig — the dialers a placement layer constructs all close over
// the same config, which is what makes the replicas interchangeable: each
// bulk query is a pure deterministic function of (config, epoch, request),
// so any replica's answer is bit-identical to any other's.
type ReplicaDialer func(ctx context.Context) (ShardBackend, error)

// ReplicatedShardOptions tunes one ReplicatedShard's failover behavior.
// The zero value gives plain failover: no hedging, health re-probing at
// the default interval, no custom probe.
type ReplicatedShardOptions struct {
	// HedgeDelay arms hedged reads: when a bulk call has not answered
	// after this long, the same request is re-issued to the next sibling
	// replica and the first answer wins. 0 disables hedging (the
	// default — hedging is an opt-in tail-latency trade that spends
	// duplicate shard compute). Safe at any value: partials are
	// deterministic pure reads, so the winner's answer is bit-identical
	// to the loser's and the loser is simply discarded — never summed.
	HedgeDelay time.Duration
	// ProbeInterval is how often the background health checker re-probes
	// replicas marked down (0 = the 2s default; negative disables the
	// prober — down replicas are then only retried as a last resort when
	// every healthy sibling has failed a call).
	ProbeInterval time.Duration
	// Probe, when set, is the lightweight liveness check the health
	// checker runs against a down replica (by index); returning nil marks
	// it up again. When nil, the prober re-dials the replica's backend.
	// Marking a still-dead replica up is harmless — health is a
	// preference order for call routing, never a correctness input.
	Probe func(ctx context.Context, replica int) error
}

// defaultProbeInterval is the health checker's cadence when
// ReplicatedShardOptions.ProbeInterval is zero.
const defaultProbeInterval = 2 * time.Second

// probeTimeout caps one liveness probe so a black-holed replica cannot
// stall the checker loop.
const probeTimeout = 2 * time.Second

// replica is one member of a ReplicatedShard's replica set: its dialer,
// the lazily established backend, and its health mark. mu serializes use
// of the backend — ShardBackend implementations only promise sequential
// reuse, and hedged calls run on distinct replicas concurrently.
type replica struct {
	dial ReplicaDialer
	down atomic.Bool

	mu sync.Mutex
	be ShardBackend
}

// ReplicatedShard serves one shard partition from a replica set: it
// implements ShardBackend by routing every bulk call to a healthy replica,
// failing a broken call over to the next sibling (the error surfaces only
// after every replica has been exhausted), optionally hedging a straggling
// call against a sibling, and re-probing down replicas in the background.
//
// Failover and hedging cannot change releases: every ShardBackend method
// is a pure read, a deterministic function of the shard's (identical
// across replicas) configuration and the request, so whichever replica
// answers, the counts are bit-identical — the DP mechanisms downstream
// consume the same sums and draw the same noise. Which replica computes an
// answer is as invisible to releases as which CPU core does.
//
// Error discipline: a caller's cancellation is returned immediately and
// never triggers failover (the caller gave up — hammering siblings would
// spend their compute for nothing). Every other failure — dial, broken
// connection, protocol violation, a replica-side compute error — marks the
// replica down and moves to the next sibling; when all replicas have
// failed, the first error is returned.
type ReplicatedShard struct {
	replicas []*replica
	opts     ReplicatedShardOptions
	npoints  int

	// base is the shard's lifetime: Close cancels it, aborting in-flight
	// attempts, the prober, and any hedge losers still running.
	base      context.Context
	stop      context.CancelFunc
	proberWG  sync.WaitGroup
	closeOnce sync.Once
}

var _ ShardBackend = (*ReplicatedShard)(nil)

// NewReplicatedShard dials the partition's replica set: the first replica
// (in order) that dials successfully becomes the preferred one; replicas
// that fail to dial are marked down, to be re-probed and retried later. If
// no replica dials, the last dial error is returned — a fully dead
// partition fails the index build with a typed error instead of building
// an index that cannot answer.
func NewReplicatedShard(ctx context.Context, dialers []ReplicaDialer, opts ReplicatedShardOptions) (*ReplicatedShard, error) {
	if len(dialers) == 0 {
		return nil, fmt.Errorf("geometry: replicated shard with no replicas")
	}
	base, stop := context.WithCancel(context.Background())
	r := &ReplicatedShard{
		replicas: make([]*replica, len(dialers)),
		opts:     opts,
		base:     base,
		stop:     stop,
	}
	for i, d := range dialers {
		r.replicas[i] = &replica{dial: d}
	}
	ctx = ctxOrBackground(ctx)
	var dialErr error
	dialed := false
	// Siblings of the first live replica dial lazily, on first failover
	// or hedge to them — one live replica is enough to serve, and eager
	// fan-out dials would make every build pay the full replica set's
	// handshakes.
	for _, rep := range r.replicas {
		be, err := rep.dial(ctx)
		if err != nil {
			rep.down.Store(true)
			if dialErr == nil || errors.Is(dialErr, context.Canceled) {
				dialErr = err
			}
			if ctx.Err() != nil {
				break
			}
			continue
		}
		rep.be = be
		r.npoints = be.NPoints()
		dialed = true
		break
	}
	if !dialed {
		stop()
		return nil, dialErr
	}
	if opts.ProbeInterval >= 0 && len(r.replicas) > 1 {
		interval := opts.ProbeInterval
		if interval == 0 {
			interval = defaultProbeInterval
		}
		r.proberWG.Add(1)
		go r.probeLoop(interval)
	}
	return r, nil
}

// probeLoop is the background health checker: every interval it probes
// the replicas currently marked down and marks the responsive ones up, so
// a recovered replica rejoins the preference order instead of staying a
// last resort forever. It exits when Close cancels the shard.
func (r *ReplicatedShard) probeLoop(interval time.Duration) {
	defer r.proberWG.Done()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-r.base.Done():
			return
		case <-ticker.C:
		}
		for ri, rep := range r.replicas {
			if !rep.down.Load() {
				continue
			}
			pctx, cancel := context.WithTimeout(r.base, probeTimeout)
			var err error
			if r.opts.Probe != nil {
				err = r.opts.Probe(pctx, ri)
			} else {
				err = r.dialProbe(pctx, rep)
			}
			cancel()
			if err == nil && r.base.Err() == nil {
				rep.down.Store(false)
				statReplicaProbeRecovered.Inc()
			}
		}
	}
}

// dialProbe is the default liveness check: establish the replica's backend
// if it has none yet (and keep it for the next call). A replica that
// already holds a backend is optimistically marked up — its next call
// either succeeds or re-marks it down, and routing to a dead replica only
// costs a failover hop, never a wrong answer.
func (r *ReplicatedShard) dialProbe(ctx context.Context, rep *replica) error {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if rep.be != nil {
		return nil
	}
	be, err := rep.dial(ctx)
	if err != nil {
		return err
	}
	rep.be = be
	return nil
}

// order returns the replica indices in call-preference order: healthy
// replicas first (by index, so routing is deterministic), then the down
// ones as last resorts — a stale down mark must degrade a call to an extra
// hop, never to a refusal while a live replica exists.
func (r *ReplicatedShard) order() []int {
	out := make([]int, 0, len(r.replicas))
	for i, rep := range r.replicas {
		if !rep.down.Load() {
			out = append(out, i)
		}
	}
	for i, rep := range r.replicas {
		if rep.down.Load() {
			out = append(out, i)
		}
	}
	return out
}

// attempt runs one call on one replica, dialing its backend first if
// needed, serialized under the replica's mutex. Failures mark the replica
// down unless they were induced by the caller's own cancellation.
func (r *ReplicatedShard) attempt(ctx context.Context, ri int, call func(context.Context, ShardBackend) ([]int32, error)) ([]int32, error) {
	rep := r.replicas[ri]
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if rep.be == nil {
		be, err := rep.dial(ctx)
		if err != nil {
			if ctx.Err() == nil {
				rep.down.Store(true)
			}
			return nil, err
		}
		rep.be = be
	}
	counts, err := call(ctx, rep.be)
	if err != nil {
		if ctx.Err() == nil {
			rep.down.Store(true)
		}
		return nil, err
	}
	rep.down.Store(false)
	return counts, nil
}

// result is one attempt's outcome on its way back to do's select loop.
// hedged marks the attempt the hedge timer launched, so the race outcome
// (won/lost) can be attributed in the metrics.
type replicaResult struct {
	counts []int32
	err    error
	hedged bool
}

// do routes one bulk call through the replica set: preferred replica
// first, failover on error, optional hedge after HedgeDelay, first
// success wins. Exactly one answer is ever returned — a hedge loser's
// counts are dropped on the floor, never summed — so duplicated responses
// cannot double-count. The per-call context is cancelled when do returns,
// so losers abort promptly instead of computing into the void.
func (r *ReplicatedShard) do(ctx context.Context, call func(context.Context, ShardBackend) ([]int32, error)) ([]int32, error) {
	ctx = ctxOrBackground(ctx)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if r.base.Err() != nil {
		return nil, fmt.Errorf("geometry: replicated shard used after Close")
	}
	order := r.order()

	// cctx governs every attempt of this call: it dies with the caller's
	// ctx, with Close (via the AfterFunc), and when do returns (reaping
	// hedge losers).
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	stopAfter := context.AfterFunc(r.base, cancel)
	defer stopAfter()

	results := make(chan replicaResult, len(order))
	span := obs.CurrentSpan(ctx)
	next := 0
	inflight := 0
	launch := func(hedged bool) {
		ri := order[next]
		next++
		inflight++
		go func() {
			counts, err := r.attempt(cctx, ri, call)
			results <- replicaResult{counts, err, hedged}
		}()
	}
	launch(false)

	var hedgeC <-chan time.Time
	if r.opts.HedgeDelay > 0 && next < len(order) {
		timer := time.NewTimer(r.opts.HedgeDelay)
		defer timer.Stop()
		hedgeC = timer.C
	}

	// hedgeLive tracks an in-flight hedge whose race is still unresolved;
	// every fired hedge is eventually accounted won or lost.
	hedgeLive := false
	var firstErr error
	for {
		select {
		case <-hedgeC:
			// One hedge per call: the classic tail cure is racing the
			// straggler against a single sibling, not a broadcast storm.
			hedgeC = nil
			if next < len(order) {
				hedgeLive = true
				statReplicaHedgeFired.Inc()
				span.Count("hedges_fired", 1)
				launch(true)
			}
		case res := <-results:
			inflight--
			if res.err == nil {
				if hedgeLive {
					if res.hedged {
						statReplicaHedgeWon.Inc()
						span.Count("hedges_won", 1)
					} else {
						statReplicaHedgeLost.Inc()
					}
				}
				return res.counts, nil
			}
			if res.hedged {
				// The hedge attempt itself failed: the race is decided
				// against it no matter what answers later.
				hedgeLive = false
				statReplicaHedgeLost.Inc()
			}
			if err := ctx.Err(); err != nil {
				return nil, err // the caller gave up; its error wins
			}
			if r.base.Err() != nil {
				return nil, res.err // closed mid-call
			}
			if firstErr == nil {
				firstErr = res.err
			}
			if next < len(order) {
				statReplicaFailover.Inc()
				span.Count("failovers", 1)
				launch(false)
			} else if inflight == 0 {
				return nil, firstErr
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// NPoints returns the number of points the partition holds (identical on
// every replica — they serve the same shard config).
func (r *ReplicatedShard) NPoints() int { return r.npoints }

// CountBatch answers the batched exact count from whichever replica wins.
func (r *ReplicatedShard) CountBatch(ctx context.Context, epoch Epoch, centers []vec.Vector, radius float64) ([]int32, error) {
	return r.do(ctx, func(ctx context.Context, be ShardBackend) ([]int32, error) {
		return be.CountBatch(ctx, epoch, centers, radius)
	})
}

// PartialCounts answers the capped bulk-count pass from whichever replica
// wins — the call the LStep sweep hammers, and the one hedging exists for.
func (r *ReplicatedShard) PartialCounts(ctx context.Context, epoch Epoch, j int, radius float64, limit int32, exactBoundary bool) ([]int32, error) {
	return r.do(ctx, func(ctx context.Context, be ShardBackend) ([]int32, error) {
		return be.PartialCounts(ctx, epoch, j, radius, limit, exactBoundary)
	})
}

// DupCounts answers the duplicate-table pass from whichever replica wins.
func (r *ReplicatedShard) DupCounts(ctx context.Context, epoch Epoch) ([]int32, error) {
	return r.do(ctx, func(ctx context.Context, be ShardBackend) ([]int32, error) {
		return be.DupCounts(ctx, epoch)
	})
}

// Close tears the partition down: the prober and any in-flight attempts
// are cancelled and waited out, then every dialed replica backend is
// closed. Idempotent; calls after Close fail.
func (r *ReplicatedShard) Close() error {
	var first error
	r.closeOnce.Do(func() {
		r.stop()
		r.proberWG.Wait()
		for _, rep := range r.replicas {
			rep.mu.Lock()
			be := rep.be
			rep.be = nil
			rep.mu.Unlock()
			if be == nil {
				continue
			}
			if err := be.Close(); err != nil && first == nil {
				first = err
			}
		}
	})
	return first
}
