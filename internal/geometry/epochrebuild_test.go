package geometry

import (
	"context"
	"testing"
)

// Re-pinning an old epoch after its cached views are evicted must answer
// bit-identically to the original pin, whatever the merge state: the
// rebuild may land on a newer merged base generation (base + empty delta
// instead of base + delta), or — once merges have rotated every fitting
// generation out — on no base at all (buffer-only view). Both partitions
// must be invisible to results; merges are a cost knob, never semantic.
func TestRebuildOldEpochAcrossMerges(t *testing.T) {
	ctx := context.Background()
	pts := shardTestPoints(t, 3, 600, 2)
	opts := shardTestOptions(2)
	n0 := 400
	tt := 150

	m, err := NewMutableShardedIndexBackends(ctx, frameOf(t, pts[:n0]), ShardedIndexOptions{
		Shards: 2, Policy: ShardMorton, Cell: opts,
	}, func(ctx context.Context, shard int, cfg ShardConfig) (MutableShardBackend, error) {
		return NewMutableLocalShard(cfg)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	_, e2, err := m.Append(ctx, frameOf(t, pts[n0:]))
	if err != nil {
		t.Fatal(err)
	}
	snap1, err := m.Snapshot(ctx, e2)
	if err != nil {
		t.Fatal(err)
	}
	ref := freshRef(t, pts, len(pts), opts)
	assertSameBallIndex(t, "initial-pin", snap1, ref, opts.MinRadius, tt)

	// evict drops epoch e2 from every FIFO view cache (coordinator and
	// shard caches hold ≤ 8 views) by pinning all newer epochs.
	evict := func(tag string) {
		t.Helper()
		for e := m.Epoch(); e > e2; e-- {
			if _, err := m.Snapshot(ctx, e); err != nil {
				t.Fatalf("%s: churn pin of epoch %d: %v", tag, e, err)
			}
		}
	}

	// Path 1: a merged base generation at exactly nView rows exists, so the
	// rebuild uses it with an empty delta (the original pin was base+delta).
	if err := m.Merge(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, _, err := m.Append(ctx, frameOf(t, pts[i:i+1])); err != nil {
			t.Fatal(err)
		}
	}
	evict("merged-base")
	snap2, err := m.Snapshot(ctx, e2)
	if err != nil {
		t.Fatal(err)
	}
	assertSameBallIndex(t, "rebuilt-merged-base", snap2, ref, opts.MinRadius, tt)

	// Path 2: merge after every few appends until the FIFO of base
	// generations (maxBaseGens) holds only generations larger than e2's
	// prefix — the rebuild must then come entirely from the buffer.
	for i := 0; i < 3*maxBaseGens; i++ {
		if _, _, err := m.Append(ctx, frameOf(t, pts[i:i+1])); err != nil {
			t.Fatal(err)
		}
		if i%3 == 2 {
			if err := m.Merge(ctx); err != nil {
				t.Fatal(err)
			}
		}
	}
	evict("buffer-only")
	snap3, err := m.Snapshot(ctx, e2)
	if err != nil {
		t.Fatal(err)
	}
	assertSameBallIndex(t, "rebuilt-buffer-only", snap3, ref, opts.MinRadius, tt)
}
