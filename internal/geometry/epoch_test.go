package geometry

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"privcluster/internal/vec"
)

// assertSameBallIndex asserts that got answers the whole BallIndex query
// surface bit-identically to ref — the equivalence currency every mutable
// snapshot must pay in.
func assertSameBallIndex(t *testing.T, tag string, got, ref BallIndex, minR float64, tt int) {
	t.Helper()
	if got.N() != ref.N() {
		t.Fatalf("%s: N = %d, want %d", tag, got.N(), ref.N())
	}
	gf, rf := got.Frame(), ref.Frame()
	for i := 0; i < rf.N(); i++ {
		for a, x := range rf.Row(i) {
			if gf.Row(i)[a] != x {
				t.Fatalf("%s: frame row %d diverged", tag, i)
			}
		}
	}
	n := ref.N()
	for _, r := range []float64{-1, 0, minR / 2, 0.01, 0.05, 0.3, 2} {
		for _, i := range []int{0, n / 2, n - 1} {
			if g, w := got.CountWithin(i, r), ref.CountWithin(i, r); g != w {
				t.Fatalf("%s: CountWithin(%d, %v) = %d, want %d", tag, i, r, g, w)
			}
		}
		if g, w := got.MaxCountWithin(r), ref.MaxCountWithin(r); g != w {
			t.Fatalf("%s: MaxCountWithin(%v) = %d, want %d", tag, r, g, w)
		}
		gl, err1 := got.LValue(r, tt)
		wl, err2 := ref.LValue(r, tt)
		if (err1 == nil) != (err2 == nil) || gl != wl {
			t.Fatalf("%s: LValue(%v) = %v (%v), want %v (%v)", tag, r, gl, err1, wl, err2)
		}
	}
	for _, tq := range []int{1, 2, tt, n} {
		gi, gr, err1 := got.TwoApprox(tq)
		wi, wr, err2 := ref.TwoApprox(tq)
		if gi != wi || gr != wr || (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: TwoApprox(%d) = (%d, %v, %v), want (%d, %v, %v)", tag, tq, gi, gr, err1, wi, wr, err2)
		}
		grr, err1 := got.RadiusForCount(0, tq)
		wrr, err2 := ref.RadiusForCount(0, tq)
		if grr != wrr || (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: RadiusForCount(0, %d) = %v, want %v", tag, tq, grr, wrr)
		}
	}
	gs, err1 := got.BuildLStep(context.Background(), tt)
	ws, err2 := ref.BuildLStep(context.Background(), tt)
	if err1 != nil || err2 != nil {
		t.Fatalf("%s: BuildLStep: %v / %v", tag, err1, err2)
	}
	if len(gs.Breaks) != len(ws.Breaks) {
		t.Fatalf("%s: LStep has %d breaks, want %d", tag, len(gs.Breaks), len(ws.Breaks))
	}
	for k := range gs.Breaks {
		if gs.Breaks[k] != ws.Breaks[k] || gs.Vals[k] != ws.Vals[k] {
			t.Fatalf("%s: LStep[%d] = (%v, %v), want (%v, %v)",
				tag, k, gs.Breaks[k], gs.Vals[k], ws.Breaks[k], ws.Vals[k])
		}
	}
}

// freshRef builds the frozen reference index over a prefix of pts.
func freshRef(t *testing.T, pts []vec.Vector, n int, opts CellIndexOptions) *CellIndex {
	t.Helper()
	ref, err := NewCellIndex(pts[:n], opts)
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

// mutableVariants runs a subtest for each MutableBallIndex implementation
// over the same seed prefix: the single-partition MutableCellIndex and the
// MutableShardedIndex over in-process mutable shards.
func mutableVariants(t *testing.T, pts []vec.Vector, n0 int, opts CellIndexOptions, run func(t *testing.T, m MutableBallIndex, sharded bool)) {
	t.Helper()
	t.Run("cell", func(t *testing.T) {
		m, err := NewMutableCellIndexFrame(frameOf(t, pts[:n0]), opts)
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		run(t, m, false)
	})
	t.Run("sharded", func(t *testing.T) {
		m, err := NewMutableShardedIndexBackends(context.Background(), frameOf(t, pts[:n0]), ShardedIndexOptions{
			Shards: 3, Policy: ShardMorton, Cell: opts,
		}, func(ctx context.Context, shard int, cfg ShardConfig) (MutableShardBackend, error) {
			return NewMutableLocalShard(cfg)
		})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		run(t, m, true)
	})
}

// TestMutableIndexMatchesFresh is the tentpole equivalence guarantee of the
// epoch model: Open(prefix) + Append(rest) pinned at its final epoch must
// answer every BallIndex query bit-identically to a fresh index over the
// full point set — and intermediate epochs to fresh indexes over their
// prefixes — before and after merges, for both mutable implementations.
func TestMutableIndexMatchesFresh(t *testing.T) {
	for _, d := range []int{1, 2} {
		pts := shardTestPoints(t, int64(10+d), 600, d)
		opts := shardTestOptions(d)
		n0 := len(pts) / 2
		tt := len(pts) / 3
		mutableVariants(t, pts, n0, opts, func(t *testing.T, m MutableBallIndex, sharded bool) {
			ctx := context.Background()
			// Three append batches, snapshotting after each.
			cuts := []int{n0, n0 + 50, n0 + 51, len(pts)}
			epochs := make([]Epoch, 0, len(cuts))
			epochs = append(epochs, m.Epoch())
			for bi := 0; bi+1 < len(cuts); bi++ {
				_, e, err := m.Append(ctx, frameOf(t, pts[cuts[bi]:cuts[bi+1]]))
				if err != nil {
					t.Fatal(err)
				}
				epochs = append(epochs, e)
			}
			if m.Rows() != len(pts) {
				t.Fatalf("Rows = %d, want %d", m.Rows(), len(pts))
			}
			for bi, e := range epochs {
				snap, err := m.Snapshot(ctx, e)
				if err != nil {
					t.Fatalf("Snapshot(%d): %v", e, err)
				}
				ref := freshRef(t, pts, cuts[bi], opts)
				assertSameBallIndex(t, fmt.Sprintf("d=%d epoch=%d", d, e), snap, ref, opts.MinRadius, tt)
			}

			// A merge must not change anything a later epoch sees: merge,
			// append one more row, and check the new epoch against a fresh
			// index over the extended set.
			if err := m.Merge(ctx); err != nil {
				t.Fatalf("Merge: %v", err)
			}
			extra := append(append([]vec.Vector{}, pts...), pts[0], pts[1])
			_, e, err := m.Append(ctx, frameOf(t, extra[len(pts):]))
			if err != nil {
				t.Fatal(err)
			}
			snap, err := m.Snapshot(ctx, e)
			if err != nil {
				t.Fatal(err)
			}
			ref := freshRef(t, extra, len(extra), opts)
			assertSameBallIndex(t, fmt.Sprintf("d=%d post-merge", d), snap, ref, opts.MinRadius, tt)
		})
	}
}

// TestMutableIndexDelete: deletes compact to exactly the survivor set — the
// new epoch is bit-identical to a fresh index over the survivors in
// insertion order — and every older epoch retires with ErrEpochRetired
// while an already-pinned snapshot keeps answering from the old storage.
func TestMutableIndexDelete(t *testing.T) {
	d := 2
	pts := shardTestPoints(t, 31, 500, d)
	opts := shardTestOptions(d)
	n0 := 400
	tt := 120
	mutableVariants(t, pts, n0, opts, func(t *testing.T, m MutableBallIndex, sharded bool) {
		ctx := context.Background()
		appended, e1, err := m.Append(ctx, frameOf(t, pts[n0:]))
		if err != nil {
			t.Fatal(err)
		}
		pinned, err := m.Snapshot(ctx, e1)
		if err != nil {
			t.Fatal(err)
		}
		pinnedMax := pinned.MaxCountWithin(0.05)

		// Delete a mix of base rows (initial ids are 0..n0-1) and appended
		// rows.
		del := []uint64{0, 3, uint64(n0) - 1, appended[0], appended[len(appended)-1]}
		gone := make(map[uint64]struct{}, len(del))
		for _, id := range del {
			gone[id] = struct{}{}
		}
		e2, err := m.Delete(ctx, del)
		if err != nil {
			t.Fatalf("Delete: %v", err)
		}
		var survivors []vec.Vector
		for i, p := range pts {
			if _, ok := gone[uint64(i)]; ok {
				continue
			}
			survivors = append(survivors, p)
		}
		snap, err := m.Snapshot(ctx, e2)
		if err != nil {
			t.Fatal(err)
		}
		ref := freshRef(t, survivors, len(survivors), opts)
		assertSameBallIndex(t, "post-delete", snap, ref, opts.MinRadius, tt)

		// Epoch 1 (the seed epoch, never pinned) retired; the pinned e1
		// stays servable from its cached view, and still answers as before.
		if _, err := m.Snapshot(ctx, 1); !errors.Is(err, ErrEpochRetired) {
			t.Fatalf("Snapshot(retired) err = %v, want ErrEpochRetired", err)
		}
		if _, err := m.Snapshot(ctx, e1); err != nil {
			t.Fatalf("Snapshot(pinned retired epoch): %v", err)
		}
		if got := pinned.MaxCountWithin(0.05); got != pinnedMax {
			t.Fatalf("pinned snapshot drifted after delete: %d, want %d", got, pinnedMax)
		}

		// Rejections: unknown ids, duplicate ids, future epochs, emptying.
		if _, err := m.Delete(ctx, []uint64{1 << 40}); err == nil {
			t.Fatal("delete of unknown id succeeded")
		}
		if _, err := m.Delete(ctx, []uint64{5, 5}); err == nil {
			t.Fatal("delete with duplicate ids succeeded")
		}
		if _, err := m.Snapshot(ctx, m.Epoch()+1); err == nil {
			t.Fatal("snapshot of a future epoch succeeded")
		}
	})
}

// TestMutableIndexClosed: operations on a closed index fail with
// ErrIndexClosed, Close is idempotent, and pinned snapshots survive it.
func TestMutableIndexClosed(t *testing.T) {
	pts := shardTestPoints(t, 7, 120, 2)
	opts := shardTestOptions(2)
	mutableVariants(t, pts, len(pts), opts, func(t *testing.T, m MutableBallIndex, sharded bool) {
		ctx := context.Background()
		snap, err := m.Snapshot(ctx, m.Epoch())
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
		if err := m.Close(); err != nil {
			t.Fatalf("second Close: %v", err)
		}
		if _, _, err := m.Append(ctx, frameOf(t, pts[:1])); !errors.Is(err, ErrIndexClosed) {
			t.Fatalf("Append after Close: %v, want ErrIndexClosed", err)
		}
		if _, err := m.Delete(ctx, []uint64{0}); !errors.Is(err, ErrIndexClosed) {
			t.Fatalf("Delete after Close: %v, want ErrIndexClosed", err)
		}
		if _, err := m.Snapshot(ctx, m.Epoch()); !errors.Is(err, ErrIndexClosed) {
			t.Fatalf("Snapshot after Close: %v, want ErrIndexClosed", err)
		}
		if sharded {
			// Backend-mode snapshots answer through the (now closed)
			// shards; their queries must fail, not hang or lie.
			if _, err := snap.LValue(0.1, len(pts)/3); err == nil {
				t.Fatal("backend-mode snapshot still answering after Close")
			}
		} else {
			// In-process snapshots hold their own storage and stay
			// queryable.
			if got := snap.CountWithin(0, 0.1); got < 1 {
				t.Fatalf("pinned snapshot unusable after Close: %d", got)
			}
		}
	})
}

// TestMutableIndexDomain: rows outside the pinned ladder domain are
// rejected atomically with ErrOutOfDomain — the epoch does not advance and
// the index keeps answering.
func TestMutableIndexDomain(t *testing.T) {
	pts := shardTestPoints(t, 3, 100, 2)
	opts := shardTestOptions(2)
	mutableVariants(t, pts, len(pts), opts, func(t *testing.T, m MutableBallIndex, sharded bool) {
		ctx := context.Background()
		before := m.Epoch()
		far := frameOf(t, []vec.Vector{{1e6, 1e6}})
		if _, _, err := m.Append(ctx, far); !errors.Is(err, ErrOutOfDomain) {
			t.Fatalf("out-of-domain append: %v, want ErrOutOfDomain", err)
		}
		if m.Epoch() != before {
			t.Fatalf("epoch advanced on rejected append: %d -> %d", before, m.Epoch())
		}
		if _, err := m.Snapshot(ctx, before); err != nil {
			t.Fatalf("Snapshot after rejected append: %v", err)
		}
	})
}

// TestMutableIndexConcurrency exercises the epoch contract under real
// concurrency (run with -race in CI): mutators append and delete while
// queriers pin epochs and verify each pinned snapshot answers identically
// on repeated queries, and background merges land whenever they land.
func TestMutableIndexConcurrency(t *testing.T) {
	pts := shardTestPoints(t, 17, 400, 2)
	opts := shardTestOptions(2)
	n0 := 200
	mutableVariants(t, pts, n0, opts, func(t *testing.T, m MutableBallIndex, sharded bool) {
		ctx := context.Background()
		var wg sync.WaitGroup
		stop := make(chan struct{})

		// Mutator: appends the tail in small batches, deleting occasionally.
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(stop)
			var mine []uint64
			for at := n0; at < len(pts); at += 20 {
				hi := at + 20
				if hi > len(pts) {
					hi = len(pts)
				}
				ids, _, err := m.Append(ctx, frameOf(t, pts[at:hi]))
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				mine = append(mine, ids...)
				if len(mine) >= 40 {
					if _, err := m.Delete(ctx, mine[:10]); err != nil {
						t.Errorf("delete: %v", err)
						return
					}
					mine = mine[10:]
				}
			}
		}()

		// Queriers: pin whatever the current epoch is and check the snapshot
		// is internally stable (two reads of the same statistic agree) — a
		// pin racing a delete may find its epoch already retired, which is a
		// legal outcome, not an error.
		for q := 0; q < 3; q++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					snap, err := m.Snapshot(ctx, m.Epoch())
					if err != nil {
						if errors.Is(err, ErrEpochRetired) {
							continue // pin raced a delete: legal
						}
						t.Errorf("snapshot: %v", err)
						return
					}
					a, errA := snap.LValue(0.05, n0/3)
					b, errB := snap.LValue(0.05, n0/3)
					// A sharded pin can lose its shard-side views to FIFO
					// eviction once deletes retire its epoch — the query
					// fails (never lies); any successful pair must agree.
					if errA != nil || errB != nil {
						if !errors.Is(errA, ErrEpochRetired) && !errors.Is(errB, ErrEpochRetired) {
							t.Errorf("pinned query failed: %v / %v", errA, errB)
							return
						}
						continue
					}
					if a != b {
						t.Errorf("pinned snapshot unstable: %v then %v", a, b)
						return
					}
				}
			}()
		}
		wg.Wait()

		// Quiesced: the final epoch must match a fresh index over the live
		// rows (which the reference recomputes from the snapshot's frame).
		snap, err := m.Snapshot(ctx, m.Epoch())
		if err != nil {
			t.Fatal(err)
		}
		live := make([]vec.Vector, snap.N())
		for i := range live {
			live[i] = vec.Vector(snap.Frame().Row(i)).Clone()
		}
		ref := freshRef(t, live, len(live), opts)
		assertSameBallIndex(t, "quiesced", snap, ref, opts.MinRadius, len(live)/3)
	})
}

// TestMutableSnapshotCancellation: a cancelled pin returns the context
// error without poisoning the cached view for later pinners.
func TestMutableSnapshotCancellation(t *testing.T) {
	pts := shardTestPoints(t, 5, 150, 2)
	opts := shardTestOptions(2)
	m, err := NewMutableCellIndexFrame(frameOf(t, pts), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.Snapshot(ctx, m.Epoch()); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Snapshot: %v, want context.Canceled", err)
	}
	if _, err := m.Snapshot(context.Background(), m.Epoch()); err != nil {
		t.Fatalf("Snapshot after cancelled pin: %v", err)
	}
}
