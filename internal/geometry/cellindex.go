package geometry

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"privcluster/internal/vec"
)

// CellIndexOptions tunes the scalable cell-hash ball index. The zero value
// selects defaults suitable for inputs in the unit cube on a 2¹⁶-per-axis
// grid; callers with a concrete Grid should set MinRadius to
// Grid.RadiusUnit() and MaxRadius to Grid.MaxDistance() so the radius
// ladder matches the radius grid GoodRadius searches.
type CellIndexOptions struct {
	// MinRadius is the resolution floor of the radius ladder: radii below
	// it are answered as if they were 0 by the L estimators. For
	// grid-quantized inputs (minimum nonzero pairwise distance 2·RadiusUnit)
	// setting MinRadius = Grid.RadiusUnit() loses nothing.
	// Default: MaxRadius / 2¹⁷.
	MinRadius float64
	// MaxRadius is the largest radius the ladder must cover; it is expanded
	// to the data's bounding-box diagonal if that is larger (which cannot
	// happen for in-contract inputs in [0,1]^d with the default).
	// Default: √d.
	MaxRadius float64
	// LevelsPerOctave is the ladder density: consecutive ladder radii have
	// ratio 2^(1/LevelsPerOctave). Higher values shrink the radius
	// discretization error of BuildLStep/TwoApprox at a linear cost in
	// preprocessing. Default: 2 (ratio √2).
	LevelsPerOctave int
	// CellsPerRadius is the cell granularity: a query at radius r uses cells
	// of side ≈ r/CellsPerRadius. Higher values shrink the center-rule
	// count slack h ≈ √d/(2·CellsPerRadius)·r at a cost of
	// (2·CellsPerRadius+2)^d candidate cells per query. It is raised to
	// ⌈√d⌉ when below it (keeping h ≤ r/2). Default: 4.
	CellsPerRadius int
	// Workers bounds the worker pool of the bulk count passes.
	// Default: GOMAXPROCS.
	Workers int
	// MaxCachedLevels bounds how many cell-hash levels (O(n) memory each)
	// are kept alive; least recently built levels are dropped first.
	// Default: 8.
	MaxCachedLevels int

	// skipDupTable elides the O(n)-allocation duplicate table. Package
	// internal, for composite indexes (ShardedIndex) that maintain their
	// own global table: a per-shard table cannot see cross-shard
	// duplicates and would be dead weight on the cold-build path. With it
	// set, the dup-dependent queries (TwoApprox, LValue, BuildLStep) must
	// not be called on this index — only the count paths are valid.
	skipDupTable bool
}

func (o CellIndexOptions) withDefaults(dim int) CellIndexOptions {
	if o.MaxRadius <= 0 {
		o.MaxRadius = math.Sqrt(float64(dim))
	}
	if o.MinRadius <= 0 {
		o.MinRadius = o.MaxRadius / (1 << 17)
	}
	if o.MinRadius > o.MaxRadius {
		o.MinRadius = o.MaxRadius
	}
	if o.LevelsPerOctave < 1 {
		o.LevelsPerOctave = 2
	}
	if o.CellsPerRadius < 1 {
		o.CellsPerRadius = 4
	}
	if m := int(math.Ceil(math.Sqrt(float64(dim)))); o.CellsPerRadius < m {
		o.CellsPerRadius = m
	}
	if o.Workers < 1 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxCachedLevels < 1 {
		o.MaxCachedLevels = 8
	}
	return o
}

// CellIndex is the scalable BallIndex backend: points are bucketed into a
// hashed grid of cells ("cell hash"), one hash per radius scale, built
// lazily. A ball query visits only the candidate cells intersecting the
// ball's bounding box (or, when fewer, the occupied cells) and prunes at
// cell granularity: cells whose axis-aligned box lies entirely inside the
// ball contribute their stored count, cells entirely outside are skipped,
// and only boundary cells are inspected point-by-point.
//
// Exactness contract:
//
//   - CountWithin, RadiusForCount and MaxCountWithin are exact.
//   - TwoApprox returns a ball with ≥ t points whose radius is at most
//     max(MinRadius, ρ·r₂) where r₂ is the exact TwoApprox radius and
//     ρ = 2^(1/LevelsPerOctave) is the ladder ratio.
//   - BuildLStep and LValue estimate the capped counts at cell granularity
//     (a boundary cell contributes all of its points when its center lies
//     in the ball, none otherwise): the estimate B̂_r satisfies
//     B_{r−h} ≤ B̂_r ≤ B_{r+h} with h ≤ √d/(2·CellsPerRadius)·ρ·r, so the
//     returned L̂(r) is sandwiched between L(r−h) and L(r+h). BuildLStep
//     additionally discretizes the radius axis to the ladder. Crucially,
//     whether a point y contributes to the estimated count around x depends
//     only on the positions of x and y (never on other points), so L̂ keeps
//     the sensitivity-2 property of Lemma 4.5 that GoodRadius's privacy
//     analysis needs.
//
// Memory is O(n·d) (the points, the duplicate table, and at most
// MaxCachedLevels transient cell hashes of O(n) entries each), versus the
// Θ(n²) of DistanceIndex. Bulk passes are parallelized across
// Options.Workers cores with the same worker-pool pattern NewDistanceIndex
// uses. CellIndex is safe for concurrent use.
type CellIndex struct {
	frame *vec.Frame
	dim   int
	opts  CellIndexOptions

	// dupCount[i] is the number of input points identical to row i
	// (≥ 1): the exact B_0 counts, kept separately because cell pruning
	// cannot resolve radius 0.
	dupCount []int32

	lad radiusLadder

	// scratch pools the per-worker query buffers so repeated count passes
	// (a BuildLStep ladder sweep runs one per level) allocate no new
	// odometer state.
	scratch sync.Pool

	mu     sync.Mutex
	levels map[int]*cellLevel
	order  []int // FIFO of built levels for eviction
}

// radiusLadder is the geometric radius ladder of the scalable backends: the
// levels MinRadius·ρ^j the L estimators sweep and the level-selection rule
// for point queries. It is a pure function of (CellIndexOptions, dim, data
// diameter), factored out so ShardedIndex can pin every shard to exactly
// the ladder the unsharded CellIndex would build — the invariant its
// exact-sum equivalence rests on.
type radiusLadder struct {
	minR  float64
	maxR  float64 // ladder top ≥ max(opts.MaxRadius, data diameter)
	stopR float64 // radius at which the L estimator provably saturates
	ratio float64 // ladder ratio ρ
	top   int     // largest ladder level index
}

// newRadiusLadder derives the ladder from defaulted options and the data's
// bounding-box diagonal. The ladder must reach past the diameter so the L
// estimator and TwoApprox provably saturate; for in-contract inputs (unit
// cube) the diagonal never exceeds the default MaxRadius = √d, so the
// ladder stays data-independent.
func newRadiusLadder(opts CellIndexOptions, dim int, diag float64) radiusLadder {
	l := radiusLadder{
		minR:  opts.MinRadius,
		maxR:  opts.MaxRadius,
		ratio: math.Pow(2, 1/float64(opts.LevelsPerOctave)),
	}
	if diag > l.maxR {
		l.maxR = diag
	}
	// At r ≥ stopR every cell center is within r of every point
	// (diam + h(r) ≤ r), so every estimated count is n.
	slack := 1 - math.Sqrt(float64(dim))/(2*float64(opts.CellsPerRadius))
	l.stopR = l.maxR / slack
	if l.stopR > l.minR {
		l.top = int(math.Ceil(math.Log(l.stopR/l.minR) / math.Log(l.ratio)))
	}
	return l
}

// radius returns ladder radius j: MinRadius·ρ^j.
func (l radiusLadder) radius(j int) float64 {
	return l.minR * math.Pow(l.ratio, float64(j))
}

// levelFor returns the ladder level whose cell size best fits queries at
// radius r. Exactness never depends on the choice — only speed does.
func (l radiusLadder) levelFor(r float64) int {
	if r <= l.minR {
		return 0
	}
	j := int(math.Floor(math.Log(r/l.minR)/math.Log(l.ratio) + 0.5))
	if j < 0 {
		j = 0
	}
	if j > l.top {
		j = l.top
	}
	return j
}

// cellBucket is one occupied cell: its integer coordinates (cell a spans
// [coord·side, (coord+1)·side) per axis) and the indices of the points in
// it.
type cellBucket struct {
	coord []int64
	ids   []int32
}

// cellLevel is the cell index at one radius scale: the occupied cells,
// sorted lexicographically by coordinates with axis 0 fastest-varying, so
// that a query block resolves into one contiguous range scan per axis-0 run
// (a binary search each) instead of a hash probe per candidate cell — the
// dominant cost at scale, since most candidate cells are empty.
type cellLevel struct {
	side    float64
	buckets []cellBucket
	// lo, hi bound the occupied cell coordinates per axis — the O(1)
	// intersection prefilter the sharded cross pass uses to skip member
	// shards whose (spatially compact) cells cannot reach a source cell.
	lo, hi []int64
}

// NewCellIndex builds the scalable index over a slice of vectors — a
// convenience wrapper that copies the points into a flat Frame first (the
// storage every sweep runs over). It returns an error for an empty input or
// mismatched dimensions.
func NewCellIndex(points []vec.Vector, opts CellIndexOptions) (*CellIndex, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("geometry: cell index over empty point set")
	}
	f, err := vec.FrameFromVectors(points)
	if err != nil {
		return nil, fmt.Errorf("geometry: %w", err)
	}
	return NewCellIndexFrame(f, opts)
}

// NewCellIndexFrame builds the scalable index directly over a Frame without
// copying it. The index aliases the frame: the caller must not mutate rows
// afterwards.
func NewCellIndexFrame(f *vec.Frame, opts CellIndexOptions) (*CellIndex, error) {
	if f == nil || f.N() == 0 {
		return nil, fmt.Errorf("geometry: cell index over empty point set")
	}
	n, d := f.N(), f.Dim()
	opts = opts.withDefaults(d)
	ix := &CellIndex{
		frame:  f,
		dim:    d,
		opts:   opts,
		levels: make(map[int]*cellLevel),
	}
	ix.scratch.New = func() any { return newCellScratch(d) }

	// Exact duplicate table (the radius-0 counts) and the data's bounding
	// box in one pass (box only when the caller keeps its own table).
	var rowBuf vec.Vector
	if f.Precision() == vec.Float32 {
		rowBuf = make(vec.Vector, d)
	}
	first := f.RowView(0, rowBuf)
	lo, hi := first.Clone(), first.Clone()
	if opts.skipDupTable {
		for i := 0; i < n; i++ {
			p := f.RowView(i, rowBuf)
			for a, x := range p {
				if x < lo[a] {
					lo[a] = x
				}
				if x > hi[a] {
					hi[a] = x
				}
			}
		}
	} else {
		dups := make(map[string]int32, n)
		keys := make([]string, n)
		buf := make([]byte, 0, 8*d)
		for i := 0; i < n; i++ {
			p := f.RowView(i, rowBuf)
			for a, x := range p {
				if x < lo[a] {
					lo[a] = x
				}
				if x > hi[a] {
					hi[a] = x
				}
			}
			k := string(f.AppendRowKey(buf[:0], i))
			keys[i] = k
			dups[k]++
		}
		ix.dupCount = make([]int32, n)
		for i, k := range keys {
			ix.dupCount[i] = dups[k]
		}
	}

	ix.lad = newRadiusLadder(opts, d, hi.Dist(lo))
	return ix, nil
}

// N returns the number of indexed points.
func (ix *CellIndex) N() int { return ix.frame.N() }

// Frame returns the indexed point store (not a copy).
func (ix *CellIndex) Frame() *vec.Frame { return ix.frame }

// levelRadius returns ladder radius j: MinRadius·ρ^j.
func (ix *CellIndex) levelRadius(j int) float64 { return ix.lad.radius(j) }

// levelFor returns the ladder level whose cell size best fits queries at
// radius r (see radiusLadder.levelFor).
func (ix *CellIndex) levelFor(r float64) int { return ix.lad.levelFor(r) }

// level returns (building lazily) the cell hash for ladder level j.
func (ix *CellIndex) level(j int) *cellLevel {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if lv, ok := ix.levels[j]; ok {
		return lv
	}
	lv := newCellLevel(ix.frame, ix.levelRadius(j)/float64(ix.opts.CellsPerRadius))
	ix.levels[j] = lv
	ix.order = append(ix.order, j)
	if len(ix.order) > ix.opts.MaxCachedLevels {
		evict := ix.order[0]
		ix.order = ix.order[1:]
		delete(ix.levels, evict)
	}
	return lv
}

// cachedLevelKeys returns the ladder levels currently materialized, oldest
// first — what a background merge pre-warms on a replacement index so the
// atomic swap never moves a level build onto the query path.
func (ix *CellIndex) cachedLevelKeys() []int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return append([]int(nil), ix.order...)
}

func newCellLevel(f *vec.Frame, side float64) *cellLevel {
	n, d := f.N(), f.Dim()
	lv := &cellLevel{side: side}
	index := make(map[string]int32, n)
	buf := make([]byte, 8*d)
	coord := make([]int64, d)
	var rowBuf vec.Vector
	if f.Precision() == vec.Float32 {
		rowBuf = make(vec.Vector, d)
	}
	for i := 0; i < n; i++ {
		p := f.RowView(i, rowBuf)
		for a, x := range p {
			coord[a] = int64(math.Floor(x / side))
		}
		encodeCoords(buf, coord)
		bi, ok := index[string(buf)]
		if !ok {
			bi = int32(len(lv.buckets))
			index[string(buf)] = bi
			lv.buckets = append(lv.buckets, cellBucket{coord: append([]int64(nil), coord...)})
		}
		lv.buckets[bi].ids = append(lv.buckets[bi].ids, int32(i))
	}
	sort.Slice(lv.buckets, func(i, j int) bool {
		return cmpCoords(lv.buckets[i].coord, lv.buckets[j].coord) < 0
	})
	lv.lo = append([]int64(nil), lv.buckets[0].coord...)
	lv.hi = append([]int64(nil), lv.buckets[0].coord...)
	for _, b := range lv.buckets[1:] {
		for a, c := range b.coord {
			if c < lv.lo[a] {
				lv.lo[a] = c
			}
			if c > lv.hi[a] {
				lv.hi[a] = c
			}
		}
	}
	return lv
}

func encodeCoords(buf []byte, coord []int64) {
	for a, c := range coord {
		binary.LittleEndian.PutUint64(buf[8*a:], uint64(c))
	}
}

// cmpCoords orders cell coordinates lexicographically with the highest
// axis most significant (axis 0 varies fastest in the sorted order).
func cmpCoords(a, b []int64) int {
	for x := len(a) - 1; x >= 0; x-- {
		switch {
		case a[x] < b[x]:
			return -1
		case a[x] > b[x]:
			return 1
		}
	}
	return 0
}

// cellScratch holds per-worker query buffers: the odometer state of the
// candidate enumeration plus two row-decode buffers (center for synthetic
// query points, row for float32 source-row decoding). All count passes
// thread one of these through, so a warm pass allocates nothing per cell.
type cellScratch struct {
	buf         []byte
	lo, hi, cur []int64
	center      vec.Vector
	row         vec.Vector
}

func newCellScratch(d int) *cellScratch {
	return &cellScratch{
		buf:    make([]byte, 8*d),
		lo:     make([]int64, d),
		hi:     make([]int64, d),
		cur:    make([]int64, d),
		center: make(vec.Vector, d),
		row:    make(vec.Vector, d),
	}
}

// getScratch and putScratch recycle cellScratch values across count passes.
func (ix *CellIndex) getScratch() *cellScratch   { return ix.scratch.Get().(*cellScratch) }
func (ix *CellIndex) putScratch(sc *cellScratch) { ix.scratch.Put(sc) }

// bucketCount returns how many points of bucket b lie within distance
// √rsq of p, resolved at cell granularity: cells whose AABB is entirely
// inside the ball contribute their full count, cells entirely outside
// contribute nothing, and boundary cells are either scanned point-by-point
// (exactBoundary — exact counts) or resolved by the center rule (all points
// count when the cell center lies in the ball; the deterministic pair rule
// the L estimators need — see the CellIndex doc).
func (ix *CellIndex) bucketCount(b *cellBucket, side float64, p vec.Vector, rsq float64, exactBoundary bool) int32 {
	var minSq, maxSq float64
	for a := 0; a < len(p); a++ {
		cellLo := float64(b.coord[a]) * side
		cellHi := cellLo + side
		var dmin float64
		switch {
		case p[a] < cellLo:
			dmin = cellLo - p[a]
		case p[a] > cellHi:
			dmin = p[a] - cellHi
		}
		minSq += dmin * dmin
		if minSq > rsq {
			return 0 // entirely outside
		}
		dmax := p[a] - cellLo
		if other := cellHi - p[a]; other > dmax {
			dmax = other
		}
		maxSq += dmax * dmax
	}
	switch {
	case maxSq <= rsq: // entirely inside
		return int32(len(b.ids))
	case exactBoundary:
		var cnt int32
		for _, id := range b.ids {
			if ix.frame.DistSq(int(id), p) <= rsq {
				cnt++
			}
		}
		return cnt
	default: // center rule
		var dcSq float64
		for a := 0; a < len(p); a++ {
			dc := p[a] - (float64(b.coord[a])+0.5)*side
			dcSq += dc * dc
		}
		if dcSq <= rsq {
			return int32(len(b.ids))
		}
		return 0
	}
}

// forCandidates invokes fn on every bucket that can intersect the ball
// B(center, r) expanded by pad on each axis. The occupied cells are sorted
// with axis 0 fastest-varying, so the query block decomposes into one
// sorted-range scan per higher-axis prefix (a binary search each); when the
// block has more such runs than there are occupied cells, scanning all
// buckets directly is cheaper (which also keeps huge-radius queries O(n)).
// fn returning false stops the enumeration.
func (ix *CellIndex) forCandidates(lv *cellLevel, center vec.Vector, r, pad float64, sc *cellScratch, fn func(*cellBucket) bool) {
	d := ix.dim
	side := lv.side
	runs := 1.0
	for a := 0; a < d; a++ {
		sc.lo[a] = int64(math.Floor((center[a] - r - pad) / side))
		sc.hi[a] = int64(math.Floor((center[a] + r + pad) / side))
		if a > 0 {
			runs *= float64(sc.hi[a] - sc.lo[a] + 1)
		}
	}
	if runs > float64(len(lv.buckets)) {
		for bi := range lv.buckets {
			b := &lv.buckets[bi]
			in := true
			for a := 0; a < d; a++ {
				if b.coord[a] < sc.lo[a] || b.coord[a] > sc.hi[a] {
					in = false
					break
				}
			}
			if in && !fn(b) {
				return
			}
		}
		return
	}
	// Odometer over the higher-axis prefix; each prefix yields the run
	// [prefix, lo[0]] … [prefix, hi[0]] in the sorted bucket order.
	copy(sc.cur, sc.lo)
	for {
		sc.cur[0] = sc.lo[0]
		start := sort.Search(len(lv.buckets), func(i int) bool {
			return cmpCoords(lv.buckets[i].coord, sc.cur) >= 0
		})
		for bi := start; bi < len(lv.buckets); bi++ {
			b := &lv.buckets[bi]
			if b.coord[0] > sc.hi[0] || !prefixEqual(b.coord, sc.cur) {
				break
			}
			if !fn(b) {
				return
			}
		}
		a := 1
		for ; a < d; a++ {
			sc.cur[a]++
			if sc.cur[a] <= sc.hi[a] {
				break
			}
			sc.cur[a] = sc.lo[a]
		}
		if a == d {
			break
		}
	}
}

// prefixEqual reports whether a and b agree on every axis above 0.
func prefixEqual(a, b []int64) bool {
	for x := len(a) - 1; x >= 1; x-- {
		if a[x] != b[x] {
			return false
		}
	}
	return true
}

// countOne returns the exact number of points within distance r of p — the
// single-point query path (bulk passes go through countAll).
func (ix *CellIndex) countOne(lv *cellLevel, p vec.Vector, r float64, sc *cellScratch) int32 {
	if r < 0 {
		return 0
	}
	rsq := r * r
	var cnt int32
	ix.forCandidates(lv, p, r, 0, sc, func(b *cellBucket) bool {
		cnt += ix.bucketCount(b, lv.side, p, rsq, true)
		return true
	})
	return cnt
}

// boxBoxDistSq returns the squared min and max distances between the AABBs
// of two cells of the given side.
func boxBoxDistSq(a, b []int64, side float64) (minSq, maxSq float64) {
	for x := range a {
		// Cell x spans [c·side, (c+1)·side]: the gap and the farthest
		// corner pair follow from the integer offset alone.
		off := float64(b[x] - a[x])
		var dmin float64
		switch {
		case off > 1:
			dmin = (off - 1) * side
		case off < -1:
			dmin = (-off - 1) * side
		}
		minSq += dmin * dmin
		dmax := off
		if dmax < 0 {
			dmax = -dmax
		}
		dmax = (dmax + 1) * side
		maxSq += dmax * dmax
	}
	return minSq, maxSq
}

// accumulateCellCounts adds to out the capped within-r counts that ix's
// points (the "members") contribute around every point of one source cell.
// The pass is cell-pair first: candidate member cells entirely within (or
// beyond) reach of the whole source cell are resolved in O(1) for all of
// its points at once, and only candidates straddling some point's ball
// boundary fall back to per-point classification. The (dominant)
// candidate-enumeration cost is thus paid per occupied cell pair rather
// than per point pair — a large win exactly where the data is dense.
//
// srcB's ids index the rows of src; the out slot of id is gids[id] (nil
// gids: ids index out directly — the single-index case where sources are
// members).
// Counts saturate at limit, and contributions accumulate onto whatever out
// already holds: nonnegative saturating addition is order-independent, so a
// sharded caller summing per-shard member contributions lands on exactly
// min(total, limit), bit-identical to a single pass over all members —
// provided srcB and lv use the same cell side (the shared-ladder invariant
// ShardedIndex maintains).
func (ix *CellIndex) accumulateCellCounts(lv *cellLevel, srcB *cellBucket, src *vec.Frame, gids []int32, r float64, limit int32, exactBoundary bool, out []int32, sc *cellScratch) {
	side := lv.side
	rsq := r * r
	// The block around the source cell's box covers the ball bounding
	// boxes of all its points (pad = side/2 beyond the per-point radius,
	// from the cell center).
	for a := 0; a < ix.dim; a++ {
		sc.center[a] = (float64(srcB.coord[a]) + 0.5) * side
	}
	var base int32 // count shared by every point of the cell
	capped := false
	ix.forCandidates(lv, sc.center, r, side/2, sc, func(b *cellBucket) bool {
		minSq, maxSq := boxBoxDistSq(srcB.coord, b.coord, side)
		switch {
		case minSq > rsq: // beyond reach of the whole cell
		case maxSq <= rsq: // inside reach of the whole cell
			base += int32(len(b.ids))
			if base >= limit {
				capped = true
				return false
			}
		default:
			for _, pid := range srcB.ids {
				gid := pid
				if gids != nil {
					gid = gids[pid]
				}
				if out[gid] >= limit {
					continue
				}
				if c := out[gid] + ix.bucketCount(b, side, src.RowView(int(pid), sc.row), rsq, exactBoundary); c < limit {
					out[gid] = c
				} else {
					out[gid] = limit
				}
			}
		}
		return true
	})
	for _, pid := range srcB.ids {
		gid := pid
		if gids != nil {
			gid = gids[pid]
		}
		if capped {
			out[gid] = limit
			continue
		}
		if c := out[gid] + base; c < limit {
			out[gid] = c
		} else {
			out[gid] = limit
		}
	}
}

// countAll computes the capped within-r count for every input point via
// accumulateCellCounts over every occupied source cell. Source cells fan
// out over the worker pool; each cell's points are written by exactly one
// worker.
//
// A cancelled ctx aborts the pass: the feeder stops handing out chunks,
// every worker skips its remaining work (so the pool always drains and
// exits — no leaked goroutines), and the call returns ctx.Err() instead of
// the partial counts.
func (ix *CellIndex) countAll(ctx context.Context, lv *cellLevel, r float64, limit int32, exactBoundary bool) ([]int32, error) {
	out := make([]int32, ix.frame.N())
	if err := ix.countAllInto(ctx, lv, r, limit, exactBoundary, out); err != nil {
		return nil, err
	}
	return out, nil
}

// countAllInto is countAll with a caller-owned result buffer (len must be
// N(); the caller zeroes it between passes): a ladder sweep reuses one
// buffer for every level instead of allocating O(n) per level, and the
// per-worker scratch comes from the index's pool.
func (ix *CellIndex) countAllInto(ctx context.Context, lv *cellLevel, r float64, limit int32, exactBoundary bool, out []int32) error {
	ctx = ctxOrBackground(ctx)
	if len(out) != ix.frame.N() {
		return fmt.Errorf("geometry: countAllInto out has length %d, want %d", len(out), ix.frame.N())
	}
	if r < 0 || limit <= 0 {
		return nil
	}
	nb := len(lv.buckets)
	workers := ix.opts.Workers
	if workers > nb {
		workers = nb
	}
	const chunk = 64
	ranges := make(chan [2]int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := ix.getScratch()
			defer ix.putScratch(sc)
			for rg := range ranges {
				if ctx.Err() != nil {
					continue // drain the channel so the feeder never blocks
				}
				for src := rg[0]; src < rg[1]; src++ {
					ix.accumulateCellCounts(lv, &lv.buckets[src], ix.frame, nil, r, limit, exactBoundary, out, sc)
				}
			}
		}()
	}
	for lo := 0; lo < nb && ctx.Err() == nil; lo += chunk {
		hi := lo + chunk
		if hi > nb {
			hi = nb
		}
		ranges <- [2]int{lo, hi}
	}
	close(ranges)
	wg.Wait()
	return ctx.Err()
}

// CountWithin returns B_r(x_i) exactly.
func (ix *CellIndex) CountWithin(i int, r float64) int {
	lv := ix.level(ix.levelFor(r))
	sc := ix.getScratch()
	defer ix.putScratch(sc)
	p := ix.frame.RowView(i, sc.row)
	return int(ix.countOne(lv, p, r, sc))
}

// RadiusForCount returns the t-th smallest distance from point i — exact,
// via a direct O(n·d) scan (cheap for point queries, and never Θ(n²)).
func (ix *CellIndex) RadiusForCount(i, t int) (float64, error) {
	return radiusForCount(ix.frame, i, t)
}

// radiusForCount is the exact t-th-smallest-distance scan shared by the
// scalable backends (the sharded index runs it over the global points, so
// both must stay one implementation).
func radiusForCount(f *vec.Frame, i, t int) (float64, error) {
	n := f.N()
	if t < 1 || t > n {
		return 0, fmt.Errorf("geometry: RadiusForCount t=%d out of [1,%d]", t, n)
	}
	p := f.RowView(i, nil)
	ds := make([]float64, n)
	f.DistSqInto(p, ds)
	return math.Sqrt(kthSmallest(ds, t)), nil
}

// kthSmallest selects the k-th smallest element (1-based) by quickselect,
// in expected O(len) time. It permutes xs.
func kthSmallest(xs []float64, k int) float64 {
	lo, hi := 0, len(xs)-1
	k-- // 0-based target index
	for lo < hi {
		pivot := xs[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for xs[i] < pivot {
				i++
			}
			for xs[j] > pivot {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return xs[k]
		}
	}
	return xs[k]
}

// TwoApprox returns an input-centered ball with at least t points whose
// radius is at most max(MinRadius, ρ·r₂), r₂ being the exact TwoApprox
// radius (≤ 2·r_opt by "known fact 3") and ρ the ladder ratio.
func (ix *CellIndex) TwoApprox(t int) (center int, radius float64, err error) {
	return twoApproxLadder(ix.frame.N(), t, ix.dupCount, ix.lad, func(j int) []int32 {
		// Background context: point/ladder queries are not cancellable —
		// countAll never errors under it.
		c, _ := ix.countAll(context.Background(), ix.level(j), ix.levelRadius(j), int32(t), true)
		return c
	})
}

// twoApproxLadder is the TwoApprox search shared by the scalable backends
// (one implementation, so the sharded index cannot drift from the cell
// index — their bit-identical equivalence depends on it): duplicate
// classes resolve radius 0 exactly, and otherwise the predicate "some
// input-centered ball of ladder radius r_j holds ≥ t points" is monotone
// in j, so a binary search over the ladder finds the smallest satisfying
// level from the backend's exact capped counts (countsAt, memoized here).
func twoApproxLadder(n, t int, dupCount []int32, lad radiusLadder, countsAt func(j int) []int32) (center int, radius float64, err error) {
	if t < 1 || t > n {
		return 0, 0, fmt.Errorf("geometry: TwoApprox t=%d out of [1,%d]", t, n)
	}
	for i, c := range dupCount {
		if int(c) >= t {
			return i, 0, nil
		}
	}
	memo := make(map[int][]int32)
	memoized := func(j int) []int32 {
		if c, ok := memo[j]; ok {
			return c
		}
		c := countsAt(j)
		memo[j] = c
		return c
	}
	lo, hi := 0, lad.top
	for lo < hi {
		mid := (lo + hi) / 2
		if maxInt32(memoized(mid)) >= int32(t) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	r := lad.radius(lo)
	for i, c := range memoized(lo) {
		if int(c) >= t {
			return i, r, nil
		}
	}
	// Unreachable: the ladder top provably covers the whole dataset.
	return 0, r, fmt.Errorf("geometry: TwoApprox ladder did not saturate (internal invariant)")
}

func maxInt32(xs []int32) int32 {
	var best int32
	for _, x := range xs {
		if x > best {
			best = x
		}
	}
	return best
}

// MaxCountWithin returns max_i B_r(x_i) exactly.
func (ix *CellIndex) MaxCountWithin(r float64) int {
	counts, _ := ix.countAll(context.Background(), ix.level(ix.levelFor(r)), r, math.MaxInt32, true)
	return int(maxInt32(counts))
}

// lCounts returns the capped estimated counts the L estimators are built
// from (center rule — see the exactness contract in the type doc).
func (ix *CellIndex) lCounts(ctx context.Context, r float64, t int) ([]int32, error) {
	j := ix.levelFor(r)
	return ix.countAll(ctx, ix.level(j), r, int32(t), false)
}

// dupLValue is L at radius 0 (and below the resolution floor): the exact
// top-t average of the capped duplicate multiplicities.
func (ix *CellIndex) dupLValue(t int) float64 {
	return topTAvg(ix.dupCount, t)
}

// LValue estimates L(r, S); the estimate lies between L(r−h, S) and
// L(r+h, S) for h ≤ √d/(2·CellsPerRadius)·ρ·r. Radii below the resolution
// floor MinRadius evaluate like radius 0, which is exact for grid-quantized
// inputs (their minimum nonzero pairwise distance is 2·MinRadius when
// MinRadius = Grid.RadiusUnit()).
func (ix *CellIndex) LValue(r float64, t int) (float64, error) {
	n := ix.frame.N()
	if t < 1 || t > n {
		return 0, fmt.Errorf("geometry: LValue t=%d out of [1,%d]", t, n)
	}
	if r < 0 {
		return 0, nil
	}
	if r < ix.opts.MinRadius {
		return ix.dupLValue(t), nil
	}
	counts, err := ix.lCounts(context.Background(), r, t)
	if err != nil {
		return 0, err
	}
	return topTAvg(counts, t), nil
}

// topTAvg returns the average of the t largest values (each clamped to
// [0, t]) via one counting pass — O(n + t), no sort.
func topTAvg(counts []int32, t int) float64 {
	hist := make([]int32, t+1)
	for _, c := range counts {
		if c > int32(t) {
			c = int32(t)
		}
		if c < 0 {
			c = 0
		}
		hist[c]++
	}
	remaining := int32(t)
	sum := 0.0
	for v := t; v >= 0 && remaining > 0; v-- {
		k := hist[v]
		if k > remaining {
			k = remaining
		}
		sum += float64(k) * float64(v)
		remaining -= k
	}
	return sum / float64(t)
}

// BuildLStep constructs the approximate L(·, S) step function by sweeping
// the radius ladder instead of the Θ(n²) pairwise distances: radius 0 is
// answered exactly from the duplicate table, every ladder radius gets the
// cell-granularity estimate (clipped to stay monotone), and the sweep stops
// as soon as L saturates at t — guaranteed at the ladder top, which covers
// the data diameter plus the center-rule slack. Runtime
// O(n·(2·CellsPerRadius+2)^d) per ladder level over Workers cores; memory
// O(n) per transient level. ctx cancellation aborts between (and inside)
// ladder levels — this sweep is the dominant per-query cost at scale.
func (ix *CellIndex) BuildLStep(ctx context.Context, t int) (*LStep, error) {
	ctx = ctxOrBackground(ctx)
	n := ix.frame.N()
	if t < 1 || t > n {
		return nil, fmt.Errorf("geometry: BuildLStep t=%d out of [1,%d]", t, n)
	}
	l := &LStep{T: t}
	prev := ix.dupLValue(t)
	l.Breaks = append(l.Breaks, 0)
	l.Vals = append(l.Vals, prev)
	counts := make([]int32, n) // one buffer for every ladder level
	// Every ladder level is visited in order and the recorded function is
	// the running max of the per-level estimates (run-length encoded: equal
	// values add no break). The per-level estimate is NOT monotone across
	// levels — a coarser level can round a neighbor's cell center out of
	// the ball that a finer level included — so shortcuts that skip levels
	// based on probed values (e.g. binary-searching the first level that
	// moves) would both drop breakpoints and, worse, make the *set* of
	// recorded levels data-dependent, which breaks the sensitivity-2
	// argument. The running max over the full, fixed ladder keeps it: each
	// level's estimate has sensitivity ≤ 2 under the deterministic pair
	// rule, and a pointwise max of sensitivity-2 values has sensitivity
	// ≤ 2.
	for j := 0; j <= ix.lad.top && prev < float64(t); j++ {
		r := ix.levelRadius(j)
		clear(counts)
		if err := ix.countAllInto(ctx, ix.level(ix.levelFor(r)), r, int32(t), false, counts); err != nil {
			return nil, err
		}
		v := topTAvg(counts, t)
		if v > prev {
			l.Breaks = append(l.Breaks, ix.levelRadius(j))
			l.Vals = append(l.Vals, v)
			prev = v
		}
	}
	return l, nil
}
