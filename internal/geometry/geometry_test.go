package geometry

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"privcluster/internal/vec"
)

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(1, 2); err == nil {
		t.Error("|X|=1 accepted")
	}
	if _, err := NewGrid(4, 0); err == nil {
		t.Error("dim=0 accepted")
	}
	g, err := NewGrid(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.Step() != 0.25 {
		t.Errorf("Step = %v, want 0.25", g.Step())
	}
}

func TestQuantizeSnapsAndClamps(t *testing.T) {
	g, _ := NewGrid(5, 2) // step 0.25
	got := g.Quantize(vec.Of(0.3, -2))
	if !got.ApproxEqual(vec.Of(0.25, 0), 1e-12) {
		t.Errorf("Quantize = %v", got)
	}
	got = g.Quantize(vec.Of(0.38, 7))
	if !got.ApproxEqual(vec.Of(0.5, 1), 1e-12) {
		t.Errorf("Quantize = %v", got)
	}
	if !g.OnGrid(got) {
		t.Error("quantized point not on grid")
	}
	if g.OnGrid(vec.Of(0.3, 0.3)) {
		t.Error("off-grid point reported on grid")
	}
	if g.OnGrid(vec.Of(0.25)) {
		t.Error("wrong-dim point reported on grid")
	}
}

func TestQuantizeIdempotent(t *testing.T) {
	g, _ := NewGrid(17, 3)
	f := func(a, b, c float64) bool {
		clampIn := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 0.5
			}
			return math.Remainder(x, 2)
		}
		v := vec.Of(clampIn(a), clampIn(b), clampIn(c))
		q := g.Quantize(v)
		return g.Quantize(q).ApproxEqual(q, 1e-12) && g.OnGrid(q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRadiusGridRoundTrip(t *testing.T) {
	g, _ := NewGrid(33, 4)
	m := g.RadiusGridSize()
	if m < 2 {
		t.Fatalf("RadiusGridSize = %d", m)
	}
	// Largest index covers the domain diameter.
	if g.RadiusFromIndex(m-1) < g.MaxDistance() {
		t.Errorf("max grid radius %v < diameter %v", g.RadiusFromIndex(m-1), g.MaxDistance())
	}
	// IndexFromRadius never under-covers.
	for _, r := range []float64{0, 1e-9, 0.1, 0.5, 1.7, g.MaxDistance()} {
		k := g.IndexFromRadius(r)
		if g.RadiusFromIndex(k) < r-1e-12 {
			t.Errorf("IndexFromRadius(%v) = %d under-covers (%v)", r, k, g.RadiusFromIndex(k))
		}
	}
	if g.IndexFromRadius(-1) != 0 {
		t.Error("negative radius index != 0")
	}
	if g.IndexFromRadius(1e18) != m-1 {
		t.Error("huge radius not clamped")
	}
}

func TestCountInBallAndBall(t *testing.T) {
	pts := []vec.Vector{vec.Of(0, 0), vec.Of(1, 0), vec.Of(3, 0)}
	if got := CountInBall(pts, vec.Of(0, 0), 1); got != 2 {
		t.Errorf("CountInBall = %d, want 2", got)
	}
	b := Ball{Center: vec.Of(0, 0), Radius: 1}
	if !b.Contains(vec.Of(1, 0)) || b.Contains(vec.Of(1.01, 0)) {
		t.Error("Ball.Contains boundary wrong")
	}
	in, out := b.Filter(pts)
	if len(in) != 2 || len(out) != 1 {
		t.Errorf("Filter = %d/%d", len(in), len(out))
	}
	if b.Count(pts) != 2 {
		t.Errorf("Count = %d", b.Count(pts))
	}
}

func clusterWithNoise(rng *rand.Rand, n, d int, clusterFrac float64, radius float64) []vec.Vector {
	pts := make([]vec.Vector, 0, n)
	nc := int(float64(n) * clusterFrac)
	center := make(vec.Vector, d)
	for j := range center {
		center[j] = 0.5
	}
	for i := 0; i < nc; i++ {
		p := center.Clone()
		for j := range p {
			p[j] += (rng.Float64()*2 - 1) * radius / math.Sqrt(float64(d))
		}
		pts = append(pts, p)
	}
	for i := nc; i < n; i++ {
		p := make(vec.Vector, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts = append(pts, p)
	}
	return pts
}

func TestDistanceIndexBasics(t *testing.T) {
	if _, err := NewDistanceIndex(nil); err == nil {
		t.Error("empty index accepted")
	}
	if _, err := NewDistanceIndex([]vec.Vector{vec.Of(1), vec.Of(1, 2)}); err == nil {
		t.Error("ragged dims accepted")
	}
	pts := []vec.Vector{vec.Of(0), vec.Of(1), vec.Of(2), vec.Of(10)}
	ix, err := NewDistanceIndex(pts)
	if err != nil {
		t.Fatal(err)
	}
	if ix.N() != 4 {
		t.Errorf("N = %d", ix.N())
	}
	if got := ix.CountWithin(0, 1); got != 2 {
		t.Errorf("CountWithin(0,1) = %d, want 2", got)
	}
	if got := ix.CountWithin(1, 1); got != 3 {
		t.Errorf("CountWithin(1,1) = %d, want 3", got)
	}
	if got, err := ix.RadiusForCount(0, 3); err != nil || got != 2 {
		t.Errorf("RadiusForCount(0,3) = %v, %v, want 2", got, err)
	}
	if got := ix.MaxCountWithin(1); got != 3 {
		t.Errorf("MaxCountWithin(1) = %d, want 3", got)
	}
}

func TestRadiusForCountOutOfRange(t *testing.T) {
	// Out-of-range t must surface as an error, never a panic — library
	// users have no reason to expect a panic path in the geometry package.
	ix, _ := NewDistanceIndex([]vec.Vector{vec.Of(0)})
	if _, err := ix.RadiusForCount(0, 2); err == nil {
		t.Fatal("RadiusForCount(0,2) accepted t > n")
	}
	if _, err := ix.RadiusForCount(0, 0); err == nil {
		t.Fatal("RadiusForCount(0,0) accepted t < 1")
	}
}

func TestTwoApproxQuality(t *testing.T) {
	// Planted cluster: the 2-approximation must find a ball within 2× of
	// the planted radius that covers t points.
	rng := rand.New(rand.NewSource(1))
	pts := clusterWithNoise(rng, 300, 3, 0.3, 0.05)
	ix, err := NewDistanceIndex(pts)
	if err != nil {
		t.Fatal(err)
	}
	tParam := 90
	c, r, err := ix.TwoApprox(tParam)
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.CountWithin(c, r); got < tParam {
		t.Errorf("2-approx ball holds %d < %d points", got, tParam)
	}
	// r_opt ≤ planted radius 0.05 (roughly; cluster diameter ≤ 0.1), so the
	// 2-approx must return r ≤ 2·0.1.
	if r > 0.2 {
		t.Errorf("2-approx radius %v too large", r)
	}
	if _, _, err := ix.TwoApprox(0); err == nil {
		t.Error("t=0 accepted")
	}
	if _, _, err := ix.TwoApprox(10000); err == nil {
		t.Error("t>n accepted")
	}
}

func TestLValueAgainstDefinition(t *testing.T) {
	// Hand-checkable instance on a line: points 0, 1, 2, 10 with t = 2.
	pts := []vec.Vector{vec.Of(0), vec.Of(1), vec.Of(2), vec.Of(10)}
	ix, _ := NewDistanceIndex(pts)
	// r = 1: counts are 2,3,2,1 capped at 2 → 2,2,2,1; top-2 avg = 2.
	got, err := ix.LValue(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("LValue(1,2) = %v, want 2", got)
	}
	// r = 0.5: counts 1,1,1,1 → avg of top-2 = 1.
	got, _ = ix.LValue(0.5, 2)
	if got != 1 {
		t.Errorf("LValue(0.5,2) = %v, want 1", got)
	}
	// Negative r: 0 by convention.
	got, _ = ix.LValue(-1, 2)
	if got != 0 {
		t.Errorf("LValue(-1,2) = %v, want 0", got)
	}
	if _, err := ix.LValue(1, 0); err == nil {
		t.Error("t=0 accepted")
	}
}

func TestBuildLStepMatchesLValue(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		n := 30 + rng.Intn(40)
		d := 1 + rng.Intn(3)
		pts := clusterWithNoise(rng, n, d, 0.4, 0.05)
		ix, err := NewDistanceIndex(pts)
		if err != nil {
			t.Fatal(err)
		}
		tt := 2 + rng.Intn(n/2)
		ls, err := ix.BuildLStep(context.Background(), tt)
		if err != nil {
			t.Fatal(err)
		}
		// Check at breakpoints, between them, and beyond the last.
		var radii []float64
		for _, b := range ls.Breaks {
			radii = append(radii, b, b+1e-7)
		}
		radii = append(radii, 0, 0.01, 0.5, 3, 100)
		for _, r := range radii {
			want, err := ix.LValue(r, tt)
			if err != nil {
				t.Fatal(err)
			}
			if got := ls.Eval(r); math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d: LStep.Eval(%v) = %v, want %v (t=%d n=%d)", trial, r, got, want, tt, n)
			}
		}
	}
}

func TestBuildLStepDuplicatePoints(t *testing.T) {
	// All points identical: L(0) should already be t (a radius-0 cluster),
	// exercising GoodRadius Step 2's code path.
	pts := make([]vec.Vector, 20)
	for i := range pts {
		pts[i] = vec.Of(0.5, 0.5)
	}
	ix, _ := NewDistanceIndex(pts)
	ls, err := ix.BuildLStep(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := ls.Eval(0); got != 10 {
		t.Errorf("L(0) = %v, want 10 (capped)", got)
	}
	if len(ls.Breaks) != 1 {
		t.Errorf("expected a single piece, got %d", len(ls.Breaks))
	}
}

func TestBuildLStepMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := clusterWithNoise(rng, 80, 2, 0.5, 0.02)
	ix, _ := NewDistanceIndex(pts)
	ls, err := ix.BuildLStep(context.Background(), 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(ls.Vals); i++ {
		if ls.Vals[i] < ls.Vals[i-1] {
			t.Fatalf("L not monotone at break %d: %v < %v", i, ls.Vals[i], ls.Vals[i-1])
		}
	}
	// L saturates at t for large r.
	if last := ls.Vals[len(ls.Vals)-1]; last != 20 {
		t.Errorf("L(∞) = %v, want t=20", last)
	}
}

// Property: sensitivity of L(r, ·) is at most 2 (Lemma 4.5). Replace one
// point of a random dataset by another random point and compare L at random
// radii.
func TestLSensitivityAtMostTwo(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		n := 25 + rng.Intn(30)
		pts := clusterWithNoise(rng, n, 2, 0.5, 0.1)
		tt := 2 + rng.Intn(n-2)
		ix1, _ := NewDistanceIndex(pts)

		// Neighboring dataset: replace a random row.
		pts2 := make([]vec.Vector, n)
		copy(pts2, pts)
		pts2[rng.Intn(n)] = vec.Of(rng.Float64(), rng.Float64())
		ix2, _ := NewDistanceIndex(pts2)

		for _, r := range []float64{0, 0.01, 0.05, 0.2, 1, 2} {
			l1, _ := ix1.LValue(r, tt)
			l2, _ := ix2.LValue(r, tt)
			if math.Abs(l1-l2) > 2+1e-9 {
				t.Fatalf("sensitivity %v > 2 at r=%v (n=%d t=%d)", math.Abs(l1-l2), r, n, tt)
			}
		}
	}
}
