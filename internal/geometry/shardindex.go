package geometry

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"privcluster/internal/obs"
	"privcluster/internal/vec"
)

// fanoutBuckets span the per-shard bulk-call latency range: in-process
// loopback backends answer in fractions of a millisecond, remote shard
// servers in milliseconds, and a straggling replica in the hundreds.
var fanoutBuckets = []float64{0.0002, 0.001, 0.005, 0.025, 0.1, 0.5, 2.5}

// statShardFanout records each backend's latency in a bulk-count fan-out
// round — the distribution hedged reads exist to tighten. Resolved once so
// the per-call cost is one atomic walk of the bucket bounds.
var statShardFanout = obs.Default.Histogram("privcluster_shard_fanout_seconds",
	"Per-backend latency of one bulk-count fan-out call.", fanoutBuckets)

// ShardPolicy selects how NewShardedIndex assigns points to shards. The
// assignment never affects query results — every answer is an exact sum of
// per-shard partial counts — only build parallelism and query-time cache
// behavior, so the policy is a pure performance knob.
type ShardPolicy int

const (
	// ShardRoundRobin assigns point i to shard i mod S: perfectly balanced
	// shard sizes with no data-dependent structure. Every shard then spans
	// the whole domain, so each shard's cell levels have roughly as many
	// occupied cells as the unsharded index — the safe, boring default for
	// adversarial layouts.
	ShardRoundRobin ShardPolicy = iota
	// ShardMorton orders the points along a Z-order space-filling curve and
	// cuts the order into S contiguous blocks: spatially compact shards
	// whose cell levels hold fewer, denser occupied cells, which shrinks
	// the per-shard candidate enumeration of the bulk count passes. Sizes
	// still differ by at most one point.
	ShardMorton
)

// ShardedIndexOptions configures NewShardedIndex.
type ShardedIndexOptions struct {
	// Shards is the number of data partitions S. Values below 1 mean 1;
	// values above n are clamped to n (so no shard is ever empty).
	Shards int
	// Policy selects the partition rule (default ShardRoundRobin).
	Policy ShardPolicy
	// Cell configures the per-shard cell indexes. MaxRadius is pinned
	// internally to the global radius ladder (see ShardedIndex); every
	// other field applies to each shard as it would to a single CellIndex.
	Cell CellIndexOptions
}

// indexShard is one data partition: a CellIndex over the subset plus the
// mapping from its local point ids back to global ones.
type indexShard struct {
	ix     *CellIndex
	global []int32 // local id -> global id, in local id order
}

// ShardedIndex is the sharded BallIndex backend: the quantized points are
// partitioned into S shards, each holding its own CellIndex, built in
// parallel. Ball counts are sums over data partitions — B_r(x) =
// Σ_s |{y ∈ shard s : ‖x−y‖ ≤ r}| — so every query is answered by summing
// per-shard partial counts.
//
// Equivalence contract: a ShardedIndex answers every BallIndex query
// bit-identically to a CellIndex over the same points with the same
// options, for any shard count and policy. Three invariants carry it:
//
//   - Shared ladder. Every shard's radius ladder is pinned to the global
//     one (MaxRadius is forced to the global ladder top, which dominates
//     each shard's smaller bounding box), so a query at radius r resolves
//     at the same ladder level, with the same cell side, in every shard.
//   - Positional cell rule. A member point's contribution to a count —
//     whether resolved exactly or by the center rule of the L estimators —
//     depends only on its own cell coordinates and the query point, never
//     on which other points share its cell. Splitting a cell's occupants
//     across shards therefore splits its contribution into exact partial
//     sums. In particular L̂ keeps the sensitivity-2 property of Lemma 4.5:
//     the estimate is the same function of the dataset as the unsharded
//     one, so GoodRadius's privacy analysis is untouched by sharding.
//   - Capping commutes. Capped counts min(B, t) are recovered from
//     per-shard capped partials by nonnegative saturating addition:
//     min(Σ_s min(B_s, t), t) = min(B, t).
//
// Because releases are bit-identical, DP noise draws consume the same rng
// stream and sharded pipelines release exactly what unsharded ones do under
// the same seed. ShardedIndex is safe for concurrent use.
type ShardedIndex struct {
	frame  *vec.Frame // global order — what Frame() must expose
	dim    int
	opts   CellIndexOptions
	lad    radiusLadder
	shards []*indexShard

	// backends is the generic ShardBackend mode (NewShardedIndexBackends):
	// shards are reached only through the interface — possibly over a
	// network — and every bulk query sums the per-backend partial vectors.
	// Exactly one of shards/backends is non-nil: the all-local constructor
	// keeps the fused single-pool pass below (no interface hop, no S-fold
	// source structures), the backend mode pays those costs to buy
	// location transparency. Results are bit-identical either way.
	backends []ShardBackend

	// dupCount[i] is the number of input points identical to row i
	// across ALL shards — the exact global B_0 counts (per-shard duplicate
	// tables cannot see cross-shard duplicates).
	dupCount []int32

	// epoch is the snapshot every backend call is pinned to: EpochFrozen
	// for indexes built over a fixed point set, a concrete epoch for the
	// per-epoch views a mutable index hands out (see MutableShardedIndex).
	epoch Epoch
	// sharedBackends marks the backends as owned by someone else (the
	// mutable coordinator that minted this view): Close then leaves them
	// alone, so closing a cached snapshot can never tear down the live
	// connections every other epoch still queries.
	sharedBackends bool
}

// NewShardedIndex builds a sharded index over a slice of vectors — a
// convenience wrapper that copies the points into a flat Frame first.
func NewShardedIndex(ctx context.Context, points []vec.Vector, opts ShardedIndexOptions) (*ShardedIndex, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("geometry: sharded index over empty point set")
	}
	f, err := vec.FrameFromVectors(points)
	if err != nil {
		return nil, fmt.Errorf("geometry: %w", err)
	}
	return NewShardedIndexFrame(ctx, f, opts)
}

// NewShardedIndexFrame partitions the frame's rows per opts and builds the
// per-shard cell indexes in parallel. It returns an error for an empty input,
// and ctx.Err() when cancelled mid-build (in-flight shard builds are waited
// for, so no goroutines leak). A nil ctx means "never cancel".
func NewShardedIndexFrame(ctx context.Context, points *vec.Frame, opts ShardedIndexOptions) (*ShardedIndex, error) {
	ctx = ctxOrBackground(ctx)
	ix, s, err := newShardedBase(points, opts)
	if err != nil {
		return nil, err
	}

	// Per-shard indexes are built with MaxRadius pinned to the global
	// ladder top, so a shard's (smaller) bounding box can never shrink its
	// ladder: every shard resolves radius r at the same level, with the
	// same cell side, as the unsharded index — the shared-ladder invariant
	// the exact-sum equivalence rests on. Shards skip their duplicate
	// tables: a per-shard table cannot see cross-shard duplicates, and the
	// sharded index keeps the global one (dupCount) for every radius-0
	// path, so only the shards' count paths are ever queried.
	shardCell := ix.opts
	shardCell.MaxRadius = ix.lad.maxR
	shardCell.skipDupTable = true

	for _, gids := range assignShards(points, s, opts.Policy) {
		if len(gids) == 0 {
			continue // unreachable for s ≤ n; defensive
		}
		ix.shards = append(ix.shards, &indexShard{global: gids})
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var wg sync.WaitGroup
	errs := make([]error, len(ix.shards))
	for si, sh := range ix.shards {
		wg.Add(1)
		go func(si int, sh *indexShard) {
			defer wg.Done()
			sh.ix, errs[si] = NewCellIndexFrame(points.Gather(sh.global), shardCell)
		}(si, sh)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	dup, err := globalDupCount(ctx, points, ix.opts.Workers)
	if err != nil {
		return nil, err
	}
	ix.dupCount = dup
	return ix, nil
}

// newShardedBase runs the prologue both constructors share: input
// validation, shard-count clamping, option defaulting and the global
// bounding box → shared radius ladder.
func newShardedBase(points *vec.Frame, opts ShardedIndexOptions) (*ShardedIndex, int, error) {
	if points == nil || points.N() == 0 {
		return nil, 0, fmt.Errorf("geometry: sharded index over empty point set")
	}
	n, d := points.N(), points.Dim()
	s := opts.Shards
	if s < 1 {
		s = 1
	}
	if s > n {
		s = n
	}
	cellOpts := opts.Cell.withDefaults(d)

	// Global bounding box → the ladder every shard must share.
	var rowBuf vec.Vector
	if points.Precision() == vec.Float32 {
		rowBuf = make(vec.Vector, d)
	}
	first := points.RowView(0, rowBuf)
	lo, hi := first.Clone(), first.Clone()
	for i := 0; i < n; i++ {
		p := points.RowView(i, rowBuf)
		for a, x := range p {
			if x < lo[a] {
				lo[a] = x
			}
			if x > hi[a] {
				hi[a] = x
			}
		}
	}
	return &ShardedIndex{
		frame: points,
		dim:   d,
		opts:  cellOpts,
		lad:   newRadiusLadder(cellOpts, d, hi.Dist(lo)),
	}, s, nil
}

// ShardDialer constructs the ShardBackend serving shard number `shard` of
// a backend-mode ShardedIndex. The transport package's dialer connects to
// a remote server and ships cfg at handshake; tests pass
// `func(_ context.Context, _ int, cfg ShardConfig) (ShardBackend, error) {
// return NewLocalShard(cfg) }` to exercise the generic path in-process.
type ShardDialer func(ctx context.Context, shard int, cfg ShardConfig) (ShardBackend, error)

// NewShardedIndexBackends builds a ShardedIndex whose shards are reached
// only through the ShardBackend interface — the seam a remote transport
// plugs into. The points are partitioned exactly as NewShardedIndex would
// (same policy, same clamping), each backend is dialed with its
// ShardConfig (cell options pinned to the shared global ladder), and the
// global duplicate table is assembled by summing per-backend DupCounts.
// Every BallIndex answer is then a sum of per-backend partials —
// bit-identical to the local constructors under the equivalence contract
// above.
//
// Backends are dialed concurrently; the first failure closes the backends
// already dialed and aborts. ctx governs dialing and the duplicate-table
// round trip. The caller owns the returned index's backends: Close
// releases them.
func NewShardedIndexBackends(ctx context.Context, points *vec.Frame, opts ShardedIndexOptions, dial ShardDialer) (*ShardedIndex, error) {
	ctx = ctxOrBackground(ctx)
	ix, s, err := newShardedBase(points, opts)
	if err != nil {
		return nil, err
	}
	shardCell := ix.opts
	shardCell.MaxRadius = ix.lad.maxR

	members := assignShards(points, s, opts.Policy)
	ix.backends = make([]ShardBackend, s)
	errs := make([]error, s)
	// One shard failing to come up dooms the whole build: cancel the
	// sibling dials so a misconfigured address reports immediately
	// instead of after every other shard's dial timeout.
	dctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	for si := 0; si < s; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			be, err := dial(dctx, si, ShardConfig{
				Points:  points,
				Members: members[si],
				Cell:    shardCell,
			})
			if err != nil {
				// Leave the slot a true nil: a typed-nil backend inside
				// the interface would defeat Close's nil guard.
				errs[si] = err
				cancel()
				return
			}
			ix.backends[si] = be
		}(si)
	}
	wg.Wait()
	if err := firstRealError(ctx, errs); err != nil {
		ix.Close()
		return nil, err
	}

	// Global duplicate table: the exact radius-0 counts, as the sum of
	// per-backend contributions (identical points are identical in every
	// shard that holds them, so the partial tables add exactly).
	parts := make([][]int32, s)
	for si, be := range ix.backends {
		wg.Add(1)
		go func(si int, be ShardBackend) {
			defer wg.Done()
			parts[si], errs[si] = be.DupCounts(dctx, EpochFrozen)
			if errs[si] != nil {
				cancel()
			}
		}(si, be)
	}
	wg.Wait()
	if err := firstRealError(ctx, errs); err != nil {
		ix.Close()
		return nil, err
	}
	dup := make([]int32, points.N())
	for _, p := range parts {
		for i, c := range p {
			dup[i] += c
		}
	}
	ix.dupCount = dup
	return ix, nil
}

// Close releases the shard backends (network connections, for a remote
// transport). Indexes from the local constructor hold no external
// resources, so Close is then a no-op, as it is for per-epoch views whose
// backends belong to a mutable coordinator. Queries after Close fail.
func (ix *ShardedIndex) Close() error {
	if ix.sharedBackends {
		return nil
	}
	var first error
	for _, be := range ix.backends {
		if be == nil {
			continue
		}
		if err := be.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// assignShards partitions global point ids into s shards per the policy.
// Every shard receives at least one point when s ≤ n.
func assignShards(points *vec.Frame, s int, pol ShardPolicy) [][]int32 {
	n := points.N()
	out := make([][]int32, s)
	if pol != ShardMorton {
		for i := 0; i < n; i++ {
			out[i%s] = append(out[i%s], int32(i))
		}
		return out
	}
	d := points.Dim()
	bits := 64 / d
	if bits < 1 {
		bits = 1
	}
	if bits > 16 {
		bits = 16
	}
	keys := make([]uint64, n)
	cells := make([]uint64, d)
	rowBuf := make(vec.Vector, d)
	for i := 0; i < n; i++ {
		keys[i] = mortonKey(points.RowView(i, rowBuf), bits, cells)
	}
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	// Ties (and the block cuts) break by global id, so the assignment is a
	// deterministic function of the point set alone.
	sort.Slice(order, func(a, b int) bool {
		ka, kb := keys[order[a]], keys[order[b]]
		if ka != kb {
			return ka < kb
		}
		return order[a] < order[b]
	})
	for b, lo := 0, 0; b < s; b++ {
		hi := lo + n/s
		if b < n%s {
			hi++
		}
		out[b] = order[lo:hi:hi]
		lo = hi
	}
	return out
}

// mortonKey returns the Z-order (Morton) code of p at the given bits per
// axis: per-axis cell indices over [0,1] are interleaved from the most
// significant bit down, so nearby points share long key prefixes. cells is
// caller-provided scratch of length dim.
func mortonKey(p vec.Vector, bits int, cells []uint64) uint64 {
	hi := uint64(1)<<bits - 1
	for a, x := range p {
		c := uint64(0)
		if x > 0 {
			c = uint64(x * float64(uint64(1)<<bits))
			if c > hi {
				c = hi
			}
		}
		cells[a] = c
	}
	var code uint64
	for b := bits - 1; b >= 0; b-- {
		for _, c := range cells {
			code = code<<1 | (c>>uint(b))&1
		}
	}
	return code
}

// fnv64 is FNV-1a over b — the partition hash of the parallel duplicate
// table. Only the partition of keys matters, never the hash values, so any
// deterministic mixing function works here.
func fnv64(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// globalDupCount computes, for every point, how many input points are
// identical to it — the exact radius-0 counts the sharded L estimators
// need. The build is parallel end to end: coordinate keys are encoded by a
// worker pool, points are partitioned by key hash (identical points always
// land in one partition), and each partition counts its duplicate classes
// with an independent map.
func globalDupCount(ctx context.Context, points *vec.Frame, workers int) ([]int32, error) {
	n, d := points.N(), points.Dim()
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	keys := make([]string, n)
	hash := make([]uint64, n)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			buf := make([]byte, 0, 8*d)
			for i := lo; i < hi; i++ {
				buf = points.AppendRowKey(buf[:0], i)
				keys[i] = string(buf)
				hash[i] = fnv64(buf)
			}
		}(lo, hi)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	parts := make([][]int32, workers)
	for i := 0; i < n; i++ {
		w := hash[i] % uint64(workers)
		parts[w] = append(parts[w], int32(i))
	}
	out := make([]int32, n)
	for _, ids := range parts {
		wg.Add(1)
		go func(ids []int32) {
			defer wg.Done()
			m := make(map[string]int32, len(ids))
			for _, i := range ids {
				m[keys[i]]++
			}
			for _, i := range ids {
				out[i] = m[keys[i]]
			}
		}(ids)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// N returns the number of indexed points.
func (ix *ShardedIndex) N() int { return ix.frame.N() }

// Frame returns the indexed point store (not a copy), in the original global
// order — downstream stages (GoodCenter's SVT loop) iterate it, so the
// order must not depend on the sharding.
func (ix *ShardedIndex) Frame() *vec.Frame { return ix.frame }

// Shards returns the number of shards (diagnostic).
func (ix *ShardedIndex) Shards() int {
	if ix.backends != nil {
		return len(ix.backends)
	}
	return len(ix.shards)
}

// countAllBackends is the backend-mode bulk pass: one PartialCounts round
// trip per backend, issued concurrently, then the per-shard capped vectors
// summed with saturation at limit — min(Σ_s min(B_s, t), t) = min(B, t),
// so the result is bit-identical to the fused local pass. On any backend
// failure the siblings are cancelled and the error (never a partial sum)
// is returned; a cancelled caller ctx aborts every in-flight call.
func (ix *ShardedIndex) countAllBackends(ctx context.Context, j int, r float64, limit int32, exactBoundary bool) ([]int32, error) {
	n := ix.frame.N()
	out := make([]int32, n)
	if r < 0 || limit <= 0 {
		return out, nil
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	parts := make([][]int32, len(ix.backends))
	errs := make([]error, len(ix.backends))
	// Per-backend spans would exhaust the trace's span cap over an LStep
	// sweep's many rounds; the enclosing stage span accumulates counters
	// instead, and the latency distribution goes to the process histogram.
	span := obs.CurrentSpan(ctx)
	var wg sync.WaitGroup
	for si, be := range ix.backends {
		wg.Add(1)
		go func(si int, be ShardBackend) {
			defer wg.Done()
			start := time.Now()
			parts[si], errs[si] = be.PartialCounts(cctx, ix.epoch, j, r, limit, exactBoundary)
			el := time.Since(start)
			statShardFanout.Observe(el.Seconds())
			if span != nil {
				span.Count("shard_calls", 1)
				span.Count(fmt.Sprintf("shard%d_us", si), el.Microseconds())
			}
			if errs[si] != nil {
				cancel() // tear down the sibling calls
			}
		}(si, be)
	}
	wg.Wait()
	if err := firstRealError(ctx, errs); err != nil {
		return nil, err
	}
	for si, p := range parts {
		if len(p) != n {
			// A backend answering for the wrong snapshot (or a hostile
			// server) must never silently skew the sums.
			return nil, fmt.Errorf("geometry: shard %d returned %d partial counts at epoch %d, want %d", si, len(p), ix.epoch, n)
		}
		for i, c := range p {
			if s := out[i] + c; s < limit {
				out[i] = s
			} else {
				out[i] = limit
			}
		}
	}
	return out, nil
}

// firstRealError reduces a fan-out's per-backend errors: the caller's own
// cancellation wins, then a backend's genuine failure is preferred over
// the context.Canceled errors that failure induced in its siblings.
func firstRealError(ctx context.Context, errs []error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, context.Canceled) {
			return err
		}
		if first == nil {
			first = err
		}
	}
	return first
}

// countAll computes the capped within-r count of every indexed point by
// summing per-shard member contributions at ladder level j, via the shared
// crossCellCounts engine with the shards as both source and member groups.
// Each shard's cell level uses exactly the cell side the unsharded index
// would (shared ladder), so the per-(source cell, member cell)
// classification — and therefore every per-point count — is bit-identical
// to the single-index pass, accumulated shard by shard with saturation at
// limit. A cancelled ctx aborts the pass with ctx.Err() and no leaked
// goroutines (see crossCellCounts).
func (ix *ShardedIndex) countAll(ctx context.Context, j int, r float64, limit int32, exactBoundary bool) ([]int32, error) {
	ctx = ctxOrBackground(ctx)
	if ix.backends != nil {
		return ix.countAllBackends(ctx, j, r, limit, exactBoundary)
	}
	n := ix.frame.N()
	out := make([]int32, n)
	groups := ix.cellGroups()
	if err := crossCellCounts(ctx, ix.opts.Workers, groups, groups, j, r, limit, exactBoundary, out); err != nil {
		return nil, err
	}
	return out, nil
}

// cellGroups exposes the local shards as cross-counting groups: each
// shard's index with its local→global id mapping (see crossCellCounts).
func (ix *ShardedIndex) cellGroups() []cellGroup {
	groups := make([]cellGroup, len(ix.shards))
	for si, sh := range ix.shards {
		groups[si] = cellGroup{ix: sh.ix, gids: sh.global}
	}
	return groups
}

// CountWithin returns B_r(x_i) exactly: the sum of exact per-shard counts.
// In backend mode a transport failure is reported as -1 (an impossible
// count — every valid answer at r ≥ 0 is ≥ 1, the point itself); the
// serving pipeline only consumes the error-returning query paths.
func (ix *ShardedIndex) CountWithin(i int, r float64) int {
	if r < 0 {
		return 0
	}
	if ix.backends != nil {
		center := []vec.Vector{ix.frame.RowView(i, nil)}
		total := 0
		for _, be := range ix.backends {
			c, err := be.CountBatch(context.Background(), ix.epoch, center, r)
			if err != nil {
				return -1
			}
			total += int(c[0])
		}
		return total
	}
	j := ix.lad.levelFor(r)
	sc := newCellScratch(ix.dim)
	p := ix.frame.RowView(i, sc.row)
	total := 0
	for _, sh := range ix.shards {
		total += int(sh.ix.countOne(sh.ix.level(j), p, r, sc))
	}
	return total
}

// RadiusForCount returns the t-th smallest distance from point i — exact,
// via the scan shared with the CellIndex.
func (ix *ShardedIndex) RadiusForCount(i, t int) (float64, error) {
	return radiusForCount(ix.frame, i, t)
}

// TwoApprox runs the shared ladder search (twoApproxLadder) on the summed
// exact counts: identical ladder, identical counts, identical result to
// the unsharded index.
func (ix *ShardedIndex) TwoApprox(t int) (center int, radius float64, err error) {
	// Local mode never errors under a background context; backend mode
	// can (transport failures), so the closure captures the first error
	// and it preempts whatever the ladder search made of the nil counts.
	var callErr error
	c, r, err := twoApproxLadder(ix.frame.N(), t, ix.dupCount, ix.lad, func(j int) []int32 {
		counts, err := ix.countAll(context.Background(), j, ix.lad.radius(j), int32(t), true)
		if err != nil && callErr == nil {
			callErr = err
		}
		return counts
	})
	if callErr != nil {
		return 0, 0, callErr
	}
	return c, r, err
}

// MaxCountWithin returns max_i B_r(x_i) exactly. In backend mode a
// transport failure is reported as -1 (see CountWithin).
func (ix *ShardedIndex) MaxCountWithin(r float64) int {
	counts, err := ix.countAll(context.Background(), ix.lad.levelFor(r), r, math.MaxInt32, true)
	if err != nil {
		return -1
	}
	return int(maxInt32(counts))
}

// dupLValue is L at radius 0 (and below the resolution floor): the exact
// top-t average of the capped global duplicate multiplicities.
func (ix *ShardedIndex) dupLValue(t int) float64 {
	return topTAvg(ix.dupCount, t)
}

// LValue estimates L(r, S) with exactly the CellIndex bounds (the summed
// center-rule counts are bit-identical to the unsharded estimate).
func (ix *ShardedIndex) LValue(r float64, t int) (float64, error) {
	n := ix.frame.N()
	if t < 1 || t > n {
		return 0, fmt.Errorf("geometry: LValue t=%d out of [1,%d]", t, n)
	}
	if r < 0 {
		return 0, nil
	}
	if r < ix.opts.MinRadius {
		return ix.dupLValue(t), nil
	}
	counts, err := ix.countAll(context.Background(), ix.lad.levelFor(r), r, int32(t), false)
	if err != nil {
		return 0, err
	}
	return topTAvg(counts, t), nil
}

// BuildLStep constructs the approximate L(·, S) step function exactly as
// the CellIndex sweep does — same fixed ladder, same running-max recording,
// same early saturation stop — with each level's counts summed across
// shards. The recorded function is bit-identical to the unsharded one, so
// the sensitivity-2 argument (and every downstream noise draw) is
// unchanged; see the ShardedIndex equivalence contract.
func (ix *ShardedIndex) BuildLStep(ctx context.Context, t int) (*LStep, error) {
	ctx = ctxOrBackground(ctx)
	n := ix.frame.N()
	if t < 1 || t > n {
		return nil, fmt.Errorf("geometry: BuildLStep t=%d out of [1,%d]", t, n)
	}
	l := &LStep{T: t}
	prev := ix.dupLValue(t)
	l.Breaks = append(l.Breaks, 0)
	l.Vals = append(l.Vals, prev)
	levels := 0
	for j := 0; j <= ix.lad.top && prev < float64(t); j++ {
		counts, err := ix.countAll(ctx, j, ix.lad.radius(j), int32(t), false)
		if err != nil {
			return nil, err
		}
		levels++
		v := topTAvg(counts, t)
		if v > prev {
			l.Breaks = append(l.Breaks, ix.lad.radius(j))
			l.Vals = append(l.Vals, v)
			prev = v
		}
	}
	obs.CurrentSpan(ctx).Count("sweep_levels", int64(levels))
	return l, nil
}
