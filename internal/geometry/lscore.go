package geometry

import (
	"context"
	"fmt"
	"sort"

	"privcluster/internal/vec"
)

// ctxOrBackground normalizes the "nil means never cancel" contract the
// BallIndex implementations share.
func ctxOrBackground(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

// LStep is the score L(r, S) of Section 3.1 materialized as a step function
// of the radius r:
//
//	L(r, S) = (1/t) · max over t distinct points of Σ B̄_r(x_i),
//
// i.e. the average of the t largest ball counts around input points, with
// every count capped at t (B̄_r = min(B_r, t)). L is non-decreasing in r,
// has sensitivity 2 as a function of the dataset (Lemma 4.5), and — as a
// function of r — changes value only at pairwise distances of input points.
// Breaks[k] is the k-th breakpoint radius; Vals[k] is L on
// [Breaks[k], Breaks[k+1]). Breaks[0] == 0.
type LStep struct {
	T      int
	Breaks []float64
	Vals   []float64
}

// Eval returns L(r, S). Radii below zero evaluate to the paper's convention
// B_r = 0, i.e. L = 0.
func (l *LStep) Eval(r float64) float64 {
	if r < 0 {
		return 0
	}
	k := sort.SearchFloat64s(l.Breaks, r)
	// SearchFloat64s returns first index with Breaks[k] ≥ r; we want the
	// last breakpoint ≤ r.
	if k == len(l.Breaks) || l.Breaks[k] > r {
		k--
	}
	return l.Vals[k]
}

// topTFenwick maintains point counts capped at t and answers "sum of the t
// largest capped counts" in O(log t) per update/query. It is a Fenwick tree
// over the value range [1, t]: tree counts how many points currently hold
// each capped value, and sums their values.
type topTFenwick struct {
	t     int
	cnt   []int     // Fenwick over #points per value
	sum   []float64 // Fenwick over Σ value per value bucket
	value []int     // current capped value per point
}

func newTopTFenwick(n, t int) *topTFenwick {
	f := &topTFenwick{
		t:     t,
		cnt:   make([]int, t+1),
		sum:   make([]float64, t+1),
		value: make([]int, n),
	}
	for i := 0; i < n; i++ {
		f.value[i] = 1 // every point's ball contains itself
		f.add(min(1, t), 1)
	}
	return f
}

func (f *topTFenwick) add(v, sign int) {
	for i := v; i <= f.t; i += i & (-i) {
		f.cnt[i] += sign
		f.sum[i] += float64(sign * v)
	}
}

// prefix returns (#points, Σ values) over capped values ≤ v.
func (f *topTFenwick) prefix(v int) (int, float64) {
	c, s := 0, 0.0
	for i := v; i > 0; i -= i & (-i) {
		c += f.cnt[i]
		s += f.sum[i]
	}
	return c, s
}

// increment bumps point i's raw count by one (capped at t).
func (f *topTFenwick) increment(i int) {
	old := f.value[i]
	if old >= f.t {
		return
	}
	f.value[i] = old + 1
	f.add(old, -1)
	f.add(old+1, 1)
}

// topTSum returns the sum of the t largest capped values.
func (f *topTFenwick) topTSum() float64 {
	n := len(f.value)
	totalC, totalS := f.prefix(f.t)
	if totalC != n {
		panic("geometry: fenwick invariant broken")
	}
	if n <= f.t {
		// Fewer points than t never happens for valid inputs (t ≤ n), but
		// keep the sum well-defined.
		return totalS
	}
	// Find the smallest value v* such that #points with value > v* is < t;
	// then take all points above v* and fill the remainder at value v*.
	lo, hi := 0, f.t
	for lo < hi {
		mid := (lo + hi) / 2
		cLE, _ := f.prefix(mid)
		if n-cLE < f.t { // points strictly above mid fit within t
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	cLE, sLE := f.prefix(lo)
	above := n - cLE
	sAbove := totalS - sLE
	return sAbove + float64(f.t-above)*float64(lo)
}

// BuildLStep constructs the L(·, S) step function by sweeping the pairwise
// distances in ascending order: at each distance d_ij, the balls around
// point i and point j each gain one member, and L changes only there.
// Runtime O(n² log n); memory O(n²). The Θ(n²) event build checks ctx once
// per source point, so cancellation aborts within one O(n) row.
func (ix *DistanceIndex) BuildLStep(ctx context.Context, t int) (*LStep, error) {
	ctx = ctxOrBackground(ctx)
	n := ix.N()
	if t < 1 || t > n {
		return nil, fmt.Errorf("geometry: BuildLStep t=%d out of [1,%d]", t, n)
	}
	type event struct {
		d    float64
		i, j int
	}
	events := make([]event, 0, n*(n-1)/2)
	scratch := make(vec.Vector, ix.frame.Dim())
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pi := ix.frame.RowView(i, scratch)
		for j := i + 1; j < n; j++ {
			events = append(events, event{ix.frame.Dist(j, pi), i, j})
		}
	}
	sort.Slice(events, func(a, b int) bool { return events[a].d < events[b].d })
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	fen := newTopTFenwick(n, t)
	l := &LStep{T: t}
	// State before any event: every ball holds exactly its own point.
	record := func(r float64) {
		v := fen.topTSum() / float64(t)
		if len(l.Vals) > 0 && l.Vals[len(l.Vals)-1] == v {
			return
		}
		l.Breaks = append(l.Breaks, r)
		l.Vals = append(l.Vals, v)
	}
	record(0)
	for k := 0; k < len(events); {
		d := events[k].d
		for ; k < len(events) && events[k].d == d; k++ {
			fen.increment(events[k].i)
			fen.increment(events[k].j)
		}
		if d == 0 {
			// Distance-zero events fold into the r = 0 value.
			l.Breaks = l.Breaks[:0]
			l.Vals = l.Vals[:0]
			record(0)
			continue
		}
		record(d)
	}
	return l, nil
}

// LValue computes L(r, S) directly (without the sweep); used to cross-check
// BuildLStep in tests and by one-off callers. O(n log n).
func (ix *DistanceIndex) LValue(r float64, t int) (float64, error) {
	n := ix.N()
	if t < 1 || t > n {
		return 0, fmt.Errorf("geometry: LValue t=%d out of [1,%d]", t, n)
	}
	if r < 0 {
		return 0, nil
	}
	counts := make([]int, n)
	for i := 0; i < n; i++ {
		c := ix.CountWithin(i, r)
		if c > t {
			c = t
		}
		counts[i] = c
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	sum := 0
	for i := 0; i < t; i++ {
		sum += counts[i]
	}
	return float64(sum) / float64(t), nil
}
