package geometry

import (
	"context"
	"math"
	"sync"
)

// cellGroup pairs one CellIndex with the mapping from its local row ids to
// slots of a global output vector (nil = identity). It is the unit of the
// generic cross-counting pass below: a sharded index contributes one group
// per shard, an epoch snapshot one group per storage generation (frozen
// base + delta), and the two compose freely — a mutable shard's pinned
// query is just base/delta source groups against base/delta member groups.
//
// On the source side gids maps a group-local point id to its out slot; on
// the member side only the cells matter (a member's contribution is a pure
// function of its own cell and the query point), so member gids are
// ignored.
type cellGroup struct {
	ix   *CellIndex
	gids []int32
}

// crossCellCounts is the bulk counting engine shared by every composite
// index: it adds to out the capped within-r member contributions around
// every source point, at ladder level j, across all (source group, member
// group) pairs. All groups must be pinned to one shared radius ladder (same
// cell side at level j) — the invariant that makes the per-pair passes sum
// bit-identically to a single unsharded pass (see the ShardedIndex
// equivalence contract).
//
// Source cells fan out over one worker pool shared by every group pair;
// tasks partition each source group's cells, the source groups partition
// the out slots, and a point's slot is written only by the task owning its
// source cell, so the pass is data-race free. Per (source cell, member
// group) pair an O(d) bounding-box prune skips member groups whose occupied
// cells cannot reach the cell's candidate block. A cancelled ctx aborts the
// pass with ctx.Err(): the feeder stops, the workers drain, no goroutines
// leak.
func crossCellCounts(ctx context.Context, workers int, srcs, members []cellGroup, j int, r float64, limit int32, exactBoundary bool, out []int32) error {
	ctx = ctxOrBackground(ctx)
	if r < 0 || limit <= 0 || len(srcs) == 0 || len(members) == 0 {
		return nil
	}
	// Materialize every group's cell level up front, in parallel — each
	// index's lazy level cache has its own lock, so pool workers below never
	// serialize behind one another's builds. Source and member slices may
	// share indexes; the second build is a cache hit.
	srcLvs := make([]*cellLevel, len(srcs))
	memLvs := make([]*cellLevel, len(members))
	var lwg sync.WaitGroup
	for gi, g := range srcs {
		lwg.Add(1)
		go func(gi int, ix *CellIndex) {
			defer lwg.Done()
			srcLvs[gi] = ix.level(j)
		}(gi, g.ix)
	}
	for gi, g := range members {
		lwg.Add(1)
		go func(gi int, ix *CellIndex) {
			defer lwg.Done()
			memLvs[gi] = ix.level(j)
		}(gi, g.ix)
	}
	lwg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}

	// A source cell's candidate block spans at most ⌈r/side⌉+1 cells per
	// axis beyond its own coordinates (forCandidates pads by side/2 from
	// the cell center); a member group whose occupied-cell bounding box lies
	// wholly outside that span cannot contribute and is skipped in O(d) —
	// a pure performance skip, since the pruned groups' passes would find
	// no buckets anyway.
	span := int64(math.Ceil(r/srcLvs[0].side)) + 1
	dim := srcs[0].ix.dim

	nb := 0
	for _, lv := range srcLvs {
		nb += len(lv.buckets)
	}
	if workers > nb {
		workers = nb
	}

	type task struct{ src, lo, hi int }
	const chunk = 64
	tasks := make(chan task)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := newCellScratch(dim)
			for tk := range tasks {
				if ctx.Err() != nil {
					continue // drain the channel so the feeder never blocks
				}
				srcG := srcs[tk.src]
				srcLv := srcLvs[tk.src]
				for bi := tk.lo; bi < tk.hi; bi++ {
					srcB := &srcLv.buckets[bi]
				memberGroups:
					for mi, mem := range members {
						mlv := memLvs[mi]
						for a, c := range srcB.coord {
							if c+span < mlv.lo[a] || c-span > mlv.hi[a] {
								continue memberGroups
							}
						}
						mem.ix.accumulateCellCounts(mlv, srcB, srcG.ix.frame, srcG.gids, r, limit, exactBoundary, out, sc)
					}
				}
			}
		}()
	}
feed:
	for gi := range srcs {
		gnb := len(srcLvs[gi].buckets)
		for lo := 0; lo < gnb; lo += chunk {
			if ctx.Err() != nil {
				break feed
			}
			hi := lo + chunk
			if hi > gnb {
				hi = gnb
			}
			tasks <- task{gi, lo, hi}
		}
	}
	close(tasks)
	wg.Wait()
	return ctx.Err()
}
