package geometry

import (
	"context"
	"fmt"
	"sync"

	"privcluster/internal/vec"
)

// MutableShardBackend extends ShardBackend with the mutation half of the
// epoch model: appends and deletes arrive as coordinator-driven batches
// that advance the shard's epoch by exactly one, in lockstep across every
// shard of the index. Each shard keeps the full global row set as query
// sources (every appended row reaches every shard) and its member subset
// as the rows it answers for, both keyed by coordinator-assigned stable
// ids.
//
// Like the read half, mutations must not be issued concurrently to one
// backend; the coordinator serializes them.
type MutableShardBackend interface {
	ShardBackend
	// Append lands one mutation batch: rows (with their global stable ids,
	// parallel) extend the shard's source set, and the memberLocal indices
	// into rows name the ones that join this shard's member set (possibly
	// none — the shard still advances its epoch). Returns the new epoch.
	Append(ctx context.Context, rows *vec.Frame, memberLocal []int32, ids []uint64) (Epoch, error)
	// Delete removes the rows with the given stable ids from the source
	// set and whichever of them this shard holds from the member set, as
	// one epoch-advancing batch that retires all older epochs. Returns the
	// new epoch.
	Delete(ctx context.Context, ids []uint64) (Epoch, error)
	// CurrentEpoch returns the shard's current epoch.
	CurrentEpoch(ctx context.Context) (Epoch, error)
	// Merge folds the shard's append deltas into its frozen bases — a pure
	// cost optimization, never a semantic change.
	Merge(ctx context.Context) error
}

// MutableShardDialer constructs the MutableShardBackend serving one shard
// of a MutableShardedIndex, mirroring ShardDialer.
type MutableShardDialer func(ctx context.Context, shard int, cfg ShardConfig) (MutableShardBackend, error)

// MutableLocalShard is the in-process MutableShardBackend: two
// MutableCellIndexes — the member rows and the global source rows — kept
// in epoch lockstep, each answering pinned-epoch queries from its
// two-generation (base + delta) snapshot views. It is what the shard
// server runs behind the mutable wire sessions, and what loopback tests
// plug directly into NewMutableShardedIndexBackends.
type MutableLocalShard struct {
	mu        sync.Mutex
	cell      CellIndexOptions
	members   *MutableCellIndex // the shard's member rows, keyed by global stable ids
	src       *MutableCellIndex // the global source rows
	memberIDs map[uint64]struct{}

	// dups memoizes DupCounts per pinned epoch (FIFO, cleared on delete —
	// deletes retire every older epoch anyway).
	dups     map[Epoch][]int32
	dupOrder []Epoch
}

// NewMutableLocalShard builds the in-process mutable backend for one
// shard. As with NewLocalShard, the config's cell options must be
// defaulted and ladder-pinned; the initial rows get stable ids equal to
// their global row indices (the coordinator's convention, which lets a
// remote server infer them from the OPEN payload alone).
func NewMutableLocalShard(cfg ShardConfig) (*MutableLocalShard, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cell := cfg.Cell.withDefaults(cfg.Points.Dim())
	// Dup tables live here, per epoch, over the member rows — the inner
	// indexes never need their own.
	cell.skipDupTable = true
	n := cfg.Points.N()
	memIDs := make([]uint64, len(cfg.Members))
	memberIDs := make(map[uint64]struct{}, len(cfg.Members))
	for i, g := range cfg.Members {
		memIDs[i] = uint64(g)
		memberIDs[uint64(g)] = struct{}{}
	}
	members, err := newMutableCellIndexIDs(cfg.Points.Gather(cfg.Members), memIDs, uint64(n), cell)
	if err != nil {
		return nil, err
	}
	srcIDs := make([]uint64, n)
	for i := range srcIDs {
		srcIDs[i] = uint64(i)
	}
	src, err := newMutableCellIndexIDs(cfg.Points, srcIDs, uint64(n), cell)
	if err != nil {
		members.Close()
		return nil, err
	}
	return &MutableLocalShard{
		cell:      cell,
		members:   members,
		src:       src,
		memberIDs: memberIDs,
		dups:      make(map[Epoch][]int32),
	}, nil
}

// NPoints returns the number of member rows the shard currently holds.
func (s *MutableLocalShard) NPoints() int { return s.members.Rows() }

// Close stops both inner indexes' background merges. Idempotent.
func (s *MutableLocalShard) Close() error {
	err := s.members.Close()
	if e := s.src.Close(); err == nil {
		err = e
	}
	return err
}

// errUnpinnedEpoch rejects EpochFrozen against a mutable shard: every
// query must name a concrete snapshot.
func errUnpinnedEpoch() error {
	return fmt.Errorf("geometry: mutable shard queried without a pinned epoch")
}

// CountBatch returns the exact number of epoch-e member rows within r of
// each center.
func (s *MutableLocalShard) CountBatch(ctx context.Context, epoch Epoch, centers []vec.Vector, r float64) ([]int32, error) {
	if epoch == EpochFrozen {
		return nil, errUnpinnedEpoch()
	}
	if err := ctxOrBackground(ctx).Err(); err != nil {
		return nil, err
	}
	view, err := s.members.viewAt(ctx, epoch)
	if err != nil {
		return nil, err
	}
	return view.countAround(centers, r)
}

// PartialCounts computes the shard's epoch-e member contributions around
// every epoch-e global row, capped at limit: the source view's base+delta
// groups crossed with the member view's, through the same crossCellCounts
// engine every other composite pass uses. The shared pinned ladder makes
// the sum bit-identical to the frozen single-index pass over the epoch's
// rows.
func (s *MutableLocalShard) PartialCounts(ctx context.Context, epoch Epoch, j int, r float64, limit int32, exactBoundary bool) ([]int32, error) {
	if epoch == EpochFrozen {
		return nil, errUnpinnedEpoch()
	}
	srcView, err := s.src.viewAt(ctx, epoch)
	if err != nil {
		return nil, err
	}
	memView, err := s.members.viewAt(ctx, epoch)
	if err != nil {
		return nil, err
	}
	out := make([]int32, srcView.N())
	if err := crossCellCounts(ctx, s.cell.Workers, srcView.cellGroups(), memView.cellGroups(), j, r, limit, exactBoundary, out); err != nil {
		return nil, err
	}
	return out, nil
}

// DupCounts returns, for every epoch-e global row, the number of epoch-e
// member rows bitwise identical to it (memoized per epoch).
func (s *MutableLocalShard) DupCounts(ctx context.Context, epoch Epoch) ([]int32, error) {
	if epoch == EpochFrozen {
		return nil, errUnpinnedEpoch()
	}
	if err := ctxOrBackground(ctx).Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if dup, ok := s.dups[epoch]; ok {
		s.mu.Unlock()
		return dup, nil
	}
	s.mu.Unlock()

	srcView, err := s.src.viewAt(ctx, epoch)
	if err != nil {
		return nil, err
	}
	memView, err := s.members.viewAt(ctx, epoch)
	if err != nil {
		return nil, err
	}
	pts, mem := srcView.Frame(), memView.Frame()
	buf := make([]byte, 0, 8*pts.Dim())
	m := make(map[string]int32, mem.N())
	for i := 0; i < mem.N(); i++ {
		m[string(mem.AppendRowKey(buf[:0], i))]++
	}
	out := make([]int32, pts.N())
	for i := range out {
		out[i] = m[string(pts.AppendRowKey(buf[:0], i))]
	}

	s.mu.Lock()
	if _, ok := s.dups[epoch]; !ok {
		s.dups[epoch] = out
		s.dupOrder = append(s.dupOrder, epoch)
		if len(s.dupOrder) > maxCachedViews {
			delete(s.dups, s.dupOrder[0])
			s.dupOrder = s.dupOrder[1:]
		}
	}
	s.mu.Unlock()
	return out, nil
}

// Append lands one coordinator batch (see MutableShardBackend): all rows
// join the source index, the memberLocal subset joins the member index,
// and both advance to the same new epoch.
func (s *MutableLocalShard) Append(ctx context.Context, rows *vec.Frame, memberLocal []int32, ids []uint64) (Epoch, error) {
	if rows == nil || rows.N() == 0 {
		return 0, fmt.Errorf("geometry: shard append of no rows")
	}
	if len(ids) != rows.N() {
		return 0, fmt.Errorf("geometry: %d ids for %d appended rows", len(ids), rows.N())
	}
	for _, li := range memberLocal {
		if li < 0 || int(li) >= rows.N() {
			return 0, fmt.Errorf("geometry: member-local index %d out of [0, %d)", li, rows.N())
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	se, err := s.src.appendAssigned(ctx, rows, ids)
	if err != nil {
		return 0, err
	}
	var memRows *vec.Frame
	var memIDs []uint64
	if len(memberLocal) > 0 {
		memRows = rows.Gather(memberLocal)
		memIDs = make([]uint64, len(memberLocal))
		for i, li := range memberLocal {
			memIDs[i] = ids[li]
		}
	}
	me, err := s.members.appendAssigned(ctx, memRows, memIDs)
	if err != nil {
		return 0, fmt.Errorf("geometry: shard epochs diverged on append: %w", err)
	}
	if se != me {
		return 0, fmt.Errorf("geometry: shard epochs diverged on append: source at %d, members at %d", se, me)
	}
	for _, id := range memIDs {
		s.memberIDs[id] = struct{}{}
	}
	return se, nil
}

// Delete removes the batch from the source set and the shard-held subset
// from the member set (an empty intersection still advances the member
// epoch — lockstep). Deleting every member row is an error the
// coordinator pre-validates; it is re-checked here before any state
// changes.
func (s *MutableLocalShard) Delete(ctx context.Context, ids []uint64) (Epoch, error) {
	if len(ids) == 0 {
		return 0, fmt.Errorf("geometry: shard delete of no rows")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var memIDs []uint64
	for _, id := range ids {
		if _, ok := s.memberIDs[id]; ok {
			memIDs = append(memIDs, id)
		}
	}
	if len(memIDs) == s.members.Rows() {
		return 0, fmt.Errorf("geometry: delete would leave the shard without members")
	}
	se, err := s.src.deleteAssigned(ctx, ids)
	if err != nil {
		return 0, err
	}
	me, err := s.members.deleteAssigned(ctx, memIDs)
	if err != nil {
		return 0, fmt.Errorf("geometry: shard epochs diverged on delete: %w", err)
	}
	if se != me {
		return 0, fmt.Errorf("geometry: shard epochs diverged on delete: source at %d, members at %d", se, me)
	}
	for _, id := range memIDs {
		delete(s.memberIDs, id)
	}
	s.dups = make(map[Epoch][]int32)
	s.dupOrder = nil
	return se, nil
}

// CurrentEpoch returns the shard's epoch.
func (s *MutableLocalShard) CurrentEpoch(ctx context.Context) (Epoch, error) {
	if err := ctxOrBackground(ctx).Err(); err != nil {
		return 0, err
	}
	return s.src.Epoch(), nil
}

// Merge folds both inner indexes' deltas into fresh bases.
func (s *MutableLocalShard) Merge(ctx context.Context) error {
	if err := s.src.Merge(ctx); err != nil {
		return err
	}
	return s.members.Merge(ctx)
}

// coordView is the coordinator's cached snapshot of one epoch.
type coordView struct {
	nView int
	buf   *vec.MutableFrame

	once sync.Once
	view *ShardedIndex
	err  error
}

// MutableShardedIndex is the mutable counterpart of the backend-mode
// ShardedIndex: a coordinator that owns the global row buffer and epoch
// bookkeeping, broadcasts every mutation batch to all shards (each new row
// is assigned to the least-loaded shard; the assignment never affects
// results — partition independence), and pins epochs as backend-mode
// ShardedIndex views whose bulk queries carry the epoch to every shard.
// A mutation that fails part-way leaves shards at diverged epochs, so the
// handle turns sticky-broken: every subsequent operation reports the
// original failure rather than risking a cross-epoch answer.
type MutableShardedIndex struct {
	opts CellIndexOptions
	dim  int
	lad  radiusLadder

	mu         sync.Mutex
	buf        *vec.MutableFrame
	ids        []uint64 // stable row ids, insertion order
	nextID     uint64
	shardOf    []int32 // row -> owning shard
	counts     []int   // live member rows per shard
	lo, hi     vec.Vector
	epoch      Epoch
	firstEpoch Epoch
	rowsAt     []int // rowsAt[e-firstEpoch] = rows visible at epoch e
	backends   []MutableShardBackend
	views      map[Epoch]*coordView
	viewOrder  []Epoch
	broken     error
	closed     bool
}

// NewMutableShardedIndexBackends builds a mutable sharded index whose
// shards are reached through the MutableShardBackend seam: the initial
// points are partitioned exactly as the immutable constructor would, each
// backend dialed with its ShardConfig (ladder-pinned cell options), and
// the coordinator keeps the authoritative global row order every snapshot
// frame exposes. The ladder is pinned from the options alone (see
// NewMutableCellIndexFrame); initial points outside the declared domain
// are ErrOutOfDomain.
func NewMutableShardedIndexBackends(ctx context.Context, points *vec.Frame, opts ShardedIndexOptions, dial MutableShardDialer) (*MutableShardedIndex, error) {
	ctx = ctxOrBackground(ctx)
	if points == nil || points.N() == 0 {
		return nil, fmt.Errorf("geometry: mutable sharded index over empty point set")
	}
	buf, err := vec.NewMutableFrame(points)
	if err != nil {
		return nil, err
	}
	n, d := points.N(), points.Dim()
	cellOpts := opts.Cell.withDefaults(d)
	lad := newRadiusLadder(cellOpts, d, 0)

	first := points.Row(0)
	lo, hi := first.Clone(), first.Clone()
	for i := 0; i < n; i++ {
		for a, x := range points.Row(i) {
			if x < lo[a] {
				lo[a] = x
			}
			if x > hi[a] {
				hi[a] = x
			}
		}
	}
	if diag := hi.Dist(lo); diag > lad.maxR {
		return nil, fmt.Errorf("geometry: bounding-box diagonal %g exceeds MaxRadius %g: %w", diag, lad.maxR, ErrOutOfDomain)
	}

	s := opts.Shards
	if s < 1 {
		s = 1
	}
	if s > n {
		s = n
	}
	shardCell := cellOpts
	shardCell.MaxRadius = lad.maxR

	members := assignShards(points, s, opts.Policy)
	shardOf := make([]int32, n)
	counts := make([]int, s)
	for si, gids := range members {
		counts[si] = len(gids)
		for _, g := range gids {
			shardOf[g] = int32(si)
		}
	}

	m := &MutableShardedIndex{
		opts:       cellOpts,
		dim:        d,
		lad:        lad,
		buf:        buf,
		nextID:     uint64(n),
		shardOf:    shardOf,
		counts:     counts,
		lo:         lo,
		hi:         hi,
		epoch:      1,
		firstEpoch: 1,
		rowsAt:     []int{n},
		backends:   make([]MutableShardBackend, s),
		views:      make(map[Epoch]*coordView),
	}
	m.ids = make([]uint64, n)
	for i := range m.ids {
		m.ids[i] = uint64(i)
	}

	errs := make([]error, s)
	dctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	for si := 0; si < s; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			be, err := dial(dctx, si, ShardConfig{
				Points:  points,
				Members: members[si],
				Cell:    shardCell,
			})
			if err != nil {
				errs[si] = err
				cancel()
				return
			}
			m.backends[si] = be
		}(si)
	}
	wg.Wait()
	if err := firstRealError(ctx, errs); err != nil {
		m.Close()
		return nil, err
	}
	return m, nil
}

// Rows returns the current number of rows.
func (m *MutableShardedIndex) Rows() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.buf.N()
}

// Epoch returns the current epoch.
func (m *MutableShardedIndex) Epoch() Epoch {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// Append adds rows as one batch (see MutableBallIndex): every shard
// receives the full batch as query sources, each row joins the
// least-loaded shard's member set, and all shards advance to the same new
// epoch before the coordinator commits it.
func (m *MutableShardedIndex) Append(ctx context.Context, rows *vec.Frame) ([]uint64, Epoch, error) {
	if rows == nil || rows.N() == 0 {
		return nil, 0, fmt.Errorf("geometry: append of no rows")
	}
	if rows.Precision() != vec.Float64 {
		return nil, 0, fmt.Errorf("geometry: mutable index requires float64 rows")
	}
	if rows.Dim() != m.dim {
		return nil, 0, fmt.Errorf("geometry: append of dimension %d onto a %d-dimensional index", rows.Dim(), m.dim)
	}
	k := rows.N()
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.usableLocked(); err != nil {
		return nil, 0, err
	}
	lo, hi := m.lo.Clone(), m.hi.Clone()
	for i := 0; i < k; i++ {
		for a, x := range rows.Row(i) {
			if x < lo[a] {
				lo[a] = x
			}
			if x > hi[a] {
				hi[a] = x
			}
		}
	}
	if diag := hi.Dist(lo); diag > m.lad.maxR {
		return nil, 0, fmt.Errorf("geometry: appended rows stretch the bounding-box diagonal to %g, beyond MaxRadius %g: %w", diag, m.lad.maxR, ErrOutOfDomain)
	}

	ids := make([]uint64, k)
	for i := range ids {
		ids[i] = m.nextID + uint64(i)
	}
	// Deterministic balance: each row joins the currently least-loaded
	// shard (lowest index on ties). Partition independence makes this a
	// pure load knob — results never depend on it.
	asg := make([]int32, k)
	memberLocal := make([][]int32, len(m.backends))
	for i := 0; i < k; i++ {
		best := 0
		for si := 1; si < len(m.counts); si++ {
			if m.counts[si] < m.counts[best] {
				best = si
			}
		}
		asg[i] = int32(best)
		m.counts[best]++ // rolled back below on failure
		memberLocal[best] = append(memberLocal[best], int32(i))
	}
	rollback := func() {
		for _, si := range asg {
			m.counts[si]--
		}
	}

	want := m.epoch + 1
	if err := m.broadcastLocked(ctx, want, func(cctx context.Context, si int, be MutableShardBackend) (Epoch, error) {
		return be.Append(cctx, rows, memberLocal[si], ids)
	}); err != nil {
		rollback()
		return nil, 0, err
	}

	if err := m.buf.Append(rows); err != nil {
		// Unreachable after the validations above; surface it as sticky
		// breakage rather than silently diverging from the shards.
		m.broken = err
		return nil, 0, err
	}
	m.ids = append(m.ids, ids...)
	m.nextID += uint64(k)
	m.shardOf = append(m.shardOf, asg...)
	m.lo, m.hi = lo, hi
	m.epoch = want
	m.rowsAt = append(m.rowsAt, m.buf.N())
	if trim := len(m.rowsAt) - maxEpochHistory; trim > 0 {
		m.rowsAt = m.rowsAt[trim:]
		m.firstEpoch += Epoch(trim)
	}
	return ids, want, nil
}

// Delete removes the rows with the given stable ids (see MutableBallIndex),
// after validating that every id exists and that no shard would lose its
// last member row.
func (m *MutableShardedIndex) Delete(ctx context.Context, ids []uint64) (Epoch, error) {
	if len(ids) == 0 {
		return 0, fmt.Errorf("geometry: delete of no rows")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.usableLocked(); err != nil {
		return 0, err
	}
	del := make(map[uint64]struct{}, len(ids))
	for _, id := range ids {
		if _, dup := del[id]; dup {
			return 0, fmt.Errorf("geometry: duplicate id %d in delete", id)
		}
		del[id] = struct{}{}
	}
	lost := make([]int, len(m.counts))
	found := 0
	for row, id := range m.ids {
		if _, ok := del[id]; ok {
			found++
			lost[m.shardOf[row]]++
		}
	}
	if found != len(del) {
		return 0, fmt.Errorf("geometry: delete names %d unknown ids", len(del)-found)
	}
	for si, l := range lost {
		if l == m.counts[si] {
			return 0, fmt.Errorf("geometry: delete would leave shard %d without members", si)
		}
	}

	want := m.epoch + 1
	if err := m.broadcastLocked(ctx, want, func(cctx context.Context, si int, be MutableShardBackend) (Epoch, error) {
		return be.Delete(cctx, ids)
	}); err != nil {
		return 0, err
	}

	// Compact the coordinator's bookkeeping to the survivors, preserving
	// insertion order; old epochs retire and their cached views drop (the
	// storage stays alive under any snapshot still held by a query).
	n := m.buf.N()
	old := m.buf.View(n)
	data := make([]float64, 0, (n-found)*m.dim)
	newIDs := make([]uint64, 0, n-found)
	newShardOf := make([]int32, 0, n-found)
	for row := 0; row < n; row++ {
		if _, gone := del[m.ids[row]]; gone {
			continue
		}
		data = append(data, old.Row(row)...)
		newIDs = append(newIDs, m.ids[row])
		newShardOf = append(newShardOf, m.shardOf[row])
	}
	nf, err := vec.FrameFromData(data, m.dim)
	if err != nil {
		m.broken = err
		return 0, err
	}
	buf, err := vec.NewMutableFrame(nf)
	if err != nil {
		m.broken = err
		return 0, err
	}
	m.buf = buf
	m.ids = newIDs
	m.shardOf = newShardOf
	for si := range m.counts {
		m.counts[si] -= lost[si]
	}
	first := nf.Row(0)
	m.lo, m.hi = first.Clone(), first.Clone()
	for i := 0; i < nf.N(); i++ {
		for a, x := range nf.Row(i) {
			if x < m.lo[a] {
				m.lo[a] = x
			}
			if x > m.hi[a] {
				m.hi[a] = x
			}
		}
	}
	m.epoch = want
	m.firstEpoch = want
	m.rowsAt = []int{nf.N()}
	return want, nil
}

// usableLocked rejects operations on a closed or broken handle.
func (m *MutableShardedIndex) usableLocked() error {
	if m.closed {
		return ErrIndexClosed
	}
	if m.broken != nil {
		return fmt.Errorf("geometry: mutable index broken by an earlier failed mutation: %w", m.broken)
	}
	return nil
}

// broadcastLocked fans one mutation out to every backend concurrently and
// verifies they all land on the wanted epoch. Any failure (or epoch
// divergence) marks the handle broken: the shards can no longer be assumed
// consistent.
func (m *MutableShardedIndex) broadcastLocked(ctx context.Context, want Epoch, call func(context.Context, int, MutableShardBackend) (Epoch, error)) error {
	ctx = ctxOrBackground(ctx)
	epochs := make([]Epoch, len(m.backends))
	errs := make([]error, len(m.backends))
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	for si, be := range m.backends {
		wg.Add(1)
		go func(si int, be MutableShardBackend) {
			defer wg.Done()
			epochs[si], errs[si] = call(cctx, si, be)
			if errs[si] != nil {
				cancel()
			}
		}(si, be)
	}
	wg.Wait()
	if err := firstRealError(ctx, errs); err != nil {
		m.broken = fmt.Errorf("mutation batch for epoch %d failed: %w", want, err)
		return m.broken
	}
	for si, e := range epochs {
		if e != want {
			m.broken = fmt.Errorf("shard %d landed on epoch %d, want %d", si, e, want)
			return m.broken
		}
	}
	return nil
}

// Snapshot pins epoch as an immutable BallIndex: a backend-mode
// ShardedIndex over the coordinator's row prefix at that epoch, every bulk
// query stamped with the epoch. Snapshots are cached per epoch and
// single-flight.
func (m *MutableShardedIndex) Snapshot(ctx context.Context, epoch Epoch) (BallIndex, error) {
	m.mu.Lock()
	if err := m.usableLocked(); err != nil {
		m.mu.Unlock()
		return nil, err
	}
	if epoch > m.epoch {
		cur := m.epoch
		m.mu.Unlock()
		return nil, fmt.Errorf("geometry: epoch %d not reached (current %d)", epoch, cur)
	}
	// Cache before the retirement bound, mirroring the shards: a view
	// pinned before a delete keeps its epoch servable (shards retain
	// their matching views the same way).
	cv, ok := m.views[epoch]
	if !ok {
		if epoch < m.firstEpoch {
			oldest := m.firstEpoch
			m.mu.Unlock()
			return nil, fmt.Errorf("%w: epoch %d (oldest retained %d)", ErrEpochRetired, epoch, oldest)
		}
		cv = &coordView{nView: m.rowsAt[epoch-m.firstEpoch], buf: m.buf}
		m.views[epoch] = cv
		m.viewOrder = append(m.viewOrder, epoch)
		if len(m.viewOrder) > maxCachedViews {
			delete(m.views, m.viewOrder[0])
			m.viewOrder = m.viewOrder[1:]
		}
	}
	backends := make([]ShardBackend, len(m.backends))
	for si, be := range m.backends {
		backends[si] = be
	}
	m.mu.Unlock()

	cv.once.Do(func() {
		cv.view, cv.err = m.buildView(cv, backends, epoch)
	})
	if cv.err != nil {
		return nil, cv.err
	}
	if err := ctxOrBackground(ctx).Err(); err != nil {
		return nil, err
	}
	return cv.view, nil
}

// buildView assembles the epoch's view: the row-prefix frame plus the
// global duplicate table summed from the per-shard epoch-pinned DupCounts.
// Built under a background context so a cancelled pinner cannot poison the
// cached view.
func (m *MutableShardedIndex) buildView(cv *coordView, backends []ShardBackend, epoch Epoch) (*ShardedIndex, error) {
	ctx := context.Background()
	frame := cv.buf.View(cv.nView)
	parts := make([][]int32, len(backends))
	errs := make([]error, len(backends))
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	for si, be := range backends {
		wg.Add(1)
		go func(si int, be ShardBackend) {
			defer wg.Done()
			parts[si], errs[si] = be.DupCounts(cctx, epoch)
			if errs[si] != nil {
				cancel()
			}
		}(si, be)
	}
	wg.Wait()
	if err := firstRealError(ctx, errs); err != nil {
		return nil, err
	}
	dup := make([]int32, cv.nView)
	for si, p := range parts {
		if len(p) != cv.nView {
			return nil, fmt.Errorf("geometry: shard %d returned %d dup counts at epoch %d, want %d", si, len(p), epoch, cv.nView)
		}
		for i, c := range p {
			dup[i] += c
		}
	}
	return newShardedView(frame, m.opts, m.lad, nil, backends, epoch, dup), nil
}

// Merge asks every shard to fold its deltas, concurrently. A failed merge
// never breaks the handle — results are unaffected, only serving cost.
func (m *MutableShardedIndex) Merge(ctx context.Context) error {
	m.mu.Lock()
	if err := m.usableLocked(); err != nil {
		m.mu.Unlock()
		return err
	}
	backends := append([]MutableShardBackend(nil), m.backends...)
	m.mu.Unlock()
	errs := make([]error, len(backends))
	var wg sync.WaitGroup
	for si, be := range backends {
		wg.Add(1)
		go func(si int, be MutableShardBackend) {
			defer wg.Done()
			errs[si] = be.Merge(ctx)
		}(si, be)
	}
	wg.Wait()
	return firstRealError(ctxOrBackground(ctx), errs)
}

// Close releases the shard backends. Idempotent; in-flight snapshots stay
// valid locally but their backend calls will fail once the transports are
// gone.
func (m *MutableShardedIndex) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	backends := m.backends
	m.mu.Unlock()
	var first error
	for _, be := range backends {
		if be == nil {
			continue
		}
		if err := be.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Compile-time interface checks for the mutable layer.
var (
	_ MutableBallIndex    = (*MutableCellIndex)(nil)
	_ MutableBallIndex    = (*MutableShardedIndex)(nil)
	_ MutableShardBackend = (*MutableLocalShard)(nil)
)
