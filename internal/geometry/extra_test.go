package geometry

import (
	"context"
	"math"
	"testing"

	"privcluster/internal/vec"
)

func TestCountWithinNegativeRadius(t *testing.T) {
	ix, err := NewDistanceIndex([]vec.Vector{vec.Of(0), vec.Of(1)})
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.CountWithin(0, -1); got != 0 {
		t.Errorf("CountWithin(-1) = %d, want 0", got)
	}
	// Radius 0 still counts the point itself.
	if got := ix.CountWithin(0, 0); got != 1 {
		t.Errorf("CountWithin(0) = %d, want 1", got)
	}
}

func TestHugeGridArithmetic(t *testing.T) {
	// |X| = 2^48 in d = 4: radius-grid sizes and index round trips must not
	// overflow.
	g, err := NewGrid(1<<48, 4)
	if err != nil {
		t.Fatal(err)
	}
	m := g.RadiusGridSize()
	if m <= 0 {
		t.Fatalf("RadiusGridSize overflowed: %d", m)
	}
	if g.RadiusFromIndex(m-1) < g.MaxDistance() {
		t.Error("max grid radius does not cover the diameter")
	}
	if got := g.IndexFromRadius(g.MaxDistance() * 10); got != m-1 {
		t.Errorf("huge radius index = %d, want %d", got, m-1)
	}
	if s := g.Step(); s <= 0 || s > 1e-13 {
		t.Errorf("Step = %v", s)
	}
}

func TestBuildLStepTEqualsN(t *testing.T) {
	pts := []vec.Vector{vec.Of(0), vec.Of(0.5), vec.Of(1)}
	ix, err := NewDistanceIndex(pts)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := ix.BuildLStep(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	// At r covering everything, every capped count is 3 ⇒ L = 3.
	if got := ls.Eval(2); got != 3 {
		t.Errorf("L(2) = %v, want 3", got)
	}
	// At r = 0, every ball holds one point ⇒ L = 1.
	if got := ls.Eval(0); got != 1 {
		t.Errorf("L(0) = %v, want 1", got)
	}
}

func TestLStepEvalBetweenBreaks(t *testing.T) {
	pts := []vec.Vector{vec.Of(0), vec.Of(0.4), vec.Of(0.9)}
	ix, _ := NewDistanceIndex(pts)
	ls, err := ix.BuildLStep(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// L must be right-continuous: value at a break applies from the break.
	for i, b := range ls.Breaks {
		if got := ls.Eval(b); got != ls.Vals[i] {
			t.Errorf("Eval(break %d) = %v, want %v", i, got, ls.Vals[i])
		}
		if got := ls.Eval(b + 1e-12); got != ls.Vals[i] {
			t.Errorf("Eval(break %d + ε) = %v, want %v", i, got, ls.Vals[i])
		}
	}
	if got := ls.Eval(math.Inf(1)); got != ls.Vals[len(ls.Vals)-1] {
		t.Errorf("Eval(∞) = %v", got)
	}
}
