package geometry

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"privcluster/internal/vec"
)

// Epoch identifies one immutable snapshot of a mutable point set. Every
// mutation (append or delete batch) advances the epoch by exactly one;
// queries pin an epoch and are answered from that snapshot alone, so a
// release at epoch E is a pure function of the epoch-E point set no matter
// how many mutations or merges land while the query runs.
type Epoch = uint64

// EpochFrozen is the epoch of an immutable index: backends built over a
// fixed point set serve exactly one snapshot and reject any other epoch.
// Mutable indexes start at epoch 1, so the zero value never collides.
const EpochFrozen Epoch = 0

// ErrEpochRetired is returned (wrapped) when a pinned epoch is no longer
// materializable: a delete compacted the storage it described, or append
// history outgrew the retention window. Queries already holding the
// epoch's snapshot keep working — retirement only stops new pins.
var ErrEpochRetired = errors.New("geometry: epoch retired")

// ErrOutOfDomain is returned (wrapped) when appended rows would push the
// data's bounding-box diagonal past the radius ladder's pinned MaxRadius.
// The ladder is fixed at construction — that is what keeps every epoch's
// snapshot bit-identical to a fresh index over the same points — so rows
// outside the declared domain must be rejected, not silently re-laddered.
// In-contract inputs (the unit cube with MaxRadius √d) can never trigger
// it.
var ErrOutOfDomain = errors.New("geometry: rows outside the declared domain")

// ErrIndexClosed is returned by operations on a closed mutable index.
var ErrIndexClosed = errors.New("geometry: mutable index closed")

const (
	// maxBaseGens bounds how many merged base generations are retained.
	// Older generations serve older pinned epochs; evicting one retires
	// the epochs only it could serve.
	maxBaseGens = 4
	// maxCachedViews bounds the per-epoch snapshot cache (each view holds
	// a delta CellIndex of O(Δ·d) memory).
	maxCachedViews = 8
	// maxEpochHistory bounds the epoch→rows history; epochs older than the
	// window retire.
	maxEpochHistory = 4096
	// autoMergeMinDelta is the smallest delta the background merge bothers
	// with; below it the delta index is cheap enough to rebuild per view.
	autoMergeMinDelta = 1024
)

// MutableBallIndex is a ball index over a mutable point set: rows are
// appended or deleted in epoch-advancing batches, and Snapshot pins any
// retained epoch as an immutable BallIndex answering every query from
// exactly that point set. Implementations: MutableCellIndex (single
// partition) and MutableShardedIndex (partitioned, possibly remote).
type MutableBallIndex interface {
	// Rows returns the current number of rows.
	Rows() int
	// Epoch returns the current epoch (≥ 1).
	Epoch() Epoch
	// Append adds rows as one batch, advancing the epoch, and returns the
	// stable ids assigned to them plus the new epoch.
	Append(ctx context.Context, rows *vec.Frame) ([]uint64, Epoch, error)
	// Delete removes the rows with the given stable ids as one batch,
	// advancing the epoch and retiring all older epochs. Deleting every
	// remaining row is an error.
	Delete(ctx context.Context, ids []uint64) (Epoch, error)
	// Snapshot pins epoch as an immutable BallIndex. The snapshot stays
	// valid (and bit-stable) for as long as the caller holds it, even
	// across later mutations, merges, and retirement.
	Snapshot(ctx context.Context, epoch Epoch) (BallIndex, error)
	// Merge folds the append delta into the frozen base off the query
	// path, synchronously. It never changes any query result — only the
	// cost of serving subsequent snapshots.
	Merge(ctx context.Context) error
	// Close stops the background merge and releases resources. Close is
	// idempotent.
	Close() error
}

// baseGen is one merged storage generation: a frozen CellIndex over the
// first n rows of the buffer.
type baseGen struct {
	ix *CellIndex
	n  int
}

// epochView is the cached snapshot of one epoch, built once on first pin.
// The build parameters (row count, base generation, buffer) are captured
// under the index lock at pin time; the build itself runs outside it.
type epochView struct {
	nView int
	gen   baseGen
	buf   *vec.MutableFrame

	once sync.Once
	view *ShardedIndex
	err  error
}

// MutableCellIndex is the mutable counterpart of CellIndex: an append-only
// row buffer (vec.MutableFrame) split into a frozen base — a plain
// CellIndex over a prefix — and a delta tail. A pinned epoch materializes
// as a two-shard ShardedIndex view: the shared base index plus a small
// CellIndex over the epoch's delta rows, pinned to the same radius ladder.
// By the ShardedIndex equivalence contract that view answers every
// BallIndex query bit-identically to a fresh CellIndex over exactly the
// epoch's rows — which is the whole point: a release pinned at epoch E
// cannot be distinguished from one computed against a frozen copy of the
// epoch-E dataset, so the sensitivity analysis (and any seeded noise draw)
// carries over unchanged.
//
// Deletes compact: the survivors are copied into a fresh buffer, a new
// base is built synchronously, and every older epoch retires (their
// already-pinned snapshots keep the old storage alive and stay valid).
// Appends are cheap — O(batch) into the buffer — and a background merge
// folds the delta into a new base generation once it grows past a fraction
// of the base, off the query path, atomically swapping it in for
// subsequent snapshot builds. Merging never advances the epoch and never
// changes a result: it only moves rows from the delta group of future
// views into their base group, and the group partition is invisible to
// query results (the partition-independence half of the ShardedIndex
// contract).
//
// MutableCellIndex is safe for concurrent use; mutations serialize
// internally, snapshots and queries run concurrently with them.
type MutableCellIndex struct {
	opts     CellIndexOptions // defaulted; what every view is built from
	partOpts CellIndexOptions // opts for the per-generation indexes (no dup table)
	dim      int
	lad      radiusLadder

	mu     sync.Mutex
	buf    *vec.MutableFrame
	bufGen int      // bumped by compaction; a merge from a stale buffer is abandoned
	ids    []uint64 // stable row ids, insertion order (parallel to buffer rows)
	nextID uint64
	lo, hi vec.Vector // running bounding box over every live row

	epoch      Epoch
	firstEpoch Epoch // oldest epoch rowsAt still describes
	rowsAt     []int // rowsAt[e-firstEpoch] = row count visible at epoch e

	bases     []baseGen // merged generations, ascending n (newest last)
	views     map[Epoch]*epochView
	viewOrder []Epoch

	merging bool
	mergeWG sync.WaitGroup
	mctx    context.Context
	mstop   context.CancelFunc
	closed  bool
}

// NewMutableCellIndexFrame builds a mutable index seeded with the frame's
// rows (stable ids 0..n-1, epoch 1). The frame must be float64 and
// non-empty; ownership of its storage transfers to the index. The radius
// ladder is pinned at construction from opts (never from the data), so the
// data must fit the declared domain: a bounding-box diagonal beyond
// MaxRadius — impossible for in-contract inputs in the unit cube — is
// ErrOutOfDomain.
func NewMutableCellIndexFrame(points *vec.Frame, opts CellIndexOptions) (*MutableCellIndex, error) {
	ids := make([]uint64, points.N())
	for i := range ids {
		ids[i] = uint64(i)
	}
	return newMutableCellIndexIDs(points, ids, uint64(points.N()), opts)
}

// newMutableCellIndexIDs is the internal constructor with caller-assigned
// stable ids — how a shard backend keys its member rows by their global
// ids. nextID is the monotone id high-water mark (appended batches must
// stay at or above it).
func newMutableCellIndexIDs(points *vec.Frame, ids []uint64, nextID uint64, opts CellIndexOptions) (*MutableCellIndex, error) {
	if points == nil || points.N() == 0 {
		return nil, fmt.Errorf("geometry: mutable index over empty point set")
	}
	if points.Precision() != vec.Float64 {
		return nil, fmt.Errorf("geometry: mutable index requires float64 points")
	}
	if len(ids) != points.N() {
		return nil, fmt.Errorf("geometry: %d ids for %d points", len(ids), points.N())
	}
	n, d := points.N(), points.Dim()
	opts = opts.withDefaults(d)
	lad := newRadiusLadder(opts, d, 0)

	first := points.Row(0)
	lo, hi := first.Clone(), first.Clone()
	for i := 0; i < n; i++ {
		for a, x := range points.Row(i) {
			if x < lo[a] {
				lo[a] = x
			}
			if x > hi[a] {
				hi[a] = x
			}
		}
	}
	if diag := hi.Dist(lo); diag > lad.maxR {
		return nil, fmt.Errorf("geometry: bounding-box diagonal %g exceeds MaxRadius %g: %w", diag, lad.maxR, ErrOutOfDomain)
	}

	partOpts := opts
	partOpts.MaxRadius = lad.maxR
	partOpts.skipDupTable = true
	base, err := NewCellIndexFrame(points, partOpts)
	if err != nil {
		return nil, err
	}
	buf, err := vec.NewMutableFrame(points)
	if err != nil {
		return nil, err
	}
	mctx, mstop := context.WithCancel(context.Background())
	return &MutableCellIndex{
		opts:       opts,
		partOpts:   partOpts,
		dim:        d,
		lad:        lad,
		buf:        buf,
		ids:        append([]uint64(nil), ids...),
		nextID:     nextID,
		lo:         lo,
		hi:         hi,
		epoch:      1,
		firstEpoch: 1,
		rowsAt:     []int{n},
		bases:      []baseGen{{ix: base, n: n}},
		views:      make(map[Epoch]*epochView),
		mctx:       mctx,
		mstop:      mstop,
	}, nil
}

// Rows returns the current number of rows.
func (m *MutableCellIndex) Rows() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.buf.N()
}

// Dim returns the row dimension.
func (m *MutableCellIndex) Dim() int { return m.dim }

// Epoch returns the current epoch.
func (m *MutableCellIndex) Epoch() Epoch {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// Append adds rows as one batch, assigning fresh stable ids, and advances
// the epoch.
func (m *MutableCellIndex) Append(ctx context.Context, rows *vec.Frame) ([]uint64, Epoch, error) {
	if rows == nil || rows.N() == 0 {
		return nil, 0, fmt.Errorf("geometry: append of no rows")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, 0, ErrIndexClosed
	}
	ids := make([]uint64, rows.N())
	for i := range ids {
		ids[i] = m.nextID + uint64(i)
	}
	e, err := m.appendLocked(rows, ids)
	if err != nil {
		return nil, 0, err
	}
	return ids, e, nil
}

// appendAssigned is the coordinator path: rows arrive with their global
// stable ids already assigned (strictly increasing, at or above the
// high-water mark). A nil/empty rows advances the epoch without adding
// anything — how a shard with no new members this batch stays in epoch
// lockstep with its siblings.
func (m *MutableCellIndex) appendAssigned(ctx context.Context, rows *vec.Frame, ids []uint64) (Epoch, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, ErrIndexClosed
	}
	return m.appendLocked(rows, ids)
}

func (m *MutableCellIndex) appendLocked(rows *vec.Frame, ids []uint64) (Epoch, error) {
	if rows != nil && rows.N() > 0 {
		if rows.Dim() != m.dim {
			return 0, fmt.Errorf("geometry: append of dimension %d onto a %d-dimensional index", rows.Dim(), m.dim)
		}
		if rows.Precision() != vec.Float64 {
			return 0, fmt.Errorf("geometry: mutable index requires float64 rows")
		}
		if len(ids) != rows.N() {
			return 0, fmt.Errorf("geometry: %d ids for %d appended rows", len(ids), rows.N())
		}
		prev := m.nextID
		for _, id := range ids {
			if id < prev {
				return 0, fmt.Errorf("geometry: appended id %d below the id high-water mark %d", id, prev)
			}
			prev = id + 1
		}
		// Validate the domain before touching any state: the ladder is
		// pinned, so rows stretching the bounding box past it must be
		// rejected atomically.
		lo, hi := m.lo.Clone(), m.hi.Clone()
		for i := 0; i < rows.N(); i++ {
			for a, x := range rows.Row(i) {
				if x < lo[a] {
					lo[a] = x
				}
				if x > hi[a] {
					hi[a] = x
				}
			}
		}
		if diag := hi.Dist(lo); diag > m.lad.maxR {
			return 0, fmt.Errorf("geometry: appended rows stretch the bounding-box diagonal to %g, beyond MaxRadius %g: %w", diag, m.lad.maxR, ErrOutOfDomain)
		}
		if err := m.buf.Append(rows); err != nil {
			return 0, err
		}
		m.ids = append(m.ids, ids...)
		m.nextID = prev
		m.lo, m.hi = lo, hi
	} else if len(ids) != 0 {
		return 0, fmt.Errorf("geometry: %d ids for an empty append", len(ids))
	}
	m.advanceLocked()
	m.maybeMergeLocked()
	return m.epoch, nil
}

// advanceLocked records the new epoch's row count and trims history.
func (m *MutableCellIndex) advanceLocked() {
	m.epoch++
	m.rowsAt = append(m.rowsAt, m.buf.N())
	if trim := len(m.rowsAt) - maxEpochHistory; trim > 0 {
		m.rowsAt = m.rowsAt[trim:]
		m.firstEpoch += Epoch(trim)
	}
}

// maybeMergeLocked kicks the background merge when the delta has grown
// past a quarter of the base (and is worth the rebuild at all).
func (m *MutableCellIndex) maybeMergeLocked() {
	if m.merging || m.closed {
		return
	}
	baseN := m.bases[len(m.bases)-1].n
	delta := m.buf.N() - baseN
	if delta < autoMergeMinDelta || delta*4 < baseN {
		return
	}
	m.merging = true
	m.mergeWG.Add(1)
	go func() {
		defer m.mergeWG.Done()
		_ = m.Merge(m.mctx) // next mutation retries on failure
		m.mu.Lock()
		m.merging = false
		m.mu.Unlock()
	}()
}

// Delete removes the rows with the given stable ids as one batch: the
// survivors are compacted into a fresh buffer (insertion order preserved)
// and a new base generation is built synchronously, so the delta only ever
// holds appends. The epoch advances and every older epoch retires;
// snapshots already pinned stay valid on the old storage. Unknown or
// duplicate ids are an error, as is deleting every remaining row.
func (m *MutableCellIndex) Delete(ctx context.Context, ids []uint64) (Epoch, error) {
	if len(ids) == 0 {
		return 0, fmt.Errorf("geometry: delete of no rows")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, ErrIndexClosed
	}
	return m.deleteLocked(ids, true)
}

// deleteAssigned is the coordinator path: ids may be empty (epoch
// lockstep), and ids this shard does not hold are skipped rather than
// rejected (the coordinator validated existence globally; a shard only
// holds its member subset).
func (m *MutableCellIndex) deleteAssigned(ctx context.Context, ids []uint64) (Epoch, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, ErrIndexClosed
	}
	return m.deleteLocked(ids, false)
}

func (m *MutableCellIndex) deleteLocked(ids []uint64, strict bool) (Epoch, error) {
	if len(ids) > 0 {
		del := make(map[uint64]struct{}, len(ids))
		for _, id := range ids {
			if _, dup := del[id]; dup {
				return 0, fmt.Errorf("geometry: duplicate id %d in delete", id)
			}
			del[id] = struct{}{}
		}
		found := 0
		for _, id := range m.ids {
			if _, ok := del[id]; ok {
				found++
			}
		}
		if strict && found != len(del) {
			return 0, fmt.Errorf("geometry: delete names %d unknown ids", len(del)-found)
		}
		if found == m.buf.N() {
			return 0, fmt.Errorf("geometry: delete would leave the index empty")
		}
		if found > 0 {
			n := m.buf.N()
			old := m.buf.View(n)
			data := make([]float64, 0, (n-found)*m.dim)
			newIDs := make([]uint64, 0, n-found)
			for i := 0; i < n; i++ {
				if _, gone := del[m.ids[i]]; gone {
					continue
				}
				data = append(data, old.Row(i)...)
				newIDs = append(newIDs, m.ids[i])
			}
			nf, err := vec.FrameFromData(data, m.dim)
			if err != nil {
				return 0, err
			}
			base, err := NewCellIndexFrame(nf, m.partOpts)
			if err != nil {
				return 0, err
			}
			buf, err := vec.NewMutableFrame(nf)
			if err != nil {
				return 0, err
			}
			m.buf = buf
			m.bufGen++
			m.ids = newIDs
			m.bases = []baseGen{{ix: base, n: nf.N()}}
			// Recompute the bounding box over the survivors — the running
			// box is conservative (it kept deleted extremes), and we are
			// O(n) here anyway.
			first := nf.Row(0)
			m.lo, m.hi = first.Clone(), first.Clone()
			for i := 0; i < nf.N(); i++ {
				for a, x := range nf.Row(i) {
					if x < m.lo[a] {
						m.lo[a] = x
					}
					if x > m.hi[a] {
						m.hi[a] = x
					}
				}
			}
		}
	}
	m.advanceLocked()
	// Every older epoch retires for NEW pins: either its storage was
	// compacted away, or (for the coordinator-lockstep empty case) a
	// sibling shard's was. Views already pinned stay in the cache — they
	// captured the pre-compaction storage at pin time, so they keep
	// serving their epochs (until FIFO eviction) for queries still in
	// flight, including a remote coordinator's.
	m.firstEpoch = m.epoch
	m.rowsAt = []int{m.buf.N()}
	return m.epoch, nil
}

// Snapshot pins epoch as an immutable BallIndex (see MutableBallIndex).
func (m *MutableCellIndex) Snapshot(ctx context.Context, epoch Epoch) (BallIndex, error) {
	return m.viewAt(ctx, epoch)
}

// viewAt materializes (or returns the cached) snapshot of one epoch: a
// ShardedIndex whose groups are the newest base generation fitting the
// epoch's row prefix plus a delta CellIndex over the rest, all pinned to
// the shared ladder. Builds are single-flight per epoch and run outside
// the index lock.
func (m *MutableCellIndex) viewAt(ctx context.Context, epoch Epoch) (*ShardedIndex, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrIndexClosed
	}
	if epoch > m.epoch {
		cur := m.epoch
		m.mu.Unlock()
		return nil, fmt.Errorf("geometry: epoch %d not reached (current %d)", epoch, cur)
	}
	// The cache is consulted before the retirement bound: a view pinned
	// before a delete retired its epoch still serves it from the old
	// storage it captured.
	ev, ok := m.views[epoch]
	if !ok {
		if epoch < m.firstEpoch {
			oldest := m.firstEpoch
			m.mu.Unlock()
			return nil, fmt.Errorf("%w: epoch %d (oldest retained %d)", ErrEpochRetired, epoch, oldest)
		}
		nView := m.rowsAt[epoch-m.firstEpoch]
		gen, found := baseGen{}, false
		for i := len(m.bases) - 1; i >= 0; i-- {
			if m.bases[i].n <= nView {
				gen, found = m.bases[i], true
				break
			}
		}
		if !found {
			// Every retained base generation has outgrown this epoch's row
			// prefix (merges FIFO-trim old generations), but the buffer still
			// holds rows [0, nView) verbatim, so the view rebuilds from the
			// buffer alone. Merges stay a cost knob, never a semantic one: an
			// epoch only truly retires via delete-compaction (firstEpoch).
			gen = baseGen{}
		}
		ev = &epochView{nView: nView, gen: gen, buf: m.buf}
		m.views[epoch] = ev
		m.viewOrder = append(m.viewOrder, epoch)
		if len(m.viewOrder) > maxCachedViews {
			delete(m.views, m.viewOrder[0])
			m.viewOrder = m.viewOrder[1:]
		}
	}
	m.mu.Unlock()

	// Built under a background context: a cancelled pinner must not poison
	// the cached view for everyone after it.
	ev.once.Do(func() {
		ev.view, ev.err = m.buildView(ev)
	})
	if ev.err != nil {
		return nil, ev.err
	}
	if err := ctxOrBackground(ctx).Err(); err != nil {
		return nil, err
	}
	return ev.view, nil
}

func (m *MutableCellIndex) buildView(ev *epochView) (*ShardedIndex, error) {
	frame := ev.buf.View(ev.nView)
	var shards []*indexShard
	if ev.gen.ix != nil {
		shards = append(shards, &indexShard{ix: ev.gen.ix})
	}
	if ev.nView > ev.gen.n {
		delta, err := NewCellIndexFrame(ev.buf.Slice(ev.gen.n, ev.nView), m.partOpts)
		if err != nil {
			return nil, err
		}
		gids := make([]int32, ev.nView-ev.gen.n)
		for i := range gids {
			gids[i] = int32(ev.gen.n + i)
		}
		shards = append(shards, &indexShard{ix: delta, global: gids})
	}
	var dup []int32
	if !m.opts.skipDupTable {
		var err error
		dup, err = globalDupCount(context.Background(), frame, m.opts.Workers)
		if err != nil {
			return nil, err
		}
	}
	return newShardedView(frame, m.opts, m.lad, shards, nil, EpochFrozen, dup), nil
}

// Merge folds the delta into a new base generation: a CellIndex over the
// whole current buffer is built off the query path (the cell levels the
// old base had materialized are pre-warmed on it), then swapped in under
// the lock for subsequent snapshot builds. Existing views are untouched —
// the group partition is invisible to results, so merge timing can never
// change a release. If a delete compacts the buffer mid-build the stale
// result is discarded (the compaction built its own fresh base).
func (m *MutableCellIndex) Merge(ctx context.Context) error {
	ctx = ctxOrBackground(ctx)
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrIndexClosed
	}
	cur := m.bases[len(m.bases)-1]
	nAll := m.buf.N()
	if cur.n == nAll {
		m.mu.Unlock()
		return nil
	}
	frame := m.buf.View(nAll)
	warm := cur.ix.cachedLevelKeys()
	gen := m.bufGen
	m.mu.Unlock()

	base, err := NewCellIndexFrame(frame, m.partOpts)
	if err != nil {
		return err
	}
	for _, j := range warm {
		if ctx.Err() != nil {
			break
		}
		base.level(j)
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrIndexClosed
	}
	if m.bufGen != gen {
		return nil // compacted underneath; the compaction's base supersedes
	}
	if nAll > m.bases[len(m.bases)-1].n {
		m.bases = append(m.bases, baseGen{ix: base, n: nAll})
		if len(m.bases) > maxBaseGens {
			m.bases = m.bases[1:]
		}
	}
	return nil
}

// Close stops the background merge and marks the index closed. In-flight
// snapshots stay queryable; new operations fail with ErrIndexClosed.
// Close is idempotent.
func (m *MutableCellIndex) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	m.mstop()
	m.mergeWG.Wait()
	return nil
}

// newShardedView assembles a ShardedIndex from parts — the snapshot
// constructor of the mutable indexes. Exactly one of shards/backends must
// be non-nil; backends are marked shared (Close leaves them alone).
func newShardedView(frame *vec.Frame, opts CellIndexOptions, lad radiusLadder, shards []*indexShard, backends []ShardBackend, epoch Epoch, dup []int32) *ShardedIndex {
	return &ShardedIndex{
		frame:          frame,
		dim:            frame.Dim(),
		opts:           opts,
		lad:            lad,
		shards:         shards,
		backends:       backends,
		dupCount:       dup,
		epoch:          epoch,
		sharedBackends: backends != nil,
	}
}

// countAround returns, for each center, the exact number of indexed points
// within r — the arbitrary-center count a mutable shard's CountBatch needs
// (CountWithin only takes indexed rows). Local-shards mode only.
func (ix *ShardedIndex) countAround(centers []vec.Vector, r float64) ([]int32, error) {
	out := make([]int32, len(centers))
	if r < 0 {
		return out, nil
	}
	j := ix.lad.levelFor(r)
	sc := newCellScratch(ix.dim)
	for ci, c := range centers {
		if c.Dim() != ix.dim {
			return nil, fmt.Errorf("geometry: center %d has dimension %d, want %d", ci, c.Dim(), ix.dim)
		}
		total := int32(0)
		for _, sh := range ix.shards {
			total += sh.ix.countOne(sh.ix.level(j), c, r, sc)
		}
		out[ci] = total
	}
	return out, nil
}
