package geometry

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"privcluster/internal/vec"
)

// localReplicaDialers builds R independent LocalShard replicas over one
// shard config — the in-process stand-in for R servers each holding the
// partition's points.
func localReplicaDialers(r int, cfg ShardConfig) []ReplicaDialer {
	out := make([]ReplicaDialer, r)
	for i := range out {
		out[i] = func(context.Context) (ShardBackend, error) {
			return NewLocalShard(cfg)
		}
	}
	return out
}

// replicatedDialer wraps the plain local dialer so every shard partition is
// served by a ReplicatedShard over r LocalShard replicas.
func replicatedDialer(r int, opts ReplicatedShardOptions) ShardDialer {
	return func(ctx context.Context, _ int, cfg ShardConfig) (ShardBackend, error) {
		return NewReplicatedShard(ctx, localReplicaDialers(r, cfg), opts)
	}
}

// flakyShard wraps a ShardBackend and fails every bulk call after the
// shared budget of successful calls is spent — a replica dying mid-sweep.
// Once dead it stays dead (later calls fail too), like a real server.
type flakyShard struct {
	ShardBackend
	budget *atomic.Int32 // successful calls remaining; < 0 once dead
	err    error
}

func (f *flakyShard) gate() error {
	if f.budget.Add(-1) < 0 {
		return f.err
	}
	return nil
}

func (f *flakyShard) PartialCounts(ctx context.Context, epoch Epoch, j int, r float64, limit int32, exactBoundary bool) ([]int32, error) {
	if err := f.gate(); err != nil {
		return nil, err
	}
	return f.ShardBackend.PartialCounts(ctx, epoch, j, r, limit, exactBoundary)
}

func (f *flakyShard) DupCounts(ctx context.Context, epoch Epoch) ([]int32, error) {
	if err := f.gate(); err != nil {
		return nil, err
	}
	return f.ShardBackend.DupCounts(ctx, epoch)
}

// TestReplicatedShardEquivalence pins the tentpole at the geometry layer:
// a backend-mode ShardedIndex whose every partition is a ReplicatedShard
// over R local replicas answers every BallIndex query bit-identically to a
// plain CellIndex, for R ∈ {1, 2, 3} — with hedging off and on. The
// replica set is pure routing; the counts cannot tell.
func TestReplicatedShardEquivalence(t *testing.T) {
	pts := shardTestPoints(t, 11, 600, 2)
	opts := shardTestOptions(2)
	ref, err := NewCellIndex(pts, opts)
	if err != nil {
		t.Fatal(err)
	}
	tt := len(pts) / 3
	refStep, err := ref.BuildLStep(context.Background(), tt)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []int{1, 2, 3} {
		for _, hedge := range []time.Duration{0, time.Nanosecond} {
			ropts := ReplicatedShardOptions{HedgeDelay: hedge, ProbeInterval: -1}
			sh, err := NewShardedIndexBackends(context.Background(), frameOf(t, pts), ShardedIndexOptions{
				Shards: 2, Policy: ShardMorton, Cell: opts,
			}, replicatedDialer(r, ropts))
			if err != nil {
				t.Fatalf("R=%d hedge=%v: %v", r, hedge, err)
			}
			step, err := sh.BuildLStep(context.Background(), tt)
			if err != nil {
				t.Fatalf("R=%d hedge=%v: BuildLStep: %v", r, hedge, err)
			}
			assertSameStep(t, step, refStep)
			for _, rad := range []float64{0, 0.01, 0.05, 0.3} {
				if got, want := sh.MaxCountWithin(rad), ref.MaxCountWithin(rad); got != want {
					t.Fatalf("R=%d hedge=%v: MaxCountWithin(%v) = %d, want %d", r, hedge, rad, got, want)
				}
			}
			gi, gr, err1 := sh.TwoApprox(tt)
			wi, wr, err2 := ref.TwoApprox(tt)
			if gi != wi || gr != wr || (err1 == nil) != (err2 == nil) {
				t.Fatalf("R=%d hedge=%v: TwoApprox = (%d, %v, %v), want (%d, %v, %v)", r, hedge, gi, gr, err1, wi, wr, err2)
			}
			if err := sh.Close(); err != nil {
				t.Fatalf("R=%d hedge=%v: Close: %v", r, hedge, err)
			}
		}
	}
}

func assertSameStep(t *testing.T, got, want *LStep) {
	t.Helper()
	if len(got.Breaks) != len(want.Breaks) {
		t.Fatalf("LStep has %d breaks, want %d", len(got.Breaks), len(want.Breaks))
	}
	for k := range got.Breaks {
		if got.Breaks[k] != want.Breaks[k] || got.Vals[k] != want.Vals[k] {
			t.Fatalf("LStep[%d] = (%v, %v), want (%v, %v)",
				k, got.Breaks[k], got.Vals[k], want.Breaks[k], want.Vals[k])
		}
	}
}

// TestReplicatedShardFailover kills the preferred replica mid-LStep-sweep
// (its call budget runs out partway through the ladder) and requires the
// sweep to fail over to the sibling with a bit-identical step function —
// the kill is invisible to the release.
func TestReplicatedShardFailover(t *testing.T) {
	pts := shardTestPoints(t, 13, 500, 2)
	opts := shardTestOptions(2)
	ref, err := NewCellIndex(pts, opts)
	if err != nil {
		t.Fatal(err)
	}
	tt := len(pts) / 3
	refStep, err := ref.BuildLStep(context.Background(), tt)
	if err != nil {
		t.Fatal(err)
	}
	died := errors.New("replica killed mid-sweep")
	for _, failAfter := range []int32{0, 1, 3} {
		var budget atomic.Int32
		budget.Store(failAfter)
		dial := func(_ context.Context, _ int, cfg ShardConfig) (ShardBackend, error) {
			primary := func(context.Context) (ShardBackend, error) {
				ls, err := NewLocalShard(cfg)
				if err != nil {
					return nil, err
				}
				return &flakyShard{ShardBackend: ls, budget: &budget, err: died}, nil
			}
			backup := func(context.Context) (ShardBackend, error) {
				return NewLocalShard(cfg)
			}
			return NewReplicatedShard(context.Background(),
				[]ReplicaDialer{primary, backup}, ReplicatedShardOptions{ProbeInterval: -1})
		}
		sh, err := NewShardedIndexBackends(context.Background(), frameOf(t, pts), ShardedIndexOptions{
			Shards: 2, Cell: opts,
		}, dial)
		if err != nil {
			t.Fatalf("failAfter=%d: build: %v", failAfter, err)
		}
		step, err := sh.BuildLStep(context.Background(), tt)
		if err != nil {
			t.Fatalf("failAfter=%d: BuildLStep through failover: %v", failAfter, err)
		}
		assertSameStep(t, step, refStep)
		if err := sh.Close(); err != nil {
			t.Fatalf("failAfter=%d: Close: %v", failAfter, err)
		}
	}
}

// TestReplicatedShardAllDead: when every replica is dead, the first real
// error surfaces promptly — at build time when no replica dials, at query
// time when they all die mid-use.
func TestReplicatedShardAllDead(t *testing.T) {
	pts := shardTestPoints(t, 17, 80, 2)
	opts := shardTestOptions(2)
	dialErr := errors.New("connection refused")

	// No replica dials: the build must fail with that error.
	dead := func(context.Context) (ShardBackend, error) { return nil, dialErr }
	if _, err := NewReplicatedShard(context.Background(),
		[]ReplicaDialer{dead, dead, dead}, ReplicatedShardOptions{}); !errors.Is(err, dialErr) {
		t.Fatalf("all-dead dial: err = %v, want %v", err, dialErr)
	}
	if _, err := NewReplicatedShard(context.Background(), nil, ReplicatedShardOptions{}); err == nil {
		t.Fatal("empty replica set accepted")
	}

	// All replicas die mid-use: exactly the first failure's error, after
	// every replica was tried.
	died := errors.New("replica exploded")
	var budget atomic.Int32 // 0: every call fails
	cfgd := shardConfigFor(t, pts, opts)
	dials := make([]ReplicaDialer, 3)
	var dialed atomic.Int32
	for i := range dials {
		dials[i] = func(context.Context) (ShardBackend, error) {
			dialed.Add(1)
			ls, err := NewLocalShard(cfgd)
			if err != nil {
				return nil, err
			}
			return &flakyShard{ShardBackend: ls, budget: &budget, err: died}, nil
		}
	}
	rs, err := NewReplicatedShard(context.Background(), dials, ReplicatedShardOptions{ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if _, err := rs.PartialCounts(context.Background(), EpochFrozen, 0, 0.05, 10, false); !errors.Is(err, died) {
		t.Fatalf("all replicas dead: err = %v, want %v", err, died)
	}
	if got := dialed.Load(); got != 3 {
		t.Fatalf("dialed %d replicas before giving up, want 3", got)
	}
}

// shardConfigFor builds the single-shard, ladder-pinned config holding all
// points, exactly as NewShardedIndexBackends would hand it to a dialer.
func shardConfigFor(t *testing.T, pts []vec.Vector, opts CellIndexOptions) ShardConfig {
	t.Helper()
	var cfg ShardConfig
	sh, err := NewShardedIndexBackends(context.Background(), frameOf(t, pts), ShardedIndexOptions{
		Shards: 1, Cell: opts,
	}, func(_ context.Context, _ int, c ShardConfig) (ShardBackend, error) {
		cfg = c
		return NewLocalShard(c)
	})
	if err != nil {
		t.Fatal(err)
	}
	sh.Close()
	return cfg
}

// TestReplicatedShardHedge: with a hedge delay of one nanosecond and a
// primary that answers slowly, the hedge fires on (almost) every call and
// the sibling's answer wins — and whichever answer wins, it is returned
// exactly once, never summed with the loser's (the counts would double).
func TestReplicatedShardHedge(t *testing.T) {
	pts := shardTestPoints(t, 19, 300, 2)
	opts := shardTestOptions(2)
	cfg := shardConfigFor(t, pts, opts)

	ref, err := NewLocalShard(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.PartialCounts(context.Background(), EpochFrozen, 1, 0.05, 50, false)
	if err != nil {
		t.Fatal(err)
	}

	var hedged atomic.Int32
	slow := func(context.Context) (ShardBackend, error) {
		ls, err := NewLocalShard(cfg)
		if err != nil {
			return nil, err
		}
		return &slowShard{ShardBackend: ls, delay: 2 * time.Millisecond}, nil
	}
	fast := func(context.Context) (ShardBackend, error) {
		hedged.Add(1)
		return NewLocalShard(cfg)
	}
	rs, err := NewReplicatedShard(context.Background(), []ReplicaDialer{slow, fast},
		ReplicatedShardOptions{HedgeDelay: time.Nanosecond, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	for q := 0; q < 20; q++ {
		got, err := rs.PartialCounts(context.Background(), EpochFrozen, 1, 0.05, 50, false)
		if err != nil {
			t.Fatalf("query %d: %v", q, err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: %d counts, want %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d: count[%d] = %d, want %d (hedge double-counted or diverged)", q, i, got[i], want[i])
			}
		}
	}
	if hedged.Load() == 0 {
		t.Fatal("hedge replica was never dialed despite a 1ns hedge delay")
	}
}

// slowShard delays every bulk answer (still honoring cancellation) so a
// hedge always has time to fire and race it.
type slowShard struct {
	ShardBackend
	delay time.Duration
}

func (s *slowShard) PartialCounts(ctx context.Context, epoch Epoch, j int, r float64, limit int32, exactBoundary bool) ([]int32, error) {
	select {
	case <-time.After(s.delay):
	case <-ctxOrBackground(ctx).Done():
		return nil, ctx.Err()
	}
	return s.ShardBackend.PartialCounts(ctx, epoch, j, r, limit, exactBoundary)
}

// TestReplicatedShardProbeRecovery: a replica that failed (and was marked
// down) is re-probed in the background and rejoins the preference order, so
// later calls route to it again rather than treating it as a last resort
// forever.
func TestReplicatedShardProbeRecovery(t *testing.T) {
	pts := shardTestPoints(t, 23, 120, 2)
	opts := shardTestOptions(2)
	cfg := shardConfigFor(t, pts, opts)

	var budget atomic.Int32
	budget.Store(1) // primary answers once, then dies
	died := errors.New("primary down")
	primary := func(context.Context) (ShardBackend, error) {
		ls, err := NewLocalShard(cfg)
		if err != nil {
			return nil, err
		}
		return &flakyShard{ShardBackend: ls, budget: &budget, err: died}, nil
	}
	backup := func(context.Context) (ShardBackend, error) { return NewLocalShard(cfg) }

	var probed atomic.Int32
	rs, err := NewReplicatedShard(context.Background(), []ReplicaDialer{primary, backup},
		ReplicatedShardOptions{
			ProbeInterval: time.Millisecond,
			Probe: func(_ context.Context, replica int) error {
				probed.Add(1)
				if replica == 0 {
					budget.Store(1 << 30) // the replica has come back
				}
				return nil
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	// First call: primary's budget runs out → failover to backup, primary
	// marked down.
	if _, err := rs.PartialCounts(context.Background(), EpochFrozen, 0, 0.05, 10, false); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.PartialCounts(context.Background(), EpochFrozen, 0, 0.05, 10, false); err != nil {
		t.Fatal(err)
	}
	// The down mark itself is transient — the 1ms prober may clear it
	// before this goroutine looks — so assert the recovery: the prober ran
	// against the primary and the mark is (eventually) gone.
	deadline := time.Now().Add(5 * time.Second)
	for probed.Load() == 0 || rs.replicas[0].down.Load() {
		if time.Now().After(deadline) {
			t.Fatalf("primary still down after %d probes", probed.Load())
		}
		time.Sleep(time.Millisecond)
	}
	// The recovered primary serves again (its budget was restored).
	if _, err := rs.PartialCounts(context.Background(), EpochFrozen, 0, 0.05, 10, false); err != nil {
		t.Fatal(err)
	}
}

// TestReplicatedShardPreCancelled: a context cancelled before the call must
// return immediately without touching any replica.
func TestReplicatedShardPreCancelled(t *testing.T) {
	pts := shardTestPoints(t, 29, 80, 2)
	cfg := shardConfigFor(t, pts, shardTestOptions(2))
	var calls atomic.Int32
	dial := func(context.Context) (ShardBackend, error) {
		ls, err := NewLocalShard(cfg)
		if err != nil {
			return nil, err
		}
		return &countingShard{ShardBackend: ls, calls: &calls}, nil
	}
	rs, err := NewReplicatedShard(context.Background(), []ReplicaDialer{dial, dial},
		ReplicatedShardOptions{ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := rs.PartialCounts(ctx, EpochFrozen, 0, 0.05, 10, false); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled: err = %v, want context.Canceled", err)
	}
	if got := calls.Load(); got != 0 {
		t.Fatalf("pre-cancelled call reached a replica %d times", got)
	}
}

type countingShard struct {
	ShardBackend
	calls *atomic.Int32
}

func (c *countingShard) PartialCounts(ctx context.Context, epoch Epoch, j int, r float64, limit int32, exactBoundary bool) ([]int32, error) {
	c.calls.Add(1)
	return c.ShardBackend.PartialCounts(ctx, epoch, j, r, limit, exactBoundary)
}

// TestReplicatedShardClose: Close is idempotent, closes every dialed
// replica backend, stops the prober, and fails later calls.
func TestReplicatedShardClose(t *testing.T) {
	pts := shardTestPoints(t, 31, 80, 2)
	cfg := shardConfigFor(t, pts, shardTestOptions(2))
	closed := 0
	dial := func(context.Context) (ShardBackend, error) {
		ls, err := NewLocalShard(cfg)
		if err != nil {
			return nil, err
		}
		return &closeCounter{ShardBackend: ls, closed: &closed}, nil
	}
	rs, err := NewReplicatedShard(context.Background(), []ReplicaDialer{dial, dial},
		ReplicatedShardOptions{ProbeInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Force the second replica to dial too (failover path), so Close has
	// two backends to release.
	if _, err := rs.PartialCounts(context.Background(), EpochFrozen, 0, 0.05, 10, false); err != nil {
		t.Fatal(err)
	}
	rs.replicas[1].down.Store(false)
	if err := rs.dialProbe(context.Background(), rs.replicas[1]); err != nil {
		t.Fatal(err)
	}
	if err := rs.Close(); err != nil {
		t.Fatal(err)
	}
	if closed != 2 {
		t.Fatalf("Close released %d backends, want 2", closed)
	}
	if err := rs.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := rs.PartialCounts(context.Background(), EpochFrozen, 0, 0.05, 10, false); err == nil {
		t.Fatal("call after Close succeeded")
	}
}
