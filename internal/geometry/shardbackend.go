package geometry

import (
	"context"
	"fmt"
	"sync"

	"privcluster/internal/vec"
)

// ShardBackend is the narrow seam between ShardedIndex and one data
// partition: a shard holds a subset of the indexed points and answers
// "how many of my points are within r of these centers" in the three
// flavors the BallIndex queries decompose into. Every method is a pure
// read over the shard's points — per-shard answers compose into global
// ones by plain (or saturating) addition, which is what makes the
// ShardedIndex equivalence contract transport-agnostic: an implementation
// may run in-process (LocalShard) or on another machine behind an RPC
// client, and releases stay bit-identical.
//
// Bulk methods take the batch implicitly: the global point set is fixed
// per snapshot (ShardConfig.Points at construction, grown by appends on
// mutable backends), so PartialCounts and DupCounts answer for every
// global point of the pinned snapshot in one call — one network round trip
// per call for a remote implementation, never one per point.
//
// Every bulk query names the snapshot it must be answered from: an epoch.
// Immutable backends serve exactly one snapshot, EpochFrozen; mutable ones
// (MutableShardBackend) serve the retained epoch range. Threading the
// epoch through the seam is what lets all shards of one query answer from
// the same snapshot regardless of concurrent mutation or merge timing.
//
// Implementations must be safe for sequential reuse; ShardedIndex never
// issues concurrent calls to the same backend, but distinct backends are
// queried concurrently.
type ShardBackend interface {
	// NPoints returns the number of points the shard currently holds.
	NPoints() int
	// CountBatch returns, for each center, the exact number of shard
	// points within distance r of it at the given epoch — the batched
	// CountWithin partial. A negative r yields zeros.
	CountBatch(ctx context.Context, epoch Epoch, centers []vec.Vector, r float64) ([]int32, error)
	// PartialCounts returns this shard's contribution to the capped
	// within-r counts around every global point of the epoch's snapshot,
	// at ladder level j: slot i holds min(|{y ∈ shard : y contributes to
	// B_r(points[i])}|, limit), with boundary cells resolved exactly
	// (exactBoundary) or by the center rule of the L estimators. Summing
	// the per-shard vectors with saturation at limit reproduces the
	// unsharded capped counts bit for bit (capping commutes — see
	// ShardedIndex).
	PartialCounts(ctx context.Context, epoch Epoch, j int, r float64, limit int32, exactBoundary bool) ([]int32, error)
	// DupCounts returns, for every global point of the epoch's snapshot,
	// how many shard points are bitwise identical to it — this shard's
	// contribution to the global duplicate table (the exact radius-0
	// counts).
	DupCounts(ctx context.Context, epoch Epoch) ([]int32, error)
	// Close releases the backend's resources (network connections for
	// remote implementations; a no-op locally).
	Close() error
}

// ShardConfig is everything a backend needs to serve one shard of a
// ShardedIndex: the full global point set (the query centers of the bulk
// passes), which of those points the shard holds, and the cell options
// every shard must share. It is the payload a remote transport ships at
// handshake.
type ShardConfig struct {
	// Points is the full global point set, in global order, as a flat
	// frame — the same storage the transport ships in one copy at
	// handshake.
	Points *vec.Frame
	// Members lists the global ids of the points this shard holds.
	Members []int32
	// Cell configures the shard's cell index. It must be the defaulted
	// global options with MaxRadius pinned to the global ladder top, so
	// every shard — and the source-cell structure over the global points —
	// resolves each radius at the same ladder level with the same cell
	// side (the shared-ladder invariant; NewShardedIndexBackends pins it).
	Cell CellIndexOptions
}

// validate rejects configs that cannot describe a shard.
func (cfg ShardConfig) validate() error {
	if cfg.Points == nil || cfg.Points.N() == 0 {
		return fmt.Errorf("geometry: shard config with no global points")
	}
	n := cfg.Points.N()
	if len(cfg.Members) == 0 {
		return fmt.Errorf("geometry: shard config with no member points")
	}
	for _, g := range cfg.Members {
		if g < 0 || int(g) >= n {
			return fmt.Errorf("geometry: member id %d out of [0, %d)", g, n)
		}
	}
	return nil
}

// LocalShard is the in-process ShardBackend: the CellIndex machinery over
// one shard's subset, answering the partial queries the ShardedIndex sums.
// It is what the shard-server daemon runs behind the wire protocol, and
// what loopback tests plug directly into NewShardedIndexBackends to prove
// the generic summation path equivalent without any transport.
//
// Internally it keeps two cell structures: the member index over the
// shard's points (whose cells are classified against query balls) and a
// source index over the global points (whose cells group the query centers
// so candidate enumeration is paid per occupied source cell, not per
// center — the same amortization the fused local pass gets from per-shard
// levels). Both are pinned to the shared ladder, and the source grouping
// never affects results: a member cell outside a source cell's candidate
// block contributes nothing to its points under either boundary rule.
type LocalShard struct {
	cfg     ShardConfig
	members *CellIndex // index over the shard's subset
	src     *CellIndex // source-cell structure over the global points

	dupOnce sync.Once
	dup     []int32
}

// NewLocalShard builds the in-process backend for one shard. The config's
// cell options must already be defaulted and ladder-pinned (ShardConfig).
func NewLocalShard(cfg ShardConfig) (*LocalShard, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cell := cfg.Cell.withDefaults(cfg.Points.Dim())
	// Neither structure needs a duplicate table: DupCounts is answered
	// from a key map against the global centers (a per-shard CellIndex
	// table could not see them), and the source index only ever serves
	// cell levels.
	cell.skipDupTable = true
	members, err := NewCellIndexFrame(cfg.Points.Gather(cfg.Members), cell)
	if err != nil {
		return nil, err
	}
	src, err := NewCellIndexFrame(cfg.Points, cell)
	if err != nil {
		return nil, err
	}
	cfg.Cell = cell
	return &LocalShard{cfg: cfg, members: members, src: src}, nil
}

// NPoints returns the number of points the shard holds.
func (s *LocalShard) NPoints() int { return s.members.N() }

// Close is a no-op: the shard holds no external resources.
func (s *LocalShard) Close() error { return nil }

// errFrozenEpoch rejects a pinned-epoch query against an immutable shard:
// it serves exactly one snapshot, the one fixed at construction.
func errFrozenEpoch(epoch Epoch) error {
	return fmt.Errorf("geometry: immutable shard queried at epoch %d (only the frozen snapshot exists)", epoch)
}

// CountBatch returns the exact number of shard points within r of each
// center.
func (s *LocalShard) CountBatch(ctx context.Context, epoch Epoch, centers []vec.Vector, r float64) ([]int32, error) {
	if epoch != EpochFrozen {
		return nil, errFrozenEpoch(epoch)
	}
	out := make([]int32, len(centers))
	if r < 0 {
		return out, nil
	}
	if err := ctxOrBackground(ctx).Err(); err != nil {
		return nil, err
	}
	lv := s.members.level(s.members.levelFor(r))
	sc := newCellScratch(s.members.dim)
	for i, c := range centers {
		if c.Dim() != s.members.dim {
			return nil, fmt.Errorf("geometry: center %d has dimension %d, want %d", i, c.Dim(), s.members.dim)
		}
		out[i] = s.members.countOne(lv, c, r, sc)
	}
	return out, nil
}

// PartialCounts computes the shard's member contributions around every
// global point at ladder level j, capped at limit, via the shared
// crossCellCounts engine (the source structure over the global points as
// the one source group, the member index as the one member group). A
// cancelled ctx aborts it with ctx.Err() and no leaked goroutines.
func (s *LocalShard) PartialCounts(ctx context.Context, epoch Epoch, j int, r float64, limit int32, exactBoundary bool) ([]int32, error) {
	if epoch != EpochFrozen {
		return nil, errFrozenEpoch(epoch)
	}
	out := make([]int32, s.cfg.Points.N())
	err := crossCellCounts(ctx, s.cfg.Cell.Workers,
		[]cellGroup{{ix: s.src}}, []cellGroup{{ix: s.members}},
		j, r, limit, exactBoundary, out)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DupCounts returns, for every global point, the number of shard points
// bitwise identical to it (computed once and memoized — the table is a
// pure function of the config).
func (s *LocalShard) DupCounts(ctx context.Context, epoch Epoch) ([]int32, error) {
	if epoch != EpochFrozen {
		return nil, errFrozenEpoch(epoch)
	}
	if err := ctxOrBackground(ctx).Err(); err != nil {
		return nil, err
	}
	s.dupOnce.Do(func() {
		pts := s.cfg.Points
		buf := make([]byte, 0, 8*pts.Dim())
		m := make(map[string]int32, len(s.cfg.Members))
		for _, g := range s.cfg.Members {
			m[string(pts.AppendRowKey(buf[:0], int(g)))]++
		}
		out := make([]int32, pts.N())
		for i := range out {
			out[i] = m[string(pts.AppendRowKey(buf[:0], i))]
		}
		s.dup = out
	})
	return s.dup, nil
}
