package core

// QueryScratch holds the reusable per-query buffers of the center stage —
// the box-partition key/histogram state, the rotation buffer, the per-axis
// interval histogram, and the chosen box's member list. A warm query that
// threads one through Params.Scratch allocates close to nothing in
// GoodCenter's hot passes; buffers grow to the dataset's high-water mark and
// are then reused verbatim.
//
// A QueryScratch must not be used by two queries concurrently — pool them
// (the Dataset handle keeps a sync.Pool) or use one per goroutine. Reuse
// never changes releases: every buffer is fully overwritten or cleared
// before it is read, so the values flowing into the private mechanisms are
// identical with or without scratch.
type QueryScratch struct {
	// rotBuf backs the rotated cluster points of GoodCenter steps 8–9.
	rotBuf []float64
	// axisHist is the per-axis interval histogram, cleared per axis.
	axisHist map[int64]int
	// keys, hist, locals back the packed (uint64-keyed) box-partition
	// engines; the legacy string engine allocates its own.
	keys   []uint64
	hist   map[uint64]int
	locals []map[uint64]int
	// members backs the chosen box's member-id list.
	members []int
}

// NewQueryScratch returns an empty scratch; buffers are grown on first use.
func NewQueryScratch() *QueryScratch { return &QueryScratch{} }
