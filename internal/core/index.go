package core

import (
	"fmt"

	"privcluster/internal/geometry"
	"privcluster/internal/vec"
)

// IndexPolicy selects the geometry.BallIndex backend the pipeline
// preprocesses the dataset with.
type IndexPolicy int

const (
	// IndexAuto picks the exact index up to ExactIndexMaxN points and the
	// scalable cell index beyond — exact answers while the Θ(n²) memory is
	// cheap, graceful scaling when it is not.
	IndexAuto IndexPolicy = iota
	// IndexExact forces the Θ(n²) DistanceIndex (exact L, exact counts).
	IndexExact
	// IndexScalable forces the O(n·d) CellIndex (approximate L within the
	// bounds documented on geometry.CellIndex).
	IndexScalable
)

// ExactIndexMaxN is IndexAuto's cutover point: the largest n for which the
// exact index's Θ(n²) distance matrix (≈ 8n² bytes) is still considered
// cheap. 4096 points ≈ 134 MB.
const ExactIndexMaxN = 4096

// ResolveIndexPolicy returns the concrete backend NewBallIndex builds for
// the policy at dataset size n: IndexAuto resolves by the ExactIndexMaxN
// cutover, explicit policies pass through. Exported so the serving layer's
// index cache keys by exactly the rule NewBallIndex applies (one resolver,
// no drift).
func ResolveIndexPolicy(pol IndexPolicy, n int) IndexPolicy {
	if pol == IndexAuto {
		if n <= ExactIndexMaxN {
			return IndexExact
		}
		return IndexScalable
	}
	return pol
}

// NewBallIndex builds the dataset index the pipeline's radius stage runs
// on, honoring the policy. The grid supplies the scalable index's radius
// ladder bounds (resolution floor RadiusUnit, domain diameter
// MaxDistance) so its approximation error aligns with the radius grid
// GoodRadius already searches. workers bounds the scalable index's worker
// pool (0 = GOMAXPROCS) — the same knob Profile.Workers feeds.
func NewBallIndex(points []vec.Vector, grid geometry.Grid, pol IndexPolicy, workers int) (geometry.BallIndex, error) {
	switch pol {
	case IndexAuto, IndexExact, IndexScalable:
	default:
		return nil, fmt.Errorf("core: unknown index policy %d", pol)
	}
	if ResolveIndexPolicy(pol, len(points)) == IndexExact {
		return geometry.NewDistanceIndex(points)
	}
	return geometry.NewCellIndex(points, geometry.CellIndexOptions{
		MinRadius: grid.RadiusUnit(),
		MaxRadius: grid.MaxDistance(),
		Workers:   workers,
	})
}
