package core

import (
	"fmt"

	"privcluster/internal/geometry"
	"privcluster/internal/vec"
)

// IndexPolicy selects the geometry.BallIndex backend the pipeline
// preprocesses the dataset with.
type IndexPolicy int

const (
	// IndexAuto picks the exact index up to ExactIndexMaxN points and the
	// scalable cell index beyond — exact answers while the Θ(n²) memory is
	// cheap, graceful scaling when it is not.
	IndexAuto IndexPolicy = iota
	// IndexExact forces the Θ(n²) DistanceIndex (exact L, exact counts).
	IndexExact
	// IndexScalable forces the O(n·d) CellIndex (approximate L within the
	// bounds documented on geometry.CellIndex).
	IndexScalable
)

// ExactIndexMaxN is IndexAuto's cutover point: the largest n for which the
// exact index's Θ(n²) distance matrix (≈ 8n² bytes) is still considered
// cheap. 4096 points ≈ 134 MB.
const ExactIndexMaxN = 4096

// NewBallIndex builds the dataset index the pipeline's radius stage runs
// on, honoring the policy. The grid supplies the scalable index's radius
// ladder bounds (resolution floor RadiusUnit, domain diameter
// MaxDistance) so its approximation error aligns with the radius grid
// GoodRadius already searches. workers bounds the scalable index's worker
// pool (0 = GOMAXPROCS) — the same knob Profile.Workers feeds.
func NewBallIndex(points []vec.Vector, grid geometry.Grid, pol IndexPolicy, workers int) (geometry.BallIndex, error) {
	exact := false
	switch pol {
	case IndexAuto:
		exact = len(points) <= ExactIndexMaxN
	case IndexExact:
		exact = true
	case IndexScalable:
	default:
		return nil, fmt.Errorf("core: unknown index policy %d", pol)
	}
	if exact {
		return geometry.NewDistanceIndex(points)
	}
	return geometry.NewCellIndex(points, geometry.CellIndexOptions{
		MinRadius: grid.RadiusUnit(),
		MaxRadius: grid.MaxDistance(),
		Workers:   workers,
	})
}
