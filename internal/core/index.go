package core

import (
	"context"
	"fmt"
	"runtime"

	"privcluster/internal/geometry"
	"privcluster/internal/transport"
	"privcluster/internal/vec"
)

// IndexPolicy selects the geometry.BallIndex backend the pipeline
// preprocesses the dataset with.
type IndexPolicy int

const (
	// IndexAuto picks the exact index up to ExactIndexMaxN points and the
	// scalable cell index beyond — exact answers while the Θ(n²) memory is
	// cheap, graceful scaling when it is not.
	IndexAuto IndexPolicy = iota
	// IndexExact forces the Θ(n²) DistanceIndex (exact L, exact counts).
	IndexExact
	// IndexScalable forces the O(n·d) CellIndex (approximate L within the
	// bounds documented on geometry.CellIndex), sharded per the Shards
	// knob.
	IndexScalable
)

// ExactIndexMaxN is IndexAuto's cutover point: the largest n for which the
// exact index's Θ(n²) distance matrix (≈ 8n² bytes) is still considered
// cheap. 4096 points ≈ 134 MB.
const ExactIndexMaxN = 4096

// ShardAutoMinN is the dataset size at which the automatic shard policy
// (Shards == 0) starts sharding the scalable index: below it a single
// CellIndex wins (the parallel worker pools already saturate small
// inputs), at or above it the index build fans out over GOMAXPROCS
// shards. Sharding never changes results — per-shard counts compose by
// exact summation (see geometry.ShardedIndex) — so the cutover is a pure
// performance rule.
const ShardAutoMinN = 100_000

// ResolveIndexPolicy returns the concrete backend NewBallIndex builds for
// the policy at dataset size n: IndexAuto resolves by the ExactIndexMaxN
// cutover, explicit policies pass through. Exported so the serving layer's
// index cache keys by exactly the rule NewBallIndex applies (one resolver,
// no drift).
func ResolveIndexPolicy(pol IndexPolicy, n int) IndexPolicy {
	if pol == IndexAuto {
		if n <= ExactIndexMaxN {
			return IndexExact
		}
		return IndexScalable
	}
	return pol
}

// ResolveShards returns the concrete shard count NewBallIndex uses for the
// requested value at dataset size n: 0 (automatic) resolves to GOMAXPROCS
// at n ≥ ShardAutoMinN and to 1 below; explicit requests are clamped to
// [1, n], so no shard is ever empty. Exported for the same reason as
// ResolveIndexPolicy: the serving layer's index cache must key by exactly
// the rule NewBallIndex applies. (Shards only affect the scalable backend;
// the exact index ignores them.)
func ResolveShards(shards, n int) int {
	if shards == 0 {
		if n < ShardAutoMinN {
			return 1
		}
		shards = runtime.GOMAXPROCS(0)
	}
	if shards < 1 {
		return 1
	}
	if shards > n {
		return n
	}
	return shards
}

// ResolveWorkers returns the concrete worker-pool width the scalable
// index builds with: values below 1 resolve to GOMAXPROCS — the same rule
// geometry.CellIndexOptions.withDefaults applies. Exported for the same
// reason as ResolveIndexPolicy and ResolveShards: the serving layer's
// index cache must key by the resolved width, so a GOMAXPROCS change
// between queries builds a matching index instead of serving a stale one.
func ResolveWorkers(workers int) int {
	if workers < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// NewBallIndex builds the dataset index the pipeline's radius stage runs
// on, honoring the policy. The grid supplies the scalable index's radius
// ladder bounds (resolution floor RadiusUnit, domain diameter
// MaxDistance) so its approximation error aligns with the radius grid
// GoodRadius already searches. workers bounds the scalable index's worker
// pool (0 = GOMAXPROCS) — the same knob Profile.Workers feeds. shards
// splits the scalable index into ResolveShards(shards, n) partitions whose
// cell indexes build in parallel and answer by exact partial sums
// (Morton/space-filling-curve assignment; results bit-identical to the
// unsharded index). ctx cancels a sharded build in flight; a nil ctx means
// "never cancel".
func NewBallIndex(ctx context.Context, points []vec.Vector, grid geometry.Grid, pol IndexPolicy, workers, shards int) (geometry.BallIndex, error) {
	f, err := vec.FrameFromVectors(points)
	if err != nil {
		return nil, err
	}
	return NewBallIndexFrame(ctx, f, grid, pol, workers, shards)
}

// NewBallIndexFrame is NewBallIndex on a flat frame — the storage every
// backend keeps anyway, so callers that already hold one (the Dataset
// handle) skip the copy entirely. The frame is shared, not copied: callers
// must treat it as read-only afterwards.
func NewBallIndexFrame(ctx context.Context, points *vec.Frame, grid geometry.Grid, pol IndexPolicy, workers, shards int) (geometry.BallIndex, error) {
	switch pol {
	case IndexAuto, IndexExact, IndexScalable:
	default:
		return nil, fmt.Errorf("core: unknown index policy %d", pol)
	}
	n := points.N()
	if ResolveIndexPolicy(pol, n) == IndexExact {
		return geometry.NewDistanceIndexFrame(points)
	}
	cell := geometry.CellIndexOptions{
		MinRadius: grid.RadiusUnit(),
		MaxRadius: grid.MaxDistance(),
		Workers:   workers,
	}
	if s := ResolveShards(shards, n); s > 1 {
		return geometry.NewShardedIndexFrame(ctx, points, geometry.ShardedIndexOptions{
			Shards: s,
			Policy: geometry.ShardMorton,
			Cell:   cell,
		})
	}
	return geometry.NewCellIndexFrame(points, cell)
}

// NewMutableBallIndexFrame builds the streaming-ingestion counterpart of
// NewBallIndexFrame: a mutable index whose epochs snapshot to BallIndexes
// bit-identical to a fresh build on that epoch's point set. Mutability
// presumes the scalable backend (the exact index's Θ(n²) matrix has no
// incremental form), so the policy knob does not apply; shards resolve by
// the same rule as NewBallIndexFrame, with in-process shard backends. The
// frame is shared until the first mutation takes ownership of a copy.
func NewMutableBallIndexFrame(ctx context.Context, points *vec.Frame, grid geometry.Grid, workers, shards int) (geometry.MutableBallIndex, error) {
	cell := geometry.CellIndexOptions{
		MinRadius: grid.RadiusUnit(),
		MaxRadius: grid.MaxDistance(),
		Workers:   workers,
	}
	if s := ResolveShards(shards, points.N()); s > 1 {
		return geometry.NewMutableShardedIndexBackends(ctx, points, geometry.ShardedIndexOptions{
			Shards: s,
			Policy: geometry.ShardMorton,
			Cell:   cell,
		}, func(ctx context.Context, shard int, cfg geometry.ShardConfig) (geometry.MutableShardBackend, error) {
			return geometry.NewMutableLocalShard(cfg)
		})
	}
	return geometry.NewMutableCellIndexFrame(points, cell)
}

// NewRemoteMutableBallIndexFrame is NewMutableBallIndexFrame with every
// shard living behind a remote epoch session: one shard per address,
// opened mutable so appends and deletes advance the remote shards in
// lockstep. Remote mutable sessions are connection-scoped — a broken
// connection permanently fails that shard's backend and the coordinator
// marks the index broken (see transport.Options.Mutable) — so callers
// should treat transport failures as fatal to the handle.
func NewRemoteMutableBallIndexFrame(ctx context.Context, points *vec.Frame, grid geometry.Grid, workers int, addrs []string, dial transport.DialFunc) (geometry.MutableBallIndex, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("core: remote mutable ball index needs at least one shard address")
	}
	for i, a := range addrs {
		if a == "" {
			return nil, fmt.Errorf("core: remote shard address %d is empty", i)
		}
	}
	cell := geometry.CellIndexOptions{
		MinRadius: grid.RadiusUnit(),
		MaxRadius: grid.MaxDistance(),
		Workers:   workers,
	}
	return geometry.NewMutableShardedIndexBackends(ctx, points, geometry.ShardedIndexOptions{
		Shards: len(addrs),
		Policy: geometry.ShardMorton,
		Cell:   cell,
	}, transport.MutableShardDialer(addrs, transport.Options{Dial: dial}))
}

// NewRemoteBallIndex builds the scalable sharded index with every shard
// served over the wire protocol: one shard per address in addrs (the same
// Morton partition NewBallIndex uses, clamped to at most n shards), dialed
// and handshaken via the transport package. The exact-vs-scalable policy
// does not apply — remote execution presumes the scalable backend — and
// releases are bit-identical to NewBallIndex's under the same seed (the
// ShardedIndex equivalence contract survives the wire; see
// geometry.ShardedIndex and the transport package).
//
// dial overrides connection establishment (nil = TCP) — the seam the
// loopback tests and single-process demos use. ctx governs dialing and the
// handshake round trips; the caller owns the returned index's connections
// (it is a *geometry.ShardedIndex; Close releases them).
func NewRemoteBallIndex(ctx context.Context, points []vec.Vector, grid geometry.Grid, workers int, addrs []string, dial transport.DialFunc) (geometry.BallIndex, error) {
	f, err := vec.FrameFromVectors(points)
	if err != nil {
		return nil, err
	}
	return NewRemoteBallIndexFrame(ctx, f, grid, workers, addrs, dial)
}

// NewRemoteBallIndexFrame is NewRemoteBallIndex on a flat frame (shared, not
// copied) — the OPEN handshake encodes the wire payload straight from the
// frame's backing slice.
func NewRemoteBallIndexFrame(ctx context.Context, points *vec.Frame, grid geometry.Grid, workers int, addrs []string, dial transport.DialFunc) (geometry.BallIndex, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("core: remote ball index needs at least one shard address")
	}
	for i, a := range addrs {
		if a == "" {
			return nil, fmt.Errorf("core: remote shard address %d is empty", i)
		}
	}
	cell := geometry.CellIndexOptions{
		MinRadius: grid.RadiusUnit(),
		MaxRadius: grid.MaxDistance(),
		Workers:   workers,
	}
	return geometry.NewShardedIndexBackends(ctx, points, geometry.ShardedIndexOptions{
		Shards: len(addrs),
		Policy: geometry.ShardMorton,
		Cell:   cell,
	}, transport.ShardDialer(addrs, transport.Options{Dial: dial}))
}

// NewReplicatedBallIndexFrame is NewRemoteBallIndexFrame over a placement:
// shard partition s is served by the replica set parts[s], with failover,
// optional hedging and background health probing per ropts
// (transport.ReplicatedShardDialer). Single-replica partitions degrade to
// exactly the plain remote path, and releases are bit-identical to
// NewBallIndex's regardless of which replica answers each call — every
// replica of a partition serves the same pure-read shard config.
func NewReplicatedBallIndexFrame(ctx context.Context, points *vec.Frame, grid geometry.Grid, workers int, parts [][]string, ropts transport.ReplicaOptions) (geometry.BallIndex, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("core: replicated ball index needs at least one shard partition")
	}
	for p, addrs := range parts {
		if len(addrs) == 0 {
			return nil, fmt.Errorf("core: shard partition %d has no replicas", p)
		}
		for i, a := range addrs {
			if a == "" {
				return nil, fmt.Errorf("core: partition %d replica address %d is empty", p, i)
			}
		}
	}
	cell := geometry.CellIndexOptions{
		MinRadius: grid.RadiusUnit(),
		MaxRadius: grid.MaxDistance(),
		Workers:   workers,
	}
	return geometry.NewShardedIndexBackends(ctx, points, geometry.ShardedIndexOptions{
		Shards: len(parts),
		Policy: geometry.ShardMorton,
		Cell:   cell,
	}, transport.ReplicatedShardDialer(parts, ropts))
}
