package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"slices"

	"privcluster/internal/dp"
	"privcluster/internal/jl"
	"privcluster/internal/noise"
	"privcluster/internal/obs"
	"privcluster/internal/stability"
	"privcluster/internal/svt"
	"privcluster/internal/vec"
)

// CenterResult is the outcome of Algorithm GoodCenter.
type CenterResult struct {
	// Center is the released point ŷ; with probability ≥ 1−β the ball of
	// the returned Radius around it contains ≥ t − O((1/ε)·log(n/β)) input
	// points (Lemma 3.7).
	Center vec.Vector
	// Radius is the guaranteed covering radius, OutRadiusFactor·r·√k.
	Radius float64
	// K is the projection dimension actually used.
	K int
	// Repetitions is how many random partitions were tried before
	// AboveThreshold fired.
	Repetitions int
	// BoxCount is the (non-private, diagnostic) number of points mapped to
	// the chosen box.
	BoxCount int
	// FallbackAxes counts axes resolved by the report-noisy-max fallback.
	FallbackAxes int
}

// Sentinel errors for the failure modes Lemma 3.7's hypotheses exclude.
var (
	// ErrNoCluster: AboveThreshold never fired — no random partition put
	// ≈ t projected points in one box.
	ErrNoCluster = errors.New("core: GoodCenter found no heavy box (is there a radius-r ball with t points?)")
	// ErrSelectionFailed: a stability-based choice returned ⊥.
	ErrSelectionFailed = errors.New("core: private selection returned bottom")
	// ErrNoData: the algorithm was handed an empty point set.
	ErrNoData = errors.New("core: empty point set")
)

// GoodCenter implements Algorithm 2. Given a radius r such that some ball of
// radius r contains ≥ t input points, it privately releases a center ŷ whose
// O(r√k)-ball captures ≈ t points, spending the (ε, δ) in prm.Privacy:
// ε/4 on AboveThreshold, (ε/4, δ/4) on the box choice, (ε/4, δ/4) across
// the d per-axis choices, and (ε/4, δ/4) on NoisyAVG (Lemma 4.11).
//
// The box-partition loop runs on the packed-key engine selected by
// prm.Profile.Packing, with the per-repetition count pass fanned out over
// prm.Profile.Workers goroutines; neither knob affects the privacy analysis
// (AboveThreshold only ever sees the final per-repetition maximum) nor —
// thanks to the canonical box enumeration — the seeded output.
func GoodCenter(rng *rand.Rand, points []vec.Vector, r float64, prm Params) (CenterResult, error) {
	if len(points) == 0 {
		// Validate cannot run first: it needs n, and indexing points[0]
		// before the check would panic on a direct call with no points.
		return CenterResult{}, fmt.Errorf("%w: GoodCenter needs at least one point", ErrNoData)
	}
	f, err := vec.FrameFromVectors(points)
	if err != nil {
		return CenterResult{}, err
	}
	return GoodCenterFrame(rng, f, r, prm)
}

// GoodCenterFrame is GoodCenter on a flat frame — the representation the
// ball indexes already hold, so the pipeline's hot path never materializes
// per-point slices. Float32 frames are promoted to float64 once up front
// (exact); every pass then runs on no-copy row views. When prm.Scratch is
// set, the per-query buffers (box keys, histograms, the rotation buffer) are
// borrowed from it, making warm repeated queries allocate close to nothing
// here. Releases are bit-identical to GoodCenter on the same values.
func GoodCenterFrame(rng *rand.Rand, points *vec.Frame, r float64, prm Params) (CenterResult, error) {
	if points == nil || points.N() == 0 {
		return CenterResult{}, fmt.Errorf("%w: GoodCenter needs at least one point", ErrNoData)
	}
	points = points.Promote()
	prm.setDefaults()
	n := points.N()
	if err := prm.Validate(n); err != nil {
		return CenterResult{}, err
	}
	if r <= 0 {
		// A zero radius (GoodRadius's duplicate-cluster case) degenerates
		// the box partition; the smallest positive grid radius is the
		// correct resolution at which to hunt for the duplicates.
		r = prm.Grid.RadiusUnit()
	}
	d := prm.Grid.Dim
	if points.Dim() != d {
		return CenterResult{}, fmt.Errorf("core: points have dimension %d, grid says %d", points.Dim(), d)
	}
	t := prm.T
	eps := prm.Privacy.Epsilon
	delta := prm.Privacy.Delta
	quarter := dp.Params{Epsilon: eps / 4, Delta: delta / 4}
	beta := prm.Beta

	// Step 1: JL projection to k dimensions (identity when k ≥ d).
	k := jl.TargetDim(n, prm.Profile.JLEta, beta)
	if c := prm.Profile.JLDimCap; c > 0 && k > c {
		k = c
	}
	transform, err := jl.NewTransform(rng, d, k)
	if err != nil {
		return CenterResult{}, err
	}
	kOut := transform.OutDim()
	// The identity case (k ≥ d, the common regime after the JLDimCap)
	// aliases the input frame — no copy at all.
	proj := transform.ApplyFrame(points)

	// Steps 2–6: resample randomly shifted box partitions of R^k until
	// AboveThreshold certifies that some box holds ≈ t projected points.
	// The projected cluster has radius ≤ 3r (JL distortion with η = 1/2).
	boxSide := prm.Profile.BoxSideFactor * 3 * r
	threshold := float64(t) - prm.Profile.ThresholdSlackFactor/eps*math.Log(2*float64(n)/beta)
	at, err := svt.New(rng, threshold, eps/4)
	if err != nil {
		return CenterResult{}, err
	}
	maxReps := prm.Profile.MaxRepetitions
	if maxReps <= 0 {
		maxReps = int(math.Ceil(2 * float64(n) * math.Log(1/beta) / beta))
	}

	part, err := newBoxPartition(proj, boxSide, prm.Profile, prm.Scratch)
	if err != nil {
		return CenterResult{}, err
	}
	fired := false
	reps := 0
	offsets := make([]float64, kOut)
	_, svtSpan := obs.StartSpan(prm.Ctx, "svt")
	for rep := 0; rep < maxReps && !fired; rep++ {
		// Each repetition is a full O(n·k) count pass, so a per-repetition
		// context check keeps cancellation latency at one pass.
		if err := prm.interrupted(); err != nil {
			svtSpan.End()
			return CenterResult{}, err
		}
		reps++
		for i := range offsets {
			offsets[i] = noise.Uniform(rng, 0, boxSide)
		}
		q := part.partition(offsets)
		fired, err = at.Query(float64(q))
		if err != nil {
			svtSpan.End()
			return CenterResult{}, err
		}
	}
	// AboveThreshold draws one threshold perturbation plus one per query.
	svtSpan.Count("repetitions", int64(reps))
	svtSpan.Count("noise_draws", int64(reps)+1)
	svtSpan.End()
	if !fired {
		return CenterResult{}, fmt.Errorf("%w after %d repetitions", ErrNoCluster, reps)
	}

	// Step 7: privately choose the heavy box of the successful partition
	// and collect the input points mapped into it.
	sel, err := part.selectBox(rng, stability.Params{Epsilon: quarter.Epsilon, Delta: quarter.Delta})
	if err != nil {
		return CenterResult{}, err
	}
	if sel.Bottom {
		return CenterResult{}, fmt.Errorf("%w: box selection", ErrSelectionFailed)
	}
	if len(sel.Members) == 0 {
		return CenterResult{}, fmt.Errorf("%w: chosen box is empty", ErrSelectionFailed)
	}
	m := len(sel.Members)

	// Steps 8–9: random rotation of R^d, then a private per-axis interval
	// choice to pin the cluster into a box of diameter O(r·√(k·log(dn/β))).
	basis, err := jl.RandomBasis(rng, d)
	if err != nil {
		return CenterResult{}, err
	}
	// One flat backing array for all rotated points: the per-point MulVec
	// allocation is the dominant cost of this stage at large |cluster|.
	// With a scratch it is reused across queries outright.
	var rotBuf []float64
	if sc := prm.Scratch; sc != nil {
		if cap(sc.rotBuf) < m*d {
			sc.rotBuf = make([]float64, m*d)
		}
		rotBuf = sc.rotBuf[:m*d]
	} else {
		rotBuf = make([]float64, m*d)
	}
	for i, id := range sel.Members {
		basis.MulVecInto(vec.Vector(rotBuf[i*d:(i+1)*d]), points.Row(id))
	}
	axisScale := float64(kOut) / float64(d)
	if prm.Profile.UseAxisLogTerm {
		axisScale *= math.Log(float64(d) * float64(n) / beta)
	}
	pLen := prm.Profile.AxisScaleFactor * r * math.Sqrt(axisScale)
	epsAxis := eps / (10 * math.Sqrt(float64(d)*math.Log(8/delta)))
	deltaAxis := delta / (8 * float64(d))

	fallbacks := 0
	_, axesSpan := obs.StartSpan(prm.Ctx, "axes")
	boxCenterRot := make(vec.Vector, d)
	// The d per-axis interval histograms get the same packed-key treatment
	// as the box loop: one int64-keyed map reused (cleared, not
	// reallocated) across all axes — and across queries via the scratch.
	var axisHist map[int64]int
	if sc := prm.Scratch; sc != nil {
		if sc.axisHist == nil {
			sc.axisHist = make(map[int64]int, 64)
		}
		axisHist = sc.axisHist
	} else {
		axisHist = make(map[int64]int, 64)
	}
	for axis := 0; axis < d; axis++ {
		if err := prm.interrupted(); err != nil {
			axesSpan.End()
			return CenterResult{}, err
		}
		clear(axisHist)
		for i := 0; i < m; i++ {
			axisHist[int64(math.Floor(rotBuf[i*d+axis]/pLen))]++
		}
		res, err := stability.Choose(rng, axisHist, stability.Params{Epsilon: epsAxis, Delta: deltaAxis})
		if err != nil {
			axesSpan.End()
			return CenterResult{}, err
		}
		var j int64
		switch {
		case !res.Bottom:
			j = res.Key
		case prm.Profile.AxisFallback:
			// Practical fallback: report-noisy-max restricted to occupied
			// intervals. This keeps the ε accounting of the stability
			// choice but forgoes its δ-absorbing release threshold (the
			// threshold is what returned ⊥); see the Profile.AxisFallback
			// doc for the trade-off. Enumerating all data-independent
			// intervals instead drowns the signal: at per-axis ε ≈ ε/(10√d)
			// the Θ(√d/p) empty intervals win the noisy argmax almost
			// surely.
			j, err = axisNoisyMax(rng, axisHist, epsAxis)
			if err != nil {
				axesSpan.End()
				return CenterResult{}, err
			}
			fallbacks++
		default:
			axesSpan.End()
			return CenterResult{}, fmt.Errorf("%w: axis %d interval", ErrSelectionFailed, axis)
		}
		// Î = the chosen interval extended by p on each side; its center is
		// the chosen interval's midpoint.
		boxCenterRot[axis] = (float64(j) + 0.5) * pLen
	}
	axesSpan.Count("axes", int64(d))
	axesSpan.Count("fallback_axes", int64(fallbacks))
	axesSpan.End()

	// Step 10: C = bounding sphere of the box with side 3p around the
	// chosen center (data-independent radius).
	center := basis.TMulVec(boxCenterRot)
	rc := 1.5 * pLen * math.Sqrt(float64(d))

	// Step 11: noisy average of the points captured by C — straight off the
	// frame's rows, no gathered slice. One noisy denominator draw plus one
	// noise draw per coordinate.
	_, avgSpan := obs.StartSpan(prm.Ctx, "noisy_average")
	avg, err := dp.NoisyAverageRows(rng, points, sel.Members, center, rc, quarter)
	avgSpan.Count("noise_draws", int64(d)+1)
	avgSpan.End()
	if err != nil {
		return CenterResult{}, err
	}
	if avg.Aborted {
		return CenterResult{}, fmt.Errorf("%w: noisy average aborted", ErrSelectionFailed)
	}
	return CenterResult{
		Center:       avg.Average,
		Radius:       prm.Profile.OutRadiusFactor * r * math.Sqrt(float64(kOut)),
		K:            kOut,
		Repetitions:  reps,
		BoxCount:     m,
		FallbackAxes: fallbacks,
	}, nil
}

// axisNoisyMax selects an interval index by report-noisy-max over the
// occupied intervals of the axis histogram. Intervals are scored in sorted
// key order so the noise draws don't depend on Go's randomized map
// iteration (which would make seeded runs irreproducible).
func axisNoisyMax(rng *rand.Rand, hist map[int64]int, eps float64) (int64, error) {
	keys := make([]int64, 0, len(hist))
	for j := range hist {
		keys = append(keys, j)
	}
	slices.Sort(keys)
	scores := make([]float64, len(keys))
	for i, j := range keys {
		scores[i] = float64(hist[j])
	}
	idx, err := dp.ReportNoisyMax(rng, scores, 1, eps)
	if err != nil {
		return 0, err
	}
	return keys[idx], nil
}
