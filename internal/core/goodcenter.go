package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"slices"

	"privcluster/internal/dp"
	"privcluster/internal/jl"
	"privcluster/internal/noise"
	"privcluster/internal/stability"
	"privcluster/internal/svt"
	"privcluster/internal/vec"
)

// CenterResult is the outcome of Algorithm GoodCenter.
type CenterResult struct {
	// Center is the released point ŷ; with probability ≥ 1−β the ball of
	// the returned Radius around it contains ≥ t − O((1/ε)·log(n/β)) input
	// points (Lemma 3.7).
	Center vec.Vector
	// Radius is the guaranteed covering radius, OutRadiusFactor·r·√k.
	Radius float64
	// K is the projection dimension actually used.
	K int
	// Repetitions is how many random partitions were tried before
	// AboveThreshold fired.
	Repetitions int
	// BoxCount is the (non-private, diagnostic) number of points mapped to
	// the chosen box.
	BoxCount int
	// FallbackAxes counts axes resolved by the report-noisy-max fallback.
	FallbackAxes int
}

// Sentinel errors for the failure modes Lemma 3.7's hypotheses exclude.
var (
	// ErrNoCluster: AboveThreshold never fired — no random partition put
	// ≈ t projected points in one box.
	ErrNoCluster = errors.New("core: GoodCenter found no heavy box (is there a radius-r ball with t points?)")
	// ErrSelectionFailed: a stability-based choice returned ⊥.
	ErrSelectionFailed = errors.New("core: private selection returned bottom")
)

// GoodCenter implements Algorithm 2. Given a radius r such that some ball of
// radius r contains ≥ t input points, it privately releases a center ŷ whose
// O(r√k)-ball captures ≈ t points, spending the (ε, δ) in prm.Privacy:
// ε/4 on AboveThreshold, (ε/4, δ/4) on the box choice, (ε/4, δ/4) across
// the d per-axis choices, and (ε/4, δ/4) on NoisyAVG (Lemma 4.11).
func GoodCenter(rng *rand.Rand, points []vec.Vector, r float64, prm Params) (CenterResult, error) {
	prm.setDefaults()
	n := len(points)
	if err := prm.Validate(n); err != nil {
		return CenterResult{}, err
	}
	if r <= 0 {
		// A zero radius (GoodRadius's duplicate-cluster case) degenerates
		// the box partition; the smallest positive grid radius is the
		// correct resolution at which to hunt for the duplicates.
		r = prm.Grid.RadiusUnit()
	}
	d := prm.Grid.Dim
	if points[0].Dim() != d {
		return CenterResult{}, fmt.Errorf("core: points have dimension %d, grid says %d", points[0].Dim(), d)
	}
	t := prm.T
	eps := prm.Privacy.Epsilon
	delta := prm.Privacy.Delta
	quarter := dp.Params{Epsilon: eps / 4, Delta: delta / 4}
	beta := prm.Beta

	// Step 1: JL projection to k dimensions (identity when k ≥ d).
	k := jl.TargetDim(n, prm.Profile.JLEta, beta)
	if c := prm.Profile.JLDimCap; c > 0 && k > c {
		k = c
	}
	transform, err := jl.NewTransform(rng, d, k)
	if err != nil {
		return CenterResult{}, err
	}
	kOut := transform.OutDim()
	proj := transform.ApplyAll(points)

	// Steps 2–6: resample randomly shifted box partitions of R^k until
	// AboveThreshold certifies that some box holds ≈ t projected points.
	// The projected cluster has radius ≤ 3r (JL distortion with η = 1/2).
	boxSide := prm.Profile.BoxSideFactor * 3 * r
	threshold := float64(t) - prm.Profile.ThresholdSlackFactor/eps*math.Log(2*float64(n)/beta)
	at, err := svt.New(rng, threshold, eps/4)
	if err != nil {
		return CenterResult{}, err
	}
	maxReps := prm.Profile.MaxRepetitions
	if maxReps <= 0 {
		maxReps = int(math.Ceil(2 * float64(n) * math.Log(1/beta) / beta))
	}

	var hist map[string]int
	fired := false
	reps := 0
	offsets := make([]float64, kOut)
	for rep := 0; rep < maxReps && !fired; rep++ {
		reps++
		for i := range offsets {
			offsets[i] = noise.Uniform(rng, 0, boxSide)
		}
		hist = boxHistogram(proj, offsets, boxSide)
		q := 0
		for _, c := range hist {
			if c > q {
				q = c
			}
		}
		fired, err = at.Query(float64(q))
		if err != nil {
			return CenterResult{}, err
		}
	}
	if !fired {
		return CenterResult{}, fmt.Errorf("%w after %d repetitions", ErrNoCluster, reps)
	}

	// Step 7: privately choose the heavy box of the successful partition
	// and collect the input points mapped into it.
	boxRes, err := stability.Choose(rng, hist, stability.Params{Epsilon: quarter.Epsilon, Delta: quarter.Delta})
	if err != nil {
		return CenterResult{}, err
	}
	if boxRes.Bottom {
		return CenterResult{}, fmt.Errorf("%w: box selection", ErrSelectionFailed)
	}
	var cluster []vec.Vector
	for i, p := range proj {
		if boxKey(p, offsets, boxSide) == boxRes.Key {
			cluster = append(cluster, points[i])
		}
	}
	if len(cluster) == 0 {
		return CenterResult{}, fmt.Errorf("%w: chosen box is empty", ErrSelectionFailed)
	}

	// Steps 8–9: random rotation of R^d, then a private per-axis interval
	// choice to pin the cluster into a box of diameter O(r·√(k·log(dn/β))).
	basis, err := jl.RandomBasis(rng, d)
	if err != nil {
		return CenterResult{}, err
	}
	rotated := make([]vec.Vector, len(cluster))
	for i, x := range cluster {
		rotated[i] = basis.MulVec(x)
	}
	axisScale := float64(kOut) / float64(d)
	if prm.Profile.UseAxisLogTerm {
		axisScale *= math.Log(float64(d) * float64(n) / beta)
	}
	pLen := prm.Profile.AxisScaleFactor * r * math.Sqrt(axisScale)
	epsAxis := eps / (10 * math.Sqrt(float64(d)*math.Log(8/delta)))
	deltaAxis := delta / (8 * float64(d))

	fallbacks := 0
	boxCenterRot := make(vec.Vector, d)
	for axis := 0; axis < d; axis++ {
		axisHist := make(map[int64]int, len(rotated))
		for _, x := range rotated {
			axisHist[int64(math.Floor(x[axis]/pLen))]++
		}
		res, err := stability.Choose(rng, axisHist, stability.Params{Epsilon: epsAxis, Delta: deltaAxis})
		if err != nil {
			return CenterResult{}, err
		}
		var j int64
		switch {
		case !res.Bottom:
			j = res.Key
		case prm.Profile.AxisFallback:
			// Practical fallback: report-noisy-max restricted to occupied
			// intervals. This keeps the ε accounting of the stability
			// choice but forgoes its δ-absorbing release threshold (the
			// threshold is what returned ⊥); see the Profile.AxisFallback
			// doc for the trade-off. Enumerating all data-independent
			// intervals instead drowns the signal: at per-axis ε ≈ ε/(10√d)
			// the Θ(√d/p) empty intervals win the noisy argmax almost
			// surely.
			j, err = axisNoisyMax(rng, axisHist, epsAxis)
			if err != nil {
				return CenterResult{}, err
			}
			fallbacks++
		default:
			return CenterResult{}, fmt.Errorf("%w: axis %d interval", ErrSelectionFailed, axis)
		}
		// Î = the chosen interval extended by p on each side; its center is
		// the chosen interval's midpoint.
		boxCenterRot[axis] = (float64(j) + 0.5) * pLen
	}

	// Step 10: C = bounding sphere of the box with side 3p around the
	// chosen center (data-independent radius).
	center := basis.TMulVec(boxCenterRot)
	rc := 1.5 * pLen * math.Sqrt(float64(d))

	// Step 11: noisy average of the points captured by C.
	avg, err := dp.NoisyAverage(rng, cluster, center, rc, quarter)
	if err != nil {
		return CenterResult{}, err
	}
	if avg.Aborted {
		return CenterResult{}, fmt.Errorf("%w: noisy average aborted", ErrSelectionFailed)
	}
	return CenterResult{
		Center:       avg.Average,
		Radius:       prm.Profile.OutRadiusFactor * r * math.Sqrt(float64(kOut)),
		K:            kOut,
		Repetitions:  reps,
		BoxCount:     len(cluster),
		FallbackAxes: fallbacks,
	}, nil
}

// boxKey returns the box index of a projected point under the given shifted
// partition, encoded as a comparable string.
func boxKey(p vec.Vector, offsets []float64, side float64) string {
	buf := make([]byte, 0, len(p)*8)
	for i, x := range p {
		j := int64(math.Floor((x - offsets[i]) / side))
		for b := 0; b < 8; b++ {
			buf = append(buf, byte(uint64(j)>>(8*b)))
		}
	}
	return string(buf)
}

// boxHistogram counts projected points per box.
func boxHistogram(proj []vec.Vector, offsets []float64, side float64) map[string]int {
	h := make(map[string]int, len(proj))
	for _, p := range proj {
		h[boxKey(p, offsets, side)]++
	}
	return h
}

// axisNoisyMax selects an interval index by report-noisy-max over the
// occupied intervals of the axis histogram. Intervals are scored in sorted
// key order so the noise draws don't depend on Go's randomized map
// iteration (which would make seeded runs irreproducible).
func axisNoisyMax(rng *rand.Rand, hist map[int64]int, eps float64) (int64, error) {
	keys := make([]int64, 0, len(hist))
	for j := range hist {
		keys = append(keys, j)
	}
	slices.Sort(keys)
	scores := make([]float64, len(keys))
	for i, j := range keys {
		scores[i] = float64(hist[j])
	}
	idx, err := dp.ReportNoisyMax(rng, scores, 1, eps)
	if err != nil {
		return 0, err
	}
	return keys[idx], nil
}
