package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"privcluster/internal/dp"
	"privcluster/internal/geometry"
	"privcluster/internal/vec"
	"privcluster/internal/workload"
)

// TestRadiusQualityQuasiConcave is the structural invariant GoodRadius's
// correctness rests on (Lemma 4.6): the searched score
// Q(r) = ½·min{t − L(r/2), L(r) − t + 4Γ} must be quasi-concave over the
// radius grid for any dataset, because L is monotone. Verified on random
// planted datasets via the step-function's own checker.
func TestRadiusQualityQuasiConcave(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 15; trial++ {
		d := 1 + rng.Intn(3)
		grid, err := geometry.NewGrid(int64(64+rng.Intn(2048)), d)
		if err != nil {
			t.Fatal(err)
		}
		n := 40 + rng.Intn(80)
		inst, err := workload.PlantedBall{
			N:           n,
			ClusterSize: rng.Intn(n),
			Radius:      0.01 + 0.2*rng.Float64(),
		}.Generate(rng, grid)
		if err != nil {
			t.Fatal(err)
		}
		ix, err := geometry.NewDistanceIndex(inst.Points)
		if err != nil {
			t.Fatal(err)
		}
		tt := 2 + rng.Intn(n-2)
		ls, err := ix.BuildLStep(context.Background(), tt)
		if err != nil {
			t.Fatal(err)
		}
		gamma := float64(tt) / 6
		q, err := buildRadiusQuality(ls, grid, tt, gamma)
		if err != nil {
			t.Fatal(err)
		}
		if !q.IsQuasiConcave() {
			t.Fatalf("trial %d: Q(r) not quasi-concave (n=%d t=%d d=%d)", trial, n, tt, d)
		}
	}
}

// TestRadiusQualityValuesMatchDefinition spot-checks the materialized step
// function against the direct formula at random grid radii.
func TestRadiusQualityValuesMatchDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	grid, err := geometry.NewGrid(512, 2)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := workload.PlantedBall{N: 80, ClusterSize: 50, Radius: 0.05}.Generate(rng, grid)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := geometry.NewDistanceIndex(inst.Points)
	if err != nil {
		t.Fatal(err)
	}
	const tt = 40
	ls, err := ix.BuildLStep(context.Background(), tt)
	if err != nil {
		t.Fatal(err)
	}
	gamma := 10.0
	q, err := buildRadiusQuality(ls, grid, tt, gamma)
	if err != nil {
		t.Fatal(err)
	}
	u := grid.RadiusUnit()
	for trial := 0; trial < 500; trial++ {
		k := int64(rng.Intn(int(q.N())))
		r := float64(k) * u
		want := 0.5 * math.Min(float64(tt)-ls.Eval(r/2), ls.Eval(r)-float64(tt)+4*gamma)
		if got := q.Eval(k); math.Abs(got-want) > 1e-9 {
			t.Fatalf("Q(%d) = %v, want %v", k, got, want)
		}
	}
}

// TestRadiusQualityPromiseHolds verifies the Lemma 4.6 existence argument:
// when L(0) < t − 2Γ, some grid radius has Q(r) ≥ Γ.
func TestRadiusQualityPromiseHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	grid, err := geometry.NewGrid(1024, 2)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		inst, err := workload.PlantedBall{N: 200, ClusterSize: 140, Radius: 0.03}.Generate(rng, grid)
		if err != nil {
			t.Fatal(err)
		}
		ix, err := geometry.NewDistanceIndex(inst.Points)
		if err != nil {
			t.Fatal(err)
		}
		const tt = 120
		gamma := float64(tt) / 6
		ls, err := ix.BuildLStep(context.Background(), tt)
		if err != nil {
			t.Fatal(err)
		}
		if ls.Eval(0) >= float64(tt)-2*gamma {
			continue // zero-cluster branch; promise argument does not apply
		}
		q, err := buildRadiusQuality(ls, grid, tt, gamma)
		if err != nil {
			t.Fatal(err)
		}
		if q.Max() < gamma {
			t.Fatalf("trial %d: max Q = %v < Γ = %v", trial, q.Max(), gamma)
		}
	}
}

// TestPipelineBudgetAccounting walks the pipeline's internal budget plan
// through a dp.Accountant and asserts it never exceeds the advertised
// (ε, δ): GoodRadius gets (ε/2 split between the Laplace test and
// RecConcave) and GoodCenter four quarters (Lemma 4.11's split).
func TestPipelineBudgetAccounting(t *testing.T) {
	total := dp.Params{Epsilon: 2, Delta: 0.05}
	acct, err := dp.NewAccountant(total)
	if err != nil {
		t.Fatal(err)
	}
	half := total.Scale(0.5)
	// GoodRadius: Laplace step (ε/2 of its half, pure) + RecConcave
	// ((ε/2, δ) of its half).
	if err := acct.Spend(dp.Params{Epsilon: half.Epsilon / 2}); err != nil {
		t.Fatal(err)
	}
	if err := acct.Spend(dp.Params{Epsilon: half.Epsilon / 2, Delta: half.Delta}); err != nil {
		t.Fatal(err)
	}
	// GoodCenter: AboveThreshold (ε/4, 0) + box choice (ε/4, δ/4) + axis
	// selections (ε/4, δ/4 total) + NoisyAVG (ε/4, δ/4).
	quarter := dp.Params{Epsilon: half.Epsilon / 4, Delta: half.Delta / 4}
	if err := acct.Spend(dp.Params{Epsilon: quarter.Epsilon}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := acct.Spend(quarter); err != nil {
			t.Fatal(err)
		}
	}
	rem := acct.Remaining()
	if rem.Epsilon < 0 || rem.Delta < 0 {
		t.Fatalf("pipeline over budget: remaining %+v", rem)
	}
}

// TestPaperProfileGammaRequiresHugeT: with the paper's uncapped Γ,
// Theorem 3.2's hypothesis t ≥ Ω(Γ) fails at laptop scale, and GoodRadius
// must degrade gracefully: every input either halts at the radius-zero
// branch or reports a promise failure, never panics.
func TestPaperProfileGammaRequiresHugeT(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	grid, err := geometry.NewGrid(1024, 2)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := workload.PlantedBall{N: 200, ClusterSize: 140, Radius: 0.03}.Generate(rng, grid)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := geometry.NewDistanceIndex(inst.Points)
	if err != nil {
		t.Fatal(err)
	}
	prm := Params{
		T:       120,
		Privacy: dp.Params{Epsilon: 2, Delta: 0.05},
		Beta:    0.1,
		Grid:    grid,
		Profile: PaperProfile(),
	}
	res, err := GoodRadius(rng, ix, prm)
	// With Γ ≈ 10^7 ≫ t the zero test t − 2Γ − … is deeply negative, so
	// Step 2 fires (any noisy L(0) ≥ 1 clears it) — the graceful paper-
	// profile outcome at toy scale.
	if err != nil {
		t.Fatalf("paper profile errored instead of degrading: %v", err)
	}
	if !res.ZeroCluster {
		t.Errorf("expected the radius-zero branch under paper Γ, got %+v", res)
	}
}

// TestGoodRadiusMonotoneInT: with everything else fixed, a larger target t
// cannot shrink the returned radius much below the smaller target's (the
// optimal radius is monotone in t). Sanity rather than theorem.
func TestGoodRadiusMonotoneInT(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	grid, err := geometry.NewGrid(1024, 2)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := workload.PlantedBall{N: 600, ClusterSize: 450, Radius: 0.02}.Generate(rng, grid)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := geometry.NewDistanceIndex(inst.Points)
	if err != nil {
		t.Fatal(err)
	}
	radiusAt := func(tt int) float64 {
		prm := Params{T: tt, Privacy: dp.Params{Epsilon: 4, Delta: 0.05}, Beta: 0.1, Grid: grid}
		res, err := GoodRadius(rng, ix, prm)
		if err != nil {
			t.Fatalf("t=%d: %v", tt, err)
		}
		return res.Radius
	}
	small := radiusAt(200)
	big := radiusAt(560) // must reach into the background
	if big < small/4 {
		t.Errorf("radius shrank with larger t: r(200)=%v, r(560)=%v", small, big)
	}
}

// TestOneClusterAllDuplicatesEndToEnd covers the full pipeline on the
// degenerate radius-zero dataset.
func TestOneClusterAllDuplicatesEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	grid, err := geometry.NewGrid(1024, 2)
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]vec.Vector, 600)
	dup := grid.Quantize(vec.Of(0.3, 0.7))
	for i := range pts {
		pts[i] = dup
	}
	prm := Params{T: 500, Privacy: dp.Params{Epsilon: 4, Delta: 0.05}, Beta: 0.1, Grid: grid}
	res, err := OneCluster(rng, pts, prm)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ZeroCluster {
		t.Error("zero cluster not detected")
	}
	if !res.Ball.Contains(dup) {
		t.Errorf("released ball (c=%v r=%v) misses the duplicated point %v",
			res.Ball.Center, res.Ball.Radius, dup)
	}
}
