package core

import (
	"fmt"
	"math/rand"
	"sort"

	"privcluster/internal/dp"
	"privcluster/internal/recconcave"
	"privcluster/internal/vec"
)

// IntPointResult is the outcome of Algorithm IntPoint.
type IntPointResult struct {
	// Point is the released value; with probability ≥ 1−2β it is an
	// interior point of the input: min(S) ≤ Point ≤ max(S) (Theorem 5.3).
	Point float64
	// FromZeroRadius marks the shortcut where the 1-cluster stage returned
	// a radius-zero interval.
	FromZeroRadius bool
}

// IntPointParams configures the reduction.
type IntPointParams struct {
	// InnerN is the size n of the middle sub-database handed to the
	// 1-cluster algorithm; the remaining (m−n)/2 points on each side supply
	// the quality promise. Must satisfy InnerN < m.
	InnerN int
	// Cluster configures the inner 1-cluster run (its Grid must be 1-D and
	// T ≤ InnerN).
	Cluster Params
	// Privacy is the budget of the final RecConcave selection; the total
	// guarantee is the (2ε, 2δ)-style composition of Theorem 5.3.
	Privacy dp.Params
	Beta    float64
	// WidthFactor is the w of the reduction: I is split into intervals of
	// length r/w (Algorithm 3 Step 3). Defaults to 8.
	WidthFactor int
}

// IntPointMiddleSorted returns Algorithm 3 Step 1's sub-database — the
// middle innerN entries of the (already sorted) values, as 1-D vectors.
// Exported so the public API, which keeps a handle's 1-D values sorted,
// can run the same feasibility pre-flight on exactly the points the
// 1-cluster stage will see — before any budget is spent — without paying
// a fresh copy and sort per query.
func IntPointMiddleSorted(sorted []float64, innerN int) []vec.Vector {
	lo := (len(sorted) - innerN) / 2
	middle := sorted[lo : lo+innerN]
	pts := make([]vec.Vector, len(middle))
	for i, v := range middle {
		pts[i] = vec.Vector{v}
	}
	return pts
}

// IntPoint implements Algorithm 3 (Section 5): it solves the interior-point
// problem on X via any solver for the 1-cluster problem, the reduction that
// transfers the Bun et al. lower bound (n = Ω(log*|X|)) to 1-cluster.
//
// Values are 1-D points in [0, 1] (the grid's unit interval).
func IntPoint(rng *rand.Rand, values []float64, prm IntPointParams) (IntPointResult, error) {
	m := len(values)
	if prm.WidthFactor <= 0 {
		prm.WidthFactor = 8
	}
	if prm.Beta == 0 {
		prm.Beta = 0.1
	}
	if prm.InnerN <= 0 || prm.InnerN >= m {
		return IntPointResult{}, fmt.Errorf("core: IntPoint needs 0 < InnerN < m, got %d/%d", prm.InnerN, m)
	}
	if prm.Cluster.Grid.Dim != 1 {
		return IntPointResult{}, fmt.Errorf("core: IntPoint requires a 1-D grid, got dim %d", prm.Cluster.Grid.Dim)
	}
	if err := prm.Privacy.Validate(); err != nil {
		return IntPointResult{}, err
	}

	// Step 1: D = the middle n entries of sorted S. The sorted copy is kept
	// for Step 4's quality counts.
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	pts := IntPointMiddleSorted(sorted, prm.InnerN)

	// Step 2: run the 1-cluster algorithm on D.
	res, err := OneCluster(rng, pts, prm.Cluster)
	if err != nil {
		return IntPointResult{}, fmt.Errorf("core: IntPoint cluster stage: %w", err)
	}
	c := res.Ball.Center[0]
	r := res.Ball.Radius
	if res.ZeroCluster || r == 0 {
		return IntPointResult{Point: c, FromZeroRadius: true}, nil
	}

	// Step 3: J = edge points of the partition of I = [c−r, c+r] into
	// intervals of length r/w.
	w := prm.WidthFactor
	step := r / float64(w)
	edges := make([]float64, 0, 2*w+1)
	for i := 0; i <= 2*w; i++ {
		edges = append(edges, c-r+float64(i)*step)
	}

	// Step 4: choose j ∈ J via RecConcave with quality
	// q(S, a) = min(#{x ≤ a}, #{x ≥ a}) and promise (m−n)/2.
	quality := make([]float64, len(edges))
	for i, a := range edges {
		le := sort.SearchFloat64s(sorted, a)
		// #{x ≤ a}: extend over ties.
		for le < m && sorted[le] <= a {
			le++
		}
		ge := m - sort.SearchFloat64s(sorted, a)
		quality[i] = float64(min(le, ge))
	}
	q, err := recconcave.FromValues(quality)
	if err != nil {
		return IntPointResult{}, err
	}
	promise := float64(m-prm.InnerN) / 2
	idx, err := recconcave.Solve(rng, q, promise, recconcave.Options{
		Alpha:   0.5,
		Beta:    prm.Beta,
		Privacy: prm.Privacy,
		Ctx:     prm.Cluster.Ctx,
	})
	if err != nil {
		return IntPointResult{}, fmt.Errorf("core: IntPoint selection: %w", err)
	}
	return IntPointResult{Point: edges[idx]}, nil
}
