package core

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"privcluster/internal/stability"
	"privcluster/internal/vec"
)

// PackingPolicy selects how GoodCenter's box-partition engine encodes the
// per-axis cell indices of a projected point into a histogram key. The
// choice never affects which box a point lands in (the partition of R^k is
// the same shifted grid in every mode) — only the key representation, and
// with it the allocation profile of the n-point count pass that runs once
// per SVT repetition.
type PackingPolicy int

const (
	// PackAuto (the default) bit-packs the per-axis cell indices into one
	// uint64 when their combined bit budget fits, and falls back to
	// hash-combined keys beyond — mirroring geometry.CellIndex's cell-hash
	// scheme of keying occupied cells by their integer coordinates.
	PackAuto PackingPolicy = iota
	// PackBits requests bit-packing; partitions whose index ranges cannot
	// fit 64 bits fall back to hashing, exactly as PackAuto would.
	PackBits
	// PackHash forces hash-combined keys (one mixed uint64 per point).
	// Distinct cells collide with probability ≈ (#occupied boxes)²/2⁶⁴;
	// a collision merges two boxes, which coarsens the partition by a
	// data-independent rule and therefore costs utility, never privacy.
	PackHash
	// PackLegacy keeps the original allocation-heavy string keys (8·k bytes
	// built per point per repetition). Retained as the reference backend the
	// equivalence tests pin the packed engines against, and as the
	// benchmark baseline.
	PackLegacy
)

// minParallelPoints is the smallest input for which the per-repetition
// count pass fans out over the worker pool; below it goroutine overhead
// dominates the O(n·k) key computation.
const minParallelPoints = 2048

// boxSelection is the outcome of boxPartition.selectBox.
type boxSelection struct {
	// Members are the indices (into the projected point slice) of the
	// points mapped to the chosen box.
	Members []int
	// Bottom is true when the stability choice released no box.
	Bottom bool
}

// boxPartition is GoodCenter's partition engine: partition recounts the
// shifted-grid histogram for one SVT repetition (reusing every buffer), and
// selectBox privately releases a heavy box of the latest partition.
type boxPartition interface {
	// partition assigns every projected point to its box under the given
	// per-axis offsets and returns the maximum box count — the only value
	// AboveThreshold ever sees, which is why the count pass may fan out
	// over worker goroutines without touching the privacy analysis.
	partition(offsets []float64) int
	// selectBox runs the stability-based choice over the latest partition's
	// histogram, enumerating boxes in canonical cell-coordinate order so
	// the released box is independent of the key representation.
	selectBox(rng *rand.Rand, p stability.Params) (boxSelection, error)
}

// newBoxPartition builds the engine for the given projected points (a flat
// frame, float64), box side, and profile (Workers bounds the pool, 0 =
// GOMAXPROCS; Packing selects the key encoding). sc, when non-nil, lends the
// packed engines their key/histogram buffers (the legacy string engine
// allocates its own — it exists as the allocation-heavy reference).
func newBoxPartition(proj *vec.Frame, side float64, prof Profile, sc *QueryScratch) (boxPartition, error) {
	if proj == nil || proj.N() == 0 {
		return nil, ErrNoData
	}
	workers := prof.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	switch prof.Packing {
	case PackLegacy:
		return newBoxEngine[string](proj, side, workers, stringCoder{side: side}, nil), nil
	case PackHash:
		return newBoxEngine[uint64](proj, side, workers, &hashCoder{side: side}, sc), nil
	case PackAuto, PackBits:
		if c, ok := newBitsCoder(proj, side); ok {
			return newBoxEngine[uint64](proj, side, workers, c, sc), nil
		}
		return newBoxEngine[uint64](proj, side, workers, &hashCoder{side: side}, sc), nil
	default:
		return nil, fmt.Errorf("core: unknown packing policy %d", prof.Packing)
	}
}

// boxCoder encodes one projected point's box into a comparable key.
// prepare runs once per repetition (before any concurrent key calls) so a
// coder may derive per-repetition state from the offsets.
type boxCoder[K comparable] interface {
	prepare(offsets []float64)
	key(p vec.Vector, offsets []float64) K
}

// bitsCoder packs the per-axis cell indices into disjoint bit fields of one
// uint64. Feasibility is decided once from the data's per-axis bounding box:
// the index of axis a, rebased to the axis minimum, needs
// ⌈log₂(span_a/side + 2)⌉ bits for every possible offset shift.
type bitsCoder struct {
	side  float64
	minC  []float64
	shift []uint
	base  []int64 // per-repetition rebase, set by prepare
}

func newBitsCoder(proj *vec.Frame, side float64) (*bitsCoder, bool) {
	k := proj.Dim()
	minC := make([]float64, k)
	maxC := make([]float64, k)
	copy(minC, proj.Row(0))
	copy(maxC, proj.Row(0))
	for i := 1; i < proj.N(); i++ {
		for a, x := range proj.Row(i) {
			if x < minC[a] {
				minC[a] = x
			}
			if x > maxC[a] {
				maxC[a] = x
			}
		}
	}
	shift := make([]uint, k)
	var total uint
	for a := 0; a < k; a++ {
		cells := math.Floor((maxC[a]-minC[a])/side) + 2
		if !(cells < float64(uint64(1)<<62)) { // NaN/Inf-safe overflow guard
			return nil, false
		}
		b := uint(bits.Len64(uint64(cells) - 1))
		if b == 0 {
			b = 1
		}
		shift[a] = total
		total += b
		if total > 64 {
			return nil, false
		}
	}
	return &bitsCoder{side: side, minC: minC, shift: shift, base: make([]int64, k)}, true
}

func (c *bitsCoder) prepare(offsets []float64) {
	for a := range c.base {
		c.base[a] = int64(math.Floor((c.minC[a] - offsets[a]) / c.side))
	}
}

func (c *bitsCoder) key(p vec.Vector, offsets []float64) uint64 {
	var key uint64
	for a, x := range p {
		idx := int64(math.Floor((x-offsets[a])/c.side)) - c.base[a]
		key |= uint64(idx) << c.shift[a]
	}
	return key
}

// hashCoder mixes the per-axis cell indices into one uint64 with a
// splitmix64-style combine — the fallback when the indices cannot be
// bit-packed (k·bits > 64).
type hashCoder struct{ side float64 }

func (hashCoder) prepare([]float64) {}

func (c *hashCoder) key(p vec.Vector, offsets []float64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for a, x := range p {
		j := uint64(int64(math.Floor((x - offsets[a]) / c.side)))
		h = mix64(h ^ j)
	}
	return h
}

// mix64 is the splitmix64 finalizer: a bijective avalanche over uint64.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// stringCoder is the legacy 8·k-byte string encoding.
type stringCoder struct{ side float64 }

func (stringCoder) prepare([]float64) {}

func (c stringCoder) key(p vec.Vector, offsets []float64) string {
	return boxKey(p, offsets, c.side)
}

// boxEngine is the shared partition machinery, generic over the key type.
// All per-repetition state (keys, the global histogram, the per-worker
// partial histograms) is allocated once and reused across the up-to-
// MaxRepetitions SVT passes — the allocation profile the packed keys exist
// for. When a QueryScratch is attached (uint64 keys only), those buffers are
// borrowed from it instead, so repeated queries reuse them across engines.
type boxEngine[K comparable] struct {
	proj    *vec.Frame
	side    float64
	workers int
	coder   boxCoder[K]
	sc      *QueryScratch // nil unless lent by newBoxEngine

	offsets []float64   // offsets of the latest partition (for decoding)
	keys    []K         // per-point box key of the latest partition
	hist    map[K]int   // global histogram, cleared per repetition
	locals  []map[K]int // per-worker partial histograms
}

func newBoxEngine[K comparable](proj *vec.Frame, side float64, workers int, coder boxCoder[K], sc *QueryScratch) *boxEngine[K] {
	n := proj.N()
	e := &boxEngine[K]{
		proj:    proj,
		side:    side,
		workers: workers,
		coder:   coder,
		offsets: make([]float64, proj.Dim()),
	}
	if sc != nil {
		// Borrow the uint64 buffers from the scratch. The type switch is
		// resolved at instantiation; string engines fall through to fresh
		// allocations below.
		if kp, ok := any(&e.keys).(*[]uint64); ok {
			e.sc = sc
			if cap(sc.keys) < n {
				sc.keys = make([]uint64, n)
			}
			*kp = sc.keys[:n]
			if sc.hist == nil {
				sc.hist = make(map[uint64]int, 64)
			}
			*any(&e.hist).(*map[uint64]int) = sc.hist
			if workers > 1 {
				for len(sc.locals) < workers {
					sc.locals = append(sc.locals, make(map[uint64]int, 64))
				}
				*any(&e.locals).(*[]map[uint64]int) = sc.locals[:workers]
			}
		}
	}
	if e.keys == nil {
		e.keys = make([]K, n)
	}
	if e.hist == nil {
		e.hist = make(map[K]int, 64)
	}
	if workers > 1 && e.locals == nil {
		e.locals = make([]map[K]int, workers)
		for w := range e.locals {
			e.locals[w] = make(map[K]int, 64)
		}
	}
	return e
}

func (e *boxEngine[K]) partition(offsets []float64) int {
	copy(e.offsets, offsets)
	e.coder.prepare(e.offsets)
	n := e.proj.N()
	clear(e.hist)
	if e.workers > 1 && n >= minParallelPoints {
		chunk := (n + e.workers - 1) / e.workers
		var wg sync.WaitGroup
		used := 0
		for w := 0; w < e.workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				break
			}
			used++
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				local := e.locals[w]
				clear(local)
				for i := lo; i < hi; i++ {
					k := e.coder.key(e.proj.Row(i), e.offsets)
					e.keys[i] = k
					local[k]++
				}
			}(w, lo, hi)
		}
		wg.Wait()
		for w := 0; w < used; w++ {
			for k, c := range e.locals[w] {
				e.hist[k] += c
			}
		}
	} else {
		for i := 0; i < n; i++ {
			k := e.coder.key(e.proj.Row(i), e.offsets)
			e.keys[i] = k
			e.hist[k]++
		}
	}
	max := 0
	for _, c := range e.hist {
		if c > max {
			max = c
		}
	}
	return max
}

func (e *boxEngine[K]) selectBox(rng *rand.Rand, p stability.Params) (boxSelection, error) {
	nb := len(e.hist)
	if nb == 0 {
		return boxSelection{Bottom: true}, nil
	}
	// One representative point per distinct box, in first-seen order.
	reps := make([]int32, 0, nb)
	pos := make(map[K]struct{}, nb)
	for i, k := range e.keys {
		if _, seen := pos[k]; !seen {
			pos[k] = struct{}{}
			reps = append(reps, int32(i))
		}
	}
	// Canonical order: the representatives' decoded cell coordinates,
	// lexicographic with axis 0 most significant. This order is a pure
	// function of the partition geometry, so every key representation
	// enumerates the boxes — and consumes the selection noise — identically.
	k := len(e.offsets)
	coords := make([]int64, len(reps)*k)
	for b, ri := range reps {
		pt := e.proj.Row(int(ri))
		for a, x := range pt {
			coords[b*k+a] = int64(math.Floor((x - e.offsets[a]) / e.side))
		}
	}
	order := make([]int, len(reps))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		cx := coords[order[x]*k : order[x]*k+k]
		cy := coords[order[y]*k : order[y]*k+k]
		for a := 0; a < k; a++ {
			if cx[a] != cy[a] {
				return cx[a] < cy[a]
			}
		}
		return false
	})
	counts := make([]int, len(order))
	for oi, b := range order {
		counts[oi] = e.hist[e.keys[reps[b]]]
	}
	res, err := stability.ChooseIndexed(rng, counts, p)
	if err != nil || res.Bottom {
		return boxSelection{Bottom: true}, err
	}
	winKey := e.keys[reps[order[res.Key]]]
	var members []int
	if e.sc != nil {
		members = e.sc.members[:0]
	} else {
		members = make([]int, 0, counts[res.Key])
	}
	for i, key := range e.keys {
		if key == winKey {
			members = append(members, i)
		}
	}
	if e.sc != nil {
		// Keep the grown buffer for the next query; the returned slice stays
		// valid until then (one query per scratch at a time).
		e.sc.members = members
	}
	return boxSelection{Members: members}, nil
}

// ---- Legacy reference implementation -----------------------------------
//
// The original string-keyed partition, kept verbatim: PackLegacy routes the
// engine through boxKey, and the equivalence tests pin every packed backend
// to boxHistogram's grouping bit-exactly.

// boxKey returns the box index of a projected point under the given shifted
// partition, encoded as a comparable string.
func boxKey(p vec.Vector, offsets []float64, side float64) string {
	buf := make([]byte, 0, len(p)*8)
	for i, x := range p {
		j := int64(math.Floor((x - offsets[i]) / side))
		for b := 0; b < 8; b++ {
			buf = append(buf, byte(uint64(j)>>(8*b)))
		}
	}
	return string(buf)
}

// boxHistogram counts projected points per box.
func boxHistogram(proj []vec.Vector, offsets []float64, side float64) map[string]int {
	h := make(map[string]int, len(proj))
	for _, p := range proj {
		h[boxKey(p, offsets, side)]++
	}
	return h
}
