package core

import (
	"math/rand"
	"testing"

	"privcluster/internal/geometry"
	"privcluster/internal/vec"
)

func TestNewBallIndexPolicy(t *testing.T) {
	grid := testGrid(t, 1024, 2)
	small := []vec.Vector{vec.Of(0.1, 0.1), vec.Of(0.9, 0.9)}

	ix, err := NewBallIndex(nil, small, grid, IndexAuto, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ix.(*geometry.DistanceIndex); !ok {
		t.Errorf("auto policy on n=2 picked %T, want the exact index", ix)
	}
	ix, err = NewBallIndex(nil, small, grid, IndexScalable, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ix.(*geometry.CellIndex); !ok {
		t.Errorf("forced scalable policy picked %T", ix)
	}

	rng := rand.New(rand.NewSource(1))
	big := make([]vec.Vector, ExactIndexMaxN+1)
	for i := range big {
		big[i] = grid.Quantize(vec.Of(rng.Float64(), rng.Float64()))
	}
	ix, err = NewBallIndex(nil, big, grid, IndexAuto, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ix.(*geometry.CellIndex); !ok {
		t.Errorf("auto policy above the cutover picked %T, want the cell index", ix)
	}
	ix, err = NewBallIndex(nil, big, grid, IndexExact, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ix.(*geometry.DistanceIndex); !ok {
		t.Errorf("forced exact policy picked %T", ix)
	}

	if _, err := NewBallIndex(nil, small, grid, IndexPolicy(99), 0, 0); err == nil {
		t.Error("unknown policy accepted")
	}
}

// GoodRadius on the scalable backend, at a size where the exact index is no
// longer auto-selected: the Lemma 3.6 guarantees hold with the cell index's
// documented extra slack (ladder ratio √2 and center-rule inflation on top
// of the exact 4·r_opt bound).
func TestGoodRadiusScalableQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	grid := testGrid(t, 1<<16, 2)
	inst := plantedInstance(t, rng, grid, 6000, 4000, 0.02)
	ix, err := NewBallIndex(nil, inst.Points, grid, IndexScalable, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	cell, ok := ix.(*geometry.CellIndex)
	if !ok {
		t.Fatalf("scalable policy returned %T", ix)
	}
	prm := testParams(t, grid, 3000)

	_, twoApprox, err := cell.TwoApprox(prm.T)
	if err != nil {
		t.Fatal(err)
	}
	good := 0
	const trials = 8
	for i := 0; i < trials; i++ {
		res, err := GoodRadius(rng, cell, prm)
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		if res.ZeroCluster {
			t.Fatalf("trial %d: spurious zero cluster", i)
		}
		count := cell.MaxCountWithin(res.Radius)
		if count < prm.T-int(4*res.Gamma)-100 {
			t.Errorf("trial %d: best ball at r=%v holds %d points, want ≥ %d",
				i, res.Radius, count, prm.T-int(4*res.Gamma)-100)
			continue
		}
		// Exact bound 4·r_opt ≤ 4·twoApprox, widened by the ladder ratio
		// and the center-rule slack (each ≤ √2 here), plus grid rounding.
		if res.Radius > 8*twoApprox+2*grid.RadiusUnit() {
			t.Errorf("trial %d: radius %v > 8·%v", i, res.Radius, twoApprox)
			continue
		}
		good++
	}
	if good < trials-1 {
		t.Errorf("scalable GoodRadius met the widened Lemma 3.6 in only %d/%d trials", good, trials)
	}
}

// The full pipeline end to end on the scalable backend.
func TestOneClusterScalableEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	grid := testGrid(t, 1<<16, 2)
	inst := plantedInstance(t, rng, grid, 6000, 4000, 0.02)
	prm := testParams(t, grid, 3000)
	prm.Index = IndexScalable
	res, err := OneCluster(rng, inst.Points, prm)
	if err != nil {
		t.Fatal(err)
	}
	if res.ZeroCluster {
		t.Fatal("spurious zero cluster")
	}
	if got := res.Ball.Count(inst.Points); got < prm.T/2 {
		t.Errorf("released ball holds %d points, want ≥ %d", got, prm.T/2)
	}
	if !res.Ball.Contains(inst.TrueCenter) {
		t.Errorf("released ball (c=%v r=%v) misses the planted center %v",
			res.Ball.Center, res.Ball.Radius, inst.TrueCenter)
	}
}
