// Package core implements the paper's contribution: the differentially
// private 1-cluster algorithm of Theorem 3.2 — Algorithm GoodRadius
// (Section 4.1) composed with Algorithm GoodCenter (Section 4.3) — plus the
// two constructions built on top of it: the IntPoint lower-bound reduction
// (Algorithm 3, Section 5) and the k-ball covering heuristic of
// Observation 3.5.
package core

import (
	"context"
	"fmt"
	"math"

	"privcluster/internal/dp"
	"privcluster/internal/geometry"
	"privcluster/internal/recconcave"
	"privcluster/internal/stability"
)

// Profile carries the constant factors of the construction. The paper proves
// its guarantees with large explicit constants (interval length 300r, axis
// scale 900, output radius 451·r√k, …) that require astronomically large
// datasets before any signal survives the thresholds. PaperProfile uses
// those constants verbatim; DefaultProfile keeps every formula's *shape*
// (which is what the experiments verify) while shrinking the proof-slack
// constants to values at which n in the thousands produces signal.
//
// Crucially, none of these constants affect the privacy analysis — noise
// magnitudes depend only on (ε, δ) and on sensitivities, which are fixed.
// The constants trade off the failure probability β and the utility bounds.
type Profile struct {
	// GammaFraction scales GoodRadius's quality promise Γ: Γ is the paper
	// formula capped at GammaFraction·t. Γ enters the definition of the
	// searched score Q(r,S) = ½·min{t − L(r/2), L(r) − t + 4Γ} and the
	// cluster-size loss bound Δ = 4Γ; capping keeps the promise meaningful
	// when t ≪ the paper's (astronomical) requirement. 0 means "paper
	// formula uncapped".
	GammaFraction float64

	// JLEta is the distortion parameter η of Lemma 4.10 (paper: 1/2).
	JLEta float64
	// JLDimCap caps the projection dimension k (0 = no cap beyond k ≤ d).
	// The paper's k = Θ(log(n/β)) exceeds d for all small-d experiments, in
	// which case the transform is the identity regardless.
	JLDimCap int

	// BoxSideFactor is the side length of the randomly shifted boxes in R^k
	// as a multiple of the (projected) cluster radius 3r (paper: 100, i.e.
	// side 300r; per-axis capture probability 1 − 1/BoxSideFactor).
	BoxSideFactor float64
	// MaxRepetitions bounds the partition-resampling loop (paper:
	// 2n·log(1/β)/β).
	MaxRepetitions int
	// ThresholdSlackFactor: AboveThreshold is armed with threshold
	// t − ThresholdSlackFactor/ε·log(2n/β) (paper: 100).
	ThresholdSlackFactor float64

	// AxisScaleFactor: per-axis interval length p = AxisScaleFactor · r ·
	// sqrt(k·ln(dn/β)/d) (paper: 900).
	AxisScaleFactor float64
	// UseAxisLogTerm keeps the worst-case sqrt(ln(dn/β)) factor in the
	// per-axis interval length (paper: true). The practical profile drops
	// it: the factor guards the worst case of Lemma 4.9, and at toy scale
	// it inflates the intervals past the whole domain, which pollutes the
	// final average with background points.
	UseAxisLogTerm bool
	// AxisFallback enables a report-noisy-max fallback over the occupied
	// intervals when a per-axis stability choice returns ⊥. The paper's
	// analysis assumes the stability choice succeeds (which needs per-axis
	// counts above a Θ((√d/ε)·log(d/δ)) threshold); the fallback keeps the
	// implementation robust below that scale. It spends the same per-axis ε
	// but forgoes the stability threshold whose Laplace tail absorbs
	// newly-occupied bins into δ — a documented practical-profile trade-off
	// (DESIGN.md, Substitutions item 1).
	AxisFallback bool

	// OutRadiusFactor: the released ball radius is OutRadiusFactor·r·√k
	// (paper: 451).
	OutRadiusFactor float64

	// Workers bounds the worker pool of the parallel passes — GoodCenter's
	// per-repetition box-count pass and the scalable ball index's bulk
	// count passes. 0 means GOMAXPROCS. Parallelism never changes results:
	// the fanned-out passes are deterministic counts, and only their
	// final aggregates meet the private mechanisms.
	Workers int
	// Shards splits the scalable ball index into per-shard cell indexes
	// built in parallel and queried as exact partial sums (see
	// geometry.ShardedIndex). 0 means automatic: GOMAXPROCS shards at
	// n ≥ ShardAutoMinN, unsharded below. Like Workers, sharding never
	// changes results — per-shard counts compose by exact summation, so
	// releases are bit-identical to the unsharded index under the same
	// seed.
	Shards int
	// Packing selects GoodCenter's box-partition key engine (see
	// PackingPolicy; zero value PackAuto).
	Packing PackingPolicy
}

// PaperProfile returns the constants used by the paper's proofs.
func PaperProfile() Profile {
	return Profile{
		GammaFraction:        0, // uncapped paper Γ
		JLEta:                0.5,
		JLDimCap:             0,
		BoxSideFactor:        100,
		MaxRepetitions:       0, // paper formula
		ThresholdSlackFactor: 100,
		AxisScaleFactor:      900,
		UseAxisLogTerm:       true,
		AxisFallback:         false,
		OutRadiusFactor:      451,
	}
}

// DefaultProfile returns practical constants: identical formulas, smaller
// proof slack. See DESIGN.md, "Substitutions" item 1.
func DefaultProfile() Profile {
	return Profile{
		GammaFraction:        1.0 / 6,
		JLEta:                0.5,
		JLDimCap:             24,
		BoxSideFactor:        2,
		MaxRepetitions:       400,
		ThresholdSlackFactor: 8,
		AxisScaleFactor:      1.5,
		UseAxisLogTerm:       false,
		AxisFallback:         true,
		OutRadiusFactor:      5,
	}
}

// Params configures one run of the 1-cluster pipeline.
type Params struct {
	// T is the target cluster size (Definition 1.2).
	T int
	// Privacy is the total (ε, δ) budget of the pipeline; GoodRadius and
	// GoodCenter each receive half (Theorem 2.1).
	Privacy dp.Params
	// Beta is the failure-probability target.
	Beta float64
	// Grid is the discretized domain X^d.
	Grid geometry.Grid
	// Profile holds the constant factors; zero value means DefaultProfile.
	Profile Profile
	// Index selects the ball-index backend (zero value IndexAuto: exact up
	// to ExactIndexMaxN points, scalable beyond).
	Index IndexPolicy
	// Ctx, when non-nil, threads cancellation through the pipeline's
	// long-running inner loops: the index's bulk-count worker pools, the
	// SVT repetition loop of GoodCenter, the RecConcave recursion, and
	// KCover's rounds all check it and abort with ctx.Err(). nil means
	// "never cancel" — every pre-existing caller keeps its behavior.
	// Cancellation is a serving concern, not a privacy one: an aborted run
	// may already have drawn noise, so callers doing budget accounting must
	// treat it as spent.
	Ctx context.Context
	// Scratch, when non-nil, lends reusable buffers to GoodCenter's
	// per-query passes (see QueryScratch). It never changes releases — only
	// the allocation profile — and must not be shared by concurrent queries.
	Scratch *QueryScratch
}

// Context returns the params' context, normalizing nil to Background.
func (p *Params) Context() context.Context {
	if p.Ctx == nil {
		return context.Background()
	}
	return p.Ctx
}

// interrupted returns ctx.Err() of a non-nil Ctx; the pipeline's
// cancellation checkpoints are all `if err := prm.interrupted(); ...`.
func (p *Params) interrupted() error {
	if p.Ctx == nil {
		return nil
	}
	return p.Ctx.Err()
}

func (p *Params) setDefaults() {
	if p.Profile == (Profile{}) {
		p.Profile = DefaultProfile()
	}
	if p.Beta == 0 {
		p.Beta = 0.1
	}
}

// Validate checks the configuration for a dataset of n points.
func (p *Params) Validate(n int) error {
	if err := p.Privacy.Validate(); err != nil {
		return err
	}
	if p.Privacy.Delta <= 0 {
		return fmt.Errorf("core: the 1-cluster pipeline requires delta > 0")
	}
	if p.T < 1 || p.T > n {
		return fmt.Errorf("core: t=%d out of [1, n=%d]", p.T, n)
	}
	if p.Beta <= 0 || p.Beta >= 1 {
		return fmt.Errorf("core: beta=%v out of (0,1)", p.Beta)
	}
	if p.Grid.Size < 2 || p.Grid.Dim < 1 {
		return fmt.Errorf("core: invalid grid %+v", p.Grid)
	}
	return nil
}

// Gamma returns GoodRadius's quality promise Γ. The paper (Algorithm 1)
// defines
//
//	Γ = 8^{log*(2|X|√d)} · (144·log*(2|X|√d)/ε) · log(24·log*(2|X|√d)/(βδ)),
//
// which the profile optionally caps at GammaFraction·t so that the promise
// stays below the cluster size on practical inputs.
func (p *Params) Gamma() float64 {
	paper := p.paperGammaAt(p.Privacy)
	if p.Profile.GammaFraction > 0 {
		if cap := p.Profile.GammaFraction * float64(p.T); paper > cap {
			return cap
		}
	}
	return paper
}

// paperGammaAt evaluates the paper's (uncapped) Γ formula at the given
// privacy budget — Gamma() at p.Privacy, MinFeasibleT at the pipeline's
// halved budget.
func (p *Params) paperGammaAt(priv dp.Params) float64 {
	ls := float64(recconcave.LogStar(2 * float64(p.Grid.Size) * math.Sqrt(float64(p.Grid.Dim))))
	if ls < 1 {
		ls = 1
	}
	return math.Pow(8, ls) * (144 * ls / priv.Epsilon) *
		math.Log(24*ls/(p.Beta*priv.Delta))
}

// MinFeasibleT returns a conservative, data-independent floor on the target
// cluster size t: below it, the OneCluster pipeline (GoodRadius and
// GoodCenter at half the (ε, δ) budget each, Theorem 2.1) is essentially
// certain to fail for these parameters — the regime ROADMAP flagged as
// "flaky when t is within a small factor of Γ". Two release thresholds
// bound it:
//
//   - GoodRadius's RecConcave block choice releases a block only when its
//     score clears 1 + (4/ε_l)·ln(2/δ_l) at the per-level budget
//     (ε_l, δ_l) = (ε/4, δ/2)/depth. The best reachable block score is
//     maxQ − (1−α)Γ ≤ 2Γ − Γ/2 = (3/2)Γ, so once Γ < thresh/3 even the
//     optimal block sits a ≥ thresh/2 Laplace excursion below release.
//     With the capped Γ = GammaFraction·t that is t < thresh/(3·GammaFraction);
//     with the uncapped paper Γ the promise itself exceeds the largest
//     possible quality max Q ≤ t/2 until t ≥ 2Γ.
//   - GoodCenter's stability-based box choice releases only when the
//     ≈ t-point box clears 2 + (2/ε_q)·ln(2/δ_q) at its quarter budget;
//     below half that threshold the release is equally unreachable.
//
// The floor is deliberately the "essentially certain to fail" boundary,
// not the "comfortably succeeds" one (≈ 4× higher). Two deliberate
// exclusions keep it honest:
//
//   - The uncapped paper profile (GammaFraction = 0) gets no floor: its Γ
//     is astronomically infeasible by design and by documentation — a
//     categorical, well-understood failure rather than the flaky capped
//     regime this floor targets — and flooring it would foreclose the
//     documented paper-constant exploration path entirely.
//   - The floor reasons about the RecConcave search and the ≈ t-count box
//     choice, but a dataset dominated by ≥ t duplicates succeeds through
//     GoodRadius's Step-2 radius-zero path at any t; callers enforcing the
//     floor should pair it with ZeroClusterPlausible.
func (p *Params) MinFeasibleT() float64 {
	prof := p.Profile
	if prof == (Profile{}) {
		prof = DefaultProfile()
	}
	g := prof.GammaFraction
	if g <= 0 {
		return 0
	}
	half := p.Privacy.Scale(0.5)

	depth := float64(recconcave.Depth(p.Grid.RadiusGridSize(), recconcave.DefaultBaseSize))
	epsL := half.Epsilon / 2 / depth
	deltaL := half.Delta / depth
	thresh := 1 + (4/epsL)*math.Log(2/deltaL)
	radiusFloor := thresh / (3 * g)

	quarter := stability.Params{Epsilon: half.Epsilon / 4, Delta: half.Delta / 4}
	centerFloor := quarter.Threshold() / 2

	return math.Max(radiusFloor, centerFloor)
}

// DeltaLoss returns the cluster-size loss bound Δ = 4Γ + (4/ε)·ln(1/β) of
// Lemma 4.6: the released ball contains at least T − DeltaLoss points with
// probability ≥ 1−β.
func (p *Params) DeltaLoss() float64 {
	return 4*p.Gamma() + (4/p.Privacy.Epsilon)*math.Log(1/p.Beta)
}
