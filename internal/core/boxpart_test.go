package core

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"privcluster/internal/stability"
	"privcluster/internal/vec"
)

// frameOf packs test vectors into a flat frame, failing the test on ragged
// input.
func frameOf(t *testing.T, pts []vec.Vector) *vec.Frame {
	t.Helper()
	f, err := vec.FrameFromVectors(pts)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// randomProj builds a random "projected" point set with the given dimension
// and coordinate span (centered on zero, so negative cell indices are
// exercised).
func randomProj(rng *rand.Rand, n, k int, span float64) []vec.Vector {
	out := make([]vec.Vector, n)
	for i := range out {
		p := make(vec.Vector, k)
		for a := range p {
			p[a] = (rng.Float64() - 0.5) * span
		}
		out[i] = p
	}
	return out
}

// enginePolicies are the three concrete backends (PackAuto resolves to one
// of the first two).
var enginePolicies = []PackingPolicy{PackBits, PackHash, PackLegacy}

// TestBoxPartitionMatchesLegacyHistogram pins every packed backend to the
// original string-key implementation bit-exactly: same per-repetition max
// count, same per-box counts, and the identical grouping of points into
// boxes (key representations may differ; the induced partition may not).
func TestBoxPartitionMatchesLegacyHistogram(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct {
		name    string
		k, n    int
		span    float64
		side    float64
		workers int
	}{
		{"k1-serial", 1, 300, 2, 0.3, 1},
		{"k2-parallel", 2, 5000, 2, 0.25, 4},
		{"k3-negative-cells", 3, 800, 8, 0.5, 2},
		{"k8-forced-hash", 8, 2500, 6, 1e-4, 3}, // tiny cells: k·bits ≫ 64
		{"k12-wide", 12, 400, 4, 0.7, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			proj := randomProj(rng, tc.n, tc.k, tc.span)
			offsets := make([]float64, tc.k)
			for rep := 0; rep < 3; rep++ {
				for a := range offsets {
					offsets[a] = rng.Float64() * tc.side
				}
				ref := boxHistogram(proj, offsets, tc.side)
				refMax := 0
				for _, c := range ref {
					if c > refMax {
						refMax = c
					}
				}
				for _, pol := range enginePolicies {
					prof := DefaultProfile()
					prof.Packing = pol
					prof.Workers = tc.workers
					part, err := newBoxPartition(frameOf(t, proj), tc.side, prof, nil)
					if err != nil {
						t.Fatal(err)
					}
					if got := part.partition(offsets); got != refMax {
						t.Errorf("policy %d rep %d: max count %d, legacy %d", pol, rep, got, refMax)
					}
					assertSameGrouping(t, part, proj, offsets, tc.side, ref)
				}
			}
		})
	}
}

// assertSameGrouping checks the engine's keys induce exactly the partition
// the legacy string keys induce, and that the per-box counts agree.
func assertSameGrouping(t *testing.T, part boxPartition, proj []vec.Vector, offsets []float64, side float64, ref map[string]int) {
	t.Helper()
	switch e := part.(type) {
	case *boxEngine[uint64]:
		byEngine := make(map[uint64]string) // engine key -> legacy key
		for i, k := range e.keys {
			legacy := boxKey(proj[i], offsets, side)
			if prev, ok := byEngine[k]; ok {
				if prev != legacy {
					t.Fatalf("engine key %x merges legacy boxes %q and %q", k, prev, legacy)
				}
			} else {
				byEngine[k] = legacy
			}
			if e.hist[k] != ref[legacy] {
				t.Fatalf("point %d: engine count %d, legacy count %d", i, e.hist[k], ref[legacy])
			}
		}
		if len(byEngine) != len(ref) {
			t.Fatalf("engine has %d boxes, legacy %d", len(byEngine), len(ref))
		}
	case *boxEngine[string]:
		for i, k := range e.keys {
			if want := boxKey(proj[i], offsets, side); k != want {
				t.Fatalf("point %d: legacy engine key differs from boxKey", i)
			}
		}
		if !reflect.DeepEqual(e.hist, ref) {
			t.Fatal("legacy engine histogram differs from boxHistogram")
		}
	default:
		t.Fatalf("unknown engine type %T", part)
	}
}

// TestBoxPartitionAutoSelectsBits verifies PackAuto resolves to bit-packing
// when the indices fit one uint64 and to hashing when they cannot.
func TestBoxPartitionAutoSelectsBits(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	prof := DefaultProfile()

	proj := randomProj(rng, 100, 2, 1)
	part, err := newBoxPartition(frameOf(t, proj), 0.1, prof, nil) // ~12 cells/axis: packs
	if err != nil {
		t.Fatal(err)
	}
	e, ok := part.(*boxEngine[uint64])
	if !ok {
		t.Fatalf("auto engine is %T, want uint64 keys", part)
	}
	if _, isBits := e.coder.(*bitsCoder); !isBits {
		t.Errorf("auto coder is %T, want *bitsCoder", e.coder)
	}

	wide := randomProj(rng, 100, 10, 4)
	part, err = newBoxPartition(frameOf(t, wide), 1e-6, prof, nil) // k·bits ≫ 64: hashes
	if err != nil {
		t.Fatal(err)
	}
	e = part.(*boxEngine[uint64])
	if _, isHash := e.coder.(*hashCoder); !isHash {
		t.Errorf("overflow coder is %T, want *hashCoder", e.coder)
	}
}

// TestBoxSelectionCanonicalAcrossBackends verifies the noise-consuming
// selection path is representation-independent: with the same seed, every
// backend releases the same box (the same member set).
func TestBoxSelectionCanonicalAcrossBackends(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	proj := randomProj(rng, 2000, 2, 2)
	const side = 0.5
	offsets := []float64{0.1, 0.2}
	p := stability.Params{Epsilon: 2, Delta: 0.01}

	var want []int
	for i, pol := range enginePolicies {
		prof := DefaultProfile()
		prof.Packing = pol
		prof.Workers = 1 + i // worker count must not matter either
		part, err := newBoxPartition(frameOf(t, proj), side, prof, nil)
		if err != nil {
			t.Fatal(err)
		}
		part.partition(offsets)
		sel, err := part.selectBox(rand.New(rand.NewSource(7)), p)
		if err != nil {
			t.Fatal(err)
		}
		if sel.Bottom {
			t.Fatalf("policy %d: selection returned bottom", pol)
		}
		if want == nil {
			want = sel.Members
			continue
		}
		if !reflect.DeepEqual(sel.Members, want) {
			t.Errorf("policy %d selected a different box (%d members vs %d)", pol, len(sel.Members), len(want))
		}
	}
}

// TestGoodCenterPackingEquivalence is the seeded end-to-end pin: GoodCenter
// under every packing policy (and several worker counts) produces the
// bit-identical CenterResult, proving the packed engines select the same
// boxes as the string-key implementation all the way through the released
// center.
func TestGoodCenterPackingEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, tc := range []struct {
		name string
		d    int
		r    float64
	}{
		{"d2", 2, 0.04},
		{"d8", 8, 0.02},
	} {
		t.Run(tc.name, func(t *testing.T) {
			grid := testGrid(t, 1024, tc.d)
			inst := plantedInstance(t, rng, grid, 700, 500, 0.02)
			var want CenterResult
			first := true
			for _, pol := range []PackingPolicy{PackAuto, PackBits, PackHash, PackLegacy} {
				for _, workers := range []int{1, 4} {
					prm := testParams(t, grid, 400)
					prm.Profile = DefaultProfile()
					if tc.d > 2 {
						// Wider boxes keep the per-axis capture probability
						// workable at d = 8 so AboveThreshold fires within
						// MaxRepetitions.
						prm.Profile.BoxSideFactor = 6
					}
					prm.Profile.Packing = pol
					prm.Profile.Workers = workers
					res, err := GoodCenter(rand.New(rand.NewSource(99)), inst.Points, tc.r, prm)
					if err != nil {
						t.Fatalf("policy %d workers %d: %v", pol, workers, err)
					}
					if first {
						want = res
						first = false
						continue
					}
					if !reflect.DeepEqual(res, want) {
						t.Errorf("policy %d workers %d: result diverged from reference", pol, workers)
					}
				}
			}
		})
	}
}

// TestGoodCenterEmptyInput is the regression test for the direct-call panic:
// an empty slice must yield the ErrNoData sentinel, not index points[0].
func TestGoodCenterEmptyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	grid := testGrid(t, 1024, 2)
	prm := testParams(t, grid, 10)
	_, err := GoodCenter(rng, nil, 0.05, prm)
	if !errors.Is(err, ErrNoData) {
		t.Errorf("empty input error = %v, want ErrNoData", err)
	}
	_, err = GoodCenter(rng, []vec.Vector{}, 0.05, prm)
	if !errors.Is(err, ErrNoData) {
		t.Errorf("empty (non-nil) input error = %v, want ErrNoData", err)
	}
}

// TestGoodCenterUnknownPackingRejected covers the engine's policy
// validation through GoodCenter.
func TestGoodCenterUnknownPackingRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	grid := testGrid(t, 1024, 2)
	inst := plantedInstance(t, rng, grid, 100, 80, 0.02)
	prm := testParams(t, grid, 50)
	prm.Profile = DefaultProfile()
	prm.Profile.Packing = PackingPolicy(42)
	if _, err := GoodCenter(rng, inst.Points, 0.05, prm); err == nil {
		t.Error("unknown packing policy accepted")
	}
}

// TestBitsCoderIndexBounds verifies the packed indices stay within their
// per-axis bit fields for adversarial offset positions (the rebasing must
// absorb the ±1 cell shift an offset can cause).
func TestBitsCoderIndexBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	proj := randomProj(rng, 400, 4, 3)
	const side = 0.21
	c, ok := newBitsCoder(frameOf(t, proj), side)
	if !ok {
		t.Fatal("bit packing unexpectedly infeasible")
	}
	offsets := make([]float64, 4)
	for trial := 0; trial < 50; trial++ {
		for a := range offsets {
			offsets[a] = rng.Float64() * side
		}
		c.prepare(offsets)
		for _, p := range proj {
			key := c.key(p, offsets)
			// Decode and compare against the direct floor computation.
			for a, x := range p {
				var width uint = 64
				if a+1 < len(c.shift) {
					width = c.shift[a+1] - c.shift[a]
				} else {
					width = 64 - c.shift[a]
				}
				got := int64((key >> c.shift[a]) & (uint64(1)<<width - 1))
				want := int64(math.Floor((x-offsets[a])/side)) - c.base[a]
				if got != want {
					t.Fatalf("axis %d: decoded %d, want %d (field width %d)", a, got, want, width)
				}
				if want < 0 {
					t.Fatalf("axis %d: negative rebased index %d", a, want)
				}
			}
		}
	}
}

// TestNewBoxPartitionEmpty mirrors the GoodCenter guard at the engine level.
func TestNewBoxPartitionEmpty(t *testing.T) {
	if _, err := newBoxPartition(nil, 0.5, DefaultProfile(), nil); !errors.Is(err, ErrNoData) {
		t.Errorf("empty engine error = %v, want ErrNoData", err)
	}
}
