package core

import (
	"errors"
	"math/rand"
	"testing"

	"privcluster/internal/dp"
	"privcluster/internal/recconcave"
	"privcluster/internal/vec"
)

// TestMinFeasibleTShape checks the floor formula's qualitative shape: it
// must grow when ε shrinks and when δ shrinks (both inflate the release
// thresholds), and the ROADMAP's reported flaky point — t ≈ 1000 at ε = 1
// with default δ = 10⁻⁶ — must land at or below the floor while the
// standard test regime (t = 400 at ε = 4, δ = 0.05) stays clearly above it.
func TestMinFeasibleTShape(t *testing.T) {
	grid16 := testGrid(t, 1<<16, 2)
	grid1k := testGrid(t, 1024, 2)
	floor := func(eps, delta float64, g int) float64 {
		grid := grid16
		if g == 1024 {
			grid = grid1k
		}
		p := Params{T: 1, Privacy: dp.Params{Epsilon: eps, Delta: delta}, Beta: 0.1, Grid: grid}
		p.setDefaults()
		return p.MinFeasibleT()
	}

	if f1, f2 := floor(1, 1e-6, 1<<16), floor(2, 1e-6, 1<<16); f1 <= f2 {
		t.Errorf("floor must grow as ε shrinks: ε=1 → %.0f, ε=2 → %.0f", f1, f2)
	}
	if fTight, fLoose := floor(1, 1e-6, 1<<16), floor(1, 0.05, 1<<16); fTight <= fLoose {
		t.Errorf("floor must grow as δ shrinks: δ=1e-6 → %.0f, δ=0.05 → %.0f", fTight, fLoose)
	}
	// The empirical flaky point from the ROADMAP: t ≈ 1000 at ε = 1.
	if f := floor(1, 1e-6, 1<<16); f < 500 || f > 4000 {
		t.Errorf("default-regime floor %.0f outside the empirically flaky band [500, 4000]", f)
	}
	// The long-standing passing regime must sit above its floor.
	if f := floor(4, 0.05, 1024); f >= 400 {
		t.Errorf("standard test regime floor %.0f would reject t=400", f)
	}
	// The uncapped paper profile is exempt: its infeasibility is
	// categorical and documented, not the flaky capped regime the floor
	// targets, so flooring it would foreclose the paper-constant path.
	paper := Params{T: 1, Privacy: dp.Params{Epsilon: 1, Delta: 1e-6}, Beta: 0.1, Grid: grid16, Profile: PaperProfile()}
	if f := paper.MinFeasibleT(); f != 0 {
		t.Errorf("paper-profile floor = %.0f, want 0 (no pre-flight)", f)
	}
}

// TestZeroClusterPlausible covers the pre-flight's duplicate escape hatch:
// a duplicate-dominated dataset must be recognized (its radius-zero path
// succeeds at any t), a spread-out one must not.
func TestZeroClusterPlausible(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	grid := testGrid(t, 1024, 2)
	prm := Params{T: 400, Privacy: dp.Params{Epsilon: 1, Delta: 1e-6}, Beta: 0.1, Grid: grid}
	prm.setDefaults()

	dups := make([]vec.Vector, 600)
	for i := range dups {
		if i < 500 {
			dups[i] = grid.Quantize(vec.Of(0.5, 0.5))
		} else {
			dups[i] = grid.Quantize(vec.Of(rng.Float64(), rng.Float64()))
		}
	}
	if !ZeroClusterPlausible(dups, prm) {
		t.Error("500 duplicates at t=400 not recognized as a zero-cluster candidate")
	}

	inst := plantedInstance(t, rng, grid, 600, 400, 0.05)
	if ZeroClusterPlausible(inst.Points, prm) {
		t.Error("spread-out planted data misread as a zero-cluster candidate")
	}
	if ZeroClusterPlausible(nil, prm) {
		t.Error("empty input misread as a zero-cluster candidate")
	}
}

// TestPromiseRegimeBoundary quantifies the t/Γ/ε regime boundary the
// ROADMAP flagged, table-driven: for each budget, a t well below
// MinFeasibleT must fail with a PromiseError carrying the enriched
// t−4Γ slack, and a t a factor ≈ 4 above the floor must succeed in the
// majority of seeded trials. Together the rows bracket the boundary and
// pin the floor as conservative (failures below, successes above).
func TestPromiseRegimeBoundary(t *testing.T) {
	cases := []struct {
		name       string
		eps, delta float64
	}{
		{"eps4-loose-delta", 4, 0.05},
		{"eps8-tight-delta", 8, 1e-6},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			grid := testGrid(t, 1024, 2)
			prm := Params{
				Privacy: dp.Params{Epsilon: tc.eps, Delta: tc.delta},
				Beta:    0.1,
				Grid:    grid,
			}
			prm.setDefaults()
			floor := prm.MinFeasibleT()
			tHigh := int(4 * floor)
			n := tHigh*3/2 + 200
			inst := plantedInstance(t, rng, grid, n, tHigh*5/4, 0.02)

			// Below the floor: the radius search must fail with the typed,
			// enriched promise error — not succeed, not panic.
			low := prm
			low.T = int(floor / 4)
			if low.T < 1 {
				low.T = 1
			}
			_, err := OneCluster(rng, inst.Points, low)
			if !errors.Is(err, recconcave.ErrPromiseViolated) {
				t.Fatalf("t=%d (floor %.0f): err = %v, want a promise violation", low.T, floor, err)
			}
			var pe *recconcave.PromiseError
			if !errors.As(err, &pe) {
				t.Fatalf("promise failure is not a *PromiseError: %v", err)
			}
			half := low
			half.Privacy = low.Privacy.Scale(0.5)
			if pe.T != low.T || pe.Gamma != half.Gamma() || pe.Slack != float64(low.T)-4*half.Gamma() {
				t.Errorf("enrichment wrong: T=%d Γ=%v slack=%v (want T=%d Γ=%v)",
					pe.T, pe.Gamma, pe.Slack, low.T, half.Gamma())
			}
			if pe.Depth < 1 || pe.LevelEpsilon <= 0 || pe.LevelDelta <= 0 {
				t.Errorf("level diagnostics missing: %+v", pe)
			}

			// Well above the floor: the pipeline must succeed in a majority
			// of trials.
			high := prm
			high.T = tHigh
			success := 0
			const trials = 4
			for i := 0; i < trials; i++ {
				if _, err := OneCluster(rng, inst.Points, high); err == nil {
					success++
				}
			}
			if success*2 <= trials {
				t.Errorf("t=%d (4× floor %.0f): only %d/%d trials succeeded", tHigh, floor, success, trials)
			}
		})
	}
}
