package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"privcluster/internal/dp"
	"privcluster/internal/geometry"
	"privcluster/internal/noise"
	"privcluster/internal/recconcave"
)

// RadiusResult is the outcome of Algorithm GoodRadius.
type RadiusResult struct {
	// Radius r such that (w.h.p., Lemma 3.6) some ball of radius r holds at
	// least t − 4Γ − (4/ε)ln(1/β) input points and r ≤ 4·r_opt.
	Radius float64
	// ZeroCluster is true when Step 2 detected a radius-zero cluster (≈ t
	// duplicated points) and halted with Radius = 0.
	ZeroCluster bool
	// Gamma is the promise Γ that was used (diagnostic).
	Gamma float64
}

// GoodRadius implements Algorithm 1. It consumes the full privacy budget
// passed in priv: (ε/2, 0) on the Step-2 Laplace test and (ε/2, δ) on the
// RecConcave radius search, composing to (ε, δ) (Lemma 4.5).
//
// The dataset is supplied as a prebuilt BallIndex (so OneCluster can reuse
// it and callers can pick the exact or the scalable backend — see
// NewBallIndex); the index's points must lie in prm.Grid's unit cube. Both
// backends keep L's sensitivity at 2, so the privacy analysis is identical;
// the scalable backend's radius discretization only costs utility (a
// constant-factor widening of the returned radius).
func GoodRadius(rng *rand.Rand, ix geometry.BallIndex, prm Params) (RadiusResult, error) {
	prm.setDefaults()
	n := ix.N()
	if err := prm.Validate(n); err != nil {
		return RadiusResult{}, err
	}
	t := prm.T
	eps := prm.Privacy.Epsilon
	gamma := prm.Gamma()

	ls, err := ix.BuildLStep(t)
	if err != nil {
		return RadiusResult{}, err
	}

	// Step 2: radius-zero test. L(0,·) has sensitivity 2, so Lap(4/ε) is
	// (ε/2, 0)-DP.
	l0 := ls.Eval(0) + noise.Laplace(rng, 4/eps)
	if l0 > float64(t)-2*gamma-(4/eps)*math.Log(2/prm.Beta) {
		return RadiusResult{Radius: 0, ZeroCluster: true, Gamma: gamma}, nil
	}

	// Steps 3–4: build the quality Q(r,S) = ½·min{t − L(r/2), L(r) − t + 4Γ}
	// as a step function over the radius grid and hand it to RecConcave.
	q, err := buildRadiusQuality(ls, prm.Grid, t, gamma)
	if err != nil {
		return RadiusResult{}, err
	}
	idx, err := recconcave.Solve(rng, q, gamma, recconcave.Options{
		Alpha:   0.5,
		Beta:    prm.Beta / 2,
		Privacy: dp.Params{Epsilon: eps / 2, Delta: prm.Privacy.Delta},
	})
	if err != nil {
		return RadiusResult{}, fmt.Errorf("core: GoodRadius search failed: %w", err)
	}
	return RadiusResult{Radius: prm.Grid.RadiusFromIndex(idx), Gamma: gamma}, nil
}

// buildRadiusQuality materializes Q(r_k, S) over radius-grid indices
// k ∈ [0, M). Q changes value only where L(r_k) or L(r_k/2) does, i.e. at
// indices ⌈b/u⌉ and ⌈2b/u⌉ for breakpoints b of L — O(n²) pieces
// regardless of the grid size (Remark 4.4's efficiency condition).
func buildRadiusQuality(ls *geometry.LStep, grid geometry.Grid, t int, gamma float64) (*recconcave.StepFn, error) {
	u := grid.RadiusUnit()
	m := grid.RadiusGridSize()
	breakSet := make(map[int64]struct{}, 2*len(ls.Breaks)+1)
	breakSet[0] = struct{}{}
	add := func(r float64) {
		kf := math.Ceil(r / u)
		if kf < float64(m) && kf > 0 {
			breakSet[int64(kf)] = struct{}{}
		}
	}
	for _, b := range ls.Breaks {
		add(b)     // where L(r_k) jumps
		add(2 * b) // where L(r_k/2) jumps
	}
	breaks := make([]int64, 0, len(breakSet))
	for k := range breakSet {
		breaks = append(breaks, k)
	}
	sort.Slice(breaks, func(i, j int) bool { return breaks[i] < breaks[j] })

	vals := make([]float64, len(breaks))
	for i, k := range breaks {
		r := float64(k) * u
		vals[i] = 0.5 * math.Min(
			float64(t)-ls.Eval(r/2),
			ls.Eval(r)-float64(t)+4*gamma,
		)
	}
	return recconcave.NewStepFn(m, breaks, vals)
}
