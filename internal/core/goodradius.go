package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"privcluster/internal/dp"
	"privcluster/internal/geometry"
	"privcluster/internal/noise"
	"privcluster/internal/obs"
	"privcluster/internal/recconcave"
	"privcluster/internal/vec"
)

// RadiusResult is the outcome of Algorithm GoodRadius.
type RadiusResult struct {
	// Radius r such that (w.h.p., Lemma 3.6) some ball of radius r holds at
	// least t − 4Γ − (4/ε)ln(1/β) input points and r ≤ 4·r_opt.
	Radius float64
	// ZeroCluster is true when Step 2 detected a radius-zero cluster (≈ t
	// duplicated points) and halted with Radius = 0.
	ZeroCluster bool
	// Gamma is the promise Γ that was used (diagnostic).
	Gamma float64
}

// GoodRadius implements Algorithm 1. It consumes the full privacy budget
// passed in priv: (ε/2, 0) on the Step-2 Laplace test and (ε/2, δ) on the
// RecConcave radius search, composing to (ε, δ) (Lemma 4.5).
//
// The dataset is supplied as a prebuilt BallIndex (so OneCluster can reuse
// it and callers can pick the exact or the scalable backend — see
// NewBallIndex); the index's points must lie in prm.Grid's unit cube. Both
// backends keep L's sensitivity at 2, so the privacy analysis is identical;
// the scalable backend's radius discretization only costs utility (a
// constant-factor widening of the returned radius).
func GoodRadius(rng *rand.Rand, ix geometry.BallIndex, prm Params) (RadiusResult, error) {
	prm.setDefaults()
	n := ix.N()
	if err := prm.Validate(n); err != nil {
		return RadiusResult{}, err
	}
	t := prm.T
	eps := prm.Privacy.Epsilon
	gamma := prm.Gamma()

	if err := prm.interrupted(); err != nil {
		return RadiusResult{}, err
	}
	lctx, lspan := obs.StartSpan(prm.Ctx, "lstep")
	ls, err := ix.BuildLStep(lctx, t)
	lspan.End()
	if err != nil {
		return RadiusResult{}, err
	}
	lspan.Count("breaks", int64(len(ls.Breaks)))

	// Step 2: radius-zero test. L(0,·) has sensitivity 2, so Lap(4/ε) is
	// (ε/2, 0)-DP.
	l0 := ls.Eval(0) + noise.Laplace(rng, 4/eps)
	obs.CurrentSpan(prm.Ctx).Count("noise_draws", 1)
	if l0 > float64(t)-2*gamma-(4/eps)*math.Log(2/prm.Beta) {
		return RadiusResult{Radius: 0, ZeroCluster: true, Gamma: gamma}, nil
	}

	// Steps 3–4: build the quality Q(r,S) = ½·min{t − L(r/2), L(r) − t + 4Γ}
	// as a step function over the radius grid and hand it to RecConcave.
	q, err := buildRadiusQuality(ls, prm.Grid, t, gamma)
	if err != nil {
		return RadiusResult{}, err
	}
	rcctx, rcspan := obs.StartSpan(prm.Ctx, "recconcave")
	idx, err := recconcave.Solve(rng, q, gamma, recconcave.Options{
		Alpha:   0.5,
		Beta:    prm.Beta / 2,
		Privacy: dp.Params{Epsilon: eps / 2, Delta: prm.Privacy.Delta},
		Ctx:     rcctx,
	})
	rcspan.End()
	if err != nil {
		// Enrich a promise failure with the concrete regime so callers can
		// tell "no cluster exists" from "t is too close to Γ for this ε/β":
		// the t−4Γ slack is the headroom Lemma 3.6 consumes, and a small
		// value pins the failure on the regime, not the data.
		var pe *recconcave.PromiseError
		if errors.As(err, &pe) {
			pe.T = t
			pe.Gamma = gamma
			pe.Slack = float64(t) - 4*gamma
		}
		return RadiusResult{}, fmt.Errorf("core: GoodRadius search failed: %w", err)
	}
	return RadiusResult{Radius: prm.Grid.RadiusFromIndex(idx), Gamma: gamma}, nil
}

// ZeroClusterPlausible reports whether the dataset's duplicate structure
// could plausibly fire GoodRadius's Step-2 radius-zero test under the
// OneCluster pipeline split (half the (ε, δ) budget): L(0, S) — the top-t
// average of the duplicate multiplicities — within one extra noise margin
// of the Step-2 threshold. The radius-zero path bypasses the RecConcave
// search entirely, so it is the one data shape for which a t below
// MinFeasibleT still succeeds end to end; the pre-flight feasibility check
// consults this before rejecting.
func ZeroClusterPlausible(points []vec.Vector, prm Params) bool {
	if len(points) == 0 {
		return false
	}
	f, err := vec.FrameFromVectors(points)
	if err != nil {
		// Ragged input has no consistent duplicate structure; the legacy
		// behavior for it was also "not plausible".
		return false
	}
	return ZeroClusterPlausibleFrame(f, prm)
}

// ZeroClusterPlausibleFrame is ZeroClusterPlausible on a flat frame, keying
// the duplicate table by the frame's canonical row keys (identical bytes to
// the legacy per-point encoding, so the decision is unchanged).
func ZeroClusterPlausibleFrame(f *vec.Frame, prm Params) bool {
	prm.setDefaults()
	t := prm.T
	if t < 1 || f == nil || f.N() == 0 {
		return false
	}
	mult := make(map[string]int, f.N())
	buf := make([]byte, 0, 8*f.Dim())
	for i := 0; i < f.N(); i++ {
		mult[string(f.AppendRowKey(buf[:0], i))]++
	}
	ms := make([]int, 0, len(mult))
	for _, m := range mult {
		ms = append(ms, m)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(ms)))
	// L(0): each of a class's m points scores min(m, t); average the top t.
	remaining := t
	sum := 0.0
	for _, m := range ms {
		if remaining <= 0 {
			break
		}
		take := m
		if take > remaining {
			take = remaining
		}
		v := m
		if v > t {
			v = t
		}
		sum += float64(take) * float64(v)
		remaining -= take
	}
	l0 := sum / float64(t)

	half := prm
	half.Privacy = prm.Privacy.Scale(0.5)
	eps := half.Privacy.Epsilon
	margin := (4 / eps) * math.Log(2/prm.Beta)
	// Step 2 fires when L(0) + Lap(4/ε) > t − 2Γ − margin; grant one extra
	// margin width of helpful noise so borderline datasets get to try.
	return l0 > float64(t)-2*half.Gamma()-2*margin
}

// buildRadiusQuality materializes Q(r_k, S) over radius-grid indices
// k ∈ [0, M). Q changes value only where L(r_k) or L(r_k/2) does, i.e. at
// indices ⌈b/u⌉ and ⌈2b/u⌉ for breakpoints b of L — O(n²) pieces
// regardless of the grid size (Remark 4.4's efficiency condition).
func buildRadiusQuality(ls *geometry.LStep, grid geometry.Grid, t int, gamma float64) (*recconcave.StepFn, error) {
	u := grid.RadiusUnit()
	m := grid.RadiusGridSize()
	breakSet := make(map[int64]struct{}, 2*len(ls.Breaks)+1)
	breakSet[0] = struct{}{}
	add := func(r float64) {
		kf := math.Ceil(r / u)
		if kf < float64(m) && kf > 0 {
			breakSet[int64(kf)] = struct{}{}
		}
	}
	for _, b := range ls.Breaks {
		add(b)     // where L(r_k) jumps
		add(2 * b) // where L(r_k/2) jumps
	}
	breaks := make([]int64, 0, len(breakSet))
	for k := range breakSet {
		breaks = append(breaks, k)
	}
	sort.Slice(breaks, func(i, j int) bool { return breaks[i] < breaks[j] })

	vals := make([]float64, len(breaks))
	for i, k := range breaks {
		r := float64(k) * u
		vals[i] = 0.5 * math.Min(
			float64(t)-ls.Eval(r/2),
			ls.Eval(r)-float64(t)+4*gamma,
		)
	}
	return recconcave.NewStepFn(m, breaks, vals)
}
