package core

import (
	"math"
	"math/rand"
	"testing"

	"privcluster/internal/dp"
	"privcluster/internal/geometry"
	"privcluster/internal/vec"
	"privcluster/internal/workload"
)

func testGrid(t *testing.T, size int64, dim int) geometry.Grid {
	t.Helper()
	g, err := geometry.NewGrid(size, dim)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testParams(t *testing.T, grid geometry.Grid, tt int) Params {
	t.Helper()
	return Params{
		T:       tt,
		Privacy: dp.Params{Epsilon: 4, Delta: 0.05},
		Beta:    0.1,
		Grid:    grid,
	}
}

func plantedInstance(t *testing.T, rng *rand.Rand, grid geometry.Grid, n, cluster int, radius float64) workload.Instance {
	t.Helper()
	inst, err := workload.PlantedBall{N: n, ClusterSize: cluster, Radius: radius}.Generate(rng, grid)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestParamsValidate(t *testing.T) {
	grid := testGrid(t, 1024, 2)
	cases := []struct {
		name string
		mut  func(*Params)
	}{
		{"t zero", func(p *Params) { p.T = 0 }},
		{"t > n", func(p *Params) { p.T = 10000 }},
		{"bad epsilon", func(p *Params) { p.Privacy.Epsilon = 0 }},
		{"zero delta", func(p *Params) { p.Privacy.Delta = 0 }},
		{"bad beta", func(p *Params) { p.Beta = 2 }},
		{"bad grid", func(p *Params) { p.Grid = geometry.Grid{} }},
	}
	for _, c := range cases {
		p := testParams(t, grid, 100)
		p.setDefaults()
		c.mut(&p)
		if err := p.Validate(500); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestGammaCappedAndPaper(t *testing.T) {
	grid := testGrid(t, 1024, 2)
	p := testParams(t, grid, 400)
	p.setDefaults()
	if g := p.Gamma(); math.Abs(g-400.0/6) > 1e-9 {
		t.Errorf("capped Gamma = %v, want 400/6", g)
	}
	p.Profile = PaperProfile()
	if g := p.Gamma(); g < 1e4 {
		t.Errorf("paper Gamma = %v, expected to be enormous", g)
	}
	if p.DeltaLoss() <= 4*p.Gamma() {
		t.Error("DeltaLoss should exceed 4Γ")
	}
}

func TestGoodRadiusFindsPlantedScale(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	grid := testGrid(t, 1024, 2)
	inst := plantedInstance(t, rng, grid, 800, 500, 0.02)
	ix, err := geometry.NewDistanceIndex(inst.Points)
	if err != nil {
		t.Fatal(err)
	}
	prm := testParams(t, grid, 400)

	// Non-private reference: r_opt ≤ 2·approx radius.
	_, twoApprox, err := ix.TwoApprox(prm.T)
	if err != nil {
		t.Fatal(err)
	}

	good := 0
	const trials = 10
	for i := 0; i < trials; i++ {
		res, err := GoodRadius(rng, ix, prm)
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		if res.ZeroCluster {
			t.Fatalf("trial %d: spurious zero cluster", i)
		}
		// Lemma 3.6: (1) a ball of radius res.Radius holds ≥ t − 4Γ − slack
		// points; (2) res.Radius ≤ 4·r_opt (grid rounding adds one unit).
		count := ix.MaxCountWithin(res.Radius)
		if count < prm.T-int(4*res.Gamma)-50 {
			t.Errorf("trial %d: best ball at r=%v holds %d points, want ≥ %d",
				i, res.Radius, count, prm.T-int(4*res.Gamma)-50)
			continue
		}
		if res.Radius > 4*twoApprox+2*grid.RadiusUnit() {
			t.Errorf("trial %d: radius %v > 4·%v", i, res.Radius, twoApprox)
			continue
		}
		good++
	}
	if good < trials-1 {
		t.Errorf("GoodRadius met Lemma 3.6 in only %d/%d trials", good, trials)
	}
}

func TestGoodRadiusZeroCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	grid := testGrid(t, 1024, 2)
	// 400 duplicated points: Step 2 must fire.
	pts := make([]vec.Vector, 500)
	for i := range pts {
		if i < 400 {
			pts[i] = grid.Quantize(vec.Of(0.5, 0.5))
		} else {
			pts[i] = grid.Quantize(vec.Of(rng.Float64(), rng.Float64()))
		}
	}
	ix, _ := geometry.NewDistanceIndex(pts)
	prm := testParams(t, grid, 300)
	zero := 0
	for i := 0; i < 10; i++ {
		res, err := GoodRadius(rng, ix, prm)
		if err != nil {
			t.Fatal(err)
		}
		if res.ZeroCluster && res.Radius == 0 {
			zero++
		}
	}
	if zero < 9 {
		t.Errorf("zero-cluster detected in only %d/10 trials", zero)
	}
}

func TestGoodRadiusValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	grid := testGrid(t, 1024, 2)
	pts := []vec.Vector{grid.Quantize(vec.Of(0.1, 0.1)), grid.Quantize(vec.Of(0.9, 0.9))}
	ix, _ := geometry.NewDistanceIndex(pts)
	prm := testParams(t, grid, 5) // t > n
	if _, err := GoodRadius(rng, ix, prm); err == nil {
		t.Error("t > n accepted")
	}
}

func TestGoodCenterLocatesCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	grid := testGrid(t, 1024, 2)
	inst := plantedInstance(t, rng, grid, 800, 500, 0.02)
	prm := testParams(t, grid, 400)

	good := 0
	const trials = 10
	for i := 0; i < trials; i++ {
		res, err := GoodCenter(rng, inst.Points, 0.04, prm)
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		ball := geometry.Ball{Center: res.Center, Radius: res.Radius}
		if got := ball.Count(inst.Points); got >= prm.T {
			good++
		} else {
			t.Logf("trial %d: ball (r=%v, reps=%d, box=%d) holds %d < %d",
				i, res.Radius, res.Repetitions, res.BoxCount, got, prm.T)
		}
	}
	if good < trials-2 {
		t.Errorf("GoodCenter ball captured t points in only %d/%d trials", good, trials)
	}
}

func TestGoodCenterZeroRadiusUpgraded(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	grid := testGrid(t, 1024, 2)
	pts := make([]vec.Vector, 500)
	for i := range pts {
		pts[i] = grid.Quantize(vec.Of(0.5, 0.5))
	}
	prm := testParams(t, grid, 400)
	res, err := GoodCenter(rng, pts, 0, prm)
	if err != nil {
		t.Fatal(err)
	}
	if res.Center.Dist(vec.Of(0.5, 0.5)) > res.Radius {
		t.Errorf("center %v too far from the duplicated point", res.Center)
	}
}

func TestGoodCenterNoClusterErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	grid := testGrid(t, 1024, 2)
	// Pure uniform noise, t close to n, tiny radius: no box can hold t.
	inst := plantedInstance(t, rng, grid, 300, 0, 0)
	prm := testParams(t, grid, 295)
	prm.Profile = DefaultProfile()
	prm.Profile.MaxRepetitions = 40
	prm.Profile.BoxSideFactor = 0.5 // tiny boxes
	_, err := GoodCenter(rng, inst.Points, 0.001, prm)
	if err == nil {
		t.Error("expected an error on clusterless data")
	}
}

func TestOneClusterEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	grid := testGrid(t, 1024, 2)
	inst := plantedInstance(t, rng, grid, 800, 500, 0.02)
	prm := testParams(t, grid, 400)

	good := 0
	const trials = 8
	for i := 0; i < trials; i++ {
		res, err := OneCluster(rng, inst.Points, prm)
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		count := res.Ball.Count(inst.Points)
		if count < prm.T {
			t.Logf("trial %d: ball holds %d < t=%d (raw r=%v, R=%v)",
				i, count, prm.T, res.RawRadius, res.Ball.Radius)
			continue
		}
		if res.Ball.Radius > 1.5 {
			t.Logf("trial %d: radius %v unreasonably large", i, res.Ball.Radius)
			continue
		}
		good++
	}
	if good < trials-2 {
		t.Errorf("OneCluster succeeded in only %d/%d trials", good, trials)
	}
}

func TestOneClusterHighDimensionalJL(t *testing.T) {
	// d = 48 with n = 400 exercises the non-identity JL path (k < d).
	rng := rand.New(rand.NewSource(8))
	grid := testGrid(t, 1024, 48)
	inst := plantedInstance(t, rng, grid, 400, 300, 0.05)
	prm := testParams(t, grid, 250)
	prm.Privacy = dp.Params{Epsilon: 16, Delta: 0.05}
	prm.Profile = DefaultProfile()
	prm.Profile.JLDimCap = 12

	var res ClusterResult
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		res, err = OneCluster(rng, inst.Points, prm)
		if err == nil {
			break
		}
	}
	if err != nil {
		t.Fatal(err)
	}
	if res.K >= 48 {
		t.Errorf("JL not engaged: k = %d", res.K)
	}
	if got := res.Ball.Count(inst.Points); got < prm.T/2 {
		t.Errorf("high-dim ball holds %d points, want ≥ %d", got, prm.T/2)
	}
}

func TestKCoverThreeBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	grid := testGrid(t, 1024, 2)
	mi, err := workload.MultiCluster{N: 900, K: 3, Radius: 0.02, Spread: 0.3}.Generate(rng, grid)
	if err != nil {
		t.Fatal(err)
	}
	prm := testParams(t, grid, 200)
	prm.Privacy = dp.Params{Epsilon: 18, Delta: 0.06}

	balls, err := KCover(rng, mi.Points, 3, prm)
	if err != nil {
		t.Fatal(err)
	}
	if len(balls) == 0 {
		t.Fatal("no balls found")
	}
	covered := 0
	for _, p := range mi.Points {
		for _, b := range balls {
			if b.Contains(p) {
				covered++
				break
			}
		}
	}
	if frac := float64(covered) / 900; frac < 0.5 {
		t.Errorf("k-cover covered only %.2f of the data with %d balls", frac, len(balls))
	}
}

func TestKCoverValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	grid := testGrid(t, 1024, 2)
	prm := testParams(t, grid, 10)
	if _, err := KCover(rng, []vec.Vector{vec.Of(0.5, 0.5)}, 0, prm); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestIntPointReturnsInteriorPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	grid := testGrid(t, 1<<16, 1)
	vals, err := workload.SortedValues(rng, 2400, 400, 0.5, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	minV, maxV := vals[0], vals[0]
	for _, v := range vals {
		minV = math.Min(minV, v)
		maxV = math.Max(maxV, v)
	}

	prm := IntPointParams{
		InnerN: 1600,
		Cluster: Params{
			T:       800,
			Privacy: dp.Params{Epsilon: 4, Delta: 0.05},
			Beta:    0.1,
			Grid:    grid,
		},
		Privacy: dp.Params{Epsilon: 4, Delta: 0.05},
		Beta:    0.1,
	}
	good := 0
	const trials = 8
	for i := 0; i < trials; i++ {
		res, err := IntPoint(rng, vals, prm)
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		if res.Point >= minV && res.Point <= maxV {
			good++
		} else {
			t.Logf("trial %d: %v outside [%v, %v]", i, res.Point, minV, maxV)
		}
	}
	if good < trials-1 {
		t.Errorf("interior point found in only %d/%d trials", good, trials)
	}
}

func TestIntPointValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	grid1 := testGrid(t, 1024, 1)
	grid2 := testGrid(t, 1024, 2)
	vals := []float64{0.1, 0.2, 0.3, 0.4}
	base := IntPointParams{
		InnerN:  2,
		Cluster: Params{T: 2, Privacy: dp.Params{Epsilon: 1, Delta: 0.01}, Beta: 0.1, Grid: grid1},
		Privacy: dp.Params{Epsilon: 1, Delta: 0.01},
	}
	bad := base
	bad.InnerN = 10
	if _, err := IntPoint(rng, vals, bad); err == nil {
		t.Error("InnerN ≥ m accepted")
	}
	bad = base
	bad.Cluster.Grid = grid2
	if _, err := IntPoint(rng, vals, bad); err == nil {
		t.Error("2-D grid accepted")
	}
	bad = base
	bad.Privacy = dp.Params{}
	if _, err := IntPoint(rng, vals, bad); err == nil {
		t.Error("invalid privacy accepted")
	}
}
