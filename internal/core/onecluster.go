package core

import (
	"fmt"
	"math/rand"

	"privcluster/internal/geometry"
	"privcluster/internal/obs"
	"privcluster/internal/vec"
)

// ClusterResult is the outcome of the full 1-cluster pipeline
// (Theorem 3.2): a ball that, with probability ≥ 1−β, contains at least
// t − Δ input points and has radius at most w·r_opt with w = O(√log n).
type ClusterResult struct {
	Ball geometry.Ball
	// RawRadius is GoodRadius's output r (≤ 4·r_opt); the released ball's
	// radius is O(r·√k).
	RawRadius float64
	// ZeroCluster marks the degenerate duplicated-points case.
	ZeroCluster bool
	// Center diagnostics, forwarded from GoodCenter.
	K            int
	Repetitions  int
	BoxCount     int
	FallbackAxes int
}

// OneCluster runs Algorithm GoodRadius followed by Algorithm GoodCenter,
// splitting the privacy budget evenly between them; the composition is
// (ε, δ)-DP by Theorem 2.1. The points must lie in prm.Grid's unit cube
// (quantization is the caller's responsibility — see geometry.Grid.Quantize).
// The dataset index backend follows prm.Index (exact below ExactIndexMaxN
// points under IndexAuto, the O(n·d)-memory cell index beyond).
func OneCluster(rng *rand.Rand, points []vec.Vector, prm Params) (ClusterResult, error) {
	prm.setDefaults()
	if err := prm.Validate(len(points)); err != nil {
		return ClusterResult{}, err
	}
	if err := prm.interrupted(); err != nil {
		return ClusterResult{}, err
	}
	ix, err := NewBallIndex(prm.Ctx, points, prm.Grid, prm.Index, prm.Profile.Workers, prm.Profile.Shards)
	if err != nil {
		return ClusterResult{}, err
	}
	return oneClusterIndexed(rng, ix, prm)
}

// OneClusterIndexed is OneCluster on a prebuilt ball index — the seam a
// serving layer uses to amortize the (dominant) index construction across
// repeated queries on the same dataset. The index must have been built by
// NewBallIndex over the same grid and worker budget prm describes; since
// index construction draws no randomness, a prebuilt index releases
// bit-identical seeded results to OneCluster on the same points.
func OneClusterIndexed(rng *rand.Rand, ix geometry.BallIndex, prm Params) (ClusterResult, error) {
	prm.setDefaults()
	if err := prm.Validate(ix.N()); err != nil {
		return ClusterResult{}, err
	}
	return oneClusterIndexed(rng, ix, prm)
}

// oneClusterIndexed is OneCluster on a prebuilt ball index. The radius and
// center stages each run under their own trace span when prm.Ctx carries a
// trace (spans record only timings and operation counts — never the data —
// and never touch rng, so traced and untraced runs release identically).
func oneClusterIndexed(rng *rand.Rand, ix geometry.BallIndex, prm Params) (ClusterResult, error) {
	half := prm
	half.Privacy = prm.Privacy.Scale(0.5)

	rctx, rspan := obs.StartSpan(prm.Ctx, "radius")
	halfStage := half
	halfStage.Ctx = rctx
	rad, err := GoodRadius(rng, ix, halfStage)
	rspan.End()
	if err != nil {
		return ClusterResult{}, fmt.Errorf("core: radius stage: %w", err)
	}
	if err := prm.interrupted(); err != nil {
		return ClusterResult{}, err
	}
	cctx, cspan := obs.StartSpan(prm.Ctx, "center")
	halfStage.Ctx = cctx
	cen, err := GoodCenterFrame(rng, ix.Frame(), rad.Radius, halfStage)
	cspan.Count("svt_repetitions", int64(cen.Repetitions))
	cspan.Count("fallback_axes", int64(cen.FallbackAxes))
	cspan.End()
	if err != nil {
		return ClusterResult{}, fmt.Errorf("core: center stage: %w", err)
	}
	return ClusterResult{
		Ball:         geometry.Ball{Center: cen.Center, Radius: cen.Radius},
		RawRadius:    rad.Radius,
		ZeroCluster:  rad.ZeroCluster,
		K:            cen.K,
		Repetitions:  cen.Repetitions,
		BoxCount:     cen.BoxCount,
		FallbackAxes: cen.FallbackAxes,
	}, nil
}

// KCover implements Observation 3.5: iterating the 1-cluster algorithm k
// times — each round on the points not yet covered — yields up to k balls
// covering most of the data. The privacy budget is split evenly across
// rounds (Theorem 2.1). Rounds that fail (e.g. too few points remain) are
// skipped; the balls found so far are returned.
func KCover(rng *rand.Rand, points []vec.Vector, k int, prm Params) ([]geometry.Ball, error) {
	return kCover(rng, points, nil, k, prm)
}

// KCoverIndexed is KCover with a prebuilt index over the full point set:
// round 1 runs on it directly (skipping the dominant preprocessing cost);
// later rounds operate on the not-yet-covered subsets, for which the index
// is rebuilt exactly as KCover would. Results are bit-identical to KCover
// under the same seed, for the same reason OneClusterIndexed's are.
func KCoverIndexed(rng *rand.Rand, ix geometry.BallIndex, k int, prm Params) ([]geometry.Ball, error) {
	// Round 1 runs on the index itself; later rounds filter the remainder,
	// which still wants per-point views — Rows() is header-only on float64.
	return kCover(rng, ix.Frame().Rows(), ix, k, prm)
}

func kCover(rng *rand.Rand, points []vec.Vector, full geometry.BallIndex, k int, prm Params) ([]geometry.Ball, error) {
	prm.setDefaults()
	if k < 1 {
		return nil, fmt.Errorf("core: KCover needs k ≥ 1, got %d", k)
	}
	if err := prm.Validate(len(points)); err != nil {
		return nil, err
	}
	round := prm
	round.Privacy = prm.Privacy.Split(k)

	remaining := points
	var balls []geometry.Ball
	for i := 0; i < k; i++ {
		if err := prm.interrupted(); err != nil {
			return nil, err
		}
		if len(remaining) < round.T {
			break
		}
		rdctx, rdspan := obs.StartSpan(prm.Ctx, "kcover/round")
		roundStage := round
		roundStage.Ctx = rdctx
		var res ClusterResult
		var err error
		if i == 0 && full != nil {
			res, err = OneClusterIndexed(rng, full, roundStage)
		} else {
			res, err = OneCluster(rng, remaining, roundStage)
		}
		rdspan.End()
		if err != nil {
			if ctxErr := prm.interrupted(); ctxErr != nil {
				// Cancellation must not be mistaken for a failed round: it
				// aborts the whole cover, not just this round's share.
				return nil, ctxErr
			}
			// A failed round spends its budget share without producing a
			// ball; later rounds may still succeed on the same points.
			continue
		}
		balls = append(balls, res.Ball)
		_, remaining = res.Ball.Filter(remaining)
	}
	return balls, nil
}
