// Package experiments regenerates every table and figure of the paper's
// evaluation, as indexed in DESIGN.md ("Per-experiment index") and reported
// in EXPERIMENTS.md. Each experiment is a pure function of a seed and a
// quick flag, returning rendered tables; cmd/experiments prints them and
// the root benchmark suite times them.
package experiments

import (
	"fmt"
	"sort"

	"privcluster/internal/bench"
)

// Experiment is a registered, regenerable paper artifact.
type Experiment struct {
	// ID is the flag name (e.g. "table1").
	ID string
	// Artifact names the paper object being reproduced.
	Artifact string
	// Run executes the experiment. quick shrinks sizes for benchmarking.
	Run func(seed int64, quick bool) []*bench.Table
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// Get returns the experiment with the given id.
func Get(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (try: %v)", id, IDs())
	}
	return e, nil
}

// IDs lists the registered experiment ids in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// All returns every registered experiment, sorted by id.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, id := range IDs() {
		out = append(out, registry[id])
	}
	return out
}
