package experiments

import (
	"math"
	"math/rand"

	"privcluster/internal/bench"
	"privcluster/internal/core"
	"privcluster/internal/dp"
	"privcluster/internal/geometry"
	"privcluster/internal/workload"
)

func init() {
	register(Experiment{
		ID:       "tmin",
		Artifact: "Theorem 3.2 — the minimal workable cluster size t grows with √d/ε",
		Run:      runTMin,
	})
}

// runTMin measures the "needed cluster size" column of Table 1: on an
// instance whose planted cluster is essentially the whole dataset (so the
// only obstacle is the algorithm's own thresholds), scan a ladder of
// targets t and report the smallest one at which the pipeline succeeds in
// a majority of trials. Theorem 3.2 prices that threshold at
// Ω(√d/ε · polylog): it must grow when ε shrinks and when d grows.
func runTMin(seed int64, quick bool) []*bench.Table {
	rng := rand.New(rand.NewSource(seed))
	type cfg struct {
		d   int
		eps float64
	}
	cfgs := []cfg{{2, 4}, {2, 2}, {2, 1}, {8, 2}, {32, 2}}
	trials := 4
	if quick {
		cfgs = []cfg{{2, 2}, {8, 2}}
		trials = 2
	}
	ladder := []int{60, 90, 135, 200, 300, 450, 675}

	tb := bench.NewTable("minimal workable t (n=900, 85% planted cluster, δ=0.05)",
		"d", "ε", "t_min measured", "√d/ε (shape)")
	tb.Note = "t_min = smallest ladder value where the pipeline succeeds in > half of " +
		bench.F(float64(trials)) + " trials; ladder " + bench.F(60) + "…" + bench.F(675) + " (×1.5 steps)"

	const n = 900
	for _, c := range cfgs {
		grid, err := geometry.NewGrid(1024, c.d)
		if err != nil {
			panic(err)
		}
		inst, err := workload.PlantedBall{N: n, ClusterSize: 765, Radius: 0.04}.Generate(rng, grid)
		if err != nil {
			panic(err)
		}
		ix, err := geometry.NewDistanceIndex(inst.Points)
		if err != nil {
			panic(err)
		}
		tMin := "-"
		for _, tt := range ladder {
			prm := core.Params{T: tt, Privacy: dp.Params{Epsilon: c.eps, Delta: 0.05}, Beta: 0.1, Grid: grid}
			success := 0
			for i := 0; i < trials; i++ {
				rad, err := core.GoodRadius(rng, ix, prm)
				if err != nil || rad.ZeroCluster {
					continue
				}
				cen, err := core.GoodCenter(rng, inst.Points, rad.Radius, prm)
				if err != nil {
					continue
				}
				ball := geometry.Ball{Center: cen.Center, Radius: cen.Radius}
				if ball.Count(inst.Points) >= tt/2 {
					success++
				}
			}
			if success*2 > trials {
				tMin = bench.F(float64(tt))
				break
			}
		}
		tb.AddRow(c.d, c.eps, tMin, math.Sqrt(float64(c.d))/c.eps)
	}
	return []*bench.Table{tb}
}
