package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// Every artifact of DESIGN.md's per-experiment index must be present.
	want := []string{
		"table1", "fig1", "fig2", "radius-w", "delta-logstar",
		"intpoint", "sa", "kcover", "ablation", "eps-sweep", "kmeans",
		"tmin", "lowerbound",
	}
	for _, id := range want {
		if _, err := Get(id); err != nil {
			t.Errorf("experiment %q missing: %v", id, err)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registry has %d experiments, index lists %d: %v", len(IDs()), len(want), IDs())
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestAllSortedAndNonEmptyMetadata(t *testing.T) {
	all := All()
	for i := 1; i < len(all); i++ {
		if all[i-1].ID >= all[i].ID {
			t.Errorf("All() not sorted: %q ≥ %q", all[i-1].ID, all[i].ID)
		}
	}
	for _, e := range all {
		if e.Artifact == "" || e.Run == nil {
			t.Errorf("experiment %q has empty metadata", e.ID)
		}
	}
}

// TestEveryExperimentRunsQuick executes each experiment in quick mode and
// sanity-checks the produced tables. This is the integration test that keeps
// EXPERIMENTS.md regenerable.
func TestEveryExperimentRunsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped with -short")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run(1, true)
			if len(tables) == 0 {
				t.Fatal("no tables produced")
			}
			for _, tb := range tables {
				if tb.Title == "" || len(tb.Headers) == 0 {
					t.Errorf("table missing title/headers: %+v", tb)
				}
				if len(tb.Rows) == 0 {
					t.Errorf("table %q has no rows", tb.Title)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Headers) {
						t.Errorf("table %q row arity %d vs %d headers", tb.Title, len(row), len(tb.Headers))
					}
				}
				out := tb.Render()
				if !strings.Contains(out, tb.Title) {
					t.Errorf("render of %q missing its title", tb.Title)
				}
			}
		})
	}
}

func TestExperimentsDeterministicPerSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("slow; skipped with -short")
	}
	e, err := Get("fig2")
	if err != nil {
		t.Fatal(err)
	}
	a := e.Run(7, true)
	b := e.Run(7, true)
	if a[0].Render() != b[0].Render() {
		t.Error("same seed produced different tables")
	}
}
