package experiments

import (
	"math/rand"

	"privcluster/internal/bench"
	"privcluster/internal/core"
	"privcluster/internal/dp"
	"privcluster/internal/geometry"
	"privcluster/internal/workload"
)

func init() {
	register(Experiment{
		ID:       "kcover",
		Artifact: "Observation 3.5 — iterated 1-cluster as a k-clustering heuristic",
		Run:      runKCover,
	})
}

// runKCover plants k well-separated blobs and iterates the 1-cluster
// algorithm k times (budget split per round), reporting how much of the
// data the returned balls cover — the paper's proposed k-clustering
// heuristic.
func runKCover(seed int64, quick bool) []*bench.Table {
	rng := rand.New(rand.NewSource(seed))
	ks := []int{2, 3, 4}
	if quick {
		ks = []int{2}
	}
	tb := bench.NewTable("k-ball covering of k planted blobs (d=2, per-round ε=6)",
		"k", "n", "balls found", "coverage", "blobs hit")
	tb.Note = "coverage = fraction of all points inside some returned ball; a blob is hit when some ball contains its planted center"

	grid, err := geometry.NewGrid(1024, 2)
	if err != nil {
		panic(err)
	}
	for _, k := range ks {
		n := 350 * k
		mi, err := workload.MultiCluster{N: n, K: k, Radius: 0.02, Spread: 0.3, NoiseFr: 0.05}.Generate(rng, grid)
		if err != nil {
			panic(err)
		}
		prm := core.Params{
			T:       200,
			Privacy: dp.Params{Epsilon: 6 * float64(k), Delta: 0.02 * float64(k)},
			Beta:    0.1,
			Grid:    grid,
		}
		balls, err := core.KCover(rng, mi.Points, k, prm)
		if err != nil {
			panic(err)
		}
		hit := 0
		for _, c := range mi.Centers {
			for _, b := range balls {
				if b.Contains(c) {
					hit++
					break
				}
			}
		}
		tb.AddRow(k, n, len(balls), bench.Coverage(mi.Points, balls), hit)
	}
	return []*bench.Table{tb}
}
