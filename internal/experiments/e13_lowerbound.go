package experiments

import (
	"math"

	"privcluster/internal/bench"
	"privcluster/internal/recconcave"
)

func init() {
	register(Experiment{
		ID:       "lowerbound",
		Artifact: "Theorem 5.2 / Corollary 5.4 — the Ω(log*|X|) sample-complexity landscape",
		Run:      runLowerBound,
	})
}

// tower returns tower(j): tower(0)=1, tower(j)=2^{tower(j−1)}, saturating
// at +Inf once it overflows float64 (which happens at j = 6).
func tower(j int) float64 {
	x := 1.0
	for i := 0; i < j; i++ {
		if x > 1024 {
			return math.Inf(1)
		}
		x = math.Pow(2, x)
	}
	return x
}

// runLowerBound tabulates the lower-bound side of the paper (§5): the
// interior-point problem needs n = Ω(log*|X|) samples (Theorem 5.2), the
// reduction of Theorem 5.3 transfers that to the 1-cluster problem, and
// Corollary 5.4 makes the transfer effective for any approximation factor
// w below a tower in n. The table shows, per domain size, the log* floor
// and the (absurdly generous) tower ceiling on w — i.e. that for every
// implementable parameter regime the floor applies, and that an infinite
// domain is impossible.
//
// The quantities are analytic consequences of our implemented LogStar and
// of Corollary 5.4's formula w ≤ ¼·tower(log(n^{1/5}/40)); the companion
// column evaluates the reduction's sample cost m − n from Theorem 5.3 with
// our RecConcave promise formula, tying the table to running code.
func runLowerBound(seed int64, quick bool) []*bench.Table {
	tb := bench.NewTable("lower-bound landscape (Theorem 5.2, Theorem 5.3, Corollary 5.4)",
		"|X|", "log*|X| (floor on n)", "reduction overhead m−n (w=8, ε=1, δ=1/(200n²), n=1000)",
		"tower ceiling on w at n=10^5")
	tb.Note = "floor: any private interior-point/1-cluster solver needs n = Ω(log*|X|); overhead: the extra samples Algorithm IntPoint adds (Theorem 5.3 with our RecConcave constants); ceiling: Corollary 5.4 applies to every w below ¼·tower(log(n^{1/5}/40)) — astronomically permissive"

	nRef := 1000.0
	// Corollary 5.4's ceiling ¼·tower(log₂(n^{1/5}/40)) is domain-free; it
	// exceeds any fixed w once n clears a quintic threshold (tower(j) ≥ 4w
	// first at small j), so the floor column is binding in every regime a
	// computer can represent. tower() saturates to +Inf at j = 6.
	ceiling := tower(3) / 4 // = 4: already permits w ≤ 4 at log-argument 3
	for _, logSize := range []int{8, 16, 32, 64} {
		size := math.Pow(2, float64(logSize))
		ls := recconcave.LogStar(size)
		// Theorem 5.3: m = n + 8^{log*(4w)}·(144·log*(4w)/ε)·log(12·log*(4w)/(βδ)).
		w := 8.0
		lw := float64(recconcave.LogStar(4 * w))
		delta := 1.0 / (200 * nRef * nRef)
		beta := 0.1
		overhead := math.Pow(8, lw) * (144 * lw / 1.0) * math.Log(12*lw/(beta*delta))
		tb.AddRow(
			"2^"+bench.F(float64(logSize)),
			ls,
			bench.F(overhead),
			"tower-bounded (tower(3)/4 = "+bench.F(ceiling)+", tower(6) = ∞)",
		)
	}
	return []*bench.Table{tb}
}
