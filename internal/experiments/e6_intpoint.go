package experiments

import (
	"math"
	"math/rand"

	"privcluster/internal/bench"
	"privcluster/internal/core"
	"privcluster/internal/dp"
	"privcluster/internal/geometry"
	"privcluster/internal/workload"
)

func init() {
	register(Experiment{
		ID:       "intpoint",
		Artifact: "Theorem 5.3 — 1-cluster solves the interior-point problem (the lower-bound reduction)",
		Run:      runIntPoint,
	})
}

// runIntPoint runs Algorithm IntPoint end to end: the 1-cluster solver is
// the only non-trivial ingredient, so a high interior-point success rate
// demonstrates the reduction that transfers the Ω(log*|X|) lower bound of
// Bun et al. to the 1-cluster problem (Corollary 5.4).
func runIntPoint(seed int64, quick bool) []*bench.Table {
	rng := rand.New(rand.NewSource(seed))
	ms := []int{1800, 3600}
	trials := 5
	if quick {
		ms = []int{1800}
		trials = 2
	}

	tb := bench.NewTable("IntPoint reduction (d=1, |X|=2^16, ε=4)",
		"m", "innerN", "trials", "interior-point successes", "median dist to data median")
	tb.Note = "success = released value within [min(S), max(S)]; Theorem 5.3 guarantees success w.p. ≥ 1−2β via any 1-cluster solver"

	grid, err := geometry.NewGrid(1<<16, 1)
	if err != nil {
		panic(err)
	}
	for _, m := range ms {
		pad := m / 6
		vals, err := workload.SortedValues(rng, m, pad, 0.5, 0.01)
		if err != nil {
			panic(err)
		}
		minV, maxV := vals[0], vals[0]
		for _, v := range vals {
			minV = math.Min(minV, v)
			maxV = math.Max(maxV, v)
		}
		innerN := 2 * m / 3
		prm := core.IntPointParams{
			InnerN: innerN,
			Cluster: core.Params{
				T:       innerN / 2,
				Privacy: dp.Params{Epsilon: 4, Delta: 0.05},
				Beta:    0.1,
				Grid:    grid,
			},
			Privacy: dp.Params{Epsilon: 4, Delta: 0.05},
			Beta:    0.1,
		}
		success := 0
		var dists []float64
		for i := 0; i < trials; i++ {
			res, err := core.IntPoint(rng, vals, prm)
			if err != nil {
				continue
			}
			if res.Point >= minV && res.Point <= maxV {
				success++
			}
			dists = append(dists, math.Abs(res.Point-0.5))
		}
		tb.AddRow(m, innerN, trials, success, bench.Median(dists))
	}
	return []*bench.Table{tb}
}
