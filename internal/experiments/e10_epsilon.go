package experiments

import (
	"math"
	"math/rand"

	"privcluster/internal/bench"
	"privcluster/internal/core"
	"privcluster/internal/dp"
	"privcluster/internal/geometry"
	"privcluster/internal/workload"
)

func init() {
	register(Experiment{
		ID:       "eps-sweep",
		Artifact: "Theorem 3.2 — Δ ∝ 1/ε and the minimal workable budget",
		Run:      runEpsSweep,
	})
}

// runEpsSweep sweeps the privacy budget on a fixed planted instance.
// Theorem 3.2 prices both the size loss Δ and the t-threshold at 1/ε, so
// tightening ε must first inflate the measured loss and then break the run
// entirely (the internal stability thresholds exceed the cluster): the
// table records the success rate, the measured Δ and the radius factor per
// ε, exposing the utility cliff the theory predicts.
func runEpsSweep(seed int64, quick bool) []*bench.Table {
	rng := rand.New(rand.NewSource(seed))
	epsilons := []float64{0.5, 1, 2, 4, 8}
	trials := 5
	if quick {
		epsilons = []float64{1, 4}
		trials = 2
	}
	const (
		n           = 1200
		clusterSize = 800
		t           = 600
		radius      = 0.02
	)

	tb := bench.NewTable("utility vs ε (d=2 planted ball, n=1200, t=600, δ=0.05)",
		"ε", "success rate", "Δ_meas", "w_meas", "raw r / r2")
	tb.Note = "success = pipeline returned a ball; failures are the internal stability thresholds (∝ 1/ε) outgrowing the cluster, exactly Theorem 3.2's t ≳ 1/ε requirement"

	grid, err := geometry.NewGrid(1024, 2)
	if err != nil {
		panic(err)
	}
	inst, err := workload.PlantedBall{N: n, ClusterSize: clusterSize, Radius: radius}.Generate(rng, grid)
	if err != nil {
		panic(err)
	}
	ix, err := geometry.NewDistanceIndex(inst.Points)
	if err != nil {
		panic(err)
	}
	_, r2, err := ix.TwoApprox(t)
	if err != nil {
		panic(err)
	}

	for _, eps := range epsilons {
		prm := core.Params{T: t, Privacy: dp.Params{Epsilon: eps, Delta: 0.05}, Beta: 0.1, Grid: grid}
		success := 0
		var dl, wl, rawl []float64
		for i := 0; i < trials; i++ {
			res, err := core.OneCluster(rng, inst.Points, prm)
			if err != nil {
				continue
			}
			success++
			count := res.Ball.Count(inst.Points)
			dl = append(dl, math.Max(0, float64(t-count)))
			wl = append(wl, res.Ball.Radius/r2)
			rawl = append(rawl, res.RawRadius/r2)
		}
		row := func(xs []float64) string {
			if len(xs) == 0 {
				return "-"
			}
			return bench.F(bench.Mean(xs))
		}
		tb.AddRow(eps, float64(success)/float64(trials), row(dl), row(wl), row(rawl))
	}
	return []*bench.Table{tb}
}
