package experiments

import (
	"math/rand"

	"privcluster/internal/bench"
	"privcluster/internal/dp"
	"privcluster/internal/geometry"
	"privcluster/internal/kmeans"
	"privcluster/internal/vec"
	"privcluster/internal/workload"
)

func init() {
	register(Experiment{
		ID:       "kmeans",
		Artifact: "§1.1 application — private k-means seeded by the 1-cluster algorithm",
		Run:      runKMeans,
	})
}

// runKMeans compares three k-means pipelines on planted blobs:
//
//   - non-private Lloyd from random seeds (the utility ceiling);
//   - a naive private pipeline: random seeds + Lloyd with NoisyAVG updates
//     (no private seeding — centers that start in the wrong basin stay
//     there, since assignments cannot be released to restart);
//   - the 1-cluster-seeded private pipeline of internal/kmeans.
//
// The paper's point: a minority-cluster locator makes private seeding
// possible, and seeding is where private k-means is won or lost.
func runKMeans(seed int64, quick bool) []*bench.Table {
	rng := rand.New(rand.NewSource(seed))
	ks := []int{3, 4}
	trials := 3
	if quick {
		ks = []int{3}
		trials = 1
	}
	tb := bench.NewTable("private k-means on k planted blobs (d=2, ε=30, δ=0.06)",
		"k", "method", "cost (mean)", "blobs hit (mean)")
	tb.Note = "cost = mean squared distance to nearest center; a blob is hit when a center lands within 0.1 of its planted center"

	grid, err := geometry.NewGrid(1024, 2)
	if err != nil {
		panic(err)
	}
	for _, k := range ks {
		mi, err := workload.MultiCluster{N: 350 * k, K: k, Radius: 0.02, Spread: 0.3, NoiseFr: 0.05}.Generate(rng, grid)
		if err != nil {
			panic(err)
		}
		hits := func(centers []vec.Vector) float64 {
			h := 0
			for _, c := range mi.Centers {
				for _, z := range centers {
					if c.Dist(z) < 0.1 {
						h++
						break
					}
				}
			}
			return float64(h)
		}
		randomSeeds := func() []vec.Vector {
			out := make([]vec.Vector, k)
			for i := range out {
				out[i] = vec.Of(rng.Float64(), rng.Float64())
			}
			return out
		}

		var costNP, hitNP, costNaive, hitNaive, costOurs, hitOurs []float64
		for trial := 0; trial < trials; trial++ {
			// Non-private Lloyd.
			np := kmeans.LloydNonprivate(mi.Points, randomSeeds(), 8)
			costNP = append(costNP, kmeans.Cost(mi.Points, np))
			hitNP = append(hitNP, hits(np))

			// Naive private: random seeds, NoisyAVG Lloyd updates.
			centers := randomSeeds()
			perAvg := dp.Params{Epsilon: 30.0 / float64(4*k), Delta: 0.06 / float64(4*k)}
			for round := 0; round < 4; round++ {
				groups := assignNearest(mi.Points, centers)
				for c := range centers {
					res, err := dp.NoisyAverage(rng, groups[c], centers[c], 0.15, perAvg)
					if err != nil {
						panic(err)
					}
					if !res.Aborted {
						centers[c] = res.Average.Clamp(0, 1)
					}
				}
			}
			costNaive = append(costNaive, kmeans.Cost(mi.Points, centers))
			hitNaive = append(hitNaive, hits(centers))

			// 1-cluster-seeded private k-means.
			res, err := kmeans.Run(rng, mi.Points, kmeans.Params{
				K: k, T: 250, Privacy: dp.Params{Epsilon: 30, Delta: 0.06},
				Rounds: 3, MoveRadius: 0.15, Beta: 0.1, Grid: grid,
			})
			if err == nil {
				costOurs = append(costOurs, res.Cost)
				hitOurs = append(hitOurs, hits(res.Centers))
			}
		}
		tb.AddRow(k, "non-private Lloyd", bench.Mean(costNP), bench.Mean(hitNP))
		tb.AddRow(k, "private, random seeds", bench.Mean(costNaive), bench.Mean(hitNaive))
		if len(costOurs) > 0 {
			tb.AddRow(k, "private, 1-cluster seeds (this work)", bench.Mean(costOurs), bench.Mean(hitOurs))
		} else {
			tb.AddRow(k, "private, 1-cluster seeds (this work)", "-", "-")
		}
	}
	return []*bench.Table{tb}
}

func assignNearest(points []vec.Vector, centers []vec.Vector) [][]vec.Vector {
	out := make([][]vec.Vector, len(centers))
	for _, p := range points {
		best, bestD := 0, 1e18
		for c, ctr := range centers {
			if d := p.DistSq(ctr); d < bestD {
				best, bestD = c, d
			}
		}
		out[best] = append(out[best], p)
	}
	return out
}
