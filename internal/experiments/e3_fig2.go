package experiments

import (
	"math"
	"math/rand"

	"privcluster/internal/bench"
	"privcluster/internal/stability"
)

func init() {
	register(Experiment{
		ID:       "fig2",
		Artifact: "Figure 2 — extending the chosen interval by its length captures all of S′",
		Run:      runFig2,
	})
}

// runFig2 quantifies the paper's Figure 2: a set S′ of diameter r straddles
// the boundary of the length-r partition about half the time, so the chosen
// heavy interval I alone misses part of S′ — but Î (I extended by r on each
// side, total length 3r) always contains S′. Extension sweep included to
// show 1 side-length is exactly what is needed.
func runFig2(seed int64, quick bool) []*bench.Table {
	rng := rand.New(rand.NewSource(seed))
	trials := 400
	if quick {
		trials = 50
	}
	const (
		n = 500
		r = 0.04
	)

	tb := bench.NewTable("Figure 2 (measured): capture of a diameter-r set by the chosen length-r interval",
		"extension (×r per side)", "interval length", "capture-all fraction", "mean captured")
	tb.Note = "S′ = " + bench.F(n) + " points spanning exactly r; the heavy interval is chosen privately (ε=1); extension by 1·r per side is the paper's Î"

	for _, ext := range []float64{0, 0.5, 1, 2} {
		captureAll := 0
		var captured []float64
		for trial := 0; trial < trials; trial++ {
			center := 0.2 + 0.6*rng.Float64()
			pts := make([]float64, n)
			for i := range pts {
				pts[i] = center + (rng.Float64()-0.5)*r
			}
			offset := rng.Float64() * r
			hist := make(map[int64]int)
			for _, p := range pts {
				hist[int64(math.Floor((p-offset)/r))]++
			}
			res, err := stability.Choose(rng, hist, stability.Params{Epsilon: 1, Delta: 1e-6})
			if err != nil {
				panic(err)
			}
			if res.Bottom {
				continue
			}
			lo := offset + float64(res.Key)*r - ext*r
			hi := offset + float64(res.Key+1)*r + ext*r
			in := 0
			for _, p := range pts {
				if p >= lo && p <= hi {
					in++
				}
			}
			captured = append(captured, float64(in))
			if in == n {
				captureAll++
			}
		}
		tb.AddRow(ext, bench.F((1+2*ext))+"·r", float64(captureAll)/float64(trials), bench.Mean(captured))
	}
	return []*bench.Table{tb}
}
