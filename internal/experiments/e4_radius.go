package experiments

import (
	"math"
	"math/rand"

	"privcluster/internal/bench"
	"privcluster/internal/core"
	"privcluster/internal/dp"
	"privcluster/internal/geometry"
	"privcluster/internal/workload"
)

func init() {
	register(Experiment{
		ID:       "radius-w",
		Artifact: "Theorem 3.2 / Lemma 3.7 — radius factor w = O(√log n), independent of d",
		Run:      runRadiusW,
	})
}

// runRadiusW sweeps n at fixed d and measures the radius approximation
// factor. Theorem 3.2 predicts w ∝ √k with k = Θ(log n): the released
// radius divided by √k should stay flat as n grows, and the *effective*
// radius (smallest ball around the released center that actually covers t
// points — the honest post-hoc measure) should be far below the released
// worst-case radius.
func runRadiusW(seed int64, quick bool) []*bench.Table {
	rng := rand.New(rand.NewSource(seed))
	ns := []int{400, 800, 1600, 3200}
	trials := 3
	if quick {
		ns = []int{400, 800}
		trials = 1
	}
	const d = 8

	tb := bench.NewTable("w vs n (d=8 planted ball, ε=2, δ=0.05)",
		"n", "k", "2approx r", "released R", "w=R/r2", "w/√k", "effective R", "w_eff")
	tb.Note = "w/√k flat across the n sweep is the √log n shape; k is the JL/identity dimension used"

	grid, err := geometry.NewGrid(1024, d)
	if err != nil {
		panic(err)
	}
	for _, n := range ns {
		inst, err := workload.PlantedBall{N: n, ClusterSize: 3 * n / 5, Radius: 0.02}.Generate(rng, grid)
		if err != nil {
			panic(err)
		}
		t := n / 2
		ix, err := geometry.NewDistanceIndex(inst.Points)
		if err != nil {
			panic(err)
		}
		_, r2, err := ix.TwoApprox(t)
		if err != nil {
			panic(err)
		}
		prm := core.Params{T: t, Privacy: dp.Params{Epsilon: 2, Delta: 0.05}, Beta: 0.1, Grid: grid}
		var rel, eff, ws, wsk, weff []float64
		k := 0
		for i := 0; i < trials; i++ {
			res, err := core.OneCluster(rng, inst.Points, prm)
			if err != nil {
				continue
			}
			k = res.K
			er := bench.EffectiveRadius(inst.Points, res.Ball.Center, t)
			rel = append(rel, res.Ball.Radius)
			eff = append(eff, er)
			ws = append(ws, res.Ball.Radius/r2)
			wsk = append(wsk, res.Ball.Radius/r2/math.Sqrt(float64(res.K)))
			weff = append(weff, er/r2)
		}
		if len(rel) == 0 {
			tb.AddRow(n, "-", r2, "-", "-", "-", "-", "-")
			continue
		}
		tb.AddRow(n, k, r2, bench.Mean(rel), bench.Mean(ws), bench.Mean(wsk),
			bench.Mean(eff), bench.Mean(weff))
	}
	return []*bench.Table{tb}
}
