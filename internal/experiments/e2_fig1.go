package experiments

import (
	"math"
	"math/rand"

	"privcluster/internal/bench"
	"privcluster/internal/stability"
	"privcluster/internal/vec"
)

func init() {
	register(Experiment{
		ID:       "fig1",
		Artifact: "Figure 1 — axis-by-axis heavy intervals intersect in an empty box",
		Run:      runFig1,
	})
}

// runFig1 quantifies the failure mode the paper's Figure 1 illustrates (the
// "first attempt" of Section 3.2): privately picking a heavy interval per
// axis and intersecting them can produce an *empty* box.
//
// Construction: d groups of n/d points; group i has coordinate i pinned
// near 0.9 and all other coordinates uniform in [0, 0.8]. On every axis i
// the heaviest interval is the one near 0.9 (it holds the whole group i),
// yet no single point is near 0.9 on two axes at once, so the intersection
// box is empty.
func runFig1(seed int64, quick bool) []*bench.Table {
	rng := rand.New(rand.NewSource(seed))
	dims := []int{2, 4, 8, 16}
	trials := 20
	if quick {
		dims = []int{2, 4}
		trials = 5
	}
	const perGroup = 200
	const intervalLen = 0.1

	tb := bench.NewTable("Figure 1 (measured): per-axis heavy intervals vs their intersection",
		"d", "n", "min axis interval count", "box count", "empty-box fraction")
	tb.Note = "heavy intervals are chosen privately (stability histogram, ε=1 per axis); a sound per-axis count with an empty intersection is exactly Figure 1's failure"

	for _, d := range dims {
		n := perGroup * d
		pts := make([]vec.Vector, 0, n)
		for g := 0; g < d; g++ {
			for i := 0; i < perGroup; i++ {
				p := make(vec.Vector, d)
				for j := range p {
					if j == g {
						p[j] = 0.9 + (rng.Float64()-0.5)*0.02
					} else {
						p[j] = rng.Float64() * 0.8
					}
				}
				pts = append(pts, p)
			}
		}
		empty := 0
		var minAxisCounts, boxCounts []float64
		for trial := 0; trial < trials; trial++ {
			offset := rng.Float64() * intervalLen
			chosen := make([]int64, d)
			minAxis := math.Inf(1)
			ok := true
			for axis := 0; axis < d; axis++ {
				hist := make(map[int64]int)
				for _, p := range pts {
					hist[int64(math.Floor((p[axis]-offset)/intervalLen))]++
				}
				res, err := stability.Choose(rng, hist, stability.Params{Epsilon: 1, Delta: 1e-6})
				if err != nil {
					panic(err)
				}
				if res.Bottom {
					ok = false
					break
				}
				chosen[axis] = res.Key
				if c := float64(hist[res.Key]); c < minAxis {
					minAxis = c
				}
			}
			if !ok {
				continue
			}
			inBox := 0
			for _, p := range pts {
				inside := true
				for axis := 0; axis < d; axis++ {
					if int64(math.Floor((p[axis]-offset)/intervalLen)) != chosen[axis] {
						inside = false
						break
					}
				}
				if inside {
					inBox++
				}
			}
			minAxisCounts = append(minAxisCounts, minAxis)
			boxCounts = append(boxCounts, float64(inBox))
			if inBox == 0 {
				empty++
			}
		}
		tb.AddRow(d, n, bench.Mean(minAxisCounts), bench.Mean(boxCounts),
			float64(empty)/float64(trials))
	}
	return []*bench.Table{tb}
}
