package experiments

import (
	"context"
	"math"
	"math/rand"

	"privcluster/internal/bench"
	"privcluster/internal/core"
	"privcluster/internal/dp"
	"privcluster/internal/geometry"
	"privcluster/internal/noise"
	"privcluster/internal/recconcave"
	"privcluster/internal/vec"
	"privcluster/internal/workload"
)

func init() {
	register(Experiment{
		ID:       "ablation",
		Artifact: "Design-choice ablations: capped score, JL projection, RecConcave vs SVT",
		Run:      runAblation,
	})
}

func runAblation(seed int64, quick bool) []*bench.Table {
	return []*bench.Table{
		ablationCappedScore(seed),
		ablationJL(seed, quick),
		ablationRecConcaveVsSVT(seed, quick),
	}
}

// ablationCappedScore reproduces the §3.1 sensitivity argument: on the
// adversarial instance (t/2 points at 0, t/2 at 1, one at ½), replacing the
// middle point moves the raw input-centered max-count by Θ(t) while the
// capped-average score L moves by at most 2 — the whole reason GoodRadius
// can search L privately.
func ablationCappedScore(seed int64) *bench.Table {
	tb := bench.NewTable("Ablation (a): sensitivity of the radius score on the §3.1 adversarial instance",
		"score", "value on S", "value on S′", "|difference|", "bound")
	tb.Note = "S′ replaces the single middle point; raw max-count has sensitivity Ω(t), the capped average L has sensitivity 2 (Lemma 4.5)"

	grid, err := geometry.NewGrid(1024, 1)
	if err != nil {
		panic(err)
	}
	const t = 500
	s, err := workload.AdversarialSensitivity(grid, t)
	if err != nil {
		panic(err)
	}
	// Neighbor: the middle point (0.5) moves to 1.
	sPrime := make([]vec.Vector, len(s))
	copy(sPrime, s)
	for i, p := range sPrime {
		if p[0] != 0 && p[0] != 1 {
			sPrime[i] = grid.Quantize(vec.Vector{1})
		}
	}
	// The critical radius: 0.5 (plus one grid step so quantization cannot
	// push the extremes out) — the ball around the middle point covers
	// everything in S, while nothing comparable exists in S′.
	r := 0.5 + grid.Step()
	ixS, err := geometry.NewDistanceIndex(s)
	if err != nil {
		panic(err)
	}
	ixSP, err := geometry.NewDistanceIndex(sPrime)
	if err != nil {
		panic(err)
	}
	rawS := float64(ixS.MaxCountWithin(r))
	rawSP := float64(ixSP.MaxCountWithin(r))
	tb.AddRow("raw max ball count", rawS, rawSP, math.Abs(rawS-rawSP), "Ω(t) = Ω("+bench.F(t)+")")

	lS, err := ixS.LValue(r, t)
	if err != nil {
		panic(err)
	}
	lSP, err := ixSP.LValue(r, t)
	if err != nil {
		panic(err)
	}
	tb.AddRow("capped average L(r,S)", lS, lSP, math.Abs(lS-lSP), "2")
	return tb
}

// ablationJL isolates the paper's "second attempt" lesson: locating the
// box in the full d-dimensional space costs a poly(d) radius factor, while
// locating it after a JL projection to k = O(log n) dimensions costs only
// √k. The released radius scales as √k in both, so the no-JL variant's
// radius grows with √d.
func ablationJL(seed int64, quick bool) *bench.Table {
	rng := rand.New(rand.NewSource(seed))
	trials := 3
	if quick {
		trials = 1
	}
	const (
		d = 32
		n = 500
	)
	tb := bench.NewTable("Ablation (b): GoodCenter with and without the JL projection (d=32)",
		"variant", "k", "released R", "effective R", "R ratio vs JL")
	tb.Note = "same planted instance and budget; the released radius scales with √k, so skipping JL (k = d) pays the √(d/log n) factor the paper's second attempt suffered"

	grid, err := geometry.NewGrid(1024, d)
	if err != nil {
		panic(err)
	}
	inst, err := workload.PlantedBall{N: n, ClusterSize: 350, Radius: 0.05}.Generate(rng, grid)
	if err != nil {
		panic(err)
	}
	const t = 250
	run := func(jlCap int) (k int, released, effective float64, ok bool) {
		prm := core.Params{T: t, Privacy: dp.Params{Epsilon: 16, Delta: 0.05}, Beta: 0.1, Grid: grid}
		prm.Profile = core.DefaultProfile()
		prm.Profile.JLDimCap = jlCap
		var rel, eff []float64
		for i := 0; i < trials; i++ {
			res, err := core.GoodCenter(rng, inst.Points, 0.1, prm)
			if err != nil {
				continue
			}
			k = res.K
			rel = append(rel, res.Radius)
			eff = append(eff, bench.EffectiveRadius(inst.Points, res.Center, t))
		}
		if len(rel) == 0 {
			return 0, 0, 0, false
		}
		return k, bench.Mean(rel), bench.Mean(eff), true
	}
	kJL, relJL, effJL, okJL := run(8)
	if okJL {
		tb.AddRow("with JL (k capped at 8)", kJL, relJL, effJL, 1.0)
	} else {
		tb.AddRow("with JL (k capped at 8)", "-", "-", "-", "-")
	}
	kNo, relNo, effNo, okNo := run(d + 1) // cap above d ⇒ identity, k = d
	if okNo && okJL {
		tb.AddRow("without JL (k = d)", kNo, relNo, effNo, relNo/relJL)
	} else if okNo {
		tb.AddRow("without JL (k = d)", kNo, relNo, effNo, "-")
	} else {
		tb.AddRow("without JL (k = d)", "-", "-", "-", "-")
	}
	return tb
}

// ablationRecConcaveVsSVT compares GoodRadius's RecConcave search against
// the straightforward sparse-vector binary search the paper mentions in
// §3.1 (footnote 2): the SVT search pays Θ(log(|X|√d)) per comparison in
// the cluster-size loss, while RecConcave pays 2^O(log*). At practical |X|
// both find the radius; the bound columns show who wins asymptotically.
func ablationRecConcaveVsSVT(seed int64, quick bool) *bench.Table {
	rng := rand.New(rand.NewSource(seed))
	trials := 3
	if quick {
		trials = 1
	}
	tb := bench.NewTable("Ablation (c): radius search — RecConcave vs SVT binary search (d=1, n=1200, t=600, ε=2)",
		"method", "|X|", "returned r (mean)", "count at r", "loss bound shape")
	tb.Note = "count at r = points in the best ball of the returned radius; bounds: RecConcave 8^{log*|X|}·log*|X|, SVT log(|X|)·log(log|X|/β)"

	const (
		n           = 1200
		clusterSize = 800
		t           = 600
	)
	eps, delta, beta := 2.0, 0.05, 0.1
	for _, size := range []int64{1 << 16, 1 << 40} {
		grid, err := geometry.NewGrid(size, 1)
		if err != nil {
			panic(err)
		}
		vals := make([]float64, n)
		for i := range vals {
			if i < clusterSize {
				vals[i] = 0.45 + rng.Float64()*0.04
			} else {
				vals[i] = rng.Float64()
			}
		}
		points := quantizeAll(grid, vals)
		ix, err := geometry.NewDistanceIndex(points)
		if err != nil {
			panic(err)
		}

		// RecConcave (via GoodRadius).
		prm := core.Params{T: t, Privacy: dp.Params{Epsilon: eps, Delta: delta}, Beta: beta, Grid: grid}
		var rcR []float64
		rcCount := 0
		for i := 0; i < trials; i++ {
			res, err := core.GoodRadius(rng, ix, prm)
			if err != nil {
				continue
			}
			rcR = append(rcR, res.Radius)
			rcCount = ix.MaxCountWithin(res.Radius)
		}
		ls := recconcave.LogStar(2 * float64(size))
		rcBound := math.Pow(8, float64(ls)) * float64(ls)
		rcCell := "-"
		if len(rcR) > 0 {
			rcCell = bench.F(bench.Mean(rcR))
		}
		tb.AddRow("RecConcave (GoodRadius)", bench.F(float64(size)), rcCell, rcCount, bench.F(rcBound))

		// SVT noisy binary search over the radius grid: find the smallest
		// grid radius with L(r) ≥ t − slack. Each comparison gets ε/levels.
		ls2, err := ix.BuildLStep(context.Background(), t)
		if err != nil {
			panic(err)
		}
		m := grid.RadiusGridSize()
		levels := int(math.Ceil(math.Log2(float64(m)))) + 1
		epsCmp := eps / float64(levels)
		slack := (2.0 / epsCmp) * math.Log(2*float64(levels)/beta)
		var svtR []float64
		svtCount := 0
		for i := 0; i < trials; i++ {
			lo, hi := int64(0), m-1
			for lo < hi {
				mid := (lo + hi) / 2
				noisy := ls2.Eval(grid.RadiusFromIndex(mid)) + noise.Laplace(rng, 2/epsCmp)
				if noisy >= float64(t)-slack {
					hi = mid
				} else {
					lo = mid + 1
				}
			}
			r := grid.RadiusFromIndex(lo)
			svtR = append(svtR, r)
			svtCount = ix.MaxCountWithin(r)
		}
		svtBound := float64(levels) * math.Log(float64(levels)/beta)
		tb.AddRow("SVT binary search", bench.F(float64(size)), bench.Mean(svtR), svtCount, bench.F(svtBound))
	}
	return tb
}
