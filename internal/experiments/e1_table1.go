package experiments

import (
	"math"
	"math/rand"
	"time"

	"privcluster/internal/baselines"
	"privcluster/internal/bench"
	"privcluster/internal/core"
	"privcluster/internal/dp"
	"privcluster/internal/geometry"
	"privcluster/internal/workload"
)

func init() {
	register(Experiment{
		ID:       "table1",
		Artifact: "Table 1 — four solutions to the 1-cluster problem",
		Run:      runTable1,
	})
}

// runTable1 measures, on a common planted-ball workload, every row of the
// paper's Table 1: needed cluster size, measured cluster-size loss Δ,
// measured radius factor w, and running time. The qualitative claims to
// reproduce: private aggregation requires a majority cluster and pays a
// radius factor that grows with √d (E9b isolates that); the exponential
// mechanism is near-exact but costs poly(|X|^d) time (it only runs on the
// coarsened grid); threshold query release (d = 1) is near-exact in radius
// with a polylog|X| loss; this paper's algorithm handles minority clusters
// on fine grids with a √log n radius factor.
func runTable1(seed int64, quick bool) []*bench.Table {
	rng := rand.New(rand.NewSource(seed))
	n := 1200
	trials := 3
	if quick {
		n, trials = 800, 1
	}
	clusterSize := 2 * n / 3
	radius := 0.02
	eps, delta, beta := 2.0, 0.05, 0.1
	tOurs := n / 2
	tMaj := int(0.54 * float64(n)) // majority requirement of row 1

	tb := bench.NewTable("Table 1 (measured): 1-cluster solutions on a planted ball, d=2, n="+bench.F(float64(n)),
		"method", "restriction", "t", "count", "Δ_meas", "w_meas", "time")
	tb.Note = "w_meas = released radius / non-private 2-approx radius (≤ 2·r_opt); Δ_meas = max(0, t − points in released ball), averaged over " + bench.F(float64(trials)) + " trials"

	grid, err := geometry.NewGrid(1024, 2)
	if err != nil {
		panic(err)
	}
	inst, err := workload.PlantedBall{N: n, ClusterSize: clusterSize, Radius: radius}.Generate(rng, grid)
	if err != nil {
		panic(err)
	}
	ref, err := baselines.TwoApproxBall(inst.Points, tOurs)
	if err != nil {
		panic(err)
	}

	// Row: this work. Failed trials (the 1/ε utility cliff of E10) are
	// skipped rather than fatal; the row shows "-" if every trial failed.
	{
		var dl, wl []float64
		var elapsed time.Duration
		runs := 0
		prm := core.Params{T: tOurs, Privacy: dp.Params{Epsilon: eps, Delta: delta}, Beta: beta, Grid: grid}
		for i := 0; i < trials; i++ {
			var res core.ClusterResult
			var err error
			elapsed += bench.Time(func() {
				res, err = core.OneCluster(rng, inst.Points, prm)
			})
			if err != nil {
				continue
			}
			runs++
			count := res.Ball.Count(inst.Points)
			dl = append(dl, math.Max(0, float64(tOurs-count)))
			wl = append(wl, res.Ball.Radius/ref.Radius)
		}
		if runs == 0 {
			tb.AddRow("this work (GoodRadius+GoodCenter)", "t ≳ √d/ε·2^O(log*|X|)", tOurs,
				"-", "-", "-", elapsed/time.Duration(trials))
		} else {
			tb.AddRow("this work (GoodRadius+GoodCenter)", "t ≳ √d/ε·2^O(log*|X|)", tOurs,
				tOurs-int(bench.Mean(dl)), bench.Mean(dl), bench.Mean(wl), elapsed/time.Duration(runs))
		}
	}

	// Row: exponential mechanism (only feasible on a coarse grid: the
	// poly(|X|^d) cost is the row's documented drawback).
	{
		coarse, err := geometry.NewGrid(32, 2)
		if err != nil {
			panic(err)
		}
		coarsePts := inst.Points
		var dl, wl []float64
		var elapsed time.Duration
		prm := baselines.ExpMechParams{T: tOurs, Epsilon: eps, Beta: beta, Grid: coarse}
		for i := 0; i < trials; i++ {
			var ball geometry.Ball
			elapsed += bench.Time(func() {
				var err error
				ball, err = baselines.ExpMech1Cluster(rng, coarsePts, prm)
				if err != nil {
					panic(err)
				}
			})
			count := ball.Count(inst.Points)
			dl = append(dl, math.Max(0, float64(tOurs-count)))
			wl = append(wl, ball.Radius/ref.Radius)
		}
		tb.AddRow("exponential mechanism [14]", "time poly(|X|^d): run at |X|=32", tOurs,
			tOurs-int(bench.Mean(dl)), bench.Mean(dl), bench.Mean(wl), elapsed/time.Duration(trials))
	}

	// Row: private aggregation (NRS'07-style; needs a majority cluster).
	{
		var dl, wl []float64
		var elapsed time.Duration
		prm := baselines.PrivAggParams{T: tMaj, Epsilon: eps, Beta: beta, Grid: grid}
		for i := 0; i < trials; i++ {
			var ball geometry.Ball
			elapsed += bench.Time(func() {
				var err error
				ball, err = baselines.PrivateAggregation(rng, inst.Points, prm)
				if err != nil {
					panic(err)
				}
			})
			count := ball.Count(inst.Points)
			dl = append(dl, math.Max(0, float64(tMaj-count)))
			wl = append(wl, ball.Radius/ref.Radius)
		}
		tb.AddRow("private aggregation [16]", "t ≥ 0.51·n; w grows with √d (E9b)", tMaj,
			tMaj-int(bench.Mean(dl)), bench.Mean(dl), bench.Mean(wl), elapsed/time.Duration(trials))
	}

	// Row: threshold query release, d = 1 (its own 1-D instance).
	{
		vals1d := make([]float64, n)
		for i := range vals1d {
			if i < clusterSize {
				vals1d[i] = 0.45 + rng.Float64()*2*radius
			} else {
				vals1d[i] = rng.Float64()
			}
		}
		exact, err := baselines.NonprivateInterval1D(vals1d, tOurs)
		if err != nil {
			panic(err)
		}
		var dl, wl []float64
		var elapsed time.Duration
		runs := 0
		prm := baselines.TreeHistParams{T: tOurs, Epsilon: eps, Beta: beta, GridSize: 1 << 16}
		for i := 0; i < trials; i++ {
			var iv baselines.Interval1D
			var err error
			elapsed += bench.Time(func() {
				iv, err = baselines.TreeHistogram1D(rng, vals1d, prm)
			})
			if err != nil {
				continue
			}
			runs++
			count := iv.Count(vals1d)
			dl = append(dl, math.Max(0, float64(tOurs-count)))
			wl = append(wl, iv.Radius/exact.Radius)
		}
		if runs == 0 {
			tb.AddRow("threshold query release [3,4]", "d = 1 only; Δ polylog|X| (E5)", tOurs,
				"-", "-", "-", elapsed/time.Duration(trials))
		} else {
			tb.AddRow("threshold query release [3,4]", "d = 1 only; Δ polylog|X| (E5)", tOurs,
				tOurs-int(bench.Mean(dl)), bench.Mean(dl), bench.Mean(wl), elapsed/time.Duration(runs))
		}
	}

	// Companion: the exponential mechanism's poly(|X|^d) running time,
	// measured directly by sweeping |X| at d = 2. Extrapolation to the main
	// table's |X| = 1024 grid gives the infeasibility Table 1 records.
	em := bench.NewTable("Table 1 companion: exponential-mechanism runtime grows as |X|^d (d=2)",
		"|X|", "centers |X|^d", "time", "time per center")
	em.Note = "this work runs on |X| = 2^16 grids in the same milliseconds — the poly(n, d, log|X|) column of Table 1"
	sizes := []int64{16, 32, 64}
	if !quick {
		sizes = append(sizes, 128)
	}
	for _, size := range sizes {
		g, err := geometry.NewGrid(size, 2)
		if err != nil {
			panic(err)
		}
		prm := baselines.ExpMechParams{T: tOurs, Epsilon: eps, Beta: beta, Grid: g}
		elapsed := bench.Time(func() {
			if _, err := baselines.ExpMech1Cluster(rng, inst.Points, prm); err != nil {
				panic(err)
			}
		})
		centers := size * size
		em.AddRow(size, centers, elapsed, time.Duration(int64(elapsed)/centers))
	}
	return []*bench.Table{tb, em}
}
