package experiments

import (
	"math"
	"math/rand"

	"privcluster/internal/baselines"
	"privcluster/internal/bench"
	"privcluster/internal/core"
	"privcluster/internal/dp"
	"privcluster/internal/geometry"
	"privcluster/internal/recconcave"
)

func init() {
	register(Experiment{
		ID:       "delta-logstar",
		Artifact: "Lemma 3.6 / Table 1 — Δ depends on |X| as 2^O(log*) vs the baseline's polylog",
		Run:      runDeltaLogstar,
	})
}

// runDeltaLogstar sweeps the domain size |X| at d = 1 and compares the
// cluster-size loss of this paper's algorithm against the threshold-release
// baseline. The headline: log*|X| is 4–5 for every remotely conceivable
// domain, so the paper's Δ bound is flat across the sweep, while the tree
// baseline's (log|X|)^1.5 keeps climbing; the measured losses follow.
func runDeltaLogstar(seed int64, quick bool) []*bench.Table {
	rng := rand.New(rand.NewSource(seed))
	sizes := []int64{1 << 8, 1 << 16, 1 << 32, 1 << 48}
	trials := 3
	if quick {
		sizes = []int64{1 << 8, 1 << 32}
		trials = 1
	}
	const (
		n           = 1200
		clusterSize = 800
		radius      = 0.02
	)
	t := 600
	eps, delta, beta := 2.0, 0.05, 0.1

	tb := bench.NewTable("Δ vs |X| (d=1, n=1200, t=600, ε=2)",
		"|X|", "log*|X|", "paper Δ bound (×1/ε)", "ours Δ_meas", "tree Δ bound", "tree Δ_meas")
	tb.Note = "bounds are the algorithms' release thresholds; measured Δ = max(0, t − points in released interval/ball), mean of " + bench.F(float64(trials)) + " trials"

	vals := make([]float64, n)
	for i := range vals {
		if i < clusterSize {
			vals[i] = 0.45 + rng.Float64()*2*radius
		} else {
			vals[i] = rng.Float64()
		}
	}

	for _, size := range sizes {
		grid, err := geometry.NewGrid(size, 1)
		if err != nil {
			panic(err)
		}
		points := quantizeAll(grid, vals)

		// Paper bound: the uncapped Γ formula of Algorithm 1 (up to the
		// 1/ε·log(1/βδ) factor common to both columns, what matters is the
		// 8^{log*}·log* growth).
		ls := recconcave.LogStar(2 * float64(size))
		paperBound := math.Pow(8, float64(ls)) * 144 * float64(ls)

		prm := core.Params{T: t, Privacy: dp.Params{Epsilon: eps, Delta: delta}, Beta: beta, Grid: grid}
		var oursD []float64
		for i := 0; i < trials; i++ {
			res, err := core.OneCluster(rng, points, prm)
			if err != nil {
				continue
			}
			count := res.Ball.Count(points)
			oursD = append(oursD, math.Max(0, float64(t-count)))
		}

		treeBound := baselines.TreeHistLossBound(size, eps, beta, n)
		var treeD []float64
		tp := baselines.TreeHistParams{T: t, Epsilon: eps, Beta: beta, GridSize: size}
		for i := 0; i < trials; i++ {
			iv, err := baselines.TreeHistogram1D(rng, vals, tp)
			if err != nil {
				continue
			}
			treeD = append(treeD, math.Max(0, float64(t-iv.Count(vals))))
		}

		oursCell := "-"
		if len(oursD) > 0 {
			oursCell = bench.F(bench.Mean(oursD))
		}
		treeCell := "-"
		if len(treeD) > 0 {
			treeCell = bench.F(bench.Mean(treeD))
		}
		tb.AddRow(bench.F(float64(size)), ls, paperBound, oursCell, treeBound, treeCell)
	}
	return []*bench.Table{tb}
}
