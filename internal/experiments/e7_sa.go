package experiments

import (
	"math/rand"

	"privcluster/internal/agg"
	"privcluster/internal/bench"
	"privcluster/internal/core"
	"privcluster/internal/dp"
	"privcluster/internal/geometry"
	"privcluster/internal/noise"
	"privcluster/internal/vec"
)

func init() {
	register(Experiment{
		ID:       "sa",
		Artifact: "Theorem 6.3 — sample-and-aggregate with the 1-cluster aggregator",
		Run:      runSA,
	})
}

// runSA compiles a non-private mean estimator into a private one three ways
// and compares their error on contaminated data (90% of rows concentrated,
// 10% adversarial outliers at the domain edge):
//
//   - non-private mean (no privacy, pulled by the outliers);
//   - GUPT-style averaging [15]: mean of the block evaluations plus Laplace
//     noise — private, but an *averaging* aggregator inherits the pull;
//   - Algorithm SA with the 1-cluster aggregator — private and robust,
//     because the aggregator locates the *cluster* of block evaluations.
//
// This is the paper's §1.1/§6 motivation for better aggregators.
func runSA(seed int64, quick bool) []*bench.Table {
	rng := rand.New(rand.NewSource(seed))
	n := 50000
	trials := 3
	if quick {
		n, trials = 20000, 1
	}
	const (
		m         = 5
		dim       = 2
		trueMean  = 0.55
		outlierAt = 1.0
	)
	eps, delta := 4.0, 0.05

	tb := bench.NewTable("Sample & aggregate on 10%-contaminated data (n="+bench.F(float64(n))+", m=5)",
		"aggregator", "private?", "robust?", "mean L2 error", "notes")
	tb.Note = "error to the uncontaminated mean (0.55, 0.55), mean of " + bench.F(float64(trials)) + " trials; f = block mean"

	rows := make([]float64, n)
	for i := range rows {
		if i < n*9/10 {
			rows[i] = trueMean + rng.NormFloat64()*0.02
		} else {
			rows[i] = outlierAt
		}
	}
	target := vec.Of(trueMean, trueMean)
	blockMean := func(rs []float64) vec.Vector {
		var s float64
		for _, r := range rs {
			s += r
		}
		mu := s / float64(len(rs))
		return vec.Of(mu, mu)
	}

	// Non-private mean.
	{
		var s float64
		for _, r := range rows {
			s += r
		}
		mu := s / float64(n)
		tb.AddRow("non-private mean", "no", "no", vec.Of(mu, mu).Dist(target), "baseline truth + outlier pull")
	}

	// GUPT-style: average the k block evaluations, add Laplace noise with
	// per-coordinate scale d/(k·ε) (one row changes one block's output by at
	// most 1 per coordinate, so the average moves by ≤ 1/k; L1 over d).
	{
		var errs []float64
		k := n / (9 * m)
		for trial := 0; trial < trials; trial++ {
			sum := vec.New(dim)
			block := make([]float64, m)
			for i := 0; i < k; i++ {
				for j := range block {
					block[j] = rows[rng.Intn(n)]
				}
				sum.AddInPlace(blockMean(block))
			}
			z := sum.Scale(1 / float64(k))
			for c := range z {
				z[c] += noise.Laplace(rng, float64(dim)/(float64(k)*eps))
			}
			errs = append(errs, z.Dist(target))
		}
		tb.AddRow("GUPT-style averaging [15]", "yes", "no", bench.Mean(errs), "noise tiny; outlier pull remains")
	}

	// Algorithm SA with the 1-cluster aggregator.
	{
		grid, err := geometry.NewGrid(4096, dim)
		if err != nil {
			panic(err)
		}
		prm := agg.Params{
			M:     m,
			Alpha: 0.5,
			Cluster: core.Params{
				Privacy: dp.Params{Epsilon: eps, Delta: delta},
				Beta:    0.1,
				Grid:    grid,
			},
		}
		var errs []float64
		for trial := 0; trial < trials; trial++ {
			res, err := agg.Run(rng, rows, blockMean, prm)
			if err != nil {
				continue
			}
			errs = append(errs, res.Point.Dist(target))
		}
		cell := "-"
		if len(errs) > 0 {
			cell = bench.F(bench.Mean(errs))
		}
		tb.AddRow("Algorithm SA (this work)", "yes", "yes", cell, "1-cluster aggregation ignores the outlier blocks")
	}
	return []*bench.Table{tb}
}
