package experiments

import (
	"privcluster/internal/geometry"
	"privcluster/internal/vec"
)

// quantizeAll lifts 1-D values onto a 1-D grid as points.
func quantizeAll(grid geometry.Grid, vals []float64) []vec.Vector {
	out := make([]vec.Vector, len(vals))
	for i, v := range vals {
		out[i] = grid.Quantize(vec.Vector{v})
	}
	return out
}
