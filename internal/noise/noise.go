// Package noise implements the random samplers underlying every
// differentially private mechanism in this repository: Laplace and Gaussian
// noise (Theorems 2.3 and 2.4 of the paper), plus the helpers the analyses
// need (tail bounds, per-coordinate vector noise).
//
// All samplers take an explicit *rand.Rand so that callers control seeding:
// tests run deterministically and concurrent components can hold independent
// generators. A production deployment concerned with floating-point attacks
// on DP noise would use a discrete sampler; that is out of scope for this
// reproduction and noted in DESIGN.md.
package noise

import (
	"math"
	"math/rand"

	"privcluster/internal/vec"
)

// Laplace returns one sample from the Laplace distribution Lap(scale)
// centered at zero, with density (1/2λ)·exp(−|y|/λ).
//
// It panics if scale <= 0 (a programming error: DP noise scales are derived
// from sensitivity/ε and must be positive).
func Laplace(rng *rand.Rand, scale float64) float64 {
	if scale <= 0 {
		panic("noise: non-positive Laplace scale")
	}
	// Inverse CDF: u uniform on (−1/2, 1/2); x = −λ·sgn(u)·ln(1−2|u|).
	u := rng.Float64() - 0.5
	if u < 0 {
		return scale * math.Log(1+2*u)
	}
	return -scale * math.Log(1-2*u)
}

// Gaussian returns one sample from N(0, sigma²).
func Gaussian(rng *rand.Rand, sigma float64) float64 {
	if sigma <= 0 {
		panic("noise: non-positive Gaussian sigma")
	}
	return rng.NormFloat64() * sigma
}

// LaplaceVector returns a d-dimensional vector of i.i.d. Lap(scale) noise.
func LaplaceVector(rng *rand.Rand, d int, scale float64) vec.Vector {
	out := make(vec.Vector, d)
	for i := range out {
		out[i] = Laplace(rng, scale)
	}
	return out
}

// GaussianVector returns a d-dimensional vector of i.i.d. N(0, sigma²) noise.
func GaussianVector(rng *rand.Rand, d int, sigma float64) vec.Vector {
	out := make(vec.Vector, d)
	for i := range out {
		out[i] = Gaussian(rng, sigma)
	}
	return out
}

// LaplaceTail returns P[|Lap(scale)| > x] = exp(−x/scale) for x ≥ 0.
// Used to size failure probabilities in utility analyses.
func LaplaceTail(scale, x float64) float64 {
	if x <= 0 {
		return 1
	}
	return math.Exp(-x / scale)
}

// LaplaceQuantile returns the x such that P[|Lap(scale)| > x] = beta,
// i.e. x = scale·ln(1/beta). It panics for beta outside (0, 1].
func LaplaceQuantile(scale, beta float64) float64 {
	if beta <= 0 || beta > 1 {
		panic("noise: LaplaceQuantile beta out of (0,1]")
	}
	return scale * math.Log(1/beta)
}

// GaussianTail returns P[N(0,sigma²) > x] using the complementary error
// function.
func GaussianTail(sigma, x float64) float64 {
	return 0.5 * math.Erfc(x/(sigma*math.Sqrt2))
}

// GaussianSigma returns the noise standard deviation required by the
// Gaussian mechanism (Theorem 2.4) for an L2-sensitivity-k function:
// σ = (k/ε)·sqrt(2·ln(1.25/δ)).
func GaussianSigma(l2Sensitivity, epsilon, delta float64) float64 {
	if l2Sensitivity < 0 || epsilon <= 0 || delta <= 0 || delta >= 1 {
		panic("noise: invalid Gaussian mechanism parameters")
	}
	return l2Sensitivity / epsilon * math.Sqrt(2*math.Log(1.25/delta))
}

// Uniform returns a uniform sample in [lo, hi).
func Uniform(rng *rand.Rand, lo, hi float64) float64 {
	if hi < lo {
		panic("noise: Uniform with hi < lo")
	}
	return lo + rng.Float64()*(hi-lo)
}

// Exponential returns one sample from the exponential distribution with the
// given rate (density rate·exp(−rate·x) on x ≥ 0). Used by the exponential
// mechanism's Gumbel-free sampling path in tests.
func Exponential(rng *rand.Rand, rate float64) float64 {
	if rate <= 0 {
		panic("noise: non-positive exponential rate")
	}
	return rng.ExpFloat64() / rate
}
