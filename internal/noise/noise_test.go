package noise

import (
	"math"
	"math/rand"
	"testing"
)

func TestLaplaceMomentsAndSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 200000
	const scale = 2.0
	var sum, sumSq float64
	neg := 0
	for i := 0; i < n; i++ {
		x := Laplace(rng, scale)
		sum += x
		sumSq += x * x
		if x < 0 {
			neg++
		}
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("Laplace mean = %v, want ~0", mean)
	}
	// Var(Lap(λ)) = 2λ² = 8.
	if math.Abs(variance-8) > 0.3 {
		t.Errorf("Laplace variance = %v, want ~8", variance)
	}
	frac := float64(neg) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("Laplace negative fraction = %v, want ~0.5", frac)
	}
}

func TestLaplaceTailMatchesEmpirical(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 100000
	const scale = 1.5
	x := 3.0
	exceed := 0
	for i := 0; i < n; i++ {
		if math.Abs(Laplace(rng, scale)) > x {
			exceed++
		}
	}
	want := LaplaceTail(scale, x)
	got := float64(exceed) / n
	if math.Abs(got-want) > 0.01 {
		t.Errorf("empirical tail %v vs analytic %v", got, want)
	}
}

func TestLaplacePanicsOnBadScale(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Laplace(0) did not panic")
		}
	}()
	Laplace(rand.New(rand.NewSource(1)), 0)
}

func TestGaussianMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 200000
	const sigma = 3.0
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := Gaussian(rng, sigma)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("Gaussian mean = %v", mean)
	}
	if math.Abs(variance-9) > 0.3 {
		t.Errorf("Gaussian variance = %v, want ~9", variance)
	}
}

func TestGaussianPanicsOnBadSigma(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Gaussian(-1) did not panic")
		}
	}()
	Gaussian(rand.New(rand.NewSource(1)), -1)
}

func TestVectorNoiseShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	lv := LaplaceVector(rng, 7, 1)
	if lv.Dim() != 7 {
		t.Errorf("LaplaceVector dim = %d", lv.Dim())
	}
	gv := GaussianVector(rng, 5, 1)
	if gv.Dim() != 5 {
		t.Errorf("GaussianVector dim = %d", gv.Dim())
	}
	if !lv.IsFinite() || !gv.IsFinite() {
		t.Error("noise vector not finite")
	}
}

func TestLaplaceQuantileInvertsTail(t *testing.T) {
	for _, scale := range []float64{0.5, 1, 4} {
		for _, beta := range []float64{0.5, 0.1, 0.01} {
			x := LaplaceQuantile(scale, beta)
			if got := LaplaceTail(scale, x); math.Abs(got-beta) > 1e-12 {
				t.Errorf("Tail(Quantile(%v)) = %v, want %v", beta, got, beta)
			}
		}
	}
}

func TestLaplaceQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("LaplaceQuantile(beta=0) did not panic")
		}
	}()
	LaplaceQuantile(1, 0)
}

func TestGaussianTailKnownValues(t *testing.T) {
	// P[N(0,1) > 0] = 0.5; P[N(0,1) > 1.96] ≈ 0.025.
	if got := GaussianTail(1, 0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("GaussianTail(1,0) = %v", got)
	}
	if got := GaussianTail(1, 1.959964); math.Abs(got-0.025) > 1e-4 {
		t.Errorf("GaussianTail(1,1.96) = %v", got)
	}
}

func TestGaussianSigmaFormula(t *testing.T) {
	// σ = (k/ε)·sqrt(2 ln(1.25/δ))
	got := GaussianSigma(2, 0.5, 1e-6)
	want := 2.0 / 0.5 * math.Sqrt(2*math.Log(1.25/1e-6))
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("GaussianSigma = %v, want %v", got, want)
	}
}

func TestGaussianSigmaPanicsOnBadParams(t *testing.T) {
	cases := []struct{ k, eps, delta float64 }{
		{-1, 1, 0.1}, {1, 0, 0.1}, {1, 1, 0}, {1, 1, 1},
	}
	for _, c := range cases {
		func() {
			defer func() { recover() }()
			GaussianSigma(c.k, c.eps, c.delta)
			t.Errorf("GaussianSigma(%v,%v,%v) did not panic", c.k, c.eps, c.delta)
		}()
	}
}

func TestUniformRange(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		x := Uniform(rng, 3, 7)
		if x < 3 || x >= 7 {
			t.Fatalf("Uniform out of range: %v", x)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += Exponential(rng, 2)
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("Exponential(rate=2) mean = %v, want 0.5", mean)
	}
}

func TestDeterminismAcrossSeeds(t *testing.T) {
	a := rand.New(rand.NewSource(42))
	b := rand.New(rand.NewSource(42))
	for i := 0; i < 100; i++ {
		if Laplace(a, 1) != Laplace(b, 1) {
			t.Fatal("same seed produced different Laplace streams")
		}
	}
}
