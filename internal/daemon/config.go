// Package daemon is the serving layer behind cmd/privclusterd: an
// HTTP/JSON front end over prepared privcluster.Dataset handles, with
// every query's (ε, δ) cost admitted through a durable per-principal
// ledger (internal/ledger) instead of the handles' own in-memory
// budgets. The package is importable — examples/daemon and the tests
// run the same Server the binary does.
//
// The trust boundary matches the rest of the module: the daemon holds
// raw data points and hands out differentially private releases; the
// privacy guarantee covers the released outputs, not server memory or
// transport. Deploy it inside the data's trust domain and protect the
// links (TLS termination in front, private networks). API keys gate
// who may spend which budget; they are not a cryptographic identity.
package daemon

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"privcluster"
)

// Config is the daemon configuration, normally loaded from a JSON file
// (see LoadConfig). The zero values of optional fields mean their
// documented defaults.
type Config struct {
	// Listen is the TCP address to serve on, e.g. ":7610" or
	// "127.0.0.1:0" (0 picks a free port; the bound address is printed).
	Listen string `json:"listen"`
	// LedgerDir is the durable budget ledger's directory. The daemon
	// takes the ledger's exclusive process lock for its lifetime: a
	// second daemon pointed at the same directory refuses to start, which
	// is exactly what makes over-spending across processes impossible.
	LedgerDir string `json:"ledger_dir"`
	// AdminListen, when set, binds a second TCP address serving the
	// operational endpoints that do not belong on the query port:
	// net/http/pprof profiling under /debug/pprof/. Bind it to a
	// loopback or otherwise access-controlled address — profiles expose
	// process internals (never dataset values, but plenty of structure).
	// Empty (the default) disables the admin listener entirely.
	AdminListen string `json:"admin_listen,omitempty"`
	// MaxDeadlineMS caps the per-request deadline_ms a client may ask
	// for (default 60000). Requests without deadline_ms run under the
	// connection's lifetime only.
	MaxDeadlineMS int `json:"max_deadline_ms,omitempty"`
	// SlowQueryMS is the duration at or above which a finished query is
	// logged at Warn with slow=true instead of Info (default 1000; negative
	// disables the escalation).
	SlowQueryMS int `json:"slow_query_ms,omitempty"`
	// Datasets are the named datasets the daemon serves.
	Datasets []DatasetConfig `json:"datasets"`
	// Principals are the API-key identities allowed to query, each with
	// its total (ε, δ) grant in the ledger.
	Principals []PrincipalConfig `json:"principals"`
}

// DatasetConfig describes one served dataset: where its points come
// from and the preparation options — the subset of
// privcluster.DatasetOptions that makes sense server-side.
type DatasetConfig struct {
	// Name is the handle clients query by ("dataset" in requests).
	Name string `json:"name"`
	// CSV is the points file: one point per line, comma-separated
	// coordinates, #-comments and blank lines skipped.
	CSV string `json:"csv"`
	// Grid is |X| (default 2¹⁶).
	Grid int64 `json:"grid,omitempty"`
	// Min, Max are the data domain bounds (both zero = unit cube).
	Min float64 `json:"min,omitempty"`
	Max float64 `json:"max,omitempty"`
	// Shards and Workers mirror DatasetOptions.
	Shards  int `json:"shards,omitempty"`
	Workers int `json:"workers,omitempty"`
	// RemoteShards lists shard-server addresses, one single-replica shard
	// per address.
	//
	// Deprecated: use Placement, which adds replica sets and failover
	// knobs. A remote_shards list behaves exactly like a placement whose
	// partitions each hold that one address.
	RemoteShards []string `json:"remote_shards,omitempty"`
	// Placement is the replicated shard-server topology in the
	// privcluster placement schema (the format cmd/shardctl generates:
	// "partitions" plus optional "retries", "hedge_delay_ms",
	// "probe_interval_ms", "dial_timeout_ms"), inlined as an object.
	// Mutually exclusive with RemoteShards.
	Placement json.RawMessage `json:"placement,omitempty"`
	// Mutable opens a streaming handle so queries may pin at_epoch.
	Mutable bool `json:"mutable,omitempty"`
}

// PrincipalConfig is one API-key identity and its total budget grant.
// On startup the daemon raises the principal's ledger grant up to
// (Epsilon, Delta) if the durable grant is below it — it never lowers a
// grant and never re-grants what a previous run already granted, so
// restarting a daemon cannot mint fresh budget.
type PrincipalConfig struct {
	Name    string  `json:"name"`
	APIKey  string  `json:"api_key"`
	Epsilon float64 `json:"epsilon"`
	Delta   float64 `json:"delta"`
}

// placement decodes the inlined placement block through the same parser
// cmd/shardctl and LoadPlacement use (nil when the block is absent).
func (d DatasetConfig) placement() (*privcluster.Placement, error) {
	if len(d.Placement) == 0 {
		return nil, nil
	}
	return privcluster.ParsePlacement(d.Placement)
}

// maxDeadline resolves the configured deadline cap.
func (c Config) maxDeadline() time.Duration {
	if c.MaxDeadlineMS > 0 {
		return time.Duration(c.MaxDeadlineMS) * time.Millisecond
	}
	return 60 * time.Second
}

// slowQuery resolves the slow-query log threshold.
func (c Config) slowQuery() time.Duration {
	switch {
	case c.SlowQueryMS > 0:
		return time.Duration(c.SlowQueryMS) * time.Millisecond
	case c.SlowQueryMS < 0:
		return 0
	default:
		return time.Second
	}
}

// Validate rejects a configuration the daemon could not serve.
func (c Config) Validate() error {
	if c.Listen == "" {
		return fmt.Errorf("daemon: config needs a listen address")
	}
	if c.LedgerDir == "" {
		return fmt.Errorf("daemon: config needs a ledger_dir")
	}
	if len(c.Datasets) == 0 {
		return fmt.Errorf("daemon: config serves no datasets")
	}
	seen := make(map[string]bool)
	for i, d := range c.Datasets {
		if d.Name == "" {
			return fmt.Errorf("daemon: dataset %d has no name", i)
		}
		if seen[d.Name] {
			return fmt.Errorf("daemon: duplicate dataset %q", d.Name)
		}
		seen[d.Name] = true
		if d.CSV == "" {
			return fmt.Errorf("daemon: dataset %q has no csv path", d.Name)
		}
		if len(d.Placement) > 0 {
			if len(d.RemoteShards) > 0 {
				return fmt.Errorf("daemon: dataset %q sets both placement and remote_shards", d.Name)
			}
			if _, err := d.placement(); err != nil {
				return fmt.Errorf("daemon: dataset %q: %w", d.Name, err)
			}
		}
	}
	if len(c.Principals) == 0 {
		return fmt.Errorf("daemon: config has no principals — nobody could query")
	}
	names, keys := make(map[string]bool), make(map[string]bool)
	for i, p := range c.Principals {
		if p.Name == "" {
			return fmt.Errorf("daemon: principal %d has no name", i)
		}
		if strings.ContainsAny(p.Name, "\"\n") {
			return fmt.Errorf("daemon: principal name %q contains quote or newline (breaks metric labels)", p.Name)
		}
		if names[p.Name] {
			return fmt.Errorf("daemon: duplicate principal %q", p.Name)
		}
		names[p.Name] = true
		if p.APIKey == "" {
			return fmt.Errorf("daemon: principal %q has no api_key", p.Name)
		}
		if keys[p.APIKey] {
			return fmt.Errorf("daemon: principal %q reuses another principal's api_key", p.Name)
		}
		keys[p.APIKey] = true
		if p.Epsilon < 0 || p.Delta < 0 || p.Delta >= 1 {
			return fmt.Errorf("daemon: principal %q grant (ε=%v, δ=%v) out of range", p.Name, p.Epsilon, p.Delta)
		}
	}
	return nil
}

// LoadConfig reads and validates a JSON configuration file. Unknown
// fields are rejected — a typoed knob should fail loudly, not silently
// serve with a default.
func LoadConfig(path string) (Config, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Config{}, err
	}
	var cfg Config
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("daemon: %s: %w", path, err)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, fmt.Errorf("%s: %w", path, err)
	}
	return cfg, nil
}
