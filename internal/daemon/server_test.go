package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"privcluster/internal/ledger"
	"privcluster/internal/transport"
)

// writeClusterCSV writes a 2-D planted-cluster dataset in the module's
// feasible test regime (grid 1024, query ε=4, δ=0.05, t=400): 500
// points within 0.02 of (0.5, 0.5) and 300 uniform.
func writeClusterCSV(t *testing.T, path string) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	var b strings.Builder
	b.WriteString("# planted cluster test data\n")
	for i := 0; i < 500; i++ {
		b.WriteString(fmt.Sprintf("%g,%g\n", 0.5+0.02*(rng.Float64()-0.5), 0.5+0.02*(rng.Float64()-0.5)))
	}
	for i := 0; i < 300; i++ {
		b.WriteString(fmt.Sprintf("%g,%g\n", rng.Float64(), rng.Float64()))
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

// writeValuesCSV writes a 1-D dataset for InteriorPoint: 2400 values in
// [0.4, 0.6] (innerN=1600 is feasible at ε=4, δ=0.05).
func writeValuesCSV(t *testing.T, path string) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	var b strings.Builder
	for i := 0; i < 2400; i++ {
		b.WriteString(fmt.Sprintf("%g\n", 0.4+0.2*rng.Float64()))
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

// testConfig builds a config serving the planted-cluster dataset to one
// principal ("alice", key "sekrit") whose grant admits exactly two
// (ε=4, δ=0.05) queries.
func testConfig(t *testing.T, dir string) Config {
	t.Helper()
	csv := filepath.Join(dir, "points.csv")
	writeClusterCSV(t, csv)
	return Config{
		Listen:    "127.0.0.1:0",
		LedgerDir: filepath.Join(dir, "ledger"),
		Datasets:  []DatasetConfig{{Name: "planted", CSV: csv, Grid: 1024}},
		Principals: []PrincipalConfig{
			{Name: "alice", APIKey: "sekrit", Epsilon: 9, Delta: 0.11},
		},
	}
}

// startServer constructs and starts a Server, registering cleanup.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		s.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
		s.Close()
	})
	return s
}

// post issues an authenticated JSON POST and decodes the response.
func post(t *testing.T, addr, path, key string, body any) (int, map[string]json.RawMessage) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", "http://"+addr+path, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s: decoding response: %v", path, err)
	}
	return resp.StatusCode, out
}

// get issues an authenticated GET.
func get(t *testing.T, addr, path, key string) (int, string) {
	t.Helper()
	req, err := http.NewRequest("GET", "http://"+addr+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b bytes.Buffer
	b.ReadFrom(resp.Body)
	return resp.StatusCode, b.String()
}

// errorCode extracts the typed code from an error envelope.
func errorCode(t *testing.T, body map[string]json.RawMessage) string {
	t.Helper()
	var env struct {
		Code string `json:"code"`
	}
	if err := json.Unmarshal(body["error"], &env); err != nil {
		t.Fatalf("no error envelope in %v: %v", body, err)
	}
	return env.Code
}

var clusterQuery = queryRequest{
	Dataset: "planted", T: 400, Epsilon: 4, Delta: 0.05, Seed: 7,
}

func TestServerClusterQueryAndBudget(t *testing.T) {
	s := startServer(t, testConfig(t, t.TempDir()))

	code, body := post(t, s.Addr(), "/v1/query/cluster", "sekrit", clusterQuery)
	if code != http.StatusOK {
		t.Fatalf("query status %d: %v", code, body)
	}
	var radius float64
	if err := json.Unmarshal(body["radius"], &radius); err != nil || radius <= 0 {
		t.Fatalf("released radius %v (err %v)", radius, err)
	}

	// The durable budget moved by exactly the query's cost.
	code, budget := get(t, s.Addr(), "/v1/budget", "sekrit")
	if code != http.StatusOK {
		t.Fatalf("budget status %d", code)
	}
	var spent struct{ Epsilon, Delta float64 }
	if err := json.Unmarshal([]byte(gjson(t, budget, "spent")), &spent); err != nil {
		t.Fatal(err)
	}
	if spent.Epsilon != 4 || spent.Delta != 0.05 {
		t.Fatalf("spent = %+v, want (4, 0.05)", spent)
	}

	// Auth and routing failures are typed.
	if code, body := post(t, s.Addr(), "/v1/query/cluster", "wrong", clusterQuery); code != http.StatusUnauthorized || errorCode(t, body) != "unauthorized" {
		t.Fatalf("bad key: status %d body %v", code, body)
	}
	q := clusterQuery
	q.Dataset = "nope"
	if code, body := post(t, s.Addr(), "/v1/query/cluster", "sekrit", q); code != http.StatusNotFound || errorCode(t, body) != "unknown_dataset" {
		t.Fatalf("unknown dataset: status %d body %v", code, body)
	}
	q = clusterQuery
	q.T = 0
	if code, body := post(t, s.Addr(), "/v1/query/cluster", "sekrit", q); code != http.StatusBadRequest || errorCode(t, body) != "bad_request" {
		t.Fatalf("t=0: status %d body %v", code, body)
	}
}

// gjson pulls one top-level field out of a JSON object string.
func gjson(t *testing.T, body, field string) string {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatal(err)
	}
	return string(m[field])
}

// TestServerRefusalPersistsAcrossRestart is the durability tentpole's
// end-to-end proof at the HTTP layer: a principal granted exactly two
// queries is refused the third with a typed 429, and after a full
// daemon restart over the same ledger directory the refusal is
// immediate — the restart minted no fresh budget.
func TestServerRefusalPersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(t, dir)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if code, body := post(t, s.Addr(), "/v1/query/cluster", "sekrit", clusterQuery); code != http.StatusOK {
			t.Fatalf("query %d: status %d body %v", i, code, body)
		}
	}
	code, body := post(t, s.Addr(), "/v1/query/cluster", "sekrit", clusterQuery)
	if code != http.StatusTooManyRequests || errorCode(t, body) != "budget_exhausted" {
		t.Fatalf("third query: status %d body %v", code, body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	s.Shutdown(ctx)
	cancel()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Second daemon generation over the same ledger directory.
	s2 := startServer(t, cfg)
	code, body = post(t, s2.Addr(), "/v1/query/cluster", "sekrit", clusterQuery)
	if code != http.StatusTooManyRequests || errorCode(t, body) != "budget_exhausted" {
		t.Fatalf("restarted daemon re-admitted an exhausted principal: status %d body %v", code, body)
	}
}

// TestServerSecondProcessRefused: the ledger's exclusive process lock
// makes a second daemon over the same directory fail to start — the
// mechanism that makes jointly over-spending across processes
// impossible.
func TestServerSecondProcessRefused(t *testing.T) {
	cfg := testConfig(t, t.TempDir())
	_ = startServer(t, cfg)
	cfg2 := cfg
	cfg2.Listen = "127.0.0.1:0"
	if _, err := New(cfg2); !errors.Is(err, ledger.ErrLocked) {
		t.Fatalf("second daemon on a held ledger: err = %v, want ErrLocked", err)
	}
}

func TestServerInteriorPoint(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "values.csv")
	writeValuesCSV(t, csv)
	cfg := Config{
		Listen:    "127.0.0.1:0",
		LedgerDir: filepath.Join(dir, "ledger"),
		Datasets:  []DatasetConfig{{Name: "values", CSV: csv}},
		Principals: []PrincipalConfig{
			{Name: "bob", APIKey: "k2", Epsilon: 8, Delta: 0.1},
		},
	}
	s := startServer(t, cfg)
	req := queryRequest{Dataset: "values", InnerN: 1600, Epsilon: 4, Delta: 0.05, Seed: 11}
	code, body := post(t, s.Addr(), "/v1/query/interior", "k2", req)
	if code != http.StatusOK {
		t.Fatalf("interior status %d: %v", code, body)
	}
	var p float64
	if err := json.Unmarshal(body["point"], &p); err != nil || p < 0.3 || p > 0.7 {
		t.Fatalf("interior point %v (err %v), want within the data range", p, err)
	}
	// InteriorPoint costs the composed (2ε, 2δ) = the whole grant: a
	// second one must be refused.
	if code, body := post(t, s.Addr(), "/v1/query/interior", "k2", req); code != http.StatusTooManyRequests {
		t.Fatalf("second interior query: status %d body %v", code, body)
	}
}

func TestServerBatchAndMetrics(t *testing.T) {
	s := startServer(t, testConfig(t, t.TempDir()))
	// Three batch queries at (4, 0.05) against a grant of (9, 0.11):
	// exactly two may be admitted.
	batch := batchRequest{
		Dataset: "planted",
		Queries: []queryRequest{
			{T: 400, Epsilon: 4, Delta: 0.05, Seed: 1},
			{T: 400, Epsilon: 4, Delta: 0.05, Seed: 2},
			{T: 400, Epsilon: 4, Delta: 0.05, Seed: 3},
		},
	}
	code, body := post(t, s.Addr(), "/v1/query/batch", "sekrit", batch)
	if code != http.StatusOK {
		t.Fatalf("batch status %d: %v", code, body)
	}
	var results []struct {
		Clusters []clusterJSON  `json:"clusters"`
		Error    *errorEnvelope `json:"error"`
	}
	if err := json.Unmarshal(body["results"], &results); err != nil {
		t.Fatal(err)
	}
	admitted, refused := 0, 0
	for _, r := range results {
		switch {
		case r.Error == nil && len(r.Clusters) == 1:
			admitted++
		case r.Error != nil && r.Error.Code == "budget_exhausted":
			refused++
		default:
			t.Fatalf("unexpected batch result: %+v", r)
		}
	}
	if admitted != 2 || refused != 1 {
		t.Fatalf("batch admitted %d, refused %d; want 2 and 1", admitted, refused)
	}

	code, metrics := get(t, s.Addr(), "/metrics", "")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		`privclusterd_requests_total{endpoint="batch",code="200"} 1`,
		`privclusterd_budget{principal="alice",coord="epsilon",kind="spent"} 8`,
		`privclusterd_budget{principal="alice",coord="epsilon",kind="granted"} 9`,
		"privclusterd_request_seconds_bucket",
		"privclusterd_in_flight 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, metrics)
		}
	}

	if code, _ := get(t, s.Addr(), "/healthz", ""); code != http.StatusOK {
		t.Errorf("/healthz status %d", code)
	}
}

func TestServerDeadline(t *testing.T) {
	s := startServer(t, testConfig(t, t.TempDir()))
	q := clusterQuery
	q.DeadlineMS = 1
	code, body := post(t, s.Addr(), "/v1/query/cluster", "sekrit", q)
	if code != http.StatusGatewayTimeout || errorCode(t, body) != "deadline" {
		t.Fatalf("1ms deadline: status %d body %v", code, body)
	}
}

func TestLoadConfigRejectsUnknownFields(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cfg.json")
	if err := os.WriteFile(path, []byte(`{"listen": ":0", "legder_dir": "x"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadConfig(path); err == nil {
		t.Fatal("typoed config field accepted")
	}
}

// startTCPShardServers brings up wire-protocol shard servers on real TCP
// for the placement config block (file-borne placements cannot carry a
// Dial override, so the daemon dials TCP).
func startTCPShardServers(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		srv := transport.NewServer(transport.ServerOptions{})
		go srv.Serve(l)
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		})
	}
	return addrs
}

// TestServerPlacementDataset: a dataset served through the config's
// placement block (two shard partitions × two replicas over real TCP)
// releases the same seeded cluster as the deprecated remote_shards list
// over the same two partitions — the daemon layer of the placement
// equivalence chain, old API vs new.
func TestServerPlacementDataset(t *testing.T) {
	addrs := startTCPShardServers(t, 4)

	old := testConfig(t, t.TempDir())
	old.Datasets[0].RemoteShards = []string{addrs[0], addrs[2]}
	oldSrv := startServer(t, old)
	code, want := post(t, oldSrv.Addr(), "/v1/query/cluster", "sekrit", clusterQuery)
	if code != http.StatusOK {
		t.Fatalf("remote_shards query status %d: %v", code, want)
	}

	cfg := testConfig(t, t.TempDir())
	placement, err := json.Marshal(map[string]any{
		"partitions": [][]string{{addrs[0], addrs[1]}, {addrs[2], addrs[3]}},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Datasets[0].Placement = placement
	if err := cfg.Validate(); err != nil {
		t.Fatalf("placement config rejected: %v", err)
	}
	s := startServer(t, cfg)
	code, got := post(t, s.Addr(), "/v1/query/cluster", "sekrit", clusterQuery)
	if code != http.StatusOK {
		t.Fatalf("placement query status %d: %v", code, got)
	}
	for _, field := range []string{"center", "radius", "raw_radius"} {
		if !bytes.Equal(got[field], want[field]) {
			t.Errorf("placement release %s = %s, remote_shards %s", field, got[field], want[field])
		}
	}
}

// TestConfigPlacementValidation: the placement block is validated at
// config load, and conflicts with the deprecated remote_shards list.
func TestConfigPlacementValidation(t *testing.T) {
	base := testConfig(t, t.TempDir())
	both := base
	both.Datasets = []DatasetConfig{base.Datasets[0]}
	both.Datasets[0].Placement = json.RawMessage(`{"partitions": [["a:1"]]}`)
	both.Datasets[0].RemoteShards = []string{"b:2"}
	if err := both.Validate(); err == nil {
		t.Error("placement plus remote_shards accepted")
	}
	bad := base
	bad.Datasets = []DatasetConfig{base.Datasets[0]}
	bad.Datasets[0].Placement = json.RawMessage(`{"partitions": [[]]}`)
	if err := bad.Validate(); err == nil {
		t.Error("empty partition accepted")
	}
	typo := base
	typo.Datasets = []DatasetConfig{base.Datasets[0]}
	typo.Datasets[0].Placement = json.RawMessage(`{"partitions": [["a:1"]], "hedge_ms": 5}`)
	if err := typo.Validate(); err == nil {
		t.Error("unknown placement field accepted")
	}
}
