package daemon

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"privcluster/internal/obs"
)

// TestInstrumentationLeaksNoData is the tracing tentpole's hard privacy
// invariant, tested end to end: after a traced query over a dataset whose
// every coordinate is a distinctive 9-decimal value, none of those
// coordinate strings appear on any observability surface — the /metrics
// exposition (daemon and library registries), the structured query log,
// or the retained span tree served by /v1/trace/{id}. Instrumentation
// carries durations and operation counts only; the released center is the
// query response's business, never the telemetry's.
func TestInstrumentationLeaksNoData(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "points.csv")
	rng := rand.New(rand.NewSource(1337))
	var b strings.Builder
	var markers []string
	coord := func(x float64) string {
		s := strconv.FormatFloat(x, 'f', 9, 64)
		markers = append(markers, s)
		return s
	}
	for i := 0; i < 500; i++ {
		b.WriteString(coord(0.5+0.02*(rng.Float64()-0.5)) + "," + coord(0.5+0.02*(rng.Float64()-0.5)) + "\n")
	}
	for i := 0; i < 300; i++ {
		b.WriteString(coord(rng.Float64()) + "," + coord(rng.Float64()) + "\n")
	}
	if err := os.WriteFile(csv, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	cfg := Config{
		Listen:    "127.0.0.1:0",
		LedgerDir: filepath.Join(dir, "ledger"),
		Datasets:  []DatasetConfig{{Name: "planted", CSV: csv, Grid: 1024}},
		Principals: []PrincipalConfig{
			{Name: "alice", APIKey: "sekrit", Epsilon: 9, Delta: 0.11},
		},
	}
	s := startServer(t, cfg)
	var logBuf bytes.Buffer
	s.log = obs.NewLogger(&logBuf, 0, 0) // capture the query log

	raw, _ := json.Marshal(clusterQuery)
	req, err := http.NewRequest("POST", "http://"+s.Addr()+"/v1/query/cluster", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-API-Key", "sekrit")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	traceID := resp.Header.Get("X-Trace-Id")
	if traceID == "" {
		t.Fatal("query response carries no X-Trace-Id")
	}

	code, metrics := get(t, s.Addr(), "/metrics", "")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	code, traceJSON := get(t, s.Addr(), "/v1/trace/"+traceID, "")
	if code != http.StatusOK {
		t.Fatalf("/v1/trace/%s status %d: %s", traceID, code, traceJSON)
	}
	if !strings.Contains(traceJSON, `"name":"query/cluster"`) {
		t.Fatalf("trace JSON has no query/cluster span:\n%s", traceJSON)
	}

	surfaces := map[string]string{
		"/metrics":  metrics,
		"query log": logBuf.String(),
		"trace":     traceJSON,
	}
	for surface, text := range surfaces {
		if text == "" {
			t.Fatalf("%s surface is empty — nothing was exercised", surface)
		}
		for _, m := range markers {
			if strings.Contains(text, m) {
				t.Errorf("%s leaks dataset coordinate %s", surface, m)
			}
		}
	}
}
