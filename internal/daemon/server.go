package daemon

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"time"

	"privcluster"
	"privcluster/internal/ledger"
	"privcluster/internal/obs"
)

// Server is one privclusterd instance: the opened datasets, the durable
// ledger (held under its exclusive process lock for the server's
// lifetime), and the HTTP front end. Construct with New, bind and serve
// with Start, drain with Shutdown, release everything with Close.
type Server struct {
	cfg      Config
	led      *ledger.Ledger
	datasets map[string]*privcluster.Dataset
	byKey    map[string]string // api_key → principal name
	met      *metrics
	log      *obs.Logger
	traces   *obs.TraceRing

	http *http.Server
	ln   net.Listener

	// admin serves the profiling endpoints on cfg.AdminListen (nil when
	// unset) — a separate listener so pprof never shares an ACL with the
	// query port.
	admin   *http.Server
	adminLn net.Listener
}

// New opens the ledger (refusing to start if another process holds it —
// that refusal is the cross-process over-spend guarantee), raises the
// configured grants, loads every dataset CSV, and opens one Dataset
// handle per dataset with the ledger as its admission authority. It
// does not bind the listen address; Start does.
func New(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	led, err := ledger.Open(cfg.LedgerDir, ledger.Options{})
	if err != nil {
		return nil, fmt.Errorf("daemon: opening ledger %s: %w", cfg.LedgerDir, err)
	}
	s := &Server{
		cfg:      cfg,
		led:      led,
		datasets: make(map[string]*privcluster.Dataset, len(cfg.Datasets)),
		byKey:    make(map[string]string, len(cfg.Principals)),
		met:      newMetrics(),
		log:      obs.NewLogger(os.Stderr, slog.LevelInfo, cfg.slowQuery()),
		traces:   obs.NewTraceRing(256),
	}
	// Budget gauges are read from the ledger at scrape time, so /metrics
	// always reports the durable truth.
	s.met.reg.AddScrapeFunc(func(w io.Writer) { writeBudgets(w, s.budgetRows()) })
	fail := func(err error) (*Server, error) {
		s.Close()
		return nil, err
	}
	if err := ensureGrants(led, cfg.Principals); err != nil {
		return fail(err)
	}
	for _, p := range cfg.Principals {
		s.byKey[p.APIKey] = p.Name
	}
	for _, dc := range cfg.Datasets {
		ds, err := openDataset(dc, ledgerAdmitter{l: led, met: s.met})
		if err != nil {
			return fail(fmt.Errorf("daemon: dataset %q: %w", dc.Name, err))
		}
		s.datasets[dc.Name] = ds
	}
	s.http = &http.Server{Handler: s.mux()}
	if cfg.AdminListen != "" {
		amux := http.NewServeMux()
		amux.HandleFunc("/debug/pprof/", pprof.Index)
		amux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		amux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		amux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		amux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		s.admin = &http.Server{Handler: amux}
	}
	return s, nil
}

// openDataset loads one configured dataset's CSV and opens its handle
// with the shared ledger admitter gating every query.
func openDataset(dc DatasetConfig, adm privcluster.Admitter) (*privcluster.Dataset, error) {
	f, err := os.Open(dc.CSV)
	if err != nil {
		return nil, err
	}
	pts, err := readPoints(f)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", dc.CSV, err)
	}
	place, err := dc.placement()
	if err != nil {
		return nil, err
	}
	return privcluster.Open(pts, privcluster.DatasetOptions{
		GridSize:     dc.Grid,
		Min:          dc.Min,
		Max:          dc.Max,
		Shards:       dc.Shards,
		Workers:      dc.Workers,
		RemoteShards: dc.RemoteShards,
		Placement:    place,
		Mutable:      dc.Mutable,
		Admitter:     adm,
	})
}

// readPoints parses the CSV format the rest of the module reads: one
// point per line, comma-separated coordinates, blank lines and
// #-comments skipped.
func readPoints(r io.Reader) ([]privcluster.Point, error) {
	var points []privcluster.Point
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, ",")
		p := make(privcluster.Point, len(fields))
		for i, f := range fields {
			x, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", line, err)
			}
			p[i] = x
		}
		points = append(points, p)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("no points in input")
	}
	return points, nil
}

// Start binds the configured listen address (and the admin address, when
// configured) and serves in the background. Use Addr for the bound
// address (essential with ":0").
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Listen)
	if err != nil {
		return err
	}
	s.ln = ln
	go s.http.Serve(ln)
	if s.admin != nil {
		aln, err := net.Listen("tcp", s.cfg.AdminListen)
		if err != nil {
			ln.Close()
			s.ln = nil
			return fmt.Errorf("daemon: admin listen %s: %w", s.cfg.AdminListen, err)
		}
		s.adminLn = aln
		go s.admin.Serve(aln)
	}
	return nil
}

// Addr returns the bound listen address ("" before Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// AdminAddr returns the bound admin (pprof) address, or "" when the admin
// listener is not configured or not started.
func (s *Server) AdminAddr() string {
	if s.adminLn == nil {
		return ""
	}
	return s.adminLn.Addr().String()
}

// Shutdown gracefully drains the HTTP server: the listener closes
// immediately, in-flight requests run to completion until ctx expires.
// The admin listener (profiling only, nothing in flight worth draining)
// closes immediately.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.admin != nil {
		s.admin.Close()
	}
	return s.http.Shutdown(ctx)
}

// Close releases everything: dataset handles and the ledger (dropping
// its process lock so a successor daemon can take over). Safe after a
// partial New.
func (s *Server) Close() error {
	var first error
	if s.admin != nil {
		s.admin.Close()
	}
	for _, ds := range s.datasets {
		if err := ds.Close(); err != nil && first == nil {
			first = err
		}
	}
	if s.led != nil {
		if err := s.led.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// mux wires the routes. Query endpoints are POST-only and authenticated;
// /metrics and /healthz are open (they carry no raw data — budgets and
// latencies are operational state).
func (s *Server) mux() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /v1/query/cluster", s.instrument("cluster", s.auth(s.handleCluster)))
	mux.Handle("POST /v1/query/kcover", s.instrument("kcover", s.auth(s.handleKCover)))
	mux.Handle("POST /v1/query/interior", s.instrument("interior", s.auth(s.handleInterior)))
	mux.Handle("POST /v1/query/batch", s.instrument("batch", s.auth(s.handleBatch)))
	mux.Handle("GET /v1/budget", s.instrument("budget", s.auth(s.handleBudget)))
	// The scrape itself is not instrumented — it would count itself as
	// an in-flight request on every reading of the gauge.
	mux.Handle("GET /metrics", http.HandlerFunc(s.handleMetrics))
	// Trace retrieval is uninstrumented for the same reason: fetching a
	// trace must not mint one. Span trees carry stage names, durations and
	// operation counts only, and IDs are unguessable 128-bit values, so the
	// endpoint is open like /metrics.
	mux.Handle("GET /v1/trace/{id}", http.HandlerFunc(s.handleTrace))
	mux.Handle("GET /healthz", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	}))
	return mux
}

// statusRecorder captures the status code a handler wrote so the
// metrics middleware can label the request.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument is the observability middleware: in-flight gauge,
// per-endpoint request counter and latency histogram, plus a trace per
// request — every daemon query runs traced, the trace ID is returned in
// the X-Trace-Id response header, the span tree is retained for
// GET /v1/trace/{id}, and the finished query is logged (Warn with
// slow=true past the slow-query threshold). Traces never touch the query
// rng, so traced daemon releases are bit-identical to library ones.
func (s *Server) instrument(endpoint string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.met.inFlight.Add(1)
		start := time.Now()
		tr := obs.NewTrace()
		r = r.WithContext(obs.ContextWith(r.Context(), tr))
		w.Header().Set("X-Trace-Id", tr.ID().String())
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rec, r)
		s.met.inFlight.Add(-1)
		d := time.Since(start)
		s.met.observe(endpoint, rec.code, d)
		s.traces.Add(tr)
		s.log.Query(tr.ID(), endpoint, d, "code", rec.code)
	})
}

// auth resolves the API key (Authorization: Bearer … or X-API-Key) to a
// principal and stores it in the request context, where the ledger
// admitter picks it up at reservation time.
func (s *Server) auth(next http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := r.Header.Get("X-API-Key")
		if key == "" {
			if h := r.Header.Get("Authorization"); strings.HasPrefix(h, "Bearer ") {
				key = strings.TrimPrefix(h, "Bearer ")
			}
		}
		principal, ok := s.byKey[key]
		if !ok {
			writeError(w, http.StatusUnauthorized, "unauthorized", "missing or unknown API key", nil)
			return
		}
		next.ServeHTTP(w, r.WithContext(WithPrincipal(r.Context(), principal)))
	})
}

// queryRequest is the JSON body shared by the query endpoints; each
// endpoint reads the subset of fields it defines.
type queryRequest struct {
	Dataset    string  `json:"dataset"`
	T          int     `json:"t,omitempty"`
	K          int     `json:"k,omitempty"`
	InnerN     int     `json:"inner_n,omitempty"`
	Epsilon    float64 `json:"epsilon,omitempty"`
	Delta      float64 `json:"delta,omitempty"`
	Beta       float64 `json:"beta,omitempty"`
	Seed       int64   `json:"seed,omitempty"`
	ZeroSeed   bool    `json:"zero_seed,omitempty"`
	AtEpoch    uint64  `json:"at_epoch,omitempty"`
	DeadlineMS int64   `json:"deadline_ms,omitempty"`
}

func (q queryRequest) options() privcluster.QueryOptions {
	return privcluster.QueryOptions{
		Epsilon:  q.Epsilon,
		Delta:    q.Delta,
		Beta:     q.Beta,
		Seed:     q.Seed,
		ZeroSeed: q.ZeroSeed,
		AtEpoch:  q.AtEpoch,
	}
}

// batchRequest is the body of /v1/query/batch: one dataset, many
// queries, one deadline.
type batchRequest struct {
	Dataset    string         `json:"dataset"`
	Queries    []queryRequest `json:"queries"`
	DeadlineMS int64          `json:"deadline_ms,omitempty"`
}

// clusterJSON is the wire form of a released cluster.
type clusterJSON struct {
	Center     []float64 `json:"center"`
	Radius     float64   `json:"radius"`
	RawRadius  float64   `json:"raw_radius,omitempty"`
	ZeroRadius bool      `json:"zero_radius,omitempty"`
}

func toClusterJSON(c privcluster.Cluster) clusterJSON {
	return clusterJSON{
		Center:     []float64(c.Center),
		Radius:     c.Radius,
		RawRadius:  c.RawRadius,
		ZeroRadius: c.ZeroRadius,
	}
}

// decode parses a JSON request body, rejecting unknown fields.
func decode(r *http.Request, into any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	return dec.Decode(into)
}

// deadline applies the request's deadline_ms (capped by the config) to
// the query context.
func (s *Server) deadline(ctx context.Context, ms int64) (context.Context, context.CancelFunc) {
	if ms <= 0 {
		return ctx, func() {}
	}
	d := time.Duration(ms) * time.Millisecond
	if max := s.cfg.maxDeadline(); d > max {
		d = max
	}
	return context.WithTimeout(ctx, d)
}

// dataset resolves a request's dataset name.
func (s *Server) dataset(w http.ResponseWriter, name string) (*privcluster.Dataset, bool) {
	ds, ok := s.datasets[name]
	if !ok {
		writeError(w, http.StatusNotFound, "unknown_dataset", fmt.Sprintf("no dataset named %q", name), nil)
		return nil, false
	}
	return ds, true
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error(), nil)
		return
	}
	ds, ok := s.dataset(w, req.Dataset)
	if !ok {
		return
	}
	ctx, cancel := s.deadline(r.Context(), req.DeadlineMS)
	defer cancel()
	c, err := ds.FindCluster(ctx, req.T, req.options())
	if err != nil {
		writeQueryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, toClusterJSON(c))
}

func (s *Server) handleKCover(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error(), nil)
		return
	}
	ds, ok := s.dataset(w, req.Dataset)
	if !ok {
		return
	}
	ctx, cancel := s.deadline(r.Context(), req.DeadlineMS)
	defer cancel()
	cs, err := ds.FindClusters(ctx, req.K, req.T, req.options())
	if err != nil {
		writeQueryError(w, err)
		return
	}
	out := make([]clusterJSON, len(cs))
	for i, c := range cs {
		out[i] = toClusterJSON(c)
	}
	writeJSON(w, http.StatusOK, map[string]any{"clusters": out})
}

func (s *Server) handleInterior(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error(), nil)
		return
	}
	ds, ok := s.dataset(w, req.Dataset)
	if !ok {
		return
	}
	ctx, cancel := s.deadline(r.Context(), req.DeadlineMS)
	defer cancel()
	p, err := ds.InteriorPoint(ctx, req.InnerN, req.options())
	if err != nil {
		writeQueryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"point": p})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error(), nil)
		return
	}
	ds, ok := s.dataset(w, req.Dataset)
	if !ok {
		return
	}
	ctx, cancel := s.deadline(r.Context(), req.DeadlineMS)
	defer cancel()
	queries := make([]privcluster.Query, len(req.Queries))
	for i, q := range req.Queries {
		queries[i] = privcluster.Query{T: q.T, K: q.K, Opts: q.options()}
	}
	results := ds.FindClustersBatch(ctx, queries)
	type batchResult struct {
		Clusters []clusterJSON  `json:"clusters,omitempty"`
		Error    *errorEnvelope `json:"error,omitempty"`
	}
	out := make([]batchResult, len(results))
	for i, res := range results {
		if res.Err != nil {
			env := queryErrorEnvelope(res.Err)
			out[i] = batchResult{Error: &env}
			continue
		}
		cs := make([]clusterJSON, len(res.Clusters))
		for j, c := range res.Clusters {
			cs[j] = toClusterJSON(c)
		}
		out[i] = batchResult{Clusters: cs}
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": out})
}

// handleBudget reports the authenticated principal's durable balance.
func (s *Server) handleBudget(w http.ResponseWriter, r *http.Request) {
	principal, _ := PrincipalFrom(r.Context())
	bal, _ := s.led.Balance(principal)
	cost := func(c ledger.Cost) map[string]float64 {
		return map[string]float64{"epsilon": c.Epsilon, "delta": c.Delta}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"principal": principal,
		"granted":   cost(bal.Granted),
		"spent":     cost(bal.Spent),
		"reserved":  cost(bal.Reserved),
		"remaining": cost(bal.Remaining()),
	})
}

// budgetRows reads every principal's durable balance for the budget
// gauges; it runs per scrape via the registry scrape func.
func (s *Server) budgetRows() []budgetRow {
	var rows []budgetRow
	for _, name := range s.led.Principals() {
		bal, ok := s.led.Balance(name)
		if !ok {
			continue
		}
		rows = append(rows, budgetRow{
			Principal: name,
			Granted:   [2]float64{bal.Granted.Epsilon, bal.Granted.Delta},
			Spent:     [2]float64{bal.Spent.Epsilon, bal.Spent.Delta},
			Reserved:  [2]float64{bal.Reserved.Epsilon, bal.Reserved.Delta},
		})
	}
	return rows
}

// handleMetrics renders the daemon's own registry (privclusterd_*
// families plus the budget scrape func) followed by the process-wide
// library registry (privcluster_* stage histograms, cache and replica
// counters). The name prefixes are disjoint so the concatenation is a
// valid exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.reg.WriteText(w)
	obs.Default.WriteText(w)
}

// handleTrace returns a retained query's span tree by trace ID (the
// X-Trace-Id response header of the query, or the span's own ID from a
// client-side trace). The ring keeps the last 256 queries; older or
// unknown IDs are a 404, indistinguishable from never-existed.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id, err := obs.ParseTraceID(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error(), nil)
		return
	}
	tr := s.traces.Get(id)
	if tr == nil {
		writeError(w, http.StatusNotFound, "unknown_trace", fmt.Sprintf("no retained trace %s", id), nil)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"trace_id": id.String(),
		"spans":    tr.Spans(),
	})
}

// errorEnvelope is the typed JSON error body: a stable machine-readable
// code plus the human message, with budget refusals carrying the full
// accounting so a client can decide what it can still afford.
type errorEnvelope struct {
	Code    string         `json:"code"`
	Message string         `json:"message"`
	Budget  *budgetDetails `json:"budget,omitempty"`
}

type budgetDetails struct {
	Total     [2]float64 `json:"total"`
	Spent     [2]float64 `json:"spent"`
	Requested [2]float64 `json:"requested"`
	Remaining [2]float64 `json:"remaining"`
}

// queryErrorEnvelope maps a query error onto its typed envelope.
func queryErrorEnvelope(err error) errorEnvelope {
	var be *privcluster.BudgetError
	switch {
	case errors.As(err, &be):
		rem := be.Remaining()
		return errorEnvelope{
			Code:    "budget_exhausted",
			Message: err.Error(),
			Budget: &budgetDetails{
				Total:     [2]float64{be.Total.Epsilon, be.Total.Delta},
				Spent:     [2]float64{be.Spent.Epsilon, be.Spent.Delta},
				Requested: [2]float64{be.Requested.Epsilon, be.Requested.Delta},
				Remaining: [2]float64{rem.Epsilon, rem.Delta},
			},
		}
	case errors.Is(err, privcluster.ErrInfeasible):
		return errorEnvelope{Code: "infeasible", Message: err.Error()}
	case errors.Is(err, privcluster.ErrEpochRetired):
		return errorEnvelope{Code: "epoch_retired", Message: err.Error()}
	case errors.Is(err, context.DeadlineExceeded):
		return errorEnvelope{Code: "deadline", Message: err.Error()}
	case errors.Is(err, context.Canceled):
		return errorEnvelope{Code: "canceled", Message: err.Error()}
	case errors.Is(err, privcluster.ErrClosed):
		return errorEnvelope{Code: "shutting_down", Message: err.Error()}
	default:
		// Library errors not matched above are parameter rejections
		// (invalid ε/t/k …) — the caller's fault. Anything else (a remote
		// shard down, an I/O failure) is the server's.
		if strings.HasPrefix(err.Error(), "privcluster:") {
			return errorEnvelope{Code: "bad_request", Message: err.Error()}
		}
		return errorEnvelope{Code: "internal", Message: err.Error()}
	}
}

// statusFor maps an envelope code to its HTTP status.
var statusFor = map[string]int{
	"budget_exhausted": http.StatusTooManyRequests,
	"infeasible":       http.StatusUnprocessableEntity,
	"epoch_retired":    http.StatusGone,
	"deadline":         http.StatusGatewayTimeout,
	"canceled":         499, // client closed request (nginx convention)
	"shutting_down":    http.StatusServiceUnavailable,
	"bad_request":      http.StatusBadRequest,
}

// writeQueryError writes a query error as its typed envelope with the
// matching status code.
func writeQueryError(w http.ResponseWriter, err error) {
	env := queryErrorEnvelope(err)
	status, ok := statusFor[env.Code]
	if !ok {
		status = http.StatusInternalServerError
	}
	writeJSON(w, status, map[string]any{"error": env})
}

// writeError writes a non-query error envelope.
func writeError(w http.ResponseWriter, status int, code, msg string, budget *budgetDetails) {
	writeJSON(w, status, map[string]any{"error": errorEnvelope{Code: code, Message: msg, Budget: budget}})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
