package daemon

import (
	"context"
	"errors"
	"fmt"
	"time"

	"privcluster"
	"privcluster/internal/ledger"
	"privcluster/internal/obs"
)

// principalKey carries the authenticated principal through a query's
// context — the one piece of per-request identity the admission seam
// needs. The auth middleware sets it; the ledger admitter reads it.
type principalKey struct{}

// WithPrincipal returns ctx carrying the authenticated principal name.
func WithPrincipal(ctx context.Context, name string) context.Context {
	return context.WithValue(ctx, principalKey{}, name)
}

// PrincipalFrom extracts the authenticated principal from ctx.
func PrincipalFrom(ctx context.Context) (string, bool) {
	name, ok := ctx.Value(principalKey{}).(string)
	return name, ok
}

// ledgerAdmitter adapts the durable ledger to privcluster.Admitter: one
// admitter (and one Dataset handle) serves every principal, because the
// principal arrives per query in the context, not per handle. A ledger
// refusal is translated into the *privcluster.BudgetError clients of
// the library already know how to match; reserved-but-unsettled holds
// count as spent in the refusal's accounting, since they are committed
// if the daemon dies.
type ledgerAdmitter struct {
	l   *ledger.Ledger
	met *metrics // nil-safe: nil skips the fsync histograms
}

func (a ledgerAdmitter) Reserve(ctx context.Context, cost privcluster.Budget) (privcluster.Reservation, error) {
	principal, ok := PrincipalFrom(ctx)
	if !ok {
		return nil, fmt.Errorf("daemon: query context carries no principal (auth middleware bypassed?)")
	}
	start := time.Now()
	r, err := a.l.Reserve(principal, ledger.Cost{Epsilon: cost.Epsilon, Delta: cost.Delta})
	if a.met != nil {
		a.met.ledgerReserve.Observe(time.Since(start).Seconds())
	}
	if err != nil {
		var ie *ledger.InsufficientError
		if errors.As(err, &ie) {
			return nil, &privcluster.BudgetError{
				Total: privcluster.Budget{Epsilon: ie.Balance.Granted.Epsilon, Delta: ie.Balance.Granted.Delta},
				Spent: privcluster.Budget{
					Epsilon: ie.Balance.Spent.Epsilon + ie.Balance.Reserved.Epsilon,
					Delta:   ie.Balance.Spent.Delta + ie.Balance.Reserved.Delta,
				},
				Requested: cost,
			}
		}
		return nil, err
	}
	// *ledger.Reservation's Commit/Release signatures already satisfy
	// privcluster.Reservation; the wrapper only times the settlement fsync.
	if a.met == nil {
		return r, nil
	}
	return timedReservation{r: r, h: a.met.ledgerCommit}, nil
}

// timedReservation records the settlement's fsync latency; spans and
// metrics upstream see Commit's full durable cost, not just the call.
type timedReservation struct {
	r privcluster.Reservation
	h *obs.Histogram
}

func (t timedReservation) Commit() error {
	start := time.Now()
	err := t.r.Commit()
	t.h.Observe(time.Since(start).Seconds())
	return err
}

func (t timedReservation) Release() error { return t.r.Release() }

// ensureGrants raises each configured principal's durable grant up to
// its configured total. Grants are monotone: a restart re-running this
// grants only the positive difference (usually nothing), never fresh
// budget — the property examples/daemon proves by restarting into an
// immediate refusal.
func ensureGrants(l *ledger.Ledger, principals []PrincipalConfig) error {
	for _, p := range principals {
		bal, _ := l.Balance(p.Name)
		diff := ledger.Cost{Epsilon: p.Epsilon, Delta: p.Delta}.Sub(bal.Granted)
		if diff.IsZero() {
			continue
		}
		if err := l.Grant(p.Name, diff); err != nil {
			return fmt.Errorf("daemon: granting %v to %q: %w", diff, p.Name, err)
		}
	}
	return nil
}
