package daemon

import (
	"fmt"
	"io"
	"strconv"
	"time"

	"privcluster/internal/obs"
)

// latencyBuckets are the histogram upper bounds in seconds. Queries
// span microseconds (warm cached index) to seconds (cold sharded
// build), so the buckets are log-spaced across that range.
var latencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10}

// fsyncBuckets bound the ledger's per-operation fsync latency: a local
// SSD syncs in fractions of a millisecond, network filesystems in tens.
var fsyncBuckets = []float64{0.0005, 0.002, 0.01, 0.05, 0.25, 1}

// metrics is the daemon's server-scoped instrumentation, held in an
// obs.Registry and rendered in the Prometheus text exposition format. The
// family names and label sets predate the registry (they were hand-rolled
// here first), so they are load-bearing: dashboards and the CI smoke test
// grep for them.
type metrics struct {
	reg      *obs.Registry
	inFlight *obs.Gauge

	// ledgerReserve and ledgerCommit time the durable ledger's two
	// fsync-bearing operations per query (the budget hold and its
	// settlement) — the daemon-side floor under every query's latency.
	ledgerReserve *obs.Histogram
	ledgerCommit  *obs.Histogram
}

func newMetrics() *metrics {
	reg := obs.NewRegistry()
	return &metrics{
		reg:      reg,
		inFlight: reg.Gauge("privclusterd_in_flight", "Requests currently being served."),
		ledgerReserve: reg.Histogram("privclusterd_ledger_fsync_seconds",
			"Durable ledger operation latency (one fsync each).", fsyncBuckets, "op", "reserve"),
		ledgerCommit: reg.Histogram("privclusterd_ledger_fsync_seconds",
			"Durable ledger operation latency (one fsync each).", fsyncBuckets, "op", "commit"),
	}
}

// observe records one finished request.
func (m *metrics) observe(endpoint string, code int, d time.Duration) {
	m.reg.Counter("privclusterd_requests_total", "Finished requests by endpoint and status code.",
		"endpoint", endpoint, "code", strconv.Itoa(code)).Inc()
	m.reg.Histogram("privclusterd_request_seconds", "Request latency by endpoint.",
		latencyBuckets, "endpoint", endpoint).Observe(d.Seconds())
}

// budgetRow is one principal's budget gauges, supplied by the server
// from the ledger at scrape time.
type budgetRow struct {
	Principal string
	Granted   [2]float64 // ε, δ
	Spent     [2]float64
	Reserved  [2]float64
}

// writeBudgets renders the per-principal budget gauges. It runs as a
// registry scrape func so the values are always the durable truth read
// from the ledger at scrape time, never a cached copy.
func writeBudgets(w io.Writer, budgets []budgetRow) {
	fmt.Fprintf(w, "# HELP privclusterd_budget Durable per-principal budget state (epsilon and delta coordinates).\n")
	fmt.Fprintf(w, "# TYPE privclusterd_budget gauge\n")
	for _, row := range budgets {
		for i, coord := range [2]string{"epsilon", "delta"} {
			fmt.Fprintf(w, "privclusterd_budget{principal=%q,coord=%q,kind=\"granted\"} %g\n", row.Principal, coord, row.Granted[i])
			fmt.Fprintf(w, "privclusterd_budget{principal=%q,coord=%q,kind=\"spent\"} %g\n", row.Principal, coord, row.Spent[i])
			fmt.Fprintf(w, "privclusterd_budget{principal=%q,coord=%q,kind=\"reserved\"} %g\n", row.Principal, coord, row.Reserved[i])
		}
	}
}
