package daemon

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBuckets are the histogram upper bounds in seconds. Queries
// span microseconds (warm cached index) to seconds (cold sharded
// build), so the buckets are log-spaced across that range.
var latencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10}

// endpointStats is one endpoint's counters: requests by status code and
// a latency histogram. Guarded by metrics.mu.
type endpointStats struct {
	byCode map[int]int64
	bucket []int64 // one per bound plus +Inf
	sum    float64
	count  int64
}

// metrics is the daemon's hand-rolled instrumentation, rendered in the
// Prometheus text exposition format by render. No client library — the
// module's zero-dependency rule extends to serving.
type metrics struct {
	inFlight atomic.Int64

	mu        sync.Mutex
	endpoints map[string]*endpointStats
}

func newMetrics() *metrics {
	return &metrics{endpoints: make(map[string]*endpointStats)}
}

// observe records one finished request.
func (m *metrics) observe(endpoint string, code int, d time.Duration) {
	secs := d.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.endpoints[endpoint]
	if st == nil {
		st = &endpointStats{byCode: make(map[int]int64), bucket: make([]int64, len(latencyBuckets)+1)}
		m.endpoints[endpoint] = st
	}
	st.byCode[code]++
	i := 0
	for i < len(latencyBuckets) && secs > latencyBuckets[i] {
		i++
	}
	st.bucket[i]++
	st.sum += secs
	st.count++
}

// budgetRow is one principal's budget gauges, supplied by the server
// from the ledger at scrape time.
type budgetRow struct {
	Principal string
	Granted   [2]float64 // ε, δ
	Spent     [2]float64
	Reserved  [2]float64
}

// render writes the Prometheus text format. budgets come from the
// caller (the server reads them from the ledger per scrape, so the
// gauges are always the durable truth, not a cached copy).
func (m *metrics) render(b *strings.Builder, budgets []budgetRow) {
	fmt.Fprintf(b, "# HELP privclusterd_in_flight Requests currently being served.\n")
	fmt.Fprintf(b, "# TYPE privclusterd_in_flight gauge\n")
	fmt.Fprintf(b, "privclusterd_in_flight %d\n", m.inFlight.Load())

	m.mu.Lock()
	names := make([]string, 0, len(m.endpoints))
	for name := range m.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(b, "# HELP privclusterd_requests_total Finished requests by endpoint and status code.\n")
	fmt.Fprintf(b, "# TYPE privclusterd_requests_total counter\n")
	for _, name := range names {
		st := m.endpoints[name]
		codes := make([]int, 0, len(st.byCode))
		for c := range st.byCode {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(b, "privclusterd_requests_total{endpoint=%q,code=\"%d\"} %d\n", name, c, st.byCode[c])
		}
	}
	fmt.Fprintf(b, "# HELP privclusterd_request_seconds Request latency by endpoint.\n")
	fmt.Fprintf(b, "# TYPE privclusterd_request_seconds histogram\n")
	for _, name := range names {
		st := m.endpoints[name]
		cum := int64(0)
		for i, bound := range latencyBuckets {
			cum += st.bucket[i]
			fmt.Fprintf(b, "privclusterd_request_seconds_bucket{endpoint=%q,le=\"%g\"} %d\n", name, bound, cum)
		}
		cum += st.bucket[len(latencyBuckets)]
		fmt.Fprintf(b, "privclusterd_request_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(b, "privclusterd_request_seconds_sum{endpoint=%q} %g\n", name, st.sum)
		fmt.Fprintf(b, "privclusterd_request_seconds_count{endpoint=%q} %d\n", name, st.count)
	}
	m.mu.Unlock()

	fmt.Fprintf(b, "# HELP privclusterd_budget Durable per-principal budget state (epsilon and delta coordinates).\n")
	fmt.Fprintf(b, "# TYPE privclusterd_budget gauge\n")
	for _, row := range budgets {
		for i, coord := range [2]string{"epsilon", "delta"} {
			fmt.Fprintf(b, "privclusterd_budget{principal=%q,coord=%q,kind=\"granted\"} %g\n", row.Principal, coord, row.Granted[i])
			fmt.Fprintf(b, "privclusterd_budget{principal=%q,coord=%q,kind=\"spent\"} %g\n", row.Principal, coord, row.Spent[i])
			fmt.Fprintf(b, "privclusterd_budget{principal=%q,coord=%q,kind=\"reserved\"} %g\n", row.Principal, coord, row.Reserved[i])
		}
	}
}
