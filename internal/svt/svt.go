// Package svt implements the sparse vector technique: Algorithm
// AboveThreshold of Dwork–Naor–Reingold–Rothblum–Vadhan (Theorem 4.8 in the
// paper). A data curator receives an adaptive stream of sensitivity-1
// queries and answers ⊥ ("below") until the first query whose value is
// (noisily) above a fixed threshold, answering ⊤ and halting. The entire
// interaction is (ε, 0)-differentially private regardless of the number of
// ⊥ answers.
//
// GoodCenter uses AboveThreshold to privately pick, among up to
// 2n·log(1/β)/β random re-partitions of R^k into boxes, one repetition in
// which some box captures ≈ t projected input points.
package svt

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"privcluster/internal/noise"
)

// AboveThreshold is a one-shot sparse-vector instance. Create it with New,
// then feed query values via Query until it returns true (⊤) or the query
// budget is exhausted.
type AboveThreshold struct {
	epsilon        float64
	noisyThreshold float64
	rng            *rand.Rand
	halted         bool
	asked          int
}

// ErrHalted is returned by Query after the mechanism has answered ⊤.
var ErrHalted = errors.New("svt: mechanism already halted")

// New creates an AboveThreshold instance with the given threshold and
// privacy parameter ε (pure DP). The threshold is perturbed once with
// Lap(2/ε); each query is perturbed with Lap(4/ε), the standard split.
func New(rng *rand.Rand, threshold, epsilon float64) (*AboveThreshold, error) {
	if epsilon <= 0 || math.IsNaN(epsilon) {
		return nil, fmt.Errorf("svt: epsilon must be positive, got %v", epsilon)
	}
	return &AboveThreshold{
		epsilon:        epsilon,
		noisyThreshold: threshold + noise.Laplace(rng, 2/epsilon),
		rng:            rng,
	}, nil
}

// Query submits the value of one sensitivity-1 query. It returns true (⊤)
// if the noisy value is at least the noisy threshold, after which the
// instance halts; subsequent calls return ErrHalted.
func (a *AboveThreshold) Query(value float64) (bool, error) {
	if a.halted {
		return false, ErrHalted
	}
	a.asked++
	v := value + noise.Laplace(a.rng, 4/a.epsilon)
	if v >= a.noisyThreshold {
		a.halted = true
		return true, nil
	}
	return false, nil
}

// Halted reports whether the mechanism already answered ⊤.
func (a *AboveThreshold) Halted() bool { return a.halted }

// Asked returns the number of queries submitted so far.
func (a *AboveThreshold) Asked() int { return a.asked }

// AccuracyBound returns the α of Theorem 4.8: with probability ≥ 1−β, every
// ⊤-answered query has true value ≥ threshold − α and every ⊥-answered query
// has true value ≤ threshold + α, where α = (8/ε)·log(2k/β) for k queries.
func AccuracyBound(epsilon float64, k int, beta float64) float64 {
	if k < 1 {
		k = 1
	}
	return (8 / epsilon) * math.Log(2*float64(k)/beta)
}
