package svt

import (
	"math/rand"
	"testing"
)

func TestClearAboveAndBelow(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// With ε=1 and threshold 100, a query at 200 should fire and a query at
	// 0 should not, in essentially all trials.
	fired, misfired := 0, 0
	const trials = 300
	for i := 0; i < trials; i++ {
		at, err := New(rng, 100, 1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := at.Query(0)
		if err != nil {
			t.Fatal(err)
		}
		if got {
			misfired++
			continue
		}
		got, err = at.Query(200)
		if err != nil {
			t.Fatal(err)
		}
		if got {
			fired++
		}
	}
	if misfired > 3 {
		t.Errorf("fired on value 0 in %d/%d trials", misfired, trials)
	}
	if fired < trials-misfired-3 {
		t.Errorf("missed value 200 in %d trials", trials-misfired-fired)
	}
}

func TestHaltsAfterTop(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	at, err := New(rng, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := at.Query(1000)
	if err != nil || !got {
		t.Fatalf("query(1000) = %v, %v", got, err)
	}
	if !at.Halted() {
		t.Error("not halted after ⊤")
	}
	if _, err := at.Query(1000); err != ErrHalted {
		t.Errorf("post-halt query error = %v, want ErrHalted", err)
	}
}

func TestAskedCounter(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	at, _ := New(rng, 1e9, 1)
	for i := 0; i < 7; i++ {
		if _, err := at.Query(0); err != nil {
			t.Fatal(err)
		}
	}
	if at.Asked() != 7 {
		t.Errorf("Asked = %d, want 7", at.Asked())
	}
}

func TestNewRejectsBadEpsilon(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, err := New(rng, 0, 0); err == nil {
		t.Error("epsilon=0 accepted")
	}
	if _, err := New(rng, 0, -1); err == nil {
		t.Error("negative epsilon accepted")
	}
}

func TestAccuracyBoundEmpirically(t *testing.T) {
	// Theorem 4.8: with prob ≥ 1−β all answers are α-accurate,
	// α = (8/ε)·log(2k/β). Run k queries alternating far-below/far-above
	// margins of exactly α and count violations.
	eps := 0.5
	k := 20
	beta := 0.05
	alpha := AccuracyBound(eps, k, beta)

	rng := rand.New(rand.NewSource(5))
	violations := 0
	const trials = 400
	for trial := 0; trial < trials; trial++ {
		at, err := New(rng, 0, eps)
		if err != nil {
			t.Fatal(err)
		}
		bad := false
		for q := 0; q < k && !at.Halted(); q++ {
			// All queries sit α below threshold; any ⊤ is a violation.
			got, err := at.Query(-alpha)
			if err != nil {
				t.Fatal(err)
			}
			if got {
				bad = true
			}
		}
		if bad {
			violations++
		}
	}
	if frac := float64(violations) / trials; frac > beta {
		t.Errorf("accuracy violation rate %v exceeds beta %v", frac, beta)
	}
}

func TestTopFiresWithinBound(t *testing.T) {
	// A query α above threshold must fire with probability ≥ 1−β.
	eps := 0.5
	beta := 0.05
	alpha := AccuracyBound(eps, 1, beta)
	rng := rand.New(rand.NewSource(6))
	misses := 0
	const trials = 400
	for trial := 0; trial < trials; trial++ {
		at, _ := New(rng, 0, eps)
		got, err := at.Query(alpha)
		if err != nil {
			t.Fatal(err)
		}
		if !got {
			misses++
		}
	}
	if frac := float64(misses) / trials; frac > beta {
		t.Errorf("miss rate %v exceeds beta %v", frac, beta)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	run := func() []bool {
		rng := rand.New(rand.NewSource(7))
		at, _ := New(rng, 50, 1)
		var out []bool
		for i := 0; i < 10 && !at.Halted(); i++ {
			got, _ := at.Query(float64(i * 12))
			out = append(out, got)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different answers")
		}
	}
}
