package dptest

import (
	"math/rand"
	"testing"

	"privcluster/internal/dp"
	"privcluster/internal/noise"
	"privcluster/internal/stability"
	"privcluster/internal/svt"
	"privcluster/internal/vec"
)

// audit runs the harness and fails the test on violations.
func audit(t *testing.T, name string, m Mechanism, cfg Config) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	violations, events, err := Audit(rng, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if events < 2 {
		t.Fatalf("%s: audit degenerate — only %d distinct events", name, events)
	}
	for _, v := range violations {
		t.Errorf("%s: %s", name, v)
	}
}

func TestAuditValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, _, err := Audit(rng, func(*rand.Rand, int) string { return "x" }, Config{Epsilon: 0}); err == nil {
		t.Error("epsilon=0 accepted")
	}
}

func TestBinFloat(t *testing.T) {
	if BinFloat(-5, 0, 1, 10) != "b000" {
		t.Error("below-range not clamped to first bin")
	}
	if BinFloat(5, 0, 1, 10) != "b009" {
		t.Error("above-range not clamped to last bin")
	}
	if BinFloat(0.55, 0, 1, 10) != "b005" {
		t.Errorf("mid bin = %s", BinFloat(0.55, 0, 1, 10))
	}
}

// TestAuditCatchesBrokenMechanism: a "mechanism" that leaks its world must
// be flagged — the audit's own soundness check.
func TestAuditCatchesBrokenMechanism(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	leaky := func(_ *rand.Rand, world int) string {
		if world == 0 {
			return "zero"
		}
		return "one"
	}
	violations, _, err := Audit(rng, leaky, Config{Epsilon: 1, Runs: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) == 0 {
		t.Fatal("world-leaking mechanism passed the audit")
	}
}

// TestAuditCatchesUnderNoisedLaplace: noise scaled to ε instead of 1/ε is
// the classic DP bug; with counts differing by 1 and essentially no noise
// it must fail.
func TestAuditCatchesUnderNoisedLaplace(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	broken := func(r *rand.Rand, world int) string {
		count := float64(100 + world)
		return BinFloat(count+noise.Laplace(r, 0.01), 90, 112, 44) // scale ≪ 1/ε
	}
	violations, _, err := Audit(rng, broken, Config{Epsilon: 1, Runs: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) == 0 {
		t.Fatal("under-noised Laplace passed the audit")
	}
}

func TestLaplaceMechanismPassesAudit(t *testing.T) {
	eps := 1.0
	audit(t, "laplace", func(r *rand.Rand, world int) string {
		count := 100 + world // neighboring counts differ by 1
		return BinFloat(dp.NoisyCount(r, count, eps), 90, 112, 22)
	}, Config{Epsilon: eps})
}

func TestGaussianMechanismPassesAudit(t *testing.T) {
	p := dp.Params{Epsilon: 1, Delta: 1e-3}
	audit(t, "gaussian", func(r *rand.Rand, world int) string {
		v := vec.Of(float64(world)) // L2 sensitivity 1
		out := dp.GaussianMechanism(r, v, 1, p)
		return BinFloat(out[0], -10, 11, 21)
	}, Config{Epsilon: p.Epsilon, Delta: p.Delta})
}

func TestExponentialMechanismPassesAudit(t *testing.T) {
	eps := 1.0
	audit(t, "expmech", func(r *rand.Rand, world int) string {
		// Neighboring score vectors (sensitivity 1 per candidate).
		scores := []float64{3, 5, 4}
		if world == 1 {
			scores = []float64{4, 4, 3}
		}
		idx, err := dp.ExponentialMechanism(r, scores, 1, eps)
		if err != nil {
			return "err"
		}
		return BinFloat(float64(idx), 0, 3, 3)
	}, Config{Epsilon: eps})
}

func TestReportNoisyMaxPassesAudit(t *testing.T) {
	eps := 1.0
	audit(t, "rnm", func(r *rand.Rand, world int) string {
		scores := []float64{10, 9, 8}
		if world == 1 {
			scores = []float64{9, 10, 9}
		}
		idx, err := dp.ReportNoisyMax(r, scores, 1, eps)
		if err != nil {
			return "err"
		}
		return BinFloat(float64(idx), 0, 3, 3)
	}, Config{Epsilon: eps})
}

func TestStabilityChoosePassesAudit(t *testing.T) {
	p := stability.Params{Epsilon: 1, Delta: 0.01}
	audit(t, "stability", func(r *rand.Rand, world int) string {
		// Neighboring histograms: one element moves between two heavy bins;
		// a third bin is occupied only in world 1 (the newly-supported-bin
		// case the δ threshold absorbs).
		hist := map[string]int{"a": 40, "b": 39}
		if world == 1 {
			hist = map[string]int{"a": 39, "b": 40, "c": 1}
		}
		res, err := stability.Choose(r, hist, p)
		if err != nil {
			return "err"
		}
		if res.Bottom {
			return "bottom"
		}
		return res.Key
	}, Config{Epsilon: p.Epsilon, Delta: p.Delta})
}

func TestAboveThresholdPassesAudit(t *testing.T) {
	eps := 1.0
	audit(t, "svt", func(r *rand.Rand, world int) string {
		at, err := svt.New(r, 10, eps)
		if err != nil {
			return "err"
		}
		// Three sensitivity-1 queries; the output event is the halting
		// pattern — the full view the adversary gets from AboveThreshold.
		queries := []float64{8, 9, 11}
		if world == 1 {
			queries = []float64{9, 10, 10}
		}
		out := ""
		for _, q := range queries {
			top, err := at.Query(q)
			if err != nil {
				break
			}
			if top {
				out += "T"
				break
			}
			out += "F"
		}
		return out
	}, Config{Epsilon: eps})
}

func TestNoisyAveragePassesAudit(t *testing.T) {
	p := dp.Params{Epsilon: 1, Delta: 1e-3}
	audit(t, "noisyavg", func(r *rand.Rand, world int) string {
		// Neighboring vector sets: one of 30 points moves within the ball.
		vs := make([]vec.Vector, 30)
		for i := range vs {
			vs[i] = vec.Of(0.5)
		}
		if world == 1 {
			vs[0] = vec.Of(0.9)
		}
		res, err := dp.NoisyAverage(r, vs, vec.Of(0.5), 0.5, p)
		if err != nil {
			return "err"
		}
		if res.Aborted {
			return "bottom"
		}
		return BinFloat(res.Average[0], 0, 1, 20)
	}, Config{Epsilon: p.Epsilon, Delta: p.Delta})
}
