// Package dptest provides an empirical differential-privacy audit in the
// spirit of statistical DP testing (cf. DP-Sniper, StatDP): run a mechanism
// many times on a pair of neighboring datasets, bin the outputs, and check
// that no event's probability ratio exceeds e^ε beyond the δ and sampling
// slack. A failed audit proves a privacy bug; a passing audit is evidence
// (not proof) that the implementation matches its analysis.
//
// The audit is used by tests across the repository to smoke-test every
// mechanism: the Laplace and Gaussian mechanisms, the exponential
// mechanism, report-noisy-max, the stability histogram, AboveThreshold and
// NoisyAVG. It would have caught, for example, the classic bug of scaling
// noise to ε instead of sensitivity/ε, or a forgotten noise draw.
package dptest

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Mechanism is a randomized algorithm under audit: it maps a dataset index
// (0 = D, 1 = D′, the neighboring dataset) to a discrete outcome label.
// The mechanism must bin its own output: the audit's guarantees are over
// the events the binning induces (post-processing, so any binning is fair).
type Mechanism func(rng *rand.Rand, world int) string

// Config tunes the audit.
type Config struct {
	// Epsilon, Delta is the guarantee being audited.
	Epsilon, Delta float64
	// Runs per world (default 20000).
	Runs int
	// Slack is the additive probability slack allowed on top of
	// e^ε·p + δ to absorb sampling error (default 3·sqrt(p̂/Runs) + 2/Runs,
	// computed per event when zero).
	Slack float64
	// MinCount ignores events rarer than this count in both worlds
	// (default 10) — ratios of near-zero estimates are meaningless.
	MinCount int
}

func (c *Config) setDefaults() {
	if c.Runs == 0 {
		c.Runs = 20000
	}
	if c.MinCount == 0 {
		c.MinCount = 10
	}
}

// Violation describes an event whose empirical probabilities are
// inconsistent with the audited guarantee.
type Violation struct {
	Event        string
	P, Q         float64 // empirical probabilities in world 0 / world 1
	Bound, Slack float64
}

func (v Violation) String() string {
	return fmt.Sprintf("event %q: P=%v > e^ε·Q+δ+slack = %v (Q=%v, slack=%v)",
		v.Event, v.P, v.Bound+v.Slack, v.Q, v.Slack)
}

// Audit runs the mechanism Config.Runs times in each world and checks both
// directions of Definition 1.1 on every observed outcome event. It returns
// the list of violations (empty = audit passed) and the number of distinct
// events observed.
func Audit(rng *rand.Rand, m Mechanism, cfg Config) ([]Violation, int, error) {
	cfg.setDefaults()
	if cfg.Epsilon <= 0 {
		return nil, 0, fmt.Errorf("dptest: epsilon must be positive")
	}
	counts := [2]map[string]int{make(map[string]int), make(map[string]int)}
	for world := 0; world < 2; world++ {
		for i := 0; i < cfg.Runs; i++ {
			counts[world][m(rng, world)]++
		}
	}
	events := make(map[string]struct{}, len(counts[0])+len(counts[1]))
	for e := range counts[0] {
		events[e] = struct{}{}
	}
	for e := range counts[1] {
		events[e] = struct{}{}
	}
	sorted := make([]string, 0, len(events))
	for e := range events {
		sorted = append(sorted, e)
	}
	sort.Strings(sorted)

	runs := float64(cfg.Runs)
	var violations []Violation
	check := func(event string, a, b int) {
		if a < cfg.MinCount {
			return
		}
		p := float64(a) / runs
		q := float64(b) / runs
		slack := cfg.Slack
		if slack == 0 {
			// Three-sigma binomial slack on each estimate plus a floor.
			slack = 3*math.Sqrt(p*(1-p)/runs) + 3*math.Sqrt(q*(1-q)/runs) + 2/runs
		}
		bound := math.Exp(cfg.Epsilon)*q + cfg.Delta
		if p > bound+slack {
			violations = append(violations, Violation{
				Event: event, P: p, Q: q, Bound: bound, Slack: slack,
			})
		}
	}
	for _, e := range sorted {
		check(e, counts[0][e], counts[1][e])
		check(e, counts[1][e], counts[0][e])
	}
	return violations, len(events), nil
}

// BinFloat coarsens a real-valued output into one of `bins` quantile-free
// buckets over [lo, hi] (outputs outside are clamped into the end buckets).
// A standard event family for auditing numeric mechanisms.
func BinFloat(x, lo, hi float64, bins int) string {
	if bins < 1 {
		panic("dptest: BinFloat needs bins ≥ 1")
	}
	if math.IsNaN(x) {
		return "nan"
	}
	idx := int(float64(bins) * (x - lo) / (hi - lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= bins {
		idx = bins - 1
	}
	return fmt.Sprintf("b%03d", idx)
}
