package vec

import (
	"fmt"
	"sync"
)

// MutableFrame is the append-only extension seam of Frame: a growable flat
// coordinate buffer whose prefixes are handed out as ordinary immutable
// Frame views. It is how the streaming-ingestion layers grow a point set
// without touching the Frame contract every kernel and index relies on —
// a view is a real *Frame (no-copy Row, DistSqInto, the works), frozen at
// the row count it was taken with.
//
// Concurrency model: all mutation (Append) must be serialized externally —
// the owning index guards it with its own mutex — while N, View, and Slice
// may run concurrently with appends (an internal lock covers the slice
// header they race on). The handed-out views need no synchronization at
// all: a view's backing slice is capped at its row count, appends only
// ever write at offsets at or beyond every previously-taken view's length,
// and a growth reallocation leaves the old array (which the views alias)
// untouched. A MutableFrame never shrinks; deletions are modeled upstream
// by compacting into a fresh MutableFrame while old views keep the old
// storage alive.
//
// Only Float64 frames can grow: Float32 is a read-optimized storage mode,
// and the bit-identical release contract of the mutation layers is defined
// over float64 coordinates.
type MutableFrame struct {
	d    int
	mu   sync.RWMutex // guards the data slice header, not its array
	data []float64
}

// NewMutableFrame wraps base's storage as the frozen prefix of a growable
// buffer. Ownership of the backing slice transfers: the caller must not
// mutate base's rows afterwards (reading stays valid — base itself is the
// epoch-0 view).
func NewMutableFrame(base *Frame) (*MutableFrame, error) {
	if base == nil || base.N() == 0 {
		return nil, fmt.Errorf("vec: mutable frame over an empty base")
	}
	if base.Precision() != Float64 {
		return nil, fmt.Errorf("vec: mutable frame requires a float64 base, got %v", base.Precision())
	}
	return &MutableFrame{d: base.Dim(), data: base.Data()}, nil
}

// N returns the current number of rows.
func (m *MutableFrame) N() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.data) / m.d
}

// Dim returns the row dimension.
func (m *MutableFrame) Dim() int { return m.d }

// Append copies rows onto the end of the buffer. rows must be a float64
// frame of matching dimension; a nil or empty frame appends nothing.
func (m *MutableFrame) Append(rows *Frame) error {
	if rows == nil || rows.N() == 0 {
		return nil
	}
	if rows.Dim() != m.d {
		return fmt.Errorf("vec: append of dimension %d onto a %d-dimensional frame: %w", rows.Dim(), m.d, ErrDimMismatch)
	}
	if rows.Precision() != Float64 {
		return fmt.Errorf("vec: append requires float64 rows, got %v", rows.Precision())
	}
	m.mu.Lock()
	m.data = append(m.data, rows.Data()...)
	m.mu.Unlock()
	return nil
}

// View returns the first n rows as an immutable Frame without copying. The
// view's backing slice is capped at exactly n rows, so later appends —
// even ones that fit the buffer's spare capacity — can never leak into it.
func (m *MutableFrame) View(n int) *Frame {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if n < 0 || n*m.d > len(m.data) {
		panic(fmt.Sprintf("vec: view of %d rows from a %d-row mutable frame", n, len(m.data)/m.d))
	}
	return &Frame{n: n, d: m.d, f64: m.data[: n*m.d : n*m.d]}
}

// Slice returns rows [lo, hi) as an immutable Frame view (no copy, capped
// like View) — how an epoch's delta rows are exposed to a delta index.
func (m *MutableFrame) Slice(lo, hi int) *Frame {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if lo < 0 || hi < lo || hi*m.d > len(m.data) {
		panic(fmt.Sprintf("vec: slice [%d, %d) of a %d-row mutable frame", lo, hi, len(m.data)/m.d))
	}
	return &Frame{n: hi - lo, d: m.d, f64: m.data[lo*m.d : hi*m.d : hi*m.d]}
}
