package vec

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Precision selects the storage type of a Frame. Float64 is the default and
// the only mode whose releases are bit-comparable across runs and backends;
// Float32 halves the cache footprint at the cost of quantizing every stored
// coordinate through float32 (a distinct release mode, never compared
// bit-for-bit against Float64).
type Precision int

const (
	// Float64 stores coordinates as float64 (the default).
	Float64 Precision = iota
	// Float32 stores coordinates as float32. Rows are decoded to float64 on
	// access; arithmetic still runs in float64.
	Float32
)

// String implements fmt.Stringer.
func (p Precision) String() string {
	switch p {
	case Float64:
		return "float64"
	case Float32:
		return "float32"
	default:
		return fmt.Sprintf("Precision(%d)", int(p))
	}
}

// Frame is a flat, strided store of n points in R^d: one contiguous backing
// slice of n·d coordinates, row i occupying [i·d, (i+1)·d). It is the
// struct-of-arrays counterpart to []Vector — hot loops sweep one allocation
// instead of pointer-chasing n separate slices.
//
// A Frame is immutable after construction by convention: every index layer
// shares the same Frame and sweeps it concurrently, so callers must not
// mutate rows once the Frame has been handed to an index. Row returns a
// no-copy view for exactly that read-only sharing.
//
// Float32 frames store coordinates as float32; Row panics for them (there is
// no float64 slice to alias) — use RowView, which decodes into a caller
// scratch buffer, or the distance kernels, which decode on the fly.
type Frame struct {
	n, d int
	f64  []float64
	f32  []float32
}

// NewFrame returns an all-zero float64 frame of n rows in R^d.
func NewFrame(n, d int) *Frame {
	if n < 0 || d <= 0 {
		panic(fmt.Sprintf("vec: invalid frame shape %d×%d", n, d))
	}
	return &Frame{n: n, d: d, f64: make([]float64, n*d)}
}

// NewFrame32 returns an all-zero float32 frame of n rows in R^d.
func NewFrame32(n, d int) *Frame {
	if n < 0 || d <= 0 {
		panic(fmt.Sprintf("vec: invalid frame shape %d×%d", n, d))
	}
	return &Frame{n: n, d: d, f32: make([]float32, n*d)}
}

// FrameFromData wraps an existing flat coordinate slice as a float64 frame
// without copying: data must hold a whole number of rows of stride d. The
// frame aliases data — the caller transfers ownership.
func FrameFromData(data []float64, d int) (*Frame, error) {
	if d <= 0 {
		return nil, fmt.Errorf("vec: frame stride must be positive, got %d", d)
	}
	if len(data)%d != 0 {
		return nil, fmt.Errorf("vec: %d coordinates do not divide into rows of stride %d: %w", len(data), d, ErrDimMismatch)
	}
	return &Frame{n: len(data) / d, d: d, f64: data}, nil
}

// FrameFromVectors copies vs into a fresh float64 frame. It returns an error
// when the slice is empty or the dimensions disagree.
func FrameFromVectors(vs []Vector) (*Frame, error) {
	if len(vs) == 0 {
		return nil, fmt.Errorf("vec: frame from empty vector slice")
	}
	d := len(vs[0])
	if d == 0 {
		return nil, fmt.Errorf("vec: frame rows must have positive dimension")
	}
	f := NewFrame(len(vs), d)
	for i, v := range vs {
		if len(v) != d {
			return nil, fmt.Errorf("vec: row %d has dimension %d, want %d: %w", i, len(v), d, ErrDimMismatch)
		}
		copy(f.f64[i*d:(i+1)*d], v)
	}
	return f, nil
}

// FrameOf builds a float64 frame from its arguments (test convenience); it
// panics on dimension mismatch.
func FrameOf(vs ...Vector) *Frame {
	f, err := FrameFromVectors(vs)
	if err != nil {
		panic(err)
	}
	return f
}

// N returns the number of rows.
func (f *Frame) N() int { return f.n }

// Dim returns the row dimension.
func (f *Frame) Dim() int { return f.d }

// Precision reports the storage precision.
func (f *Frame) Precision() Precision {
	if f.f32 != nil {
		return Float32
	}
	return Float64
}

// Data returns the float64 backing slice (nil for Float32 frames). The slice
// aliases the frame's storage; treat it as read-only once shared.
func (f *Frame) Data() []float64 { return f.f64 }

// Data32 returns the float32 backing slice (nil for Float64 frames).
func (f *Frame) Data32() []float32 { return f.f32 }

// Row returns row i as a no-copy Vector view aliasing the frame's backing
// slice: writes through the view are visible to every other reader, and the
// view stays valid for the frame's lifetime. It panics on Float32 frames —
// use RowView there.
func (f *Frame) Row(i int) Vector {
	if f.f32 != nil {
		panic("vec: Row on a float32 frame (use RowView)")
	}
	return Vector(f.f64[i*f.d : (i+1)*f.d : (i+1)*f.d])
}

// RowView returns row i as a float64 Vector, using scratch only when a copy
// is required: on Float64 frames it aliases storage exactly like Row (scratch
// untouched); on Float32 frames it decodes into scratch (grown if needed) and
// returns it. Callers that hold the result across iterations on a Float32
// frame must copy — the same scratch is overwritten by the next call.
func (f *Frame) RowView(i int, scratch Vector) Vector {
	if f.f32 == nil {
		return Vector(f.f64[i*f.d : (i+1)*f.d : (i+1)*f.d])
	}
	if cap(scratch) < f.d {
		scratch = make(Vector, f.d)
	}
	scratch = scratch[:f.d]
	row := f.f32[i*f.d : (i+1)*f.d]
	for j, x := range row {
		scratch[j] = float64(x)
	}
	return scratch
}

// At returns coordinate j of row i.
func (f *Frame) At(i, j int) float64 {
	if f.f32 != nil {
		return float64(f.f32[i*f.d+j])
	}
	return f.f64[i*f.d+j]
}

// SetRow copies v into row i, converting through float32 on Float32 frames.
func (f *Frame) SetRow(i int, v Vector) {
	if len(v) != f.d {
		panic(fmt.Sprintf("vec: dimension mismatch %d vs %d", len(v), f.d))
	}
	if f.f32 != nil {
		row := f.f32[i*f.d : (i+1)*f.d]
		for j, x := range v {
			row[j] = float32(x)
		}
		return
	}
	copy(f.f64[i*f.d:(i+1)*f.d], v)
}

// Rows materializes the frame as []Vector. On Float64 frames each element is
// a no-copy view into the backing slice (one header allocation, no coordinate
// copies); on Float32 frames the rows are decoded copies. Compatibility
// helper for code that still wants slice-of-slices — hot paths should sweep
// the frame directly.
func (f *Frame) Rows() []Vector {
	out := make([]Vector, f.n)
	if f.f32 != nil {
		flat := make([]float64, f.n*f.d)
		for i, x := range f.f32 {
			flat[i] = float64(x)
		}
		for i := range out {
			out[i] = Vector(flat[i*f.d : (i+1)*f.d : (i+1)*f.d])
		}
		return out
	}
	for i := range out {
		out[i] = Vector(f.f64[i*f.d : (i+1)*f.d : (i+1)*f.d])
	}
	return out
}

// Clone returns a deep copy of the frame (same precision).
func (f *Frame) Clone() *Frame {
	c := &Frame{n: f.n, d: f.d}
	if f.f32 != nil {
		c.f32 = make([]float32, len(f.f32))
		copy(c.f32, f.f32)
	} else {
		c.f64 = make([]float64, len(f.f64))
		copy(c.f64, f.f64)
	}
	return c
}

// Gather returns a new frame holding rows ids[0], ids[1], … in order (same
// precision as f).
func (f *Frame) Gather(ids []int32) *Frame {
	d := f.d
	if f.f32 != nil {
		g := NewFrame32(len(ids), d)
		for k, id := range ids {
			copy(g.f32[k*d:(k+1)*d], f.f32[int(id)*d:(int(id)+1)*d])
		}
		return g
	}
	g := NewFrame(len(ids), d)
	for k, id := range ids {
		copy(g.f64[k*d:(k+1)*d], f.f64[int(id)*d:(int(id)+1)*d])
	}
	return g
}

// Promote returns a float64 view of the frame: Float64 frames come back
// as-is (no copy), Float32 frames are upconverted into a fresh float64 frame
// (exact — float32→float64 loses nothing). Stages that index rows heavily
// promote once instead of decoding per access.
func (f *Frame) Promote() *Frame {
	if f.f32 == nil {
		return f
	}
	g := NewFrame(f.n, f.d)
	for i, x := range f.f32 {
		g.f64[i] = float64(x)
	}
	return g
}

// DistSq returns the squared Euclidean distance between row i and q. The
// accumulation order matches Vector.DistSq coordinate for coordinate, so
// float64 frames produce bit-identical sums.
func (f *Frame) DistSq(i int, q Vector) float64 {
	d := f.d
	if len(q) != d {
		panic(fmt.Sprintf("vec: dimension mismatch %d vs %d", d, len(q)))
	}
	var s float64
	if f.f32 != nil {
		row := f.f32[i*d : (i+1)*d]
		for j, x := range row {
			dd := float64(x) - q[j]
			s += dd * dd
		}
		return s
	}
	row := f.f64[i*d : (i+1)*d]
	for j, x := range row {
		dd := x - q[j]
		s += dd * dd
	}
	return s
}

// Dist returns the Euclidean distance between row i and q.
func (f *Frame) Dist(i int, q Vector) float64 { return math.Sqrt(f.DistSq(i, q)) }

// DistSqInto writes the squared distance from every row to q into out
// (len(out) must be f.N()) and returns out. The caller owns out — the kernel
// allocates nothing.
func (f *Frame) DistSqInto(q Vector, out []float64) []float64 {
	d := f.d
	if len(q) != d {
		panic(fmt.Sprintf("vec: dimension mismatch %d vs %d", d, len(q)))
	}
	if len(out) != f.n {
		panic(fmt.Sprintf("vec: out has length %d, want %d rows", len(out), f.n))
	}
	if f.f32 != nil {
		for i := 0; i < f.n; i++ {
			row := f.f32[i*d : (i+1)*d]
			var s float64
			for j, x := range row {
				dd := float64(x) - q[j]
				s += dd * dd
			}
			out[i] = s
		}
		return out
	}
	for i := 0; i < f.n; i++ {
		row := f.f64[i*d : (i+1)*d]
		var s float64
		for j, x := range row {
			dd := x - q[j]
			s += dd * dd
		}
		out[i] = s
	}
	return out
}

// CountWithin returns |{i : ‖row_i − c‖ ≤ r}|, comparing squared distances
// against r² exactly like geometry's ball predicates.
func (f *Frame) CountWithin(c Vector, r float64) int {
	d := f.d
	if len(c) != d {
		panic(fmt.Sprintf("vec: dimension mismatch %d vs %d", d, len(c)))
	}
	rsq := r * r
	n := 0
	if f.f32 != nil {
		for i := 0; i < f.n; i++ {
			row := f.f32[i*d : (i+1)*d]
			var s float64
			for j, x := range row {
				dd := float64(x) - c[j]
				s += dd * dd
			}
			if s <= rsq {
				n++
			}
		}
		return n
	}
	for i := 0; i < f.n; i++ {
		row := f.f64[i*d : (i+1)*d]
		var s float64
		for j, x := range row {
			dd := x - c[j]
			s += dd * dd
		}
		if s <= rsq {
			n++
		}
	}
	return n
}

// Nearest returns the index of the center closest to row i and the squared
// distance to it, breaking ties toward the lowest center index (strict <
// comparison — the k-means assignment rule).
func (f *Frame) Nearest(i int, centers []Vector) (best int, bestSq float64) {
	bestSq = math.Inf(1)
	for c, ctr := range centers {
		if s := f.DistSq(i, ctr); s < bestSq {
			best, bestSq = c, s
		}
	}
	return best, bestSq
}

// AppendRowKey appends row i's coordinates to b as little-endian float64 bit
// patterns — the canonical duplicate-table key. Float32 rows are upconverted
// to float64 first (exact), so a float32 frame keys consistently with the
// float64 values its rows decode to.
func (f *Frame) AppendRowKey(b []byte, i int) []byte {
	d := f.d
	if f.f32 != nil {
		row := f.f32[i*d : (i+1)*d]
		for _, x := range row {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(float64(x)))
		}
		return b
	}
	row := f.f64[i*d : (i+1)*d]
	for _, x := range row {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(x))
	}
	return b
}
