package vec

import (
	"errors"
	"testing"
)

func TestMutableFrameViews(t *testing.T) {
	base, err := FrameFromData([]float64{1, 2, 3, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMutableFrame(base)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 2 || m.Dim() != 2 {
		t.Fatalf("N=%d Dim=%d, want 2, 2", m.N(), m.Dim())
	}

	v2 := m.View(2)
	rows, _ := FrameFromData([]float64{5, 6, 7, 8}, 2)
	if err := m.Append(rows); err != nil {
		t.Fatal(err)
	}
	if m.N() != 4 {
		t.Fatalf("N after append = %d, want 4", m.N())
	}
	// The earlier view is frozen at its row count.
	if v2.N() != 2 {
		t.Fatalf("stale view N = %d, want 2", v2.N())
	}
	v4 := m.View(4)
	want := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	got := v4.Data()
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("view row data[%d] = %v, want %v", i, got[i], w)
		}
	}

	// A view's capacity is clamped: appending into spare capacity of the
	// buffer must not be observable through any view.
	if c := cap(v2.Data()); c != 4 {
		t.Fatalf("view cap = %d coordinates, want 4", c)
	}

	delta := m.Slice(2, 4)
	if delta.N() != 2 {
		t.Fatalf("slice N = %d, want 2", delta.N())
	}
	if r := delta.Row(1); r[0] != 7 || r[1] != 8 {
		t.Fatalf("slice row 1 = %v, want [7 8]", r)
	}
}

func TestMutableFrameAppendIsolation(t *testing.T) {
	// Grow far enough to force at least one reallocation and verify old
	// views still read the original coordinates.
	base, _ := FrameFromData([]float64{0, 0}, 2)
	m, err := NewMutableFrame(base)
	if err != nil {
		t.Fatal(err)
	}
	views := make([]*Frame, 0, 64)
	for i := 1; i <= 64; i++ {
		views = append(views, m.View(i))
		row, _ := FrameFromData([]float64{float64(i), float64(-i)}, 2)
		if err := m.Append(row); err != nil {
			t.Fatal(err)
		}
	}
	for i, v := range views {
		if v.N() != i+1 {
			t.Fatalf("view %d has N=%d, want %d", i, v.N(), i+1)
		}
		last := v.Row(v.N() - 1)
		if last[0] != float64(i) || last[1] != float64(-i) {
			t.Fatalf("view %d last row = %v, want [%d %d]", i, last, i, -i)
		}
	}
}

func TestMutableFrameErrors(t *testing.T) {
	if _, err := NewMutableFrame(nil); err == nil {
		t.Fatal("NewMutableFrame(nil) succeeded")
	}
	base, _ := FrameFromData([]float64{1, 2}, 2)
	f32 := NewFrame32(1, 2)
	f32.SetRow(0, Of(1, 2))
	if _, err := NewMutableFrame(f32); err == nil {
		t.Fatal("NewMutableFrame over float32 succeeded")
	}

	m, err := NewMutableFrame(base.Clone())
	if err != nil {
		t.Fatal(err)
	}
	bad, _ := FrameFromData([]float64{1, 2, 3}, 3)
	if err := m.Append(bad); !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("dim-mismatch append error = %v, want ErrDimMismatch", err)
	}
	row32 := NewFrame32(1, 2)
	row32.SetRow(0, Of(9, 9))
	if err := m.Append(row32); err == nil {
		t.Fatal("float32 append succeeded")
	}
	if err := m.Append(nil); err != nil {
		t.Fatalf("nil append error = %v", err)
	}
}
