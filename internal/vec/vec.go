// Package vec provides the small dense linear-algebra substrate used by the
// private 1-cluster algorithms: Euclidean vectors, distances, dense matrices,
// and Gram–Schmidt orthonormalization for random rotations.
//
// Everything is plain float64 on top of the standard library. Vectors are
// []float64 wrapped in a named type so that methods read naturally at call
// sites (p.Dist(q), m.MulVec(x)) while still allowing direct indexing.
package vec

import (
	"errors"
	"fmt"
	"math"
)

// Vector is a point or displacement in R^d.
type Vector []float64

// ErrDimMismatch is returned (or wrapped) by operations on operands of
// different dimensions.
var ErrDimMismatch = errors.New("vec: dimension mismatch")

// New returns a zero vector of dimension d.
func New(d int) Vector {
	if d < 0 {
		panic("vec: negative dimension")
	}
	return make(Vector, d)
}

// Of builds a vector from its arguments. Convenient in tests and examples.
func Of(xs ...float64) Vector {
	v := make(Vector, len(xs))
	copy(v, xs)
	return v
}

// Dim returns the dimension of v.
func (v Vector) Dim() int { return len(v) }

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	w := make(Vector, len(v))
	copy(w, v)
	return w
}

// Add returns v + w.
func (v Vector) Add(w Vector) Vector {
	mustSameDim(v, w)
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v − w.
func (v Vector) Sub(w Vector) Vector {
	mustSameDim(v, w)
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Scale returns c·v.
func (v Vector) Scale(c float64) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = c * v[i]
	}
	return out
}

// AddInPlace sets v ← v + w and returns v.
func (v Vector) AddInPlace(w Vector) Vector {
	mustSameDim(v, w)
	for i := range v {
		v[i] += w[i]
	}
	return v
}

// ScaleInPlace sets v ← c·v and returns v.
func (v Vector) ScaleInPlace(c float64) Vector {
	for i := range v {
		v[i] *= c
	}
	return v
}

// Dot returns ⟨v, w⟩.
func (v Vector) Dot(w Vector) float64 {
	mustSameDim(v, w)
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm returns the Euclidean (L2) norm of v.
func (v Vector) Norm() float64 { return math.Sqrt(v.NormSq()) }

// NormSq returns the squared Euclidean norm of v.
func (v Vector) NormSq() float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return s
}

// Norm1 returns the L1 norm of v.
func (v Vector) Norm1() float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// NormInf returns the L∞ norm of v.
func (v Vector) NormInf() float64 {
	var s float64
	for _, x := range v {
		if a := math.Abs(x); a > s {
			s = a
		}
	}
	return s
}

// Dist returns the Euclidean distance ‖v − w‖₂.
func (v Vector) Dist(w Vector) float64 { return math.Sqrt(v.DistSq(w)) }

// DistSq returns the squared Euclidean distance between v and w.
func (v Vector) DistSq(w Vector) float64 {
	mustSameDim(v, w)
	var s float64
	for i := range v {
		d := v[i] - w[i]
		s += d * d
	}
	return s
}

// Equal reports whether v and w are identical component-wise.
func (v Vector) Equal(w Vector) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] != w[i] {
			return false
		}
	}
	return true
}

// ApproxEqual reports whether ‖v−w‖∞ ≤ tol.
func (v Vector) ApproxEqual(w Vector, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > tol {
			return false
		}
	}
	return true
}

// Normalize returns v/‖v‖. It returns an error for the zero vector.
func (v Vector) Normalize() (Vector, error) {
	n := v.Norm()
	if n == 0 {
		return nil, errors.New("vec: cannot normalize zero vector")
	}
	return v.Scale(1 / n), nil
}

// Clamp returns v with every coordinate clamped to [lo, hi].
func (v Vector) Clamp(lo, hi float64) Vector {
	out := make(Vector, len(v))
	for i, x := range v {
		out[i] = math.Max(lo, math.Min(hi, x))
	}
	return out
}

// IsFinite reports whether all coordinates are finite (no NaN/Inf).
func (v Vector) IsFinite() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// Mean returns the coordinate-wise mean of the given vectors.
// It returns an error when the slice is empty or dimensions differ.
func Mean(vs []Vector) (Vector, error) {
	if len(vs) == 0 {
		return nil, errors.New("vec: mean of empty set")
	}
	d := len(vs[0])
	out := make(Vector, d)
	for _, v := range vs {
		if len(v) != d {
			return nil, ErrDimMismatch
		}
		for i := range v {
			out[i] += v[i]
		}
	}
	inv := 1 / float64(len(vs))
	for i := range out {
		out[i] *= inv
	}
	return out, nil
}

func mustSameDim(v, w Vector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("vec: dimension mismatch %d vs %d", len(v), len(w)))
	}
}
