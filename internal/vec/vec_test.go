package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndDim(t *testing.T) {
	v := New(5)
	if v.Dim() != 5 {
		t.Fatalf("Dim = %d, want 5", v.Dim())
	}
	for i, x := range v {
		if x != 0 {
			t.Fatalf("New vector not zero at %d: %v", i, x)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestOfAndClone(t *testing.T) {
	v := Of(1, 2, 3)
	w := v.Clone()
	w[0] = 99
	if v[0] != 1 {
		t.Fatal("Clone aliases original storage")
	}
}

func TestAddSubScale(t *testing.T) {
	v := Of(1, 2, 3)
	w := Of(4, 5, 6)
	if got := v.Add(w); !got.Equal(Of(5, 7, 9)) {
		t.Errorf("Add = %v", got)
	}
	if got := w.Sub(v); !got.Equal(Of(3, 3, 3)) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); !got.Equal(Of(2, 4, 6)) {
		t.Errorf("Scale = %v", got)
	}
}

func TestAddDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with mismatched dims did not panic")
		}
	}()
	Of(1, 2).Add(Of(1, 2, 3))
}

func TestInPlaceOps(t *testing.T) {
	v := Of(1, 2)
	v.AddInPlace(Of(1, 1)).ScaleInPlace(3)
	if !v.Equal(Of(6, 9)) {
		t.Errorf("in-place chain = %v", v)
	}
}

func TestDotNormDist(t *testing.T) {
	v := Of(3, 4)
	if got := v.Norm(); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := v.NormSq(); got != 25 {
		t.Errorf("NormSq = %v, want 25", got)
	}
	if got := v.Norm1(); got != 7 {
		t.Errorf("Norm1 = %v, want 7", got)
	}
	if got := v.NormInf(); got != 4 {
		t.Errorf("NormInf = %v, want 4", got)
	}
	w := Of(0, 0)
	if got := v.Dist(w); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := v.Dot(Of(1, 1)); got != 7 {
		t.Errorf("Dot = %v, want 7", got)
	}
}

func TestNormalize(t *testing.T) {
	u, err := Of(0, 3, 4).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u.Norm()-1) > 1e-12 {
		t.Errorf("normalized norm = %v", u.Norm())
	}
	if _, err := Of(0, 0).Normalize(); err == nil {
		t.Error("Normalize(0) succeeded, want error")
	}
}

func TestClamp(t *testing.T) {
	got := Of(-2, 0.5, 7).Clamp(0, 1)
	if !got.Equal(Of(0, 0.5, 1)) {
		t.Errorf("Clamp = %v", got)
	}
}

func TestIsFinite(t *testing.T) {
	if !Of(1, 2).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if Of(1, math.NaN()).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if Of(math.Inf(1)).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}

func TestMean(t *testing.T) {
	m, err := Mean([]Vector{Of(0, 0), Of(2, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(Of(1, 2)) {
		t.Errorf("Mean = %v", m)
	}
	if _, err := Mean(nil); err == nil {
		t.Error("Mean(nil) succeeded, want error")
	}
	if _, err := Mean([]Vector{Of(1), Of(1, 2)}); err == nil {
		t.Error("Mean with mismatched dims succeeded, want error")
	}
}

func TestApproxEqual(t *testing.T) {
	if !Of(1, 2).ApproxEqual(Of(1.0000001, 2), 1e-3) {
		t.Error("ApproxEqual false for close vectors")
	}
	if Of(1, 2).ApproxEqual(Of(1, 2, 3), 1) {
		t.Error("ApproxEqual true for different dims")
	}
}

// tame maps arbitrary quick-generated floats into a bounded, finite range so
// property tests exercise arithmetic identities rather than overflow.
func tame(xs []float64) Vector {
	out := make(Vector, len(xs))
	for i, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			x = 0
		}
		out[i] = math.Remainder(x, 1e6)
	}
	return out
}

// Property: triangle inequality and symmetry of Dist.
func TestDistProperties(t *testing.T) {
	f := func(a, b, c [4]float64) bool {
		u, v, w := tame(a[:]), tame(b[:]), tame(c[:])
		if math.Abs(u.Dist(v)-v.Dist(u)) > 1e-9 {
			return false
		}
		return u.Dist(w) <= u.Dist(v)+v.Dist(w)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Cauchy–Schwarz |⟨u,v⟩| ≤ ‖u‖‖v‖.
func TestCauchySchwarz(t *testing.T) {
	f := func(a, b [6]float64) bool {
		u, v := tame(a[:]), tame(b[:])
		return math.Abs(u.Dot(v)) <= u.Norm()*v.Norm()*(1+1e-9)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 {
		t.Fatalf("Set/At mismatch: %v %v", m.At(0, 0), m.At(1, 2))
	}
	r := m.Row(1)
	if r[2] != 5 {
		t.Fatal("Row does not alias storage")
	}
	c := m.Clone()
	c.Set(0, 0, 42)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliases storage")
	}
}

func TestMatrixFromRows(t *testing.T) {
	m, err := MatrixFromRows([]Vector{Of(1, 2), Of(3, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %v", m.At(1, 0))
	}
	if _, err := MatrixFromRows(nil); err == nil {
		t.Error("MatrixFromRows(nil) succeeded")
	}
	if _, err := MatrixFromRows([]Vector{Of(1), Of(1, 2)}); err == nil {
		t.Error("ragged MatrixFromRows succeeded")
	}
}

func TestMulVec(t *testing.T) {
	m, _ := MatrixFromRows([]Vector{Of(1, 0), Of(0, 2)})
	got := m.MulVec(Of(3, 4))
	if !got.Equal(Of(3, 8)) {
		t.Errorf("MulVec = %v", got)
	}
}

func TestMulVecIntoMatchesMulVec(t *testing.T) {
	m, _ := MatrixFromRows([]Vector{Of(1, 2, 3), Of(4, 5, 6)})
	x := Of(0.5, -1, 2)
	dst := New(2)
	m.MulVecInto(dst, x)
	if !dst.Equal(m.MulVec(x)) {
		t.Errorf("MulVecInto = %v, MulVec = %v", dst, m.MulVec(x))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MulVecInto mismatch did not panic")
		}
	}()
	m.MulVecInto(New(3), x)
}

func TestTMulVecIsTranspose(t *testing.T) {
	m, _ := MatrixFromRows([]Vector{Of(1, 2, 3), Of(4, 5, 6)})
	x := Of(1, -1)
	got := m.TMulVec(x)
	want := Of(1-4, 2-5, 3-6)
	if !got.ApproxEqual(want, 1e-12) {
		t.Errorf("TMulVec = %v, want %v", got, want)
	}
}

func TestMulVecPanicsOnMismatch(t *testing.T) {
	m := NewMatrix(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("MulVec mismatch did not panic")
		}
	}()
	m.MulVec(Of(1, 2))
}

func TestGramSchmidtOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		d := 8
		m := NewMatrix(d, d)
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
		}
		if err := m.GramSchmidt(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				want := 0.0
				if i == j {
					want = 1.0
				}
				got := m.Row(i).Dot(m.Row(j))
				if math.Abs(got-want) > 1e-9 {
					t.Fatalf("⟨r%d,r%d⟩ = %v, want %v", i, j, got, want)
				}
			}
		}
	}
}

func TestGramSchmidtDependentRows(t *testing.T) {
	m, _ := MatrixFromRows([]Vector{Of(1, 2), Of(2, 4)})
	if err := m.GramSchmidt(); err == nil {
		t.Error("GramSchmidt on dependent rows succeeded, want error")
	}
}

// Property: rotation by an orthonormal basis preserves norms.
func TestRotationPreservesNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := 6
	m := NewMatrix(d, d)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	if err := m.GramSchmidt(); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		x := make(Vector, d)
		for i := range x {
			x[i] = rng.NormFloat64() * 10
		}
		y := m.MulVec(x)
		if math.Abs(y.Norm()-x.Norm()) > 1e-8*math.Max(1, x.Norm()) {
			t.Fatalf("rotation changed norm: %v vs %v", y.Norm(), x.Norm())
		}
		// And TMulVec inverts it.
		back := m.TMulVec(y)
		if !back.ApproxEqual(x, 1e-8) {
			t.Fatalf("TMulVec∘MulVec != id: %v vs %v", back, x)
		}
	}
}
