package vec

import (
	"errors"
	"math"
	"sync"
	"testing"
)

func TestFrameRowAliasing(t *testing.T) {
	f := FrameOf(Of(1, 2), Of(3, 4), Of(5, 6))
	if f.N() != 3 || f.Dim() != 2 {
		t.Fatalf("shape = %d×%d, want 3×2", f.N(), f.Dim())
	}
	r1 := f.Row(1)
	if !r1.Equal(Of(3, 4)) {
		t.Fatalf("Row(1) = %v, want [3 4]", r1)
	}
	// Row is a view, not a copy: a write through the view is visible to the
	// frame and to every other view of the same row.
	r1[0] = 99
	if got := f.At(1, 0); got != 99 {
		t.Errorf("after writing through Row view, At(1,0) = %v, want 99", got)
	}
	if again := f.Row(1); again[0] != 99 {
		t.Errorf("second Row view sees %v, want 99", again[0])
	}
	// Neighboring rows are untouched, and the view's capacity is clipped so
	// an append cannot silently spill into row 2.
	if got := f.At(2, 0); got != 5 {
		t.Errorf("row 2 corrupted: At(2,0) = %v, want 5", got)
	}
	if cap(r1) != f.Dim() {
		t.Errorf("Row view cap = %d, want %d (three-index slice)", cap(r1), f.Dim())
	}
	// RowView on a float64 frame aliases too — scratch is not used.
	scratch := make(Vector, 2)
	v := f.RowView(1, scratch)
	v[1] = -7
	if got := f.At(1, 1); got != -7 {
		t.Errorf("RowView on float64 frame should alias; At(1,1) = %v, want -7", got)
	}
}

func TestFrameFromDataStrideMismatch(t *testing.T) {
	if _, err := FrameFromData(make([]float64, 7), 3); err == nil {
		t.Fatal("FrameFromData(7 coords, stride 3) should fail")
	} else if !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("stride mismatch error = %v, want ErrDimMismatch", err)
	}
	if _, err := FrameFromData(make([]float64, 6), 0); err == nil {
		t.Fatal("FrameFromData with stride 0 should fail")
	}
	if _, err := FrameFromData(make([]float64, 6), -2); err == nil {
		t.Fatal("FrameFromData with negative stride should fail")
	}
	f, err := FrameFromData([]float64{1, 2, 3, 4, 5, 6}, 3)
	if err != nil {
		t.Fatalf("FrameFromData: %v", err)
	}
	if f.N() != 2 || !f.Row(1).Equal(Of(4, 5, 6)) {
		t.Fatalf("frame = %d rows, Row(1) = %v", f.N(), f.Row(1))
	}
	if _, err := FrameFromVectors([]Vector{Of(1, 2), Of(3)}); !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("ragged FrameFromVectors error = %v, want ErrDimMismatch", err)
	}
}

func TestFrameFloat32RoundTrip(t *testing.T) {
	// Values exactly representable in float32 survive the round trip
	// bit-for-bit; values that are not get quantized to the nearest float32.
	exact := Of(0.5, -3.25, 1024)
	inexact := Of(0.1, 1.0/3.0, math.Pi)

	f := NewFrame32(2, 3)
	f.SetRow(0, exact)
	f.SetRow(1, inexact)
	if f.Precision() != Float32 {
		t.Fatalf("Precision = %v, want Float32", f.Precision())
	}

	scratch := make(Vector, 3)
	got := f.RowView(0, scratch)
	if !got.Equal(exact) {
		t.Errorf("exact float32 values changed: %v vs %v", got, exact)
	}
	got = f.RowView(1, scratch)
	for j := range inexact {
		want := float64(float32(inexact[j]))
		if got[j] != want {
			t.Errorf("coord %d = %v, want float64(float32(x)) = %v", j, got[j], want)
		}
		if got[j] == inexact[j] {
			t.Errorf("coord %d survived float32 unchanged — test value %v is not exercising quantization", j, inexact[j])
		}
	}

	// Kernels agree with the decoded rows.
	q := Of(1, 1, 1)
	want := got.DistSq(q)
	if s := f.DistSq(1, q); s != want {
		t.Errorf("DistSq(1, q) = %v, want %v", s, want)
	}

	// Row must refuse to hand out a float64 alias that does not exist.
	defer func() {
		if recover() == nil {
			t.Error("Row on a float32 frame should panic")
		}
	}()
	_ = f.Row(1)
}

func TestFrameKernelsMatchVector(t *testing.T) {
	rows := []Vector{Of(0, 0), Of(1, 0), Of(0.25, -0.75), Of(2, 2)}
	f := FrameOf(rows...)
	q := Of(0.5, 0.5)
	out := make([]float64, f.N())
	f.DistSqInto(q, out)
	for i, r := range rows {
		if want := r.DistSq(q); out[i] != want {
			t.Errorf("DistSqInto[%d] = %v, want %v", i, out[i], want)
		}
		if got := f.DistSq(i, q); got != rows[i].DistSq(q) {
			t.Errorf("DistSq(%d) = %v, want %v", i, got, rows[i].DistSq(q))
		}
	}
	if n := f.CountWithin(q, 0.75); n != 2 {
		t.Errorf("CountWithin = %d, want 2 (rows 0 and 1 at dist ~0.707)", n)
	}
	centers := []Vector{Of(2, 2), Of(0, 0), Of(1, 0)}
	if best, _ := f.Nearest(0, centers); best != 1 {
		t.Errorf("Nearest(row 0) = center %d, want 1", best)
	}
	// Equidistant centers tie toward the lowest index.
	if best, _ := FrameOf(Of(0.5, 0)).Nearest(0, []Vector{Of(0, 0), Of(1, 0)}); best != 0 {
		t.Errorf("tie should go to the lowest center index, got %d", best)
	}
	g := f.Gather([]int32{3, 1})
	if g.N() != 2 || !g.Row(0).Equal(Of(2, 2)) || !g.Row(1).Equal(Of(1, 0)) {
		t.Errorf("Gather([3 1]) wrong: %v, %v", g.Row(0), g.Row(1))
	}
}

// TestFrameConcurrentSweeps exercises the read-only sharing contract: many
// goroutines sweeping one frame with every kernel concurrently. Run with
// -race to validate.
func TestFrameConcurrentSweeps(t *testing.T) {
	const n, d = 512, 4
	f := NewFrame(n, d)
	for i := 0; i < n; i++ {
		row := f.Row(i)
		for j := range row {
			row[j] = float64(i*d+j) * 0.001
		}
	}
	q := Of(0.1, 0.2, 0.3, 0.4)
	want := f.CountWithin(q, 0.9)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]float64, n)
			scratch := make(Vector, d)
			for iter := 0; iter < 20; iter++ {
				if got := f.CountWithin(q, 0.9); got != want {
					t.Errorf("concurrent CountWithin = %d, want %d", got, want)
					return
				}
				f.DistSqInto(q, out)
				for i := 0; i < n; i += 37 {
					_ = f.DistSq(i, q)
					_ = f.RowView(i, scratch)
					_ = f.AppendRowKey(nil, i)
				}
			}
		}()
	}
	wg.Wait()
}

func TestFrameAppendRowKey(t *testing.T) {
	f64 := FrameOf(Of(0.5, -1.25))
	f32 := NewFrame32(1, 2)
	f32.SetRow(0, Of(0.5, -1.25))
	// 0.5 and -1.25 are exact in float32, so both precisions must produce
	// the same duplicate-table key.
	k64 := string(f64.AppendRowKey(nil, 0))
	k32 := string(f32.AppendRowKey(nil, 0))
	if k64 != k32 {
		t.Errorf("float32 and float64 keys differ for exactly representable coords")
	}
	if len(k64) != 16 {
		t.Errorf("key length = %d, want 16 (two little-endian float64s)", len(k64))
	}
}
